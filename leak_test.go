package dragonfly_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"dragonfly"
	"dragonfly/internal/testutil"
	"dragonfly/internal/workloads"
)

// TestRunConcurrentNoGoroutineLeak pins the goroutine accounting of the
// concurrent runner: a completed multi-job run leaves no rank goroutines
// behind.
func TestRunConcurrentNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys, runs := concurrentSystem(t, 21)
	if _, err := sys.RunConcurrent(runs); err != nil {
		t.Fatal(err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestRunConcurrentCancelNoGoroutineLeak is the regression test for the
// abandoned-run leak: a RunConcurrent cancelled *mid-run* used to leave every
// unfinished rank goroutine parked forever; Scheduler.Shutdown now releases
// them. The context is cancelled from inside the run (the first host-noise
// sample), so ranks are genuinely in flight when the abort happens.
func TestRunConcurrentCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys, runs := concurrentSystem(t, 22)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runs[0].Options.Context = ctx
	runs[0].Options.Iterations = 50
	runs[0].Options.HostNoise = func(rank int) int64 {
		cancel() // fires on the scheduler goroutine during the first iteration
		return 0
	}
	if _, err := sys.RunConcurrent(runs); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestJobRunCancelNoGoroutineLeak covers the single-job path (Comm.RunContext
// shutdown) through the facade.
func TestJobRunCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	sys, err := dragonfly.New(
		dragonfly.WithGeometry(dragonfly.SmallGeometry(4)),
		dragonfly.WithSeed(23),
	)
	if err != nil {
		t.Fatal(err)
	}
	job, err := sys.Allocate(dragonfly.GroupStriped, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = job.Run(&workloads.Alltoall{MessageBytes: 4 << 10, Iterations: 1},
		dragonfly.RunOptions{
			Iterations: 50,
			Context:    ctx,
			HostNoise: func(rank int) int64 {
				cancel()
				return 0
			},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Job.Run returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}
