package network

import (
	"strings"
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
)

func TestReportEmptyFabric(t *testing.T) {
	f, _, _ := testFabric(t, 2, 21)
	rep := f.Report(5)
	if rep.WindowCycles != 0 {
		t.Fatalf("window = %d, want 0 before any event", rep.WindowCycles)
	}
	for _, tier := range rep.Tiers {
		if tier.Flits != 0 || tier.MeanUtilization != 0 {
			t.Fatalf("empty fabric reports traffic: %+v", tier)
		}
	}
	if len(rep.Hottest) != 5 {
		t.Fatalf("expected 5 hottest entries even when idle, got %d", len(rep.Hottest))
	}
	if rep.String() == "" {
		t.Fatal("empty report must still render")
	}
}

func TestReportAfterTraffic(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 22)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 1, 1, 2, 0)
	if err := f.Send(src, dst, 1<<16, SendOptions{Mode: routing.Adaptive}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := f.Report(3)
	if rep.WindowCycles == 0 {
		t.Fatal("window must be positive after traffic")
	}
	var totalFlits uint64
	sawGlobal := false
	for _, tier := range rep.Tiers {
		totalFlits += tier.Flits
		if tier.Type == topo.LinkGlobal && tier.Flits > 0 {
			sawGlobal = true
		}
		if tier.MeanUtilization < 0 || tier.MeanUtilization > 1 || tier.MaxUtilization > 1 {
			t.Fatalf("utilization out of range: %+v", tier)
		}
		if tier.MaxUtilization < tier.MeanUtilization {
			t.Fatalf("max < mean utilization: %+v", tier)
		}
	}
	if totalFlits == 0 {
		t.Fatal("no flits recorded in any tier")
	}
	if !sawGlobal {
		t.Fatal("inter-group transfer did not touch a global link")
	}
	if len(rep.Hottest) != 3 {
		t.Fatalf("expected 3 hottest links, got %d", len(rep.Hottest))
	}
	for i := 1; i < len(rep.Hottest); i++ {
		if rep.Hottest[i].Utilization > rep.Hottest[i-1].Utilization {
			t.Fatal("hottest links not sorted by utilization")
		}
	}
	if rep.Hottest[0].Tile.FlitsTraversed == 0 {
		t.Fatal("hottest link carried no flits")
	}
	if !strings.Contains(rep.String(), "hot[0]") {
		t.Fatalf("rendered report missing hottest entries:\n%s", rep.String())
	}
	// topN = 0 disables the hottest list.
	if len(f.Report(0).Hottest) != 0 {
		t.Fatal("topN=0 must disable the hottest list")
	}
}
