package network

import (
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// --- linkState: stale congestion view -------------------------------------

// TestQueueCyclesStaleWindow pins the credit-delay semantics: until
// CreditDelay cycles have elapsed since the link last advanced, the routing
// pipeline observes the previous freeAt (the "phantom congestion" of the
// paper); at and after the boundary it sees the current one.
func TestQueueCyclesStaleWindow(t *testing.T) {
	f, _, _ := testFabric(t, 2, 1)
	if f.cfg.CreditDelay != 600 {
		t.Fatalf("test assumes the default CreditDelay of 600, got %d", f.cfg.CreditDelay)
	}
	id := topo.LinkID(0)
	ls := &f.links[id]
	ls.freeAt = 2000
	ls.prevFreeAt = 1200
	ls.lastChange = 1000

	cases := []struct {
		now  int64
		want int64
		why  string
	}{
		{1100, 100, "inside the credit window: backlog from prevFreeAt (1200-1100)"},
		{1599, 0, "inside the window but prevFreeAt already passed: clamped to 0"},
		{1600, 400, "at the boundary (now-lastChange == CreditDelay): fresh view (2000-1600)"},
		{1700, 300, "past the window: fresh view (2000-1700)"},
		{2500, 0, "past freeAt: no backlog"},
	}
	for _, c := range cases {
		if got := f.QueueCycles(id, c.now); got != c.want {
			t.Errorf("QueueCycles(now=%d) = %d, want %d (%s)", c.now, got, c.want, c.why)
		}
	}
}

// TestLinkAdvanceShiftsStaleView checks advance() maintains the
// (freeAt, prevFreeAt, lastChange) triple the stale view is built from.
func TestLinkAdvanceShiftsStaleView(t *testing.T) {
	var ls linkState
	ls.advance(100, 500) // at t=100 the link books work until t=500
	if ls.prevFreeAt != 0 || ls.lastChange != 100 || ls.freeAt != 500 {
		t.Fatalf("after first advance: %+v", ls)
	}
	ls.advance(400, 900)
	if ls.prevFreeAt != 500 || ls.lastChange != 400 || ls.freeAt != 900 {
		t.Fatalf("after second advance: %+v", ls)
	}
}

// TestStaleViewThroughFabric drives the stale view end-to-end: right after a
// send congests a link, the perceived backlog still reflects the pre-send
// state; after CreditDelay has elapsed the real backlog becomes visible.
func TestStaleViewThroughFabric(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 1)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 0, 0, 1, 0) // direct intra-chassis neighbour

	// A large message keeps the first-hop link busy far into the future.
	if err := f.Send(src, dst, 1<<20, SendOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	// Find the busiest link out of the source router: the request path's
	// first hop.
	var hot topo.LinkID = topo.InvalidLink
	var hotFreeAt int64
	for _, l := range tt.Links() {
		if ls := &f.links[l.ID]; ls.freeAt > hotFreeAt {
			hot, hotFreeAt = l.ID, ls.freeAt
		}
	}
	if hot == topo.InvalidLink || hotFreeAt <= eng.Now() {
		t.Fatalf("no congested link found (freeAt=%d, now=%d)", hotFreeAt, eng.Now())
	}
	ls := &f.links[hot]
	now := ls.lastChange + 1 // just after the last advance: stale window active
	stale := f.QueueCycles(hot, now)
	fresh := max(ls.freeAt-now, 0)
	if stale >= fresh {
		t.Fatalf("stale view (%d) should underestimate the real backlog (%d)", stale, fresh)
	}
	after := ls.lastChange + f.cfg.CreditDelay
	if got, want := f.QueueCycles(hot, after), max(ls.freeAt-after, 0); got != want {
		t.Fatalf("post-window view = %d, want the real backlog %d", got, want)
	}
}

// --- nicState: outstanding-packet ring buffer ------------------------------

// TestWindowRingWraparound pins the ring-buffer mechanics of the NIC's
// outstanding-packet window: the ring is allocated lazily on the first
// recorded response, no constraint applies until the window fills, then the
// oldest outstanding response bounds the next injection, with windowIdx
// wrapping modulo the window size.
func TestWindowRingWraparound(t *testing.T) {
	var n nicState // window nil: idle NICs never allocate a ring
	if got := n.windowConstraint(4); got != 0 {
		t.Fatalf("empty window constraint = %d, want 0", got)
	}
	if n.window != nil {
		t.Fatal("windowConstraint on an idle NIC must not allocate the ring")
	}
	for i, resp := range []sim.Time{10, 20, 30} {
		n.recordResponse(resp, 4)
		if got := n.windowConstraint(4); got != 0 {
			t.Fatalf("after %d records (window not full) constraint = %d, want 0", i+1, got)
		}
	}
	if len(n.window) != 4 {
		t.Fatalf("ring allocated with %d slots, want 4", len(n.window))
	}
	n.recordResponse(40, 4)
	// Window full: oldest outstanding response (10) gates injection, and the
	// ring index has wrapped back to slot 0.
	if n.windowIdx != 0 || n.windowLen != 4 {
		t.Fatalf("windowIdx=%d windowLen=%d, want 0 and 4", n.windowIdx, n.windowLen)
	}
	if got := n.windowConstraint(4); got != 10 {
		t.Fatalf("full window constraint = %d, want oldest response 10", got)
	}
	// Each further record evicts the oldest and advances the ring.
	for _, c := range []struct{ resp, want sim.Time }{{50, 20}, {60, 30}, {70, 40}, {80, 50}, {90, 60}} {
		n.recordResponse(c.resp, 4)
		if got := n.windowConstraint(4); got != c.want {
			t.Fatalf("after recording %d: constraint = %d, want %d", c.resp, got, c.want)
		}
	}
	if n.windowLen != 4 {
		t.Fatalf("windowLen grew past the window: %d", n.windowLen)
	}
}

// TestWindowLimitsInjection checks the window end-to-end: with a
// one-outstanding-packet window, a multi-packet message takes (much) longer
// than with the default 1024 window, because every packet must wait for the
// previous response.
func TestWindowLimitsInjection(t *testing.T) {
	run := func(window int) sim.Time {
		tt := topo.MustNew(topo.SmallConfig(2))
		cfg := DefaultConfig()
		cfg.MaxOutstandingPackets = window
		eng := sim.NewEngine(1)
		f := MustNew(eng, tt, routing.MustNewPolicy(tt, routing.DefaultParams()), cfg)
		src := nodeAt(tt, 0, 0, 0, 0)
		dst := nodeAt(tt, 1, 0, 0, 0)
		var deliveredAt sim.Time
		if err := f.Send(src, dst, 64*64, SendOptions{}, func(d Delivery) {
			deliveredAt = d.DeliveredAt
		}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return deliveredAt
	}
	tight, wide := run(1), run(1024)
	if tight <= wide {
		t.Fatalf("window=1 delivery (%d) should be slower than window=1024 (%d)", tight, wide)
	}
}

// --- pooled ops and fabric reset -------------------------------------------

// TestSendOpPoolRecycles checks completed sends return their ops to the pool
// and subsequent sends reuse them.
func TestSendOpPoolRecycles(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 1)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 1, 0, 0, 0)
	for i := 0; i < 4; i++ {
		if err := f.Send(src, dst, 256, SendOptions{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.opFree) == 0 {
		t.Fatal("no ops returned to the pool after completed sends")
	}
	recycled := len(f.opFree)
	if err := f.Send(src, dst, 256, SendOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if len(f.opFree) != recycled-1 {
		t.Fatalf("send did not draw from the pool: free %d -> %d", recycled, len(f.opFree))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.opFree) != recycled {
		t.Fatalf("completed send did not return its op: free = %d, want %d", len(f.opFree), recycled)
	}
}

// TestFabricResetMatchesFresh is the fabric half of cross-trial reuse: after
// engine.Reset + fabric.Reset, a rerun must be byte-identical to a run on a
// freshly built fabric — same delivery times, same counters, same packet
// totals.
func TestFabricResetMatchesFresh(t *testing.T) {
	type outcome struct {
		now       sim.Time
		delivered []sim.Time
		packets   uint64
	}
	run := func(f *Fabric, eng *sim.Engine, tt *topo.Topology) outcome {
		var out outcome
		src := nodeAt(tt, 0, 0, 0, 0)
		for _, g := range []int{1, 0, 1} {
			dst := nodeAt(tt, g, 0, 1, 0)
			if err := f.Send(src, dst, 4096, SendOptions{}, func(d Delivery) {
				out.delivered = append(out.delivered, d.DeliveredAt)
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out.now = eng.Now()
		out.packets = f.PacketsInjected()
		return out
	}

	f1, tt1, eng1 := testFabric(t, 2, 7)
	fresh := run(f1, eng1, tt1)

	f2, tt2, eng2 := testFabric(t, 2, 7)
	run(f2, eng2, tt2) // dirty the fabric with a first epoch
	eng2.Reset(7)
	f2.Reset()
	reset := run(f2, eng2, tt2)

	if fresh.now != reset.now || fresh.packets != reset.packets {
		t.Fatalf("reset run differs: fresh (now=%d packets=%d) vs reset (now=%d packets=%d)",
			fresh.now, fresh.packets, reset.now, reset.packets)
	}
	if len(fresh.delivered) != len(reset.delivered) {
		t.Fatalf("delivery counts differ: %d vs %d", len(fresh.delivered), len(reset.delivered))
	}
	for i := range fresh.delivered {
		if fresh.delivered[i] != reset.delivered[i] {
			t.Fatalf("delivery %d differs: %d vs %d", i, fresh.delivered[i], reset.delivered[i])
		}
	}
	// Counters must match node by node.
	for n := 0; n < tt1.NumNodes(); n++ {
		if f1.NodeCounters(topo.NodeID(n)) != f2.NodeCounters(topo.NodeID(n)) {
			t.Fatalf("node %d counters differ after reset", n)
		}
	}
}

// TestFabricResetClearsObserver checks Reset drops the delivery observer, so
// a reused system cannot leak deliveries into a previous trial's log.
func TestFabricResetClearsObserver(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 1)
	leaked := 0
	f.AddDeliveryObserver(func(Delivery) { leaked++ })
	eng.Reset(1)
	f.Reset()
	if err := f.Send(nodeAt(tt, 0, 0, 0, 0), nodeAt(tt, 1, 0, 0, 0), 64, SendOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if leaked != 0 {
		t.Fatalf("stale observer saw %d deliveries after Reset", leaked)
	}
}
