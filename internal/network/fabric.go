package network

import (
	"fmt"
	"math/rand"

	"dragonfly/internal/counters"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// SendOptions control how one message is transferred.
type SendOptions struct {
	// Mode is the routing mode applied to every packet of the message.
	Mode routing.Mode
	// Verb is the RDMA operation used (Put by default).
	Verb Verb
	// Tag is an opaque value copied to the Delivery; the message layer uses it
	// for matching.
	Tag uint64
}

// Delivery describes the completion of one message transfer.
type Delivery struct {
	// Src and Dst are the endpoints of the transfer.
	Src, Dst topo.NodeID
	// Size is the message size in bytes.
	Size int64
	// Tag echoes SendOptions.Tag.
	Tag uint64
	// SendStart is when the message was posted at the source NIC.
	SendStart sim.Time
	// SenderDone is when the last request packet left the source NIC.
	SenderDone sim.Time
	// DeliveredAt is when the last request packet reached the destination NIC.
	DeliveredAt sim.Time
	// LastResponseAt is when the last response flit returned to the source NIC.
	LastResponseAt sim.Time
	// Counters holds the NIC counter deltas attributable to this message.
	Counters counters.NIC
}

// TransmissionCycles returns the paper's T_msg for this delivery: the time
// between the reception of the send by the source NIC and the delivery of the
// last flit to the destination NIC.
func (d Delivery) TransmissionCycles() int64 { return d.DeliveredAt - d.SendStart }

// sendOp is an in-flight message on a NIC's injection queue.
type sendOp struct {
	src, dst topo.NodeID
	size     int64
	opts     SendOptions
	done     func(Delivery)

	packetsLeft  int64
	packetsTotal int64
	start        sim.Time
	senderDone   sim.Time
	deliveredAt  sim.Time
	lastResponse sim.Time
	delta        counters.NIC
}

// linkState is the dynamic state of one directed link.
type linkState struct {
	// freeAt is the time the link finishes serializing the last accepted packet.
	freeAt sim.Time
	// prevFreeAt and lastChange implement the stale congestion view: until
	// CreditDelay cycles have elapsed since lastChange, the routing pipeline
	// still observes prevFreeAt.
	prevFreeAt sim.Time
	lastChange sim.Time

	cyclesPerFlitNum int64 // serialization = flits * num / den
	cyclesPerFlitDen int64
	propagation      int64
	bufferCycles     int64 // input buffer capacity expressed in cycles

	tile counters.Tile
}

func (ls *linkState) serialization(flits int) int64 {
	v := int64(flits) * ls.cyclesPerFlitNum
	v = (v + ls.cyclesPerFlitDen - 1) / ls.cyclesPerFlitDen
	if v < 1 {
		v = 1
	}
	return v
}

func (ls *linkState) advance(now, newFreeAt sim.Time) {
	ls.prevFreeAt = ls.freeAt
	ls.lastChange = now
	ls.freeAt = newFreeAt
}

// nicState is the dynamic state of one NIC.
type nicState struct {
	counters counters.NIC

	// readyAt is when the NIC can start injecting the next packet.
	readyAt sim.Time
	// window is a ring buffer of the response times of the last
	// MaxOutstandingPackets packets, used to enforce the outstanding limit.
	window    []sim.Time
	windowIdx int
	windowLen int

	queue     []*sendOp
	injecting bool
}

// Fabric simulates the Dragonfly interconnect. It is not safe for concurrent
// use; all access must happen from the simulation goroutine (event callbacks).
type Fabric struct {
	engine *sim.Engine
	topo   *topo.Topology
	policy *routing.Policy
	cfg    Config

	links []linkState
	nics  []nicState
	rng   *rand.Rand

	packetsInjected uint64
	onDelivery      func(Delivery)
}

// New builds a fabric over the given topology, routing policy and engine.
func New(engine *sim.Engine, t *topo.Topology, policy *routing.Policy, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		engine: engine,
		topo:   t,
		policy: policy,
		cfg:    cfg,
		links:  make([]linkState, t.NumLinks()),
		nics:   make([]nicState, t.NumNodes()),
		rng:    rand.New(rand.NewSource(engine.Seed() ^ 0x5f3759df)),
	}
	for i, l := range t.Links() {
		ls := &f.links[i]
		ls.cyclesPerFlitNum = cfg.CyclesPerFlit
		ls.cyclesPerFlitDen = int64(l.Width)
		if ls.cyclesPerFlitDen < 1 {
			ls.cyclesPerFlitDen = 1
		}
		ls.propagation = cfg.propagationFor(l.Type)
		ls.bufferCycles = ls.serialization(cfg.BufferFlits)
	}
	for i := range f.nics {
		f.nics[i].window = make([]sim.Time, cfg.MaxOutstandingPackets)
	}
	return f, nil
}

// MustNew is like New but panics on configuration errors.
func MustNew(engine *sim.Engine, t *topo.Topology, policy *routing.Policy, cfg Config) *Fabric {
	f, err := New(engine, t, policy, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Engine returns the simulation engine driving the fabric.
func (f *Fabric) Engine() *sim.Engine { return f.engine }

// Topology returns the topology the fabric runs on.
func (f *Fabric) Topology() *topo.Topology { return f.topo }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Policy returns the routing policy.
func (f *Fabric) Policy() *routing.Policy { return f.policy }

// PacketsInjected reports the total number of request packets injected so far.
func (f *Fabric) PacketsInjected() uint64 { return f.packetsInjected }

// SetDeliveryObserver installs a callback invoked for every completed message
// transfer on the fabric (including same-node loopback transfers and traffic
// from background generators), at the delivery's simulated time. Passing nil
// removes the observer. It is used by the message-log substrate to capture
// fabric-wide communication traces.
func (f *Fabric) SetDeliveryObserver(fn func(Delivery)) { f.onDelivery = fn }

// NodeCounters returns the cumulative NIC counters of a node.
func (f *Fabric) NodeCounters(n topo.NodeID) counters.NIC {
	return f.nics[n].counters
}

// TileCounters returns the cumulative tile counters of a link.
func (f *Fabric) TileCounters(id topo.LinkID) counters.Tile {
	return f.links[id].tile
}

// IncomingFlits sums the flits forwarded by all links terminating at any of
// the given routers. It reproduces the "incoming flits" observation an
// application makes from its allocated routers' tile counters (Table 1).
func (f *Fabric) IncomingFlits(routers map[topo.RouterID]bool) (flits, stalled uint64) {
	for _, l := range f.topo.Links() {
		if routers[l.Dst] {
			flits += f.links[l.ID].tile.FlitsTraversed
			stalled += f.links[l.ID].tile.StalledCycles
		}
	}
	return flits, stalled
}

// --- routing.CongestionView implementation -------------------------------

// QueueCycles implements routing.CongestionView with a stale (credit-delayed)
// view of the link backlog.
func (f *Fabric) QueueCycles(id topo.LinkID, now int64) int64 {
	ls := &f.links[id]
	freeAt := ls.freeAt
	if now-ls.lastChange < f.cfg.CreditDelay {
		freeAt = ls.prevFreeAt
	}
	backlog := freeAt - now
	if backlog < 0 {
		return 0
	}
	return backlog
}

// PropagationCycles implements routing.CongestionView.
func (f *Fabric) PropagationCycles(id topo.LinkID) int64 { return f.links[id].propagation }

// SerializationCycles implements routing.CongestionView.
func (f *Fabric) SerializationCycles(id topo.LinkID, flits int) int64 {
	return f.links[id].serialization(flits)
}

var _ routing.CongestionView = (*Fabric)(nil)

// --- message transfer ------------------------------------------------------

// Send posts a message transfer from src to dst. The done callback (optional)
// is invoked, in simulated time, when the last request packet has been
// delivered to the destination NIC. Send must be called from the simulation
// goroutine (i.e. inside an event or before Run).
func (f *Fabric) Send(src, dst topo.NodeID, size int64, opts SendOptions, done func(Delivery)) error {
	if int(src) < 0 || int(src) >= len(f.nics) || int(dst) < 0 || int(dst) >= len(f.nics) {
		return fmt.Errorf("network: invalid endpoints %d -> %d", src, dst)
	}
	if size < 0 {
		return fmt.Errorf("network: negative message size %d", size)
	}
	now := f.engine.Now()
	if src == dst {
		// On-node transfer: no NIC involvement, modelled as a memory copy.
		delay := f.cfg.LoopbackBaseCycles + int64(float64(size)*f.cfg.LoopbackCyclesPerByte)
		d := Delivery{
			Src: src, Dst: dst, Size: size, Tag: opts.Tag,
			SendStart: now, SenderDone: now + delay, DeliveredAt: now + delay,
			LastResponseAt: now + delay,
		}
		if done != nil || f.onDelivery != nil {
			f.engine.Schedule(d.DeliveredAt, func() {
				if f.onDelivery != nil {
					f.onDelivery(d)
				}
				if done != nil {
					done(d)
				}
			})
		}
		return nil
	}
	op := &sendOp{
		src: src, dst: dst, size: size, opts: opts, done: done,
		packetsTotal: f.cfg.PacketsForSize(size),
		start:        now,
	}
	op.packetsLeft = op.packetsTotal
	nic := &f.nics[src]
	nic.queue = append(nic.queue, op)
	if !nic.injecting {
		nic.injecting = true
		if nic.readyAt < now {
			nic.readyAt = now
		}
		f.engine.Schedule(nic.readyAt, func() { f.inject(src) })
	}
	return nil
}

// windowConstraint returns the earliest time the NIC may inject the next
// packet given the outstanding-packet window, and records resp as the response
// time of the packet about to be injected.
func (n *nicState) windowConstraint() sim.Time {
	if n.windowLen < len(n.window) {
		return 0
	}
	// The oldest outstanding packet's response bounds the next injection.
	return n.window[n.windowIdx]
}

func (n *nicState) recordResponse(resp sim.Time) {
	n.window[n.windowIdx] = resp
	n.windowIdx = (n.windowIdx + 1) % len(n.window)
	if n.windowLen < len(n.window) {
		n.windowLen++
	}
}

// inject processes one chunk of packets from the head of the NIC's queue and
// reschedules itself until the queue drains.
func (f *Fabric) inject(src topo.NodeID) {
	nic := &f.nics[src]
	if len(nic.queue) == 0 {
		nic.injecting = false
		return
	}
	op := nic.queue[0]
	now := f.engine.Now()
	if nic.readyAt < now {
		nic.readyAt = now
	}

	chunkPackets := int64(f.cfg.PacketsPerChunk)
	if chunkPackets > op.packetsLeft {
		chunkPackets = op.packetsLeft
	}
	flitsPerPacket := f.cfg.RequestFlitsPerPacket(op.opts.Verb)
	chunkFlits := int(chunkPackets) * flitsPerPacket

	// Window constraint: the oldest outstanding packet must have been
	// acknowledged before a new one can enter the request window.
	ready := nic.readyAt
	if w := nic.windowConstraint(); w > ready {
		ready = w
	}

	srcRouter := f.topo.RouterOfNode(op.src)
	dstRouter := f.topo.RouterOfNode(op.dst)

	// Per-packet (per-chunk) adaptive routing decision.
	hash := uint64(op.src)<<40 ^ uint64(op.dst)<<16 ^ f.packetsInjected
	dec := f.policy.Route(op.opts.Mode, srcRouter, dstRouter, flitsPerPacket, hash, f, ready, f.rng)

	// Traverse the selected path, accumulating per-link waits.
	injStart := ready
	var arrival sim.Time
	if len(dec.Path) == 0 {
		// Same router: deliver through the processor tiles only.
		injStart = ready
		arrival = injStart + int64(chunkFlits)*f.cfg.CyclesPerFlit + 2*f.cfg.ProcessorDelay
	} else {
		first := &f.links[dec.Path[0]]
		injStart = maxTime(ready, first.freeAt)
		// Credit back-pressure from the second hop propagates to the NIC when
		// the downstream buffer cannot absorb the packet.
		if len(dec.Path) > 1 {
			second := &f.links[dec.Path[1]]
			if t := second.freeAt - second.bufferCycles; t > injStart {
				injStart = t
			}
		}
		t := injStart
		for i, id := range dec.Path {
			ls := &f.links[id]
			start := maxTime(t, ls.freeAt)
			if i+1 < len(dec.Path) {
				next := &f.links[dec.Path[i+1]]
				if bp := next.freeAt - next.bufferCycles; bp > start {
					start = bp
				}
			}
			ser := ls.serialization(chunkFlits)
			ls.tile.FlitsTraversed += uint64(chunkFlits)
			ls.tile.BusyCycles += uint64(ser)
			if wait := start - t; wait > 0 {
				ls.tile.StalledCycles += uint64(wait)
			}
			ls.advance(start, start+ser)
			t = start + ser + ls.propagation
		}
		arrival = t + 2*f.cfg.ProcessorDelay
	}

	// Response traversal over the reverse path.
	respFlits := f.cfg.ResponseFlits * int(chunkPackets)
	respArrival := arrival
	for i := len(dec.Path) - 1; i >= 0; i-- {
		l := f.topo.Link(dec.Path[i])
		revID := f.topo.LinkBetween(l.Dst, l.Src)
		if revID == topo.InvalidLink {
			continue
		}
		ls := &f.links[revID]
		start := maxTime(respArrival, ls.freeAt)
		ser := ls.serialization(respFlits)
		ls.tile.FlitsTraversed += uint64(respFlits)
		ls.tile.BusyCycles += uint64(ser)
		ls.advance(start, start+ser)
		respArrival = start + ser + ls.propagation
	}
	respArrival += f.cfg.ProcessorDelay

	// NIC accounting for this chunk.
	stall := injStart - ready
	serNIC := int64(chunkFlits) * f.cfg.CyclesPerFlit // NIC pushes one flit per CyclesPerFlit
	nic.readyAt = injStart + serNIC
	nic.recordResponse(respArrival)
	f.packetsInjected += uint64(chunkPackets)

	latency := respArrival - injStart
	delta := counters.NIC{
		RequestFlits:              uint64(chunkFlits),
		RequestFlitsStalledCycles: uint64(stall),
		RequestPackets:            uint64(chunkPackets),
		RequestPacketsCumLatency:  uint64(latency) * uint64(chunkPackets),
	}
	if dec.Minimal {
		delta.MinimalPackets = uint64(chunkPackets)
	} else {
		delta.NonMinimalPackets = uint64(chunkPackets)
	}
	nic.counters.Add(delta)
	op.delta.Add(delta)

	op.packetsLeft -= chunkPackets
	if arrival > op.deliveredAt {
		op.deliveredAt = arrival
	}
	if respArrival > op.lastResponse {
		op.lastResponse = respArrival
	}

	if op.packetsLeft <= 0 {
		op.senderDone = nic.readyAt
		nic.queue = nic.queue[1:]
		d := Delivery{
			Src: op.src, Dst: op.dst, Size: op.size, Tag: op.opts.Tag,
			SendStart: op.start, SenderDone: op.senderDone,
			DeliveredAt: op.deliveredAt, LastResponseAt: op.lastResponse,
			Counters: op.delta,
		}
		if op.done != nil || f.onDelivery != nil {
			f.engine.Schedule(d.DeliveredAt, func() {
				if f.onDelivery != nil {
					f.onDelivery(d)
				}
				if op.done != nil {
					op.done(d)
				}
			})
		}
	}

	if len(nic.queue) == 0 {
		nic.injecting = false
		return
	}
	f.engine.Schedule(nic.readyAt, func() { f.inject(src) })
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
