package network

import (
	"fmt"
	"math/rand"

	"dragonfly/internal/counters"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// SendOptions control how one message is transferred.
type SendOptions struct {
	// Mode is the routing mode applied to every packet of the message.
	Mode routing.Mode
	// Verb is the RDMA operation used (Put by default).
	Verb Verb
	// Tag is an opaque value copied to the Delivery; the message layer uses it
	// for matching.
	Tag uint64
}

// Delivery describes the completion of one message transfer.
type Delivery struct {
	// Src and Dst are the endpoints of the transfer.
	Src, Dst topo.NodeID
	// Size is the message size in bytes.
	Size int64
	// Tag echoes SendOptions.Tag.
	Tag uint64
	// SendStart is when the message was posted at the source NIC.
	SendStart sim.Time
	// SenderDone is when the last request packet left the source NIC.
	SenderDone sim.Time
	// DeliveredAt is when the last request packet reached the destination NIC.
	DeliveredAt sim.Time
	// LastResponseAt is when the last response flit returned to the source NIC.
	LastResponseAt sim.Time
	// Counters holds the NIC counter deltas attributable to this message.
	Counters counters.NIC
}

// TransmissionCycles returns the paper's T_msg for this delivery: the time
// between the reception of the send by the source NIC and the delivery of the
// last flit to the destination NIC.
func (d Delivery) TransmissionCycles() int64 { return d.DeliveredAt - d.SendStart }

// sendOp is an in-flight message on a NIC's injection queue. Ops are recycled
// through the fabric's free-list (getOp/putOp), so steady-state message
// traffic allocates nothing per send.
type sendOp struct {
	src, dst topo.NodeID
	size     int64
	opts     SendOptions
	done     func(Delivery)

	packetsLeft  int64
	packetsTotal int64
	start        sim.Time
	senderDone   sim.Time
	deliveredAt  sim.Time
	lastResponse sim.Time
	delta        counters.NIC
}

// linkState is the dynamic state of one directed link. States live in one
// flat slice indexed by LinkID; the fields a packet hop touches (the timing
// words and the tile counters) sit together so a hop stays within one or two
// cache lines.
type linkState struct {
	// freeAt is the time the link finishes serializing the last accepted packet.
	freeAt sim.Time
	// prevFreeAt and lastChange implement the stale congestion view: until
	// CreditDelay cycles have elapsed since lastChange, the routing pipeline
	// still observes prevFreeAt.
	prevFreeAt sim.Time
	lastChange sim.Time

	cyclesPerFlitNum int64 // serialization = flits * num / den
	cyclesPerFlitDen int64
	propagation      int64
	bufferCycles     int64 // input buffer capacity expressed in cycles

	tile counters.Tile
}

func (ls *linkState) serialization(flits int) int64 {
	v := int64(flits) * ls.cyclesPerFlitNum
	v = (v + ls.cyclesPerFlitDen - 1) / ls.cyclesPerFlitDen
	return max(v, 1)
}

func (ls *linkState) advance(now, newFreeAt sim.Time) {
	ls.prevFreeAt = ls.freeAt
	ls.lastChange = now
	ls.freeAt = newFreeAt
}

// reset rewinds the dynamic fields (timing view, counters) while keeping the
// topology-derived constants.
func (ls *linkState) reset() {
	ls.freeAt, ls.prevFreeAt, ls.lastChange = 0, 0, 0
	ls.tile = counters.Tile{}
}

// nicState is the dynamic state of one NIC. Like linkState, NICs live in one
// flat slice indexed by NodeID.
type nicState struct {
	counters counters.NIC

	// readyAt is when the NIC can start injecting the next packet.
	readyAt sim.Time
	// window is a ring buffer of the response times of the last
	// MaxOutstandingPackets packets, used to enforce the outstanding limit.
	// It is allocated lazily on the NIC's first injection: at machine scale
	// most nodes never send (only the measured jobs and noise generators do),
	// so an idle NIC costs a few words instead of an eager
	// MaxOutstandingPackets-sized ring.
	window    []sim.Time
	windowIdx int
	windowLen int

	// queue[qhead:] are the pending ops, oldest first. A head index (rather
	// than re-slicing) keeps the backing array stable so the queue reaches a
	// steady state with no per-message growth.
	queue     []*sendOp
	qhead     int
	injecting bool
}

// headOp returns the oldest pending op without removing it.
func (n *nicState) headOp() *sendOp { return n.queue[n.qhead] }

// queueLen reports the number of pending ops.
func (n *nicState) queueLen() int { return len(n.queue) - n.qhead }

// pushOp appends an op, compacting the consumed prefix when it dominates the
// backing array. (popOp resets qhead to 0 whenever the queue drains, so
// qhead < len(queue) or both are zero here.)
func (n *nicState) pushOp(op *sendOp) {
	if n.qhead > 32 && n.qhead*2 >= len(n.queue) {
		m := copy(n.queue, n.queue[n.qhead:])
		n.queue = n.queue[:m]
		n.qhead = 0
	}
	n.queue = append(n.queue, op)
}

// popOp removes and returns the oldest pending op.
func (n *nicState) popOp() *sendOp {
	op := n.queue[n.qhead]
	n.queue[n.qhead] = nil
	n.qhead++
	if n.qhead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qhead = 0
	}
	return op
}

// reset rewinds the dynamic state, returning still-queued ops to the pool.
func (n *nicState) reset(f *Fabric) {
	n.counters = counters.NIC{}
	n.readyAt = 0
	for i := range n.window {
		n.window[i] = 0
	}
	n.windowIdx, n.windowLen = 0, 0
	for i := n.qhead; i < len(n.queue); i++ {
		f.putOp(n.queue[i])
		n.queue[i] = nil
	}
	n.queue = n.queue[:0]
	n.qhead = 0
	n.injecting = false
}

// pendingDelivery is a completed transfer waiting for its delivery event to
// fire; slots are pooled like sendOps.
type pendingDelivery struct {
	d    Delivery
	done func(Delivery)
}

// Typed-event opcodes dispatched through Fabric.HandleEvent (engine events)
// and Fabric.HandleLocalEvent (conforming-parallel events, ShardableUGAL).
const (
	fabricOpInject int64 = iota
	fabricOpDeliver
	// fabricOpDeliverLane completes a delivery parked in a lane arena by the
	// shardable inject path (arg packs group<<40 | index).
	fabricOpDeliverLane
	// fabricOpSync is the ShardableUGAL lookahead-boundary replica sync.
	fabricOpSync
)

// Fabric simulates the Dragonfly interconnect. It is not safe for concurrent
// use; all access must happen from the simulation goroutine (event callbacks).
type Fabric struct {
	engine *sim.Engine
	topo   *topo.Topology
	policy *routing.Policy
	cfg    Config

	links []linkState
	nics  []nicState
	rng   *rand.Rand

	// opFree and pending/pendingFree pool the per-message bookkeeping so the
	// steady-state send path performs no allocation.
	opFree      []*sendOp
	pending     []pendingDelivery
	pendingFree []int32

	packetsInjected uint64

	// sharded, when non-nil, is the intra-run parallel driver packet events
	// are filed under (see shard.go); groupOfNode caches each node's group
	// so the hot-path residency decision is one slice load.
	sharded     *sim.Sharded
	groupOfNode []int32

	// ShardableUGAL state (see shardable.go); spolicy non-nil selects the
	// variant. lanes holds the per-group packet-path partitions, groupOfLink
	// the owner group of each link's source router, ownStamp the per-link
	// dirty epoch stamps, syncEpoch/syncArmed the replica sync chain.
	// staleness is the replica-sync decimation factor K: the sync chain
	// fires every syncPeriod = K × lookahead cycles (K=1 is the PR 8
	// behaviour, byte-identical by arithmetic).
	spolicy     *routing.ShardedPolicy
	lanes       []laneState
	groupOfLink []int32
	ownStamp    []uint32
	syncEpoch   uint32
	syncArmed   bool
	lookahead   sim.Time
	staleness   int
	syncPeriod  sim.Time

	// observers are the delivery observers in registration order. Multiple
	// observers coexist — per-job delivery capture, the message log and
	// telemetry can all watch one concurrent run — so the slot is a dispatch
	// list, not a single callback.
	observers []deliveryObserver
	// nextObserverID is monotonically increasing and deliberately NOT rewound
	// by Reset, so an ObserverID from a previous epoch can never alias a new
	// observer.
	nextObserverID ObserverID
}

// ObserverID identifies a registered delivery observer. The zero value never
// identifies an observer.
type ObserverID int64

// deliveryObserver is one registered delivery callback.
type deliveryObserver struct {
	id ObserverID
	fn func(Delivery)
}

// New builds a fabric over the given topology, routing policy and engine.
func New(engine *sim.Engine, t *topo.Topology, policy *routing.Policy, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		engine: engine,
		topo:   t,
		policy: policy,
		cfg:    cfg,
		links:  make([]linkState, t.NumLinks()),
		nics:   make([]nicState, t.NumNodes()),
		rng:    rand.New(rand.NewSource(engine.Seed() ^ 0x5f3759df)),
	}
	for i, l := range t.Links() {
		ls := &f.links[i]
		ls.cyclesPerFlitNum = cfg.CyclesPerFlit
		ls.cyclesPerFlitDen = max(int64(l.Width), 1)
		ls.propagation = cfg.propagationFor(l.Type)
		ls.bufferCycles = ls.serialization(cfg.BufferFlits)
	}
	return f, nil
}

// MustNew is like New but panics on configuration errors.
func MustNew(engine *sim.Engine, t *topo.Topology, policy *routing.Policy, cfg Config) *Fabric {
	f, err := New(engine, t, policy, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Reset rewinds the fabric to the state New would produce over the already
// reset engine: link timing views, NIC counters and windows, injection
// queues, the packet counter, the delivery observer and the private random
// stream (reseeded from the engine's current seed). Topology-derived
// constants (serialization rates, propagation, buffer depths) are kept, which
// is the point: resetting is O(state) instead of O(topology construction).
// Reset must be called after the engine's own Reset so no stale packet events
// remain scheduled.
func (f *Fabric) Reset() {
	for i := range f.links {
		f.links[i].reset()
	}
	for i := range f.nics {
		f.nics[i].reset(f)
	}
	for i := range f.pending {
		f.pending[i] = pendingDelivery{}
	}
	f.pending = f.pending[:0]
	f.pendingFree = f.pendingFree[:0]
	f.packetsInjected = 0
	for i := range f.observers {
		f.observers[i] = deliveryObserver{}
	}
	f.observers = f.observers[:0]
	f.rng.Seed(f.engine.Seed() ^ 0x5f3759df)
	if f.spolicy != nil {
		f.resetShardable()
	}
}

// Engine returns the simulation engine driving the fabric.
func (f *Fabric) Engine() *sim.Engine { return f.engine }

// Topology returns the topology the fabric runs on.
func (f *Fabric) Topology() *topo.Topology { return f.topo }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Policy returns the routing policy.
func (f *Fabric) Policy() *routing.Policy { return f.policy }

// PacketsInjected reports the total number of request packets injected so
// far (summed over the per-group lanes under ShardableUGAL).
func (f *Fabric) PacketsInjected() uint64 {
	n := f.packetsInjected
	for g := range f.lanes {
		n += f.lanes[g].packets
	}
	return n
}

// AddDeliveryObserver registers a callback invoked for every completed
// message transfer on the fabric (including same-node loopback transfers and
// traffic from background generators), at the delivery's simulated time.
// Observers fire in registration order; any number may coexist, so per-job
// delivery capture, the message log and telemetry can all watch one
// concurrent run. The returned id removes the observer again. Observers must
// not be added or removed from within an observer callback.
func (f *Fabric) AddDeliveryObserver(fn func(Delivery)) ObserverID {
	f.nextObserverID++
	id := f.nextObserverID
	f.observers = append(f.observers, deliveryObserver{id: id, fn: fn})
	return id
}

// RemoveDeliveryObserver unregisters a delivery observer and reports whether
// it was registered. Removing an already removed (or never issued) id is a
// safe no-op, even after a Reset recycled the fabric.
func (f *Fabric) RemoveDeliveryObserver(id ObserverID) bool {
	for i := range f.observers {
		if f.observers[i].id == id {
			f.observers = append(f.observers[:i], f.observers[i+1:]...)
			return true
		}
	}
	return false
}

// NodeCounters returns the cumulative NIC counters of a node.
func (f *Fabric) NodeCounters(n topo.NodeID) counters.NIC {
	return f.nics[n].counters
}

// TileCounters returns the cumulative tile counters of a link.
func (f *Fabric) TileCounters(id topo.LinkID) counters.Tile {
	return f.links[id].tile
}

// IncomingFlits sums the flits forwarded by all links terminating at any of
// the given routers. It reproduces the "incoming flits" observation an
// application makes from its allocated routers' tile counters (Table 1).
func (f *Fabric) IncomingFlits(routers map[topo.RouterID]bool) (flits, stalled uint64) {
	for _, l := range f.topo.Links() {
		if routers[l.Dst] {
			flits += f.links[l.ID].tile.FlitsTraversed
			stalled += f.links[l.ID].tile.StalledCycles
		}
	}
	return flits, stalled
}

// --- routing.CongestionView implementation -------------------------------

// QueueCycles implements routing.CongestionView with a stale (credit-delayed)
// view of the link backlog.
func (f *Fabric) QueueCycles(id topo.LinkID, now int64) int64 {
	ls := &f.links[id]
	freeAt := ls.freeAt
	if now-ls.lastChange < f.cfg.CreditDelay {
		freeAt = ls.prevFreeAt
	}
	return max(freeAt-now, 0)
}

// PropagationCycles implements routing.CongestionView.
func (f *Fabric) PropagationCycles(id topo.LinkID) int64 { return f.links[id].propagation }

// SerializationCycles implements routing.CongestionView.
func (f *Fabric) SerializationCycles(id topo.LinkID, flits int) int64 {
	return f.links[id].serialization(flits)
}

var _ routing.CongestionView = (*Fabric)(nil)

// --- typed engine events ---------------------------------------------------

// HandleEvent implements sim.Handler: packet progression (NIC injection) and
// delivery completion are driven by typed events instead of per-event
// closures, so the steady-state hot path of the simulation allocates nothing.
func (f *Fabric) HandleEvent(_ *sim.Engine, op, arg int64) {
	switch op {
	case fabricOpInject:
		f.inject(topo.NodeID(arg))
	case fabricOpDeliver:
		f.completeDelivery(int32(arg))
	case fabricOpDeliverLane:
		f.completeLaneDelivery(arg)
	case fabricOpSync:
		f.runSync()
	}
}

// scheduleInject arms the NIC injection event for node src at time at. On a
// sharded fabric the event is filed under the source node's group — the
// shard that owns the NIC — with its global sequence number intact, so the
// handoff changes where the event is parked, never when it runs.
func (f *Fabric) scheduleInject(at sim.Time, src topo.NodeID) {
	if f.sharded != nil {
		f.sharded.ScheduleResident(f.groupOfNode[src], at, f, fabricOpInject, int64(src))
		return
	}
	f.engine.ScheduleCall(at, f, fabricOpInject, int64(src))
}

// scheduleDelivery parks (d, done) in a pooled pending slot and schedules the
// typed completion event at d.DeliveredAt.
func (f *Fabric) scheduleDelivery(d Delivery, done func(Delivery)) {
	var idx int32
	if n := len(f.pendingFree); n > 0 {
		idx = f.pendingFree[n-1]
		f.pendingFree = f.pendingFree[:n-1]
	} else {
		f.pending = append(f.pending, pendingDelivery{})
		idx = int32(len(f.pending) - 1)
	}
	f.pending[idx] = pendingDelivery{d: d, done: done}
	if f.sharded != nil {
		// Delivery completes at the destination NIC: file it under the
		// destination group. A cross-group message scheduled while another
		// shard's inject executes rides the engine's SPSC mailboxes.
		f.sharded.ScheduleResident(f.groupOfNode[d.Dst], d.DeliveredAt, f, fabricOpDeliver, int64(idx))
		return
	}
	f.engine.ScheduleCall(d.DeliveredAt, f, fabricOpDeliver, int64(idx))
}

// completeDelivery fires the observer and the sender's done callback for one
// pending delivery, releasing its slot first so callbacks can immediately
// schedule new transfers.
func (f *Fabric) completeDelivery(idx int32) {
	pd := f.pending[idx]
	f.pending[idx] = pendingDelivery{}
	f.pendingFree = append(f.pendingFree, idx)
	for i := range f.observers {
		f.observers[i].fn(pd.d)
	}
	if pd.done != nil {
		pd.done(pd.d)
	}
}

// getOp takes a send op from the pool (or allocates the pool's next one).
func (f *Fabric) getOp() *sendOp {
	if n := len(f.opFree); n > 0 {
		op := f.opFree[n-1]
		f.opFree = f.opFree[:n-1]
		return op
	}
	return &sendOp{}
}

// putOp recycles a finished op.
func (f *Fabric) putOp(op *sendOp) {
	*op = sendOp{}
	f.opFree = append(f.opFree, op)
}

// --- message transfer ------------------------------------------------------

// Send posts a message transfer from src to dst. The done callback (optional)
// is invoked, in simulated time, when the last request packet has been
// delivered to the destination NIC. Send must be called from the simulation
// goroutine (i.e. inside an event or before Run).
func (f *Fabric) Send(src, dst topo.NodeID, size int64, opts SendOptions, done func(Delivery)) error {
	if int(src) < 0 || int(src) >= len(f.nics) || int(dst) < 0 || int(dst) >= len(f.nics) {
		return fmt.Errorf("network: invalid endpoints %d -> %d", src, dst)
	}
	if size < 0 {
		return fmt.Errorf("network: negative message size %d", size)
	}
	now := f.engine.Now()
	if src == dst {
		// On-node transfer: no NIC involvement, modelled as a memory copy.
		delay := f.cfg.LoopbackBaseCycles + int64(float64(size)*f.cfg.LoopbackCyclesPerByte)
		d := Delivery{
			Src: src, Dst: dst, Size: size, Tag: opts.Tag,
			SendStart: now, SenderDone: now + delay, DeliveredAt: now + delay,
			LastResponseAt: now + delay,
		}
		if done != nil || len(f.observers) > 0 {
			f.scheduleDelivery(d, done)
		}
		return nil
	}
	if f.spolicy != nil {
		// ShardableUGAL: the op comes from the source group's lane pool, the
		// inject event goes into the conforming-parallel class, and posting
		// traffic (re-)arms the replica sync chain. Send runs in the serial
		// domain, so no window can span the armed boundary.
		lane := &f.lanes[f.groupOfNode[src]]
		op := lane.getOp()
		op.src, op.dst, op.size, op.opts, op.done = src, dst, size, opts, done
		op.packetsTotal = f.cfg.PacketsForSize(size)
		op.start = now
		op.packetsLeft = op.packetsTotal
		nic := &f.nics[src]
		nic.pushOp(op)
		lane.opsQueued++
		f.armSync(now)
		if !nic.injecting {
			nic.injecting = true
			nic.readyAt = max(nic.readyAt, now)
			f.sharded.ScheduleLocal(f.groupOfNode[src], nic.readyAt, f, fabricOpInject, int64(src))
		}
		return nil
	}
	op := f.getOp()
	op.src, op.dst, op.size, op.opts, op.done = src, dst, size, opts, done
	op.packetsTotal = f.cfg.PacketsForSize(size)
	op.start = now
	op.packetsLeft = op.packetsTotal
	nic := &f.nics[src]
	nic.pushOp(op)
	if !nic.injecting {
		nic.injecting = true
		nic.readyAt = max(nic.readyAt, now)
		f.scheduleInject(nic.readyAt, src)
	}
	return nil
}

// windowConstraint returns the earliest time the NIC may inject the next
// packet given the outstanding-packet window of maxOutstanding packets.
func (n *nicState) windowConstraint(maxOutstanding int) sim.Time {
	if n.windowLen < maxOutstanding {
		return 0
	}
	// The oldest outstanding packet's response bounds the next injection.
	return n.window[n.windowIdx]
}

func (n *nicState) recordResponse(resp sim.Time, maxOutstanding int) {
	if n.window == nil {
		n.window = make([]sim.Time, maxOutstanding)
	}
	n.window[n.windowIdx] = resp
	n.windowIdx = (n.windowIdx + 1) % len(n.window)
	if n.windowLen < len(n.window) {
		n.windowLen++
	}
}

// inject processes one chunk of packets from the head of the NIC's queue and
// reschedules itself until the queue drains.
func (f *Fabric) inject(src topo.NodeID) {
	nic := &f.nics[src]
	if nic.queueLen() == 0 {
		nic.injecting = false
		return
	}
	op := nic.headOp()
	now := f.engine.Now()
	nic.readyAt = max(nic.readyAt, now)

	chunkPackets := min(int64(f.cfg.PacketsPerChunk), op.packetsLeft)
	flitsPerPacket := f.cfg.RequestFlitsPerPacket(op.opts.Verb)
	chunkFlits := int(chunkPackets) * flitsPerPacket

	// Window constraint: the oldest outstanding packet must have been
	// acknowledged before a new one can enter the request window.
	ready := max(nic.readyAt, nic.windowConstraint(f.cfg.MaxOutstandingPackets))

	srcRouter := f.topo.RouterOfNode(op.src)
	dstRouter := f.topo.RouterOfNode(op.dst)

	// Per-packet (per-chunk) adaptive routing decision.
	hash := uint64(op.src)<<40 ^ uint64(op.dst)<<16 ^ f.packetsInjected
	dec := f.policy.Route(op.opts.Mode, srcRouter, dstRouter, flitsPerPacket, hash, f, ready, f.rng)

	// Traverse the selected path, accumulating per-link waits.
	injStart := ready
	var arrival sim.Time
	if len(dec.Path) == 0 {
		// Same router: deliver through the processor tiles only.
		arrival = injStart + int64(chunkFlits)*f.cfg.CyclesPerFlit + 2*f.cfg.ProcessorDelay
	} else {
		first := &f.links[dec.Path[0]]
		injStart = max(ready, first.freeAt)
		// Credit back-pressure from the second hop propagates to the NIC when
		// the downstream buffer cannot absorb the packet.
		if len(dec.Path) > 1 {
			second := &f.links[dec.Path[1]]
			injStart = max(injStart, second.freeAt-second.bufferCycles)
		}
		t := injStart
		for i, id := range dec.Path {
			ls := &f.links[id]
			start := max(t, ls.freeAt)
			if i+1 < len(dec.Path) {
				next := &f.links[dec.Path[i+1]]
				start = max(start, next.freeAt-next.bufferCycles)
			}
			ser := ls.serialization(chunkFlits)
			ls.tile.FlitsTraversed += uint64(chunkFlits)
			ls.tile.BusyCycles += uint64(ser)
			if wait := start - t; wait > 0 {
				ls.tile.StalledCycles += uint64(wait)
			}
			ls.advance(start, start+ser)
			t = start + ser + ls.propagation
		}
		arrival = t + 2*f.cfg.ProcessorDelay
	}

	// Response traversal over the reverse path.
	respFlits := f.cfg.ResponseFlits * int(chunkPackets)
	respArrival := arrival
	for i := len(dec.Path) - 1; i >= 0; i-- {
		revID := f.topo.ReverseLink(dec.Path[i])
		if revID == topo.InvalidLink {
			continue
		}
		ls := &f.links[revID]
		start := max(respArrival, ls.freeAt)
		ser := ls.serialization(respFlits)
		ls.tile.FlitsTraversed += uint64(respFlits)
		ls.tile.BusyCycles += uint64(ser)
		ls.advance(start, start+ser)
		respArrival = start + ser + ls.propagation
	}
	respArrival += f.cfg.ProcessorDelay

	// NIC accounting for this chunk.
	stall := injStart - ready
	serNIC := int64(chunkFlits) * f.cfg.CyclesPerFlit // NIC pushes one flit per CyclesPerFlit
	nic.readyAt = injStart + serNIC
	nic.recordResponse(respArrival, f.cfg.MaxOutstandingPackets)
	f.packetsInjected += uint64(chunkPackets)

	latency := respArrival - injStart
	delta := counters.NIC{
		RequestFlits:              uint64(chunkFlits),
		RequestFlitsStalledCycles: uint64(stall),
		RequestPackets:            uint64(chunkPackets),
		RequestPacketsCumLatency:  uint64(latency) * uint64(chunkPackets),
	}
	if dec.Minimal {
		delta.MinimalPackets = uint64(chunkPackets)
	} else {
		delta.NonMinimalPackets = uint64(chunkPackets)
	}
	nic.counters.Add(delta)
	op.delta.Add(delta)

	op.packetsLeft -= chunkPackets
	op.deliveredAt = max(op.deliveredAt, arrival)
	op.lastResponse = max(op.lastResponse, respArrival)

	if op.packetsLeft <= 0 {
		op.senderDone = nic.readyAt
		nic.popOp()
		d := Delivery{
			Src: op.src, Dst: op.dst, Size: op.size, Tag: op.opts.Tag,
			SendStart: op.start, SenderDone: op.senderDone,
			DeliveredAt: op.deliveredAt, LastResponseAt: op.lastResponse,
			Counters: op.delta,
		}
		done := op.done
		f.putOp(op)
		if done != nil || len(f.observers) > 0 {
			f.scheduleDelivery(d, done)
		}
	}

	if nic.queueLen() == 0 {
		nic.injecting = false
		return
	}
	f.scheduleInject(nic.readyAt, src)
}
