package network

import (
	"fmt"

	"dragonfly/internal/counters"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// This file is the ShardableUGAL packet path: the per-group partition of the
// fabric's mutable routing state that turns packet injection into a
// conforming-parallel event (sim.LocalHandler) instead of a resident-serial
// one.
//
// ExactUGAL (the default, inject in fabric.go) is order-serial because the
// paper's algorithm couples every packet to machine-global state: one shared
// RNG stream and an instantaneous global congestion view. ShardableUGAL cuts
// exactly those two couplings:
//
//   - RNG: one deterministic stream per group, seeded from (baseSeed, group)
//     (routing.ShardedPolicy). The draw order within a group equals its
//     canonical event order, so the stream never depends on shard count.
//
//   - Congestion: each group routes against its own replica of every link's
//     effective freeAt. Links whose source router the group owns ("own
//     links") are read and advanced authoritatively, exactly like the exact
//     path — only this group's window can touch them, so there is no race
//     and no staleness. Remote links are read from the group's replica and
//     advanced locally, with the delta recorded in a per-link outbox entry.
//
//   - Sync: a serial-domain engine event fires at every sync boundary
//     T_k = k*K*L while traffic is in flight, where L is the lookahead and
//     K is the replica-staleness knob (WithReplicaStaleness; K=1 by
//     default, arithmetic-identical to the historical per-lookahead sync).
//     Horizon windows are always clipped at the earliest pending serial
//     event, so the sync deterministically observes *exactly* the packet
//     events with at < T_k, at every shard count. It folds each group's
//     outbox deltas into the authoritative links (additively — concurrent
//     load from several groups stacks, modelling contention), refreshes
//     every group's replica for each touched link, and re-arms itself while
//     any lane saw new packets or still has ops queued. Replica staleness
//     is therefore bounded by K lookahead windows (K·L = K·500 cycles under
//     DefaultConfig; at K=1 that is comparable to the 600-cycle CreditDelay
//     the exact view already carries, which is why the relaxation is
//     arguably closer to real Aries delayed-credit telemetry than the
//     instantaneous global view). Larger K trades congestion-view freshness
//     for fewer serial sync events — each K is its own deterministic model
//     with its own golden family, and the `fidelity` experiment measures
//     the trade.
//
// Delivery completions execute as conforming-parallel events of the source
// group at DeliveredAt; the in-window half only unparks the lane arena slot,
// and the callbacks that need the serial-domain API (rank wakeups,
// observers) are deferred to the window barrier through the canonical merge
// (ShardContext.Defer), keyed shard-count-independently.
//
// The determinism contract of the variant: output is a pure function of
// (variant, staleness, seed, geometry, workload, drive schedule). It differs
// from ExactUGAL by construction, but is byte-identical across shard counts
// {1,2,4,8} and across Run/Step drive — pinned by its own golden family.

// laneState is one group's mutable packet-path state. A lane is written by
// exactly one party at a time: the group's window worker during windows, the
// serial domain (Send, sync, delivery completion) between them.
type laneState struct {
	// opFree / pend / pendFree mirror the fabric-global pools so concurrent
	// windows never contend on op recycling or delivery parking.
	opFree   []*sendOp
	pend     []pendingDelivery
	pendFree []int32

	// packets is the lane's injected-packet counter: the per-group hash input
	// (replacing the global packetsInjected) and, via lastPackets, the sync
	// chain's activity signal. opsQueued counts sendOps posted to the lane's
	// NICs but not yet fully injected; it keeps the sync chain alive across
	// epochs where the outstanding-packet window stalls all injection.
	packets     uint64
	lastPackets uint64
	opsQueued   int64

	// replica[l] is the lane's view of link l's freeAt: authoritative as of
	// the last sync, advanced locally for remote links the lane's own packets
	// traversed since. Own links bypass it entirely.
	replica []sim.Time

	// outbox accumulates this epoch's deltas to remote links; outIdx/outStamp
	// give O(1) per-link entry lookup (outStamp[l] == syncEpoch+1 marks a
	// live index).
	outIdx   []int32
	outStamp []uint32
	outbox   []outEntry

	// dirtyOwn lists own links advanced since the last sync, so the sync
	// refreshes other lanes' replicas without scanning every link.
	dirtyOwn []topo.LinkID

	// view is the lane's preallocated routing.CongestionView (pointer, so
	// passing it to Route never allocates).
	view *laneView
}

// outEntry is one epoch's accumulated delta to one remote link.
type outEntry struct {
	id      topo.LinkID
	ser     int64 // serialization cycles this lane added to the link
	flits   uint64
	busy    uint64
	stalled uint64
}

// outEntry returns the lane's live outbox entry for link id, creating it on
// first touch this epoch.
func (lane *laneState) outEntry(id topo.LinkID, epoch uint32) *outEntry {
	if lane.outStamp[id] == epoch+1 {
		return &lane.outbox[lane.outIdx[id]]
	}
	lane.outStamp[id] = epoch + 1
	lane.outIdx[id] = int32(len(lane.outbox))
	lane.outbox = append(lane.outbox, outEntry{id: id})
	return &lane.outbox[len(lane.outbox)-1]
}

// getOp / putOp are the lane-local send-op pool.
func (lane *laneState) getOp() *sendOp {
	if n := len(lane.opFree); n > 0 {
		op := lane.opFree[n-1]
		lane.opFree = lane.opFree[:n-1]
		return op
	}
	return &sendOp{}
}

func (lane *laneState) putOp(op *sendOp) {
	*op = sendOp{}
	lane.opFree = append(lane.opFree, op)
}

// park stores a completed delivery in the lane arena and returns its index.
func (lane *laneState) park(d Delivery, done func(Delivery)) int32 {
	var idx int32
	if n := len(lane.pendFree); n > 0 {
		idx = lane.pendFree[n-1]
		lane.pendFree = lane.pendFree[:n-1]
	} else {
		lane.pend = append(lane.pend, pendingDelivery{})
		idx = int32(len(lane.pend) - 1)
	}
	lane.pend[idx] = pendingDelivery{d: d, done: done}
	return idx
}

// laneView is a lane's routing.CongestionView: authoritative (credit-delayed)
// for own links, replica-based for remote ones.
type laneView struct {
	f     *Fabric
	lane  *laneState
	group int32
}

func (v *laneView) QueueCycles(id topo.LinkID, now int64) int64 {
	if v.f.groupOfLink[id] == v.group {
		return v.f.QueueCycles(id, now)
	}
	return max(v.lane.replica[id]-now, 0)
}

func (v *laneView) PropagationCycles(id topo.LinkID) int64 {
	return v.f.links[id].propagation
}

func (v *laneView) SerializationCycles(id topo.LinkID, flits int) int64 {
	return v.f.links[id].serialization(flits)
}

var _ routing.CongestionView = (*laneView)(nil)

// EnableShardable switches the fabric's packet path to the ShardableUGAL
// variant: per-group routing lanes over sp, packet inject events in the
// sharded engine's conforming-parallel class, and the sync chain that
// refreshes congestion replicas every staleness × lookahead cycles
// (staleness 1 is the classic per-boundary sync). AttachSharding must have
// been called first; the topology needs at least two groups (a connected
// single group has no global links and so no lookahead). The replica arenas
// are allocated here, once — the window hot path and the sync never allocate
// in steady state.
func (f *Fabric) EnableShardable(sp *routing.ShardedPolicy, staleness int) error {
	if f.sharded == nil {
		return fmt.Errorf("network: EnableShardable requires AttachSharding first")
	}
	if sp == nil {
		return fmt.Errorf("network: EnableShardable needs a sharded policy")
	}
	if staleness < 1 {
		return fmt.Errorf("network: replica staleness must be >= 1, got %d", staleness)
	}
	groups := f.sharded.Groups()
	if sp.Groups() != groups {
		return fmt.Errorf("network: sharded policy has %d lanes, topology has %d groups", sp.Groups(), groups)
	}
	lookahead := f.LookaheadCycles()
	if lookahead <= 0 {
		return fmt.Errorf("network: ShardableUGAL needs a multi-group geometry (no global links, no lookahead)")
	}
	nl := f.topo.NumLinks()
	if f.groupOfLink == nil {
		f.groupOfLink = make([]int32, nl)
		for _, l := range f.topo.Links() {
			f.groupOfLink[l.ID] = int32(f.topo.GroupOf(l.Src))
		}
	}
	f.spolicy = sp
	f.lookahead = lookahead
	f.staleness = staleness
	f.syncPeriod = lookahead * sim.Time(staleness)
	f.ownStamp = make([]uint32, nl)
	f.lanes = make([]laneState, groups)
	for g := range f.lanes {
		lane := &f.lanes[g]
		lane.replica = make([]sim.Time, nl)
		lane.outIdx = make([]int32, nl)
		lane.outStamp = make([]uint32, nl)
		lane.view = &laneView{f: f, lane: lane, group: int32(g)}
	}
	return nil
}

// Variant reports which UGAL variant the fabric's packet path runs.
func (f *Fabric) Variant() routing.Variant {
	if f.spolicy != nil {
		return routing.ShardableUGAL
	}
	return routing.ExactUGAL
}

// ShardedPolicy returns the per-group routing state, or nil under ExactUGAL.
func (f *Fabric) ShardedPolicy() *routing.ShardedPolicy { return f.spolicy }

// ShardableActive reports whether the shardable packet path is enabled —
// the routing-free way for callers (the MPI layer) to pick the promoted,
// conforming-parallel scheduling path for their own events.
func (f *Fabric) ShardableActive() bool { return f.spolicy != nil }

// ReplicaStaleness returns the replica-sync decimation factor K (sync period
// = K × lookahead). It returns 1 on a fabric running ExactUGAL, where the
// knob has no effect.
func (f *Fabric) ReplicaStaleness() int {
	if f.staleness < 1 {
		return 1
	}
	return f.staleness
}

// resetShardable rewinds the variant state; Fabric.Reset calls it after the
// lanes' structural arenas already exist, so it is O(state), no allocation.
func (f *Fabric) resetShardable() {
	for i := range f.ownStamp {
		f.ownStamp[i] = 0
	}
	f.syncEpoch = 0
	f.syncArmed = false
	for g := range f.lanes {
		lane := &f.lanes[g]
		for i := range lane.replica {
			lane.replica[i] = 0
		}
		for i := range lane.outStamp {
			lane.outStamp[i] = 0
		}
		lane.outbox = lane.outbox[:0]
		lane.dirtyOwn = lane.dirtyOwn[:0]
		lane.packets, lane.lastPackets, lane.opsQueued = 0, 0, 0
		for i := range lane.pend {
			lane.pend[i] = pendingDelivery{}
		}
		lane.pend = lane.pend[:0]
		lane.pendFree = lane.pendFree[:0]
	}
	f.spolicy.Reset(f.engine.Seed())
}

// armSync starts the sync chain at the next sync boundary (a multiple of
// syncPeriod = staleness × lookahead) if it is not already running. Called
// from Send (serial domain), so no window can span the armed boundary:
// subsequent windows see the pending sync event and clip at it.
func (f *Fabric) armSync(now sim.Time) {
	if f.syncArmed {
		return
	}
	f.syncArmed = true
	next := (now/f.syncPeriod + 1) * f.syncPeriod
	f.engine.ScheduleCall(next, f, fabricOpSync, 0)
}

// runSync is the sync-boundary replica synchronization (serial domain).
// Window clipping guarantees every packet event with at < Now() has executed
// and none with at >= Now() has, at every shard count — so the fold below is
// deterministic and shard-count independent.
func (f *Fabric) runSync() {
	at := f.engine.Now()
	prev := at - f.syncPeriod
	// Fold each lane's remote-link deltas into the authoritative links, in
	// lane order. Timing folds additively: the lane's serialization cycles
	// extend the link's busy horizon from max(freeAt, previous boundary), so
	// concurrent load from several groups stacks like real contention.
	for g := range f.lanes {
		lane := &f.lanes[g]
		for i := range lane.outbox {
			e := &lane.outbox[i]
			ls := &f.links[e.id]
			ls.tile.FlitsTraversed += e.flits
			ls.tile.BusyCycles += e.busy
			ls.tile.StalledCycles += e.stalled
			ls.advance(at, max(ls.freeAt, prev)+e.ser)
		}
	}
	// Refresh every lane's replica for each link touched this epoch (remote
	// outbox targets and own-link advances alike).
	for g := range f.lanes {
		lane := &f.lanes[g]
		for i := range lane.outbox {
			f.refreshReplicas(lane.outbox[i].id)
		}
		for _, id := range lane.dirtyOwn {
			f.refreshReplicas(id)
		}
	}
	// Clear epoch state and decide whether the chain stays alive.
	activity := false
	var queued int64
	for g := range f.lanes {
		lane := &f.lanes[g]
		lane.outbox = lane.outbox[:0]
		lane.dirtyOwn = lane.dirtyOwn[:0]
		if lane.packets != lane.lastPackets {
			lane.lastPackets = lane.packets
			activity = true
		}
		queued += lane.opsQueued
	}
	f.syncEpoch++
	if activity || queued > 0 {
		f.engine.ScheduleCall(at+f.syncPeriod, f, fabricOpSync, 0)
	} else {
		f.syncArmed = false
	}
}

// refreshReplicas publishes link id's authoritative freeAt to every lane.
func (f *Fabric) refreshReplicas(id topo.LinkID) {
	freeAt := f.links[id].freeAt
	for g := range f.lanes {
		f.lanes[g].replica[id] = freeAt
	}
}

// markOwnDirty records that an own link advanced this epoch (single writer:
// the owning group's window).
func (f *Fabric) markOwnDirty(lane *laneState, id topo.LinkID) {
	if f.ownStamp[id] != f.syncEpoch+1 {
		f.ownStamp[id] = f.syncEpoch + 1
		lane.dirtyOwn = append(lane.dirtyOwn, id)
	}
}

// laneFreeAt is the lane's effective freeAt for a link: authoritative for
// own links, replica for remote ones.
func (f *Fabric) laneFreeAt(lane *laneState, g int32, id topo.LinkID) sim.Time {
	if f.groupOfLink[id] == g {
		return f.links[id].freeAt
	}
	return lane.replica[id]
}

// laneAdvance applies one hop's occupancy: authoritative advance + dirty
// marking for own links, replica advance + outbox delta for remote ones.
func (f *Fabric) laneAdvance(lane *laneState, g int32, id topo.LinkID, start sim.Time, ser int64, flits uint64, wait int64) {
	if f.groupOfLink[id] == g {
		ls := &f.links[id]
		ls.tile.FlitsTraversed += flits
		ls.tile.BusyCycles += uint64(ser)
		if wait > 0 {
			ls.tile.StalledCycles += uint64(wait)
		}
		ls.advance(start, start+ser)
		f.markOwnDirty(lane, id)
		return
	}
	lane.replica[id] = start + ser
	e := lane.outEntry(id, f.syncEpoch)
	e.ser += ser
	e.flits += flits
	e.busy += uint64(ser)
	if wait > 0 {
		e.stalled += uint64(wait)
	}
}

// HandleLocalEvent implements sim.LocalHandler: under ShardableUGAL, packet
// injection and delivery completion are conforming-parallel events executed
// by the window worker of the source node's group. A completion touches no
// state in-window — its callbacks (rank wakeups, observers) need the
// serial-domain API, so it defers itself to the window barrier, where the
// canonical merge runs it in shard-count-independent order.
func (f *Fabric) HandleLocalEvent(sc *sim.ShardContext, op, arg int64) {
	switch op {
	case fabricOpInject:
		f.injectLane(sc, topo.NodeID(arg))
	case fabricOpDeliverLane:
		sc.Defer(f, fabricOpDeliverLane, arg)
	}
}

var _ sim.LocalHandler = (*Fabric)(nil)

// injectLane is inject's ShardableUGAL twin: identical packet mechanics, but
// all mutable state it touches is lane-partitioned — the group's RNG/policy
// lane, its link replicas and outboxes, its op pool — plus the source NIC,
// which only this group's window (and the serial domain between windows)
// ever touches. Completions stay in the conforming-parallel class: they fire
// as local events at DeliveredAt and defer their callbacks to the barrier.
func (f *Fabric) injectLane(sc *sim.ShardContext, src topo.NodeID) {
	g := sc.Group()
	lane := &f.lanes[g]
	nic := &f.nics[src]
	if nic.queueLen() == 0 {
		nic.injecting = false
		return
	}
	op := nic.headOp()
	now := sc.Now()
	nic.readyAt = max(nic.readyAt, now)

	chunkPackets := min(int64(f.cfg.PacketsPerChunk), op.packetsLeft)
	flitsPerPacket := f.cfg.RequestFlitsPerPacket(op.opts.Verb)
	chunkFlits := int(chunkPackets) * flitsPerPacket

	ready := max(nic.readyAt, nic.windowConstraint(f.cfg.MaxOutstandingPackets))

	srcRouter := f.topo.RouterOfNode(op.src)
	dstRouter := f.topo.RouterOfNode(op.dst)

	// Per-packet routing decision on the group's private lane: its own RNG
	// stream, its own candidate buffers, its own congestion view.
	hash := uint64(op.src)<<40 ^ uint64(op.dst)<<16 ^ lane.packets
	dec := f.spolicy.Route(int(g), op.opts.Mode, srcRouter, dstRouter, flitsPerPacket, hash, lane.view, ready)

	injStart := ready
	var arrival sim.Time
	if len(dec.Path) == 0 {
		arrival = injStart + int64(chunkFlits)*f.cfg.CyclesPerFlit + 2*f.cfg.ProcessorDelay
	} else {
		injStart = max(ready, f.laneFreeAt(lane, g, dec.Path[0]))
		if len(dec.Path) > 1 {
			second := dec.Path[1]
			injStart = max(injStart, f.laneFreeAt(lane, g, second)-f.links[second].bufferCycles)
		}
		t := injStart
		for i, id := range dec.Path {
			start := max(t, f.laneFreeAt(lane, g, id))
			if i+1 < len(dec.Path) {
				next := dec.Path[i+1]
				start = max(start, f.laneFreeAt(lane, g, next)-f.links[next].bufferCycles)
			}
			ser := f.links[id].serialization(chunkFlits)
			f.laneAdvance(lane, g, id, start, ser, uint64(chunkFlits), start-t)
			t = start + ser + f.links[id].propagation
		}
		arrival = t + 2*f.cfg.ProcessorDelay
	}

	// Response traversal over the reverse path.
	respFlits := f.cfg.ResponseFlits * int(chunkPackets)
	respArrival := arrival
	for i := len(dec.Path) - 1; i >= 0; i-- {
		revID := f.topo.ReverseLink(dec.Path[i])
		if revID == topo.InvalidLink {
			continue
		}
		start := max(respArrival, f.laneFreeAt(lane, g, revID))
		ser := f.links[revID].serialization(respFlits)
		f.laneAdvance(lane, g, revID, start, ser, uint64(respFlits), 0)
		respArrival = start + ser + f.links[revID].propagation
	}
	respArrival += f.cfg.ProcessorDelay

	// NIC accounting for this chunk (the NIC is lane-owned state).
	stall := injStart - ready
	serNIC := int64(chunkFlits) * f.cfg.CyclesPerFlit
	nic.readyAt = injStart + serNIC
	nic.recordResponse(respArrival, f.cfg.MaxOutstandingPackets)
	lane.packets += uint64(chunkPackets)

	latency := respArrival - injStart
	delta := counters.NIC{
		RequestFlits:              uint64(chunkFlits),
		RequestFlitsStalledCycles: uint64(stall),
		RequestPackets:            uint64(chunkPackets),
		RequestPacketsCumLatency:  uint64(latency) * uint64(chunkPackets),
	}
	if dec.Minimal {
		delta.MinimalPackets = uint64(chunkPackets)
	} else {
		delta.NonMinimalPackets = uint64(chunkPackets)
	}
	nic.counters.Add(delta)
	op.delta.Add(delta)

	op.packetsLeft -= chunkPackets
	op.deliveredAt = max(op.deliveredAt, arrival)
	op.lastResponse = max(op.lastResponse, respArrival)

	if op.packetsLeft <= 0 {
		op.senderDone = nic.readyAt
		nic.popOp()
		d := Delivery{
			Src: op.src, Dst: op.dst, Size: op.size, Tag: op.opts.Tag,
			SendStart: op.start, SenderDone: op.senderDone,
			DeliveredAt: op.deliveredAt, LastResponseAt: op.lastResponse,
			Counters: op.delta,
		}
		done := op.done
		lane.putOp(op)
		lane.opsQueued--
		if done != nil || len(f.observers) > 0 {
			idx := lane.park(d, done)
			sc.Schedule(g, d.DeliveredAt, f, fabricOpDeliverLane, int64(g)<<40|int64(idx))
		}
	}

	if nic.queueLen() == 0 {
		nic.injecting = false
		return
	}
	sc.Schedule(g, nic.readyAt, f, fabricOpInject, int64(src))
}

// completeLaneDelivery fires the observers and done callback for a delivery
// parked by injectLane. It runs serially on the coordinator at the barrier
// of the window that executed the completion event (ShardContext.Defer).
func (f *Fabric) completeLaneDelivery(packed int64) {
	g := packed >> 40
	idx := int32(packed & (1<<40 - 1))
	lane := &f.lanes[g]
	pd := lane.pend[idx]
	lane.pend[idx] = pendingDelivery{}
	lane.pendFree = append(lane.pendFree, idx)
	for i := range f.observers {
		f.observers[i].fn(pd.d)
	}
	if pd.done != nil {
		pd.done(pd.d)
	}
}
