// Package network implements a cycle-approximate, packet-granular model of the
// Cray Aries fabric: NIC injection with a bounded outstanding-packet window,
// per-link FIFO serialization with finite input buffers and credit
// back-pressure, per-packet adaptive routing decisions, and the NIC
// performance counters the paper's application-aware routing consumes.
//
// Fidelity notes (see DESIGN.md §5): packets are the unit of simulation; flit
// counts determine serialization times and counter increments, but individual
// flits are not separate events. Congestion information used by the routing
// policy is deliberately stale by a configurable credit delay, reproducing the
// "phantom congestion" phenomenon.
package network

import (
	"fmt"

	"dragonfly/internal/topo"
)

// Verb is the RDMA operation type used to transfer a message. It determines
// how many request flits each 64-byte packet carries (§2.1 of the paper:
// 5 request flits for PUTs, 1 for GETs, data returning in response packets).
type Verb uint8

const (
	// Put transfers data in request packets (RDMA PUT).
	Put Verb = iota
	// Get transfers data in response packets (RDMA GET).
	Get
)

// String returns the verb name.
func (v Verb) String() string {
	if v == Get {
		return "GET"
	}
	return "PUT"
}

// Config holds the timing and sizing parameters of the fabric model. All times
// are in NIC cycles.
type Config struct {
	// CyclesPerFlit is the serialization time of one flit on a width-1 link.
	// Wider links divide this cost.
	CyclesPerFlit int64
	// ElectricalPropagation is the propagation delay of intra-chassis and
	// intra-group links.
	ElectricalPropagation int64
	// OpticalPropagation is the propagation delay of inter-group (global) links.
	OpticalPropagation int64
	// ProcessorDelay is the NIC <-> router traversal time (processor tiles + PCIe).
	ProcessorDelay int64
	// LoopbackCyclesPerByte is the cost of delivering a message between two
	// ranks on the same node (shared memory copy, no NIC involvement).
	LoopbackCyclesPerByte float64
	// LoopbackBaseCycles is the fixed cost of an on-node delivery.
	LoopbackBaseCycles int64
	// BufferFlits is the input-buffer capacity of each link, in flits; it
	// bounds how far ahead of the downstream link a packet may be accepted
	// (credit flow control).
	BufferFlits int
	// CreditDelay is the age of the congestion information available to the
	// routing pipeline. Larger values increase phantom congestion.
	CreditDelay int64
	// MaxOutstandingPackets is the NIC request window (1024 on Aries).
	MaxOutstandingPackets int
	// PacketBytes is the payload carried per request packet (64 on Aries).
	PacketBytes int
	// PutRequestFlits is the number of request flits per PUT packet
	// (1 header + 4 payload on Aries).
	PutRequestFlits int
	// GetRequestFlits is the number of request flits per GET packet.
	GetRequestFlits int
	// ResponseFlits is the number of response flits per packet.
	ResponseFlits int
	// PacketsPerChunk aggregates consecutive packets of one message into a
	// single simulation event. 1 is the most faithful; larger values trade
	// fidelity for speed on very large messages.
	PacketsPerChunk int
}

// DefaultConfig returns the parameters used by the experiments. The absolute
// values are chosen to give realistic ratios (optical links ~5x electrical
// latency, multi-thousand-cycle end-to-end packet latency) rather than to
// match Aries datasheet numbers.
func DefaultConfig() Config {
	return Config{
		CyclesPerFlit:         4,
		ElectricalPropagation: 100,
		OpticalPropagation:    500,
		ProcessorDelay:        150,
		LoopbackCyclesPerByte: 0.05,
		LoopbackBaseCycles:    400,
		BufferFlits:           64,
		CreditDelay:           600,
		MaxOutstandingPackets: 1024,
		PacketBytes:           64,
		PutRequestFlits:       5,
		GetRequestFlits:       1,
		ResponseFlits:         1,
		PacketsPerChunk:       1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.CyclesPerFlit <= 0:
		return fmt.Errorf("network: CyclesPerFlit must be > 0")
	case c.ElectricalPropagation < 0 || c.OpticalPropagation < 0 || c.ProcessorDelay < 0:
		return fmt.Errorf("network: propagation delays must be >= 0")
	case c.BufferFlits <= 0:
		return fmt.Errorf("network: BufferFlits must be > 0")
	case c.CreditDelay < 0:
		return fmt.Errorf("network: CreditDelay must be >= 0")
	case c.MaxOutstandingPackets <= 0:
		return fmt.Errorf("network: MaxOutstandingPackets must be > 0")
	case c.PacketBytes <= 0:
		return fmt.Errorf("network: PacketBytes must be > 0")
	case c.PutRequestFlits <= 0 || c.GetRequestFlits <= 0 || c.ResponseFlits <= 0:
		return fmt.Errorf("network: flits per packet must be > 0")
	case c.PacketsPerChunk <= 0:
		return fmt.Errorf("network: PacketsPerChunk must be > 0")
	case c.LoopbackCyclesPerByte < 0 || c.LoopbackBaseCycles < 0:
		return fmt.Errorf("network: loopback costs must be >= 0")
	}
	return nil
}

// RequestFlitsPerPacket returns the number of request flits per packet for the verb.
func (c Config) RequestFlitsPerPacket(v Verb) int {
	if v == Get {
		return c.GetRequestFlits
	}
	return c.PutRequestFlits
}

// PacketsForSize returns the number of request packets needed to transfer
// size bytes.
func (c Config) PacketsForSize(size int64) int64 {
	if size <= 0 {
		return 1
	}
	return (size + int64(c.PacketBytes) - 1) / int64(c.PacketBytes)
}

// FlitsForSize returns the total number of request flits needed to transfer
// size bytes with the given verb.
func (c Config) FlitsForSize(size int64, v Verb) int64 {
	return c.PacketsForSize(size) * int64(c.RequestFlitsPerPacket(v))
}

// propagationFor returns the propagation delay of a link of the given type.
func (c Config) propagationFor(t topo.LinkType) int64 {
	if t == topo.LinkGlobal {
		return c.OpticalPropagation
	}
	return c.ElectricalPropagation
}
