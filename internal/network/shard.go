package network

import (
	"fmt"

	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// This file is the fabric half of intra-run sharding: the partition of
// fabric state by dragonfly group, the lookahead bound the horizon windows
// use, and the handoff that files packet events under the shard owning
// their group.
//
// The partition follows the topology's ID layout — routers, NICs and links
// are numbered group-contiguously, so a shard owns dense spans of every
// state arena. Packet inject events are filed under the source node's
// group, delivery events under the destination node's group; when the
// executing event's shard differs from the owner (a packet crossing a
// global link), the handoff rides the sharded engine's per-pair SPSC
// mailboxes.
//
// Under the default ExactUGAL variant, packet *execution* stays in the
// serial domain (sim.Sharded's resident class), because the paper's
// globally-adaptive UGAL draws every candidate-path sample from one shared
// random stream and reads a machine-global congestion view — concurrent
// packet execution cannot reproduce the serial byte stream. Resident events
// keep the engine's global sequence numbers, so a sharded system's output
// is byte-identical to serial at every shard count, which is what every
// golden SHA256 table enforces.
//
// The opt-in ShardableUGAL variant (EnableShardable, shardable.go) cuts the
// two couplings instead — per-group RNG streams and per-group replicated
// congestion views refreshed at lookahead boundaries — which moves packet
// injection into the conforming-parallel class. Its output differs from
// ExactUGAL by construction and is pinned by its own golden family.

// LookaheadCycles returns the conservative lookahead bound of this fabric:
// the minimum fixed latency any event needs to cross from one dragonfly
// group into another, i.e. the smallest propagation delay over the global
// (optical) links. It returns 0 when the topology has no global links
// (single-group geometries cannot shard).
func (f *Fabric) LookaheadCycles() sim.Time {
	return LookaheadCycles(f.cfg, f.topo)
}

// LookaheadCycles is the free-function form of Fabric.LookaheadCycles, for
// callers (cmd/topoinfo) that want the horizon of a geometry without
// building a fabric.
func LookaheadCycles(cfg Config, t *topo.Topology) sim.Time {
	var minLat sim.Time
	for _, l := range t.Links() {
		if l.Type != topo.LinkGlobal {
			continue
		}
		lat := sim.Time(cfg.propagationFor(l.Type))
		if minLat == 0 || lat < minLat {
			minLat = lat
		}
	}
	return minLat
}

// ShardSpan describes the dense slice of fabric state one shard owns.
type ShardSpan struct {
	// Shard is the shard index.
	Shard int
	// Groups is the [first, last] group range (inclusive).
	Groups [2]int
	// Nodes and Routers are the half-open ID ranges [first, past-last).
	Nodes   [2]int
	Routers [2]int
	// Links is the number of directed links whose source router the shard
	// owns.
	Links int
}

// AttachSharding partitions the fabric's event stream across the given
// sharded driver: from here on, packet inject and delivery events are filed
// under the shard that owns their group (keeping the engine's global
// sequence numbers, so output is byte-identical to the unsharded fabric).
// The driver must have been built with one partition domain per dragonfly
// group; the attachment survives Reset.
func (f *Fabric) AttachSharding(sh *sim.Sharded) error {
	if sh == nil {
		return fmt.Errorf("network: AttachSharding needs a sharded driver")
	}
	if got, want := sh.Groups(), f.topo.Config().Groups; got != want {
		return fmt.Errorf("network: sharded driver has %d groups, topology has %d", got, want)
	}
	if sh.Engine() != f.engine {
		return fmt.Errorf("network: sharded driver is attached to a different engine")
	}
	if f.groupOfNode == nil {
		f.groupOfNode = make([]int32, f.topo.NumNodes())
		for n := range f.groupOfNode {
			f.groupOfNode[n] = int32(f.topo.GroupOfNode(topo.NodeID(n)))
		}
	}
	f.sharded = sh
	return nil
}

// Sharding returns the sharded driver attached to this fabric, or nil.
func (f *Fabric) Sharding() *sim.Sharded { return f.sharded }

// ShardPlan reports the state spans each shard owns under the attached
// driver (nil when the fabric is unsharded). cmd/topoinfo renders it so
// users can judge partition balance before a run.
func (f *Fabric) ShardPlan() []ShardSpan {
	if f.sharded == nil {
		return nil
	}
	groups := f.sharded.Groups()
	spans := make([]ShardSpan, f.sharded.Shards())
	for i := range spans {
		spans[i] = ShardSpan{Shard: i, Groups: [2]int{groups, -1}, Nodes: [2]int{-1, -1}, Routers: [2]int{-1, -1}}
	}
	for g := 0; g < groups; g++ {
		sp := &spans[f.sharded.ShardOf(g)]
		if g < sp.Groups[0] {
			sp.Groups[0] = g
		}
		if g > sp.Groups[1] {
			sp.Groups[1] = g
		}
	}
	for i := range spans {
		sp := &spans[i]
		lo, hi := topo.GroupID(sp.Groups[0]), topo.GroupID(sp.Groups[1])
		for r := 0; r < f.topo.NumRouters(); r++ {
			if g := f.topo.GroupOf(topo.RouterID(r)); g >= lo && g <= hi {
				if sp.Routers[0] < 0 {
					sp.Routers[0] = r
				}
				sp.Routers[1] = r + 1
			}
		}
		for n := 0; n < f.topo.NumNodes(); n++ {
			if g := f.topo.GroupOfNode(topo.NodeID(n)); g >= lo && g <= hi {
				if sp.Nodes[0] < 0 {
					sp.Nodes[0] = n
				}
				sp.Nodes[1] = n + 1
			}
		}
	}
	for _, l := range f.topo.Links() {
		spans[f.sharded.ShardOf(int(f.topo.GroupOf(l.Src)))].Links++
	}
	return spans
}
