package network

import (
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// observerFixture builds a small fabric for delivery-observer tests.
func observerFixture(t *testing.T) *Fabric {
	t.Helper()
	tp, err := topo.New(topo.SmallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := routing.NewPolicy(tp, routing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	fab, err := New(eng, tp, pol, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return fab
}

// TestMultipleDeliveryObservers: several observers coexist, all fire for
// every delivery in registration order, and removal detaches exactly one.
func TestMultipleDeliveryObservers(t *testing.T) {
	f := observerFixture(t)
	var order []string
	idA := f.AddDeliveryObserver(func(Delivery) { order = append(order, "a") })
	idB := f.AddDeliveryObserver(func(Delivery) { order = append(order, "b") })

	send := func() {
		t.Helper()
		if err := f.Send(0, 5, 1024, SendOptions{Mode: routing.Adaptive}, nil); err != nil {
			t.Fatal(err)
		}
		if err := f.Engine().Run(); err != nil {
			t.Fatal(err)
		}
	}
	send()
	if got, want := len(order), 2; got != want {
		t.Fatalf("got %d observer firings, want %d", got, want)
	}
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("observers fired out of registration order: %v", order)
	}

	if !f.RemoveDeliveryObserver(idA) {
		t.Fatal("RemoveDeliveryObserver did not find a registered observer")
	}
	if f.RemoveDeliveryObserver(idA) {
		t.Fatal("second removal of the same id succeeded")
	}
	order = order[:0]
	send()
	if len(order) != 1 || order[0] != "b" {
		t.Fatalf("after removing a: firings = %v, want [b]", order)
	}
	_ = idB
}

// TestResetClearsObservers: Reset drops every observer, and a stale id from
// before the Reset can never remove an observer registered afterwards.
func TestResetClearsObservers(t *testing.T) {
	f := observerFixture(t)
	fired := 0
	stale := f.AddDeliveryObserver(func(Delivery) { fired++ })
	f.Engine().Reset(1)
	f.Reset()
	if f.RemoveDeliveryObserver(stale) {
		t.Fatal("stale pre-Reset observer id removed something")
	}
	kept := 0
	f.AddDeliveryObserver(func(Delivery) { kept++ })
	if f.RemoveDeliveryObserver(stale) {
		t.Fatal("stale id aliased a post-Reset observer")
	}
	if err := f.Send(0, 5, 1024, SendOptions{Mode: routing.Adaptive}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 || kept != 1 {
		t.Fatalf("fired/kept = %d/%d, want 0/1", fired, kept)
	}
}
