package network

import (
	"fmt"
	"sort"

	"dragonfly/internal/counters"
	"dragonfly/internal/topo"
)

// LinkUsage describes the accumulated traffic of one link.
type LinkUsage struct {
	// Link is the topology link.
	Link topo.Link
	// Tile holds the accumulated tile counters.
	Tile counters.Tile
	// Utilization is the fraction of the observation window the link spent
	// serializing flits (0 when the window is empty).
	Utilization float64
}

// TierUsage aggregates traffic per link tier.
type TierUsage struct {
	// Type is the link tier.
	Type topo.LinkType
	// Links is the number of links of this tier.
	Links int
	// Flits is the total number of flits forwarded by the tier.
	Flits uint64
	// StalledCycles is the total back-pressure stall time of the tier.
	StalledCycles uint64
	// MeanUtilization and MaxUtilization summarize the per-link utilizations.
	MeanUtilization float64
	MaxUtilization  float64
}

// UtilizationReport is a snapshot of how the fabric's links have been used
// since the simulation started (or since the counters passed as a baseline).
type UtilizationReport struct {
	// WindowCycles is the observation window used to compute utilizations.
	WindowCycles uint64
	// Tiers holds one entry per link tier, ordered intra-chassis, intra-group,
	// global.
	Tiers []TierUsage
	// Hottest lists the most utilized links, most loaded first.
	Hottest []LinkUsage
}

// Report builds a utilization report over the window [0, now]. topN bounds the
// number of hottest links listed (0 disables the list).
func (f *Fabric) Report(topN int) UtilizationReport {
	window := uint64(f.engine.Now())
	rep := UtilizationReport{WindowCycles: window}

	perTier := map[topo.LinkType]*TierUsage{}
	var all []LinkUsage
	for _, l := range f.topo.Links() {
		tile := f.links[l.ID].tile
		u := tile.Utilization(window)
		all = append(all, LinkUsage{Link: l, Tile: tile, Utilization: u})
		tu, ok := perTier[l.Type]
		if !ok {
			tu = &TierUsage{Type: l.Type}
			perTier[l.Type] = tu
		}
		tu.Links++
		tu.Flits += tile.FlitsTraversed
		tu.StalledCycles += tile.StalledCycles
		tu.MeanUtilization += u
		if u > tu.MaxUtilization {
			tu.MaxUtilization = u
		}
	}
	for _, typ := range []topo.LinkType{topo.LinkIntraChassis, topo.LinkIntraGroup, topo.LinkGlobal} {
		tu, ok := perTier[typ]
		if !ok {
			continue
		}
		if tu.Links > 0 {
			tu.MeanUtilization /= float64(tu.Links)
		}
		rep.Tiers = append(rep.Tiers, *tu)
	}
	if topN > 0 {
		sort.Slice(all, func(i, j int) bool {
			if all[i].Utilization != all[j].Utilization {
				return all[i].Utilization > all[j].Utilization
			}
			return all[i].Link.ID < all[j].Link.ID
		})
		if topN > len(all) {
			topN = len(all)
		}
		rep.Hottest = all[:topN]
	}
	return rep
}

// String renders the report for logs and CLI output.
func (r UtilizationReport) String() string {
	out := fmt.Sprintf("link utilization over %d cycles:\n", r.WindowCycles)
	for _, t := range r.Tiers {
		out += fmt.Sprintf("  %-14s links=%-5d flits=%-12d stalls=%-12d mean=%.3f max=%.3f\n",
			t.Type, t.Links, t.Flits, t.StalledCycles, t.MeanUtilization, t.MaxUtilization)
	}
	for i, h := range r.Hottest {
		out += fmt.Sprintf("  hot[%d] link %d (%s %d->%d) util=%.3f flits=%d\n",
			i, h.Link.ID, h.Link.Type, h.Link.Src, h.Link.Dst, h.Utilization, h.Tile.FlitsTraversed)
	}
	return out
}
