package network

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// testFabric builds a small fabric for unit tests.
func testFabric(t testing.TB, groups int, seed int64) (*Fabric, *topo.Topology, *sim.Engine) {
	if t != nil {
		t.Helper()
	}
	tt := topo.MustNew(topo.SmallConfig(groups))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	f := MustNew(eng, tt, pol, DefaultConfig())
	return f, tt, eng
}

// nodeAt returns the i-th node of the router at the given coordinate.
func nodeAt(tt *topo.Topology, g, c, b, i int) topo.NodeID {
	r := tt.RouterAt(topo.Coord{Group: g, Chassis: c, Blade: b})
	return tt.NodesOfRouter(r)[i]
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.CyclesPerFlit = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero CyclesPerFlit")
	}
	bad = DefaultConfig()
	bad.BufferFlits = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero BufferFlits")
	}
	bad = DefaultConfig()
	bad.MaxOutstandingPackets = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero window")
	}
	bad = DefaultConfig()
	bad.PacketsPerChunk = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero chunk")
	}
}

func TestPacketAndFlitAccounting(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.PacketsForSize(0); got != 1 {
		t.Fatalf("PacketsForSize(0) = %d, want 1", got)
	}
	if got := cfg.PacketsForSize(64); got != 1 {
		t.Fatalf("PacketsForSize(64) = %d, want 1", got)
	}
	if got := cfg.PacketsForSize(65); got != 2 {
		t.Fatalf("PacketsForSize(65) = %d, want 2", got)
	}
	if got := cfg.FlitsForSize(1024, Put); got != 16*5 {
		t.Fatalf("FlitsForSize(1024, Put) = %d, want 80", got)
	}
	if got := cfg.FlitsForSize(1024, Get); got != 16 {
		t.Fatalf("FlitsForSize(1024, Get) = %d, want 16", got)
	}
	if Put.String() != "PUT" || Get.String() != "GET" {
		t.Fatal("bad verb strings")
	}
}

func TestSendDeliversAndCounts(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 1)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 1, 1, 1, 0)
	var got *Delivery
	size := int64(4096)
	if err := f.Send(src, dst, size, SendOptions{Mode: routing.Adaptive, Tag: 7}, func(d Delivery) { got = &d }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("delivery callback never fired")
	}
	if got.Src != src || got.Dst != dst || got.Size != size || got.Tag != 7 {
		t.Fatalf("unexpected delivery metadata: %+v", got)
	}
	if !(got.SendStart <= got.SenderDone && got.SenderDone <= got.DeliveredAt) {
		t.Fatalf("time ordering violated: %+v", got)
	}
	if got.LastResponseAt < got.DeliveredAt {
		t.Fatalf("response before delivery: %+v", got)
	}
	wantPackets := uint64(f.Config().PacketsForSize(size))
	if got.Counters.RequestPackets != wantPackets {
		t.Fatalf("packets = %d, want %d", got.Counters.RequestPackets, wantPackets)
	}
	if got.Counters.RequestFlits != wantPackets*uint64(f.Config().PutRequestFlits) {
		t.Fatalf("flits = %d, want %d", got.Counters.RequestFlits, wantPackets*5)
	}
	if got.Counters.RequestPacketsCumLatency == 0 {
		t.Fatal("cumulative latency must be positive")
	}
	nc := f.NodeCounters(src)
	if nc.RequestPackets != wantPackets {
		t.Fatalf("NIC cumulative packets = %d, want %d", nc.RequestPackets, wantPackets)
	}
	if f.NodeCounters(dst).RequestPackets != 0 {
		t.Fatal("destination NIC must not count request packets it did not send")
	}
	if f.PacketsInjected() != wantPackets {
		t.Fatalf("PacketsInjected = %d, want %d", f.PacketsInjected(), wantPackets)
	}
}

func TestLoopbackDoesNotTouchNIC(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 2)
	n := nodeAt(tt, 0, 0, 0, 0)
	var got *Delivery
	if err := f.Send(n, n, 1<<20, SendOptions{}, func(d Delivery) { got = &d }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("loopback delivery never fired")
	}
	if got.DeliveredAt <= got.SendStart {
		t.Fatal("loopback must take time")
	}
	if f.NodeCounters(n).RequestPackets != 0 {
		t.Fatal("loopback must not increment NIC counters")
	}
}

func TestSendErrors(t *testing.T) {
	f, tt, _ := testFabric(t, 2, 3)
	n := nodeAt(tt, 0, 0, 0, 0)
	if err := f.Send(n, topo.NodeID(10_000), 64, SendOptions{}, nil); err == nil {
		t.Fatal("expected error for invalid destination")
	}
	if err := f.Send(topo.NodeID(-1), n, 64, SendOptions{}, nil); err == nil {
		t.Fatal("expected error for invalid source")
	}
	if err := f.Send(n, n, -5, SendOptions{}, nil); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestInterGroupSlowerThanIntraChassis(t *testing.T) {
	run := func(dst topo.NodeID) int64 {
		f, tt, eng := testFabric(t, 2, 4)
		src := nodeAt(tt, 0, 0, 0, 0)
		var d Delivery
		if err := f.Send(src, dst, 4096, SendOptions{Mode: routing.AdaptiveHighBias}, func(x Delivery) { d = x }); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return d.TransmissionCycles()
	}
	tt := topo.MustNew(topo.SmallConfig(2))
	near := run(nodeAt(tt, 0, 0, 1, 0))
	far := run(nodeAt(tt, 1, 1, 2, 0))
	if far <= near {
		t.Fatalf("inter-group (%d cycles) must be slower than intra-chassis (%d cycles)", far, near)
	}
}

func TestLargerMessagesTakeLonger(t *testing.T) {
	times := make([]int64, 0, 3)
	for _, size := range []int64{256, 4096, 65536} {
		f, tt, eng := testFabric(t, 2, 5)
		src := nodeAt(tt, 0, 0, 0, 0)
		dst := nodeAt(tt, 1, 0, 0, 0)
		var d Delivery
		if err := f.Send(src, dst, size, SendOptions{Mode: routing.Adaptive}, func(x Delivery) { d = x }); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		times = append(times, d.TransmissionCycles())
	}
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Fatalf("transmission times not monotone in size: %v", times)
	}
}

func TestIncastCausesStalls(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 6)
	dst := nodeAt(tt, 0, 0, 0, 0)
	// Many senders target the same destination router: the last hop is a
	// shared bottleneck and back-pressure must appear as NIC stalls somewhere.
	senders := []topo.NodeID{}
	for c := 0; c < 2; c++ {
		for b := 0; b < 4; b++ {
			if c == 0 && b == 0 {
				continue
			}
			senders = append(senders, nodeAt(tt, 0, c, b, 0), nodeAt(tt, 0, c, b, 1))
		}
	}
	for _, s := range senders {
		if err := f.Send(s, dst, 1<<16, SendOptions{Mode: routing.MinHash}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var totalStalls uint64
	for _, s := range senders {
		totalStalls += f.NodeCounters(s).RequestFlitsStalledCycles
	}
	if totalStalls == 0 {
		t.Fatal("incast produced no stall cycles")
	}
}

func TestQueueCyclesStaleView(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 7)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 0, 0, 1, 0)
	// Saturate the direct link.
	if err := f.Send(src, dst, 1<<18, SendOptions{Mode: routing.InOrder}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	id := tt.LinkBetween(tt.RouterOfNode(src), tt.RouterOfNode(dst))
	now := eng.Now()
	// The fresh backlog (bypassing staleness by looking far in the future)
	// must be at least the stale view now.
	stale := f.QueueCycles(id, now)
	fresh := f.QueueCycles(id, now+f.Config().CreditDelay)
	_ = fresh
	if stale < 0 {
		t.Fatal("negative backlog")
	}
	if f.PropagationCycles(id) <= 0 {
		t.Fatal("propagation must be positive")
	}
	if f.SerializationCycles(id, 5) <= 0 {
		t.Fatal("serialization must be positive")
	}
}

func TestHighBiasSendsMoreMinimalPackets(t *testing.T) {
	countMinimal := func(mode routing.Mode) (minimal, total uint64) {
		f, tt, eng := testFabric(nil, 3, 8)
		// Background traffic between groups 0 and 1 to create congestion.
		for b := 0; b < 4; b++ {
			s := nodeAt(tt, 0, 0, b, 0)
			d := nodeAt(tt, 1, 0, b, 0)
			if err := f.Send(s, d, 1<<16, SendOptions{Mode: routing.Adaptive}, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Measured flow under test.
		src := nodeAt(tt, 0, 1, 0, 0)
		dst := nodeAt(tt, 1, 1, 0, 0)
		if err := f.Send(src, dst, 1<<16, SendOptions{Mode: mode}, nil); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		c := f.NodeCounters(src)
		return c.MinimalPackets, c.RequestPackets
	}
	minAdaptive, totalAdaptive := countMinimal(routing.Adaptive)
	minBias, totalBias := countMinimal(routing.AdaptiveHighBias)
	fracAdaptive := float64(minAdaptive) / float64(totalAdaptive)
	fracBias := float64(minBias) / float64(totalBias)
	if fracBias < fracAdaptive {
		t.Fatalf("high bias minimal fraction %.3f < adaptive %.3f", fracBias, fracAdaptive)
	}
	if fracBias < 0.5 {
		t.Fatalf("high bias should route mostly minimally, got %.3f", fracBias)
	}
}

func TestManyPacketsWindow(t *testing.T) {
	// More packets than the outstanding window: must still complete, and the
	// completion time must account for at least one extra round trip.
	cfg := DefaultConfig()
	cfg.MaxOutstandingPackets = 8
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(9)
	f := MustNew(eng, tt, pol, cfg)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 1, 0, 0, 0)
	var d Delivery
	if err := f.Send(src, dst, 64*64, SendOptions{Mode: routing.InOrder}, func(x Delivery) { d = x }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Counters.RequestPackets != 64 {
		t.Fatalf("packets = %d, want 64", d.Counters.RequestPackets)
	}
	if d.DeliveredAt <= d.SendStart {
		t.Fatal("message did not take time")
	}
}

func TestIncomingFlits(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 10)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 0, 1, 0, 0)
	if err := f.Send(src, dst, 1<<14, SendOptions{Mode: routing.MinHash}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	dstRouters := map[topo.RouterID]bool{tt.RouterOfNode(dst): true}
	flits, _ := f.IncomingFlits(dstRouters)
	if flits == 0 {
		t.Fatal("destination router observed no incoming flits")
	}
	empty := map[topo.RouterID]bool{}
	if fl, st := f.IncomingFlits(empty); fl != 0 || st != 0 {
		t.Fatal("empty router set must observe nothing")
	}
}

func TestTileCountersPopulated(t *testing.T) {
	f, tt, eng := testFabric(t, 2, 11)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 0, 0, 1, 0)
	if err := f.Send(src, dst, 4096, SendOptions{Mode: routing.InOrder}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	id := tt.LinkBetween(tt.RouterOfNode(src), tt.RouterOfNode(dst))
	tc := f.TileCounters(id)
	if tc.FlitsTraversed == 0 || tc.BusyCycles == 0 {
		t.Fatalf("tile counters empty: %+v", tc)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		f, tt, eng := testFabric(t, 3, 42)
		for i := 0; i < 6; i++ {
			src := nodeAt(tt, 0, 0, i%4, 0)
			dst := nodeAt(tt, (i%2)+1, 1, i%4, 1)
			if err := f.Send(src, dst, 8192, SendOptions{Mode: routing.Adaptive}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		var stalls uint64
		for n := 0; n < tt.NumNodes(); n++ {
			stalls += f.NodeCounters(topo.NodeID(n)).RequestFlitsStalledCycles
		}
		return eng.Now(), stalls
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", t1, s1, t2, s2)
	}
}

// Property: for any message size and verb, the per-message counters match the
// analytic packet/flit accounting.
func TestPropertyCountersMatchSize(t *testing.T) {
	f := func(sizeKB uint8, useGet bool) bool {
		size := int64(sizeKB)*64 + 1
		fab, tt, eng := testFabric(nil, 2, 13)
		verb := Put
		if useGet {
			verb = Get
		}
		src := nodeAt(tt, 0, 0, 0, 0)
		dst := nodeAt(tt, 1, 0, 0, 0)
		var d Delivery
		if err := fab.Send(src, dst, size, SendOptions{Mode: routing.AdaptiveHighBias, Verb: verb}, func(x Delivery) { d = x }); err != nil {
			return false
		}
		if err := eng.Run(); err != nil {
			return false
		}
		cfg := fab.Config()
		wantPackets := uint64(cfg.PacketsForSize(size))
		wantFlits := uint64(cfg.FlitsForSize(size, verb))
		return d.Counters.RequestPackets == wantPackets &&
			d.Counters.RequestFlits == wantFlits &&
			d.Counters.MinimalPackets+d.Counters.NonMinimalPackets == wantPackets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendInterGroup64KiB(b *testing.B) {
	f, tt, eng := testFabric(b, 2, 14)
	src := nodeAt(tt, 0, 0, 0, 0)
	dst := nodeAt(tt, 1, 0, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.Send(src, dst, 1<<16, SendOptions{Mode: routing.Adaptive}, nil); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
