package network

import (
	"testing"

	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// shardedFabric builds a fabric with a sharded driver attached.
func shardedFabric(t *testing.T, groups, shards int, seed int64) (*Fabric, *sim.Engine, *sim.Sharded) {
	t.Helper()
	f, _, eng := testFabric(t, groups, seed)
	sh, err := sim.NewSharded(eng, groups, shards, f.LookaheadCycles())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AttachSharding(sh); err != nil {
		t.Fatal(err)
	}
	return f, eng, sh
}

// driveTraffic runs a deterministic cross-group traffic pattern — chained
// request/reply pairs between every group pair plus local traffic — and
// returns a digest of the complete delivery stream (every field that could
// drift) plus the executed event count.
func driveTraffic(t *testing.T, f *Fabric, eng *sim.Engine) (uint64, uint64) {
	t.Helper()
	var digest uint64
	fold := func(v uint64) { digest = digest*0x100000001b3 ^ v }
	f.AddDeliveryObserver(func(d Delivery) {
		fold(uint64(d.Src)<<32 | uint64(d.Dst))
		fold(uint64(d.SendStart))
		fold(uint64(d.DeliveredAt))
		fold(uint64(d.LastResponseAt))
		fold(d.Counters.RequestFlits)
		fold(d.Counters.RequestPacketsCumLatency)
	})
	tt := f.Topology()
	groups := tt.Config().Groups
	modes := []routing.Mode{routing.Adaptive, routing.MinHash, routing.NonMinHash, routing.AdaptiveHighBias}
	hop := 0
	var chain func(src, dst topo.NodeID, depth int) func(Delivery)
	chain = func(src, dst topo.NodeID, depth int) func(Delivery) {
		return func(d Delivery) {
			if depth == 0 {
				return
			}
			// Reply and forward to the next group, exercising cross-group
			// inject handoffs from within delivery callbacks.
			ng := (int(tt.GroupOfNode(dst)) + 1) % groups
			next := nodeAt(tt, ng, 0, int(dst)%2, int(src)%2)
			mode := modes[hop%len(modes)]
			hop++
			if err := f.Send(dst, next, 3<<10, SendOptions{Mode: mode}, chain(dst, next, depth-1)); err != nil {
				t.Error(err)
			}
		}
	}
	for g := 0; g < groups; g++ {
		src := nodeAt(tt, g, 0, 0, 0)
		dst := nodeAt(tt, (g+1)%groups, 1, 1, 1)
		if err := f.Send(src, dst, 8<<10, SendOptions{Mode: routing.Adaptive}, chain(src, dst, 6)); err != nil {
			t.Fatal(err)
		}
		local := nodeAt(tt, g, 1, 0, 1)
		if err := f.Send(src, local, 2<<10, SendOptions{Mode: routing.InOrder}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	fold(f.PacketsInjected())
	fold(uint64(eng.Now()))
	return digest, eng.ExecutedEvents()
}

// TestShardedFabricByteIdenticalToSerial is the fabric-level determinism
// bar: the same traffic on an unsharded fabric and on sharded fabrics at
// several shard counts produces an identical delivery stream, packet count,
// event count and final clock.
func TestShardedFabricByteIdenticalToSerial(t *testing.T) {
	const groups, seed = 4, 11
	serialF, _, serialE := testFabric(t, groups, seed)
	wantDigest, wantEvents := driveTraffic(t, serialF, serialE)
	if wantEvents == 0 {
		t.Fatal("traffic executed no events")
	}
	for _, shards := range []int{1, 2, 4} {
		f, eng, sh := shardedFabric(t, groups, shards, seed)
		digest, events := driveTraffic(t, f, eng)
		if digest != wantDigest || events != wantEvents {
			t.Fatalf("shards=%d diverges from serial: digest %#x/%#x events %d/%d",
				shards, digest, wantDigest, events, wantEvents)
		}
		if shards > 1 && sh.CrossPosts() == 0 {
			t.Fatalf("shards=%d: cross-group traffic never used the mailboxes", shards)
		}
	}
}

// TestShardedFabricResetRerunsIdentically pins that the sharding attachment
// survives Reset and the reset system reruns byte-identically.
func TestShardedFabricResetRerunsIdentically(t *testing.T) {
	f, eng, _ := shardedFabric(t, 4, 2, 11)
	first, _ := driveTraffic(t, f, eng)
	eng.Reset(11)
	f.Reset()
	if f.Sharding() == nil {
		t.Fatal("Reset dropped the sharding attachment")
	}
	again, _ := driveTraffic(t, f, eng)
	if first != again {
		t.Fatalf("rerun after Reset diverges: %#x vs %#x", again, first)
	}
}

// TestLookaheadCycles pins the lookahead bound: the optical propagation
// delay for multi-group geometries, zero for a single group.
func TestLookaheadCycles(t *testing.T) {
	f, _, _ := testFabric(t, 4, 1)
	if got, want := f.LookaheadCycles(), f.Config().OpticalPropagation; got != want {
		t.Fatalf("LookaheadCycles = %d, want optical propagation %d", got, want)
	}
	single, _, _ := testFabric(t, 1, 1)
	if got := single.LookaheadCycles(); got != 0 {
		t.Fatalf("single-group LookaheadCycles = %d, want 0", got)
	}
}

// TestAttachShardingValidation pins attachment error cases.
func TestAttachShardingValidation(t *testing.T) {
	f, _, eng := testFabric(t, 4, 1)
	if err := f.AttachSharding(nil); err == nil {
		t.Fatal("nil driver accepted")
	}
	wrong, err := sim.NewSharded(eng, 3, 2, 100) // group count mismatch
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AttachSharding(wrong); err == nil {
		t.Fatal("group-count mismatch accepted")
	}
	other := sim.NewEngine(1)
	foreign, err := sim.NewSharded(other, 4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AttachSharding(foreign); err == nil {
		t.Fatal("foreign-engine driver accepted")
	}
}

// TestShardPlanCoversMachine pins the partition report: every shard owns a
// dense span, the spans tile the machine exactly, and link ownership sums to
// the link count.
func TestShardPlanCoversMachine(t *testing.T) {
	f, eng, _ := shardedFabric(t, 4, 3, 1)
	_ = eng
	spans := f.ShardPlan()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	nodes, routers, links := 0, 0, 0
	prevNode, prevRouter := 0, 0
	for _, sp := range spans {
		if sp.Nodes[0] != prevNode || sp.Routers[0] != prevRouter {
			t.Fatalf("shard %d spans are not contiguous: %+v (prev node %d router %d)", sp.Shard, sp, prevNode, prevRouter)
		}
		nodes += sp.Nodes[1] - sp.Nodes[0]
		routers += sp.Routers[1] - sp.Routers[0]
		links += sp.Links
		prevNode, prevRouter = sp.Nodes[1], sp.Routers[1]
	}
	tt := f.Topology()
	if nodes != tt.NumNodes() || routers != tt.NumRouters() || links != tt.NumLinks() {
		t.Fatalf("spans tile %d nodes / %d routers / %d links, machine has %d / %d / %d",
			nodes, routers, links, tt.NumNodes(), tt.NumRouters(), tt.NumLinks())
	}
	serial, _, _ := testFabric(t, 4, 1)
	if serial.ShardPlan() != nil {
		t.Fatal("unsharded fabric reported a shard plan")
	}
}
