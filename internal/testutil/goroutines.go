// Package testutil holds small helpers shared by test files across packages.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitGoroutines polls until the goroutine count drops back to the baseline,
// failing with a full stack dump when it does not within five seconds.
// Released rank goroutines need a few scheduler passes to actually exit, so
// leak tests must poll rather than snapshot.
func WaitGoroutines(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
