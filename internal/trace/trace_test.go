package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "name", "value", "ratio")
	t.AddRow("alpha", 42, 0.5)
	t.AddRow("beta", int64(7), float32(1.25))
	return t
}

func TestRenderAlignsColumns(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "0.500") || !strings.Contains(out, "1.250") {
		t.Fatalf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d: %q", len(lines), out)
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.Contains(tbl.String(), "==") {
		t.Fatal("title marker printed for empty title")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("CSV has %d records, want 3", len(records))
	}
	// Data cells carry full precision, not the %.3f display rounding: the CSV
	// is what fitting harnesses read back.
	if records[0][0] != "name" || records[1][0] != "alpha" || records[2][2] != "1.25" {
		t.Fatalf("unexpected CSV content: %v", records)
	}
}

// TestDataCellsKeepFullPrecision pins the AddRow storage fix: float cells used
// to be truncated to three decimals before storage, so CSV/JSON files lost
// precision permanently. Rows now hold the shortest round-tripping decimal,
// while Render still displays %.3f.
func TestDataCellsKeepFullPrecision(t *testing.T) {
	tbl := NewTable("precision", "v")
	const v = 0.7234567890123456
	tbl.AddRow(v)
	got, err := strconv.ParseFloat(tbl.Rows[0][0], 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("stored cell %q does not round-trip %v (parsed %v)", tbl.Rows[0][0], v, got)
	}
	if out := tbl.String(); !strings.Contains(out, "0.723") || strings.Contains(out, tbl.Rows[0][0]) {
		t.Fatalf("rendered output should show the %%.3f display form only: %q", out)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), tbl.Rows[0][0]) {
		t.Fatalf("CSV lost full-precision cell: %q", buf.String())
	}
}

// TestHandAppendedRowsRenderVerbatim: rows pushed into Rows directly (no
// AddRow) have no display twin and must render as stored, even when mixed
// with AddRow rows in any order.
func TestHandAppendedRowsRenderVerbatim(t *testing.T) {
	tbl := NewTable("mixed", "a")
	tbl.Rows = append(tbl.Rows, []string{"raw-first"})
	tbl.AddRow(1.5)
	tbl.Rows = append(tbl.Rows, []string{"raw-last"})
	out := tbl.String()
	for _, want := range []string{"raw-first", "1.500", "raw-last"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mixed-row table missing %q: %q", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "demo" || len(decoded.Columns) != 3 || len(decoded.Rows) != 2 {
		t.Fatalf("unexpected JSON: %+v", decoded)
	}
}

func TestSaveCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "out.csv")
	jsonPath := filepath.Join(dir, "out.json")
	if err := sample().SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	if err := sample().SaveJSON(jsonPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{csvPath, jsonPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	if err := sample().SaveCSV(filepath.Join(dir, "missing", "out.csv")); err == nil {
		t.Fatal("expected error for missing directory")
	}
	if err := sample().SaveJSON(filepath.Join(dir, "missing", "out.json")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestAddRowMismatchedWidthStillRenders(t *testing.T) {
	tbl := NewTable("odd", "a", "b")
	tbl.AddRow("only-one")
	tbl.AddRow("x", "y", "extra")
	out := tbl.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "extra") {
		t.Fatalf("mismatched rows lost data: %q", out)
	}
}
