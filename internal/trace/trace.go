// Package trace provides lightweight result recording for experiments: simple
// tables that can be rendered as aligned text for the terminal or written as
// CSV/JSON files for plotting.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the data cells; each row should have len(Columns) cells.
	Rows [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells, formatting each value with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table in CSV format (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to a CSV file.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// WriteJSON writes the table as a JSON object {title, columns, rows}.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, t.Rows})
}

// SaveJSON writes the table to a JSON file.
func (t *Table) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Sync()
}
