// Package trace provides lightweight result recording for experiments: simple
// tables that can be rendered as aligned text for the terminal or written as
// CSV/JSON files for plotting.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the data cells; each row should have len(Columns) cells.
	// Float cells added through AddRow are stored at full precision — these
	// are what WriteCSV and WriteJSON emit, so files fed to fitting harnesses
	// never inherit display rounding.
	Rows [][]string

	// display holds the terminal rendering of each AddRow row (floats at the
	// historical %.3f). Render prefers it over Rows so the aligned text output
	// is unchanged; rows appended to Rows by hand have no display twin and
	// render verbatim.
	display [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells, formatting each value with %v. Floats are
// stored at full precision (shortest round-tripping decimal) and only rounded
// to three decimals when the table is rendered as text.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	disp := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
			disp[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = strconv.FormatFloat(float64(v), 'g', -1, 32)
			disp[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
			disp[i] = row[i]
		}
	}
	// Keep display aligned with Rows even if the caller appended rows to Rows
	// by hand between AddRow calls (those rows render verbatim).
	for len(t.display) < len(t.Rows) {
		t.display = append(t.display, t.Rows[len(t.display)])
	}
	t.Rows = append(t.Rows, row)
	t.display = append(t.display, disp)
}

// displayRow returns the terminal rendering of row i: the %.3f-formatted twin
// for AddRow rows, the raw cells for rows appended to Rows directly.
func (t *Table) displayRow(i int) []string {
	if i < len(t.display) {
		return t.display[i]
	}
	return t.Rows[i]
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for i := range t.Rows {
		for j, cell := range t.displayRow(i) {
			if j < len(widths) && len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for i := range t.Rows {
		if err := writeRow(t.displayRow(i)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes the table in CSV format (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to a CSV file.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// WriteJSON writes the table as a JSON object {title, columns, rows}.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, t.Rows})
}

// SaveJSON writes the table to a JSON file.
func (t *Table) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Sync()
}
