package mpi

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/testutil"
	"dragonfly/internal/topo"
)

// execFixture builds a fabric plus two disjoint four-node allocations.
func execFixture(t *testing.T, seed int64) (*network.Fabric, *alloc.Allocation, *alloc.Allocation) {
	t.Helper()
	tp, err := topo.New(topo.SmallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := routing.NewPolicy(tp, routing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	fab, err := network.New(eng, tp, pol, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[topo.NodeID]bool)
	a, err := alloc.Allocate(tp, alloc.GroupStriped, 4, eng.Rand(), used)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range a.Nodes() {
		used[n] = true
	}
	b, err := alloc.Allocate(tp, alloc.GroupStriped, 4, eng.Rand(), used)
	if err != nil {
		t.Fatal(err)
	}
	return fab, a, b
}

// ringProgram sends around the communicator ring and records each rank's
// completion time.
func ringProgram(times []sim.Time) func(*Rank) {
	return func(r *Rank) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() + r.Size() - 1) % r.Size()
		for i := 0; i < 3; i++ {
			r.SendRecv(next, 2048, prev, core.PointToPoint)
		}
		times[r.Rank()] = r.Now()
	}
}

// TestSchedulerInterleavesTwoComms: two communicators co-run on one shared
// scheduler, both finish, and the interleaving is deterministic — the same
// seed yields the exact same per-rank completion times on a rebuilt fabric.
func TestSchedulerInterleavesTwoComms(t *testing.T) {
	measure := func() ([]sim.Time, []sim.Time, sim.Time, sim.Time) {
		fab, a, b := execFixture(t, 42)
		s := NewScheduler(fab.Engine())
		ca := MustNewComm(fab, a, Config{})
		cb := MustNewComm(fab, b, Config{})
		ta := make([]sim.Time, a.Size())
		tb := make([]sim.Time, b.Size())
		if err := ca.Start(s, ringProgram(ta)); err != nil {
			t.Fatal(err)
		}
		if err := cb.Start(s, ringProgram(tb)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(nil); err != nil {
			t.Fatal(err)
		}
		if !ca.Finished() || !cb.Finished() {
			t.Fatal("scheduler returned with unfinished communicators")
		}
		return ta, tb, ca.FinishedAt(), cb.FinishedAt()
	}
	ta1, tb1, fa1, fb1 := measure()
	ta2, tb2, fa2, fb2 := measure()
	if !reflect.DeepEqual(ta1, ta2) || !reflect.DeepEqual(tb1, tb2) {
		t.Fatalf("concurrent interleaving is not deterministic:\n%v vs %v\n%v vs %v", ta1, ta2, tb1, tb2)
	}
	if fa1 != fa2 || fb1 != fb2 {
		t.Fatalf("finish times differ across repeats: %d/%d vs %d/%d", fa1, fb1, fa2, fb2)
	}
	for r, ts := range ta1 {
		if ts <= 0 {
			t.Fatalf("comm A rank %d finished at time %d", r, ts)
		}
	}
}

// TestSchedulerSharedVsPrivate: a communicator co-run with a neighbor takes
// longer (in simulated time) than the same communicator alone — the whole
// point of replacing synthetic stand-ins with real co-tenants.
func TestSchedulerSharedVsPrivate(t *testing.T) {
	alone := func() sim.Time {
		fab, a, _ := execFixture(t, 7)
		ca := MustNewComm(fab, a, Config{})
		ta := make([]sim.Time, a.Size())
		if err := ca.Run(ringProgram(ta)); err != nil {
			t.Fatal(err)
		}
		return ca.FinishedAt()
	}()
	shared := func() sim.Time {
		fab, a, b := execFixture(t, 7)
		s := NewScheduler(fab.Engine())
		ca := MustNewComm(fab, a, Config{})
		cb := MustNewComm(fab, b, Config{})
		ta := make([]sim.Time, a.Size())
		tb := make([]sim.Time, b.Size())
		if err := ca.Start(s, ringProgram(ta)); err != nil {
			t.Fatal(err)
		}
		if err := cb.Start(s, ringProgram(tb)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(nil); err != nil {
			t.Fatal(err)
		}
		return ca.FinishedAt()
	}()
	if shared < alone {
		t.Fatalf("co-running finished earlier than running alone: %d vs %d", shared, alone)
	}
}

// TestStartWhileRunningFails: restarting a communicator with unfinished ranks
// is a loud error, not silent corruption.
func TestStartWhileRunningFails(t *testing.T) {
	fab, a, _ := execFixture(t, 1)
	s := NewScheduler(fab.Engine())
	c := MustNewComm(fab, a, Config{})
	started := false
	if err := c.Start(s, func(r *Rank) {
		if r.Rank() == 0 && !started {
			started = true
			if err := c.Start(s, func(*Rank) {}); err == nil {
				t.Error("Start on a running communicator succeeded")
			}
		}
		r.Compute(10)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
}

// TestOnFinishedChainsPrograms: the OnFinished hook can Start the next
// program, which is how the facade chains measurement iterations.
func TestOnFinishedChainsPrograms(t *testing.T) {
	fab, a, _ := execFixture(t, 1)
	s := NewScheduler(fab.Engine())
	c := MustNewComm(fab, a, Config{})
	rounds := 0
	var boundaries []sim.Time
	c.OnFinished(func() {
		boundaries = append(boundaries, c.FinishedAt())
		if rounds++; rounds < 3 {
			if err := c.Start(s, func(r *Rank) { r.Compute(100) }); err != nil {
				t.Error(err)
			}
		}
	})
	if err := c.Start(s, func(r *Rank) { r.Compute(100) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("ran %d rounds, want 3", rounds)
	}
	if len(boundaries) != 3 || boundaries[0] != 100 || boundaries[1] != 200 || boundaries[2] != 300 {
		t.Fatalf("round boundaries = %v, want [100 200 300]", boundaries)
	}
}

// TestRunContextCancelled: cancellation interrupts a run that still has
// simulated work to do.
func TestRunContextCancelled(t *testing.T) {
	fab, a, _ := execFixture(t, 1)
	c := MustNewComm(fab, a, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, func(r *Rank) { r.Compute(1000) }); err != context.Canceled {
		t.Fatalf("cancelled RunContext returned %v, want context.Canceled", err)
	}
}

// TestDrainRunsDynamicallyAttachedComms: Drain keeps executing events after
// the initial comms finish, so a communicator attached by a later engine
// event (a batch job arrival) still runs to completion.
func TestDrainRunsDynamicallyAttachedComms(t *testing.T) {
	fab, a, b := execFixture(t, 5)
	s := NewScheduler(fab.Engine())
	ca := MustNewComm(fab, a, Config{})
	ta := make([]sim.Time, a.Size())
	if err := ca.Start(s, ringProgram(ta)); err != nil {
		t.Fatal(err)
	}
	var late *Comm
	tb := make([]sim.Time, b.Size())
	fab.Engine().Schedule(1_000_000, func() {
		late = MustNewComm(fab, b, Config{})
		if err := late.Start(s, ringProgram(tb)); err != nil {
			t.Error(err)
		}
	})
	if err := s.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if late == nil || !late.Finished() {
		t.Fatal("dynamically attached communicator did not run")
	}
	if late.FinishedAt() <= 1_000_000 {
		t.Fatalf("late communicator finished at %d, before it arrived", late.FinishedAt())
	}
}

// TestSchedulerShutdownReleasesParkedRanks pins Scheduler.Shutdown directly:
// a run abandoned by cancellation leaves every unfinished rank parked, and
// Shutdown releases them all (idempotently).
func TestSchedulerShutdownReleasesParkedRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	fab, a, _ := execFixture(t, 31)
	comm := MustNewComm(fab, a, Config{})
	sched := NewScheduler(fab.Engine())
	// Every rank blocks on a receive that never arrives; with no pending
	// events Run reports a deadlock and the ranks stay parked.
	if err := comm.Start(sched, func(r *Rank) { r.Recv(r.Rank()) }); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(nil); err == nil {
		t.Fatal("expected a deadlock error")
	}
	if sched.Live() != comm.Size() {
		t.Fatalf("expected %d parked ranks, got %d", comm.Size(), sched.Live())
	}
	sched.Shutdown()
	if sched.Live() != 0 {
		t.Fatalf("Shutdown left %d live ranks", sched.Live())
	}
	sched.Shutdown() // idempotent
	testutil.WaitGoroutines(t, base)
}

// TestSchedulerPanicReleasesParkedRanks is the panic half of the leak fix:
// when a panic escapes the drive loop (here from the check hook, standing in
// for an engine event callback blowing up) and a caller recovers it — as the
// trial harness does per trial — the unfinished rank goroutines must still
// be released, not parked for the life of the process.
func TestSchedulerPanicReleasesParkedRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	fab, a, _ := execFixture(t, 32)
	comm := MustNewComm(fab, a, Config{})
	sched := NewScheduler(fab.Engine())
	if err := comm.Start(sched, func(r *Rank) { r.Recv(r.Rank()) }); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the drive-loop panic to propagate")
			}
		}()
		_ = sched.Run(func() error { panic("event callback blew up") })
	}()
	if sched.Live() != 0 {
		t.Fatalf("panic unwind left %d live ranks", sched.Live())
	}
	testutil.WaitGoroutines(t, base)
}
