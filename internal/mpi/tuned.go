package mpi

import "fmt"

// Tuning selects which algorithm each collective uses as a function of the
// message size, mirroring the size-based algorithm switching of production MPI
// libraries. The thresholds are in bytes of per-rank payload.
type Tuning struct {
	// BroadcastTreeMaxBytes is the largest broadcast routed through the
	// binomial tree; larger broadcasts use scatter + allgather.
	BroadcastTreeMaxBytes int64
	// AllreduceDoublingMaxBytes is the largest allreduce using recursive
	// doubling; between this and AllreduceRabenseifnerMaxBytes Rabenseifner's
	// algorithm is used, and above it the ring algorithm.
	AllreduceDoublingMaxBytes     int64
	AllreduceRabenseifnerMaxBytes int64
	// AlltoallBruckMaxBytes is the largest alltoall using the Bruck algorithm;
	// between this and AlltoallSpreadMaxBytes the non-blocking spread algorithm
	// is used, and above it pairwise exchange.
	AlltoallBruckMaxBytes  int64
	AlltoallSpreadMaxBytes int64
	// AllgatherDoublingMaxBytes is the largest allgather using recursive
	// doubling (Bruck for non-power-of-two); larger allgathers use the ring.
	AllgatherDoublingMaxBytes int64
}

// DefaultTuning returns thresholds comparable to the defaults of mainstream
// MPI implementations (small collectives favour latency-optimal log-round
// algorithms, large ones favour bandwidth-optimal rings).
func DefaultTuning() Tuning {
	return Tuning{
		BroadcastTreeMaxBytes:         64 << 10,
		AllreduceDoublingMaxBytes:     2 << 10,
		AllreduceRabenseifnerMaxBytes: 256 << 10,
		AlltoallBruckMaxBytes:         1 << 10,
		AlltoallSpreadMaxBytes:        32 << 10,
		AllgatherDoublingMaxBytes:     32 << 10,
	}
}

// Validate reports whether the thresholds are ordered consistently.
func (t Tuning) Validate() error {
	switch {
	case t.BroadcastTreeMaxBytes < 0 || t.AllreduceDoublingMaxBytes < 0 ||
		t.AllreduceRabenseifnerMaxBytes < 0 || t.AlltoallBruckMaxBytes < 0 ||
		t.AlltoallSpreadMaxBytes < 0 || t.AllgatherDoublingMaxBytes < 0:
		return fmt.Errorf("mpi: tuning thresholds must be >= 0")
	case t.AllreduceRabenseifnerMaxBytes < t.AllreduceDoublingMaxBytes:
		return fmt.Errorf("mpi: AllreduceRabenseifnerMaxBytes (%d) must be >= AllreduceDoublingMaxBytes (%d)",
			t.AllreduceRabenseifnerMaxBytes, t.AllreduceDoublingMaxBytes)
	case t.AlltoallSpreadMaxBytes < t.AlltoallBruckMaxBytes:
		return fmt.Errorf("mpi: AlltoallSpreadMaxBytes (%d) must be >= AlltoallBruckMaxBytes (%d)",
			t.AlltoallSpreadMaxBytes, t.AlltoallBruckMaxBytes)
	}
	return nil
}

// BroadcastAlgorithm returns the algorithm name selected for a broadcast of
// size bytes.
func (t Tuning) BroadcastAlgorithm(size int64) string {
	if size <= t.BroadcastTreeMaxBytes {
		return "binomial-tree"
	}
	return "scatter-allgather"
}

// AllreduceAlgorithm returns the algorithm name selected for an allreduce of
// size bytes.
func (t Tuning) AllreduceAlgorithm(size int64) string {
	switch {
	case size <= t.AllreduceDoublingMaxBytes:
		return "recursive-doubling"
	case size <= t.AllreduceRabenseifnerMaxBytes:
		return "rabenseifner"
	default:
		return "ring"
	}
}

// AlltoallAlgorithm returns the algorithm name selected for an alltoall of
// size bytes per rank pair.
func (t Tuning) AlltoallAlgorithm(size int64) string {
	switch {
	case size <= t.AlltoallBruckMaxBytes:
		return "bruck"
	case size <= t.AlltoallSpreadMaxBytes:
		return "spread"
	default:
		return "pairwise"
	}
}

// AllgatherAlgorithm returns the algorithm name selected for an allgather of
// size bytes per rank.
func (t Tuning) AllgatherAlgorithm(size int64) string {
	if size <= t.AllgatherDoublingMaxBytes {
		return "recursive-doubling"
	}
	return "ring"
}

// TunedBroadcast broadcasts size bytes from root with the algorithm selected
// by the tuning thresholds.
func (r *Rank) TunedBroadcast(t Tuning, root int, size int64) {
	if t.BroadcastAlgorithm(size) == "binomial-tree" {
		r.Broadcast(root, size)
		return
	}
	r.BroadcastScatterAllgather(root, size)
}

// TunedAllreduce reduces size bytes with the algorithm selected by the tuning
// thresholds.
func (r *Rank) TunedAllreduce(t Tuning, size int64) {
	switch t.AllreduceAlgorithm(size) {
	case "recursive-doubling":
		r.Allreduce(size)
	case "rabenseifner":
		r.AllreduceRabenseifner(size)
	default:
		r.AllreduceRing(size)
	}
}

// TunedAlltoall exchanges size bytes per rank pair with the algorithm selected
// by the tuning thresholds.
func (r *Rank) TunedAlltoall(t Tuning, size int64) {
	switch t.AlltoallAlgorithm(size) {
	case "bruck":
		r.AlltoallBruck(size)
	case "spread":
		r.AlltoallSpread(size)
	default:
		r.Alltoall(size)
	}
}

// TunedAllgather gathers size bytes from every rank with the algorithm
// selected by the tuning thresholds.
func (r *Rank) TunedAllgather(t Tuning, size int64) {
	if t.AllgatherAlgorithm(size) == "recursive-doubling" {
		r.AllgatherRecursiveDoubling(size)
		return
	}
	r.Allgather(size)
}
