package mpi

import (
	"testing"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// testComm builds a communicator of n ranks on a small 3-group system with a
// group-striped allocation (so traffic crosses groups).
func testComm(t testing.TB, n int, cfg Config, seed int64) *Comm {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	a := alloc.MustAllocate(tt, alloc.GroupStriped, n, nil, nil)
	return MustNewComm(fab, a, cfg)
}

func TestPingPong(t *testing.T) {
	c := testComm(t, 2, Config{}, 1)
	const size = 4096
	var rtt sim.Time
	err := c.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			start := r.Now()
			r.Send(1, size, core.PointToPoint)
			r.Recv(1)
			rtt = r.Now() - start
		case 1:
			r.Recv(0)
			r.Send(0, size, core.PointToPoint)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if e := c.Rank(i).Err(); e != nil {
			t.Fatalf("rank %d error: %v", i, e)
		}
	}
	if rtt <= 0 {
		t.Fatalf("round trip took %d cycles", rtt)
	}
	// Both directions must have produced NIC traffic.
	if c.Fabric().NodeCounters(c.Allocation().Node(0)).RequestPackets == 0 ||
		c.Fabric().NodeCounters(c.Allocation().Node(1)).RequestPackets == 0 {
		t.Fatal("NIC counters empty after ping-pong")
	}
}

func TestFIFOMatchingPerPair(t *testing.T) {
	c := testComm(t, 2, Config{}, 2)
	var sizes []int64
	err := c.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 64, core.PointToPoint)
			r.Send(1, 128, core.PointToPoint)
			r.Send(1, 256, core.PointToPoint)
		case 1:
			for i := 0; i < 3; i++ {
				d := r.Recv(0)
				sizes = append(sizes, d.Size)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 64 || sizes[1] != 128 || sizes[2] != 256 {
		t.Fatalf("messages not matched in FIFO order: %v", sizes)
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	c := testComm(t, 1, Config{}, 3)
	var elapsed sim.Time
	err := c.Run(func(r *Rank) {
		start := r.Now()
		r.Compute(12345)
		elapsed = r.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 12345 {
		t.Fatalf("Compute advanced %d cycles, want 12345", elapsed)
	}
}

func TestInvalidPeerSetsErr(t *testing.T) {
	c := testComm(t, 2, Config{}, 4)
	err := c.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(5, 64, core.PointToPoint) // invalid peer
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank(0).Err() == nil {
		t.Fatal("expected rank error for invalid peer")
	}
}

func TestDeadlockDetected(t *testing.T) {
	c := testComm(t, 2, Config{}, 5)
	err := c.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1) // rank 1 never sends
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSelfSendRecv(t *testing.T) {
	c := testComm(t, 2, Config{}, 6)
	err := c.Run(func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(0, 1024, core.PointToPoint)
			d := r.Recv(0)
			r.Wait(req)
			if d == nil {
				// Same-node messages still produce a delivery record.
				r.fail(errSelfDelivery)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank(0).Err() != nil {
		t.Fatal(c.Rank(0).Err())
	}
}

var errSelfDelivery = &selfDeliveryError{}

type selfDeliveryError struct{}

func (*selfDeliveryError) Error() string { return "self delivery record missing" }

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		c := testComm(t, n, Config{}, 7)
		after := make([]sim.Time, n)
		slowest := 0
		err := c.Run(func(r *Rank) {
			// One rank is late; everyone must wait for it.
			if r.Rank() == slowest {
				r.Compute(50000)
			}
			r.Barrier()
			after[r.Rank()] = r.Now()
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if after[i] < 50000 {
				t.Fatalf("n=%d: rank %d left the barrier at %d, before the slow rank entered", n, i, after[i])
			}
		}
	}
}

func TestCollectivesComplete(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		n := n
		c := testComm(t, n, Config{}, int64(10+n))
		err := c.Run(func(r *Rank) {
			r.Broadcast(0, 2048)
			r.Allreduce(1024)
			r.Alltoall(512)
			r.Allgather(256)
			r.Reduce(0, 1024)
			r.ReduceScatterBlock(256)
			r.Gather(0, 512)
			r.Scatter(0, 512)
			r.Barrier()
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if e := c.Rank(i).Err(); e != nil {
				t.Fatalf("n=%d rank %d: %v", n, i, e)
			}
		}
		if c.Size() != n {
			t.Fatalf("Size = %d, want %d", c.Size(), n)
		}
	}
}

func TestBroadcastReachesEveryoneBeforeReturn(t *testing.T) {
	const n = 6
	c := testComm(t, n, Config{}, 11)
	times := make([]sim.Time, n)
	err := c.Run(func(r *Rank) {
		r.Broadcast(2, 8192)
		times[r.Rank()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range times {
		if i == 2 {
			continue
		}
		if ti <= 0 {
			t.Fatalf("rank %d finished broadcast at time %d", i, ti)
		}
	}
}

func TestGatherScatterTrafficVolume(t *testing.T) {
	// A gather followed by a scatter on n ranks moves exactly 2*(n-1) messages
	// of the given size; check the packet accounting matches.
	const n = 5
	const size = 1024
	c := testComm(t, n, Config{}, 16)
	err := c.Run(func(r *Rank) {
		r.Gather(2, size)
		r.Scatter(2, size)
	})
	if err != nil {
		t.Fatal(err)
	}
	packetsPerMsg := uint64(size / 64)
	want := uint64(2*(n-1)) * packetsPerMsg
	if got := c.Fabric().PacketsInjected(); got != want {
		t.Fatalf("gather+scatter injected %d packets, want %d", got, want)
	}
}

func TestDefaultRoutingUsesIMBForAlltoall(t *testing.T) {
	p := DefaultRouting()
	mode, overhead, observe := p.SelectMode(1024, core.Alltoall)
	if mode != routing.IncreasinglyMinimalBias || overhead != 0 || observe != nil {
		t.Fatalf("alltoall default = %v, overhead=%d", mode, overhead)
	}
	mode, _, _ = p.SelectMode(1024, core.PointToPoint)
	if mode != routing.Adaptive {
		t.Fatalf("p2p default = %v, want Adaptive", mode)
	}
}

func TestStaticRoutingProvider(t *testing.T) {
	p := StaticRouting{Mode: routing.AdaptiveHighBias}
	mode, _, _ := p.SelectMode(1, core.Alltoall)
	if mode != routing.AdaptiveHighBias {
		t.Fatalf("mode = %v", mode)
	}
}

func TestAppAwareRoutingIntegration(t *testing.T) {
	selectors := make(map[int]*core.Selector)
	cfg := Config{
		Routing: func(rank int) RoutingProvider {
			selCfg := core.DefaultConfig()
			selCfg.ThresholdBytes = 0
			s := core.MustNew(selCfg)
			selectors[rank] = s
			return AppAwareRouting{Selector: s}
		},
	}
	c := testComm(t, 4, cfg, 12)
	err := c.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Alltoall(4096)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, s := range selectors {
		st := s.Stats()
		if st.Messages == 0 {
			t.Fatalf("rank %d selector saw no messages", rank)
		}
		if st.Evaluations == 0 {
			t.Fatalf("rank %d selector never evaluated", rank)
		}
		if st.CounterReads == 0 {
			t.Fatalf("rank %d selector never observed counters", rank)
		}
		if st.DefaultBytes+st.BiasBytes != st.Bytes {
			t.Fatalf("rank %d selector byte accounting broken: %+v", rank, st)
		}
	}
}

func TestHostNoiseDelaysOperations(t *testing.T) {
	runWith := func(noise func(int) int64) sim.Time {
		c := testComm(t, 2, Config{HostNoise: noise}, 13)
		var total sim.Time
		err := c.Run(func(r *Rank) {
			if r.Rank() == 0 {
				start := r.Now()
				for i := 0; i < 5; i++ {
					r.Send(1, 256, core.PointToPoint)
					r.Recv(1)
				}
				total = r.Now() - start
			} else {
				for i := 0; i < 5; i++ {
					r.Recv(0)
					r.Send(0, 256, core.PointToPoint)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	quiet := runWith(nil)
	noisy := runWith(func(int) int64 { return 10000 })
	if noisy <= quiet {
		t.Fatalf("host noise did not slow down the exchange: %d vs %d", noisy, quiet)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		c := testComm(t, 6, Config{}, 99)
		err := c.Run(func(r *Rank) {
			r.Alltoall(2048)
			r.Allreduce(1024)
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.Fabric().Engine().Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs not deterministic: %d vs %d", a, b)
	}
}

func TestRankAccessors(t *testing.T) {
	c := testComm(t, 2, Config{}, 14)
	err := c.Run(func(r *Rank) {
		if r.Size() != 2 || r.Comm() != c {
			r.fail(errSelfDelivery)
		}
		if r.Node() != c.Allocation().Node(r.Rank()) {
			r.fail(errSelfDelivery)
		}
		if r.RoutingProvider() == nil {
			r.fail(errSelfDelivery)
		}
		_ = r.NICCounters()
		r.Compute(0)  // no-op
		r.Compute(-5) // no-op
		r.Wait(nil)   // no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank(0).Err() != nil || c.Rank(1).Err() != nil {
		t.Fatal("accessor checks failed inside rank program")
	}
}

func TestEmptyAllocationRejected(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(1)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	if _, err := NewComm(fab, alloc.NewAllocation(tt, nil), Config{}); err == nil {
		t.Fatal("expected error for empty allocation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewComm did not panic")
		}
	}()
	MustNewComm(fab, alloc.NewAllocation(tt, nil), Config{})
}

func TestMoreRanksThanOneMessageEach(t *testing.T) {
	// A mesh of sends: every rank sends to every other rank; ensures mailbox
	// matching scales beyond a single in-flight message per pair.
	const n = 5
	c := testComm(t, n, Config{}, 15)
	err := c.Run(func(r *Rank) {
		reqs := make([]*Request, 0, 2*(n-1))
		for p := 0; p < n; p++ {
			if p == r.Rank() {
				continue
			}
			reqs = append(reqs, r.Irecv(p), r.Isend(p, 1024, core.PointToPoint))
		}
		r.WaitAll(reqs...)
	})
	if err != nil {
		t.Fatal(err)
	}
}
