// Package mpi provides a small message-passing layer on top of the simulated
// Dragonfly fabric: ranks mapped onto allocated nodes, blocking and
// non-blocking point-to-point operations, and the collective operations used
// by the paper's microbenchmarks (barrier, broadcast, allreduce, alltoall).
//
// Each rank runs as a goroutine written in ordinary blocking style; a
// cooperative scheduler interleaves the rank goroutines with the discrete
// event engine so that exactly one goroutine (either a rank or the engine
// loop) runs at a time, keeping the simulation deterministic.
//
// The per-message routing decision hook sits exactly where the paper's
// LD_PRELOAD library interposes on uGNI: immediately before handing the
// message to the NIC (see RoutingProvider).
package mpi

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
)

// RoutingProvider decides the routing mode for each message a rank sends. It
// is the interposition point of the paper's application-aware library.
type RoutingProvider interface {
	// SelectMode is called before a message of msgSize bytes of the given
	// traffic kind is sent. The returned overhead (cycles) is charged to the
	// sending rank as host-side time, and observe, if non-nil, is invoked with
	// the per-message NIC counter delta once the transfer completes.
	SelectMode(msgSize int64, kind core.TrafficKind) (mode routing.Mode, overhead int64, observe func(delta DeliveryCounters))
}

// DeliveryCounters is re-exported so RoutingProvider implementations do not
// need to import the network package.
type DeliveryCounters = network.Delivery

// StaticRouting always returns the same routing mode (used for the paper's
// per-mode baselines).
type StaticRouting struct {
	// Mode is the routing mode applied to every message.
	Mode routing.Mode
	// AlltoallMode, if non-nil, overrides Mode for alltoall traffic, mirroring
	// MPICH_GNI_A2A_ROUTING_MODE (the "Default" configuration of the paper
	// routes alltoall with Increasingly Minimal Bias).
	AlltoallMode *routing.Mode
}

// SelectMode implements RoutingProvider.
func (s StaticRouting) SelectMode(_ int64, kind core.TrafficKind) (routing.Mode, int64, func(DeliveryCounters)) {
	if kind == core.Alltoall && s.AlltoallMode != nil {
		return *s.AlltoallMode, 0, nil
	}
	return s.Mode, 0, nil
}

// DefaultRouting returns the system default configuration used as the paper's
// "Default" baseline: ADAPTIVE_0 for everything except alltoall, which uses
// ADAPTIVE_1 (Increasingly Minimal Bias).
func DefaultRouting() RoutingProvider {
	imb := routing.IncreasinglyMinimalBias
	return StaticRouting{Mode: routing.Adaptive, AlltoallMode: &imb}
}

// AppAwareRouting adapts a core.Selector to the RoutingProvider interface.
type AppAwareRouting struct {
	// Selector is the per-rank application-aware selector.
	Selector *core.Selector
}

// SelectMode implements RoutingProvider by running Algorithm 1 and feeding the
// per-message counter delta back into the selector.
func (a AppAwareRouting) SelectMode(msgSize int64, kind core.TrafficKind) (routing.Mode, int64, func(DeliveryCounters)) {
	d := a.Selector.Select(msgSize, kind)
	var observe func(DeliveryCounters)
	if d.Evaluated {
		mode := d.Mode
		observe = func(del DeliveryCounters) { a.Selector.Observe(mode, del.Counters) }
	}
	return d.Mode, d.OverheadCycles, observe
}

// Config configures a communicator.
type Config struct {
	// Routing builds the routing provider for one rank. It is called once per
	// rank so that stateful providers (application-aware selectors) are not
	// shared between ranks. If nil, DefaultRouting is used for every rank.
	Routing func(rank int) RoutingProvider
	// Verb is the RDMA verb used for payload transfers.
	Verb network.Verb
	// EagerLimit is reserved for future use (all transfers currently follow
	// the same completion semantics).
	EagerLimit int64
	// HostNoise, if non-nil, returns a host-side delay in cycles sampled at
	// every point-to-point operation, modelling OS noise and node-level
	// contention (used by the Figure 4 experiment).
	HostNoise func(rank int) int64
}

// Comm is a communicator: a set of ranks mapped onto allocated nodes.
type Comm struct {
	fabric *network.Fabric
	alloc  *alloc.Allocation
	cfg    Config
	ranks  []*Rank

	// mailbox[src][dst] is the FIFO of arrived-but-unmatched deliveries.
	mailbox map[pairKey][]*network.Delivery
	// waiting[src][dst] is the FIFO of posted-but-unmatched receive requests.
	waiting map[pairKey][]*Request

	runnable []*Rank
	notify   chan *Rank
}

type pairKey struct{ src, dst int }

// NewComm builds a communicator with one rank per allocated node.
func NewComm(fabric *network.Fabric, a *alloc.Allocation, cfg Config) (*Comm, error) {
	if a.Size() == 0 {
		return nil, fmt.Errorf("mpi: empty allocation")
	}
	c := &Comm{
		fabric:  fabric,
		alloc:   a,
		cfg:     cfg,
		mailbox: make(map[pairKey][]*network.Delivery),
		waiting: make(map[pairKey][]*Request),
		notify:  make(chan *Rank),
	}
	for i := 0; i < a.Size(); i++ {
		var provider RoutingProvider
		if cfg.Routing != nil {
			provider = cfg.Routing(i)
		} else {
			provider = DefaultRouting()
		}
		c.ranks = append(c.ranks, &Rank{
			comm:    c,
			rank:    i,
			node:    a.Node(i),
			routing: provider,
			resume:  make(chan struct{}),
		})
	}
	return c, nil
}

// MustNewComm is like NewComm but panics on error.
func MustNewComm(fabric *network.Fabric, a *alloc.Allocation, cfg Config) *Comm {
	c, err := NewComm(fabric, a, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Fabric returns the underlying fabric.
func (c *Comm) Fabric() *network.Fabric { return c.fabric }

// Allocation returns the node allocation backing the communicator.
func (c *Comm) Allocation() *alloc.Allocation { return c.alloc }

// Rank returns the rank object with the given index (useful to inspect
// per-rank state such as selector statistics after a run).
func (c *Comm) Rank(i int) *Rank { return c.ranks[i] }

// engine returns the simulation engine.
func (c *Comm) engine() *sim.Engine { return c.fabric.Engine() }

// markRunnable re-queues a rank whose pending operation completed. It must be
// called from the scheduler goroutine (engine event callbacks qualify).
func (c *Comm) markRunnable(r *Rank) {
	if r.queued || r.finished {
		return
	}
	r.queued = true
	c.runnable = append(c.runnable, r)
}

// Run executes program on every rank (as rank goroutines) and drives the
// simulation until all ranks return. It returns an error on deadlock (no rank
// can make progress and no simulation events remain). Run must not be called
// concurrently with itself on the same engine.
func (c *Comm) Run(program func(*Rank)) error {
	for _, r := range c.ranks {
		r.finished = false
		r.queued = false
	}
	for _, r := range c.ranks {
		r := r
		go func() {
			<-r.resume
			program(r)
			r.finished = true
			c.notify <- r
		}()
		c.markRunnable(r)
	}
	remaining := len(c.ranks)
	for remaining > 0 {
		// Let every runnable rank run until it blocks or finishes.
		for len(c.runnable) > 0 {
			r := c.runnable[0]
			c.runnable = c.runnable[1:]
			r.queued = false
			if r.finished {
				continue
			}
			r.resume <- struct{}{}
			<-c.notify
			if r.finished {
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		// No rank is runnable: advance simulated time until one becomes so.
		eng := c.engine()
		for eng.Pending() > 0 && len(c.runnable) == 0 {
			stepped, err := eng.Step()
			if err != nil {
				return err
			}
			if !stepped {
				break
			}
		}
		if len(c.runnable) == 0 {
			return fmt.Errorf("mpi: deadlock, %d ranks blocked with no pending events", remaining)
		}
	}
	return nil
}

// deliver routes an arrived message to a waiting receive request or stores it
// in the mailbox. It runs inside an engine event callback.
func (c *Comm) deliver(srcRank, dstRank int, d network.Delivery) {
	key := pairKey{srcRank, dstRank}
	if reqs := c.waiting[key]; len(reqs) > 0 {
		req := reqs[0]
		c.waiting[key] = reqs[1:]
		req.complete(&d)
		return
	}
	dd := d
	c.mailbox[key] = append(c.mailbox[key], &dd)
}

// matchRecv tries to match a posted receive against an already arrived
// message; it returns true if the request completed immediately.
func (c *Comm) matchRecv(req *Request) bool {
	key := pairKey{req.peer, req.owner.rank}
	if msgs := c.mailbox[key]; len(msgs) > 0 {
		msg := msgs[0]
		c.mailbox[key] = msgs[1:]
		req.complete(msg)
		return true
	}
	c.waiting[key] = append(c.waiting[key], req)
	return false
}
