// Package mpi provides a small message-passing layer on top of the simulated
// Dragonfly fabric: ranks mapped onto allocated nodes, blocking and
// non-blocking point-to-point operations, and the collective operations used
// by the paper's microbenchmarks (barrier, broadcast, allreduce, alltoall).
//
// Each rank runs as a goroutine written in ordinary blocking style; a
// cooperative scheduler interleaves the rank goroutines with the discrete
// event engine so that exactly one goroutine (either a rank or the engine
// loop) runs at a time, keeping the simulation deterministic.
//
// The per-message routing decision hook sits exactly where the paper's
// LD_PRELOAD library interposes on uGNI: immediately before handing the
// message to the NIC (see RoutingProvider).
package mpi

import (
	"context"
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
)

// RoutingProvider decides the routing mode for each message a rank sends. It
// is the interposition point of the paper's application-aware library.
type RoutingProvider interface {
	// SelectMode is called before a message of msgSize bytes of the given
	// traffic kind is sent. The returned overhead (cycles) is charged to the
	// sending rank as host-side time, and observe, if non-nil, is invoked with
	// the per-message NIC counter delta once the transfer completes.
	SelectMode(msgSize int64, kind core.TrafficKind) (mode routing.Mode, overhead int64, observe func(delta DeliveryCounters))
}

// DeliveryCounters is re-exported so RoutingProvider implementations do not
// need to import the network package.
type DeliveryCounters = network.Delivery

// StaticRouting always returns the same routing mode (used for the paper's
// per-mode baselines).
type StaticRouting struct {
	// Mode is the routing mode applied to every message.
	Mode routing.Mode
	// AlltoallMode, if non-nil, overrides Mode for alltoall traffic, mirroring
	// MPICH_GNI_A2A_ROUTING_MODE (the "Default" configuration of the paper
	// routes alltoall with Increasingly Minimal Bias).
	AlltoallMode *routing.Mode
}

// SelectMode implements RoutingProvider.
func (s StaticRouting) SelectMode(_ int64, kind core.TrafficKind) (routing.Mode, int64, func(DeliveryCounters)) {
	if kind == core.Alltoall && s.AlltoallMode != nil {
		return *s.AlltoallMode, 0, nil
	}
	return s.Mode, 0, nil
}

// DefaultRouting returns the system default configuration used as the paper's
// "Default" baseline: ADAPTIVE_0 for everything except alltoall, which uses
// ADAPTIVE_1 (Increasingly Minimal Bias).
func DefaultRouting() RoutingProvider {
	imb := routing.IncreasinglyMinimalBias
	return StaticRouting{Mode: routing.Adaptive, AlltoallMode: &imb}
}

// AppAwareRouting adapts a core.Selector to the RoutingProvider interface.
type AppAwareRouting struct {
	// Selector is the per-rank application-aware selector.
	Selector *core.Selector
}

// SelectMode implements RoutingProvider by running Algorithm 1 and feeding the
// per-message counter delta back into the selector.
func (a AppAwareRouting) SelectMode(msgSize int64, kind core.TrafficKind) (routing.Mode, int64, func(DeliveryCounters)) {
	d := a.Selector.Select(msgSize, kind)
	var observe func(DeliveryCounters)
	if d.Evaluated {
		mode := d.Mode
		observe = func(del DeliveryCounters) { a.Selector.Observe(mode, del.Counters) }
	}
	return d.Mode, d.OverheadCycles, observe
}

// Config configures a communicator.
type Config struct {
	// Routing builds the routing provider for one rank. It is called once per
	// rank so that stateful providers (application-aware selectors) are not
	// shared between ranks. If nil, DefaultRouting is used for every rank.
	Routing func(rank int) RoutingProvider
	// Verb is the RDMA verb used for payload transfers.
	Verb network.Verb
	// EagerLimit is reserved for future use (all transfers currently follow
	// the same completion semantics).
	EagerLimit int64
	// HostNoise, if non-nil, returns a host-side delay in cycles sampled at
	// every point-to-point operation, modelling OS noise and node-level
	// contention (used by the Figure 4 experiment).
	HostNoise func(rank int) int64
}

// Comm is a communicator: a set of ranks mapped onto allocated nodes.
//
// A communicator no longer owns the engine-driving run loop: it is a
// co-schedulable participant on a Scheduler, so several communicators — real
// co-tenant applications — can interleave on one shared fabric. Comm.Run
// remains the single-communicator convenience built on a private scheduler.
type Comm struct {
	fabric *network.Fabric
	alloc  *alloc.Allocation
	cfg    Config
	ranks  []*Rank

	// mailbox[src][dst] is the FIFO of arrived-but-unmatched deliveries.
	mailbox map[pairKey][]*network.Delivery
	// waiting[src][dst] is the FIFO of posted-but-unmatched receive requests.
	waiting map[pairKey][]*Request

	// sched is the scheduler the communicator is currently attached to (set by
	// Start); own is the lazily built private scheduler Comm.Run attaches to.
	sched *Scheduler
	own   *Scheduler
	// remaining counts ranks that have not finished the current program.
	remaining int
	// started reports whether Start has ever been called.
	started bool
	// finishedAt is the simulated time the last rank of the most recent program
	// finished, stamped by the scheduler.
	finishedAt sim.Time
	// onFinished, if non-nil, runs (on the scheduler goroutine) when the last
	// rank of the current program finishes.
	onFinished func()
}

type pairKey struct{ src, dst int }

// NewComm builds a communicator with one rank per allocated node.
func NewComm(fabric *network.Fabric, a *alloc.Allocation, cfg Config) (*Comm, error) {
	if a.Size() == 0 {
		return nil, fmt.Errorf("mpi: empty allocation")
	}
	c := &Comm{
		fabric:  fabric,
		alloc:   a,
		cfg:     cfg,
		mailbox: make(map[pairKey][]*network.Delivery),
		waiting: make(map[pairKey][]*Request),
	}
	for i := 0; i < a.Size(); i++ {
		var provider RoutingProvider
		if cfg.Routing != nil {
			provider = cfg.Routing(i)
		} else {
			provider = DefaultRouting()
		}
		node := a.Node(i)
		c.ranks = append(c.ranks, &Rank{
			comm:    c,
			rank:    i,
			node:    node,
			group:   int32(fabric.Topology().GroupOfNode(node)),
			routing: provider,
			resume:  make(chan struct{}),
		})
	}
	return c, nil
}

// MustNewComm is like NewComm but panics on error.
func MustNewComm(fabric *network.Fabric, a *alloc.Allocation, cfg Config) *Comm {
	c, err := NewComm(fabric, a, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Fabric returns the underlying fabric.
func (c *Comm) Fabric() *network.Fabric { return c.fabric }

// Allocation returns the node allocation backing the communicator.
func (c *Comm) Allocation() *alloc.Allocation { return c.alloc }

// Rank returns the rank object with the given index (useful to inspect
// per-rank state such as selector statistics after a run).
func (c *Comm) Rank(i int) *Rank { return c.ranks[i] }

// engine returns the simulation engine.
func (c *Comm) engine() *sim.Engine { return c.fabric.Engine() }

// markRunnable re-queues a rank whose pending operation completed. It must be
// called from the scheduler goroutine (engine event callbacks qualify).
func (c *Comm) markRunnable(r *Rank) {
	c.sched.markRunnable(r)
}

// OnFinished installs a hook the scheduler invokes (on the scheduler
// goroutine) when the last rank of the current program finishes. The hook may
// call Start again to chain another program — the facade's concurrent runner
// uses this to string measurement iterations together — and may read the
// fabric, whose state at that moment is exactly the state at this
// communicator's completion time even while other communicators are still
// running.
func (c *Comm) OnFinished(fn func()) { c.onFinished = fn }

// Finished reports whether the most recent program has completed on every
// rank. It is false before the first Start.
func (c *Comm) Finished() bool { return c.started && c.remaining == 0 }

// FinishedAt returns the simulated time the last rank of the most recent
// program finished (0 before the first completion).
func (c *Comm) FinishedAt() sim.Time { return c.finishedAt }

// Start launches program on every rank (as rank goroutines) and attaches the
// communicator to the scheduler, which will interleave its ranks with those
// of every other attached communicator. It returns an error if the previous
// program has not finished. Start does not advance the simulation: drive it
// with Scheduler.Run or Scheduler.Drain.
func (c *Comm) Start(s *Scheduler, program func(*Rank)) error {
	if c.started && c.remaining > 0 {
		return fmt.Errorf("mpi: Start called on a communicator with %d unfinished ranks", c.remaining)
	}
	if c.sched != s {
		s.comms = append(s.comms, c)
	}
	c.sched = s
	c.started = true
	c.remaining = len(c.ranks)
	s.live += len(c.ranks)
	for _, r := range c.ranks {
		r.finished = false
		r.queued = false
		r.aborted = false
	}
	for _, r := range c.ranks {
		r := r
		go func() {
			<-r.resume
			defer func() {
				// Scheduler.Shutdown unwinds parked ranks with the abort
				// sentinel; swallow exactly that and re-raise everything else.
				if e := recover(); e != nil && e != errRankAborted {
					panic(e)
				}
				r.finished = true
				s.notify <- r
			}()
			if r.aborted {
				// Shutdown reached the rank before it ever ran: skip the
				// program entirely.
				return
			}
			program(r)
		}()
		s.markRunnable(r)
	}
	return nil
}

// Run executes program on every rank (as rank goroutines) and drives the
// simulation until all ranks return. It returns an error on deadlock (no rank
// can make progress and no simulation events remain). Run must not be called
// concurrently with itself on the same engine; to co-run several
// communicators, Start each of them on one shared Scheduler instead.
func (c *Comm) Run(program func(*Rank)) error {
	return c.RunContext(nil, program)
}

// RunContext is Run with cancellation: the context (when non-nil) is checked
// periodically while the simulation advances, so a long-running program can
// be aborted mid-iteration instead of only between iterations. A cancelled
// run returns the context's error; the communicator's parked rank goroutines
// are released (Scheduler.Shutdown), but the communicator's state is torn
// mid-operation and it must not be reused.
func (c *Comm) RunContext(ctx context.Context, program func(*Rank)) error {
	if c.own == nil {
		c.own = NewScheduler(c.engine())
	}
	if err := c.Start(c.own, program); err != nil {
		return err
	}
	if err := c.own.Run(ContextCheck(ctx)); err != nil {
		c.own.Shutdown()
		return err
	}
	return nil
}

// deliver routes an arrived message to a waiting receive request or stores it
// in the mailbox. It runs inside an engine event callback.
func (c *Comm) deliver(srcRank, dstRank int, d network.Delivery) {
	key := pairKey{srcRank, dstRank}
	if reqs := c.waiting[key]; len(reqs) > 0 {
		req := reqs[0]
		c.waiting[key] = reqs[1:]
		req.complete(&d)
		return
	}
	dd := d
	c.mailbox[key] = append(c.mailbox[key], &dd)
}

// matchRecv tries to match a posted receive against an already arrived
// message; it returns true if the request completed immediately.
func (c *Comm) matchRecv(req *Request) bool {
	key := pairKey{req.peer, req.owner.rank}
	if msgs := c.mailbox[key]; len(msgs) > 0 {
		msg := msgs[0]
		c.mailbox[key] = msgs[1:]
		req.complete(msg)
		return true
	}
	c.waiting[key] = append(c.waiting[key], req)
	return false
}
