package mpi

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/counters"
	"dragonfly/internal/network"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// Rank is one simulated process. All methods must be called from the rank's
// own program goroutine (started by Comm.Run); they may block in simulated
// time.
type Rank struct {
	comm    *Comm
	rank    int
	node    topo.NodeID
	group   int32
	routing RoutingProvider

	resume   chan struct{}
	queued   bool
	finished bool
	// aborted is set by Scheduler.Shutdown before the parked goroutine is
	// resumed for the last time; block() turns it into the unwind panic that
	// terminates the rank's program.
	aborted bool

	// computeDone flags the completion of the (single) outstanding Compute
	// event; see Compute and HandleEvent.
	computeDone bool

	sendSeq uint64
	err     error
}

// Rank returns the rank index within the communicator.
func (r *Rank) Rank() int { return r.rank }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.Size() }

// Node returns the node this rank is mapped onto.
func (r *Rank) Node() topo.NodeID { return r.node }

// Comm returns the communicator.
func (r *Rank) Comm() *Comm { return r.comm }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.comm.engine().Now() }

// Err returns the first error encountered by this rank's operations (an
// invalid peer, a fabric rejection). Operations after an error are no-ops so
// that programs do not need to check every call; Err must be checked after
// Comm.Run returns.
func (r *Rank) Err() error { return r.err }

// RoutingProvider returns the routing provider attached to this rank.
func (r *Rank) RoutingProvider() RoutingProvider { return r.routing }

// fail records the first error.
func (r *Rank) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// block suspends the rank goroutine until the scheduler resumes it. A resume
// issued by Scheduler.Shutdown unwinds the rank's program instead of
// continuing it: the program goroutine would otherwise stay parked forever
// when a run is abandoned (cancellation, deadlock).
func (r *Rank) block() {
	r.comm.sched.notify <- r
	<-r.resume
	if r.aborted {
		panic(errRankAborted)
	}
}

// Request is a handle for a non-blocking operation.
type Request struct {
	owner  *Rank
	peer   int
	isSend bool

	done     bool
	delivery *network.Delivery
}

// Done reports whether the operation completed.
func (q *Request) Done() bool { return q.done }

// Delivery returns the fabric-level delivery record of a completed receive (or
// of a completed send). It returns nil for operations that are not complete or
// that carried no network transfer (same-rank copies).
func (q *Request) Delivery() *network.Delivery { return q.delivery }

// complete marks the request as done and re-queues its owner if it is waiting.
func (q *Request) complete(d *network.Delivery) {
	q.done = true
	q.delivery = d
	q.owner.comm.markRunnable(q.owner)
}

// Compute advances this rank's local time by the given number of cycles,
// modelling computation or host-side overhead.
func (r *Rank) Compute(cycles int64) {
	if cycles <= 0 || r.err != nil {
		return
	}
	doneAt := r.comm.engine().Now() + cycles
	// Compute blocks until its completion event has fired, so at most one is
	// outstanding per rank and a flag on the rank replaces a per-call closure
	// (this is the hottest non-fabric scheduling site: every host-noise sample
	// and selector overhead charge lands here).
	r.computeDone = false
	if sh := r.comm.fabric.Sharding(); sh != nil {
		if r.comm.fabric.ShardableActive() {
			// Under the shardable variant the wakeup is a conforming-parallel
			// event of the rank's group: it executes inside a horizon window
			// (no state is touched — the rank goroutine is parked until the
			// scheduler hands it the turn) and defers the markRunnable
			// callback to the window barrier through the canonical merge, so
			// compute wakeups neither clip windows nor ride the serial
			// domain. The rank resumes with the engine clock at the window
			// maximum rather than exactly at doneAt — the variant's relaxed,
			// still shard-count-deterministic timing model.
			sh.ScheduleLocal(r.group, doneAt, r, 0, 0)
		} else {
			// Exact variant on a sharded system: the rank is pinned to its
			// node's group and the wakeup is filed on the owning shard's heap
			// with its global sequence number intact, so the execution order
			// stays byte-identical to the serial engine.
			sh.ScheduleResident(r.group, doneAt, r, 0, 0)
		}
	} else {
		r.comm.engine().ScheduleCall(doneAt, r, 0, 0)
	}
	for !r.computeDone {
		r.block()
	}
}

// HandleEvent implements sim.Handler for Compute completion events (and for
// the barrier action a promoted wakeup defers).
func (r *Rank) HandleEvent(_ *sim.Engine, _, _ int64) {
	r.computeDone = true
	r.comm.markRunnable(r)
}

// HandleLocalEvent implements sim.LocalHandler for promoted Compute wakeups:
// the in-window half does nothing but defer the serial-domain callback
// (markRunnable needs the scheduler) to the window barrier.
func (r *Rank) HandleLocalEvent(sc *sim.ShardContext, a, b int64) {
	sc.Defer(r, a, b)
}

// hostNoise charges the configured host-side noise, if any.
func (r *Rank) hostNoise() {
	if r.comm.cfg.HostNoise == nil {
		return
	}
	if d := r.comm.cfg.HostNoise(r.rank); d > 0 {
		r.Compute(d)
	}
}

// Isend starts a non-blocking send of size bytes to the peer rank. kind
// describes the traffic for the routing provider (use core.Alltoall inside
// all-to-all exchanges).
func (r *Rank) Isend(peer int, size int64, kind core.TrafficKind) *Request {
	req := &Request{owner: r, peer: peer, isSend: true}
	if r.err != nil {
		req.done = true
		return req
	}
	if peer < 0 || peer >= r.Size() {
		r.fail(fmt.Errorf("mpi: rank %d sending to invalid peer %d", r.rank, peer))
		req.done = true
		return req
	}
	if size < 0 {
		size = 0
	}
	mode, overhead, observe := r.routing.SelectMode(size, kind)
	if overhead > 0 {
		r.Compute(overhead)
	}
	dstNode := r.comm.alloc.Node(peer)
	srcRank, dstRank := r.rank, peer
	r.sendSeq++
	err := r.comm.fabric.Send(r.node, dstNode, size, network.SendOptions{
		Mode: mode,
		Verb: r.comm.cfg.Verb,
		Tag:  uint64(srcRank)<<32 | r.sendSeq,
	}, func(d network.Delivery) {
		if observe != nil {
			observe(d)
		}
		req.complete(&d)
		r.comm.deliver(srcRank, dstRank, d)
	})
	if err != nil {
		r.fail(err)
		req.done = true
	}
	return req
}

// Irecv starts a non-blocking receive of the next message from the peer rank.
func (r *Rank) Irecv(peer int) *Request {
	req := &Request{owner: r, peer: peer}
	if r.err != nil {
		req.done = true
		return req
	}
	if peer < 0 || peer >= r.Size() {
		r.fail(fmt.Errorf("mpi: rank %d receiving from invalid peer %d", r.rank, peer))
		req.done = true
		return req
	}
	r.comm.matchRecv(req)
	return req
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req *Request) {
	if req == nil {
		return
	}
	for !req.done && r.err == nil {
		r.block()
	}
}

// WaitAll blocks until all requests complete.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		r.Wait(q)
	}
}

// Send performs a blocking send. Completion follows rendezvous semantics: the
// call returns when the payload has been delivered to the destination NIC.
func (r *Rank) Send(peer int, size int64, kind core.TrafficKind) {
	r.hostNoise()
	r.Wait(r.Isend(peer, size, kind))
}

// Recv performs a blocking receive of the next message from peer and returns
// its delivery record (nil for same-rank transfers that used no network).
func (r *Rank) Recv(peer int) *network.Delivery {
	r.hostNoise()
	req := r.Irecv(peer)
	r.Wait(req)
	return req.delivery
}

// SendRecv exchanges messages with two peers concurrently (sends size bytes to
// sendPeer while receiving from recvPeer) and returns the received delivery.
func (r *Rank) SendRecv(sendPeer int, size int64, recvPeer int, kind core.TrafficKind) *network.Delivery {
	r.hostNoise()
	recvReq := r.Irecv(recvPeer)
	sendReq := r.Isend(sendPeer, size, kind)
	r.Wait(sendReq)
	r.Wait(recvReq)
	return recvReq.delivery
}

// NICCounters returns the cumulative NIC counters of the node this rank runs
// on, as the application would read them through PAPI.
func (r *Rank) NICCounters() counters.NIC {
	return r.comm.fabric.NodeCounters(r.node)
}
