package mpi

import (
	"testing"

	"dragonfly/internal/counters"
)

// runCollective executes body on a fresh communicator of n ranks and returns
// the summed NIC counter deltas of the job.
func runCollective(t *testing.T, n int, seed int64, body func(*Rank)) counters.NIC {
	t.Helper()
	c := testComm(t, n, Config{}, seed)
	before := jobNICCounters(c)
	if err := c.Run(body); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := c.Rank(i).Err(); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return jobNICCounters(c).Sub(before)
}

// jobNICCounters sums the NIC counters over all allocated nodes.
func jobNICCounters(c *Comm) counters.NIC {
	var total counters.NIC
	for i := 0; i < c.Size(); i++ {
		total.Add(c.Fabric().NodeCounters(c.Allocation().Node(i)))
	}
	return total
}

func TestAllreduceRingCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		delta := runCollective(t, n, 11, func(r *Rank) { r.AllreduceRing(4096) })
		if delta.RequestPackets == 0 {
			t.Fatalf("n=%d: ring allreduce generated no traffic", n)
		}
	}
}

func TestAllreduceRingSingleRankIsNoop(t *testing.T) {
	delta := runCollective(t, 1, 12, func(r *Rank) { r.AllreduceRing(4096) })
	if delta.RequestPackets != 0 {
		t.Fatalf("single-rank ring allreduce produced traffic: %+v", delta)
	}
}

func TestAllreduceRabenseifnerCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		delta := runCollective(t, n, 13, func(r *Rank) { r.AllreduceRabenseifner(8192) })
		if delta.RequestPackets == 0 {
			t.Fatalf("n=%d: rabenseifner allreduce generated no traffic", n)
		}
	}
}

func TestAllreduceRabenseifnerNonPowerOfTwoFallsBack(t *testing.T) {
	delta := runCollective(t, 6, 14, func(r *Rank) { r.AllreduceRabenseifner(8192) })
	if delta.RequestPackets == 0 {
		t.Fatal("non-power-of-two rabenseifner (ring fallback) generated no traffic")
	}
}

func TestAllreduceRingMovesLessDataThanRecursiveDoubling(t *testing.T) {
	// For large vectors the ring algorithm is bandwidth optimal: each rank
	// sends 2*(n-1)*size/n bytes, whereas recursive doubling sends
	// log2(n)*size bytes. With n=8 the ring should inject fewer flits.
	const size = 64 << 10
	ring := runCollective(t, 8, 15, func(r *Rank) { r.AllreduceRing(size) })
	doubling := runCollective(t, 8, 15, func(r *Rank) { r.Allreduce(size) })
	if ring.RequestFlits >= doubling.RequestFlits {
		t.Fatalf("ring allreduce injected %d flits, recursive doubling %d; expected ring < doubling",
			ring.RequestFlits, doubling.RequestFlits)
	}
}

func TestAlltoallBruckCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		delta := runCollective(t, n, 16, func(r *Rank) { r.AlltoallBruck(256) })
		if delta.RequestPackets == 0 {
			t.Fatalf("n=%d: bruck alltoall generated no traffic", n)
		}
	}
}

func TestAlltoallSpreadCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		delta := runCollective(t, n, 17, func(r *Rank) { r.AlltoallSpread(512) })
		if delta.RequestPackets == 0 {
			t.Fatalf("n=%d: spread alltoall generated no traffic", n)
		}
	}
}

func TestAlltoallBruckTradesStartupsForBandwidth(t *testing.T) {
	// Bruck uses ceil(log2(n)) rounds instead of n-1, so each rank issues
	// fewer sends (fewer message startups); the price is that blocks are
	// forwarded multiple times, so the total injected flits are at least as
	// many as with pairwise exchange.
	const n, size = 8, 64
	countSends := func(body func(*Rank)) (sends uint64, delta counters.NIC) {
		c := testComm(t, n, Config{}, 18)
		before := jobNICCounters(c)
		if err := c.Run(body); err != nil {
			t.Fatalf("Run: %v", err)
		}
		for i := 0; i < n; i++ {
			sends += c.Rank(i).sendSeq
		}
		return sends, jobNICCounters(c).Sub(before)
	}
	bruckSends, bruck := countSends(func(r *Rank) { r.AlltoallBruck(size) })
	pairSends, pairwise := countSends(func(r *Rank) { r.Alltoall(size) })
	if bruckSends >= pairSends {
		t.Fatalf("bruck issued %d sends, pairwise %d; expected bruck < pairwise", bruckSends, pairSends)
	}
	if bruck.RequestFlits < pairwise.RequestFlits {
		t.Fatalf("bruck injected %d flits, pairwise %d; expected bruck >= pairwise", bruck.RequestFlits, pairwise.RequestFlits)
	}
}

func TestGatherScatterBinomialComplete(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		for root := 0; root < n; root += n - 1 {
			root := root
			delta := runCollective(t, n, 19, func(r *Rank) { r.GatherBinomial(root, 128) })
			if delta.RequestPackets == 0 {
				t.Fatalf("n=%d root=%d: binomial gather generated no traffic", n, root)
			}
			delta = runCollective(t, n, 20, func(r *Rank) { r.ScatterBinomial(root, 128) })
			if delta.RequestPackets == 0 {
				t.Fatalf("n=%d root=%d: binomial scatter generated no traffic", n, root)
			}
		}
	}
}

func TestBroadcastScatterAllgatherCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		delta := runCollective(t, n, 21, func(r *Rank) { r.BroadcastScatterAllgather(0, 32<<10) })
		if delta.RequestPackets == 0 {
			t.Fatalf("n=%d: scatter-allgather broadcast generated no traffic", n)
		}
	}
}

func TestAllgatherVariantsComplete(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		rd := runCollective(t, n, 22, func(r *Rank) { r.AllgatherRecursiveDoubling(512) })
		if rd.RequestPackets == 0 {
			t.Fatalf("n=%d: recursive-doubling allgather generated no traffic", n)
		}
		br := runCollective(t, n, 23, func(r *Rank) { r.AllgatherBruck(512) })
		if br.RequestPackets == 0 {
			t.Fatalf("n=%d: bruck allgather generated no traffic", n)
		}
	}
}

func TestReduceScatterHalvingCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		delta := runCollective(t, n, 24, func(r *Rank) { r.ReduceScatterHalving(1024) })
		if delta.RequestPackets == 0 {
			t.Fatalf("n=%d: reduce-scatter halving generated no traffic", n)
		}
	}
}

func TestScanIsAChain(t *testing.T) {
	const n = 6
	c := testComm(t, n, Config{}, 25)
	if err := c.Run(func(r *Rank) { r.Scan(2048) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every rank except the last sends exactly one message; every rank except
	// the first receives exactly one. The last rank's NIC must therefore show
	// no request packets while all others show some.
	last := c.Fabric().NodeCounters(c.Allocation().Node(n - 1))
	if last.RequestPackets != 0 {
		t.Fatalf("last rank of scan sent %d packets, want 0", last.RequestPackets)
	}
	for i := 0; i < n-1; i++ {
		if c.Fabric().NodeCounters(c.Allocation().Node(i)).RequestPackets == 0 {
			t.Fatalf("rank %d of scan sent no packets", i)
		}
	}
}

func TestCollectivesOnSingleRankAreNoops(t *testing.T) {
	delta := runCollective(t, 1, 26, func(r *Rank) {
		r.AllreduceRing(1024)
		r.AllreduceRabenseifner(1024)
		r.AlltoallBruck(1024)
		r.AlltoallSpread(1024)
		r.GatherBinomial(0, 1024)
		r.ScatterBinomial(0, 1024)
		r.BroadcastScatterAllgather(0, 1024)
		r.AllgatherRecursiveDoubling(1024)
		r.AllgatherBruck(1024)
		r.ReduceScatterHalving(1024)
		r.Scan(1024)
	})
	if delta.RequestPackets != 0 {
		t.Fatalf("single-rank collectives produced traffic: %+v", delta)
	}
}

func TestTinyMessageCollectivesComplete(t *testing.T) {
	// Degenerate sizes (0 and 1 byte) must not hang or divide by zero.
	for _, size := range []int64{0, 1} {
		size := size
		delta := runCollective(t, 4, 27, func(r *Rank) {
			r.AllreduceRing(size)
			r.AllreduceRabenseifner(size)
			r.AlltoallBruck(size)
			r.BroadcastScatterAllgather(0, size)
			r.ReduceScatterHalving(size)
		})
		if delta.RequestPackets == 0 {
			t.Fatalf("size=%d: collectives generated no traffic", size)
		}
	}
}
