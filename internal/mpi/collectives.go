package mpi

import (
	"dragonfly/internal/core"
)

// Collective algorithms. These are the textbook algorithms Cray MPICH uses for
// mid-sized messages and are sufficient to generate the traffic patterns the
// paper's microbenchmarks exercise: log-round dissemination (barrier),
// binomial trees (broadcast, reduce) recursive doubling (allreduce) and
// pairwise exchange (alltoall).

// controlMessageBytes is the payload of pure synchronization messages.
const controlMessageBytes = 8

// Barrier blocks until every rank has entered the barrier. It uses the
// dissemination algorithm: ceil(log2(n)) rounds of small messages.
func (r *Rank) Barrier() {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	for dist := 1; dist < n; dist *= 2 {
		to := (r.rank + dist) % n
		from := (r.rank - dist + n) % n
		recvReq := r.Irecv(from)
		sendReq := r.Isend(to, controlMessageBytes, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}

// Broadcast sends size bytes from root to every other rank using a binomial
// tree rooted at root.
func (r *Rank) Broadcast(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	// Re-number ranks so the root is virtual rank 0.
	vrank := (r.rank - root + n) % n
	// Receive from the parent (unless root).
	if vrank != 0 {
		mask := 1
		for mask < n {
			if vrank&mask != 0 {
				parent := ((vrank - mask) + root) % n
				r.Recv(parent)
				break
			}
			mask <<= 1
		}
	}
	// Forward to children.
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			break
		}
		mask <<= 1
	}
	for child := mask >> 1; child >= 1; child >>= 1 {
		if vrank&child == 0 && vrank+child < n {
			dest := ((vrank + child) + root) % n
			r.Send(dest, size, core.PointToPoint)
		}
	}
}

// Reduce combines size bytes from every rank onto root using a binomial tree
// (data flows leaf-to-root; the reduction operation itself is not simulated).
func (r *Rank) Reduce(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	vrank := (r.rank - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			r.Send(parent, size, core.PointToPoint)
			return
		}
		partner := vrank | mask
		if partner < n {
			r.Recv((partner + root) % n)
		}
		mask <<= 1
	}
}

// Allreduce performs a sum-style allreduce of size bytes (the full vector is
// exchanged at every step, as in recursive doubling). For non-power-of-two
// communicators it falls back to Reduce-to-0 followed by Broadcast.
func (r *Rank) Allreduce(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		r.Reduce(0, size)
		r.Broadcast(0, size)
		return
	}
	r.hostNoise()
	for mask := 1; mask < n; mask <<= 1 {
		partner := r.rank ^ mask
		r.SendRecv(partner, size, partner, core.PointToPoint)
	}
}

// Alltoall exchanges size bytes between every pair of ranks using the pairwise
// exchange algorithm (n-1 rounds). The traffic is marked core.Alltoall so that
// routing providers can apply the alltoall-specific default (Increasingly
// Minimal Bias) or the selector's alltoall branch.
func (r *Rank) Alltoall(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	for step := 1; step < n; step++ {
		var partner int
		if n&(n-1) == 0 {
			partner = r.rank ^ step
		} else {
			partner = (r.rank + step) % n
		}
		sendTo := partner
		recvFrom := partner
		if n&(n-1) != 0 {
			sendTo = (r.rank + step) % n
			recvFrom = (r.rank - step + n) % n
		}
		recvReq := r.Irecv(recvFrom)
		sendReq := r.Isend(sendTo, size, core.Alltoall)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}

// Allgather gathers size bytes from every rank on every rank using the ring
// algorithm (n-1 steps, each forwarding the previously received block).
func (r *Rank) Allgather(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	next := (r.rank + 1) % n
	prev := (r.rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		recvReq := r.Irecv(prev)
		sendReq := r.Isend(next, size, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}

// Gather collects size bytes from every rank onto root. Leaves send their
// block directly to the root; the simple linear algorithm matches what MPI
// implementations use for small and mid-sized gathers.
func (r *Rank) Gather(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	if r.rank == root {
		reqs := make([]*Request, 0, n-1)
		for p := 0; p < n; p++ {
			if p == root {
				continue
			}
			reqs = append(reqs, r.Irecv(p))
		}
		r.WaitAll(reqs...)
		return
	}
	r.Send(root, size, core.PointToPoint)
}

// Scatter distributes one block of size bytes from root to every other rank
// (linear algorithm).
func (r *Rank) Scatter(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	if r.rank == root {
		reqs := make([]*Request, 0, n-1)
		for p := 0; p < n; p++ {
			if p == root {
				continue
			}
			reqs = append(reqs, r.Isend(p, size, core.PointToPoint))
		}
		r.WaitAll(reqs...)
		return
	}
	r.Recv(root)
}

// ReduceScatterBlock reduces and scatters equally sized blocks using pairwise
// exchange; each rank ends up with one reduced block of size bytes.
func (r *Rank) ReduceScatterBlock(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	for step := 1; step < n; step++ {
		partner := (r.rank + step) % n
		from := (r.rank - step + n) % n
		recvReq := r.Irecv(from)
		sendReq := r.Isend(partner, size, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}
