package mpi

import (
	"testing"
	"testing/quick"
)

func TestDefaultTuningValidates(t *testing.T) {
	if err := DefaultTuning().Validate(); err != nil {
		t.Fatalf("DefaultTuning is invalid: %v", err)
	}
}

func TestTuningValidateRejectsInvertedThresholds(t *testing.T) {
	tun := DefaultTuning()
	tun.AllreduceRabenseifnerMaxBytes = tun.AllreduceDoublingMaxBytes - 1
	if err := tun.Validate(); err == nil {
		t.Fatal("expected error for inverted allreduce thresholds")
	}
	tun = DefaultTuning()
	tun.AlltoallSpreadMaxBytes = tun.AlltoallBruckMaxBytes - 1
	if err := tun.Validate(); err == nil {
		t.Fatal("expected error for inverted alltoall thresholds")
	}
	tun = DefaultTuning()
	tun.BroadcastTreeMaxBytes = -1
	if err := tun.Validate(); err == nil {
		t.Fatal("expected error for negative threshold")
	}
}

func TestTuningAlgorithmSelection(t *testing.T) {
	tun := DefaultTuning()
	cases := []struct {
		size                                      int64
		bcast, allreduce, alltoall, allgatherWant string
	}{
		{64, "binomial-tree", "recursive-doubling", "bruck", "recursive-doubling"},
		{8 << 10, "binomial-tree", "rabenseifner", "spread", "recursive-doubling"},
		{1 << 20, "scatter-allgather", "ring", "pairwise", "ring"},
	}
	for _, c := range cases {
		if got := tun.BroadcastAlgorithm(c.size); got != c.bcast {
			t.Errorf("BroadcastAlgorithm(%d) = %q, want %q", c.size, got, c.bcast)
		}
		if got := tun.AllreduceAlgorithm(c.size); got != c.allreduce {
			t.Errorf("AllreduceAlgorithm(%d) = %q, want %q", c.size, got, c.allreduce)
		}
		if got := tun.AlltoallAlgorithm(c.size); got != c.alltoall {
			t.Errorf("AlltoallAlgorithm(%d) = %q, want %q", c.size, got, c.alltoall)
		}
		if got := tun.AllgatherAlgorithm(c.size); got != c.allgatherWant {
			t.Errorf("AllgatherAlgorithm(%d) = %q, want %q", c.size, got, c.allgatherWant)
		}
	}
}

// TestTuningSelectionIsMonotonic checks that for any pair of sizes a <= b the
// selected algorithm never moves "backwards" from a bandwidth-oriented choice
// to a latency-oriented one.
func TestTuningSelectionIsMonotonic(t *testing.T) {
	tun := DefaultTuning()
	rankAllreduce := map[string]int{"recursive-doubling": 0, "rabenseifner": 1, "ring": 2}
	rankAlltoall := map[string]int{"bruck": 0, "spread": 1, "pairwise": 2}
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		if rankAllreduce[tun.AllreduceAlgorithm(x)] > rankAllreduce[tun.AllreduceAlgorithm(y)] {
			return false
		}
		if rankAlltoall[tun.AlltoallAlgorithm(x)] > rankAlltoall[tun.AlltoallAlgorithm(y)] {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTunedCollectivesComplete(t *testing.T) {
	tun := DefaultTuning()
	for _, size := range []int64{64, 8 << 10, 128 << 10} {
		size := size
		delta := runCollective(t, 4, 31, func(r *Rank) {
			r.TunedBroadcast(tun, 0, size)
			r.TunedAllreduce(tun, size)
			r.TunedAlltoall(tun, size)
			r.TunedAllgather(tun, size)
		})
		if delta.RequestPackets == 0 {
			t.Fatalf("size=%d: tuned collectives generated no traffic", size)
		}
	}
}
