package mpi

import (
	"dragonfly/internal/core"
)

// Additional collective algorithms. Production MPI libraries (including Cray
// MPICH on Aries) switch between several algorithms per collective depending
// on the message size and communicator size; the traffic pattern each
// algorithm generates differs substantially (tree vs. ring vs. pairwise), and
// with it the sensitivity to the routing mode. These implementations let the
// experiments and the ablation benches exercise the application-aware selector
// under every pattern a real MPI stack would produce.
//
// As with the basic algorithms in collectives.go, only the traffic is
// simulated; the arithmetic of reductions is not.

// BroadcastScatterAllgather broadcasts size bytes from root using the
// van de Geijn algorithm: a binomial scatter of size/n blocks followed by a
// ring allgather. MPI implementations prefer it over the binomial tree for
// large messages because every rank both sends and receives roughly
// 2*size*(n-1)/n bytes instead of the tree's size*log(n) on the root path.
func (r *Rank) BroadcastScatterAllgather(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	block := size / int64(n)
	if block < 1 {
		block = 1
	}
	r.ScatterBinomial(root, block)
	r.Allgather(block)
}

// AllreduceRing performs an allreduce of size bytes with the ring algorithm:
// a ring reduce-scatter (n-1 steps of size/n-byte blocks) followed by a ring
// allgather (another n-1 steps). It is the bandwidth-optimal algorithm for
// large vectors and generates strictly nearest-rank traffic.
func (r *Rank) AllreduceRing(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	block := size / int64(n)
	if block < 1 {
		block = 1
	}
	next := (r.rank + 1) % n
	prev := (r.rank - 1 + n) % n
	// Reduce-scatter phase.
	for step := 0; step < n-1; step++ {
		recvReq := r.Irecv(prev)
		sendReq := r.Isend(next, block, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
	// Allgather phase.
	for step := 0; step < n-1; step++ {
		recvReq := r.Irecv(prev)
		sendReq := r.Isend(next, block, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}

// AllreduceRabenseifner performs an allreduce of size bytes with
// Rabenseifner's algorithm: recursive-halving reduce-scatter followed by
// recursive-doubling allgather. It requires a power-of-two communicator; for
// other sizes it falls back to the ring algorithm. Compared to recursive
// doubling it halves the exchanged volume at every reduce-scatter step, which
// changes the message-size distribution the routing selector observes.
func (r *Rank) AllreduceRabenseifner(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		r.AllreduceRing(size)
		return
	}
	r.hostNoise()
	// Recursive-halving reduce-scatter: the exchanged block halves each round.
	chunk := size / 2
	if chunk < 1 {
		chunk = 1
	}
	for mask := 1; mask < n; mask <<= 1 {
		partner := r.rank ^ mask
		r.SendRecv(partner, chunk, partner, core.PointToPoint)
		chunk /= 2
		if chunk < 1 {
			chunk = 1
		}
	}
	// Recursive-doubling allgather: the exchanged block doubles each round.
	chunk = size / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	for mask := n >> 1; mask >= 1; mask >>= 1 {
		partner := r.rank ^ mask
		r.SendRecv(partner, chunk, partner, core.PointToPoint)
		chunk *= 2
		if chunk > size {
			chunk = size
		}
	}
}

// AlltoallBruck performs an alltoall of size bytes per rank pair using the
// Bruck algorithm: ceil(log2(n)) rounds in which each rank forwards roughly
// half of all blocks to a rank at distance 2^k. MPI implementations use it for
// small messages because it trades bandwidth (each block moves up to log(n)
// times) for a logarithmic number of message startups.
func (r *Rank) AlltoallBruck(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	for dist := 1; dist < n; dist <<= 1 {
		// Count the blocks whose destination-index has bit `dist` set; those are
		// the blocks forwarded this round.
		blocks := 0
		for b := 1; b < n; b++ {
			if b&dist != 0 {
				blocks++
			}
		}
		bytes := int64(blocks) * size
		if bytes < 1 {
			bytes = 1
		}
		sendTo := (r.rank + dist) % n
		recvFrom := (r.rank - dist + n) % n
		recvReq := r.Irecv(recvFrom)
		sendReq := r.Isend(sendTo, bytes, core.Alltoall)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}

// AlltoallSpread performs an alltoall of size bytes per rank pair by posting
// every send and receive at once (the "spread"/non-blocking-linear algorithm).
// It produces the highest instantaneous injection pressure of all alltoall
// algorithms and is the pattern most sensitive to the routing mode.
func (r *Rank) AlltoallSpread(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	reqs := make([]*Request, 0, 2*(n-1))
	for step := 1; step < n; step++ {
		peer := (r.rank + step) % n
		reqs = append(reqs, r.Irecv((r.rank-step+n)%n))
		reqs = append(reqs, r.Isend(peer, size, core.Alltoall))
	}
	r.WaitAll(reqs...)
}

// GatherBinomial collects size bytes from every rank onto root using a
// binomial tree: interior ranks aggregate the blocks of their subtree before
// forwarding, so the message grows towards the root.
func (r *Rank) GatherBinomial(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	vrank := (r.rank - root + n) % n
	// Collect from children (sub-trees at increasing distance).
	gathered := int64(1)
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			break
		}
		childV := vrank | mask
		if childV < n {
			r.Recv((childV + root) % n)
			// The child owned a subtree of up to `mask` ranks.
			sub := int64(mask)
			if int64(n)-int64(childV) < sub {
				sub = int64(n) - int64(childV)
			}
			gathered += sub
		}
		mask <<= 1
	}
	// Forward the aggregated block to the parent.
	if vrank != 0 {
		parentV := vrank &^ mask
		r.Send((parentV+root)%n, gathered*size, core.PointToPoint)
	}
}

// ScatterBinomial distributes one block of size bytes from root to every rank
// using a binomial tree: the root sends half of all blocks to its first child,
// which forwards half of that half, and so on.
func (r *Rank) ScatterBinomial(root int, size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	vrank := (r.rank - root + n) % n
	// Receive the subtree payload from the parent (unless root).
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parentV := vrank &^ mask
			r.Recv((parentV + root) % n)
			break
		}
		mask <<= 1
	}
	if vrank == 0 {
		mask = 1
		for mask < n {
			mask <<= 1
		}
	}
	// Forward subtree halves to children, largest subtree first.
	for child := mask >> 1; child >= 1; child >>= 1 {
		if vrank&child != 0 {
			continue
		}
		childV := vrank | child
		if childV >= n {
			continue
		}
		sub := int64(child)
		if int64(n)-int64(childV) < sub {
			sub = int64(n) - int64(childV)
		}
		r.Send((childV+root)%n, sub*size, core.PointToPoint)
	}
}

// AllgatherRecursiveDoubling gathers size bytes from every rank on every rank
// using recursive doubling: log2(n) rounds in which the exchanged block
// doubles. It requires a power-of-two communicator; other sizes fall back to
// the ring algorithm in Allgather.
func (r *Rank) AllgatherRecursiveDoubling(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		r.Allgather(size)
		return
	}
	r.hostNoise()
	block := size
	for mask := 1; mask < n; mask <<= 1 {
		partner := r.rank ^ mask
		r.SendRecv(partner, block, partner, core.PointToPoint)
		block *= 2
	}
}

// AllgatherBruck gathers size bytes from every rank on every rank using the
// Bruck algorithm (log rounds, doubling block sizes, ranks at distance 2^k).
// Unlike recursive doubling it works for any communicator size.
func (r *Rank) AllgatherBruck(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	have := int64(1)
	for dist := 1; dist < n; dist <<= 1 {
		send := have
		if int64(n)-have < send {
			send = int64(n) - have
		}
		bytes := send * size
		sendTo := (r.rank - dist + n) % n
		recvFrom := (r.rank + dist) % n
		recvReq := r.Irecv(recvFrom)
		sendReq := r.Isend(sendTo, bytes, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
		have += send
	}
}

// ReduceScatterHalving reduces and scatters equally sized blocks of size bytes
// each using recursive halving (the reduce-scatter phase of Rabenseifner's
// allreduce). Non-power-of-two communicators fall back to the pairwise
// algorithm in ReduceScatterBlock.
func (r *Rank) ReduceScatterHalving(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		r.ReduceScatterBlock(size)
		return
	}
	r.hostNoise()
	chunk := size * int64(n) / 2
	if chunk < 1 {
		chunk = 1
	}
	for mask := 1; mask < n; mask <<= 1 {
		partner := r.rank ^ mask
		r.SendRecv(partner, chunk, partner, core.PointToPoint)
		chunk /= 2
		if chunk < size {
			chunk = size
		}
	}
}

// Scan performs an inclusive prefix reduction of size bytes with the linear
// pipeline algorithm: rank k receives the partial result from rank k-1 and
// forwards its own partial result to rank k+1. The pattern is a strict chain,
// the opposite extreme of alltoall's full bisection pressure.
func (r *Rank) Scan(size int64) {
	n := r.Size()
	if n == 1 {
		return
	}
	r.hostNoise()
	if r.rank > 0 {
		r.Recv(r.rank - 1)
	}
	if r.rank < n-1 {
		r.Send(r.rank+1, size, core.PointToPoint)
	}
}
