package mpi

import (
	"context"
	"fmt"

	"dragonfly/internal/sim"
)

// checkEverySteps is how many engine events the scheduler executes between
// two cancellation checks while it waits for a rank to become runnable. The
// check is a single atomic load on the context, so the interval only bounds
// how long a cancelled run keeps simulating, not the simulated behaviour.
const checkEverySteps = 4096

// Scheduler is the cooperative rank scheduler: it owns the run loop that used
// to live inside Comm.Run and interleaves the runnable ranks of *all* attached
// communicators with the discrete event engine. Exactly one goroutine (a rank
// or the scheduler driving the engine) runs at a time, so a multi-job run is
// as deterministic as a single-job one: ranks resume in FIFO order of the
// runnable queue, and the queue is fed in Start order and then in engine event
// order.
//
// A Scheduler is not safe for concurrent use; Run/Drain must not be called
// concurrently with themselves or each other.
type Scheduler struct {
	engine   *sim.Engine
	runnable []*Rank
	notify   chan *Rank
	// live is the number of unfinished ranks across all attached comms.
	live int
	// comms lists every communicator ever attached (Start), so Shutdown can
	// find and release ranks still parked after an abandoned run.
	comms []*Comm
}

// errRankAborted is the unwind sentinel Shutdown injects into parked rank
// goroutines; the Start wrapper recovers it (and only it).
var errRankAborted = fmt.Errorf("mpi: rank aborted by scheduler shutdown")

// NewScheduler builds a scheduler over the given engine.
func NewScheduler(engine *sim.Engine) *Scheduler {
	return &Scheduler{engine: engine, notify: make(chan *Rank)}
}

// Engine returns the engine the scheduler drives.
func (s *Scheduler) Engine() *sim.Engine { return s.engine }

// Live reports the number of attached ranks that have not finished their
// current program.
func (s *Scheduler) Live() int { return s.live }

// markRunnable re-queues a rank whose pending operation completed. It must be
// called from the scheduler goroutine (engine event callbacks qualify).
func (s *Scheduler) markRunnable(r *Rank) {
	if r.queued || r.finished {
		return
	}
	r.queued = true
	s.runnable = append(s.runnable, r)
}

// runRunnable resumes runnable ranks in FIFO order until none are left. When
// the last rank of a communicator finishes, the communicator's finish time is
// stamped and its OnFinished hook runs — the hook may Start the communicator
// again (the facade uses this to chain measurement iterations), which feeds
// the queue and keeps the loop going.
func (s *Scheduler) runRunnable() {
	for len(s.runnable) > 0 {
		r := s.runnable[0]
		s.runnable = s.runnable[1:]
		r.queued = false
		if r.finished {
			continue
		}
		r.resume <- struct{}{}
		<-s.notify
		if r.finished {
			s.live--
			c := r.comm
			c.remaining--
			if c.remaining == 0 {
				c.finishedAt = s.engine.Now()
				if c.onFinished != nil {
					c.onFinished()
				}
			}
		}
	}
}

// stepUntil executes engine events until a rank becomes runnable or the queue
// empties, checking the cancellation hook every checkEverySteps events.
func (s *Scheduler) stepUntil(check func() error) error {
	steps := 0
	for s.engine.Pending() > 0 && len(s.runnable) == 0 {
		stepped, err := s.engine.Step()
		if err != nil {
			return err
		}
		if !stepped {
			break
		}
		if steps++; check != nil && steps%checkEverySteps == 0 {
			if err := check(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run drives the simulation until every rank of every attached communicator
// has finished its program. It returns an error on deadlock (no rank can make
// progress and no simulation events remain) or when the optional check hook
// reports one (cancellation). Pending engine events beyond the last rank's
// completion — background noise, telemetry ticks — are left queued, exactly as
// the historical Comm.Run left them.
func (s *Scheduler) Run(check func() error) error {
	defer s.shutdownOnPanic()
	defer s.releaseEngineWorkers()
	for s.live > 0 {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		s.runRunnable()
		if s.live == 0 {
			break
		}
		// No rank is runnable: advance simulated time until one becomes so.
		if err := s.stepUntil(check); err != nil {
			return err
		}
		if len(s.runnable) == 0 {
			return fmt.Errorf("mpi: deadlock, %d ranks blocked with no pending events", s.live)
		}
	}
	return nil
}

// Drain drives the simulation until the event queue is empty and no attached
// rank remains unfinished. Unlike Run it does not stop when the attached
// communicators finish: it keeps executing events (job arrivals, background
// traffic) that may attach *new* communicators mid-run — the batch scheduler
// relies on this to co-run workload-driven jobs that start at simulated
// arrival times. It is the rank-aware equivalent of Engine.Run.
func (s *Scheduler) Drain(check func() error) error {
	defer s.shutdownOnPanic()
	defer s.releaseEngineWorkers()
	for {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		s.runRunnable()
		if s.engine.Pending() == 0 {
			if s.live > 0 {
				return fmt.Errorf("mpi: deadlock, %d ranks blocked with no pending events", s.live)
			}
			return nil
		}
		if err := s.stepUntil(check); err != nil {
			return err
		}
	}
}

// shutdownOnPanic releases parked ranks when a panic escapes the drive loop
// (an engine event callback or an OnFinished hook blowing up), then lets the
// panic continue. Callers that recover such panics — the trial harness
// captures them per trial — would otherwise strand every unfinished rank
// goroutine, exactly the leak Shutdown exists to prevent. At every point a
// panic can escape Run or Drain, the unfinished ranks are parked (a rank only
// executes while the drive loop is blocked handing it the turn), so Shutdown
// is safe here.
func (s *Scheduler) shutdownOnPanic() {
	if r := recover(); r != nil {
		s.Shutdown()
		panic(r)
	}
}

// Shutdown releases the rank goroutines an abandoned run left parked: every
// unfinished rank of every attached communicator is resumed one last time
// with its abort flag set, unwinds out of its program, and exits. Call it
// after Run or Drain returned an error (cancellation, deadlock) when the
// simulation will not be driven further — without it those goroutines (and
// everything their programs reference) live for the rest of the process.
//
// Shutdown is idempotent and safe on a scheduler whose runs all completed
// (it finds nothing to release). The attached communicators must not be
// reused afterwards: their in-flight collectives and mailboxes are torn
// mid-operation.
func (s *Scheduler) Shutdown() {
	for _, c := range s.comms {
		for _, r := range c.ranks {
			if r.finished {
				continue
			}
			// Every unfinished rank is parked on <-r.resume (either in
			// block() or at the wrapper's initial handshake): exactly one
			// resume reaches it, and the wrapper's notify confirms the exit.
			r.aborted = true
			r.resume <- struct{}{}
			<-s.notify
			s.live--
			c.remaining--
		}
	}
	s.runnable = s.runnable[:0]
	s.releaseEngineWorkers()
}

// releaseEngineWorkers tears down the sharded driver's persistent window
// workers, if any. Run and Drain call it on every exit (the pool is an
// intra-run optimization — a finished or abandoned run must leave no parked
// goroutines), and Shutdown calls it so direct shutdown paths reap the pool
// too. Safe mid-panic: the window barrier collects every woken worker before
// a worker panic is re-raised, so the pool is always parked here.
func (s *Scheduler) releaseEngineWorkers() {
	if sh := s.engine.Sharded(); sh != nil {
		sh.Shutdown()
	}
}

// ContextCheck adapts a context to the scheduler's cancellation hook shape.
// A nil context yields a nil hook (no checking).
func ContextCheck(ctx context.Context) func() error {
	if ctx == nil {
		return nil
	}
	return func() error { return ctx.Err() }
}
