// Package counters models the Aries NIC performance counters used by the
// paper (§2.3): request flits, request flit stall cycles, request packets and
// cumulative request-response latency. Only NIC-side counters are modelled
// because, as the paper argues, they are the only ones that isolate the
// network's direct effect on the application (router-tile counters mix in
// traffic from other jobs and suffer the correlation-is-not-causation problem).
package counters

import "fmt"

// NIC is the set of per-NIC counters exposed to the application. The zero
// value is a valid, all-zero counter set.
//
// Latencies are recorded in NIC cycles; the real Aries counter reports
// microseconds, but the paper itself converts to cycles (footnote 3), so we
// keep cycles throughout.
type NIC struct {
	// RequestFlits is the number of request flits sent.
	RequestFlits uint64
	// RequestFlitsStalledCycles counts clock cycles in which a ready-to-forward
	// flit was not forwarded because of back-pressure.
	RequestFlitsStalledCycles uint64
	// RequestPackets is the number of request packets sent.
	RequestPackets uint64
	// RequestPacketsCumLatency is the cumulative request->response latency, in
	// cycles, across all request-response packet pairs. It does not include
	// the time a flit waits in NIC queues before being transmitted.
	RequestPacketsCumLatency uint64
	// MinimalPackets and NonMinimalPackets break down RequestPackets by the
	// kind of path the adaptive routing selected. They are not available on
	// real Aries NICs and exist only for analysis and tests.
	MinimalPackets    uint64
	NonMinimalPackets uint64
}

// Add accumulates other into c.
func (c *NIC) Add(other NIC) {
	c.RequestFlits += other.RequestFlits
	c.RequestFlitsStalledCycles += other.RequestFlitsStalledCycles
	c.RequestPackets += other.RequestPackets
	c.RequestPacketsCumLatency += other.RequestPacketsCumLatency
	c.MinimalPackets += other.MinimalPackets
	c.NonMinimalPackets += other.NonMinimalPackets
}

// Sub returns the counter deltas c - prev. It is the usual way to extract the
// counters associated with a single message or phase: snapshot before,
// snapshot after, subtract.
func (c NIC) Sub(prev NIC) NIC {
	return NIC{
		RequestFlits:              c.RequestFlits - prev.RequestFlits,
		RequestFlitsStalledCycles: c.RequestFlitsStalledCycles - prev.RequestFlitsStalledCycles,
		RequestPackets:            c.RequestPackets - prev.RequestPackets,
		RequestPacketsCumLatency:  c.RequestPacketsCumLatency - prev.RequestPacketsCumLatency,
		MinimalPackets:            c.MinimalPackets - prev.MinimalPackets,
		NonMinimalPackets:         c.NonMinimalPackets - prev.NonMinimalPackets,
	}
}

// StallRatio returns s, the average number of cycles a flit waits (due to
// stalls) before being transmitted: stalled cycles / request flits.
// It returns 0 when no flits were sent.
func (c NIC) StallRatio() float64 {
	if c.RequestFlits == 0 {
		return 0
	}
	return float64(c.RequestFlitsStalledCycles) / float64(c.RequestFlits)
}

// AvgPacketLatency returns L, the average request-response latency per packet
// in cycles. It returns 0 when no packets were sent.
func (c NIC) AvgPacketLatency() float64 {
	if c.RequestPackets == 0 {
		return 0
	}
	return float64(c.RequestPacketsCumLatency) / float64(c.RequestPackets)
}

// NonMinimalFraction returns the fraction of request packets that were routed
// on non-minimal paths, in [0, 1]. It returns 0 when no packets were sent.
func (c NIC) NonMinimalFraction() float64 {
	if c.RequestPackets == 0 {
		return 0
	}
	return float64(c.NonMinimalPackets) / float64(c.RequestPackets)
}

// String formats the counters compactly for logs and CLI output.
func (c NIC) String() string {
	return fmt.Sprintf("flits=%d stalls=%d packets=%d cumLat=%d (s=%.3f L=%.1f)",
		c.RequestFlits, c.RequestFlitsStalledCycles, c.RequestPackets,
		c.RequestPacketsCumLatency, c.StallRatio(), c.AvgPacketLatency())
}

// Tile models the counters of a router tile (network-side). The paper
// explicitly avoids relying on them for noise estimation, but they are useful
// to reproduce Table 1 (an idle application observing flits and stalls caused
// by other jobs) and for congestion visualization.
type Tile struct {
	// FlitsTraversed is the number of flits forwarded by the tile.
	FlitsTraversed uint64
	// StalledCycles counts cycles in which the tile could not forward a flit
	// because of downstream back-pressure.
	StalledCycles uint64
	// BusyCycles counts cycles spent serializing flits onto the outgoing link.
	BusyCycles uint64
}

// Add accumulates other into t.
func (t *Tile) Add(other Tile) {
	t.FlitsTraversed += other.FlitsTraversed
	t.StalledCycles += other.StalledCycles
	t.BusyCycles += other.BusyCycles
}

// Sub returns the counter deltas t - prev.
func (t Tile) Sub(prev Tile) Tile {
	return Tile{
		FlitsTraversed: t.FlitsTraversed - prev.FlitsTraversed,
		StalledCycles:  t.StalledCycles - prev.StalledCycles,
		BusyCycles:     t.BusyCycles - prev.BusyCycles,
	}
}

// Utilization returns the fraction of the observation window the tile spent
// serializing flits, given the window length in cycles.
func (t Tile) Utilization(windowCycles uint64) float64 {
	if windowCycles == 0 {
		return 0
	}
	u := float64(t.BusyCycles) / float64(windowCycles)
	if u > 1 {
		u = 1
	}
	return u
}
