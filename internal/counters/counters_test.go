package counters

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNICAddSub(t *testing.T) {
	var c NIC
	c.Add(NIC{RequestFlits: 10, RequestFlitsStalledCycles: 5, RequestPackets: 2, RequestPacketsCumLatency: 100, MinimalPackets: 1, NonMinimalPackets: 1})
	c.Add(NIC{RequestFlits: 20, RequestFlitsStalledCycles: 15, RequestPackets: 4, RequestPacketsCumLatency: 300, MinimalPackets: 4})
	if c.RequestFlits != 30 || c.RequestFlitsStalledCycles != 20 || c.RequestPackets != 6 || c.RequestPacketsCumLatency != 400 {
		t.Fatalf("unexpected accumulation: %+v", c)
	}
	prev := NIC{RequestFlits: 10, RequestFlitsStalledCycles: 5, RequestPackets: 2, RequestPacketsCumLatency: 100, MinimalPackets: 1, NonMinimalPackets: 1}
	d := c.Sub(prev)
	if d.RequestFlits != 20 || d.RequestFlitsStalledCycles != 15 || d.RequestPackets != 4 || d.RequestPacketsCumLatency != 300 {
		t.Fatalf("unexpected delta: %+v", d)
	}
	if d.MinimalPackets != 4 || d.NonMinimalPackets != 0 {
		t.Fatalf("unexpected path breakdown delta: %+v", d)
	}
}

func TestStallRatioAndLatency(t *testing.T) {
	c := NIC{RequestFlits: 100, RequestFlitsStalledCycles: 250, RequestPackets: 20, RequestPacketsCumLatency: 4000}
	if got := c.StallRatio(); got != 2.5 {
		t.Fatalf("StallRatio = %v, want 2.5", got)
	}
	if got := c.AvgPacketLatency(); got != 200 {
		t.Fatalf("AvgPacketLatency = %v, want 200", got)
	}
}

func TestZeroDivision(t *testing.T) {
	var c NIC
	if c.StallRatio() != 0 || c.AvgPacketLatency() != 0 || c.NonMinimalFraction() != 0 {
		t.Fatal("zero counters must yield zero ratios")
	}
}

func TestNonMinimalFraction(t *testing.T) {
	c := NIC{RequestPackets: 10, MinimalPackets: 7, NonMinimalPackets: 3}
	if got := c.NonMinimalFraction(); got != 0.3 {
		t.Fatalf("NonMinimalFraction = %v, want 0.3", got)
	}
}

func TestNICString(t *testing.T) {
	c := NIC{RequestFlits: 5, RequestPackets: 1}
	s := c.String()
	if !strings.Contains(s, "flits=5") || !strings.Contains(s, "packets=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTileAddSubUtilization(t *testing.T) {
	var tl Tile
	tl.Add(Tile{FlitsTraversed: 100, StalledCycles: 10, BusyCycles: 50})
	tl.Add(Tile{FlitsTraversed: 100, StalledCycles: 20, BusyCycles: 70})
	d := tl.Sub(Tile{FlitsTraversed: 100, StalledCycles: 10, BusyCycles: 50})
	if d.FlitsTraversed != 100 || d.StalledCycles != 20 || d.BusyCycles != 70 {
		t.Fatalf("unexpected delta %+v", d)
	}
	if u := tl.Utilization(240); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := tl.Utilization(0); u != 0 {
		t.Fatalf("Utilization with zero window = %v, want 0", u)
	}
	if u := (Tile{BusyCycles: 500}).Utilization(100); u != 1 {
		t.Fatalf("Utilization must clamp to 1, got %v", u)
	}
}

// Property: Sub is the inverse of Add for any pair of counter sets.
func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(a, b NIC) bool {
		c := a
		c.Add(b)
		d := c.Sub(a)
		return d == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ratios are always non-negative and finite for any counter values.
func TestPropertyRatiosNonNegative(t *testing.T) {
	f := func(c NIC) bool {
		return c.StallRatio() >= 0 && c.AvgPacketLatency() >= 0 && c.NonMinimalFraction() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
