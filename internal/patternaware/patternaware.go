// Package patternaware implements a traffic-pattern-based routing-mode
// selector, modelled on the related-work alternative the paper contrasts
// itself with (traffic-pattern-based adaptive routing, which picks a bias for
// the adaptive routing after classifying the recent traffic pattern). It
// serves as a baseline comparator for the paper's counter-model-driven
// application-aware selector: both decide per message between the Adaptive
// default and Adaptive with High Bias, but this one reasons only about the
// shape and volume of the application's own traffic, not about the measured
// latency/stall trade-off.
package patternaware

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
)

// Class is the classifier's view of the recent traffic pattern.
type Class uint8

const (
	// Light means the application recently sent little data; latency dominates
	// and minimally-biased routing is preferred.
	Light Class = iota
	// HeavyCongested means the application is sending a lot of data and its
	// packets are experiencing back-pressure; congestion is real, so the
	// unbiased adaptive mode (free to take non-minimal paths) is preferred.
	HeavyCongested
	// HeavySmooth means the application is sending a lot of data but packets
	// flow without noticeable stalls; minimally-biased routing keeps the extra
	// traffic off non-minimal paths.
	HeavySmooth
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Light:
		return "light"
	case HeavyCongested:
		return "heavy-congested"
	case HeavySmooth:
		return "heavy-smooth"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Config tunes the classifier.
type Config struct {
	// WindowBytes is the amount of recently sent payload over which the
	// pattern is classified; once the window fills, a new classification is
	// made and the window restarts.
	WindowBytes int64
	// HeavyMeanMessageBytes separates Light from the two heavy classes: a
	// window whose mean message size reaches this value counts as heavy.
	HeavyMeanMessageBytes int64
	// StallThreshold is the per-flit stall ratio above which a heavy pattern
	// counts as congested.
	StallThreshold float64
	// EWMAAlpha is the smoothing factor applied to the observed stall ratio.
	EWMAAlpha float64
	// CounterReadOverheadCycles is the host-side cost charged whenever the
	// classifier consumes a counter observation.
	CounterReadOverheadCycles int64
	// AlltoallUsesIMB mirrors the Cray default of routing alltoall traffic
	// with Increasingly Minimal Bias when the adaptive default is selected.
	AlltoallUsesIMB bool
}

// DefaultConfig returns thresholds that behave sensibly on the simulated
// fabric used by the experiments.
func DefaultConfig() Config {
	return Config{
		WindowBytes:               64 << 10,
		HeavyMeanMessageBytes:     8 << 10,
		StallThreshold:            0.5,
		EWMAAlpha:                 0.3,
		CounterReadOverheadCycles: 300,
		AlltoallUsesIMB:           true,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.WindowBytes <= 0:
		return fmt.Errorf("patternaware: WindowBytes must be > 0")
	case c.HeavyMeanMessageBytes <= 0:
		return fmt.Errorf("patternaware: HeavyMeanMessageBytes must be > 0")
	case c.StallThreshold < 0:
		return fmt.Errorf("patternaware: StallThreshold must be >= 0")
	case c.EWMAAlpha <= 0 || c.EWMAAlpha > 1:
		return fmt.Errorf("patternaware: EWMAAlpha must be in (0, 1]")
	case c.CounterReadOverheadCycles < 0:
		return fmt.Errorf("patternaware: CounterReadOverheadCycles must be >= 0")
	}
	return nil
}

// Stats summarizes the classifier's behaviour for experiment reporting.
type Stats struct {
	// Messages and Bytes total everything routed through the classifier.
	Messages uint64
	Bytes    uint64
	// Classifications counts how many times the window filled and the pattern
	// was re-classified; PerClass breaks the classifications down.
	Classifications uint64
	PerClass        [3]uint64
	// DefaultBytes and BiasBytes split the traffic by the chosen mode, with
	// the same meaning as core.Stats.
	DefaultBytes uint64
	BiasBytes    uint64
}

// Classifier selects routing modes from the recent traffic pattern. It
// implements mpi.RoutingProvider and is owned by a single rank.
type Classifier struct {
	cfg Config

	windowBytes    int64
	windowMessages int64
	stallEWMA      float64
	haveStall      bool

	current Class
	stats   Stats
}

// New builds a classifier. The initial class is Light (prefer low latency), so
// an application that never fills the window behaves like a statically
// high-biased one.
func New(cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Classifier{cfg: cfg, current: Light}, nil
}

// MustNew is like New but panics on an invalid configuration.
func MustNew(cfg Config) *Classifier {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Current returns the current traffic class.
func (c *Classifier) Current() Class { return c.current }

// Stats returns a copy of the classifier statistics.
func (c *Classifier) Stats() Stats { return c.stats }

// modeFor maps the traffic class to a routing mode.
func (c *Classifier) modeFor(class Class, kind core.TrafficKind) routing.Mode {
	switch class {
	case HeavyCongested:
		if kind == core.Alltoall && c.cfg.AlltoallUsesIMB {
			return routing.IncreasinglyMinimalBias
		}
		return routing.Adaptive
	default: // Light, HeavySmooth
		return routing.AdaptiveHighBias
	}
}

// SelectMode implements the per-message routing decision: accumulate the
// window, re-classify when it fills, and return the mode mapped from the
// current class. The returned observe callback feeds the NIC counter delta of
// the message back into the stall estimate.
func (c *Classifier) SelectMode(msgSize int64, kind core.TrafficKind) (routing.Mode, int64, func(network.Delivery)) {
	c.stats.Messages++
	c.stats.Bytes += uint64(msgSize)
	c.windowBytes += msgSize
	c.windowMessages++

	var overhead int64
	if c.windowBytes >= c.cfg.WindowBytes {
		meanMsg := c.windowBytes / c.windowMessages
		var class Class
		switch {
		case meanMsg < c.cfg.HeavyMeanMessageBytes:
			class = Light
		case c.haveStall && c.stallEWMA >= c.cfg.StallThreshold:
			class = HeavyCongested
		default:
			class = HeavySmooth
		}
		c.current = class
		c.stats.Classifications++
		c.stats.PerClass[class]++
		c.windowBytes = 0
		c.windowMessages = 0
		overhead = c.cfg.CounterReadOverheadCycles
	}

	mode := c.modeFor(c.current, kind)
	if mode == routing.AdaptiveHighBias {
		c.stats.BiasBytes += uint64(msgSize)
	} else {
		c.stats.DefaultBytes += uint64(msgSize)
	}
	observe := func(d network.Delivery) {
		s := d.Counters.StallRatio()
		if !c.haveStall {
			c.stallEWMA = s
			c.haveStall = true
			return
		}
		c.stallEWMA = c.cfg.EWMAAlpha*s + (1-c.cfg.EWMAAlpha)*c.stallEWMA
	}
	return mode, overhead, observe
}
