package patternaware

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/core"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
)

// The classifier must be usable wherever the message layer expects a routing
// provider (the same interposition point as the paper's selector).
var _ mpi.RoutingProvider = (*Classifier)(nil)

func deliveryWithStall(flits, stalled uint64) network.Delivery {
	return network.Delivery{Counters: counters.NIC{
		RequestFlits:              flits,
		RequestFlitsStalledCycles: stalled,
		RequestPackets:            flits,
		RequestPacketsCumLatency:  flits * 100,
	}}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{WindowBytes: 1, HeavyMeanMessageBytes: 0, EWMAAlpha: 0.5},
		{WindowBytes: 1, HeavyMeanMessageBytes: 1, EWMAAlpha: 0},
		{WindowBytes: 1, HeavyMeanMessageBytes: 1, EWMAAlpha: 1.5},
		{WindowBytes: 1, HeavyMeanMessageBytes: 1, EWMAAlpha: 0.5, StallThreshold: -1},
		{WindowBytes: 1, HeavyMeanMessageBytes: 1, EWMAAlpha: 0.5, CounterReadOverheadCycles: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestStartsLightAndPrefersHighBias(t *testing.T) {
	c := MustNew(DefaultConfig())
	mode, overhead, _ := c.SelectMode(64, core.PointToPoint)
	if mode != routing.AdaptiveHighBias {
		t.Fatalf("initial mode = %v, want AdaptiveHighBias", mode)
	}
	if overhead != 0 {
		t.Fatalf("overhead charged before any classification: %d", overhead)
	}
	if c.Current() != Light {
		t.Fatalf("initial class = %v, want Light", c.Current())
	}
}

func TestSmallMessagesStayLight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowBytes = 4 << 10
	cfg.HeavyMeanMessageBytes = 1 << 10
	c := MustNew(cfg)
	for i := 0; i < 200; i++ {
		mode, _, _ := c.SelectMode(256, core.PointToPoint)
		if mode != routing.AdaptiveHighBias {
			t.Fatalf("message %d routed with %v, want AdaptiveHighBias", i, mode)
		}
	}
	if c.Current() != Light {
		t.Fatalf("class = %v after small-message stream, want Light", c.Current())
	}
	if c.Stats().Classifications == 0 {
		t.Fatal("window never filled despite 200*256 bytes")
	}
}

func TestHeavyCongestedSwitchesToAdaptive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowBytes = 32 << 10
	cfg.HeavyMeanMessageBytes = 4 << 10
	cfg.StallThreshold = 0.5
	c := MustNew(cfg)
	// Feed congested observations, then enough large messages to fill windows.
	var sawAdaptive bool
	for i := 0; i < 32; i++ {
		mode, _, observe := c.SelectMode(16<<10, core.PointToPoint)
		observe(deliveryWithStall(100, 200)) // stall ratio 2.0 >> threshold
		if mode == routing.Adaptive {
			sawAdaptive = true
		}
	}
	if !sawAdaptive {
		t.Fatal("heavy congested traffic never switched to Adaptive")
	}
	if c.Current() != HeavyCongested {
		t.Fatalf("class = %v, want HeavyCongested", c.Current())
	}
}

func TestHeavySmoothKeepsHighBias(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowBytes = 32 << 10
	cfg.HeavyMeanMessageBytes = 4 << 10
	c := MustNew(cfg)
	for i := 0; i < 32; i++ {
		mode, _, observe := c.SelectMode(16<<10, core.PointToPoint)
		observe(deliveryWithStall(100, 0)) // no stalls
		if mode != routing.AdaptiveHighBias {
			t.Fatalf("message %d routed with %v, want AdaptiveHighBias (heavy but smooth)", i, mode)
		}
	}
	if c.Current() != HeavySmooth {
		t.Fatalf("class = %v, want HeavySmooth", c.Current())
	}
}

func TestAlltoallUsesIMBWhenCongested(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowBytes = 16 << 10
	cfg.HeavyMeanMessageBytes = 1 << 10
	cfg.AlltoallUsesIMB = true
	c := MustNew(cfg)
	var sawIMB bool
	for i := 0; i < 32; i++ {
		mode, _, observe := c.SelectMode(8<<10, core.Alltoall)
		observe(deliveryWithStall(100, 500))
		if mode == routing.IncreasinglyMinimalBias {
			sawIMB = true
		}
		if mode == routing.Adaptive {
			t.Fatal("alltoall traffic routed with plain Adaptive despite AlltoallUsesIMB")
		}
	}
	if !sawIMB {
		t.Fatal("congested alltoall traffic never used Increasingly Minimal Bias")
	}
}

func TestOverheadChargedOncePerWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowBytes = 10 << 10
	cfg.CounterReadOverheadCycles = 123
	c := MustNew(cfg)
	var charged, windows int
	for i := 0; i < 100; i++ {
		_, overhead, _ := c.SelectMode(1<<10, core.PointToPoint)
		if overhead != 0 {
			if overhead != 123 {
				t.Fatalf("unexpected overhead %d", overhead)
			}
			charged++
		}
	}
	windows = int(c.Stats().Classifications)
	if charged != windows {
		t.Fatalf("overhead charged %d times for %d classifications", charged, windows)
	}
	if windows == 0 {
		t.Fatal("no classification happened")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := MustNew(DefaultConfig())
	for i := 0; i < 10; i++ {
		c.SelectMode(1024, core.PointToPoint)
	}
	st := c.Stats()
	if st.Messages != 10 || st.Bytes != 10*1024 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.DefaultBytes+st.BiasBytes != st.Bytes {
		t.Fatalf("per-mode byte split (%d + %d) does not cover total %d",
			st.DefaultBytes, st.BiasBytes, st.Bytes)
	}
}

// TestByteAccountingProperty checks that for any message stream the per-mode
// byte split always sums to the total.
func TestByteAccountingProperty(t *testing.T) {
	prop := func(sizes []uint16, stalls []uint16) bool {
		cfg := DefaultConfig()
		cfg.WindowBytes = 8 << 10
		c := MustNew(cfg)
		for i, sz := range sizes {
			_, _, observe := c.SelectMode(int64(sz), core.PointToPoint)
			if observe != nil && i < len(stalls) {
				observe(deliveryWithStall(64, uint64(stalls[i])))
			}
		}
		st := c.Stats()
		return st.DefaultBytes+st.BiasBytes == st.Bytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	for class, want := range map[Class]string{Light: "light", HeavyCongested: "heavy-congested", HeavySmooth: "heavy-smooth"} {
		if class.String() != want {
			t.Errorf("%d.String() = %q, want %q", class, class.String(), want)
		}
	}
}
