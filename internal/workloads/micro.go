package workloads

import (
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
)

// PingPong bounces a message of MessageBytes between rank 0 and rank 1,
// Iterations times. Other ranks return immediately (the paper's ping-pong
// runs with exactly two communicating nodes inside a larger allocation).
type PingPong struct {
	// MessageBytes is the ping (and pong) payload size.
	MessageBytes int64
	// Iterations is the number of round trips per Run.
	Iterations int
	// PeerA and PeerB select which ranks exchange; both default to 0 and 1.
	PeerA, PeerB int
}

// Name implements Workload.
func (p *PingPong) Name() string { return "pingpong" }

// Run implements Workload.
func (p *PingPong) Run(r *mpi.Rank) {
	a, b := p.PeerA, p.PeerB
	if a == b {
		b = a + 1
	}
	iters := p.Iterations
	if iters <= 0 {
		iters = 1
	}
	switch r.Rank() {
	case a:
		for i := 0; i < iters; i++ {
			r.Send(b, p.MessageBytes, core.PointToPoint)
			r.Recv(b)
		}
	case b:
		for i := 0; i < iters; i++ {
			r.Recv(a)
			r.Send(a, p.MessageBytes, core.PointToPoint)
		}
	}
}

// Allreduce performs a sum reduction over an array of Elements 4-byte
// integers, matching the paper's definition of the allreduce input size.
type Allreduce struct {
	// Elements is the number of 4-byte elements reduced.
	Elements int64
	// Iterations is the number of allreduce calls per Run.
	Iterations int
}

// Name implements Workload.
func (a *Allreduce) Name() string { return "allreduce" }

// Run implements Workload.
func (a *Allreduce) Run(r *mpi.Rank) {
	iters := a.Iterations
	if iters <= 0 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		r.Allreduce(a.Elements * 4)
	}
}

// Alltoall exchanges MessageBytes between every pair of ranks.
type Alltoall struct {
	// MessageBytes is the per-pair payload.
	MessageBytes int64
	// Iterations is the number of alltoall calls per Run.
	Iterations int
}

// Name implements Workload.
func (a *Alltoall) Name() string { return "alltoall" }

// Run implements Workload.
func (a *Alltoall) Run(r *mpi.Rank) {
	iters := a.Iterations
	if iters <= 0 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		r.Alltoall(a.MessageBytes)
	}
}

// Barrier synchronizes all ranks.
type Barrier struct {
	// Iterations is the number of barrier calls per Run.
	Iterations int
}

// Name implements Workload.
func (b *Barrier) Name() string { return "barrier" }

// Run implements Workload.
func (b *Barrier) Run(r *mpi.Rank) {
	iters := b.Iterations
	if iters <= 0 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		r.Barrier()
	}
}

// Broadcast sends MessageBytes from rank 0 to every other rank.
type Broadcast struct {
	// MessageBytes is the broadcast payload.
	MessageBytes int64
	// Iterations is the number of broadcast calls per Run.
	Iterations int
	// Root is the broadcasting rank.
	Root int
}

// Name implements Workload.
func (b *Broadcast) Name() string { return "broadcast" }

// Run implements Workload.
func (b *Broadcast) Run(r *mpi.Rank) {
	iters := b.Iterations
	if iters <= 0 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		r.Broadcast(b.Root, b.MessageBytes)
	}
}

// Halo3D is the ember halo3d nearest-neighbour benchmark: ranks form a 3D
// grid, each exchanging its six faces with the neighbouring ranks every
// iteration. DomainEdge is the edge length of the global cubic domain; each
// cell carries 8 bytes, so a face message is (edge/p)^2 * 8 bytes.
type Halo3D struct {
	// Ranks is the communicator size used to build the process grid.
	Ranks int
	// DomainEdge is the global domain edge length (the paper's input size,
	// e.g. 1024 for the 1024^3 runs).
	DomainEdge int64
	// Iterations is the number of halo-exchange steps per Run.
	Iterations int
	// ComputeCyclesPerIter models the (tiny) stencil update; the ember
	// benchmark is communication-only so this defaults to 0.
	ComputeCyclesPerIter int64

	px, py, pz int
}

// NewHalo3D builds a Halo3D workload with a balanced process grid.
func NewHalo3D(ranks int, domainEdge int64, iterations int) *Halo3D {
	px, py, pz := Factor3D(ranks)
	return &Halo3D{Ranks: ranks, DomainEdge: domainEdge, Iterations: iterations, px: px, py: py, pz: pz}
}

// Name implements Workload.
func (h *Halo3D) Name() string { return "halo3d" }

// faceBytes returns the message size of a face exchange along the axis with p
// processes, assuming 8-byte cells.
func (h *Halo3D) faceBytes(pa, pb int) int64 {
	ea := h.DomainEdge / int64(pa)
	eb := h.DomainEdge / int64(pb)
	if ea < 1 {
		ea = 1
	}
	if eb < 1 {
		eb = 1
	}
	return ea * eb * 8
}

// Run implements Workload.
func (h *Halo3D) Run(r *mpi.Rank) {
	if h.px == 0 {
		h.px, h.py, h.pz = Factor3D(h.Ranks)
	}
	iters := h.Iterations
	if iters <= 0 {
		iters = 1
	}
	x, y, z := grid3(r.Rank(), h.px, h.py, h.pz)
	type neighbour struct {
		rank  int
		bytes int64
	}
	var neighbours []neighbour
	addNeighbour := func(nx, ny, nz int, bytes int64) {
		if nx < 0 || nx >= h.px || ny < 0 || ny >= h.py || nz < 0 || nz >= h.pz {
			return
		}
		neighbours = append(neighbours, neighbour{rank3(nx, ny, nz, h.px, h.py), bytes})
	}
	addNeighbour(x-1, y, z, h.faceBytes(h.py, h.pz))
	addNeighbour(x+1, y, z, h.faceBytes(h.py, h.pz))
	addNeighbour(x, y-1, z, h.faceBytes(h.px, h.pz))
	addNeighbour(x, y+1, z, h.faceBytes(h.px, h.pz))
	addNeighbour(x, y, z-1, h.faceBytes(h.px, h.py))
	addNeighbour(x, y, z+1, h.faceBytes(h.px, h.py))

	for i := 0; i < iters; i++ {
		reqs := make([]*mpi.Request, 0, 2*len(neighbours))
		for _, n := range neighbours {
			reqs = append(reqs, r.Irecv(n.rank))
		}
		for _, n := range neighbours {
			reqs = append(reqs, r.Isend(n.rank, n.bytes, core.PointToPoint))
		}
		r.WaitAll(reqs...)
		if h.ComputeCyclesPerIter > 0 {
			r.Compute(h.ComputeCyclesPerIter)
		}
	}
}

// Sweep3D is the ember sweep3d wavefront benchmark: ranks form a 2D grid over
// the X-Y plane and a wavefront starting at the corner sweeps across the grid,
// with each rank receiving from its west and north neighbours, processing a
// block of KPlanes Z-planes, and forwarding to its east and south neighbours.
type Sweep3D struct {
	// Ranks is the communicator size used to build the process grid.
	Ranks int
	// DomainEdge is the global domain edge length (the paper's input size).
	DomainEdge int64
	// KPlanes is the Z-blocking factor of the wavefront.
	KPlanes int64
	// Iterations is the number of full sweeps per Run.
	Iterations int
	// ComputeCyclesPerBlock models the per-block computation.
	ComputeCyclesPerBlock int64

	px, py int
}

// NewSweep3D builds a Sweep3D workload with a balanced 2D process grid.
func NewSweep3D(ranks int, domainEdge int64, iterations int) *Sweep3D {
	px, py := Factor2D(ranks)
	return &Sweep3D{Ranks: ranks, DomainEdge: domainEdge, KPlanes: 8, Iterations: iterations, px: px, py: py}
}

// Name implements Workload.
func (s *Sweep3D) Name() string { return "sweep3d" }

// Run implements Workload.
func (s *Sweep3D) Run(r *mpi.Rank) {
	if s.px == 0 {
		s.px, s.py = Factor2D(s.Ranks)
	}
	iters := s.Iterations
	if iters <= 0 {
		iters = 1
	}
	kp := s.KPlanes
	if kp <= 0 {
		kp = 8
	}
	x := r.Rank() % s.px
	y := r.Rank() / s.px
	if y >= s.py {
		return
	}
	// Per-block message size: the X (resp. Y) boundary of a block of kp
	// planes, 8 bytes per cell.
	edgeX := s.DomainEdge / int64(s.px)
	edgeY := s.DomainEdge / int64(s.py)
	if edgeX < 1 {
		edgeX = 1
	}
	if edgeY < 1 {
		edgeY = 1
	}
	msgEW := edgeY * kp * 8
	msgNS := edgeX * kp * 8
	blocks := s.DomainEdge / kp
	if blocks < 1 {
		blocks = 1
	}
	west := -1
	if x > 0 {
		west = r.Rank() - 1
	}
	east := -1
	if x < s.px-1 {
		east = r.Rank() + 1
	}
	north := -1
	if y > 0 {
		north = r.Rank() - s.px
	}
	south := -1
	if y < s.py-1 {
		south = r.Rank() + s.px
	}
	for it := 0; it < iters; it++ {
		for b := int64(0); b < blocks; b++ {
			if west >= 0 {
				r.Recv(west)
			}
			if north >= 0 {
				r.Recv(north)
			}
			if s.ComputeCyclesPerBlock > 0 {
				r.Compute(s.ComputeCyclesPerBlock)
			}
			if east >= 0 {
				r.Send(east, msgEW, core.PointToPoint)
			}
			if south >= 0 {
				r.Send(south, msgNS, core.PointToPoint)
			}
		}
	}
}
