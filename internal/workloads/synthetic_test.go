package workloads

import (
	"testing"
	"testing/quick"
)

func TestIncastCompletesAndLoadsVictim(t *testing.T) {
	const n = 8
	w := &Incast{Victim: 0, MessageBytes: 2048, Iterations: 2}
	elapsed, packets := runWorkload(t, w, n, 41)
	if elapsed <= 0 || packets == 0 {
		t.Fatalf("incast produced elapsed=%d packets=%d", elapsed, packets)
	}
}

func TestIncastInvalidVictimFallsBackToZero(t *testing.T) {
	w := &Incast{Victim: 99, MessageBytes: 512, Iterations: 1}
	if _, packets := runWorkload(t, w, 4, 42); packets == 0 {
		t.Fatal("incast with out-of-range victim generated no traffic")
	}
}

func TestShiftCompletesForVariousDistances(t *testing.T) {
	for _, dist := range []int{1, 3, 5, 8, -2} {
		w := &Shift{Distance: dist, MessageBytes: 1024, Iterations: 2}
		if _, packets := runWorkload(t, w, 6, 43); packets == 0 {
			t.Fatalf("shift distance %d generated no traffic", dist)
		}
	}
}

func TestShiftSingleRankIsNoop(t *testing.T) {
	w := &Shift{Distance: 1, MessageBytes: 1024, Iterations: 1}
	if _, packets := runWorkload(t, w, 1, 44); packets != 0 {
		t.Fatal("single-rank shift generated traffic")
	}
}

func TestRandomAccessSendReceiveCountsMatch(t *testing.T) {
	// The workload predicts incoming messages from the shared seeded streams;
	// if the prediction were wrong, Comm.Run would deadlock and runWorkload
	// would fail. Completing at all is the property under test.
	for _, n := range []int{2, 4, 7, 8} {
		w := &RandomAccess{UpdateBytes: 16, UpdatesPerRank: 12, Seed: 9}
		if _, packets := runWorkload(t, w, n, 45); packets == 0 {
			t.Fatalf("n=%d: random access generated no traffic", n)
		}
	}
}

func TestRandomAccessDefaultsApplied(t *testing.T) {
	w := &RandomAccess{Seed: 3}
	if _, packets := runWorkload(t, w, 4, 46); packets == 0 {
		t.Fatal("random access with default parameters generated no traffic")
	}
}

func TestTransposeCompletes(t *testing.T) {
	for _, n := range []int{4, 6, 9, 12} {
		w := &Transpose{BlockBytes: 4096, Iterations: 2}
		if _, packets := runWorkload(t, w, n, 47); packets == 0 {
			t.Fatalf("n=%d: transpose generated no traffic", n)
		}
	}
}

func TestHalo2DCompletes(t *testing.T) {
	w := &Halo2D{FaceBytes: 2048, Iterations: 3, ComputeCycles: 500}
	elapsed, packets := runWorkload(t, w, 9, 48)
	if packets == 0 {
		t.Fatal("halo2d generated no traffic")
	}
	if elapsed < 3*500 {
		t.Fatalf("halo2d elapsed %d cycles, want at least the compute time", elapsed)
	}
}

func TestPipelineOrderingAndTraffic(t *testing.T) {
	w := &Pipeline{BlockBytes: 1024, Stages: 3, ComputeCycles: 100}
	if _, packets := runWorkload(t, w, 5, 49); packets == 0 {
		t.Fatal("pipeline generated no traffic")
	}
}

func TestTunedCollectivesWorkload(t *testing.T) {
	w := &TunedCollectives{SmallBytes: 64, LargeBytes: 32 << 10, Iterations: 1}
	if _, packets := runWorkload(t, w, 8, 50); packets == 0 {
		t.Fatal("tuned collectives generated no traffic")
	}
	// Zero-value sizes and tuning must fall back to defaults.
	w = &TunedCollectives{}
	if _, packets := runWorkload(t, w, 4, 51); packets == 0 {
		t.Fatal("tuned collectives with defaults generated no traffic")
	}
}

func TestSyntheticWorkloadsRegistered(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"incast", "shift", "randomaccess", "transpose", "halo2d", "pipeline", "tuned-collectives"} {
		ctor, ok := reg[name]
		if !ok {
			t.Fatalf("workload %q not registered", name)
		}
		w := ctor(8, 1024)
		if w.Name() == "" {
			t.Fatalf("workload %q has empty name", name)
		}
	}
}

func TestRegisteredSyntheticWorkloadsRun(t *testing.T) {
	for _, name := range []string{"incast", "shift", "randomaccess", "transpose", "halo2d", "pipeline"} {
		w, err := New(name, 6, 512)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if _, packets := runWorkload(t, w, 6, 52); packets == 0 {
			t.Fatalf("registered workload %q generated no traffic", name)
		}
	}
}

// TestShiftDistanceNormalizationProperty checks that the effective shift
// destination is never the sender itself for communicators of size >= 2.
func TestShiftDistanceNormalizationProperty(t *testing.T) {
	prop := func(distRaw int8, nRaw uint8) bool {
		n := int(nRaw%14) + 2
		d := int(distRaw) % n
		if d <= 0 {
			d += n
			if d == n {
				d = 1
			}
		}
		return d >= 1 && d < n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
