package workloads

import (
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
)

// The application proxies below reproduce the communication skeletons of the
// real applications evaluated in §5.2 of the paper. Computation is modelled as
// rank-local delays (mpi.Rank.Compute); what matters for the routing study is
// the message-size distribution, the peer locality and the ratio of
// communication to computation, which each proxy preserves qualitatively:
//
//	MILC      4D nearest-neighbour halos + frequent small allreduces
//	HPCG      27-point sparse halos + dot-product allreduces (CG iterations)
//	FFT       1D-decomposed 3D FFT: two alltoall transposes per step
//	BFS/SSSP  level-synchronous frontier exchange (alltoall) + reductions
//	LAMMPS    3D halo exchange + neighbour rebuild allreduce, compute heavy
//	CP2K      DBCSR-style broadcasts/allreduces mixed with alltoalls
//	Nekbone   CG with small gather/scatter halos + allreduce per iteration
//	WRF       2D halo exchange with wide faces (B: baroclinic, T: tropical)
//	QE        3D FFT alltoalls + broadcasts of wavefunctions
//	VPFFT     FFT-heavy mesoscale model (alltoall dominated)
//	Amber     PME molecular dynamics: halos + FFT alltoall + allreduce
type appProxy struct {
	name       string
	iterations int
	body       func(r *mpi.Rank, iter int)
}

// Name implements Workload.
func (a *appProxy) Name() string { return a.name }

// Run implements Workload.
func (a *appProxy) Run(r *mpi.Rank) {
	for i := 0; i < a.iterations; i++ {
		a.body(r, i)
	}
}

// neighbours3D returns the ranks of the (up to six) face neighbours of rank in
// a balanced 3D grid over n ranks.
func neighbours3D(rank, n int) []int {
	px, py, pz := Factor3D(n)
	x, y, z := grid3(rank, px, py, pz)
	var out []int
	add := func(nx, ny, nz int) {
		if nx < 0 || nx >= px || ny < 0 || ny >= py || nz < 0 || nz >= pz {
			return
		}
		out = append(out, rank3(nx, ny, nz, px, py))
	}
	add(x-1, y, z)
	add(x+1, y, z)
	add(x, y-1, z)
	add(x, y+1, z)
	add(x, y, z-1)
	add(x, y, z+1)
	return out
}

// haloExchange performs one non-blocking halo exchange with the given
// neighbours and message size.
func haloExchange(r *mpi.Rank, peers []int, bytes int64) {
	reqs := make([]*mpi.Request, 0, 2*len(peers))
	for _, p := range peers {
		reqs = append(reqs, r.Irecv(p))
	}
	for _, p := range peers {
		reqs = append(reqs, r.Isend(p, bytes, core.PointToPoint))
	}
	r.WaitAll(reqs...)
}

// NewMILC builds the MILC/su3_rmd proxy: scale is the local lattice edge.
func NewMILC(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 16
	}
	face := scale * scale * scale / 4 * 48 // 3x3 complex matrices on a face slice
	if face < 64 {
		face = 64
	}
	return &appProxy{
		name:       "milc",
		iterations: 6,
		body: func(r *mpi.Rank, _ int) {
			peers := neighbours3D(r.Rank(), r.Size())
			// One CG-like solve: a few halo exchanges with interleaved compute
			// and a global reduction at the end of each solve.
			for s := 0; s < 3; s++ {
				haloExchange(r, peers, face)
				r.Compute(40_000)
			}
			r.Allreduce(8)
		},
	}
}

// NewHPCG builds the HPCG proxy: scale is the local subdomain edge.
func NewHPCG(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 32
	}
	face := scale * scale * 8
	return &appProxy{
		name:       "hpcg",
		iterations: 8,
		body: func(r *mpi.Rank, _ int) {
			peers := neighbours3D(r.Rank(), r.Size())
			// SpMV halo + MG smoother halos + two dot products per iteration.
			haloExchange(r, peers, face)
			r.Compute(60_000)
			haloExchange(r, peers, face/2)
			r.Compute(20_000)
			r.Allreduce(2)
			r.Allreduce(2)
		},
	}
}

// NewFFT builds the FFT proxy (1D-decomposed 3D FFT): scale is the transform
// edge length; each transpose moves edge^3*16/ranks^2 bytes per peer pair.
func NewFFT(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 64
	}
	perPair := scale * scale * scale * 16 / int64(ranks) / int64(ranks)
	if perPair < 64 {
		perPair = 64
	}
	return &appProxy{
		name:       "fft",
		iterations: 4,
		body: func(r *mpi.Rank, _ int) {
			// Forward transform: local FFT, transpose, local FFT, transpose.
			r.Compute(50_000)
			r.Alltoall(perPair)
			r.Compute(50_000)
			r.Alltoall(perPair)
		},
	}
}

// NewBFS builds the Graph500 BFS proxy: scale is the log2 of the number of
// vertices per rank.
func NewBFS(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 16
	}
	verticesPerRank := int64(1) << uint(scale%28)
	return &appProxy{
		name:       "bfs",
		iterations: 2,
		body: func(r *mpi.Rank, _ int) {
			// Level-synchronous BFS: the frontier grows then shrinks; each
			// level exchanges frontier edges with every other rank and agrees
			// on the global frontier size.
			levels := []int64{1, 64, 512, 64, 4}
			for _, frac := range levels {
				bytes := verticesPerRank * frac / 1024 * 8 / int64(r.Size())
				if bytes < 16 {
					bytes = 16
				}
				r.Alltoall(bytes)
				r.Allreduce(2)
				r.Compute(10_000)
			}
		},
	}
}

// NewSSSP builds the Graph500 SSSP proxy: more relaxation rounds than BFS with
// smaller per-round exchanges.
func NewSSSP(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 16
	}
	verticesPerRank := int64(1) << uint(scale%28)
	return &appProxy{
		name:       "sssp",
		iterations: 2,
		body: func(r *mpi.Rank, _ int) {
			for round := 0; round < 10; round++ {
				bytes := verticesPerRank / 256 * 8 / int64(r.Size())
				if bytes < 16 {
					bytes = 16
				}
				r.Alltoall(bytes)
				r.Allreduce(2)
				r.Compute(6_000)
			}
		},
	}
}

// NewLAMMPS builds the LAMMPS proxy: scale is the number of atoms per rank (in
// thousands).
func NewLAMMPS(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 32
	}
	ghost := scale * 1000 / 10 * 40 // ~10% ghost atoms, 40 bytes each
	return &appProxy{
		name:       "lammps",
		iterations: 10,
		body: func(r *mpi.Rank, iter int) {
			peers := neighbours3D(r.Rank(), r.Size())
			haloExchange(r, peers, ghost)
			r.Compute(120_000) // force computation dominates
			if iter%5 == 0 {
				// Neighbour list rebuild: extra exchange plus a reduction.
				haloExchange(r, peers, ghost*2)
				r.Allreduce(4)
			}
		},
	}
}

// NewCP2K builds the CP2K proxy: scale sets the block size of the distributed
// sparse matrix multiplications.
func NewCP2K(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 64
	}
	block := scale * scale * 8
	return &appProxy{
		name:       "cp2k",
		iterations: 5,
		body: func(r *mpi.Rank, _ int) {
			// DBCSR-like cannon steps: broadcasts of blocks along rows and
			// columns, local multiply, then a reduction; plus an FFT-ish
			// alltoall for the electrostatics.
			for step := 0; step < 3; step++ {
				r.Broadcast(step%r.Size(), block)
				r.Compute(80_000)
			}
			r.Allreduce(64)
			r.Alltoall(block / int64(r.Size()) * 4)
		},
	}
}

// NewNekbone builds the Nekbone proxy: scale is the number of elements per rank.
func NewNekbone(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 512
	}
	exchange := scale * 8 * 6 // boundary DOFs shared with each neighbour
	return &appProxy{
		name:       "nekbone",
		iterations: 12,
		body: func(r *mpi.Rank, _ int) {
			peers := neighbours3D(r.Rank(), r.Size())
			// One CG iteration: gather-scatter halo, local operator, two dot
			// products.
			haloExchange(r, peers, exchange)
			r.Compute(35_000)
			r.Allreduce(2)
			r.Allreduce(2)
		},
	}
}

// NewWRF builds the WRF proxy; tropical selects the WRF-T variant (more
// physics computation per step than the baroclinic WRF-B case).
func NewWRF(ranks int, scale int64, tropical bool) Workload {
	if scale <= 0 {
		scale = 128
	}
	px, py := Factor2D(ranks)
	name := "wrf-b"
	compute := int64(90_000)
	if tropical {
		name = "wrf-t"
		compute = 160_000
	}
	return &appProxy{
		name:       name,
		iterations: 8,
		body: func(r *mpi.Rank, _ int) {
			// 2D halo exchange of wide faces (many vertical levels).
			x := r.Rank() % px
			y := r.Rank() / px
			if y >= py {
				return
			}
			var peers []int
			if x > 0 {
				peers = append(peers, r.Rank()-1)
			}
			if x < px-1 {
				peers = append(peers, r.Rank()+1)
			}
			if y > 0 {
				peers = append(peers, r.Rank()-px)
			}
			if y < py-1 {
				peers = append(peers, r.Rank()+px)
			}
			face := scale / int64(px) * 64 * 8 * 4 // edge cells x levels x vars
			if face < 256 {
				face = 256
			}
			haloExchange(r, peers, face)
			r.Compute(compute)
		},
	}
}

// NewQuantumEspresso builds the Quantum Espresso proxy: scale is the plane-wave
// grid edge.
func NewQuantumEspresso(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 64
	}
	perPair := scale * scale * scale * 16 / int64(ranks) / int64(ranks)
	if perPair < 64 {
		perPair = 64
	}
	return &appProxy{
		name:       "qe",
		iterations: 4,
		body: func(r *mpi.Rank, _ int) {
			// SCF step: 3D FFTs (alltoall transposes) for each band group,
			// a broadcast of the updated potential, and a reduction.
			for band := 0; band < 2; band++ {
				r.Alltoall(perPair)
				r.Compute(45_000)
			}
			r.Broadcast(0, scale*scale*8)
			r.Allreduce(128)
		},
	}
}

// NewVPFFT builds the VPFFT proxy (mesoscale micromechanics, FFT dominated).
func NewVPFFT(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 64
	}
	perPair := scale * scale * scale * 16 / int64(ranks) / int64(ranks)
	if perPair < 64 {
		perPair = 64
	}
	return &appProxy{
		name:       "vpfft",
		iterations: 3,
		body: func(r *mpi.Rank, _ int) {
			// Each strain-update iteration performs forward+inverse 3D FFTs.
			for fftStep := 0; fftStep < 4; fftStep++ {
				r.Alltoall(perPair)
				r.Compute(30_000)
			}
			r.Allreduce(16)
		},
	}
}

// NewAmber builds the Amber PME molecular-dynamics proxy: scale is thousands
// of atoms per rank.
func NewAmber(ranks int, scale int64) Workload {
	if scale <= 0 {
		scale = 24
	}
	ghost := scale * 1000 / 8 * 48
	fftPair := int64(64 * 64 * 64 * 16 / ranks / ranks)
	if fftPair < 64 {
		fftPair = 64
	}
	return &appProxy{
		name:       "amber",
		iterations: 8,
		body: func(r *mpi.Rank, iter int) {
			peers := neighbours3D(r.Rank(), r.Size())
			haloExchange(r, peers, ghost)
			r.Compute(140_000) // direct-space forces
			// Reciprocal-space PME every other step: 3D FFT alltoalls.
			if iter%2 == 0 {
				r.Alltoall(fftPair)
				r.Alltoall(fftPair)
			}
			r.Allreduce(8)
		},
	}
}
