package workloads

import (
	"math/rand"

	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
)

// Synthetic traffic patterns beyond the paper's microbenchmarks. They cover
// the classic stress patterns of the interconnect literature — incast,
// permutation shifts, random access, matrix transpose, 2D halos and software
// pipelines — and are used by the ablation experiments and by the scheduler /
// telemetry examples to generate controlled load shapes.

// Incast makes every rank send MessageBytes to a single victim rank, the
// many-to-one hot-spot pattern that packet spraying is "feared" for in the
// paper's introduction.
type Incast struct {
	// Victim is the receiving rank.
	Victim int
	// MessageBytes is the payload each sender contributes.
	MessageBytes int64
	// Iterations is the number of incast rounds per Run.
	Iterations int
}

// Name implements Workload.
func (w *Incast) Name() string { return "incast" }

// Run implements Workload.
func (w *Incast) Run(r *mpi.Rank) {
	iters := w.Iterations
	if iters <= 0 {
		iters = 1
	}
	n := r.Size()
	victim := w.Victim
	if victim < 0 || victim >= n {
		victim = 0
	}
	for i := 0; i < iters; i++ {
		if r.Rank() == victim {
			reqs := make([]*mpi.Request, 0, n-1)
			for p := 0; p < n; p++ {
				if p == victim {
					continue
				}
				reqs = append(reqs, r.Irecv(p))
			}
			r.WaitAll(reqs...)
		} else {
			r.Send(victim, w.MessageBytes, core.PointToPoint)
		}
		r.Barrier()
	}
}

// Shift is the permutation pattern: every rank sends MessageBytes to the rank
// Distance positions ahead (mod n). Adversarial shift distances concentrate
// all traffic of a group onto a few global links, the pattern non-minimal
// routing exists to spread.
type Shift struct {
	// Distance is the rank offset of the destination.
	Distance int
	// MessageBytes is the per-message payload.
	MessageBytes int64
	// Iterations is the number of exchange rounds per Run.
	Iterations int
}

// Name implements Workload.
func (w *Shift) Name() string { return "shift" }

// Run implements Workload.
func (w *Shift) Run(r *mpi.Rank) {
	iters := w.Iterations
	if iters <= 0 {
		iters = 1
	}
	n := r.Size()
	if n == 1 {
		return
	}
	d := w.Distance % n
	if d <= 0 {
		d += n
		if d == n {
			d = 1
		}
	}
	to := (r.Rank() + d) % n
	from := (r.Rank() - d + n) % n
	for i := 0; i < iters; i++ {
		recvReq := r.Irecv(from)
		sendReq := r.Isend(to, w.MessageBytes, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
	}
}

// RandomAccess approximates the GUPS benchmark: every rank sends many small
// updates to uniformly random peers. It is latency bound and produces a
// uniform-random traffic matrix.
type RandomAccess struct {
	// UpdateBytes is the size of one update message.
	UpdateBytes int64
	// UpdatesPerRank is the number of updates each rank issues per Run.
	UpdatesPerRank int
	// Seed seeds the per-run destination stream (each rank derives its own).
	Seed int64
}

// Name implements Workload.
func (w *RandomAccess) Name() string { return "randomaccess" }

// Run implements Workload.
func (w *RandomAccess) Run(r *mpi.Rank) {
	n := r.Size()
	if n == 1 {
		return
	}
	updates := w.UpdatesPerRank
	if updates <= 0 {
		updates = 16
	}
	bytes := w.UpdateBytes
	if bytes <= 0 {
		bytes = 8
	}
	// Every rank derives each peer's destination stream from the same seeded
	// construction, so it can predict how many updates it will receive from
	// every peer and post the matching receives without a wildcard-receive
	// primitive.
	incomingFrom := make([]int, n)
	myDest := make([]int, updates)
	for peer := 0; peer < n; peer++ {
		peerRng := rand.New(rand.NewSource(w.Seed*1_000_003 + int64(peer) + 1))
		for u := 0; u < updates; u++ {
			d := peerRng.Intn(n - 1)
			if d >= peer {
				d++
			}
			if peer == r.Rank() {
				myDest[u] = d
			}
			if d == r.Rank() && peer != r.Rank() {
				incomingFrom[peer]++
			}
		}
	}
	reqs := make([]*mpi.Request, 0, 2*updates)
	for peer, cnt := range incomingFrom {
		for i := 0; i < cnt; i++ {
			reqs = append(reqs, r.Irecv(peer))
		}
	}
	for _, d := range myDest {
		reqs = append(reqs, r.Isend(d, bytes, core.PointToPoint))
	}
	r.WaitAll(reqs...)
}

// Transpose is the 2D matrix-transpose pattern of distributed FFTs: ranks are
// arranged in a logical px x py grid and each rank exchanges a block with its
// transposed counterpart.
type Transpose struct {
	// BlockBytes is the per-pair block size.
	BlockBytes int64
	// Iterations is the number of transpose rounds per Run.
	Iterations int
}

// Name implements Workload.
func (w *Transpose) Name() string { return "transpose" }

// Run implements Workload.
func (w *Transpose) Run(r *mpi.Rank) {
	iters := w.Iterations
	if iters <= 0 {
		iters = 1
	}
	n := r.Size()
	if n == 1 {
		return
	}
	px, py := Factor2D(n)
	x := r.Rank() % px
	y := r.Rank() / px
	// The transposed coordinate may fall outside a non-square grid; clamp to a
	// plain pairwise partner in that case.
	tx, ty := y, x
	partner := r.Rank()
	if tx < px && ty < py {
		partner = tx + ty*px
	}
	for i := 0; i < iters; i++ {
		if partner == r.Rank() {
			r.Barrier()
			continue
		}
		recvReq := r.Irecv(partner)
		sendReq := r.Isend(partner, w.BlockBytes, core.PointToPoint)
		r.Wait(sendReq)
		r.Wait(recvReq)
		r.Barrier()
	}
}

// Halo2D is a five-point 2D stencil exchange (the 2D cousin of halo3d),
// common in structured-grid codes.
type Halo2D struct {
	// FaceBytes is the per-neighbour message size.
	FaceBytes int64
	// Iterations is the number of exchange rounds per Run.
	Iterations int
	// ComputeCycles is the per-iteration compute time between exchanges.
	ComputeCycles int64
}

// Name implements Workload.
func (w *Halo2D) Name() string { return "halo2d" }

// Run implements Workload.
func (w *Halo2D) Run(r *mpi.Rank) {
	iters := w.Iterations
	if iters <= 0 {
		iters = 1
	}
	n := r.Size()
	px, py := Factor2D(n)
	x := r.Rank() % px
	y := r.Rank() / px
	var peers []int
	add := func(nx, ny int) {
		if nx < 0 || nx >= px || ny < 0 || ny >= py {
			return
		}
		peers = append(peers, nx+ny*px)
	}
	add(x-1, y)
	add(x+1, y)
	add(x, y-1)
	add(x, y+1)
	for i := 0; i < iters; i++ {
		if w.ComputeCycles > 0 {
			r.Compute(w.ComputeCycles)
		}
		haloExchange(r, peers, w.FaceBytes)
	}
}

// Pipeline is a software-pipeline pattern: rank k repeatedly receives a block
// from rank k-1, "computes", and forwards it to rank k+1.
type Pipeline struct {
	// BlockBytes is the forwarded block size.
	BlockBytes int64
	// Stages is the number of blocks pushed through the pipeline per Run.
	Stages int
	// ComputeCycles is the per-stage compute time.
	ComputeCycles int64
}

// Name implements Workload.
func (w *Pipeline) Name() string { return "pipeline" }

// Run implements Workload.
func (w *Pipeline) Run(r *mpi.Rank) {
	n := r.Size()
	if n == 1 {
		return
	}
	stages := w.Stages
	if stages <= 0 {
		stages = 4
	}
	for s := 0; s < stages; s++ {
		if r.Rank() > 0 {
			r.Recv(r.Rank() - 1)
		}
		if w.ComputeCycles > 0 {
			r.Compute(w.ComputeCycles)
		}
		if r.Rank() < n-1 {
			r.Send(r.Rank()+1, w.BlockBytes, core.PointToPoint)
		}
	}
}

// TunedCollectives exercises the size-tuned collective algorithms back to
// back, reproducing the phase structure of an application that mixes small
// control collectives with large data collectives.
type TunedCollectives struct {
	// SmallBytes and LargeBytes are the two payload regimes.
	SmallBytes int64
	LargeBytes int64
	// Iterations is the number of phase pairs per Run.
	Iterations int
	// Tuning selects the per-size algorithms; the zero value uses the default
	// thresholds.
	Tuning mpi.Tuning
}

// Name implements Workload.
func (w *TunedCollectives) Name() string { return "tuned-collectives" }

// Run implements Workload.
func (w *TunedCollectives) Run(r *mpi.Rank) {
	iters := w.Iterations
	if iters <= 0 {
		iters = 1
	}
	tun := w.Tuning
	if tun == (mpi.Tuning{}) {
		tun = mpi.DefaultTuning()
	}
	small, large := w.SmallBytes, w.LargeBytes
	if small <= 0 {
		small = 64
	}
	if large <= 0 {
		large = 64 << 10
	}
	for i := 0; i < iters; i++ {
		r.TunedAllreduce(tun, small)
		r.TunedBroadcast(tun, 0, large)
		r.TunedAlltoall(tun, small)
		r.TunedAllreduce(tun, large)
	}
}
