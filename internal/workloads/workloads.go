// Package workloads implements the communication patterns evaluated in the
// paper: the microbenchmarks of §5.1 (ping-pong, allreduce, alltoall, barrier,
// broadcast, halo3d, sweep3d) and communication skeletons of the real
// applications of §5.2 (CP2K, WRF, LAMMPS, Quantum Espresso, Nekbone, VPFFT,
// Amber, MILC, HPCG, Graph500 BFS/SSSP, FFT).
//
// A workload is a program executed by every rank of a communicator
// (mpi.Comm.Run). Workloads only generate traffic and compute delays; all
// measurement happens outside (the experiments package samples the simulated
// clock around each iteration).
package workloads

import (
	"fmt"
	"sort"

	"dragonfly/internal/mpi"
)

// Workload is a communication pattern runnable on a communicator.
type Workload interface {
	// Name returns the workload's name as used in the paper's figures.
	Name() string
	// Run executes the workload on one rank. It is called once per rank by
	// mpi.Comm.Run.
	Run(r *mpi.Rank)
}

// Func adapts a function to the Workload interface.
type Func struct {
	// WorkloadName is returned by Name.
	WorkloadName string
	// Body is invoked by Run.
	Body func(r *mpi.Rank)
}

// Name implements Workload.
func (f Func) Name() string { return f.WorkloadName }

// Run implements Workload.
func (f Func) Run(r *mpi.Rank) { f.Body(r) }

// SizeFor maps a registered workload name to the size argument New expects:
// per-message bytes for the collectives, but a laptop-scale domain edge for
// the stencil workloads — their size parameter is an edge length, and feeding
// a byte count there would explode into terabyte-scale faces. Callers that
// size heterogeneous workloads from one byte-count knob (the batch mix, the
// co-tenancy experiment) go through this one mapping.
func SizeFor(name string, messageBytes int64) int64 {
	switch name {
	case "halo3d", "sweep3d":
		return 256
	default:
		return messageBytes
	}
}

// Factor3D factors n into three dimensions px >= py >= pz with px*py*pz == n,
// as balanced as possible. It is used to build process grids for stencil
// workloads.
func Factor3D(n int) (px, py, pz int) {
	if n <= 0 {
		return 1, 1, 1
	}
	best := [3]int{n, 1, 1}
	bestScore := score3(n, 1, 1)
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rest := n / a
		for b := a; b*b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			if s := score3(c, b, a); s < bestScore {
				bestScore = s
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// score3 measures how unbalanced a factorization is (smaller is better).
func score3(a, b, c int) int {
	dims := []int{a, b, c}
	sort.Ints(dims)
	return (dims[2] - dims[0]) + (dims[2] - dims[1])
}

// Factor2D factors n into two dimensions px >= py with px*py == n.
func Factor2D(n int) (px, py int) {
	if n <= 0 {
		return 1, 1
	}
	best := [2]int{n, 1}
	for a := 1; a*a <= n; a++ {
		if n%a == 0 {
			best = [2]int{n / a, a}
		}
	}
	return best[0], best[1]
}

// grid3 maps a rank to its coordinates in a px x py x pz grid.
func grid3(rank, px, py, pz int) (x, y, z int) {
	_ = pz
	x = rank % px
	y = (rank / px) % py
	z = rank / (px * py)
	return x, y, z
}

// rank3 maps grid coordinates back to a rank.
func rank3(x, y, z, px, py int) int { return x + y*px + z*px*py }

// Registry returns the named workload constructors available to the command
// line tools. Each constructor receives the communicator size and a size
// parameter whose meaning is workload specific (bytes for message-based
// benchmarks, domain edge length for stencils, elements for allreduce).
func Registry() map[string]func(ranks int, size int64) Workload {
	return map[string]func(int, int64) Workload{
		"pingpong":  func(_ int, size int64) Workload { return &PingPong{MessageBytes: size, Iterations: 1} },
		"allreduce": func(_ int, size int64) Workload { return &Allreduce{Elements: size, Iterations: 1} },
		"alltoall":  func(_ int, size int64) Workload { return &Alltoall{MessageBytes: size, Iterations: 1} },
		"barrier":   func(_ int, _ int64) Workload { return &Barrier{Iterations: 1} },
		"broadcast": func(_ int, size int64) Workload { return &Broadcast{MessageBytes: size, Iterations: 1} },
		"halo3d":    func(ranks int, size int64) Workload { return NewHalo3D(ranks, size, 1) },
		"sweep3d":   func(ranks int, size int64) Workload { return NewSweep3D(ranks, size, 1) },
		"milc":      func(ranks int, size int64) Workload { return NewMILC(ranks, size) },
		"hpcg":      func(ranks int, size int64) Workload { return NewHPCG(ranks, size) },
		"fft":       func(ranks int, size int64) Workload { return NewFFT(ranks, size) },
		"bfs":       func(ranks int, size int64) Workload { return NewBFS(ranks, size) },
		"sssp":      func(ranks int, size int64) Workload { return NewSSSP(ranks, size) },
		"lammps":    func(ranks int, size int64) Workload { return NewLAMMPS(ranks, size) },
		"cp2k":      func(ranks int, size int64) Workload { return NewCP2K(ranks, size) },
		"nekbone":   func(ranks int, size int64) Workload { return NewNekbone(ranks, size) },
		"wrf-b":     func(ranks int, size int64) Workload { return NewWRF(ranks, size, false) },
		"wrf-t":     func(ranks int, size int64) Workload { return NewWRF(ranks, size, true) },
		"qe":        func(ranks int, size int64) Workload { return NewQuantumEspresso(ranks, size) },
		"vpfft":     func(ranks int, size int64) Workload { return NewVPFFT(ranks, size) },
		"amber":     func(ranks int, size int64) Workload { return NewAmber(ranks, size) },
		"incast":    func(_ int, size int64) Workload { return &Incast{MessageBytes: size, Iterations: 1} },
		"shift": func(ranks int, size int64) Workload {
			return &Shift{Distance: ranks/2 + 1, MessageBytes: size, Iterations: 1}
		},
		"randomaccess": func(_ int, size int64) Workload { return &RandomAccess{UpdateBytes: size, UpdatesPerRank: 16, Seed: 1} },
		"transpose":    func(_ int, size int64) Workload { return &Transpose{BlockBytes: size, Iterations: 1} },
		"halo2d":       func(_ int, size int64) Workload { return &Halo2D{FaceBytes: size, Iterations: 1} },
		"pipeline":     func(_ int, size int64) Workload { return &Pipeline{BlockBytes: size, Stages: 4} },
		"tuned-collectives": func(_ int, size int64) Workload {
			return &TunedCollectives{SmallBytes: 64, LargeBytes: size, Iterations: 1}
		},
	}
}

// New builds a workload by name, returning an error for unknown names.
func New(name string, ranks int, size int64) (Workload, error) {
	ctor, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return ctor(ranks, size), nil
}

// Names returns the sorted list of registered workload names.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
