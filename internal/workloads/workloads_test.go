package workloads

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// runWorkload executes a workload on n ranks and returns the elapsed simulated
// time and the total packets injected.
func runWorkload(t *testing.T, w Workload, n int, seed int64) (elapsed sim.Time, packets uint64) {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	a := alloc.MustAllocate(tt, alloc.GroupStriped, n, nil, nil)
	c := mpi.MustNewComm(fab, a, mpi.Config{})
	start := eng.Now()
	if err := c.Run(w.Run); err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	for i := 0; i < n; i++ {
		if err := c.Rank(i).Err(); err != nil {
			t.Fatalf("%s rank %d: %v", w.Name(), i, err)
		}
	}
	return eng.Now() - start, fab.PacketsInjected()
}

func TestFactor3D(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		8:  {2, 2, 2},
		12: {3, 2, 2},
		27: {3, 3, 3},
		64: {4, 4, 4},
		60: {5, 4, 3},
	}
	for n, want := range cases {
		px, py, pz := Factor3D(n)
		if px*py*pz != n {
			t.Fatalf("Factor3D(%d) = %d*%d*%d != %d", n, px, py, pz, n)
		}
		if px != want[0] || py != want[1] || pz != want[2] {
			t.Fatalf("Factor3D(%d) = (%d,%d,%d), want %v", n, px, py, pz, want)
		}
	}
	if px, py, pz := Factor3D(0); px != 1 || py != 1 || pz != 1 {
		t.Fatal("Factor3D(0) must be all ones")
	}
}

func TestFactor2D(t *testing.T) {
	for _, n := range []int{1, 2, 6, 16, 30, 64} {
		px, py := Factor2D(n)
		if px*py != n || px < py {
			t.Fatalf("Factor2D(%d) = %d x %d", n, px, py)
		}
	}
	if px, py := Factor2D(-1); px != 1 || py != 1 {
		t.Fatal("Factor2D of non-positive must be 1x1")
	}
}

// Property: Factor3D always returns a valid factorization with px >= py >= pz.
func TestPropertyFactor3D(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw) + 1
		px, py, pz := Factor3D(n)
		return px*py*pz == n && px >= py && py >= pz && pz >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 255}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAndNames(t *testing.T) {
	names := Names()
	if len(names) < 20 {
		t.Fatalf("expected at least 20 registered workloads, got %d", len(names))
	}
	for _, name := range names {
		w, err := New(name, 8, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if w.Name() == "" {
			t.Fatalf("workload %q has empty name", name)
		}
	}
	if _, err := New("definitely-not-a-workload", 8, 0); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	w := Func{WorkloadName: "custom", Body: func(r *mpi.Rank) { called = true }}
	if w.Name() != "custom" {
		t.Fatal("wrong name")
	}
	elapsed, _ := runWorkload(t, w, 2, 1)
	if !called {
		t.Fatal("body never called")
	}
	_ = elapsed
}

func TestPingPongOnlyTwoRanksTalk(t *testing.T) {
	w := &PingPong{MessageBytes: 4096, Iterations: 3}
	elapsed, packets := runWorkload(t, w, 6, 2)
	if elapsed <= 0 || packets == 0 {
		t.Fatalf("pingpong produced no progress: elapsed=%d packets=%d", elapsed, packets)
	}
	// 3 iterations x 2 directions x 64 packets per 4 KiB message.
	wantPackets := uint64(3 * 2 * 64)
	if packets != wantPackets {
		t.Fatalf("packets = %d, want %d (only ranks 0 and 1 should communicate)", packets, wantPackets)
	}
}

func TestPingPongDefaultPeersDistinct(t *testing.T) {
	w := &PingPong{MessageBytes: 128}
	if _, packets := runWorkload(t, w, 4, 3); packets == 0 {
		t.Fatal("default peers produced no traffic")
	}
}

func TestMicrobenchmarksComplete(t *testing.T) {
	micro := []Workload{
		&PingPong{MessageBytes: 1024, Iterations: 2},
		&Allreduce{Elements: 256, Iterations: 2},
		&Alltoall{MessageBytes: 512, Iterations: 2},
		&Barrier{Iterations: 3},
		&Broadcast{MessageBytes: 2048, Iterations: 2},
		NewHalo3D(8, 64, 2),
		NewSweep3D(8, 64, 1),
	}
	for _, w := range micro {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			elapsed, packets := runWorkload(t, w, 8, 4)
			if elapsed <= 0 {
				t.Fatalf("%s made no progress", w.Name())
			}
			if packets == 0 {
				t.Fatalf("%s injected no packets", w.Name())
			}
		})
	}
}

func TestMicrobenchmarksZeroIterationDefaults(t *testing.T) {
	// Zero/negative iteration counts default to one iteration.
	micro := []Workload{
		&PingPong{MessageBytes: 256},
		&Allreduce{Elements: 16},
		&Alltoall{MessageBytes: 128},
		&Barrier{},
		&Broadcast{MessageBytes: 128},
	}
	for _, w := range micro {
		if _, packets := runWorkload(t, w, 4, 5); packets == 0 {
			t.Fatalf("%s with default iterations injected no packets", w.Name())
		}
	}
}

func TestHalo3DMessageSizesScaleWithDomain(t *testing.T) {
	small := NewHalo3D(8, 64, 1)
	large := NewHalo3D(8, 256, 1)
	_, smallPackets := runWorkload(t, small, 8, 6)
	_, largePackets := runWorkload(t, large, 8, 6)
	if largePackets <= smallPackets {
		t.Fatalf("larger domain must send more data: %d vs %d packets", largePackets, smallPackets)
	}
}

func TestHalo3DNonCubicRanks(t *testing.T) {
	// 6 ranks -> 3x2x1 grid; must still complete.
	if _, packets := runWorkload(t, NewHalo3D(6, 64, 1), 6, 7); packets == 0 {
		t.Fatal("halo3d on non-cubic grid injected no packets")
	}
}

func TestSweep3DWavefrontOrdering(t *testing.T) {
	// The corner rank finishes first, the opposite corner last; total time
	// must exceed a single rank's local work (the wavefront serializes).
	w := NewSweep3D(4, 64, 1)
	elapsed, packets := runWorkload(t, w, 4, 8)
	if packets == 0 || elapsed <= 0 {
		t.Fatal("sweep3d made no progress")
	}
}

func TestApplicationProxiesComplete(t *testing.T) {
	ctors := map[string]func() Workload{
		"milc":    func() Workload { return NewMILC(8, 8) },
		"hpcg":    func() Workload { return NewHPCG(8, 16) },
		"fft":     func() Workload { return NewFFT(8, 32) },
		"bfs":     func() Workload { return NewBFS(8, 12) },
		"sssp":    func() Workload { return NewSSSP(8, 12) },
		"lammps":  func() Workload { return NewLAMMPS(8, 4) },
		"cp2k":    func() Workload { return NewCP2K(8, 16) },
		"nekbone": func() Workload { return NewNekbone(8, 64) },
		"wrf-b":   func() Workload { return NewWRF(8, 32, false) },
		"wrf-t":   func() Workload { return NewWRF(8, 32, true) },
		"qe":      func() Workload { return NewQuantumEspresso(8, 32) },
		"vpfft":   func() Workload { return NewVPFFT(8, 32) },
		"amber":   func() Workload { return NewAmber(8, 2) },
	}
	for name, ctor := range ctors {
		name, ctor := name, ctor
		t.Run(name, func(t *testing.T) {
			w := ctor()
			if w.Name() != name {
				t.Fatalf("workload name %q, want %q", w.Name(), name)
			}
			elapsed, packets := runWorkload(t, w, 8, 9)
			if elapsed <= 0 || packets == 0 {
				t.Fatalf("%s made no progress (elapsed=%d, packets=%d)", name, elapsed, packets)
			}
		})
	}
}

func TestApplicationProxiesDefaultScale(t *testing.T) {
	// A zero scale must fall back to a sensible default rather than sending
	// nothing or dividing by zero.
	for _, ctor := range []func() Workload{
		func() Workload { return NewMILC(4, 0) },
		func() Workload { return NewHPCG(4, 0) },
		func() Workload { return NewFFT(4, 0) },
		func() Workload { return NewBFS(4, 0) },
		func() Workload { return NewSSSP(4, 0) },
		func() Workload { return NewLAMMPS(4, 0) },
		func() Workload { return NewCP2K(4, 0) },
		func() Workload { return NewNekbone(4, 0) },
		func() Workload { return NewWRF(4, 0, false) },
		func() Workload { return NewQuantumEspresso(4, 0) },
		func() Workload { return NewVPFFT(4, 0) },
		func() Workload { return NewAmber(4, 0) },
	} {
		w := ctor()
		if _, packets := runWorkload(t, w, 4, 10); packets == 0 {
			t.Fatalf("%s with default scale injected no packets", w.Name())
		}
	}
}

func TestWRFVariantsDiffer(t *testing.T) {
	// The two variants differ only in their compute phase, so they inject the
	// same traffic; the total runtimes differ because compute both adds local
	// time and desynchronizes the halo exchanges.
	b, bPackets := runWorkload(t, NewWRF(8, 64, false), 8, 11)
	tr, trPackets := runWorkload(t, NewWRF(8, 64, true), 8, 11)
	if bPackets != trPackets {
		t.Fatalf("WRF variants sent different traffic: %d vs %d packets", bPackets, trPackets)
	}
	if b <= 0 || tr <= 0 || b == tr {
		t.Fatalf("WRF variants should complete with distinct runtimes: %d vs %d", b, tr)
	}
}

func TestComputeHeavyProxySlowerThanCommOnly(t *testing.T) {
	// halo3d (communication only) vs LAMMPS (compute heavy) with comparable
	// traffic: the proxy with compute must take longer per unit of traffic.
	_, haloPackets := runWorkload(t, NewHalo3D(8, 128, 10), 8, 12)
	lammpsTime, lammpsPackets := runWorkload(t, NewLAMMPS(8, 8), 8, 12)
	haloTime, _ := runWorkload(t, NewHalo3D(8, 128, 10), 8, 12)
	if haloPackets == 0 || lammpsPackets == 0 {
		t.Fatal("no traffic")
	}
	perPacketHalo := float64(haloTime) / float64(haloPackets)
	perPacketLammps := float64(lammpsTime) / float64(lammpsPackets)
	if perPacketLammps <= perPacketHalo {
		t.Fatalf("compute-heavy proxy should cost more time per packet: %.2f vs %.2f",
			perPacketLammps, perPacketHalo)
	}
}
