// Package counterfactual replays recorded routing decisions against the
// alternatives the router saw but did not take. The paper's central claim —
// that application-aware bias selection avoids congestion the adaptive
// default walks into — is normally argued from end-to-end slowdowns; scoring
// each decision's candidate set under every bias mode quantifies it per
// decision: for each mode, how much raw congestion cost would its pick have
// paid, versus what the recorded choice paid. The package also converts a
// message log into calibration samples for the perfmodel fitting harness,
// closing the trace → replay → calibrate loop.
package counterfactual

import (
	"fmt"

	"dragonfly/internal/msglog"
	"dragonfly/internal/perfmodel"
	"dragonfly/internal/routing"
)

// ModeOutcome aggregates the counterfactual replay of one routing mode over a
// decision trace.
type ModeOutcome struct {
	// Mode is the bias mode the decisions were re-scored under.
	Mode routing.Mode
	// Decisions is the number of decisions replayed.
	Decisions int64
	// Switched counts decisions where this mode would have picked a different
	// candidate than the recorded choice.
	Switched int64
	// MinimalPicks counts decisions where this mode picks a minimal candidate.
	MinimalPicks int64
	// ActualRawCost sums the unbiased congestion cost of the recorded choices.
	ActualRawCost int64
	// ModeRawCost sums the unbiased congestion cost of this mode's picks.
	ModeRawCost int64
}

// AvoidedCycles returns the total congestion cost the recorded choices
// avoided relative to this mode's picks: positive means the recorded policy
// paid less raw congestion than mode m would have, negative means mode m
// would have found cheaper paths.
func (o ModeOutcome) AvoidedCycles() int64 { return o.ModeRawCost - o.ActualRawCost }

// MeanAvoided returns AvoidedCycles per decision.
func (o ModeOutcome) MeanAvoided() float64 {
	if o.Decisions == 0 {
		return 0
	}
	return float64(o.AvoidedCycles()) / float64(o.Decisions)
}

// SwitchedFraction returns the share of decisions this mode would redirect.
func (o ModeOutcome) SwitchedFraction() float64 {
	if o.Decisions == 0 {
		return 0
	}
	return float64(o.Switched) / float64(o.Decisions)
}

// MinimalFraction returns the share of decisions this mode routes minimally.
func (o ModeOutcome) MinimalFraction() float64 {
	if o.Decisions == 0 {
		return 0
	}
	return float64(o.MinimalPicks) / float64(o.Decisions)
}

// Score replays every decision of the trace under each of the given modes and
// aggregates one ModeOutcome per mode. A replay re-biases the recorded raw
// candidate costs with the mode's bias (via Params.BiasFor, using the
// recorded best-minimal-hops) and picks the cheapest candidate with the same
// strict-< first-wins rule Policy.Route uses, so replaying a decision under
// the mode that made it reproduces the recorded choice exactly.
func Score(t *routing.DecisionTrace, params routing.Params, modes []routing.Mode) ([]ModeOutcome, error) {
	if t == nil {
		return nil, fmt.Errorf("counterfactual: nil decision trace")
	}
	out := make([]ModeOutcome, len(modes))
	for i, m := range modes {
		out[i].Mode = m
	}
	t.ForEach(func(_ int, d *routing.TracedDecision) {
		n := int(d.NumCandidates)
		if n == 0 {
			return
		}
		actual := d.Candidates[d.Chosen].RawCost
		for i, m := range modes {
			bias := params.BiasFor(m, int(d.BestMinHops))
			pick := 0
			best := int64(1) << 62
			for c := 0; c < n; c++ {
				cost := d.Candidates[c].RawCost
				if !d.Candidates[c].Minimal {
					cost += bias
				}
				if cost < best {
					best = cost
					pick = c
				}
			}
			o := &out[i]
			o.Decisions++
			if int8(pick) != d.Chosen {
				o.Switched++
			}
			if d.Candidates[pick].Minimal {
				o.MinimalPicks++
			}
			o.ActualRawCost += actual
			o.ModeRawCost += d.Candidates[pick].RawCost
		}
	})
	return out, nil
}

// CalibrationSamples converts a message log into perfmodel calibration
// samples: one observation per record, pairing the message's packet/flit
// geometry with its measured transmission time. Records without a positive
// transmission time (loopback messages complete instantly) are skipped.
func CalibrationSamples(records []msglog.Record) []perfmodel.Sample {
	out := make([]perfmodel.Sample, 0, len(records))
	for _, r := range records {
		cycles := r.TransmissionCycles()
		if cycles <= 0 {
			continue
		}
		out = append(out, perfmodel.Sample{
			Geometry:       perfmodel.GeometryForSize(r.Size),
			ObservedCycles: float64(cycles),
		})
	}
	return out
}
