package counterfactual

import (
	"math/rand"
	"testing"

	"dragonfly/internal/msglog"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
)

// syntheticTrace builds one decision with a cheap non-minimal candidate and a
// pricier minimal one, recorded as if Adaptive (bias 0) chose the non-minimal.
func syntheticTrace(t *testing.T) *routing.DecisionTrace {
	t.Helper()
	tr, err := routing.NewDecisionTrace(2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := routing.TracedDecision{
		Mode:          routing.Adaptive,
		Flits:         5,
		Bias:          0,
		BestMinHops:   3,
		NumCandidates: 2,
		Chosen:        1,
	}
	d.Candidates[0] = routing.TracedCandidate{PathLen: 3, Minimal: true, RawCost: 500}
	d.Candidates[1] = routing.TracedCandidate{PathLen: 6, Minimal: false, RawCost: 300}
	tr.Add(0, d)
	return tr
}

func TestScoreRebiasesRecordedDecisions(t *testing.T) {
	tr := syntheticTrace(t)
	params := routing.DefaultParams()
	outcomes, err := Score(tr, params, []routing.Mode{
		routing.Adaptive, routing.AdaptiveLowBias, routing.AdaptiveHighBias,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Adaptive (bias 0) reproduces the recorded choice: non-minimal at 300.
	a := outcomes[0]
	if a.Switched != 0 || a.MinimalPicks != 0 || a.AvoidedCycles() != 0 {
		t.Fatalf("replay under the recording mode must reproduce it: %+v", a)
	}
	// Low bias (200): non-minimal costs 300+200=500, ties minimal 500; the
	// minimal candidate wins on first-strict-< order, switching the decision.
	l := outcomes[1]
	if l.Switched != 1 || l.MinimalPicks != 1 {
		t.Fatalf("low bias should switch to the minimal candidate: %+v", l)
	}
	if l.AvoidedCycles() != 500-300 {
		t.Fatalf("low-bias avoided cycles = %d, want 200", l.AvoidedCycles())
	}
	// High bias (800) also goes minimal.
	h := outcomes[2]
	if h.MinimalPicks != 1 || h.MeanAvoided() != 200 {
		t.Fatalf("high bias outcome wrong: %+v", h)
	}
	if a.Decisions != 1 || l.SwitchedFraction() != 1 || h.MinimalFraction() != 1 {
		t.Fatalf("fraction accessors wrong: %+v %+v %+v", a, l, h)
	}
}

func TestScoreNilTrace(t *testing.T) {
	if _, err := Score(nil, routing.DefaultParams(), []routing.Mode{routing.Adaptive}); err == nil {
		t.Fatal("expected error for nil trace")
	}
}

// TestScoreReproducesLiveRouting drives a real Policy with tracing on and
// checks that replaying under the recording mode never switches a decision —
// the recorded candidate order and strict-< rule match Route's exactly.
func TestScoreReproducesLiveRouting(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(3))
	params := routing.DefaultParams()
	pol := routing.MustNewPolicy(tt, params)
	tr, err := routing.NewDecisionTrace(tt.Config().Groups, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pol.SetDecisionTrace(tr)

	rng := rand.New(rand.NewSource(77))
	var view routing.CongestionView = routing.ZeroView{Propagation: 25, CyclesPerFlit: 3}
	for _, mode := range []routing.Mode{routing.Adaptive, routing.AdaptiveHighBias} {
		tr.Reset()
		for i := 0; i < 200; i++ {
			src := topo.RouterID(rng.Intn(tt.NumRouters()))
			dst := topo.RouterID(rng.Intn(tt.NumRouters()))
			if src == dst {
				continue
			}
			pol.Route(mode, src, dst, 5, 0, view, int64(i), rng)
		}
		outcomes, err := Score(tr, params, []routing.Mode{mode})
		if err != nil {
			t.Fatal(err)
		}
		o := outcomes[0]
		if o.Decisions == 0 {
			t.Fatalf("%v: no decisions replayed", mode)
		}
		if o.Switched != 0 || o.AvoidedCycles() != 0 {
			t.Fatalf("%v: self-replay switched %d/%d decisions (avoided %d)",
				mode, o.Switched, o.Decisions, o.AvoidedCycles())
		}
	}
}

func TestCalibrationSamplesSkipInstantRecords(t *testing.T) {
	records := []msglog.Record{
		{Size: 1024, SendStart: 0, DeliveredAt: 900},
		{Size: 64, SendStart: 100, DeliveredAt: 100}, // loopback: zero cycles
		{Size: 4096, SendStart: 50, DeliveredAt: 3050},
	}
	samples := CalibrationSamples(records)
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].ObservedCycles != 900 || samples[1].ObservedCycles != 3000 {
		t.Fatalf("observed cycles wrong: %+v", samples)
	}
	if samples[0].Geometry.Packets != 16 || samples[1].Geometry.Packets != 64 {
		t.Fatalf("geometry wrong: %+v", samples)
	}
}
