package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(xs), 5) {
		t.Fatalf("Mean = %v, want 5", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max must be 0")
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almostEqual(Percentile(xs, 0), 1) || !almostEqual(Percentile(xs, 100), 5) {
		t.Fatal("extreme percentiles wrong")
	}
	if !almostEqual(Median(xs), 3) {
		t.Fatalf("Median = %v", Median(xs))
	}
	if !almostEqual(Percentile(xs, 25), 2) || !almostEqual(Percentile(xs, 75), 4) {
		t.Fatal("quartile percentiles wrong")
	}
	even := []float64{1, 2, 3, 4}
	if !almostEqual(Median(even), 2.5) {
		t.Fatalf("Median(even) = %v, want 2.5", Median(even))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Unsorted input must not be modified.
	unsorted := []float64{5, 1, 3}
	_ = Median(unsorted)
	if unsorted[0] != 5 || unsorted[1] != 1 || unsorted[2] != 3 {
		t.Fatal("Percentile modified its input")
	}
}

func TestQuartilesIQRQCD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	q1, med, q3 := Quartiles(xs)
	if !almostEqual(q1, 3) || !almostEqual(med, 5) || !almostEqual(q3, 7) {
		t.Fatalf("Quartiles = %v %v %v", q1, med, q3)
	}
	if !almostEqual(IQR(xs), 4) {
		t.Fatalf("IQR = %v", IQR(xs))
	}
	if !almostEqual(QCD(xs), 0.4) {
		t.Fatalf("QCD = %v, want 0.4", QCD(xs))
	}
	if QCD([]float64{0, 0, 0}) != 0 {
		t.Fatal("QCD of zeros must be 0")
	}
	if q1, m, q3 := Quartiles(nil); q1 != 0 || m != 0 || q3 != 0 {
		t.Fatal("empty quartiles must be 0")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := PearsonCorrelation(xs, ys)
	if err != nil || !almostEqual(r, 1) {
		t.Fatalf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = PearsonCorrelation(xs, neg)
	if !almostEqual(r, -1) {
		t.Fatalf("perfect anti-correlation = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	r, err = PearsonCorrelation(xs, flat)
	if err != nil || r != 0 {
		t.Fatalf("zero-variance correlation = %v, %v", r, err)
	}
	if _, err := PearsonCorrelation(xs, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1}); err == nil {
		t.Fatal("too few samples must error")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 100}
	s := Summarize(xs)
	if s.N != 10 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Outliers != 1 {
		t.Fatalf("Outliers = %d, want 1 (the value 100)", s.Outliers)
	}
	if s.Median < 13 || s.Median > 16 {
		t.Fatalf("Median = %v", s.Median)
	}
	if s.MedianCILow > s.Median || s.MedianCIHigh < s.Median {
		t.Fatalf("median CI [%v, %v] does not contain median %v", s.MedianCILow, s.MedianCIHigh, s.Median)
	}
	if s.Max != 100 || s.Min != 10 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.String() == "" {
		t.Fatal("String must not be empty")
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary must have N=0")
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	lo, hi := BootstrapMedianCI([]float64{5}, 100, 0.95, 1)
	if lo != 5 || hi != 5 {
		t.Fatal("singleton CI must collapse")
	}
	lo, hi = BootstrapMedianCI(nil, 100, 0.95, 1)
	if lo != 0 || hi != 0 {
		t.Fatal("empty CI must be zero")
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	lo, hi = BootstrapMedianCI(xs, 300, 0.95, 7)
	if lo > Median(xs) || hi < Median(xs) {
		t.Fatalf("CI [%v,%v] does not contain the median", lo, hi)
	}
	if hi-lo > 30 {
		t.Fatalf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
	// Determinism.
	lo2, hi2 := BootstrapMedianCI(xs, 300, 0.95, 7)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("Normalize = %v", out)
	}
	same := Normalize([]float64{2, 4}, 0)
	if same[0] != 2 || same[1] != 4 {
		t.Fatal("zero denominator must return the input values")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5, 3.5, 9.5, -3, 42}
	bins := Histogram(xs, 10, 0, 10)
	if len(bins) != 10 {
		t.Fatalf("len(bins) = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %d != %d", total, len(xs))
	}
	if bins[0] != 2 { // 0.5 and the clamped -3
		t.Fatalf("bins[0] = %d, want 2", bins[0])
	}
	if bins[9] != 2 { // 9.5 and the clamped 42
		t.Fatalf("bins[9] = %d, want 2", bins[9])
	}
	if Histogram(xs, 0, 0, 10) != nil || Histogram(xs, 5, 10, 0) != nil {
		t.Fatal("degenerate histogram configs must return nil")
	}
}

// Property: the median lies between min and max, Q1 <= median <= Q3, and the
// QCD lies in [-1, 1].
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		if s.Min > s.Q1 || s.Q1 > s.Median || s.Median > s.Q3 || s.Q3 > s.Max {
			return false
		}
		if s.QCD < -1 || s.QCD > 1 {
			return false
		}
		if s.N != len(xs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson correlation is symmetric and bounded by |r| <= 1.
func TestPropertyCorrelationBounds(t *testing.T) {
	f := func(raw []uint16, shift uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v%97) + float64(shift)*float64(i%13)
		}
		r1, err1 := PearsonCorrelation(xs, ys)
		r2, err2 := PearsonCorrelation(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-9 && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAgainstSort(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if Percentile(xs, 0) != sorted[0] || Percentile(xs, 100) != sorted[len(sorted)-1] {
		t.Fatal("percentile extremes disagree with sort")
	}
}
