package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestDigestExactMatchesBatch pins the small-N contract: below the exact
// limit every digest statistic is bit-identical to the batch helpers on the
// same samples — the property that keeps golden experiment outputs unchanged
// when a result path switches from slices to the digest.
func TestDigestExactMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 17, 30, 100, DefaultExactSamples} {
		d := NewDigest()
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*1000 + 5000
			d.Add(xs[i])
		}
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
			if got, want := d.Percentile(p), Percentile(xs, p); got != want {
				t.Fatalf("n=%d: Percentile(%v) = %v, want %v", n, p, got, want)
			}
		}
		if got, want := d.Summary(), Summarize(xs); got != want {
			t.Fatalf("n=%d: Summary() = %+v, want %+v", n, got, want)
		}
		if got, want := d.Mean(), Mean(xs); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: Mean() = %v, want %v", n, got, want)
		}
		if got, want := d.StdDev(), StdDev(xs); math.Abs(got-want)/math.Max(want, 1) > 1e-9 {
			t.Fatalf("n=%d: StdDev() = %v, want %v", n, got, want)
		}
	}
}

// TestDigestStreamingAccuracy checks the P² markers after the exact limit:
// on well-behaved distributions the quartile estimates must land within a
// few percent of the true quantiles while memory stays fixed.
func TestDigestStreamingAccuracy(t *testing.T) {
	cases := []struct {
		name string
		gen  func(*rand.Rand) float64
		q    func(p float64) float64 // true quantile function
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 },
			func(p float64) float64 { return p * 100 }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64()*10 + 50 },
			func(p float64) float64 {
				// Inverse CDF at the quartiles only.
				switch p {
				case 0.25:
					return 50 - 0.67448975*10
				case 0.5:
					return 50
				case 0.75:
					return 50 + 0.67448975*10
				}
				panic("unexpected quantile")
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			d := NewDigest()
			const n = 200_000
			for i := 0; i < n; i++ {
				d.Add(c.gen(rng))
			}
			if d.exact != nil {
				t.Fatal("digest kept the exact buffer past the limit")
			}
			q1, med, q3 := d.Quartiles()
			for _, chk := range []struct {
				got  float64
				want float64
			}{{q1, c.q(0.25)}, {med, c.q(0.5)}, {q3, c.q(0.75)}} {
				scale := c.q(0.75) - c.q(0.25)
				if math.Abs(chk.got-chk.want) > 0.05*scale {
					t.Errorf("quantile estimate %v too far from %v (scale %v)", chk.got, chk.want, scale)
				}
			}
			if d.Count() != n {
				t.Fatalf("Count = %d, want %d", d.Count(), n)
			}
		})
	}
}

// TestDigestStreamingSummary checks the streaming Summary shape: quartile
// ordering, extrema, and the documented zeroing of the whisker-dependent
// fields.
func TestDigestStreamingSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDigestLimit(5)
	for i := 0; i < 10_000; i++ {
		d.Add(rng.ExpFloat64() * 100)
	}
	s := d.Summary()
	if s.N != 10_000 {
		t.Fatalf("N = %d", s.N)
	}
	if !(s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max) {
		t.Fatalf("quartiles out of order: %+v", s)
	}
	if s.Outliers != 0 || s.MedianCILow != 0 || s.MedianCIHigh != 0 {
		t.Fatalf("whisker-dependent fields must be zero in streaming mode: %+v", s)
	}
	if s.IQR != s.Q3-s.Q1 {
		t.Fatalf("IQR = %v, want %v", s.IQR, s.Q3-s.Q1)
	}
}

// TestDigestMonotoneQuantiles: percentile queries are monotone in p in both
// modes, and extremes clamp to min/max.
func TestDigestMonotoneQuantiles(t *testing.T) {
	for _, n := range []int{20, 5000} {
		rng := rand.New(rand.NewSource(11))
		d := NewDigestLimit(100)
		for i := 0; i < n; i++ {
			d.Add(rng.Float64()*200 - 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := d.Percentile(p)
			if v < prev {
				t.Fatalf("n=%d: Percentile(%v)=%v < previous %v", n, p, v, prev)
			}
			prev = v
		}
		if d.Percentile(0) != d.Min() || d.Percentile(100) != d.Max() {
			t.Fatalf("extremes do not clamp to min/max")
		}
	}
}

// TestDigestEmpty pins the zero-sample behaviour.
func TestDigestEmpty(t *testing.T) {
	d := NewDigest()
	if d.Count() != 0 || d.Mean() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty digest must report zeros")
	}
	if s := d.Summary(); s != (Summary{}) {
		t.Fatalf("empty Summary = %+v", s)
	}
}
