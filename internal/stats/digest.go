package stats

import (
	"math"
	"sort"
)

// DefaultExactSamples is the number of samples a Digest stores exactly before
// switching to the fixed-size P² markers. Below this count every quantile the
// digest reports is bit-identical to the batch helpers (Percentile, Quartiles,
// Summarize) on the same samples — which is what keeps existing golden outputs
// unchanged at current experiment scales — and the buffer itself caps the
// digest's memory at a small constant.
const DefaultExactSamples = 256

// Digest is a fixed-size streaming summary of a sample stream: count, sum,
// extrema, variance (Welford) and the three quartiles. Small streams (up to
// the exact limit) are answered exactly from a bounded buffer; past the limit
// the digest switches to P²-style quantile markers (Jain & Chlamtac, 1985),
// so memory stays O(1) no matter how many iterations a machine-scale run
// records. The zero value is NOT ready to use; construct with NewDigest.
type Digest struct {
	limit int
	exact []float64

	count    int64
	sum      float64
	min, max float64
	mean, m2 float64 // Welford running mean / sum of squared deviations

	q1, med, q3 p2
}

// NewDigest returns an empty digest with the default exact-sample limit.
func NewDigest() *Digest { return NewDigestLimit(DefaultExactSamples) }

// NewDigestLimit returns an empty digest that answers exactly up to limit
// samples (minimum 5: the P² markers need five observations to initialize).
func NewDigestLimit(limit int) *Digest {
	if limit < 5 {
		limit = 5
	}
	d := &Digest{limit: limit}
	d.q1.init(0.25)
	d.med.init(0.50)
	d.q3.init(0.75)
	return d
}

// Add records one sample.
func (d *Digest) Add(x float64) {
	if d.count == 0 || x < d.min {
		d.min = x
	}
	if d.count == 0 || x > d.max {
		d.max = x
	}
	d.count++
	d.sum += x
	delta := x - d.mean
	d.mean += delta / float64(d.count)
	d.m2 += delta * (x - d.mean)
	// The P² markers consume every sample from the start, so the digest can
	// cross the exact limit seamlessly: no replay, no re-initialization.
	d.q1.add(x)
	d.med.add(x)
	d.q3.add(x)
	if d.count <= int64(d.limit) {
		d.exact = append(d.exact, x)
	} else if d.exact != nil {
		d.exact = nil // past the limit: drop the buffer, markers take over
	}
}

// Count returns the number of samples recorded.
func (d *Digest) Count() int64 { return d.count }

// Sum returns the sum of all samples.
func (d *Digest) Sum() float64 { return d.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (d *Digest) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two samples were recorded.
func (d *Digest) StdDev() float64 {
	if d.count < 2 {
		return 0
	}
	return math.Sqrt(d.m2 / float64(d.count-1))
}

// Min returns the smallest sample, or 0 when empty.
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest sample, or 0 when empty.
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.max
}

// exactMode reports whether the digest still holds every sample.
func (d *Digest) exactMode() bool { return d.count > 0 && int64(len(d.exact)) == d.count }

// Percentile returns the p-th percentile (0 <= p <= 100). In exact mode it
// matches Percentile on the recorded samples bit for bit; in streaming mode
// it interpolates piecewise-linearly over the P² anchors
// (min, Q1, median, Q3, max).
func (d *Digest) Percentile(p float64) float64 {
	if d.count == 0 {
		return 0
	}
	if d.exactMode() {
		sorted := append([]float64(nil), d.exact...)
		sort.Float64s(sorted)
		return percentileSorted(sorted, p)
	}
	anchors := [5]struct{ p, v float64 }{
		{0, d.min}, {25, d.q1.value()}, {50, d.med.value()}, {75, d.q3.value()}, {100, d.max},
	}
	if p <= 0 {
		return anchors[0].v
	}
	for i := 1; i < len(anchors); i++ {
		if p <= anchors[i].p {
			lo, hi := anchors[i-1], anchors[i]
			frac := (p - lo.p) / (hi.p - lo.p)
			return lo.v + frac*(hi.v-lo.v)
		}
	}
	return anchors[4].v
}

// Quartiles returns Q1, the median and Q3.
func (d *Digest) Quartiles() (q1, median, q3 float64) {
	return d.Percentile(25), d.Percentile(50), d.Percentile(75)
}

// Median returns the 50th percentile.
func (d *Digest) Median() float64 { return d.Percentile(50) }

// Summary condenses the digest into the box-plot Summary the experiment
// tables render. In exact mode it delegates to Summarize, so the output —
// including the bootstrap median CI and the outlier count — is bit-identical
// to the batch path on the same samples. In streaming mode the quartiles come
// from the P² markers and the whisker-dependent fields (Outliers, the median
// CI) are zero: they need the full sample, which a fixed-size digest by
// definition no longer has.
func (d *Digest) Summary() Summary {
	if d.count == 0 {
		return Summary{}
	}
	if d.exactMode() {
		return Summarize(d.exact)
	}
	q1, med, q3 := d.Quartiles()
	iqr := q3 - q1
	qcd := 0.0
	if q1+q3 != 0 {
		qcd = iqr / (q3 + q1)
	}
	return Summary{
		N:      int(d.count),
		Mean:   d.Mean(),
		StdDev: d.StdDev(),
		Min:    d.min,
		Q1:     q1,
		Median: med,
		Q3:     q3,
		Max:    d.max,
		IQR:    iqr,
		QCD:    qcd,
	}
}

// p2 is one P² quantile estimator: five markers tracking (min, p/2, p,
// (1+p)/2, max) whose middle height converges to the p-quantile of the
// stream. Fixed size: five heights, five integer positions, the desired
// positions and their per-sample increments.
type p2 struct {
	p    float64
	seen int        // samples consumed, also the init counter while < 5
	q    [5]float64 // marker heights
	n    [5]float64 // marker positions (1-based)
	np   [5]float64 // desired positions
	dn   [5]float64 // desired-position increments
}

func (e *p2) init(p float64) {
	e.p = p
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// add consumes one sample.
func (e *p2) add(x float64) {
	if e.seen < 5 {
		e.q[e.seen] = x
		e.seen++
		if e.seen == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			e.n = [5]float64{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	e.seen++
	// Find the marker cell the sample falls into, extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	// Adjust the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		delta := e.np[i] - e.n[i]
		if (delta >= 1 && e.n[i+1]-e.n[i] > 1) || (delta <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if delta < 0 {
				sign = -1.0
			}
			// Piecewise-parabolic (P²) height prediction; fall back to linear
			// interpolation when the parabola would break monotonicity.
			qn := e.parabolic(i, sign)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

func (e *p2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *p2) linear(i int, d float64) float64 {
	return e.q[i] + d*(e.q[i+int(d)]-e.q[i])/(e.n[i+int(d)]-e.n[i])
}

// value returns the current estimate of the p-quantile. Before five samples
// have arrived it sorts what it has and interpolates exactly.
func (e *p2) value() float64 {
	if e.seen == 0 {
		return 0
	}
	if e.seen < 5 {
		var buf [5]float64
		copy(buf[:], e.q[:e.seen])
		sorted := buf[:e.seen]
		sort.Float64s(sorted)
		return percentileSorted(sorted, e.p*100)
	}
	return e.q[2]
}
