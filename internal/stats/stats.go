// Package stats provides the descriptive statistics used throughout the
// paper's evaluation: quartiles, inter-quartile range, the quartile
// coefficient of dispersion (QCD, the paper's variability metric in Figure 5),
// Pearson correlation (used to validate the performance model in §2.4),
// bootstrap confidence intervals for the median, and box-plot summaries.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or 0
// when fewer than two samples are provided.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Quartiles returns Q1, the median and Q3 of xs.
func Quartiles(xs []float64) (q1, median, q3 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, 25), percentileSorted(sorted, 50), percentileSorted(sorted, 75)
}

// IQR returns the inter-quartile range Q3 - Q1.
func IQR(xs []float64) float64 {
	q1, _, q3 := Quartiles(xs)
	return q3 - q1
}

// QCD returns the quartile coefficient of dispersion (Q3-Q1)/(Q3+Q1), the
// paper's measure of variability (higher means more variable). It returns 0
// when Q3+Q1 is zero.
func QCD(xs []float64) float64 {
	q1, _, q3 := Quartiles(xs)
	if q1+q3 == 0 {
		return 0
	}
	return (q3 - q1) / (q3 + q1)
}

// PearsonCorrelation returns the Pearson correlation coefficient of the two
// equally sized series, or an error if the sizes differ or fewer than two
// samples are provided. Series with zero variance yield a correlation of 0.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least two samples, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Summary is a box-plot style description of a sample, matching what the
// paper's figures report (median, quartiles, whiskers, mean, outlier count and
// the 95% confidence interval of the median).
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64
	IQR      float64
	QCD      float64
	Outliers int
	// MedianCILow and MedianCIHigh bound the 95% bootstrap confidence interval
	// of the median (the "notch" in the paper's box plots).
	MedianCILow  float64
	MedianCIHigh float64
}

// Summarize computes a Summary of xs. Outliers are counted with the usual
// 1.5*IQR whisker rule. The median confidence interval uses a deterministic
// bootstrap seeded from the data length.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	q1, med, q3 := Quartiles(xs)
	iqr := q3 - q1
	loFence, hiFence := q1-1.5*iqr, q3+1.5*iqr
	outliers := 0
	for _, x := range xs {
		if x < loFence || x > hiFence {
			outliers++
		}
	}
	lo, hi := BootstrapMedianCI(xs, 200, 0.95, 12345)
	s := Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		StdDev:   StdDev(xs),
		Min:      Min(xs),
		Q1:       q1,
		Median:   med,
		Q3:       q3,
		Max:      Max(xs),
		IQR:      iqr,
		QCD:      QCD(xs),
		Outliers: outliers,

		MedianCILow:  lo,
		MedianCIHigh: hi,
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.1f [%.1f,%.1f] mean=%.1f iqr=%.1f qcd=%.3f outliers=%d",
		s.N, s.Median, s.Q1, s.Q3, s.Mean, s.IQR, s.QCD, s.Outliers)
}

// BootstrapMedianCI returns a bootstrap confidence interval of the median at
// the given confidence level, using rounds resamples and a deterministic seed.
func BootstrapMedianCI(xs []float64, rounds int, level float64, seed int64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	if rounds < 10 {
		rounds = 10
	}
	rng := rand.New(rand.NewSource(seed))
	medians := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		medians[r] = Median(resample)
	}
	alpha := (1 - level) / 2
	return Percentile(medians, alpha*100), Percentile(medians, (1-alpha)*100)
}

// Normalize returns xs divided by the scalar denom. A zero denominator returns
// a copy of xs unchanged.
func Normalize(xs []float64, denom float64) []float64 {
	out := make([]float64, len(xs))
	if denom == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / denom
	}
	return out
}

// Histogram buckets xs into n equal-width bins between min and max and returns
// the bin counts. Values outside [min, max] are clamped to the edge bins.
func Histogram(xs []float64, n int, min, max float64) []int {
	if n <= 0 || max <= min {
		return nil
	}
	bins := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		idx := int((x - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		bins[idx]++
	}
	return bins
}
