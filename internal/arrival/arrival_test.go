package arrival

import (
	"math"
	"testing"

	"dragonfly/internal/sim"
)

// TestEmpiricalMeanInterarrival checks, for every distribution, that the
// empirical mean gap of a long unmodulated stream lands within tolerance of
// the configured mean — the property that makes distributions interchangeable
// burstiness knobs at fixed offered load.
func TestEmpiricalMeanInterarrival(t *testing.T) {
	const mean = 50_000
	const draws = 40_000
	cases := []Client{
		{Class: Latency, Dist: Poisson, MeanInterarrivalCycles: mean},
		{Class: Batch, Dist: Gamma, Shape: 3, MeanInterarrivalCycles: mean},
		{Class: Batch, Dist: Gamma, Shape: 0.5, MeanInterarrivalCycles: mean},
		{Class: BestEffort, Dist: Weibull, Shape: 1.5, MeanInterarrivalCycles: mean},
		{Class: BestEffort, Dist: Weibull, Shape: 0.8, MeanInterarrivalCycles: mean},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Dist.String()+"/"+formatShape(c.Shape), func(t *testing.T) {
			s, err := NewStream(c, 0, 7)
			if err != nil {
				t.Fatal(err)
			}
			var last sim.Time
			for i := 0; i < draws; i++ {
				a := s.Next()
				if a.At <= last {
					t.Fatalf("draw %d: arrival time went backwards (%d after %d)", i, a.At, last)
				}
				last = a.At
			}
			got := float64(last) / draws
			if rel := math.Abs(got/mean - 1); rel > 0.05 {
				t.Fatalf("%s empirical mean gap %.0f vs configured %d (%.1f%% off)",
					c.Dist, got, int64(mean), rel*100)
			}
		})
	}
}

func formatShape(s float64) string {
	if s == 0 {
		return "default"
	}
	return "shape=" + trimFloat(s)
}

func trimFloat(f float64) string {
	switch {
	case f == math.Trunc(f):
		return string(rune('0' + int(f)))
	default:
		return "frac"
	}
}

// TestStreamDeterminism pins the byte-identical contract: same client, index
// and seed produce the same arrival sequence; a different seed or index
// diverges; and — the independence half — a client's stream is unchanged by
// the presence of other clients in the spec.
func TestStreamDeterminism(t *testing.T) {
	c := Client{Class: Batch, Dist: Gamma, Shape: 2, MeanInterarrivalCycles: 80_000}
	const n = 2000
	draw := func(s *Stream) []Arrival {
		out := make([]Arrival, n)
		for i := range out {
			out[i] = s.Next()
		}
		return out
	}
	s1, err := NewStream(c, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewStream(c, 0, 42)
	a, b := draw(s1), draw(s2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %+v vs %+v", i, a[i], b[i])
		}
	}

	s3, _ := NewStream(c, 0, 43)
	if diff := draw(s3); diff[0] == a[0] && diff[1] == a[1] && diff[2] == a[2] {
		t.Fatalf("different seed reproduced the same leading draws")
	}
	s4, _ := NewStream(c, 1, 42)
	if diff := draw(s4); diff[0].At == a[0].At && diff[1].At == a[1].At && diff[2].At == a[2].At {
		t.Fatalf("different client index reproduced the same leading arrival times")
	}

	// Independence: the first client of a 1-client spec and of a 4-client
	// spec draw identical sequences.
	solo, err := NewStreams(Spec{Clients: []Client{c}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := NewStreams(Spec{Clients: append([]Client{c}, DefaultClients(3, 60_000)...)}, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave draws on the other streams to prove they cannot perturb
	// client 0.
	for i := 0; i < n; i++ {
		want := solo[0].Next()
		for _, other := range crowd[1:] {
			other.Next()
		}
		if got := crowd[0].Next(); got != want {
			t.Fatalf("draw %d: client 0 perturbed by co-resident clients: %+v vs %+v", i, got, want)
		}
	}
}

// TestDiurnalPreservesMeanRate checks that sinusoidal modulation redistributes
// load within the day without changing the daily mean rate: over many whole
// periods, the arrival count matches the unmodulated expectation within a few
// percent.
func TestDiurnalPreservesMeanRate(t *testing.T) {
	const mean = 10_000
	const period = 2_000_000 // 200 gaps per day: gaps short against the period
	c := Client{
		Class: Latency, Dist: Poisson, MeanInterarrivalCycles: mean,
		Diurnal: Diurnal{Amplitude: 0.7, PeriodCycles: period, PhaseFrac: 0.25},
	}
	s, err := NewStream(c, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	const days = 100
	horizon := sim.Time(days * period)
	count := 0
	for {
		a := s.Next()
		if a.At > horizon {
			break
		}
		count++
	}
	want := float64(horizon) / mean
	if rel := math.Abs(float64(count)/want - 1); rel > 0.05 {
		t.Fatalf("diurnal stream produced %d arrivals over %d days, want ~%.0f (%.1f%% off)",
			count, days, want, rel*100)
	}
}

// TestDiurnalRateShape pins the modulation envelope itself: with a positive
// phase-0 sine, the first half-period must carry more arrivals than the
// second.
func TestDiurnalRateShape(t *testing.T) {
	const mean = 5_000
	const period = 4_000_000
	c := Client{
		Class: Latency, Dist: Poisson, MeanInterarrivalCycles: mean,
		Diurnal: Diurnal{Amplitude: 0.8, PeriodCycles: period},
	}
	s, err := NewStream(c, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var firstHalf, secondHalf int
	const days = 40
	for {
		a := s.Next()
		if a.At > days*period {
			break
		}
		if a.At%period < period/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf <= secondHalf {
		t.Fatalf("peak half-period carried %d arrivals vs %d in the trough half", firstHalf, secondHalf)
	}
}

// TestStreamDrawBounds checks the size/duration draws respect their ranges.
func TestStreamDrawBounds(t *testing.T) {
	c := Client{
		Class: Batch, Dist: Weibull, Shape: 0.7, MeanInterarrivalCycles: 20_000,
		MinNodes: 3, MaxNodes: 24, MinDurationCycles: 1000, MaxDurationCycles: 9000,
	}
	s, err := NewStream(c, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	seenMin, seenMax := false, false
	for i := 0; i < 20_000; i++ {
		a := s.Next()
		if a.Nodes < 3 || a.Nodes > 24 {
			t.Fatalf("draw %d: nodes %d outside [3, 24]", i, a.Nodes)
		}
		if a.DurationCycles < 1000 || a.DurationCycles > 9000 {
			t.Fatalf("draw %d: duration %d outside [1000, 9000]", i, a.DurationCycles)
		}
		if a.Class != Batch || a.Client != 2 {
			t.Fatalf("draw %d: wrong identity %+v", i, a)
		}
		seenMin = seenMin || a.Nodes == 3
		seenMax = seenMax || a.Nodes == 24
	}
	if !seenMin || !seenMax {
		t.Fatalf("log-uniform size draw never reached its bounds (min seen %v, max seen %v)", seenMin, seenMax)
	}
}

// TestParseSpec pins the grammar: good inputs parse to the expected clients,
// bad inputs error.
func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(" Latency:Poisson:150000:nodes=2-8 ; batch:gamma:600000:shape=2.5:dur=1000-5000 ; besteffort:weibull:300000:diurnal=0.5:period=9000000:phase=0.25:name=Spot ")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Clients) != 3 {
		t.Fatalf("parsed %d clients, want 3", len(spec.Clients))
	}
	c0, c1, c2 := spec.Clients[0], spec.Clients[1], spec.Clients[2]
	if c0.Class != Latency || c0.Dist != Poisson || c0.MeanInterarrivalCycles != 150_000 ||
		c0.MinNodes != 2 || c0.MaxNodes != 8 {
		t.Fatalf("client 0 parsed wrong: %+v", c0)
	}
	if c1.Class != Batch || c1.Dist != Gamma || c1.Shape != 2.5 ||
		c1.MinDurationCycles != 1000 || c1.MaxDurationCycles != 5000 {
		t.Fatalf("client 1 parsed wrong: %+v", c1)
	}
	if c2.Class != BestEffort || c2.Dist != Weibull ||
		c2.Diurnal.Amplitude != 0.5 || c2.Diurnal.PeriodCycles != 9_000_000 ||
		c2.Diurnal.PhaseFrac != 0.25 || c2.Name != "spot" {
		t.Fatalf("client 2 parsed wrong: %+v", c2)
	}
	// Defaults fill in.
	if c0.Name == "" || c0.MinDurationCycles == 0 || c1.MinNodes == 0 {
		t.Fatalf("defaults not applied: %+v / %+v", c0, c1)
	}

	bad := []string{
		"", ";", "latency", "latency:poisson", "latency:poisson:0",
		"latency:poisson:-5", "gold:poisson:100", "latency:zipf:100",
		"latency:poisson:100:bogus=1", "latency:poisson:100:nodes=8-2",
		"latency:poisson:100:shape=0", "latency:gamma:100:shape=-2",
		"latency:poisson:100:diurnal=1.5", "latency:poisson:100:nodes=",
		"latency:poisson:100:dur=0-5", "latency:poisson:100;;",
		"latency:poisson:99999999999999999999",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Fatalf("ParseSpec(%q) unexpectedly succeeded", in)
		}
	}
}

// TestClassTargets pins the SLO semantics documented in EXPERIMENTS.md.
func TestClassTargets(t *testing.T) {
	if Latency.TargetSlowdown() != 4 || Batch.TargetSlowdown() != 16 {
		t.Fatalf("target slowdowns drifted: latency %v, batch %v",
			Latency.TargetSlowdown(), Batch.TargetSlowdown())
	}
	if !math.IsInf(BestEffort.TargetSlowdown(), 1) {
		t.Fatalf("besteffort target should be unbounded, got %v", BestEffort.TargetSlowdown())
	}
	for _, c := range []Class{Latency, Batch, BestEffort} {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Fatalf("class %v does not round-trip: %v / %v", c, back, err)
		}
	}
	for _, d := range []Distribution{Poisson, Gamma, Weibull} {
		back, err := ParseDistribution(d.String())
		if err != nil || back != d {
			t.Fatalf("distribution %v does not round-trip: %v / %v", d, back, err)
		}
	}
}

// TestJainIndex pins the fairness-index formula.
func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{3, 3, 3, 3}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: J = %v, want 1", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("one-tenant monopoly over 4: J = %v, want 0.25", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty input: J = %v, want 0", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 0 {
		t.Fatalf("all-zero input: J = %v, want 0", j)
	}
}
