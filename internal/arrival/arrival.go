// Package arrival models open job-arrival processes for always-on cluster
// simulation. Where internal/sched.GenerateMix produces a fixed, pre-generated
// job list (a closed workload that drains and stops), this package describes
// *clients*: independent tenants that keep submitting jobs forever, each with
// its own interarrival distribution (Poisson, Gamma or Weibull renewal
// process), its own job-size and duration ranges, an optional diurnal
// load-shape modulation, and an SLO class that states how much queueing
// slowdown the tenant tolerates.
//
// Determinism is structural: every client owns a private RNG stream whose seed
// is derived only from (base seed, client index, client name). Adding,
// removing or reordering *other* clients therefore never perturbs a client's
// arrival sequence, and the same spec and seed reproduce the same event
// stream byte for byte — the property the openstream golden tests pin.
package arrival

import (
	"fmt"
	"math"
	"math/rand"

	"dragonfly/internal/sim"
)

// Distribution selects the interarrival-time law of a client's renewal
// process. All three are parameterized by their mean, so swapping the
// distribution changes burstiness (the coefficient of variation) without
// changing the offered load.
type Distribution uint8

const (
	// Poisson draws exponential interarrival gaps (CV = 1), the memoryless
	// baseline of queueing models.
	Poisson Distribution = iota
	// Gamma draws gamma-distributed gaps with a configurable shape k: k > 1
	// is smoother than Poisson (CV = 1/sqrt(k)), k < 1 burstier.
	Gamma
	// Weibull draws Weibull-distributed gaps with shape k; k < 1 produces the
	// heavy-tailed, bursty arrival trains measured on production clusters.
	Weibull
)

// String returns the distribution name.
func (d Distribution) String() string {
	switch d {
	case Poisson:
		return "poisson"
	case Gamma:
		return "gamma"
	case Weibull:
		return "weibull"
	default:
		return fmt.Sprintf("Distribution(%d)", uint8(d))
	}
}

// ParseDistribution converts a distribution name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "poisson", "exp", "exponential":
		return Poisson, nil
	case "gamma":
		return Gamma, nil
	case "weibull":
		return Weibull, nil
	default:
		return Poisson, fmt.Errorf("arrival: unknown distribution %q (want poisson, gamma or weibull)", s)
	}
}

// Class is a tenant's SLO class: a statement of how much queueing slowdown
// ((wait + run) / run) the tenant's jobs are meant to tolerate. The scheduler
// does not enforce the bound — it reports per-class slowdown distributions so
// experiments can check which policies meet which targets.
type Class uint8

const (
	// Latency is the interactive class: jobs should start near-immediately
	// (target slowdown 4x).
	Latency Class = iota
	// Batch is the throughput class: queueing is acceptable within bounds
	// (target slowdown 16x).
	Batch
	// BestEffort has no slowdown target; it absorbs whatever capacity is left.
	BestEffort
)

// NumClasses is the number of SLO classes, for fixed-size per-class arrays.
const NumClasses = 3

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Latency:
		return "latency"
	case Batch:
		return "batch"
	case BestEffort:
		return "besteffort"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "latency", "lat", "interactive":
		return Latency, nil
	case "batch":
		return Batch, nil
	case "besteffort", "best-effort", "be":
		return BestEffort, nil
	default:
		return Latency, fmt.Errorf("arrival: unknown SLO class %q (want latency, batch or besteffort)", s)
	}
}

// TargetSlowdown returns the class's target slowdown bound; BestEffort returns
// +Inf (no bound).
func (c Class) TargetSlowdown() float64 {
	switch c {
	case Latency:
		return 4
	case Batch:
		return 16
	default:
		return math.Inf(1)
	}
}

// Diurnal modulates a client's arrival rate over simulated time with a
// sinusoidal day shape: rate multiplier m(t) = 1 + A·sin(2π(t/P + phase)).
// The multiplier averages 1 over a full period, so the *daily mean* rate is
// the client's configured 1/MeanInterarrivalCycles; the amplitude only moves
// load between peak and trough.
type Diurnal struct {
	// Amplitude is the modulation depth A in [0, 1); 0 disables modulation.
	Amplitude float64
	// PeriodCycles is the day length P in cycles (required when Amplitude > 0).
	PeriodCycles sim.Time
	// PhaseFrac shifts the shape by a fraction of the period in [0, 1).
	PhaseFrac float64
}

// rate returns the instantaneous rate multiplier at time t.
func (d Diurnal) rate(t sim.Time) float64 {
	if d.Amplitude == 0 {
		return 1
	}
	x := float64(t)/float64(d.PeriodCycles) + d.PhaseFrac
	return 1 + d.Amplitude*math.Sin(2*math.Pi*x)
}

// Client describes one tenant's open arrival process.
type Client struct {
	// Name identifies the tenant in reports; defaulted to "<class>-<index>".
	Name string
	// Class is the tenant's SLO class.
	Class Class
	// Dist is the interarrival distribution.
	Dist Distribution
	// Shape is the gamma/weibull shape parameter k (ignored by Poisson);
	// defaulted to 2 for Gamma and 0.8 for Weibull when zero.
	Shape float64
	// MeanInterarrivalCycles is the mean gap between this client's job
	// submissions, before diurnal modulation.
	MeanInterarrivalCycles sim.Time
	// MinNodes and MaxNodes bound the log-uniform job-size draw
	// (defaults 2 and 16).
	MinNodes, MaxNodes int
	// MinDurationCycles and MaxDurationCycles bound the log-uniform job
	// duration draw (defaults 200k and 2M cycles).
	MinDurationCycles, MaxDurationCycles sim.Time
	// Diurnal is the optional load-shape modulation.
	Diurnal Diurnal
}

// withDefaults fills the zero fields of a client declaration.
func (c Client) withDefaults(index int) Client {
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s-%d", c.Class, index)
	}
	if c.Shape == 0 {
		switch c.Dist {
		case Gamma:
			c.Shape = 2
		case Weibull:
			c.Shape = 0.8
		}
	}
	if c.MinNodes == 0 {
		c.MinNodes = 2
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 16
	}
	if c.MinDurationCycles == 0 {
		c.MinDurationCycles = 200_000
	}
	if c.MaxDurationCycles == 0 {
		c.MaxDurationCycles = 2_000_000
	}
	return c
}

// Validate reports whether the (defaulted) client is usable.
func (c Client) Validate() error {
	switch {
	case c.Class > BestEffort:
		return fmt.Errorf("arrival: client %q has unknown class %d", c.Name, c.Class)
	case c.Dist > Weibull:
		return fmt.Errorf("arrival: client %q has unknown distribution %d", c.Name, c.Dist)
	case c.MeanInterarrivalCycles <= 0:
		return fmt.Errorf("arrival: client %q needs a positive mean interarrival, got %d", c.Name, c.MeanInterarrivalCycles)
	case c.Dist != Poisson && (c.Shape <= 0 || math.IsInf(c.Shape, 0) || math.IsNaN(c.Shape)):
		return fmt.Errorf("arrival: client %q needs a positive finite shape, got %v", c.Name, c.Shape)
	case c.MinNodes < 1 || c.MaxNodes < c.MinNodes:
		return fmt.Errorf("arrival: client %q has bad node range [%d, %d]", c.Name, c.MinNodes, c.MaxNodes)
	case c.MinDurationCycles < 1 || c.MaxDurationCycles < c.MinDurationCycles:
		return fmt.Errorf("arrival: client %q has bad duration range [%d, %d]", c.Name, c.MinDurationCycles, c.MaxDurationCycles)
	case c.Diurnal.Amplitude < 0 || c.Diurnal.Amplitude >= 1:
		return fmt.Errorf("arrival: client %q needs diurnal amplitude in [0, 1), got %v", c.Name, c.Diurnal.Amplitude)
	case c.Diurnal.Amplitude > 0 && c.Diurnal.PeriodCycles <= 0:
		return fmt.Errorf("arrival: client %q has diurnal modulation but no period", c.Name)
	case c.Diurnal.PhaseFrac < 0 || c.Diurnal.PhaseFrac >= 1:
		return fmt.Errorf("arrival: client %q needs diurnal phase in [0, 1), got %v", c.Name, c.Diurnal.PhaseFrac)
	}
	return nil
}

// Spec is a complete multi-client arrival declaration.
type Spec struct {
	Clients []Client
}

// Normalize returns a copy of the spec with every client's defaults filled in.
func (s Spec) Normalize() Spec {
	out := Spec{Clients: make([]Client, len(s.Clients))}
	for i, c := range s.Clients {
		out.Clients[i] = c.withDefaults(i)
	}
	return out
}

// Validate checks the normalized spec.
func (s Spec) Validate() error {
	if len(s.Clients) == 0 {
		return fmt.Errorf("arrival: spec has no clients")
	}
	for i, c := range s.Clients {
		if err := c.withDefaults(i).Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultClients returns n canonical clients cycling through the SLO classes:
// latency:poisson, batch:gamma and besteffort:weibull-with-diurnal presets,
// each with the given per-client mean interarrival. It is the spec behind
// schedsim's -clients flag and the openstream experiment's workload.
func DefaultClients(n int, meanGap sim.Time) []Client {
	presets := []Client{
		{Class: Latency, Dist: Poisson, MinNodes: 2, MaxNodes: 8,
			MinDurationCycles: 100_000, MaxDurationCycles: 800_000},
		{Class: Batch, Dist: Gamma, Shape: 2, MinNodes: 4, MaxNodes: 32,
			MinDurationCycles: 400_000, MaxDurationCycles: 4_000_000},
		{Class: BestEffort, Dist: Weibull, Shape: 0.8, MinNodes: 2, MaxNodes: 16,
			MinDurationCycles: 200_000, MaxDurationCycles: 2_000_000,
			Diurnal: Diurnal{Amplitude: 0.5, PeriodCycles: 40 * meanGap}},
	}
	out := make([]Client, 0, n)
	for i := 0; i < n; i++ {
		c := presets[i%len(presets)]
		c.MeanInterarrivalCycles = meanGap
		out = append(out, c.withDefaults(i))
	}
	return out
}

// Arrival is one drawn job submission.
type Arrival struct {
	// At is the absolute submission time.
	At sim.Time
	// Client is the index of the submitting client in the spec.
	Client int
	// Class is the submitting client's SLO class.
	Class Class
	// Nodes is the drawn job size.
	Nodes int
	// DurationCycles is the drawn job run time.
	DurationCycles sim.Time
}

// Stream generates one client's arrival sequence. It owns a private RNG, so
// streams are independent: draws on one stream never move another.
type Stream struct {
	client Client
	index  int
	rng    *rand.Rand
	last   sim.Time // time of the previous arrival
	scale  float64  // distribution scale chosen so the mean gap matches the spec
}

// seedFor derives a client stream seed from the base seed, the client index
// and the client name (FNV-1a over the name, splitmix64-style finalization).
// The derivation depends only on this client's identity, never on the rest of
// the spec.
func seedFor(base int64, index int, name string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := h ^ uint64(base)*0x9e3779b97f4a7c15 ^ uint64(index+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// NewStream builds the arrival stream of one client. index is the client's
// position in the spec (part of the seed derivation and of emitted Arrivals).
func NewStream(c Client, index int, baseSeed int64) (*Stream, error) {
	c = c.withDefaults(index)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	mean := float64(c.MeanInterarrivalCycles)
	scale := mean
	switch c.Dist {
	case Gamma:
		// A gamma(k, θ) has mean kθ.
		scale = mean / c.Shape
	case Weibull:
		// A weibull(k, λ) has mean λ·Γ(1 + 1/k).
		scale = mean / math.Gamma(1+1/c.Shape)
	}
	return &Stream{
		client: c,
		index:  index,
		rng:    rand.New(rand.NewSource(seedFor(baseSeed, index, c.Name))),
		scale:  scale,
	}, nil
}

// NewStreams builds one stream per client of the spec.
func NewStreams(spec Spec, baseSeed int64) ([]*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	out := make([]*Stream, len(spec.Clients))
	for i, c := range spec.Clients {
		s, err := NewStream(c, i, baseSeed)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Client returns the (defaulted) client declaration the stream draws for.
func (s *Stream) Client() Client { return s.client }

// Next draws the next arrival: an interarrival gap from the client's
// distribution (compressed or stretched by the diurnal rate at the previous
// arrival), then the job's size and duration. Exactly three base draws happen
// per call in a fixed order, so the sequence is reproducible by construction.
func (s *Stream) Next() Arrival {
	gap := s.sampleGap()
	if m := s.client.Diurnal.rate(s.last); m != 1 {
		// Scaling the gap by the instantaneous rate approximates an
		// inhomogeneous process; the approximation is good while gaps are
		// short against the period, and preserves the daily mean rate because
		// the multiplier averages 1 (asserted by the property tests).
		gap /= m
	}
	step := sim.Time(math.Round(gap))
	if step < 1 {
		step = 1
	}
	s.last += step
	return Arrival{
		At:             s.last,
		Client:         s.index,
		Class:          s.client.Class,
		Nodes:          logUniformInt(s.rng, s.client.MinNodes, s.client.MaxNodes),
		DurationCycles: sim.Time(logUniformInt64(s.rng, int64(s.client.MinDurationCycles), int64(s.client.MaxDurationCycles))),
	}
}

// sampleGap draws one raw interarrival gap (cycles, unmodulated).
func (s *Stream) sampleGap() float64 {
	switch s.client.Dist {
	case Gamma:
		return sampleGamma(s.rng, s.client.Shape) * s.scale
	case Weibull:
		u := 1 - s.rng.Float64() // in (0, 1]
		return s.scale * math.Pow(-math.Log(u), 1/s.client.Shape)
	default:
		return s.rng.ExpFloat64() * s.scale
	}
}

// sampleGamma draws a gamma(shape, 1) variate with the Marsaglia–Tsang
// squeeze method; shapes below 1 use the standard boost
// gamma(k) = gamma(k+1) · U^(1/k).
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := 1 - rng.Float64()
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// logUniformInt draws log-uniformly from [lo, hi], matching the job-size
// skew of production traces (many small jobs, few large ones).
func logUniformInt(rng *rand.Rand, lo, hi int) int {
	return int(logUniformInt64(rng, int64(lo), int64(hi)))
}

func logUniformInt64(rng *rand.Rand, lo, hi int64) int64 {
	if lo >= hi {
		return lo
	}
	v := math.Exp(rng.Float64()*(math.Log(float64(hi))-math.Log(float64(lo))) + math.Log(float64(lo)))
	n := int64(math.Round(v))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// JainIndex computes Jain's fairness index J = (Σx)² / (n·Σx²) over the given
// per-tenant metric values (Jain, Chiu & Hawe 1984): 1 when every tenant sees
// the same value, 1/n when one tenant absorbs everything. Zero and negative
// values are included as-is; an empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
