package arrival

import (
	"fmt"
	"strconv"
	"strings"

	"dragonfly/internal/sim"
)

// ParseSpec parses the command-line arrival grammar, one client per
// semicolon-separated term:
//
//	spec   := client (';' client)*
//	client := class ':' dist ':' mean-cycles (':' key '=' value)*
//	class  := latency | batch | besteffort
//	dist   := poisson | gamma | weibull
//	keys   := shape=F | nodes=LO-HI | dur=LO-HI | diurnal=AMPL |
//	          period=CYCLES | phase=F | name=S
//
// For example:
//
//	latency:poisson:150000:nodes=2-8;batch:gamma:600000:shape=2:nodes=8-64
//	besteffort:weibull:300000:diurnal=0.5:period=10000000
//
// Input is case-insensitive and whitespace around every token is ignored,
// like ParseGeometry/ParseRouting. Unset keys take the package defaults
// (see Client).
func ParseSpec(s string) (Spec, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return Spec{}, fmt.Errorf("arrival: empty arrival spec")
	}
	var spec Spec
	for i, term := range strings.Split(s, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			return Spec{}, fmt.Errorf("arrival: empty client term %d in %q", i, s)
		}
		c, err := parseClient(term)
		if err != nil {
			return Spec{}, err
		}
		spec.Clients = append(spec.Clients, c)
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// parseClient parses one colon-separated client term.
func parseClient(term string) (Client, error) {
	fields := strings.Split(term, ":")
	if len(fields) < 3 {
		return Client{}, fmt.Errorf("arrival: client %q needs class:dist:mean", term)
	}
	var c Client
	var err error
	if c.Class, err = ParseClass(strings.TrimSpace(fields[0])); err != nil {
		return Client{}, err
	}
	if c.Dist, err = ParseDistribution(strings.TrimSpace(fields[1])); err != nil {
		return Client{}, err
	}
	mean, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
	if err != nil || mean <= 0 {
		return Client{}, fmt.Errorf("arrival: client %q has bad mean interarrival %q", term, fields[2])
	}
	c.MeanInterarrivalCycles = mean
	for _, kv := range fields[3:] {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Client{}, fmt.Errorf("arrival: client %q has bad parameter %q (want key=value)", term, kv)
		}
		switch key {
		case "shape":
			if c.Shape, err = parsePositiveFloat(val); err != nil {
				return Client{}, fmt.Errorf("arrival: client %q: shape: %v", term, err)
			}
		case "nodes":
			if c.MinNodes, c.MaxNodes, err = parseRange(val); err != nil {
				return Client{}, fmt.Errorf("arrival: client %q: nodes: %v", term, err)
			}
		case "dur":
			var lo, hi int
			if lo, hi, err = parseRange(val); err != nil {
				return Client{}, fmt.Errorf("arrival: client %q: dur: %v", term, err)
			}
			c.MinDurationCycles, c.MaxDurationCycles = sim.Time(lo), sim.Time(hi)
		case "diurnal":
			if c.Diurnal.Amplitude, err = strconv.ParseFloat(val, 64); err != nil {
				return Client{}, fmt.Errorf("arrival: client %q: diurnal: bad amplitude %q", term, val)
			}
		case "period":
			p, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil || p <= 0 {
				return Client{}, fmt.Errorf("arrival: client %q: period: bad cycle count %q", term, val)
			}
			c.Diurnal.PeriodCycles = p
		case "phase":
			if c.Diurnal.PhaseFrac, err = strconv.ParseFloat(val, 64); err != nil {
				return Client{}, fmt.Errorf("arrival: client %q: phase: bad fraction %q", term, val)
			}
		case "name":
			c.Name = val
		default:
			return Client{}, fmt.Errorf("arrival: client %q has unknown parameter %q", term, key)
		}
	}
	// A diurnal amplitude without a period gets a default day of 100x the
	// mean gap, so "diurnal=0.5" alone is usable.
	if c.Diurnal.Amplitude > 0 && c.Diurnal.PeriodCycles == 0 {
		c.Diurnal.PeriodCycles = 100 * c.MeanInterarrivalCycles
	}
	return c, nil
}

func parsePositiveFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad positive number %q", s)
	}
	return v, nil
}

// parseRange parses "LO-HI" (or a single "N", meaning N-N).
func parseRange(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		b = a
	}
	lo, err = strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	hi, err = strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("bad range %q (want 1 <= lo <= hi)", s)
	}
	return lo, hi, nil
}
