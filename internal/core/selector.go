// Package core implements the paper's primary contribution: the
// application-aware routing library (§4.2, Algorithm 1). Before every message
// is sent, the Selector decides which Aries routing mode to use — Adaptive
// (the default, no bias) or Adaptive with High Bias — by comparing the
// transmission-time estimates of the performance model (perfmodel, Eq. 2/4)
// under the network conditions (latency L, stall ratio s) observed through the
// NIC counters for the previous messages.
//
// The real implementation interposes on uGNI calls via LD_PRELOAD; here the
// message layer (internal/mpi) calls Select before each transfer and Observe
// after it, which is the same call structure.
package core

import (
	"fmt"

	"dragonfly/internal/counters"
	"dragonfly/internal/perfmodel"
	"dragonfly/internal/routing"
)

// TrafficKind tells the selector what kind of operation a message belongs to.
// Alltoall traffic replaces the Adaptive default with Increasingly Minimal
// Bias, mirroring Cray's MPICH_GNI_A2A_ROUTING_MODE default.
type TrafficKind uint8

const (
	// PointToPoint is ordinary point-to-point or generic collective traffic.
	PointToPoint TrafficKind = iota
	// Alltoall is traffic belonging to an all-to-all exchange.
	Alltoall
)

// String returns the kind name.
func (k TrafficKind) String() string {
	if k == Alltoall {
		return "alltoall"
	}
	return "point-to-point"
}

// Config holds the tunables of Algorithm 1.
type Config struct {
	// ThresholdBytes is the cumulative message-size threshold below which the
	// algorithm is not evaluated (and Adaptive with High Bias is used), to
	// amortize the cost of reading network counters. The paper sets 4 KiB.
	ThresholdBytes int64
	// LambdaAdaptiveToBias (λ_ad) scales the latency observed under Adaptive
	// to estimate the latency under Adaptive with High Bias when no recent
	// observation of the latter exists.
	LambdaAdaptiveToBias float64
	// SigmaAdaptiveToBias (σ_ad) scales the stall ratio observed under
	// Adaptive to estimate the stall ratio under Adaptive with High Bias.
	SigmaAdaptiveToBias float64
	// LambdaBiasToAdaptive and SigmaBiasToAdaptive are the scaling factors for
	// the dual direction (estimating Adaptive from High Bias observations).
	LambdaBiasToAdaptive float64
	SigmaBiasToAdaptive  float64
	// StalenessDecisions is the number of selector invocations after which a
	// stored observation of the non-current routing mode is considered stale
	// and re-derived through the scaling factors, so that the algorithm does
	// not rely on data from a different application phase.
	StalenessDecisions int
	// CounterReadOverheadCycles models the host-side cost of reading the NIC
	// counters through PAPI; it is charged every time the algorithm is
	// evaluated (the paper identifies this overhead as the cause of the
	// 1 KiB-alltoall performance drop).
	CounterReadOverheadCycles int64
	// AlltoallUsesIMB replaces the Adaptive default with Increasingly Minimal
	// Bias for all-to-all traffic, as Cray MPICH does.
	AlltoallUsesIMB bool
	// SwitchConfirmations is the number of consecutive evaluations that must
	// prefer the other routing mode before the selector actually switches.
	// The paper's algorithm corresponds to 1 (switch immediately); §5.1
	// observes that this can oscillate on some workloads (broadcast of large
	// messages, sweep3d), and values > 1 implement the hysteresis extension
	// this reproduction adds to damp those oscillations.
	SwitchConfirmations int
}

// DefaultConfig returns the configuration used in the paper's evaluation.
// The scaling factors encode the paper's observation that Adaptive with High
// Bias typically shows lower packet latency (fewer non-minimal detours) but a
// higher per-flit stall ratio (less congestion spreading) than Adaptive.
func DefaultConfig() Config {
	return Config{
		ThresholdBytes:            4 << 10,
		LambdaAdaptiveToBias:      0.8,
		SigmaAdaptiveToBias:       1.6,
		LambdaBiasToAdaptive:      1.25,
		SigmaBiasToAdaptive:       0.625,
		StalenessDecisions:        64,
		CounterReadOverheadCycles: 300,
		AlltoallUsesIMB:           true,
		SwitchConfirmations:       1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.ThresholdBytes < 0:
		return fmt.Errorf("core: ThresholdBytes must be >= 0")
	case c.LambdaAdaptiveToBias <= 0 || c.SigmaAdaptiveToBias <= 0 ||
		c.LambdaBiasToAdaptive <= 0 || c.SigmaBiasToAdaptive <= 0:
		return fmt.Errorf("core: scaling factors must be > 0")
	case c.StalenessDecisions <= 0:
		return fmt.Errorf("core: StalenessDecisions must be > 0")
	case c.CounterReadOverheadCycles < 0:
		return fmt.Errorf("core: CounterReadOverheadCycles must be >= 0")
	case c.SwitchConfirmations < 0:
		return fmt.Errorf("core: SwitchConfirmations must be >= 0")
	}
	return nil
}

// Decision is the outcome of one Select call.
type Decision struct {
	// Mode is the routing mode to use for the message.
	Mode routing.Mode
	// Evaluated reports whether Algorithm 1 ran (and counters must be read
	// after the message completes).
	Evaluated bool
	// OverheadCycles is the host-side cost to charge for this decision.
	OverheadCycles int64
}

// observation is the last known network state under one routing mode.
type observation struct {
	params   perfmodel.Params
	decision uint64 // selector invocation index at which it was recorded
	valid    bool
}

// Stats summarizes what the selector has done so far.
type Stats struct {
	// Messages and Bytes total everything routed through the selector.
	Messages uint64
	Bytes    uint64
	// DefaultMessages/DefaultBytes were sent with the default adaptive mode
	// (Adaptive, or Increasingly Minimal Bias for alltoall); BiasMessages/
	// BiasBytes with Adaptive with High Bias.
	DefaultMessages uint64
	DefaultBytes    uint64
	BiasMessages    uint64
	BiasBytes       uint64
	// Evaluations counts how many times Algorithm 1 ran; CounterReads counts
	// how many counter snapshots were taken (one per evaluated message).
	Evaluations  uint64
	CounterReads uint64
	// Switches counts routing-mode changes.
	Switches uint64
}

// Add accumulates another selector's statistics into s, for aggregating the
// per-rank selectors of one job.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Bytes += other.Bytes
	s.DefaultMessages += other.DefaultMessages
	s.DefaultBytes += other.DefaultBytes
	s.BiasMessages += other.BiasMessages
	s.BiasBytes += other.BiasBytes
	s.Evaluations += other.Evaluations
	s.CounterReads += other.CounterReads
	s.Switches += other.Switches
}

// DefaultTrafficFraction returns the fraction of bytes sent using the default
// adaptive routing (the percentage reported under each bar of the paper's
// Figures 8-10).
func (s Stats) DefaultTrafficFraction() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.DefaultBytes) / float64(s.Bytes)
}

// Selector implements Algorithm 1. It is not safe for concurrent use: in the
// paper the library state is per process (per NIC), and here it is owned by a
// single simulated rank.
type Selector struct {
	cfg Config

	current   routing.Mode
	adaptive  observation // state observed under Adaptive (or IMB for alltoall)
	bias      observation // state observed under Adaptive with High Bias
	decisions uint64

	// pendingMode/pendingCount implement the optional switch hysteresis: a
	// mode change is only committed after SwitchConfirmations consecutive
	// evaluations prefer the other mode.
	pendingMode  routing.Mode
	pendingCount int

	cumulativeBytes int64
	stats           Stats
}

// New returns a Selector with the given configuration. The application starts
// in Adaptive mode, as in the paper.
func New(cfg Config) (*Selector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Selector{cfg: cfg, current: routing.Adaptive}, nil
}

// MustNew is like New but panics on an invalid configuration.
func MustNew(cfg Config) *Selector {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the selector configuration.
func (s *Selector) Config() Config { return s.cfg }

// Current returns the routing mode the selector is currently in.
func (s *Selector) Current() routing.Mode { return s.current }

// Stats returns a copy of the selector statistics.
func (s *Selector) Stats() Stats { return s.stats }

// defaultMode returns the "default" adaptive mode for the traffic kind.
func (s *Selector) defaultMode(kind TrafficKind) routing.Mode {
	if kind == Alltoall && s.cfg.AlltoallUsesIMB {
		return routing.IncreasinglyMinimalBias
	}
	return routing.Adaptive
}

// isStale reports whether an observation is too old to be trusted.
func (s *Selector) isStale(o observation) bool {
	if !o.valid {
		return true
	}
	return s.decisions-o.decision > uint64(s.cfg.StalenessDecisions)
}

// Select decides the routing mode for the next message of msgSize bytes
// belonging to the given traffic kind. It implements the selectRouting
// function of Algorithm 1.
func (s *Selector) Select(msgSize int64, kind TrafficKind) Decision {
	s.decisions++
	s.stats.Messages++
	s.stats.Bytes += uint64(msgSize)
	def := s.defaultMode(kind)

	// Below the cumulative threshold the algorithm is not evaluated and the
	// message goes out with Adaptive with High Bias (small messages are
	// latency-bound and High Bias usually has the lower latency).
	s.cumulativeBytes += msgSize
	if s.cumulativeBytes < s.cfg.ThresholdBytes {
		s.account(routing.AdaptiveHighBias, def, msgSize)
		return Decision{Mode: routing.AdaptiveHighBias}
	}
	s.cumulativeBytes = 0
	s.stats.Evaluations++

	g := perfmodel.GeometryForSize(msgSize)
	prev := s.current
	var next routing.Mode
	if s.current != routing.AdaptiveHighBias {
		// Currently on the default adaptive mode: its observation is fresh;
		// the High-Bias observation may need to be re-derived via λ_ad, σ_ad.
		ad := s.adaptive
		if s.isStale(s.bias) && ad.valid {
			s.bias = observation{
				params: perfmodel.Params{
					LatencyCycles: ad.params.LatencyCycles * s.cfg.LambdaAdaptiveToBias,
					StallRatio:    ad.params.StallRatio * s.cfg.SigmaAdaptiveToBias,
				},
				decision: s.decisions,
				valid:    true,
			}
		}
		if ad.valid && s.bias.valid && perfmodel.PreferB(g, ad.params, s.bias.params) {
			next = routing.AdaptiveHighBias
		} else {
			next = def
		}
	} else {
		// Currently on High Bias: dual branch of Algorithm 1.
		bs := s.bias
		if s.isStale(s.adaptive) && bs.valid {
			s.adaptive = observation{
				params: perfmodel.Params{
					LatencyCycles: bs.params.LatencyCycles * s.cfg.LambdaBiasToAdaptive,
					StallRatio:    bs.params.StallRatio * s.cfg.SigmaBiasToAdaptive,
				},
				decision: s.decisions,
				valid:    true,
			}
		}
		if bs.valid && s.adaptive.valid && perfmodel.PreferB(g, bs.params, s.adaptive.params) {
			next = def
		} else {
			next = routing.AdaptiveHighBias
		}
	}
	next = s.applyHysteresis(prev, next)
	s.current = next
	if next != prev {
		s.stats.Switches++
	}
	s.account(next, def, msgSize)
	return Decision{Mode: next, Evaluated: true, OverheadCycles: s.cfg.CounterReadOverheadCycles}
}

// applyHysteresis damps mode oscillations: the raw preference must persist for
// SwitchConfirmations consecutive evaluations before it replaces the current
// mode. With the default of 1 this is a no-op and the behaviour matches
// Algorithm 1 exactly.
func (s *Selector) applyHysteresis(current, preferred routing.Mode) routing.Mode {
	if s.cfg.SwitchConfirmations <= 1 {
		return preferred
	}
	if preferred == current {
		s.pendingCount = 0
		return current
	}
	if s.pendingMode == preferred {
		s.pendingCount++
	} else {
		s.pendingMode = preferred
		s.pendingCount = 1
	}
	if s.pendingCount >= s.cfg.SwitchConfirmations {
		s.pendingCount = 0
		return preferred
	}
	return current
}

// account updates the per-mode traffic statistics.
func (s *Selector) account(mode, def routing.Mode, msgSize int64) {
	if mode == routing.AdaptiveHighBias {
		s.stats.BiasMessages++
		s.stats.BiasBytes += uint64(msgSize)
		return
	}
	if mode == def || mode == routing.Adaptive || mode == routing.IncreasinglyMinimalBias {
		s.stats.DefaultMessages++
		s.stats.DefaultBytes += uint64(msgSize)
	}
}

// Observe records the NIC counter delta measured after a message was sent with
// the given routing mode. Only messages whose Decision.Evaluated was true need
// to be observed (counters are read only for them), but observing every
// message is also correct.
func (s *Selector) Observe(mode routing.Mode, delta counters.NIC) {
	if delta.RequestPackets == 0 {
		return
	}
	s.stats.CounterReads++
	o := observation{
		params:   perfmodel.ParamsFromCounters(delta),
		decision: s.decisions,
		valid:    true,
	}
	if mode == routing.AdaptiveHighBias {
		s.bias = o
	} else {
		s.adaptive = o
	}
}

// ObservedParams returns the currently stored model parameters for the two
// modes and whether each is valid. It is exported for tests, experiment
// logging and ablation studies.
func (s *Selector) ObservedParams() (adaptive perfmodel.Params, adaptiveValid bool, bias perfmodel.Params, biasValid bool) {
	return s.adaptive.params, s.adaptive.valid, s.bias.params, s.bias.valid
}
