package core

import (
	"testing"

	"dragonfly/internal/routing"
)

// oscillate feeds the selector observations that flip which mode looks better
// on every evaluation, which is the §5.1 failure mode (broadcast of large
// messages, sweep3d): as soon as the selector moves to the Default routing the
// stalls it observes drop, making High Bias look attractive again, and so on.
func oscillate(s *Selector, rounds int, msgSize int64) uint64 {
	for i := 0; i < rounds; i++ {
		if i%2 == 0 {
			// Adaptive looks clearly better.
			s.Observe(routing.Adaptive, obsCounters(4000, 0.05))
			s.Observe(routing.AdaptiveHighBias, obsCounters(9000, 3.0))
		} else {
			// High Bias looks clearly better.
			s.Observe(routing.Adaptive, obsCounters(12000, 2.5))
			s.Observe(routing.AdaptiveHighBias, obsCounters(3000, 0.05))
		}
		s.Select(msgSize, PointToPoint)
	}
	return s.Stats().Switches
}

func TestHysteresisDefaultMatchesPaperBehaviour(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	if cfg.SwitchConfirmations != 1 {
		t.Fatalf("default SwitchConfirmations = %d, want 1 (paper behaviour)", cfg.SwitchConfirmations)
	}
	s := MustNew(cfg)
	switches := oscillate(s, 20, 1<<20)
	// With no damping the selector flips nearly every round.
	if switches < 15 {
		t.Fatalf("expected near-constant oscillation without hysteresis, got %d switches", switches)
	}
}

func TestHysteresisReducesOscillation(t *testing.T) {
	base := DefaultConfig()
	base.ThresholdBytes = 0
	damped := base
	damped.SwitchConfirmations = 4

	noHyst := oscillate(MustNew(base), 40, 1<<20)
	withHyst := oscillate(MustNew(damped), 40, 1<<20)
	if withHyst >= noHyst {
		t.Fatalf("hysteresis did not reduce switches: %d vs %d", withHyst, noHyst)
	}
	if withHyst > noHyst/2 {
		t.Fatalf("hysteresis reduction too weak: %d vs %d", withHyst, noHyst)
	}
}

func TestHysteresisStillSwitchesOnPersistentChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	cfg.SwitchConfirmations = 3
	s := MustNew(cfg)
	// Start with Adaptive clearly better so the selector stays put.
	s.Observe(routing.Adaptive, obsCounters(3000, 0.05))
	s.Observe(routing.AdaptiveHighBias, obsCounters(9000, 2.0))
	for i := 0; i < 3; i++ {
		if d := s.Select(1<<20, PointToPoint); d.Mode != routing.Adaptive {
			t.Fatalf("setup: expected Adaptive, got %v", d.Mode)
		}
	}
	// Now the network state flips permanently: High Bias is clearly better.
	s.Observe(routing.Adaptive, obsCounters(12000, 2.5))
	s.Observe(routing.AdaptiveHighBias, obsCounters(2500, 0.05))
	var modes []routing.Mode
	for i := 0; i < 5; i++ {
		modes = append(modes, s.Select(1<<20, PointToPoint).Mode)
	}
	// The first SwitchConfirmations-1 evaluations hold the old mode, then the
	// selector commits to the new one and stays there.
	if modes[0] != routing.Adaptive || modes[1] != routing.Adaptive {
		t.Fatalf("selector switched before confirmation: %v", modes)
	}
	if modes[2] != routing.AdaptiveHighBias || modes[4] != routing.AdaptiveHighBias {
		t.Fatalf("selector failed to commit to the persistent winner: %v", modes)
	}
}

func TestHysteresisPendingResetOnAgreement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	cfg.SwitchConfirmations = 3
	s := MustNew(cfg)
	s.Observe(routing.Adaptive, obsCounters(3000, 0.05))
	s.Observe(routing.AdaptiveHighBias, obsCounters(9000, 2.0))
	s.Select(1<<20, PointToPoint) // Adaptive preferred, stays Adaptive

	// Two evaluations prefer High Bias (not enough to switch)...
	s.Observe(routing.Adaptive, obsCounters(12000, 2.5))
	s.Observe(routing.AdaptiveHighBias, obsCounters(2500, 0.05))
	s.Select(1<<20, PointToPoint)
	s.Select(1<<20, PointToPoint)
	// ...then one evaluation prefers Adaptive again, which must reset the
	// pending counter...
	s.Observe(routing.Adaptive, obsCounters(3000, 0.05))
	s.Observe(routing.AdaptiveHighBias, obsCounters(9000, 2.0))
	s.Select(1<<20, PointToPoint)
	// ...so two more High-Bias-preferring evaluations still do not switch.
	s.Observe(routing.Adaptive, obsCounters(12000, 2.5))
	s.Observe(routing.AdaptiveHighBias, obsCounters(2500, 0.05))
	s.Select(1<<20, PointToPoint)
	d := s.Select(1<<20, PointToPoint)
	if d.Mode != routing.Adaptive {
		t.Fatalf("pending switch counter was not reset by an agreeing evaluation: %v", d.Mode)
	}
	if s.Stats().Switches != 0 {
		t.Fatalf("unexpected switches: %d", s.Stats().Switches)
	}
}

func TestNegativeSwitchConfirmationsRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwitchConfirmations = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative SwitchConfirmations must be rejected")
	}
}
