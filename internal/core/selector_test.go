package core

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/counters"
	"dragonfly/internal/routing"
)

// obsCounters builds a counter delta producing the given latency and stall ratio.
func obsCounters(latency float64, stallRatio float64) counters.NIC {
	const packets = 100
	const flitsPerPacket = 5
	return counters.NIC{
		RequestPackets:            packets,
		RequestFlits:              packets * flitsPerPacket,
		RequestPacketsCumLatency:  uint64(latency * packets),
		RequestFlitsStalledCycles: uint64(stallRatio * packets * flitsPerPacket),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ThresholdBytes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative threshold must be rejected")
	}
	bad = DefaultConfig()
	bad.LambdaAdaptiveToBias = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero scaling factor must be rejected")
	}
	bad = DefaultConfig()
	bad.StalenessDecisions = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero staleness must be rejected")
	}
	bad = DefaultConfig()
	bad.CounterReadOverheadCycles = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative overhead must be rejected")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New must reject invalid config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestStartsInAdaptive(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.Current() != routing.Adaptive {
		t.Fatalf("initial mode = %v, want Adaptive", s.Current())
	}
}

func TestSmallMessagesUseHighBiasWithoutEvaluation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 4 << 10
	s := MustNew(cfg)
	d := s.Select(128, PointToPoint)
	if d.Mode != routing.AdaptiveHighBias {
		t.Fatalf("small message mode = %v, want AdaptiveHighBias", d.Mode)
	}
	if d.Evaluated || d.OverheadCycles != 0 {
		t.Fatalf("small message must not evaluate the algorithm: %+v", d)
	}
	if s.Stats().Evaluations != 0 {
		t.Fatal("no evaluation expected below the threshold")
	}
}

func TestCumulativeThresholdTriggersEvaluation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 4 << 10
	s := MustNew(cfg)
	// 40 messages of 128 bytes cross the 4 KiB threshold exactly once.
	evaluated := 0
	for i := 0; i < 40; i++ {
		if d := s.Select(128, PointToPoint); d.Evaluated {
			evaluated++
			if d.OverheadCycles != cfg.CounterReadOverheadCycles {
				t.Fatalf("evaluated decision has overhead %d, want %d", d.OverheadCycles, cfg.CounterReadOverheadCycles)
			}
		}
	}
	if evaluated == 0 {
		t.Fatal("cumulative threshold never triggered the algorithm")
	}
	if evaluated > 2 {
		t.Fatalf("algorithm evaluated %d times for 5 KiB of traffic, expected at most 2", evaluated)
	}
}

func TestPrefersHighBiasWhenModelSaysSo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0 // evaluate every message
	s := MustNew(cfg)
	// Observed Adaptive state: high latency, low stalls.
	s.Observe(routing.Adaptive, obsCounters(10000, 0.1))
	// Observed High Bias state: much lower latency, slightly more stalls.
	s.Observe(routing.AdaptiveHighBias, obsCounters(6000, 0.3))
	d := s.Select(256, PointToPoint)
	if d.Mode != routing.AdaptiveHighBias {
		t.Fatalf("mode = %v, want AdaptiveHighBias for a small latency-bound message", d.Mode)
	}
}

func TestPrefersAdaptiveForLargeCongestedMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	s := MustNew(cfg)
	// High Bias shows many stalls; Adaptive spreads the load (fewer stalls)
	// at slightly higher latency. Large messages are stall-bound.
	s.Observe(routing.Adaptive, obsCounters(10000, 0.05))
	s.Observe(routing.AdaptiveHighBias, obsCounters(8000, 2.0))
	d := s.Select(4<<20, PointToPoint)
	if d.Mode != routing.Adaptive {
		t.Fatalf("mode = %v, want Adaptive for a large stall-bound message", d.Mode)
	}
}

func TestDualBranchSwitchesBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	s := MustNew(cfg)
	// Drive the selector into High Bias first.
	s.Observe(routing.Adaptive, obsCounters(10000, 0.1))
	s.Observe(routing.AdaptiveHighBias, obsCounters(6000, 0.3))
	if d := s.Select(256, PointToPoint); d.Mode != routing.AdaptiveHighBias {
		t.Fatalf("setup failed, mode = %v", d.Mode)
	}
	// Now the network changes: High Bias stalls explode.
	s.Observe(routing.AdaptiveHighBias, obsCounters(9000, 5.0))
	s.Observe(routing.Adaptive, obsCounters(10000, 0.05))
	d := s.Select(4<<20, PointToPoint)
	if d.Mode != routing.Adaptive {
		t.Fatalf("mode = %v, want Adaptive after stall increase", d.Mode)
	}
	if s.Stats().Switches < 2 {
		t.Fatalf("expected at least two switches, got %d", s.Stats().Switches)
	}
}

func TestAlltoallUsesIMBAsDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	s := MustNew(cfg)
	// Make the default side preferable for a large message.
	s.Observe(routing.Adaptive, obsCounters(10000, 0.05))
	s.Observe(routing.AdaptiveHighBias, obsCounters(8000, 2.0))
	d := s.Select(4<<20, Alltoall)
	if d.Mode != routing.IncreasinglyMinimalBias {
		t.Fatalf("alltoall default mode = %v, want IncreasinglyMinimalBias", d.Mode)
	}
	// With IMB disabled the default must be plain Adaptive.
	cfg.AlltoallUsesIMB = false
	s2 := MustNew(cfg)
	s2.Observe(routing.Adaptive, obsCounters(10000, 0.05))
	s2.Observe(routing.AdaptiveHighBias, obsCounters(8000, 2.0))
	if d := s2.Select(4<<20, Alltoall); d.Mode != routing.Adaptive {
		t.Fatalf("alltoall default with IMB disabled = %v, want Adaptive", d.Mode)
	}
}

func TestStaleObservationRederived(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 0
	cfg.StalenessDecisions = 2
	s := MustNew(cfg)
	s.Observe(routing.Adaptive, obsCounters(10000, 0.5))
	// No High-Bias observation exists; after a Select the selector must have
	// derived one through the scaling factors.
	s.Select(1<<20, PointToPoint)
	_, adValid, bias, biasValid := s.ObservedParams()
	if !adValid || !biasValid {
		t.Fatal("expected both observations to be valid after re-derivation")
	}
	wantLat := 10000 * cfg.LambdaAdaptiveToBias
	wantStall := 0.5 * cfg.SigmaAdaptiveToBias
	if bias.LatencyCycles != wantLat || bias.StallRatio != wantStall {
		t.Fatalf("derived bias params = %+v, want L=%v s=%v", bias, wantLat, wantStall)
	}
}

func TestObserveIgnoresEmptyDelta(t *testing.T) {
	s := MustNew(DefaultConfig())
	s.Observe(routing.Adaptive, counters.NIC{})
	_, adValid, _, biasValid := s.ObservedParams()
	if adValid || biasValid {
		t.Fatal("empty delta must not create observations")
	}
	if s.Stats().CounterReads != 0 {
		t.Fatal("empty delta must not count as a counter read")
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdBytes = 1 << 30 // never evaluate: everything goes High Bias
	s := MustNew(cfg)
	for i := 0; i < 10; i++ {
		s.Select(1000, PointToPoint)
	}
	st := s.Stats()
	if st.Messages != 10 || st.Bytes != 10000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BiasMessages != 10 || st.DefaultMessages != 0 {
		t.Fatalf("all messages must be High Bias below threshold: %+v", st)
	}
	if st.DefaultTrafficFraction() != 0 {
		t.Fatalf("DefaultTrafficFraction = %v, want 0", st.DefaultTrafficFraction())
	}

	// Now a selector that always stays on the default mode.
	cfg = DefaultConfig()
	cfg.ThresholdBytes = 0
	s = MustNew(cfg)
	s.Observe(routing.Adaptive, obsCounters(1000, 0.01))
	s.Observe(routing.AdaptiveHighBias, obsCounters(5000, 3.0))
	for i := 0; i < 10; i++ {
		s.Select(1<<20, PointToPoint)
	}
	st = s.Stats()
	if st.DefaultTrafficFraction() != 1 {
		t.Fatalf("DefaultTrafficFraction = %v, want 1", st.DefaultTrafficFraction())
	}
	if (Stats{}).DefaultTrafficFraction() != 0 {
		t.Fatal("empty stats fraction must be 0")
	}
}

func TestTrafficKindString(t *testing.T) {
	if PointToPoint.String() != "point-to-point" || Alltoall.String() != "alltoall" {
		t.Fatal("unexpected TrafficKind strings")
	}
}

// Property: the selector only ever returns the default adaptive mode (Adaptive
// or IMB) or Adaptive with High Bias, never a deterministic mode, and its
// byte accounting always sums to the total.
func TestPropertySelectorModesAndAccounting(t *testing.T) {
	f := func(sizes []uint16, latA, latB uint16, sA, sB uint8, alltoall bool) bool {
		cfg := DefaultConfig()
		cfg.ThresholdBytes = 2048
		s := MustNew(cfg)
		s.Observe(routing.Adaptive, obsCounters(float64(latA)+1, float64(sA)/50))
		s.Observe(routing.AdaptiveHighBias, obsCounters(float64(latB)+1, float64(sB)/50))
		kind := PointToPoint
		if alltoall {
			kind = Alltoall
		}
		for _, sz := range sizes {
			d := s.Select(int64(sz), kind)
			switch d.Mode {
			case routing.Adaptive, routing.IncreasinglyMinimalBias, routing.AdaptiveHighBias:
			default:
				return false
			}
			if !alltoall && d.Mode == routing.IncreasinglyMinimalBias {
				return false
			}
		}
		st := s.Stats()
		return st.DefaultBytes+st.BiasBytes == st.Bytes && st.Messages == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: given fresh observations where one mode dominates (both lower
// latency and fewer stalls), the selector always picks the dominating mode
// once the threshold is crossed.
func TestPropertyPicksDominatingMode(t *testing.T) {
	f := func(size uint32, biasBetter bool) bool {
		cfg := DefaultConfig()
		cfg.ThresholdBytes = 0
		s := MustNew(cfg)
		if biasBetter {
			s.Observe(routing.Adaptive, obsCounters(10000, 1.0))
			s.Observe(routing.AdaptiveHighBias, obsCounters(5000, 0.2))
		} else {
			s.Observe(routing.Adaptive, obsCounters(5000, 0.2))
			s.Observe(routing.AdaptiveHighBias, obsCounters(10000, 1.0))
		}
		d := s.Select(int64(size%(8<<20))+1, PointToPoint)
		if biasBetter {
			return d.Mode == routing.AdaptiveHighBias
		}
		return d.Mode == routing.Adaptive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
