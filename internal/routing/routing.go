// Package routing implements the adaptive routing modes of the Cray Aries
// interconnect as described in §2.2 of the paper: a UGAL-style algorithm that,
// for every packet, samples two minimal and two non-minimal candidate paths,
// estimates their congestion from local queue occupancy and (delayed) credit
// information, and selects the cheapest path after adding a configurable bias
// to the non-minimal candidates. The bias is the lever exposed to applications
// through MPICH_GNI_ROUTING_MODE, and is the mechanism the paper's
// application-aware routing library manipulates.
package routing

import (
	"fmt"
	"math/rand"

	"dragonfly/internal/topo"
)

// Mode mirrors the values of the MPICH_GNI_ROUTING_MODE environment variable.
type Mode uint8

const (
	// Adaptive is ADAPTIVE_0: UGAL with no bias added to non-minimal paths.
	// The paper calls it "Adaptive" and it is the default for most traffic.
	Adaptive Mode = iota
	// IncreasinglyMinimalBias is ADAPTIVE_1: the bias towards minimal routing
	// increases as the packet approaches the destination. It is the default
	// routing for MPI_Alltoall communications.
	IncreasinglyMinimalBias
	// AdaptiveLowBias is ADAPTIVE_2: a low constant bias is added.
	AdaptiveLowBias
	// AdaptiveHighBias is ADAPTIVE_3: a high constant bias is added. The paper
	// calls it "Adaptive with High Bias".
	AdaptiveHighBias
	// MinHash always routes minimally; the path is selected by a hash of the
	// packet header (deterministic, not adaptive).
	MinHash
	// NonMinHash always routes non-minimally; the path is selected by a hash
	// of the packet header (deterministic, not adaptive).
	NonMinHash
	// InOrder always routes minimally on a single path so packets arrive in
	// transmission order.
	InOrder
)

// String returns the MPICH_GNI_ROUTING_MODE-style name of the mode.
func (m Mode) String() string {
	switch m {
	case Adaptive:
		return "ADAPTIVE_0"
	case IncreasinglyMinimalBias:
		return "ADAPTIVE_1"
	case AdaptiveLowBias:
		return "ADAPTIVE_2"
	case AdaptiveHighBias:
		return "ADAPTIVE_3"
	case MinHash:
		return "MIN_HASH"
	case NonMinHash:
		return "NMIN_HASH"
	case InOrder:
		return "IN_ORDER"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Name returns the human-readable name the paper uses for the mode.
func (m Mode) Name() string {
	switch m {
	case Adaptive:
		return "Adaptive"
	case IncreasinglyMinimalBias:
		return "Increasingly Minimal Bias"
	case AdaptiveLowBias:
		return "Adaptive with Low Bias"
	case AdaptiveHighBias:
		return "Adaptive with High Bias"
	case MinHash:
		return "Minimal Hashed"
	case NonMinHash:
		return "Non-Minimal Hashed"
	case InOrder:
		return "In-Order Minimal"
	default:
		return m.String()
	}
}

// ParseMode converts an MPICH_GNI_ROUTING_MODE-style string to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "ADAPTIVE_0", "adaptive", "Adaptive":
		return Adaptive, nil
	case "ADAPTIVE_1", "imb":
		return IncreasinglyMinimalBias, nil
	case "ADAPTIVE_2", "low-bias":
		return AdaptiveLowBias, nil
	case "ADAPTIVE_3", "high-bias":
		return AdaptiveHighBias, nil
	case "MIN_HASH":
		return MinHash, nil
	case "NMIN_HASH":
		return NonMinHash, nil
	case "IN_ORDER":
		return InOrder, nil
	default:
		return Adaptive, fmt.Errorf("routing: unknown mode %q", s)
	}
}

// IsAdaptive reports whether the mode performs per-packet adaptive selection.
func (m Mode) IsAdaptive() bool {
	switch m {
	case Adaptive, IncreasinglyMinimalBias, AdaptiveLowBias, AdaptiveHighBias:
		return true
	default:
		return false
	}
}

// CongestionView is the information the routing algorithm can observe about
// the network state. It is implemented by the network fabric. The view is
// allowed to be stale (credit information propagates with a delay), which is
// what produces the phantom-congestion behaviour discussed in the paper.
type CongestionView interface {
	// QueueCycles returns the estimated backlog of the link in cycles, as
	// perceived at time now (subject to credit/propagation staleness).
	QueueCycles(id topo.LinkID, now int64) int64
	// PropagationCycles returns the propagation delay of the link in cycles.
	PropagationCycles(id topo.LinkID) int64
	// SerializationCycles returns the time needed to serialize the given
	// number of flits onto the link, in cycles.
	SerializationCycles(id topo.LinkID, flits int) int64
}

// Params configures the UGAL cost model and the per-mode biases.
type Params struct {
	// MinimalCandidates and NonMinimalCandidates are the number of candidate
	// paths sampled per packet (2 and 2 on Aries).
	MinimalCandidates    int
	NonMinimalCandidates int
	// LowBiasCycles is the constant added to the cost of non-minimal
	// candidates under AdaptiveLowBias.
	LowBiasCycles int64
	// HighBiasCycles is the constant added under AdaptiveHighBias.
	HighBiasCycles int64
	// IMBBiasPerHopCycles is the per-minimal-hop bias used to approximate
	// Increasingly Minimal Bias in a source-routed model: the shorter the
	// remaining minimal path, the stronger the preference for it.
	IMBBiasPerHopCycles int64
}

// DefaultParams returns the parameters used throughout the experiments.
func DefaultParams() Params {
	return Params{
		MinimalCandidates:    2,
		NonMinimalCandidates: 2,
		LowBiasCycles:        200,
		HighBiasCycles:       800,
		IMBBiasPerHopCycles:  150,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.MinimalCandidates < 1 {
		return fmt.Errorf("routing: MinimalCandidates must be >= 1, got %d", p.MinimalCandidates)
	}
	if p.NonMinimalCandidates < 1 {
		return fmt.Errorf("routing: NonMinimalCandidates must be >= 1, got %d", p.NonMinimalCandidates)
	}
	if p.LowBiasCycles < 0 || p.HighBiasCycles < 0 || p.IMBBiasPerHopCycles < 0 {
		return fmt.Errorf("routing: biases must be non-negative")
	}
	if p.HighBiasCycles < p.LowBiasCycles {
		return fmt.Errorf("routing: HighBiasCycles (%d) must be >= LowBiasCycles (%d)",
			p.HighBiasCycles, p.LowBiasCycles)
	}
	return nil
}

// Decision is the outcome of routing one packet.
type Decision struct {
	// Path is the selected source route. It aliases the issuing Policy's
	// reusable storage: it is valid until the next Route call on that Policy
	// and must be copied if retained longer.
	Path topo.Path
	// Minimal reports whether the selected path is one of the minimal candidates.
	Minimal bool
	// Cost is the estimated cost (cycles) of the selected path, including bias.
	Cost int64
}

// Policy selects paths for packets according to a routing mode.
//
// A Policy owns reusable candidate-path storage: the Path inside a returned
// Decision aliases that storage and is only valid until the next Route call
// on the same Policy. The fabric consumes the path within the same event;
// callers that retain paths must copy them. Policies are consequently not
// safe for concurrent use — one Policy per simulated system, like the engine
// and the fabric.
type Policy struct {
	topo   *topo.Topology
	params Params

	// pathBuf holds the adaptive modes' candidate paths; hashScratch holds
	// the single path of the hashed/in-order modes; hashRng is the
	// deterministic per-packet stream of the hashed modes, reseeded per
	// packet instead of reallocated. Together they make Route allocation-free
	// after warm-up — path sampling runs once per simulated packet and used
	// to dominate the simulator's allocation profile.
	pathBuf     topo.PathBuffer
	hashScratch topo.Path
	hashRng     *rand.Rand

	// trace, when non-nil, records every adaptive decision with its candidate
	// costs. Off by default; the disabled cost is one nil check per Route.
	trace *DecisionTrace
}

// NewPolicy builds a routing policy over the given topology.
func NewPolicy(t *topo.Topology, params Params) (*Policy, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Policy{topo: t, params: params}, nil
}

// MustNewPolicy is like NewPolicy but panics on invalid parameters.
func MustNewPolicy(t *topo.Topology, params Params) *Policy {
	p, err := NewPolicy(t, params)
	if err != nil {
		panic(err)
	}
	return p
}

// Params returns the policy parameters.
func (p *Policy) Params() Params { return p.params }

// SetDecisionTrace attaches (or, with nil, detaches) a decision recorder.
func (p *Policy) SetDecisionTrace(t *DecisionTrace) { p.trace = t }

// DecisionTrace returns the attached recorder, or nil when tracing is off.
func (p *Policy) DecisionTrace() *DecisionTrace { return p.trace }

// Topology returns the underlying topology.
func (p *Policy) Topology() *topo.Topology { return p.topo }

// PathCost estimates the traversal cost of a path for a packet of the given
// flit count: per-hop serialization plus propagation plus the perceived queue
// backlog of each link. This mirrors the UGAL decision of comparing
// queue-depth x hop-count between minimal and non-minimal candidates.
func PathCost(path topo.Path, flits int, view CongestionView, now int64) int64 {
	var cost int64
	for _, id := range path {
		cost += view.QueueCycles(id, now)
		cost += view.PropagationCycles(id)
		cost += view.SerializationCycles(id, flits)
	}
	return cost
}

func (p *Policy) pathCost(path topo.Path, flits int, view CongestionView, now int64) int64 {
	return PathCost(path, flits, view, now)
}

// hashPath returns a deterministic path for the hashed (non-adaptive) modes.
// The result aliases the policy's scratch storage.
func (p *Policy) hashPath(src, dst topo.RouterID, hash uint64, minimal bool) topo.Path {
	// Derive a deterministic RNG from the hash so that different hash values
	// spread over the available paths while identical headers reuse the path.
	// Reseeding the policy's private Rand replays the exact stream a freshly
	// constructed one would produce, without the per-packet allocation.
	seed := int64(hash ^ uint64(src)<<32 ^ uint64(dst))
	if p.hashRng == nil {
		p.hashRng = rand.New(rand.NewSource(seed))
	} else {
		p.hashRng.Seed(seed)
	}
	if minimal {
		p.hashScratch = p.topo.AppendMinimalPath(p.hashScratch[:0], src, dst, p.hashRng)
	} else {
		p.hashScratch = p.topo.AppendNonMinimalPath(p.hashScratch[:0], src, dst, p.hashRng)
	}
	return p.hashScratch
}

// BiasFor returns the additive non-minimal bias for the mode, given the
// length of the best minimal candidate (used by the Increasingly-Minimal-Bias
// approximation: the closer the destination, i.e. the shorter the minimal
// path, the larger the bias). It is exported so counterfactual scoring can
// re-bias recorded raw costs under alternative modes.
func (p Params) BiasFor(mode Mode, minimalHops int) int64 {
	switch mode {
	case Adaptive:
		return 0
	case AdaptiveLowBias:
		return p.LowBiasCycles
	case AdaptiveHighBias:
		return p.HighBiasCycles
	case IncreasinglyMinimalBias:
		remaining := topo.MaxMinimalHops - minimalHops
		if remaining < 0 {
			remaining = 0
		}
		return p.IMBBiasPerHopCycles * int64(1+remaining)
	default:
		return 0
	}
}

func (p *Policy) bias(mode Mode, minimalHops int) int64 {
	return p.params.BiasFor(mode, minimalHops)
}

// Route selects a path for one packet of the given flit count from the router
// of the source node to the router of the destination node.
//
// hash is only used by the deterministic modes (MinHash, NonMinHash, InOrder);
// adaptive modes use rng to sample candidates, matching the per-packet random
// candidate selection of Aries UGAL.
func (p *Policy) Route(mode Mode, src, dst topo.RouterID, flits int, hash uint64,
	view CongestionView, now int64, rng *rand.Rand) Decision {

	if src == dst {
		return Decision{Path: nil, Minimal: true, Cost: 0}
	}
	switch mode {
	case MinHash:
		path := p.hashPath(src, dst, hash, true)
		return Decision{Path: path, Minimal: true, Cost: p.pathCost(path, flits, view, now)}
	case NonMinHash:
		path := p.hashPath(src, dst, hash, false)
		return Decision{Path: path, Minimal: false, Cost: p.pathCost(path, flits, view, now)}
	case InOrder:
		p.hashScratch = p.topo.AppendMinimalPath(p.hashScratch[:0], src, dst, nil)
		path := p.hashScratch
		return Decision{Path: path, Minimal: true, Cost: p.pathCost(path, flits, view, now)}
	}

	// Adaptive modes: sample candidates and pick the cheapest after bias.
	minimal, nonMinimal := p.topo.SamplePathsInto(&p.pathBuf, src, dst,
		p.params.MinimalCandidates, p.params.NonMinimalCandidates, rng)

	best := Decision{Cost: int64(1) << 62}
	bestIdx := -1
	bestMinHops := topo.MaxMinimalHops
	for _, cand := range minimal {
		if len(cand) < bestMinHops {
			bestMinHops = len(cand)
		}
	}
	for i, cand := range minimal {
		c := p.pathCost(cand, flits, view, now)
		if c < best.Cost {
			best = Decision{Path: cand, Minimal: true, Cost: c}
			bestIdx = i
		}
	}
	nonMinBias := p.bias(mode, bestMinHops)
	for i, cand := range nonMinimal {
		c := p.pathCost(cand, flits, view, now) + nonMinBias
		if c < best.Cost {
			best = Decision{Path: cand, Minimal: false, Cost: c}
			bestIdx = len(minimal) + i
		}
	}
	if p.trace != nil {
		p.trace.record(int(p.topo.GroupOf(src)), mode, src, dst, flits, now, view,
			minimal, nonMinimal, bestMinHops, nonMinBias, bestIdx)
	}
	return best
}

// ZeroView is a CongestionView that reports an idle network. It is useful for
// tests and for computing baseline path costs.
type ZeroView struct {
	// Propagation is the constant propagation delay returned for every link.
	Propagation int64
	// CyclesPerFlit is the constant serialization rate returned for every link.
	CyclesPerFlit int64
}

// QueueCycles implements CongestionView; it always returns 0.
func (v ZeroView) QueueCycles(topo.LinkID, int64) int64 { return 0 }

// PropagationCycles implements CongestionView.
func (v ZeroView) PropagationCycles(topo.LinkID) int64 { return v.Propagation }

// SerializationCycles implements CongestionView.
func (v ZeroView) SerializationCycles(_ topo.LinkID, flits int) int64 {
	return v.CyclesPerFlit * int64(flits)
}
