package routing

import (
	"math/rand"
	"testing"

	"dragonfly/internal/topo"
)

// randomGeometry draws a small but varied Dragonfly shape: group counts,
// chassis/blade layouts and port counts all vary, including degenerate
// single-dimension shapes (one chassis, one blade row).
func randomGeometry(rng *rand.Rand) topo.Config {
	for {
		cfg := topo.Config{
			Groups:                1 + rng.Intn(6),
			ChassisPerGroup:       1 + rng.Intn(4),
			BladesPerChassis:      1 + rng.Intn(6),
			NodesPerBlade:         1 + rng.Intn(3),
			GlobalLinksPerRouter:  1 + rng.Intn(4),
			IntraGroupLinkWidth:   1 + rng.Intn(3),
			IntraChassisLinkWidth: 1 + rng.Intn(2),
			GlobalLinkWidth:       1 + rng.Intn(3),
		}
		if cfg.Validate() == nil {
			return cfg
		}
	}
}

// allModes are the routing modes Route accepts.
var allModes = []Mode{
	Adaptive, IncreasinglyMinimalBias, AdaptiveLowBias, AdaptiveHighBias,
	MinHash, NonMinHash, InOrder,
}

// TestPropertyRoutesAreRealPaths is the core property: on randomized
// geometries, every Decision.Path returned by every routing mode is a
// connected chain of real topology links from the source router to the
// destination router.
func TestPropertyRoutesAreRealPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for g := 0; g < 25; g++ {
		cfg := randomGeometry(rng)
		tp := topo.MustNew(cfg)
		pol := MustNewPolicy(tp, DefaultParams())
		view := ZeroView{Propagation: 100, CyclesPerFlit: 4}
		for trial := 0; trial < 40; trial++ {
			src := topo.RouterID(rng.Intn(tp.NumRouters()))
			dst := topo.RouterID(rng.Intn(tp.NumRouters()))
			for _, mode := range allModes {
				dec := pol.Route(mode, src, dst, 5, rng.Uint64(), view, 0, rng)
				if err := tp.ValidatePath(src, dst, dec.Path); err != nil {
					t.Fatalf("geometry %+v: mode %s route %d->%d: %v (path %v)",
						cfg, mode, src, dst, err, dec.Path)
				}
			}
		}
	}
}

// TestPropertyMinimalHopBound checks the dragonfly minimal-path bound on
// randomized geometries: a minimal path is at most local–global–local per
// group traversal — ≤ 2 hops inside a group, ≤ 2+1+2 across groups (and
// never more than MaxMinimalHops even on the Valiant fallback for group
// pairs without a direct link).
func TestPropertyMinimalHopBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for g := 0; g < 25; g++ {
		cfg := randomGeometry(rng)
		tp := topo.MustNew(cfg)
		for trial := 0; trial < 60; trial++ {
			src := topo.RouterID(rng.Intn(tp.NumRouters()))
			dst := topo.RouterID(rng.Intn(tp.NumRouters()))
			path := tp.MinimalPath(src, dst, rng)
			sameGroup := tp.GroupOf(src) == tp.GroupOf(dst)
			direct := len(tp.GlobalLinks(tp.GroupOf(src), tp.GroupOf(dst))) > 0
			bound := topo.MaxMinimalHops
			switch {
			case src == dst:
				bound = 0
			case sameGroup:
				bound = 2 // intra-chassis + row, or a direct link
			case !direct:
				// No direct group pair: minimal falls back to a Valiant
				// detour, which may cost up to the non-minimal bound.
				bound = topo.MaxNonMinimalHops
			}
			if len(path) > bound {
				t.Fatalf("geometry %+v: minimal path %d->%d has %d hops, bound %d (path %v)",
					cfg, src, dst, len(path), bound, path)
			}
			globals := 0
			for _, id := range path {
				if tp.Link(id).Type == topo.LinkGlobal {
					globals++
				}
			}
			if sameGroup && globals != 0 {
				t.Fatalf("geometry %+v: intra-group minimal path %d->%d crossed %d global links",
					cfg, src, dst, globals)
			}
			if !sameGroup && direct && globals != 1 {
				t.Fatalf("geometry %+v: inter-group minimal path %d->%d crossed %d global links, want 1",
					cfg, src, dst, globals)
			}
		}
	}
}

// TestPropertyValiantIntermediateGroups checks the Valiant invariant on
// randomized geometries: a non-minimal inter-group path detours through an
// intermediate group that is neither the source nor the destination group
// (whenever such a group exists), observable as the first global hop landing
// in a third group.
func TestPropertyValiantIntermediateGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for g := 0; g < 40; g++ {
		cfg := randomGeometry(rng)
		if cfg.Groups < 3 {
			continue // a detour group needs at least three groups
		}
		tp := topo.MustNew(cfg)
		for trial := 0; trial < 60; trial++ {
			src := topo.RouterID(rng.Intn(tp.NumRouters()))
			dst := topo.RouterID(rng.Intn(tp.NumRouters()))
			gs, gd := tp.GroupOf(src), tp.GroupOf(dst)
			if gs == gd {
				continue
			}
			path := tp.NonMinimalPath(src, dst, rng)
			if err := tp.ValidatePath(src, dst, path); err != nil {
				t.Fatalf("geometry %+v: %v", cfg, err)
			}
			// Reconstruct the groups the path's global hops land in.
			var via []topo.GroupID
			for _, id := range path {
				if l := tp.Link(id); l.Type == topo.LinkGlobal {
					via = append(via, tp.GroupOf(l.Dst))
				}
			}
			if len(via) < 2 {
				// Degenerate wiring can leave no usable intermediate group;
				// then the path legitimately collapses to a minimal one.
				continue
			}
			if inter := via[0]; inter == gs || inter == gd {
				t.Fatalf("geometry %+v: Valiant detour %d->%d entered group %d, which is an endpoint group (%d, %d); path %v",
					cfg, src, dst, inter, gs, gd, path)
			}
		}
	}
}

// TestPropertyAdaptiveCandidatesRespectBounds samples the UGAL candidate sets
// directly: minimal candidates stay within the minimal hop bound and
// non-minimal candidates within the Valiant bound, on randomized geometries.
func TestPropertyAdaptiveCandidatesRespectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for g := 0; g < 25; g++ {
		cfg := randomGeometry(rng)
		tp := topo.MustNew(cfg)
		for trial := 0; trial < 40; trial++ {
			src := topo.RouterID(rng.Intn(tp.NumRouters()))
			dst := topo.RouterID(rng.Intn(tp.NumRouters()))
			direct := tp.GroupOf(src) == tp.GroupOf(dst) ||
				len(tp.GlobalLinks(tp.GroupOf(src), tp.GroupOf(dst))) > 0
			minimal, nonMinimal := tp.SamplePaths(src, dst, 2, 2, rng)
			for _, p := range minimal {
				if err := tp.ValidatePath(src, dst, p); err != nil {
					t.Fatalf("geometry %+v: minimal candidate: %v", cfg, err)
				}
				if direct && len(p) > topo.MaxMinimalHops {
					t.Fatalf("geometry %+v: minimal candidate %d->%d has %d hops", cfg, src, dst, len(p))
				}
			}
			for _, p := range nonMinimal {
				if err := tp.ValidatePath(src, dst, p); err != nil {
					t.Fatalf("geometry %+v: non-minimal candidate: %v", cfg, err)
				}
				if len(p) > topo.MaxNonMinimalHops {
					t.Fatalf("geometry %+v: non-minimal candidate %d->%d has %d hops", cfg, src, dst, len(p))
				}
			}
		}
	}
}
