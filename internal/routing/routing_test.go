package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dragonfly/internal/topo"
)

func newTestPolicy(t *testing.T, groups int) (*Policy, *topo.Topology) {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(groups))
	p, err := NewPolicy(tt, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p, tt
}

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{
		Adaptive:                "ADAPTIVE_0",
		IncreasinglyMinimalBias: "ADAPTIVE_1",
		AdaptiveLowBias:         "ADAPTIVE_2",
		AdaptiveHighBias:        "ADAPTIVE_3",
		MinHash:                 "MIN_HASH",
		NonMinHash:              "NMIN_HASH",
		InOrder:                 "IN_ORDER",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%v.String() = %q, want %q", m, m.String(), want)
		}
		if m.Name() == "" {
			t.Fatalf("%v.Name() empty", m)
		}
		back, err := ParseMode(want)
		if err != nil || back != m {
			t.Fatalf("ParseMode(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseMode("NOT_A_MODE"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
	if Mode(200).String() == "" || Mode(200).Name() == "" {
		t.Fatal("unknown mode must still format")
	}
}

// TestParseModeRoundTrip pins the full String/Name/ParseMode contract: every
// mode round-trips through its canonical MPICH_GNI-style string, the
// documented short aliases parse to the right mode, names are unique, and
// unknown strings fail.
func TestParseModeRoundTrip(t *testing.T) {
	all := []Mode{Adaptive, IncreasinglyMinimalBias, AdaptiveLowBias,
		AdaptiveHighBias, MinHash, NonMinHash, InOrder}

	seenString := make(map[string]Mode)
	seenName := make(map[string]Mode)
	for _, m := range all {
		s := m.String()
		if prev, dup := seenString[s]; dup {
			t.Fatalf("modes %v and %v share String %q", prev, m, s)
		}
		seenString[s] = m
		n := m.Name()
		if prev, dup := seenName[n]; dup {
			t.Fatalf("modes %v and %v share Name %q", prev, m, n)
		}
		seenName[n] = m

		back, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%v.String() = %q): %v", m, s, err)
		}
		if back != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", s, back, m)
		}
	}

	aliases := map[string]Mode{
		"adaptive":  Adaptive,
		"Adaptive":  Adaptive,
		"imb":       IncreasinglyMinimalBias,
		"low-bias":  AdaptiveLowBias,
		"high-bias": AdaptiveHighBias,
	}
	for s, want := range aliases {
		got, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(alias %q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseMode(%q) = %v, want %v", s, got, want)
		}
	}

	for _, s := range []string{"", "ADAPTIVE_4", "adaptive_0", "min_hash",
		"Adaptive with High Bias", "appaware", "default"} {
		if got, err := ParseMode(s); err == nil {
			t.Fatalf("ParseMode(%q) = %v, want error", s, got)
		}
	}
	// The parser must not accept the formatted form of an out-of-range mode.
	if got, err := ParseMode(Mode(200).String()); err == nil {
		t.Fatalf("ParseMode(%q) = %v, want error", Mode(200).String(), got)
	}
}

func TestIsAdaptive(t *testing.T) {
	adaptive := []Mode{Adaptive, IncreasinglyMinimalBias, AdaptiveLowBias, AdaptiveHighBias}
	static := []Mode{MinHash, NonMinHash, InOrder}
	for _, m := range adaptive {
		if !m.IsAdaptive() {
			t.Fatalf("%v should be adaptive", m)
		}
	}
	for _, m := range static {
		if m.IsAdaptive() {
			t.Fatalf("%v should not be adaptive", m)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{MinimalCandidates: 0, NonMinimalCandidates: 2},
		{MinimalCandidates: 2, NonMinimalCandidates: 0},
		{MinimalCandidates: 2, NonMinimalCandidates: 2, LowBiasCycles: -1},
		{MinimalCandidates: 2, NonMinimalCandidates: 2, LowBiasCycles: 100, HighBiasCycles: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, p)
		}
	}
	if _, err := NewPolicy(topo.MustNew(topo.SmallConfig(2)), Params{}); err == nil {
		t.Fatal("NewPolicy must reject invalid params")
	}
}

func TestRouteSameRouter(t *testing.T) {
	p, tt := newTestPolicy(t, 2)
	r := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	d := p.Route(Adaptive, r, r, 5, 0, ZeroView{}, 0, rand.New(rand.NewSource(1)))
	if len(d.Path) != 0 || !d.Minimal {
		t.Fatalf("self route = %+v, want empty minimal path", d)
	}
}

func TestMinHashAlwaysMinimal(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	rng := rand.New(rand.NewSource(2))
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 2, Chassis: 1, Blade: 3})
	for hash := uint64(0); hash < 50; hash++ {
		d := p.Route(MinHash, src, dst, 5, hash, ZeroView{}, 0, rng)
		if !d.Minimal {
			t.Fatal("MinHash selected a non-minimal path")
		}
		if err := tt.ValidatePath(src, dst, d.Path); err != nil {
			t.Fatal(err)
		}
		if len(d.Path) > topo.MaxMinimalHops {
			t.Fatalf("MinHash path too long: %d hops", len(d.Path))
		}
	}
}

func TestMinHashDeterministicPerHash(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 1, Chassis: 1, Blade: 1})
	// Decision.Path aliases the policy's scratch storage, so the first path
	// must be copied before issuing the second Route call.
	a := p.Route(MinHash, src, dst, 5, 1234, ZeroView{}, 0, nil)
	a.Path = append(topo.Path(nil), a.Path...)
	b := p.Route(MinHash, src, dst, 5, 1234, ZeroView{}, 0, nil)
	if len(a.Path) != len(b.Path) {
		t.Fatal("MinHash not deterministic for equal hash")
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			t.Fatal("MinHash not deterministic for equal hash")
		}
	}
}

func TestInOrderSinglePath(t *testing.T) {
	p, tt := newTestPolicy(t, 2)
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 1, Chassis: 1, Blade: 2})
	first := p.Route(InOrder, src, dst, 5, 0, ZeroView{}, 0, rand.New(rand.NewSource(3)))
	first.Path = append(topo.Path(nil), first.Path...) // survives later Route calls
	for i := 0; i < 20; i++ {
		d := p.Route(InOrder, src, dst, 5, uint64(i), ZeroView{}, 0, rand.New(rand.NewSource(int64(i))))
		if !d.Minimal {
			t.Fatal("InOrder selected a non-minimal path")
		}
		if len(d.Path) != len(first.Path) {
			t.Fatal("InOrder did not reuse a single deterministic path")
		}
		for j := range d.Path {
			if d.Path[j] != first.Path[j] {
				t.Fatal("InOrder did not reuse a single deterministic path")
			}
		}
	}
}

func TestNonMinHashNonMinimal(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 1, Chassis: 0, Blade: 1})
	d := p.Route(NonMinHash, src, dst, 5, 42, ZeroView{}, 0, nil)
	if d.Minimal {
		t.Fatal("NonMinHash reported a minimal decision")
	}
	if err := tt.ValidatePath(src, dst, d.Path); err != nil {
		t.Fatal(err)
	}
}

// congestedView marks a set of links as heavily congested.
type congestedView struct {
	congested map[topo.LinkID]int64
	prop      int64
}

func (v congestedView) QueueCycles(id topo.LinkID, _ int64) int64 { return v.congested[id] }
func (v congestedView) PropagationCycles(topo.LinkID) int64       { return v.prop }
func (v congestedView) SerializationCycles(_ topo.LinkID, flits int) int64 {
	return int64(flits)
}

func TestAdaptiveAvoidsCongestedMinimal(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	rng := rand.New(rand.NewSource(4))
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 1, Chassis: 0, Blade: 0})

	// Congest every link leaving the source group towards the destination
	// group so that all minimal candidates look expensive.
	view := congestedView{congested: map[topo.LinkID]int64{}, prop: 10}
	for _, id := range tt.GlobalLinks(0, 1) {
		view.congested[id] = 1_000_000
	}
	nonMinimalPicked := 0
	for i := 0; i < 100; i++ {
		d := p.Route(Adaptive, src, dst, 5, 0, view, 0, rng)
		if !d.Minimal {
			nonMinimalPicked++
		}
	}
	if nonMinimalPicked < 80 {
		t.Fatalf("Adaptive picked non-minimal only %d/100 times despite congestion", nonMinimalPicked)
	}
}

func TestHighBiasPrefersMinimalUnderModerateCongestion(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	rng := rand.New(rand.NewSource(5))
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 1, Chassis: 0, Blade: 0})

	// Moderate congestion on the direct global links: below the high bias but
	// above zero, so Adaptive detours while AdaptiveHighBias stays minimal.
	view := congestedView{congested: map[topo.LinkID]int64{}, prop: 10}
	moderate := (p.Params().HighBiasCycles + p.Params().LowBiasCycles) / 2
	for _, id := range tt.GlobalLinks(0, 1) {
		view.congested[id] = moderate
	}
	adaptiveNonMin, biasNonMin := 0, 0
	for i := 0; i < 200; i++ {
		if d := p.Route(Adaptive, src, dst, 5, 0, view, 0, rng); !d.Minimal {
			adaptiveNonMin++
		}
		if d := p.Route(AdaptiveHighBias, src, dst, 5, 0, view, 0, rng); !d.Minimal {
			biasNonMin++
		}
	}
	if biasNonMin >= adaptiveNonMin {
		t.Fatalf("high bias picked non-minimal %d times, adaptive %d times; bias must reduce non-minimal traffic",
			biasNonMin, adaptiveNonMin)
	}
}

func TestBiasOrdering(t *testing.T) {
	p, _ := newTestPolicy(t, 3)
	// The effective non-minimal bias must be monotone: Adaptive <= Low <= High.
	for hops := 1; hops <= topo.MaxMinimalHops; hops++ {
		a := p.bias(Adaptive, hops)
		l := p.bias(AdaptiveLowBias, hops)
		h := p.bias(AdaptiveHighBias, hops)
		if a > l || l > h {
			t.Fatalf("bias ordering violated at hops=%d: %d %d %d", hops, a, l, h)
		}
	}
}

func TestIMBBiasGrowsAsDestinationApproaches(t *testing.T) {
	p, _ := newTestPolicy(t, 3)
	far := p.bias(IncreasinglyMinimalBias, topo.MaxMinimalHops)
	near := p.bias(IncreasinglyMinimalBias, 1)
	if near <= far {
		t.Fatalf("IMB bias must grow as the minimal path shrinks: near=%d far=%d", near, far)
	}
}

func TestZeroViewCosts(t *testing.T) {
	v := ZeroView{Propagation: 7, CyclesPerFlit: 3}
	if v.QueueCycles(0, 0) != 0 {
		t.Fatal("ZeroView must report empty queues")
	}
	if v.PropagationCycles(0) != 7 {
		t.Fatal("wrong propagation")
	}
	if v.SerializationCycles(0, 5) != 15 {
		t.Fatal("wrong serialization")
	}
}

func TestMustNewPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewPolicy did not panic")
		}
	}()
	MustNewPolicy(topo.MustNew(topo.SmallConfig(2)), Params{})
}

// Property: for any random pair and mode, the returned path is a valid route
// between the two routers and the Minimal flag is consistent with path length.
func TestPropertyRouteValid(t *testing.T) {
	p, tt := newTestPolicy(t, 4)
	n := tt.NumRouters()
	modes := []Mode{Adaptive, IncreasinglyMinimalBias, AdaptiveLowBias, AdaptiveHighBias, MinHash, NonMinHash, InOrder}
	f := func(a, b uint16, m uint8, seed int64) bool {
		src := topo.RouterID(int(a) % n)
		dst := topo.RouterID(int(b) % n)
		mode := modes[int(m)%len(modes)]
		rng := rand.New(rand.NewSource(seed))
		d := p.Route(mode, src, dst, 5, uint64(seed), ZeroView{Propagation: 1, CyclesPerFlit: 1}, 0, rng)
		if err := tt.ValidatePath(src, dst, d.Path); err != nil {
			return false
		}
		if d.Minimal && len(d.Path) > topo.MaxMinimalHops {
			return false
		}
		if len(d.Path) > topo.MaxNonMinimalHops {
			return false
		}
		if src != dst && d.Cost <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: on an idle network, adaptive routing always selects a minimal path
// (no congestion means the bias-free cost of minimal candidates is lowest,
// since non-minimal paths have at least as many hops).
func TestPropertyIdleNetworkPrefersMinimal(t *testing.T) {
	p, tt := newTestPolicy(t, 4)
	n := tt.NumRouters()
	view := ZeroView{Propagation: 50, CyclesPerFlit: 2}
	f := func(a, b uint16, seed int64) bool {
		src := topo.RouterID(int(a) % n)
		dst := topo.RouterID(int(b) % n)
		rng := rand.New(rand.NewSource(seed))
		d := p.Route(AdaptiveHighBias, src, dst, 5, 0, view, 0, rng)
		return d.Minimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRouteAdaptive(b *testing.B) {
	tt := topo.MustNew(topo.AriesConfig(6))
	p := MustNewPolicy(tt, DefaultParams())
	rng := rand.New(rand.NewSource(1))
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 5, Chassis: 3, Blade: 9})
	view := ZeroView{Propagation: 100, CyclesPerFlit: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Route(Adaptive, src, dst, 5, uint64(i), view, int64(i), rng)
	}
}
