package routing

import (
	"fmt"
	"strconv"
	"strings"

	"dragonfly/internal/topo"
)

// MaxDecisionCandidates bounds how many candidate paths one traced decision
// can hold. Aries UGAL samples 2 minimal + 2 non-minimal candidates, so 8
// leaves headroom for swept configurations without growing the record.
const MaxDecisionCandidates = 8

// DefaultDecisionCandidates is the top-k used when tracing is enabled without
// an explicit k ("on"): every candidate of the default 2+2 configuration.
const DefaultDecisionCandidates = 4

// DefaultTraceCapacity is the per-group ring capacity used by the facade.
// Rings overwrite oldest-first, so the trace keeps the most recent decisions
// of every group and total memory stays bounded regardless of run length.
const DefaultTraceCapacity = 2048

// ParseDecisionTrace converts a -decision-trace flag value to the traced
// candidate count k. "", "off" and "0" disable tracing; "on" selects
// DefaultDecisionCandidates; otherwise the value is a non-negative integer,
// optionally written as "k=N", bounded by MaxDecisionCandidates. Matching is
// case-insensitive and ignores surrounding whitespace.
func ParseDecisionTrace(s string) (int, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	switch t {
	case "", "off", "0":
		return 0, nil
	case "on":
		return DefaultDecisionCandidates, nil
	}
	if rest, ok := strings.CutPrefix(t, "k="); ok {
		t = strings.TrimSpace(rest)
	}
	k, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("routing: invalid decision trace %q (want off, on, or k=N)", s)
	}
	if k < 0 {
		return 0, fmt.Errorf("routing: decision trace k must be >= 0, got %d", k)
	}
	if k > MaxDecisionCandidates {
		return 0, fmt.Errorf("routing: decision trace k %d exceeds the maximum %d", k, MaxDecisionCandidates)
	}
	return k, nil
}

// TracedCandidate is one candidate path as the router saw it at decision
// time: the source route and its raw congestion cost (queue + propagation +
// serialization, before any non-minimal bias). The record is pointer-free and
// fixed-size so rings can be preallocated and recording never allocates.
type TracedCandidate struct {
	// Links holds the candidate's source route; only the first PathLen entries
	// are meaningful.
	Links [topo.MaxNonMinimalHops]topo.LinkID
	// PathLen is the hop count of the candidate.
	PathLen int8
	// Minimal reports whether the candidate is a minimal path.
	Minimal bool
	// RawCost is the unbiased congestion cost in cycles at decision time.
	RawCost int64
}

// Path returns the candidate's source route as a slice over Links. The result
// aliases the record.
func (c *TracedCandidate) Path() topo.Path { return topo.Path(c.Links[:c.PathLen]) }

// TracedDecision is one adaptive routing decision with its top-k candidates.
type TracedDecision struct {
	// Seq is the decision's per-group sequence number (0-based, monotonic over
	// the life of the trace, unaffected by ring wraparound).
	Seq uint64
	// Now is the simulation time of the decision in cycles.
	Now int64
	// Mode is the adaptive routing mode that made the decision.
	Mode Mode
	// Src and Dst are the source and destination routers.
	Src, Dst topo.RouterID
	// Flits is the packet size the candidates were costed with.
	Flits int32
	// Bias is the non-minimal bias the mode applied, in cycles.
	Bias int64
	// BestMinHops is the hop count of the shortest minimal candidate (the
	// input to the Increasingly-Minimal-Bias formula).
	BestMinHops int8
	// NumCandidates is how many entries of Candidates are meaningful.
	NumCandidates int8
	// Chosen indexes the selected candidate within Candidates.
	Chosen int8
	// Candidates holds the top-k candidates in sampling order (minimal first).
	// When the selected candidate falls outside the first k, it replaces the
	// last kept slot so the chosen path is always present.
	Candidates [MaxDecisionCandidates]TracedCandidate
}

// decisionRing is one group's fixed-capacity decision buffer; it overwrites
// oldest-first once full.
type decisionRing struct {
	buf   []TracedDecision
	next  int
	total uint64
}

// DecisionTrace records adaptive routing decisions into one ring per
// dragonfly group. Per-group rings keep sharded runs deterministic: each
// group's decisions land in its own ring in the group's canonical event
// order, so the recorded trace is byte-identical across shard counts for both
// routing variants. A single Route caller per group at a time is assumed
// (the serial domain for ExactUGAL, the owning lane for ShardableUGAL), so
// recording needs no synchronization.
type DecisionTrace struct {
	k        int
	capacity int
	groups   []decisionRing
}

// NewDecisionTrace builds a trace with one ring of the given capacity per
// group, keeping the top k candidates of each decision.
func NewDecisionTrace(groups, k, capacity int) (*DecisionTrace, error) {
	if groups < 1 {
		return nil, fmt.Errorf("routing: NewDecisionTrace needs at least one group, got %d", groups)
	}
	if k < 1 || k > MaxDecisionCandidates {
		return nil, fmt.Errorf("routing: decision trace k must be in [1, %d], got %d", MaxDecisionCandidates, k)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("routing: decision trace capacity must be >= 1, got %d", capacity)
	}
	t := &DecisionTrace{k: k, capacity: capacity, groups: make([]decisionRing, groups)}
	for g := range t.groups {
		t.groups[g].buf = make([]TracedDecision, 0, capacity)
	}
	return t, nil
}

// K returns the per-decision candidate budget.
func (t *DecisionTrace) K() int { return t.k }

// Capacity returns the per-group ring capacity.
func (t *DecisionTrace) Capacity() int { return t.capacity }

// NumGroups returns the number of per-group rings.
func (t *DecisionTrace) NumGroups() int { return len(t.groups) }

// Len returns the number of decisions currently stored across all rings.
func (t *DecisionTrace) Len() int {
	n := 0
	for g := range t.groups {
		n += len(t.groups[g].buf)
	}
	return n
}

// Recorded returns the total number of decisions ever recorded, including
// those overwritten by ring wraparound.
func (t *DecisionTrace) Recorded() uint64 {
	var n uint64
	for g := range t.groups {
		n += t.groups[g].total
	}
	return n
}

// Dropped returns the number of decisions lost to ring wraparound.
func (t *DecisionTrace) Dropped() uint64 { return t.Recorded() - uint64(t.Len()) }

// Reset clears every ring; capacity is retained.
func (t *DecisionTrace) Reset() {
	for g := range t.groups {
		r := &t.groups[g]
		r.buf = r.buf[:0]
		r.next = 0
		r.total = 0
	}
}

// ForEach visits every stored decision: groups in ascending order, and within
// each group oldest to newest. The *TracedDecision points into the ring and
// must be copied if retained.
func (t *DecisionTrace) ForEach(fn func(group int, d *TracedDecision)) {
	for g := range t.groups {
		r := &t.groups[g]
		if len(r.buf) == cap(r.buf) {
			// Full ring: oldest entry sits at the overwrite cursor.
			for i := 0; i < len(r.buf); i++ {
				fn(g, &r.buf[(r.next+i)%len(r.buf)])
			}
		} else {
			for i := range r.buf {
				fn(g, &r.buf[i])
			}
		}
	}
}

// Add appends a prebuilt decision to a group's ring, assigning its sequence
// number. It exists for tests and offline tooling; live recording goes
// through Policy.Route.
func (t *DecisionTrace) Add(group int, d TracedDecision) {
	slot := t.groups[group].slot()
	seq := slot.Seq
	*slot = d
	slot.Seq = seq
}

// slot returns the next ring entry to fill, advancing the cursor and stamping
// the entry's sequence number.
func (r *decisionRing) slot() *TracedDecision {
	var d *TracedDecision
	if len(r.buf) < cap(r.buf) {
		r.buf = r.buf[:len(r.buf)+1]
		d = &r.buf[len(r.buf)-1]
	} else {
		d = &r.buf[r.next]
	}
	r.next = (r.next + 1) % cap(r.buf)
	d.Seq = r.total
	r.total++
	return d
}

// record captures one adaptive decision. Costs are recomputed from the view
// (pure reads — no RNG draws), so recording cannot perturb the simulated
// byte stream; with tracing disabled the only hot-path overhead is one nil
// check in Route.
func (t *DecisionTrace) record(group int, mode Mode, src, dst topo.RouterID,
	flits int, now int64, view CongestionView,
	minimal, nonMinimal []topo.Path, bestMinHops int, bias int64, chosen int) {

	total := len(minimal) + len(nonMinimal)
	if total == 0 || chosen < 0 || chosen >= total {
		return
	}
	kept := t.k
	if total < kept {
		kept = total
	}
	seq := t.groups[group].total
	d := t.groups[group].slot()
	*d = TracedDecision{
		Seq:           seq,
		Now:           now,
		Mode:          mode,
		Src:           src,
		Dst:           dst,
		Flits:         int32(flits),
		Bias:          bias,
		BestMinHops:   int8(bestMinHops),
		NumCandidates: int8(kept),
	}
	for s := 0; s < kept; s++ {
		i := s
		if chosen >= kept && s == kept-1 {
			// The selected candidate fell outside the top k: keep it anyway in
			// the last slot so counterfactual scoring always sees the choice.
			i = chosen
		}
		var path topo.Path
		isMin := i < len(minimal)
		if isMin {
			path = minimal[i]
		} else {
			path = nonMinimal[i-len(minimal)]
		}
		c := &d.Candidates[s]
		n := copy(c.Links[:], path)
		c.PathLen = int8(n)
		c.Minimal = isMin
		c.RawCost = PathCost(path, flits, view, now)
		if i == chosen {
			d.Chosen = int8(s)
		}
	}
}
