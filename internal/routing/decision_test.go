package routing

import (
	"math/rand"
	"testing"

	"dragonfly/internal/topo"
)

func TestParseDecisionTrace(t *testing.T) {
	good := map[string]int{
		"":      0,
		"off":   0,
		"OFF":   0,
		"0":     0,
		"on":    DefaultDecisionCandidates,
		" On ":  DefaultDecisionCandidates,
		"1":     1,
		"4":     4,
		"8":     8,
		"k=2":   2,
		"K=8":   8,
		" k=3 ": 3,
		"k=0":   0,
	}
	for in, want := range good {
		got, err := ParseDecisionTrace(in)
		if err != nil || got != want {
			t.Fatalf("ParseDecisionTrace(%q) = (%d, %v), want (%d, nil)", in, got, err, want)
		}
	}
	for _, in := range []string{"9", "-1", "k=", "k=9", "two", "4.5", "0x4", "on=4"} {
		if k, err := ParseDecisionTrace(in); err == nil {
			t.Fatalf("ParseDecisionTrace(%q) = %d, want error", in, k)
		}
	}
}

func TestNewDecisionTraceValidation(t *testing.T) {
	for _, bad := range []struct{ groups, k, capacity int }{
		{0, 4, 16}, {3, 0, 16}, {3, MaxDecisionCandidates + 1, 16}, {3, 4, 0},
	} {
		if tr, err := NewDecisionTrace(bad.groups, bad.k, bad.capacity); err == nil {
			t.Fatalf("NewDecisionTrace(%+v) = %v, want error", bad, tr)
		}
	}
	tr, err := NewDecisionTrace(3, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 4 || tr.Capacity() != 16 || tr.NumGroups() != 3 || tr.Len() != 0 {
		t.Fatalf("unexpected trace shape: k=%d cap=%d groups=%d len=%d",
			tr.K(), tr.Capacity(), tr.NumGroups(), tr.Len())
	}
}

func TestRouteRecordsAdaptiveDecisions(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	tr, err := NewDecisionTrace(tt.Config().Groups, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.SetDecisionTrace(tr)
	if p.DecisionTrace() != tr {
		t.Fatal("DecisionTrace accessor lost the recorder")
	}

	rng := rand.New(rand.NewSource(21))
	view := ZeroView{Propagation: 10, CyclesPerFlit: 2}
	src := tt.RouterAt(topo.Coord{Group: 1, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 2, Chassis: 0, Blade: 1})

	const n = 20
	for i := 0; i < n; i++ {
		d := p.Route(Adaptive, src, dst, 5, 0, view, int64(i), rng)

		if got := tr.Recorded(); got != uint64(i+1) {
			t.Fatalf("after %d routes Recorded() = %d", i+1, got)
		}
		var last *TracedDecision
		tr.ForEach(func(g int, td *TracedDecision) {
			if g != int(tt.GroupOf(src)) {
				t.Fatalf("decision recorded under group %d, want %d", g, tt.GroupOf(src))
			}
			last = td
		})
		if last == nil || last.Now != int64(i) || last.Seq != uint64(i) {
			t.Fatalf("latest decision wrong: %+v", last)
		}
		if last.Mode != Adaptive || last.Src != src || last.Dst != dst || last.Flits != 5 {
			t.Fatalf("decision header wrong: %+v", last)
		}
		if last.NumCandidates != 4 {
			t.Fatalf("kept %d candidates, want 4", last.NumCandidates)
		}
		chosen := &last.Candidates[last.Chosen]
		if !pathsEqual(chosen.Path(), d.Path) {
			t.Fatalf("chosen candidate %v does not match decision path %v", chosen.Path(), d.Path)
		}
		if chosen.Minimal != d.Minimal {
			t.Fatalf("chosen minimality %v does not match decision %v", chosen.Minimal, d.Minimal)
		}
		wantCost := chosen.RawCost
		if !chosen.Minimal {
			wantCost += last.Bias
		}
		if wantCost != d.Cost {
			t.Fatalf("raw cost %d + bias does not reproduce decision cost %d", chosen.RawCost, d.Cost)
		}
		// The recorded selection must be replayable: no other candidate beats
		// the chosen one under the recorded bias (strict < as in Route).
		for i := 0; i < int(last.NumCandidates); i++ {
			c := &last.Candidates[i]
			cost := c.RawCost
			if !c.Minimal {
				cost += last.Bias
			}
			if cost < d.Cost {
				t.Fatalf("candidate %d cost %d beats the recorded choice %d", i, cost, d.Cost)
			}
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d decisions with a non-full ring", tr.Dropped())
	}
}

func pathsEqual(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTraceChosenAlwaysKeptWithSmallK(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	tr, err := NewDecisionTrace(tt.Config().Groups, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	p.SetDecisionTrace(tr)
	rng := rand.New(rand.NewSource(22))
	view := ZeroView{Propagation: 10, CyclesPerFlit: 2}
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 2, Chassis: 1, Blade: 0})
	for i := 0; i < 50; i++ {
		d := p.Route(Adaptive, src, dst, 5, 0, view, int64(i), rng)
		var last *TracedDecision
		tr.ForEach(func(_ int, td *TracedDecision) { last = td })
		if last.NumCandidates != 1 || last.Chosen != 0 {
			t.Fatalf("k=1 trace kept %d candidates, chosen %d", last.NumCandidates, last.Chosen)
		}
		if !pathsEqual(last.Candidates[0].Path(), d.Path) {
			t.Fatalf("k=1 trace lost the chosen path: %v vs %v", last.Candidates[0].Path(), d.Path)
		}
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr, err := NewDecisionTrace(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tr.Add(1, TracedDecision{Now: int64(i)})
	}
	if tr.Len() != 4 || tr.Recorded() != 10 || tr.Dropped() != 6 {
		t.Fatalf("ring bookkeeping wrong: len=%d recorded=%d dropped=%d",
			tr.Len(), tr.Recorded(), tr.Dropped())
	}
	var seqs []uint64
	var nows []int64
	tr.ForEach(func(g int, d *TracedDecision) {
		if g != 1 {
			t.Fatalf("decision in group %d, want 1", g)
		}
		seqs = append(seqs, d.Seq)
		nows = append(nows, d.Now)
	})
	for i := range seqs {
		want := uint64(6 + i) // oldest surviving decision is #6 of 0..9
		if seqs[i] != want || nows[i] != int64(want) {
			t.Fatalf("position %d: seq=%d now=%d, want %d (oldest to newest)", i, seqs[i], nows[i], want)
		}
	}

	tr.Reset()
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatalf("Reset left state behind: len=%d recorded=%d", tr.Len(), tr.Recorded())
	}
	tr.Add(0, TracedDecision{})
	var first *TracedDecision
	tr.ForEach(func(_ int, d *TracedDecision) { first = d })
	if first == nil || first.Seq != 0 {
		t.Fatalf("post-Reset sequence should restart at 0: %+v", first)
	}
}

func TestHashedModesAreNotTraced(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	tr, err := NewDecisionTrace(tt.Config().Groups, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	p.SetDecisionTrace(tr)
	rng := rand.New(rand.NewSource(23))
	view := ZeroView{Propagation: 10, CyclesPerFlit: 2}
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 1, Chassis: 0, Blade: 0})
	for _, mode := range []Mode{MinHash, NonMinHash, InOrder} {
		p.Route(mode, src, dst, 5, 7, view, 0, rng)
	}
	p.Route(Adaptive, src, src, 5, 0, view, 0, rng) // loopback short-circuits too
	if tr.Recorded() != 0 {
		t.Fatalf("non-adaptive routes were traced: %d", tr.Recorded())
	}
}

func TestShardedPolicyRecordsPerGroupRings(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(3))
	sp, err := NewShardedPolicy(tt, DefaultParams(), tt.Config().Groups, 99)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDecisionTrace(tt.Config().Groups, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetDecisionTrace(tr)
	if sp.DecisionTrace() != tr {
		t.Fatal("sharded policy lost the recorder")
	}
	view := ZeroView{Propagation: 10, CyclesPerFlit: 2}
	for g := 0; g < tt.Config().Groups; g++ {
		src := tt.RouterAt(topo.Coord{Group: g, Chassis: 0, Blade: 0})
		dst := tt.RouterAt(topo.Coord{Group: (g + 1) % tt.Config().Groups, Chassis: 0, Blade: 0})
		for i := 0; i < g+1; i++ {
			sp.Route(g, Adaptive, src, dst, 5, 0, view, 0)
		}
	}
	perGroup := make(map[int]int)
	tr.ForEach(func(g int, d *TracedDecision) {
		perGroup[g]++
		if got := int(tt.GroupOf(d.Src)); got != g {
			t.Fatalf("group-%d ring holds a decision from group %d", g, got)
		}
	})
	for g := 0; g < tt.Config().Groups; g++ {
		if perGroup[g] != g+1 {
			t.Fatalf("group %d recorded %d decisions, want %d", g, perGroup[g], g+1)
		}
	}
}

// TestRouteAllocationFree is the tentpole's hot-path guarantee: Route must
// not allocate after warm-up, with tracing off (the default) AND with tracing
// on (rings are preallocated).
func TestRouteAllocationFree(t *testing.T) {
	p, tt := newTestPolicy(t, 3)
	rng := rand.New(rand.NewSource(31))
	// Convert to the interface once: boxing ZeroView per call would charge an
	// allocation to the measurement that Route itself never makes.
	var view CongestionView = ZeroView{Propagation: 10, CyclesPerFlit: 2}
	src := tt.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 0})
	dst := tt.RouterAt(topo.Coord{Group: 2, Chassis: 0, Blade: 1})
	route := func() { p.Route(Adaptive, src, dst, 5, 0, view, 0, rng) }

	for i := 0; i < 10; i++ {
		route() // warm up the candidate buffers
	}
	if allocs := testing.AllocsPerRun(200, route); allocs != 0 {
		t.Fatalf("Route with tracing OFF allocates %.1f/op, want 0", allocs)
	}

	tr, err := NewDecisionTrace(tt.Config().Groups, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	p.SetDecisionTrace(tr)
	for i := 0; i < 10; i++ {
		route()
	}
	if allocs := testing.AllocsPerRun(200, route); allocs != 0 {
		t.Fatalf("Route with tracing ON allocates %.1f/op, want 0", allocs)
	}
}
