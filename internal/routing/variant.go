package routing

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"dragonfly/internal/topo"
)

// Variant selects how the UGAL implementation partitions its mutable state.
//
// The paper's algorithm (ExactUGAL) draws every per-packet random candidate
// from one shared stream and costs candidates against an instantaneous
// machine-global congestion view; that coupling makes packet execution
// order-serial. ShardableUGAL relaxes exactly those two couplings — one
// deterministic RNG stream per dragonfly group and a per-group replicated
// congestion view refreshed once per lookahead window — so packet events
// become conforming-parallel under the sharded engine. The relaxation
// changes the simulated byte stream (it is a different, equally
// deterministic model, pinned by its own golden family), not just the
// wall-clock.
type Variant uint8

const (
	// ExactUGAL is the paper's serial-domain algorithm: shared RNG stream,
	// instantaneous global congestion view, byte-identical to the unsharded
	// engine at every shard count. The default.
	ExactUGAL Variant = iota
	// ShardableUGAL uses per-group RNG streams (seeded from (baseSeed,
	// group), independent of shard count) and per-group bounded-staleness
	// congestion replicas, unlocking concurrent packet execution inside
	// horizon windows.
	ShardableUGAL
)

// String returns the canonical spelling accepted by ParseVariant.
func (v Variant) String() string {
	switch v {
	case ExactUGAL:
		return "exact"
	case ShardableUGAL:
		return "shardable"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// ParseVariant converts a -routing-variant flag value to a Variant. The
// empty string and "exact" select the paper's serial algorithm; "shardable"
// selects the relaxed parallel one. Matching is case-insensitive and ignores
// surrounding whitespace.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact", "ugal", "serial":
		return ExactUGAL, nil
	case "shardable", "sharded", "parallel":
		return ShardableUGAL, nil
	default:
		return ExactUGAL, fmt.Errorf("routing: unknown variant %q (want exact or shardable)", s)
	}
}

// MaxStaleness bounds the replica-sync decimation factor K. The sync period
// is K × lookahead cycles; beyond a few dozen windows the congestion view is
// effectively static and larger values only invite overflow, so the grammar
// rejects them outright instead of silently saturating.
const MaxStaleness = 4096

// ParseStaleness converts a -staleness flag value to the replica-sync
// decimation factor K. The empty string means the default K=1 (refresh every
// lookahead boundary — PR 8 behaviour); otherwise the value must be a
// positive integer, optionally written as "staleness=K" (the routing-variant
// suffix spelling). Matching is case-insensitive and ignores surrounding
// whitespace.
func ParseStaleness(s string) (int, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 1, nil
	}
	if rest, ok := strings.CutPrefix(t, "staleness="); ok {
		t = strings.TrimSpace(rest)
	}
	k, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("routing: invalid staleness %q (want a positive integer K, sync period = K x lookahead)", s)
	}
	if k < 1 {
		return 0, fmt.Errorf("routing: staleness must be >= 1, got %d", k)
	}
	if k > MaxStaleness {
		return 0, fmt.Errorf("routing: staleness %d exceeds the maximum %d", k, MaxStaleness)
	}
	return k, nil
}

// ParseVariantSpec parses a routing-variant flag value with an optional
// replica-staleness suffix: "shardable", "shardable:staleness=4". The bare
// grammar is ParseVariant's; the suffix is ParseStaleness's "staleness=K"
// spelling and is only meaningful on the shardable variant (the exact
// algorithm has no replicas), so a staleness above 1 on "exact" is an error.
func ParseVariantSpec(s string) (Variant, int, error) {
	head, tail, found := strings.Cut(s, ":")
	v, err := ParseVariant(head)
	if err != nil {
		return ExactUGAL, 0, err
	}
	if !found {
		return v, 1, nil
	}
	t := strings.ToLower(strings.TrimSpace(tail))
	if !strings.HasPrefix(t, "staleness=") {
		return ExactUGAL, 0, fmt.Errorf("routing: unknown variant option %q (want staleness=K)", tail)
	}
	k, err := ParseStaleness(t)
	if err != nil {
		return ExactUGAL, 0, err
	}
	if k > 1 && v != ShardableUGAL {
		return ExactUGAL, 0, fmt.Errorf("routing: staleness=%d requires the shardable variant (exact has no congestion replicas)", k)
	}
	return v, k, nil
}

// splitmix64 is the SplitMix64 finalizer, used to derive independent
// per-group seeds from (baseSeed, group) without any cross-correlation
// between neighbouring group indices.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// LaneSeed derives the deterministic RNG seed of one group's routing lane
// from the engine seed. The derivation depends only on (seed, group) — never
// on shard count or worker identity — which is what makes ShardableUGAL
// output byte-identical across shard counts.
func LaneSeed(seed int64, group int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) + uint64(group)))
}

// ShardedPolicy is the ShardableUGAL routing state: one independent Policy
// (candidate-path scratch) and one deterministic RNG stream per dragonfly
// group. Each lane is only ever driven by the shard that owns its group, so
// concurrent windows never contend on path buffers or random state.
type ShardedPolicy struct {
	params Params
	seed   int64
	lanes  []policyLane
}

type policyLane struct {
	pol *Policy
	rng *rand.Rand
}

// NewShardedPolicy builds one routing lane per group over the topology.
func NewShardedPolicy(t *topo.Topology, params Params, groups int, seed int64) (*ShardedPolicy, error) {
	if groups < 1 {
		return nil, fmt.Errorf("routing: NewShardedPolicy needs at least one group, got %d", groups)
	}
	sp := &ShardedPolicy{params: params, seed: seed, lanes: make([]policyLane, groups)}
	for g := range sp.lanes {
		pol, err := NewPolicy(t, params)
		if err != nil {
			return nil, err
		}
		sp.lanes[g] = policyLane{pol: pol, rng: rand.New(rand.NewSource(LaneSeed(seed, g)))}
	}
	return sp, nil
}

// Groups returns the number of lanes.
func (sp *ShardedPolicy) Groups() int { return len(sp.lanes) }

// Params returns the shared policy parameters.
func (sp *ShardedPolicy) Params() Params { return sp.params }

// SetDecisionTrace attaches one shared recorder to every lane (nil detaches).
// Sharing is safe: lane g records only into the trace's group-g ring, and a
// lane is only ever driven by the shard that owns its group.
func (sp *ShardedPolicy) SetDecisionTrace(t *DecisionTrace) {
	for g := range sp.lanes {
		sp.lanes[g].pol.SetDecisionTrace(t)
	}
}

// DecisionTrace returns the attached recorder, or nil when tracing is off.
func (sp *ShardedPolicy) DecisionTrace() *DecisionTrace { return sp.lanes[0].pol.DecisionTrace() }

// Reset reseeds every lane from the new engine seed; lane g replays exactly
// the stream a freshly built ShardedPolicy(seed) would produce.
func (sp *ShardedPolicy) Reset(seed int64) {
	sp.seed = seed
	for g := range sp.lanes {
		sp.lanes[g].rng.Seed(LaneSeed(seed, g))
	}
}

// Route selects a path for one packet injected by group g, using the group's
// private policy scratch and RNG stream. The returned Decision aliases lane
// g's storage and is valid until the next Route on the same lane.
func (sp *ShardedPolicy) Route(g int, mode Mode, src, dst topo.RouterID, flits int,
	hash uint64, view CongestionView, now int64) Decision {
	lane := &sp.lanes[g]
	return lane.pol.Route(mode, src, dst, flits, hash, view, now, lane.rng)
}
