package routing

import (
	"fmt"
	"math/rand"
	"strings"

	"dragonfly/internal/topo"
)

// Variant selects how the UGAL implementation partitions its mutable state.
//
// The paper's algorithm (ExactUGAL) draws every per-packet random candidate
// from one shared stream and costs candidates against an instantaneous
// machine-global congestion view; that coupling makes packet execution
// order-serial. ShardableUGAL relaxes exactly those two couplings — one
// deterministic RNG stream per dragonfly group and a per-group replicated
// congestion view refreshed once per lookahead window — so packet events
// become conforming-parallel under the sharded engine. The relaxation
// changes the simulated byte stream (it is a different, equally
// deterministic model, pinned by its own golden family), not just the
// wall-clock.
type Variant uint8

const (
	// ExactUGAL is the paper's serial-domain algorithm: shared RNG stream,
	// instantaneous global congestion view, byte-identical to the unsharded
	// engine at every shard count. The default.
	ExactUGAL Variant = iota
	// ShardableUGAL uses per-group RNG streams (seeded from (baseSeed,
	// group), independent of shard count) and per-group bounded-staleness
	// congestion replicas, unlocking concurrent packet execution inside
	// horizon windows.
	ShardableUGAL
)

// String returns the canonical spelling accepted by ParseVariant.
func (v Variant) String() string {
	switch v {
	case ExactUGAL:
		return "exact"
	case ShardableUGAL:
		return "shardable"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// ParseVariant converts a -routing-variant flag value to a Variant. The
// empty string and "exact" select the paper's serial algorithm; "shardable"
// selects the relaxed parallel one. Matching is case-insensitive and ignores
// surrounding whitespace.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact", "ugal", "serial":
		return ExactUGAL, nil
	case "shardable", "sharded", "parallel":
		return ShardableUGAL, nil
	default:
		return ExactUGAL, fmt.Errorf("routing: unknown variant %q (want exact or shardable)", s)
	}
}

// splitmix64 is the SplitMix64 finalizer, used to derive independent
// per-group seeds from (baseSeed, group) without any cross-correlation
// between neighbouring group indices.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// LaneSeed derives the deterministic RNG seed of one group's routing lane
// from the engine seed. The derivation depends only on (seed, group) — never
// on shard count or worker identity — which is what makes ShardableUGAL
// output byte-identical across shard counts.
func LaneSeed(seed int64, group int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) + uint64(group)))
}

// ShardedPolicy is the ShardableUGAL routing state: one independent Policy
// (candidate-path scratch) and one deterministic RNG stream per dragonfly
// group. Each lane is only ever driven by the shard that owns its group, so
// concurrent windows never contend on path buffers or random state.
type ShardedPolicy struct {
	params Params
	seed   int64
	lanes  []policyLane
}

type policyLane struct {
	pol *Policy
	rng *rand.Rand
}

// NewShardedPolicy builds one routing lane per group over the topology.
func NewShardedPolicy(t *topo.Topology, params Params, groups int, seed int64) (*ShardedPolicy, error) {
	if groups < 1 {
		return nil, fmt.Errorf("routing: NewShardedPolicy needs at least one group, got %d", groups)
	}
	sp := &ShardedPolicy{params: params, seed: seed, lanes: make([]policyLane, groups)}
	for g := range sp.lanes {
		pol, err := NewPolicy(t, params)
		if err != nil {
			return nil, err
		}
		sp.lanes[g] = policyLane{pol: pol, rng: rand.New(rand.NewSource(LaneSeed(seed, g)))}
	}
	return sp, nil
}

// Groups returns the number of lanes.
func (sp *ShardedPolicy) Groups() int { return len(sp.lanes) }

// Params returns the shared policy parameters.
func (sp *ShardedPolicy) Params() Params { return sp.params }

// Reset reseeds every lane from the new engine seed; lane g replays exactly
// the stream a freshly built ShardedPolicy(seed) would produce.
func (sp *ShardedPolicy) Reset(seed int64) {
	sp.seed = seed
	for g := range sp.lanes {
		sp.lanes[g].rng.Seed(LaneSeed(seed, g))
	}
}

// Route selects a path for one packet injected by group g, using the group's
// private policy scratch and RNG stream. The returned Decision aliases lane
// g's storage and is valid until the next Route on the same lane.
func (sp *ShardedPolicy) Route(g int, mode Mode, src, dst topo.RouterID, flits int,
	hash uint64, view CongestionView, now int64) Decision {
	lane := &sp.lanes[g]
	return lane.pol.Route(mode, src, dst, flits, hash, view, now, lane.rng)
}
