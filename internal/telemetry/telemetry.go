// Package telemetry provides fabric-wide performance-counter collection, in
// the spirit of the monitoring infrastructures discussed in the paper's
// related work (network-wide counter collection and congestion visualization
// on Cray XC systems). A Collector samples every router tile and every NIC at
// a fixed period of simulated time and keeps per-interval deltas, so that
// experiments can answer questions the cumulative counters cannot: when did a
// tier saturate, which group pair carried the interfering traffic, how did the
// stall rate evolve while a job was running.
//
// The paper itself warns (§2.3, §3.2) that tile counters mix traffic from all
// jobs and must not be used to attribute noise to a cause; the collector is a
// system-operator view, complementing the per-NIC counters the
// application-aware selector relies on.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"dragonfly/internal/counters"
	"dragonfly/internal/network"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
)

// Config configures a Collector.
type Config struct {
	// IntervalCycles is the sampling period.
	IntervalCycles int64
	// TopLinks is the number of hottest links recorded per sample (0 disables
	// the per-sample hot list).
	TopLinks int
	// TrackGroupMatrix enables the per-sample group-to-group flit matrix,
	// built from the global links' traffic.
	TrackGroupMatrix bool
}

// DefaultConfig returns a collector configuration with a moderate sampling
// rate suitable for the experiments in this repository.
func DefaultConfig() Config {
	return Config{IntervalCycles: 50_000, TopLinks: 4, TrackGroupMatrix: true}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.IntervalCycles <= 0 {
		return fmt.Errorf("telemetry: IntervalCycles must be > 0")
	}
	if c.TopLinks < 0 {
		return fmt.Errorf("telemetry: TopLinks must be >= 0")
	}
	return nil
}

// TierSample aggregates the traffic of one link tier during one interval.
type TierSample struct {
	// Flits and StalledCycles are the interval deltas summed over the tier.
	Flits         uint64
	StalledCycles uint64
	// MeanUtilization and MaxUtilization are computed over the tier's links
	// for the interval.
	MeanUtilization float64
	MaxUtilization  float64
}

// HotLink identifies a link and its utilization during one interval.
type HotLink struct {
	Link        topo.Link
	Utilization float64
	Flits       uint64
}

// Sample is the collector's record of one interval.
type Sample struct {
	// Start and End delimit the interval in simulated time.
	Start, End sim.Time
	// Tiers holds per-tier aggregates indexed by topo.LinkType.
	Tiers [3]TierSample
	// NIC is the interval delta summed over every NIC in the system.
	NIC counters.NIC
	// Hottest lists the most utilized links of the interval (configurable).
	Hottest []HotLink
	// GroupMatrix[src][dst] is the number of flits carried by global links from
	// group src to group dst during the interval (nil unless enabled).
	GroupMatrix [][]uint64
}

// WindowCycles returns the length of the interval.
func (s Sample) WindowCycles() uint64 { return uint64(s.End - s.Start) }

// MaxUtilization returns the highest per-link utilization seen in the sample
// across all tiers.
func (s Sample) MaxUtilization() float64 {
	max := 0.0
	for _, t := range s.Tiers {
		if t.MaxUtilization > max {
			max = t.MaxUtilization
		}
	}
	return max
}

// Collector periodically samples the fabric's counters.
type Collector struct {
	fabric *network.Fabric
	cfg    Config

	running bool
	stopAt  sim.Time

	prevTiles []counters.Tile
	prevNIC   counters.NIC
	lastAt    sim.Time

	samples []Sample
}

// NewCollector builds a collector for the fabric.
func NewCollector(f *network.Fabric, cfg Config) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Collector{
		fabric:    f,
		cfg:       cfg,
		prevTiles: make([]counters.Tile, f.Topology().NumLinks()),
	}, nil
}

// MustNewCollector is like NewCollector but panics on error.
func MustNewCollector(f *network.Fabric, cfg Config) *Collector {
	c, err := NewCollector(f, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Samples returns the samples collected so far. The caller must not modify the
// returned slice.
func (c *Collector) Samples() []Sample { return c.samples }

// Start begins periodic sampling from the current simulated time until the
// given deadline. The baseline for the first interval is taken at Start.
func (c *Collector) Start(until sim.Time) {
	eng := c.fabric.Engine()
	c.running = true
	c.stopAt = until
	c.lastAt = eng.Now()
	c.snapshotBaseline()
	eng.After(c.cfg.IntervalCycles, c.tick)
}

// Stop prevents further samples from being scheduled.
func (c *Collector) Stop() { c.running = false }

// snapshotBaseline records the current cumulative counters as the baseline of
// the next interval.
func (c *Collector) snapshotBaseline() {
	t := c.fabric.Topology()
	for i := 0; i < t.NumLinks(); i++ {
		c.prevTiles[i] = c.fabric.TileCounters(topo.LinkID(i))
	}
	c.prevNIC = c.totalNIC()
}

// totalNIC sums the NIC counters of every node.
func (c *Collector) totalNIC() counters.NIC {
	var total counters.NIC
	t := c.fabric.Topology()
	for n := 0; n < t.NumNodes(); n++ {
		total.Add(c.fabric.NodeCounters(topo.NodeID(n)))
	}
	return total
}

// tick records one sample and reschedules itself.
func (c *Collector) tick() {
	eng := c.fabric.Engine()
	if !c.running {
		return
	}
	c.record()
	if eng.Now() >= c.stopAt {
		c.running = false
		return
	}
	eng.After(c.cfg.IntervalCycles, c.tick)
}

// Flush records a final partial sample covering the time since the last tick.
// It is useful when the workload finishes between sampling points.
func (c *Collector) Flush() {
	if c.fabric.Engine().Now() > c.lastAt {
		c.record()
	}
}

// record computes the interval deltas and appends a sample.
func (c *Collector) record() {
	t := c.fabric.Topology()
	now := c.fabric.Engine().Now()
	window := uint64(now - c.lastAt)
	if window == 0 {
		return
	}
	s := Sample{Start: c.lastAt, End: now}
	if c.cfg.TrackGroupMatrix {
		g := t.Config().Groups
		s.GroupMatrix = make([][]uint64, g)
		for i := range s.GroupMatrix {
			s.GroupMatrix[i] = make([]uint64, g)
		}
	}

	type linkUtil struct {
		link topo.Link
		u    float64
		f    uint64
	}
	var hot []linkUtil
	perTier := [3]struct {
		links int
		sum   float64
	}{}
	for _, l := range t.Links() {
		cur := c.fabric.TileCounters(l.ID)
		delta := cur.Sub(c.prevTiles[l.ID])
		c.prevTiles[l.ID] = cur
		u := delta.Utilization(window)
		ts := &s.Tiers[l.Type]
		ts.Flits += delta.FlitsTraversed
		ts.StalledCycles += delta.StalledCycles
		if u > ts.MaxUtilization {
			ts.MaxUtilization = u
		}
		perTier[l.Type].links++
		perTier[l.Type].sum += u
		if c.cfg.TopLinks > 0 && delta.FlitsTraversed > 0 {
			hot = append(hot, linkUtil{link: l, u: u, f: delta.FlitsTraversed})
		}
		if s.GroupMatrix != nil && l.Type == topo.LinkGlobal {
			src := int(t.GroupOf(l.Src))
			dst := int(t.GroupOf(l.Dst))
			s.GroupMatrix[src][dst] += delta.FlitsTraversed
		}
	}
	for i := range s.Tiers {
		if perTier[i].links > 0 {
			s.Tiers[i].MeanUtilization = perTier[i].sum / float64(perTier[i].links)
		}
	}
	if c.cfg.TopLinks > 0 {
		sort.Slice(hot, func(i, j int) bool {
			if hot[i].u != hot[j].u {
				return hot[i].u > hot[j].u
			}
			return hot[i].link.ID < hot[j].link.ID
		})
		n := c.cfg.TopLinks
		if n > len(hot) {
			n = len(hot)
		}
		for _, h := range hot[:n] {
			s.Hottest = append(s.Hottest, HotLink{Link: h.link, Utilization: h.u, Flits: h.f})
		}
	}

	nicNow := c.totalNIC()
	s.NIC = nicNow.Sub(c.prevNIC)
	c.prevNIC = nicNow
	c.lastAt = now
	c.samples = append(c.samples, s)
}

// Series extracts one named metric from every sample. Supported metrics:
// "max-util", "mean-global-util", "global-flits", "stall-ratio",
// "packet-latency".
func (c *Collector) Series(metric string) ([]float64, error) {
	out := make([]float64, 0, len(c.samples))
	for _, s := range c.samples {
		switch metric {
		case "max-util":
			out = append(out, s.MaxUtilization())
		case "mean-global-util":
			out = append(out, s.Tiers[topo.LinkGlobal].MeanUtilization)
		case "global-flits":
			out = append(out, float64(s.Tiers[topo.LinkGlobal].Flits))
		case "stall-ratio":
			out = append(out, s.NIC.StallRatio())
		case "packet-latency":
			out = append(out, s.NIC.AvgPacketLatency())
		default:
			return nil, fmt.Errorf("telemetry: unknown metric %q", metric)
		}
	}
	return out, nil
}

// HotspotIntervals returns the indices of samples whose maximum link
// utilization reaches the threshold (a congestion-event detector).
func (c *Collector) HotspotIntervals(threshold float64) []int {
	var out []int
	for i, s := range c.samples {
		if s.MaxUtilization() >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// AggregateGroupMatrix sums the group-to-group flit matrices over all samples.
// It returns nil when matrix tracking is disabled.
func (c *Collector) AggregateGroupMatrix() [][]uint64 {
	var agg [][]uint64
	for _, s := range c.samples {
		if s.GroupMatrix == nil {
			continue
		}
		if agg == nil {
			agg = make([][]uint64, len(s.GroupMatrix))
			for i := range agg {
				agg[i] = make([]uint64, len(s.GroupMatrix[i]))
			}
		}
		for i := range s.GroupMatrix {
			for j := range s.GroupMatrix[i] {
				agg[i][j] += s.GroupMatrix[i][j]
			}
		}
	}
	return agg
}

// Table converts the sample series into a result table (one row per interval)
// for CSV export and experiment output.
func (c *Collector) Table(title string) *trace.Table {
	t := trace.NewTable(title,
		"start", "end", "max_util", "global_mean_util", "global_flits",
		"intragroup_flits", "intrachassis_flits", "stall_ratio", "packet_latency")
	for _, s := range c.samples {
		t.AddRow(s.Start, s.End, s.MaxUtilization(),
			s.Tiers[topo.LinkGlobal].MeanUtilization,
			s.Tiers[topo.LinkGlobal].Flits,
			s.Tiers[topo.LinkIntraGroup].Flits,
			s.Tiers[topo.LinkIntraChassis].Flits,
			s.NIC.StallRatio(), s.NIC.AvgPacketLatency())
	}
	return t
}

// RenderGroupHeatmap renders a group-to-group traffic matrix as a small ASCII
// heatmap: each cell is a digit 0-9 proportional to the cell's share of the
// maximum cell, '.' for zero.
func RenderGroupHeatmap(matrix [][]uint64) string {
	if len(matrix) == 0 {
		return "(no group traffic recorded)\n"
	}
	var max uint64
	for _, row := range matrix {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "group-to-group flits (max cell = %d)\n     ", max)
	for j := range matrix {
		fmt.Fprintf(&b, "g%-3d", j)
	}
	b.WriteString("\n")
	for i, row := range matrix {
		fmt.Fprintf(&b, "g%-3d ", i)
		for _, v := range row {
			if v == 0 || max == 0 {
				b.WriteString(".   ")
				continue
			}
			level := int(9 * float64(v) / float64(max))
			fmt.Fprintf(&b, "%-4d", level)
		}
		b.WriteString("\n")
	}
	return b.String()
}
