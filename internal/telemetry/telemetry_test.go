package telemetry

import (
	"strings"
	"testing"

	"dragonfly/internal/alloc"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// testFabric builds a small multi-group fabric.
func testFabric(t testing.TB, groups int, seed int64) *network.Fabric {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(groups))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	return network.MustNew(eng, tt, pol, network.DefaultConfig())
}

// startTraffic places a uniform background job over all nodes and starts it.
func startTraffic(t testing.TB, f *network.Fabric, until sim.Time, interval int64) *noise.Generator {
	t.Helper()
	a := alloc.MustAllocate(f.Topology(), alloc.GroupStriped, f.Topology().NumNodes(), nil, nil)
	cfg := noise.DefaultGeneratorConfig()
	cfg.IntervalCycles = interval
	g := noise.MustNewGenerator(f, a.Nodes(), cfg)
	g.Start(until)
	return g
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{IntervalCycles: 0}).Validate(); err == nil {
		t.Fatal("expected error for zero interval")
	}
	if err := (Config{IntervalCycles: 10, TopLinks: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative TopLinks")
	}
}

func TestCollectorSamplesTraffic(t *testing.T) {
	f := testFabric(t, 3, 1)
	const horizon = 500_000
	startTraffic(t, f, horizon, 5_000)
	col := MustNewCollector(f, Config{IntervalCycles: 50_000, TopLinks: 3, TrackGroupMatrix: true})
	col.Start(horizon)
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	samples := col.Samples()
	if len(samples) < 5 {
		t.Fatalf("collected %d samples, want >= 5", len(samples))
	}
	var sawFlits, sawHot, sawNIC bool
	for _, s := range samples {
		if s.WindowCycles() == 0 {
			t.Fatal("sample with empty window")
		}
		total := s.Tiers[topo.LinkGlobal].Flits + s.Tiers[topo.LinkIntraGroup].Flits + s.Tiers[topo.LinkIntraChassis].Flits
		if total > 0 {
			sawFlits = true
		}
		if len(s.Hottest) > 0 {
			sawHot = true
			if s.Hottest[0].Utilization < 0 || s.Hottest[0].Utilization > 1 {
				t.Fatalf("hot link utilization out of range: %f", s.Hottest[0].Utilization)
			}
		}
		if s.NIC.RequestPackets > 0 {
			sawNIC = true
		}
		if s.MaxUtilization() < 0 || s.MaxUtilization() > 1 {
			t.Fatalf("max utilization out of range: %f", s.MaxUtilization())
		}
	}
	if !sawFlits || !sawHot || !sawNIC {
		t.Fatalf("samples missed traffic: flits=%v hot=%v nic=%v", sawFlits, sawHot, sawNIC)
	}
}

func TestIntervalDeltasSumToCumulative(t *testing.T) {
	f := testFabric(t, 2, 2)
	const horizon = 300_000
	startTraffic(t, f, horizon, 4_000)
	col := MustNewCollector(f, Config{IntervalCycles: 25_000, TrackGroupMatrix: false})
	col.Start(horizon)
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	col.Flush()
	var sampled uint64
	for _, s := range col.Samples() {
		for _, tier := range s.Tiers {
			sampled += tier.Flits
		}
	}
	var cumulative uint64
	for _, l := range f.Topology().Links() {
		cumulative += f.TileCounters(l.ID).FlitsTraversed
	}
	if sampled != cumulative {
		t.Fatalf("interval deltas sum to %d flits, cumulative counters report %d", sampled, cumulative)
	}
}

func TestSeriesAndHotspots(t *testing.T) {
	f := testFabric(t, 2, 3)
	const horizon = 200_000
	startTraffic(t, f, horizon, 2_000)
	col := MustNewCollector(f, DefaultConfig())
	col.Start(horizon)
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"max-util", "mean-global-util", "global-flits", "stall-ratio", "packet-latency"} {
		series, err := col.Series(metric)
		if err != nil {
			t.Fatalf("Series(%q): %v", metric, err)
		}
		if len(series) != len(col.Samples()) {
			t.Fatalf("Series(%q) length %d != samples %d", metric, len(series), len(col.Samples()))
		}
	}
	if _, err := col.Series("bogus"); err == nil {
		t.Fatal("expected error for unknown metric")
	}
	// Threshold 0 marks every sample; an impossible threshold marks none.
	if got := col.HotspotIntervals(0); len(got) != len(col.Samples()) {
		t.Fatalf("threshold 0 marked %d of %d samples", len(got), len(col.Samples()))
	}
	if got := col.HotspotIntervals(2.0); len(got) != 0 {
		t.Fatalf("threshold 2.0 marked %d samples, want 0", len(got))
	}
}

func TestGroupMatrixCapturesInterGroupTraffic(t *testing.T) {
	f := testFabric(t, 3, 4)
	// Send exclusively between two nodes in different groups.
	src := f.Topology().NodesOfRouter(f.Topology().RouterAt(topo.Coord{Group: 0}))[0]
	dst := f.Topology().NodesOfRouter(f.Topology().RouterAt(topo.Coord{Group: 2}))[0]
	col := MustNewCollector(f, Config{IntervalCycles: 10_000, TrackGroupMatrix: true})
	col.Start(1 << 30)
	for i := 0; i < 20; i++ {
		if err := f.Send(src, dst, 4096, network.SendOptions{Mode: routing.MinHash}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	col.Stop()
	col.Flush()
	agg := col.AggregateGroupMatrix()
	if agg == nil {
		t.Fatal("group matrix not collected")
	}
	var total, fromG0 uint64
	for i := range agg {
		for j := range agg[i] {
			total += agg[i][j]
			if i == 0 {
				fromG0 += agg[i][j]
			}
		}
	}
	if total == 0 {
		t.Fatal("group matrix recorded no inter-group flits")
	}
	if fromG0 == 0 {
		t.Fatal("minimal routing from group 0 left no trace in row 0 of the matrix")
	}
}

func TestTableAndHeatmapRendering(t *testing.T) {
	f := testFabric(t, 2, 5)
	const horizon = 100_000
	startTraffic(t, f, horizon, 3_000)
	col := MustNewCollector(f, DefaultConfig())
	col.Start(horizon)
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	tab := col.Table("telemetry")
	if got := tab.String(); !strings.Contains(got, "max_util") {
		t.Fatalf("table rendering missing headers:\n%s", got)
	}
	hm := RenderGroupHeatmap(col.AggregateGroupMatrix())
	if !strings.Contains(hm, "group-to-group") {
		t.Fatalf("heatmap rendering unexpected:\n%s", hm)
	}
	if empty := RenderGroupHeatmap(nil); !strings.Contains(empty, "no group traffic") {
		t.Fatalf("empty heatmap rendering unexpected: %q", empty)
	}
}

func TestStopPreventsFurtherSamples(t *testing.T) {
	f := testFabric(t, 2, 6)
	startTraffic(t, f, 200_000, 3_000)
	col := MustNewCollector(f, Config{IntervalCycles: 10_000})
	col.Start(1 << 30)
	f.Engine().After(50_000, col.Stop)
	if err := f.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(col.Samples()); n > 6 {
		t.Fatalf("collected %d samples after Stop at 50k cycles with 10k interval", n)
	}
}

func TestFlushOnIdleFabricAddsNothing(t *testing.T) {
	f := testFabric(t, 2, 7)
	col := MustNewCollector(f, DefaultConfig())
	col.Start(1000)
	col.Flush() // no time has passed
	if len(col.Samples()) != 0 {
		t.Fatalf("flush on idle collector produced %d samples", len(col.Samples()))
	}
}
