package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// testFabric builds a small fabric for scheduler tests.
func testFabric(t testing.TB, groups int, seed int64) *network.Fabric {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(groups))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	return network.MustNew(eng, tt, pol, network.DefaultConfig())
}

// drain runs the simulation until no events remain.
func drain(t testing.TB, f *network.Fabric) {
	t.Helper()
	if err := f.Engine().Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func computeJob(name string, nodes int, arrival, duration sim.Time) JobSpec {
	return JobSpec{Name: name, Nodes: nodes, ArrivalCycles: arrival, DurationCycles: duration}
}

func trafficJob(name string, nodes int, arrival, duration sim.Time) JobSpec {
	j := computeJob(name, nodes, arrival, duration)
	j.Traffic = TrafficSpec{
		Pattern:        noise.UniformRandom,
		MessageBytes:   4 << 10,
		IntervalCycles: 10_000,
		Mode:           routing.Adaptive,
	}
	return j
}

func TestSingleJobLifecycle(t *testing.T) {
	f := testFabric(t, 2, 1)
	s := New(f, DefaultConfig())
	rec := s.MustSubmit(computeJob("a", 4, 100, 10_000))
	s.Start()
	drain(t, f)
	if rec.State != Finished {
		t.Fatalf("job state = %v, want finished", rec.State)
	}
	if rec.SubmittedAt != 100 {
		t.Fatalf("SubmittedAt = %d, want 100", rec.SubmittedAt)
	}
	if rec.StartedAt != 100 {
		t.Fatalf("StartedAt = %d, want 100 (machine was empty)", rec.StartedAt)
	}
	if got := rec.FinishedAt - rec.StartedAt; got != 10_000 {
		t.Fatalf("run time = %d, want 10000", got)
	}
	if rec.Allocation == nil || rec.Allocation.Size() != 4 {
		t.Fatalf("allocation missing or wrong size: %v", rec.Allocation)
	}
	if s.FreeNodes() != f.Topology().NumNodes() {
		t.Fatalf("nodes not released: %d free of %d", s.FreeNodes(), f.Topology().NumNodes())
	}
}

func TestJobsQueueWhenMachineFull(t *testing.T) {
	f := testFabric(t, 2, 2) // 2 groups x 2 chassis x 4 blades x 2 nodes = 32 nodes
	total := f.Topology().NumNodes()
	s := New(f, DefaultConfig())
	a := s.MustSubmit(computeJob("big", total, 0, 50_000))
	b := s.MustSubmit(computeJob("next", 4, 0, 10_000))
	s.Start()
	drain(t, f)
	if a.State != Finished || b.State != Finished {
		t.Fatalf("jobs did not finish: %v %v", a.State, b.State)
	}
	if b.StartedAt < a.FinishedAt {
		t.Fatalf("second job started at %d before the machine drained at %d", b.StartedAt, a.FinishedAt)
	}
	if b.WaitCycles() < 50_000 {
		t.Fatalf("second job waited %d cycles, want >= 50000", b.WaitCycles())
	}
}

func TestFCFSOrderWithoutBackfill(t *testing.T) {
	f := testFabric(t, 2, 3)
	total := f.Topology().NumNodes()
	s := New(f, Config{Placement: PlaceContiguous, Backfill: false, Seed: 1})
	s.MustSubmit(computeJob("running", total/2, 0, 100_000))
	blocked := s.MustSubmit(computeJob("head-too-big", total, 10, 10_000))
	small := s.MustSubmit(computeJob("small", 2, 20, 1_000))
	s.Start()
	drain(t, f)
	// Without backfilling, the small job must not overtake the blocked head.
	if small.StartedAt < blocked.StartedAt {
		t.Fatalf("small job started at %d before the queue head at %d without backfill",
			small.StartedAt, blocked.StartedAt)
	}
}

func TestBackfillLetsSmallJobOvertake(t *testing.T) {
	f := testFabric(t, 2, 4)
	total := f.Topology().NumNodes()
	s := New(f, Config{Placement: PlaceContiguous, Backfill: true, Seed: 1})
	s.MustSubmit(computeJob("running", total/2, 0, 100_000))
	blocked := s.MustSubmit(computeJob("head-too-big", total, 10, 10_000))
	// Short enough to finish before the running job frees the machine.
	small := s.MustSubmit(computeJob("small", 2, 20, 1_000))
	s.Start()
	drain(t, f)
	if small.StartedAt >= blocked.StartedAt {
		t.Fatalf("backfill did not let the small job (start %d) overtake the blocked head (start %d)",
			small.StartedAt, blocked.StartedAt)
	}
	if blocked.State != Finished {
		t.Fatalf("blocked head never ran")
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	f := testFabric(t, 2, 5)
	total := f.Topology().NumNodes()
	s := New(f, Config{Placement: PlaceContiguous, Backfill: true, Seed: 1})
	s.MustSubmit(computeJob("running", total-2, 0, 50_000))
	head := s.MustSubmit(computeJob("head", total, 10, 10_000))
	// Too long to fit in the shadow window: would push the head back.
	long := s.MustSubmit(computeJob("long", 2, 20, 500_000))
	s.Start()
	drain(t, f)
	if long.StartedAt < head.StartedAt {
		t.Fatalf("conservative backfill started a long job (at %d) ahead of the head (at %d)",
			long.StartedAt, head.StartedAt)
	}
}

func TestReserveExcludesForegroundNodes(t *testing.T) {
	f := testFabric(t, 2, 6)
	total := f.Topology().NumNodes()
	reserved := []topo.NodeID{0, 1, 2, 3}
	s := New(f, Config{Placement: PlaceContiguous, Seed: 1})
	s.Reserve(reserved)
	rec := s.MustSubmit(computeJob("a", total-len(reserved), 0, 1_000))
	s.Start()
	drain(t, f)
	if rec.State != Finished {
		t.Fatalf("job did not finish: %v", rec.State)
	}
	for _, n := range rec.Allocation.Nodes() {
		for _, r := range reserved {
			if n == r {
				t.Fatalf("scheduler placed job on reserved node %d", n)
			}
		}
	}
	// A job larger than the schedulable machine must be rejected.
	if _, err := s.Submit(computeJob("too-big", total, 0, 1_000)); err == nil {
		t.Fatal("expected error for job larger than the schedulable machine")
	}
}

func TestTrafficJobInjectsMessages(t *testing.T) {
	f := testFabric(t, 2, 7)
	s := New(f, Config{Placement: PlaceGroupStriped, Seed: 1})
	rec := s.MustSubmit(trafficJob("noisy", 8, 0, 500_000))
	s.Start()
	drain(t, f)
	if rec.MessagesSent == 0 {
		t.Fatal("running traffic job injected no messages")
	}
	if f.PacketsInjected() == 0 {
		t.Fatal("fabric saw no packets from the scheduled job")
	}
}

func TestHybridPlacementScattersCommIntensiveJobs(t *testing.T) {
	f := testFabric(t, 4, 8)
	s := New(f, Config{Placement: PlaceHybrid, Seed: 3})
	quiet := computeJob("quiet", 8, 0, 10_000)
	noisy := computeJob("noisy", 8, 0, 10_000)
	noisy.CommIntensive = true
	q := s.MustSubmit(quiet)
	n := s.MustSubmit(noisy)
	s.Start()
	drain(t, f)
	if q.GroupsSpanned != 1 {
		t.Fatalf("hybrid policy spread a quiet job over %d groups, want 1", q.GroupsSpanned)
	}
	if n.GroupsSpanned <= 1 {
		t.Fatalf("hybrid policy packed a communication-intensive job into %d group(s)", n.GroupsSpanned)
	}
}

func TestContiguousVersusRandomFragmentation(t *testing.T) {
	groupsSpanned := func(placement AllocationPolicy, seed int64) float64 {
		f := testFabric(t, 4, seed)
		s := New(f, Config{Placement: placement, Seed: seed})
		for i := 0; i < 4; i++ {
			s.MustSubmit(computeJob("j", 6, sim.Time(i*10), 5_000))
		}
		s.Start()
		drain(t, f)
		return s.Stats().MeanGroupsSpanned
	}
	contig := groupsSpanned(PlaceContiguous, 9)
	random := groupsSpanned(PlaceRandom, 9)
	if contig >= random {
		t.Fatalf("contiguous placement spans %.2f groups on average, random %.2f; expected contiguous < random",
			contig, random)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := testFabric(t, 2, 10)
	s := New(f, DefaultConfig())
	s.MustSubmit(computeJob("a", 4, 0, 10_000))
	s.MustSubmit(computeJob("b", 4, 0, 10_000))
	s.Start()
	drain(t, f)
	st := s.Stats()
	if st.Submitted != 2 || st.Started != 2 || st.Finished != 2 {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization out of range: %f", st.Utilization)
	}
	if st.MakespanCycles < 10_000 {
		t.Fatalf("makespan %d too small", st.MakespanCycles)
	}
	if got := len(s.SortedByStart()); got != 2 {
		t.Fatalf("SortedByStart returned %d records, want 2", got)
	}
}

func TestSubmitAfterStart(t *testing.T) {
	f := testFabric(t, 2, 11)
	s := New(f, DefaultConfig())
	s.Start()
	rec := s.MustSubmit(computeJob("late", 2, 500, 1_000))
	drain(t, f)
	if rec.State != Finished {
		t.Fatalf("late-submitted job did not finish: %v", rec.State)
	}
	if rec.SubmittedAt != 500 {
		t.Fatalf("late job submitted at %d, want 500", rec.SubmittedAt)
	}
}

func TestJobSpecValidation(t *testing.T) {
	cases := []JobSpec{
		{Name: "zero-nodes", Nodes: 0, DurationCycles: 1},
		{Name: "too-big", Nodes: 1000, DurationCycles: 1},
		{Name: "negative-arrival", Nodes: 1, ArrivalCycles: -1, DurationCycles: 1},
		{Name: "zero-duration", Nodes: 1, DurationCycles: 0},
		{Name: "traffic-no-interval", Nodes: 2, DurationCycles: 1,
			Traffic: TrafficSpec{MessageBytes: 64}},
	}
	for _, c := range cases {
		if err := c.Validate(32); err == nil {
			t.Errorf("spec %q unexpectedly valid", c.Name)
		}
	}
	ok := computeJob("ok", 2, 0, 10)
	if err := ok.Validate(32); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestAllocationPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []AllocationPolicy{PlaceContiguous, PlaceRandom, PlaceGroupStriped, PlaceHybrid} {
		got, err := ParseAllocationPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseAllocationPolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip of %v gave %v", p, got)
		}
	}
	if _, err := ParseAllocationPolicy("bogus"); err == nil {
		t.Fatal("expected error for unknown policy name")
	}
}

func TestGenerateMixProperties(t *testing.T) {
	cfg := DefaultMixConfig()
	cfg.Jobs = 40
	specs, err := GenerateMix(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 40 {
		t.Fatalf("generated %d jobs, want 40", len(specs))
	}
	var prevArrival sim.Time = -1
	commIntensive := 0
	for _, s := range specs {
		if err := s.Validate(16); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}
		if s.ArrivalCycles < prevArrival {
			t.Fatalf("arrivals not monotonic: %d after %d", s.ArrivalCycles, prevArrival)
		}
		prevArrival = s.ArrivalCycles
		if s.Nodes < cfg.MinNodes || s.Nodes > 16 {
			t.Fatalf("job size %d out of [%d, 16]", s.Nodes, cfg.MinNodes)
		}
		if s.CommIntensive {
			commIntensive++
		}
	}
	if commIntensive == 0 || commIntensive == len(specs) {
		t.Fatalf("degenerate communication-intensive share: %d of %d", commIntensive, len(specs))
	}
}

func TestGenerateMixIsDeterministic(t *testing.T) {
	cfg := DefaultMixConfig()
	a := MustGenerateMix(cfg, 16)
	b := MustGenerateMix(cfg, 16)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix not deterministic at job %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateMixRejectsBadConfig(t *testing.T) {
	bad := DefaultMixConfig()
	bad.MaxNodes = 0
	if _, err := GenerateMix(bad, 16); err == nil {
		t.Fatal("expected error for invalid node bounds")
	}
	bad = DefaultMixConfig()
	bad.CommIntensiveFraction = 1.5
	if _, err := GenerateMix(bad, 16); err == nil {
		t.Fatal("expected error for out-of-range fraction")
	}
	if _, err := GenerateMix(DefaultMixConfig(), 1); err == nil {
		t.Fatal("expected error when the machine is smaller than MinNodes")
	}
}

func TestLogUniformStaysInBounds(t *testing.T) {
	prop := func(seed int64, loRaw, spanRaw uint16) bool {
		lo := int64(loRaw%100) + 1
		hi := lo + int64(spanRaw%1000)
		rng := rand.New(rand.NewSource(seed))
		v := logUniform(rng, lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerNeverOversubscribes runs a random mix and checks the busy-node
// invariant after the run: every job got a disjoint allocation while running.
func TestSchedulerNeverOversubscribes(t *testing.T) {
	f := testFabric(t, 3, 12)
	cfg := DefaultMixConfig()
	cfg.Jobs = 20
	cfg.MaxNodes = 12
	specs := MustGenerateMix(cfg, f.Topology().NumNodes())
	s := New(f, Config{Placement: PlaceRandom, Backfill: true, Seed: 5})
	for _, spec := range specs {
		s.MustSubmit(spec)
	}
	s.Start()
	drain(t, f)
	st := s.Stats()
	if st.Finished != cfg.Jobs {
		t.Fatalf("only %d of %d jobs finished", st.Finished, cfg.Jobs)
	}
	// Overlapping-in-time jobs must have disjoint node sets.
	recs := s.SortedByStart()
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			a, b := recs[i], recs[j]
			if a.FinishedAt <= b.StartedAt || b.FinishedAt <= a.StartedAt {
				continue
			}
			seen := make(map[topo.NodeID]bool)
			for _, n := range a.Allocation.Nodes() {
				seen[n] = true
			}
			for _, n := range b.Allocation.Nodes() {
				if seen[n] {
					t.Fatalf("jobs %q and %q overlapped in time and shared node %d", a.Spec.Name, b.Spec.Name, n)
				}
			}
		}
	}
	if s.FreeNodes() != f.Topology().NumNodes() {
		t.Fatalf("nodes leaked: %d free of %d after drain", s.FreeNodes(), f.Topology().NumNodes())
	}
}
