package sched

import (
	"reflect"
	"testing"

	"dragonfly/internal/mpi"
	"dragonfly/internal/sim"
	"dragonfly/internal/workloads"
)

func appJob(name string, nodes int, arrival, duration sim.Time, workload string) JobSpec {
	j := trafficJob(name, nodes, arrival, duration)
	j.App = &AppSpec{Workload: workload, MessageBytes: 2 << 10, Iterations: 2}
	return j
}

// TestAppJobRunsRealWorkload: with an executor attached, an App job runs its
// real application and finishes when the workload finishes — not at its
// (estimated) duration.
func TestAppJobRunsRealWorkload(t *testing.T) {
	f := testFabric(t, 2, 1)
	s := New(f, DefaultConfig())
	s.AttachExecutor(mpi.NewScheduler(f.Engine()))
	rec := s.MustSubmit(appJob("app", 4, 0, 123_456_789, "alltoall"))
	s.Start()
	if err := s.Drive(nil); err != nil {
		t.Fatal(err)
	}
	if rec.State != Finished {
		t.Fatalf("job state = %v, want finished", rec.State)
	}
	if !rec.RanApp {
		t.Fatal("job did not run as a real application")
	}
	if rec.AppErr != nil {
		t.Fatalf("AppErr = %v", rec.AppErr)
	}
	if rec.AppCycles <= 0 {
		t.Fatalf("AppCycles = %d, want > 0", rec.AppCycles)
	}
	if rec.AppPackets == 0 {
		t.Fatal("application injected no packets")
	}
	if got := rec.FinishedAt - rec.StartedAt; got == 123_456_789 {
		t.Fatal("app job finished at its estimated duration instead of the workload's completion")
	}
	if st := s.Stats(); st.AppJobs != 1 || st.AppErrors != 0 {
		t.Fatalf("Stats AppJobs/AppErrors = %d/%d, want 1/0", st.AppJobs, st.AppErrors)
	}
}

// TestAppJobsAreDeterministic: the same seed reproduces the exact same
// schedule and per-job application measurements.
func TestAppJobsAreDeterministic(t *testing.T) {
	measure := func() []sim.Time {
		f := testFabric(t, 3, 9)
		s := New(f, Config{Placement: PlaceGroupStriped, Seed: 9})
		s.AttachExecutor(mpi.NewScheduler(f.Engine()))
		s.MustSubmit(appJob("a", 4, 0, 1_000_000, "alltoall"))
		s.MustSubmit(appJob("b", 4, 5_000, 1_000_000, "halo3d"))
		s.MustSubmit(trafficJob("c", 4, 10_000, 500_000))
		s.Start()
		if err := s.Drive(nil); err != nil {
			t.Fatal(err)
		}
		var out []sim.Time
		for _, rec := range s.Jobs() {
			if rec.State != Finished {
				t.Fatalf("job %s state = %v, want finished", rec.Spec.Name, rec.State)
			}
			out = append(out, rec.StartedAt, rec.FinishedAt, rec.AppCycles, sim.Time(rec.AppPackets))
		}
		return out
	}
	if a, b := measure(), measure(); !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical scheduler runs diverged:\n%v\n%v", a, b)
	}
}

// TestAppJobFallsBackWithoutExecutor: App jobs degrade to the synthetic
// generator when no executor is attached, and the degradation is recorded
// instead of silent.
func TestAppJobFallsBackWithoutExecutor(t *testing.T) {
	f := testFabric(t, 2, 1)
	s := New(f, DefaultConfig())
	rec := s.MustSubmit(appJob("app", 4, 0, 200_000, "alltoall"))
	s.Start()
	if err := s.Drive(nil); err != nil {
		t.Fatal(err)
	}
	if rec.State != Finished {
		t.Fatalf("job state = %v, want finished", rec.State)
	}
	if rec.RanApp {
		t.Fatal("job claims to have run a real application without an executor")
	}
	if rec.AppErr == nil {
		t.Fatal("fallback to synthetic traffic was not recorded")
	}
	if rec.MessagesSent == 0 {
		t.Fatal("fallback generator sent nothing")
	}
	if got := rec.FinishedAt - rec.StartedAt; got != 200_000 {
		t.Fatalf("fallback job ran %d cycles, want its duration of 200000", got)
	}
}

// TestAppJobUnknownWorkloadFallsBack: an unresolvable workload name is
// recorded on the record and the job still completes on the generator path.
func TestAppJobUnknownWorkloadFallsBack(t *testing.T) {
	f := testFabric(t, 2, 1)
	s := New(f, DefaultConfig())
	s.AttachExecutor(mpi.NewScheduler(f.Engine()))
	rec := s.MustSubmit(appJob("app", 4, 0, 200_000, "no-such-workload"))
	s.Start()
	if err := s.Drive(nil); err != nil {
		t.Fatal(err)
	}
	if rec.State != Finished {
		t.Fatalf("job state = %v, want finished", rec.State)
	}
	if rec.RanApp || rec.AppErr == nil {
		t.Fatalf("RanApp/AppErr = %v/%v, want false/non-nil", rec.RanApp, rec.AppErr)
	}
	if st := s.Stats(); st.AppErrors != 1 {
		t.Fatalf("Stats.AppErrors = %d, want 1", st.AppErrors)
	}
}

// TestMixAppFraction: GenerateMix marks roughly the requested share of jobs
// as app jobs, cycles the workload list deterministically, and an
// AppFraction of zero reproduces the historical mix byte-for-byte.
func TestMixAppFraction(t *testing.T) {
	base := DefaultMixConfig()
	base.Jobs = 40

	withApps := base
	withApps.AppFraction = 1.0
	specs, err := GenerateMix(withApps, 64)
	if err != nil {
		t.Fatal(err)
	}
	apps := 0
	names := map[string]bool{}
	for _, sp := range specs {
		if sp.App != nil {
			apps++
			names[sp.App.Workload] = true
			if sp.App.Iterations < 1 {
				t.Fatalf("app job %s has %d iterations", sp.Name, sp.App.Iterations)
			}
		}
	}
	if apps == 0 {
		t.Fatal("AppFraction=1 produced no app jobs")
	}
	for _, want := range []string{"alltoall", "halo3d", "allreduce"} {
		if !names[want] {
			t.Fatalf("workload %q never used; got %v", want, names)
		}
	}

	// Zero AppFraction must not consume random numbers: the mix is identical
	// to the historical generator's output.
	a, err := GenerateMix(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMix(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("mix generation is not deterministic")
	}
	for i := range a {
		if a[i].App != nil {
			t.Fatalf("job %d has an App spec despite AppFraction=0", i)
		}
	}
}

// TestStencilAppSizeIsDomainEdge: the mix maps stencil workloads to a sane
// domain edge instead of interpreting message bytes as an edge length.
func TestStencilAppSizeIsDomainEdge(t *testing.T) {
	if got := workloads.SizeFor("halo3d", 32<<10); got != 256 {
		t.Fatalf("SizeFor(halo3d) = %d, want 256", got)
	}
	if got := workloads.SizeFor("alltoall", 32<<10); got != 32<<10 {
		t.Fatalf("SizeFor(alltoall) = %d, want %d", got, 32<<10)
	}
}
