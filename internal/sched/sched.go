// Package sched provides a batch-scheduler substrate for multi-job
// interference studies. The paper (§1, §6, §7) discusses job allocation as the
// main alternative to routing-based noise mitigation: contiguous allocations
// localize traffic but fragment the machine, random allocations balance load
// but expose every job to every other job's traffic, and hybrid policies
// (communication-intensive jobs scattered, others packed) try to combine both.
// On a Dragonfly none of them can fully isolate a job, because non-minimal
// adaptive routing sends packets through groups owned by other jobs.
//
// The scheduler places jobs on the simulated fabric and records per-job wait
// times, placement fragmentation and machine utilization, so experiments can
// compare allocation policies against (and combined with) the routing-based
// mitigation the paper proposes. A running job's traffic is represented
// either by a synthetic background generator (the historical stand-in) or —
// when the spec carries an App and an executor is attached — by the real
// workload-driven application itself, co-scheduled with every other job's
// ranks on the shared fabric.
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// AllocationPolicy selects how the scheduler places the nodes of a job.
type AllocationPolicy uint8

const (
	// PlaceContiguous packs every job onto the lowest-numbered free nodes.
	PlaceContiguous AllocationPolicy = iota
	// PlaceRandom scatters every job uniformly over the free nodes.
	PlaceRandom
	// PlaceGroupStriped stripes every job round-robin over the groups.
	PlaceGroupStriped
	// PlaceHybrid scatters communication-intensive jobs and packs the rest,
	// the policy proposed by the interference literature the paper discusses.
	PlaceHybrid
)

// String returns the policy name.
func (p AllocationPolicy) String() string {
	switch p {
	case PlaceContiguous:
		return "contiguous"
	case PlaceRandom:
		return "random"
	case PlaceGroupStriped:
		return "group-striped"
	case PlaceHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("AllocationPolicy(%d)", uint8(p))
	}
}

// ParseAllocationPolicy converts a policy name to an AllocationPolicy.
func ParseAllocationPolicy(s string) (AllocationPolicy, error) {
	switch s {
	case "contiguous":
		return PlaceContiguous, nil
	case "random":
		return PlaceRandom, nil
	case "group-striped", "striped":
		return PlaceGroupStriped, nil
	case "hybrid":
		return PlaceHybrid, nil
	default:
		return PlaceContiguous, fmt.Errorf("sched: unknown allocation policy %q", s)
	}
}

// JobSpec describes one batch job submitted to the scheduler.
type JobSpec struct {
	// Name identifies the job in records and logs.
	Name string
	// Nodes is the number of nodes the job needs.
	Nodes int
	// ArrivalCycles is the submission time relative to Scheduler.Start.
	ArrivalCycles sim.Time
	// DurationCycles is the job's run time once started. For workload-driven
	// jobs (App set, executor attached) it is only the walltime *estimate*
	// backfilling reasons with: the job actually releases its nodes when the
	// workload completes.
	DurationCycles sim.Time
	// CommIntensive marks the job as communication intensive; the hybrid
	// placement policy scatters such jobs and packs the others.
	CommIntensive bool
	// Traffic describes the background traffic the job generates while it
	// runs. MessageBytes == 0 disables traffic generation (a "compute only"
	// job that still occupies nodes).
	Traffic TrafficSpec
	// App, if non-nil, runs a real workload-driven application on the job's
	// nodes instead of representing the job with a synthetic traffic
	// generator. It requires an executor (AttachExecutor); without one — or
	// when the workload cannot be built — the scheduler falls back to the
	// Traffic generator and records why in the JobRecord.
	App *AppSpec
}

// AppSpec describes the real application a workload-driven batch job runs.
type AppSpec struct {
	// Workload is the registered workload name (see workloads.New), e.g.
	// "alltoall", "halo3d", "allreduce".
	Workload string
	// MessageBytes is the workload's size parameter as workloads.New
	// interprets it: per-message bytes for the collectives, the domain edge
	// for the stencil workloads (halo3d, sweep3d).
	MessageBytes int64
	// Iterations is how many times each rank repeats the workload body
	// (minimum 1).
	Iterations int
	// Routing builds the per-rank routing provider; nil applies
	// Traffic.Mode statically to every message.
	Routing func(rank int) mpi.RoutingProvider
}

// TrafficSpec shapes the traffic a running job injects into the fabric.
type TrafficSpec struct {
	// Pattern is the communication pattern (uniform, hotspot, bully, burst).
	Pattern noise.Pattern
	// MessageBytes is the size of each message; 0 disables traffic.
	MessageBytes int64
	// IntervalCycles is the mean gap between messages per node.
	IntervalCycles int64
	// Mode is the routing mode the job's traffic uses.
	Mode routing.Mode
}

// Validate reports whether the job spec is usable on a machine of the given
// size.
func (j JobSpec) Validate(machineNodes int) error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("sched: job %q requests %d nodes", j.Name, j.Nodes)
	case j.Nodes > machineNodes:
		return fmt.Errorf("sched: job %q requests %d nodes but the machine has %d", j.Name, j.Nodes, machineNodes)
	case j.ArrivalCycles < 0:
		return fmt.Errorf("sched: job %q has negative arrival time", j.Name)
	case j.DurationCycles <= 0:
		return fmt.Errorf("sched: job %q has non-positive duration", j.Name)
	case j.Traffic.MessageBytes > 0 && j.Traffic.IntervalCycles <= 0:
		return fmt.Errorf("sched: job %q generates traffic but has no interval", j.Name)
	}
	return nil
}

// JobState tracks a job through its lifetime.
type JobState uint8

const (
	// Queued means the job has been submitted but not yet started.
	Queued JobState = iota
	// Running means the job currently holds nodes.
	Running
	// Finished means the job completed and released its nodes.
	Finished
)

// String returns the state name.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("JobState(%d)", uint8(s))
	}
}

// JobRecord is the scheduler's bookkeeping for one job.
type JobRecord struct {
	// ID is the submission order, starting at 0.
	ID int
	// Spec is the submitted job description.
	Spec JobSpec
	// State is the job's current lifecycle state.
	State JobState
	// SubmittedAt, StartedAt and FinishedAt are absolute simulated times;
	// StartedAt and FinishedAt are meaningful only after the respective
	// transitions.
	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time
	// Allocation is the node set assigned to the job (nil while queued).
	Allocation *alloc.Allocation
	// RoutersSpanned and GroupsSpanned record the placement fragmentation.
	RoutersSpanned int
	GroupsSpanned  int
	// MessagesSent is the traffic the job injected while running (generator
	// jobs only; workload-driven jobs report AppPackets instead).
	MessagesSent uint64

	// RanApp reports whether the job ran as a real workload-driven
	// application on the executor (rather than a traffic generator).
	RanApp bool
	// AppCycles is the simulated time the application took, and AppPackets
	// the request packets its nodes injected (both meaningful when RanApp).
	AppCycles  sim.Time
	AppPackets uint64
	// AppErr records why a requested App could not run (the job fell back to
	// the traffic generator), or a rank error the application hit.
	AppErr error
	// TrafficErr records a traffic-generator construction failure. The job
	// still runs (it occupies nodes for its duration) but injects nothing —
	// without this field that degradation was silent.
	TrafficErr error

	generator  *noise.Generator
	comm       *mpi.Comm
	appPackets uint64 // injected-packet snapshot at application start
}

// WaitCycles returns how long the job waited in the queue (0 while queued).
func (r *JobRecord) WaitCycles() sim.Time {
	if r.State == Queued {
		return 0
	}
	return r.StartedAt - r.SubmittedAt
}

// Config configures the scheduler.
type Config struct {
	// Placement is the allocation policy applied to every job.
	Placement AllocationPolicy
	// Backfill lets a queued job start ahead of the queue head when it fits in
	// the currently free nodes and would finish before the head job could
	// start anyway (conservative EASY-style backfilling based on the known
	// durations of running jobs).
	Backfill bool
	// Seed seeds the placement random stream.
	Seed int64
}

// DefaultConfig returns a contiguous, non-backfilling scheduler.
func DefaultConfig() Config {
	return Config{Placement: PlaceContiguous, Seed: 1}
}

// Scheduler places jobs on the fabric's nodes and drives their lifecycle with
// simulation events. It is not safe for concurrent use; all methods must be
// called from the simulation goroutine.
type Scheduler struct {
	fabric *network.Fabric
	topo   *topo.Topology
	cfg    Config
	rng    *rand.Rand

	jobs    []*JobRecord
	queue   []*JobRecord
	running map[int]*JobRecord
	started bool

	// nodes tracks the busy/free state of every machine node incrementally
	// (bitset plus free list) instead of rebuilding exclusion maps per pass.
	nodes *alloc.Tracker
	// busyCount is the number of nodes held by running jobs; reservedCount the
	// number excluded from scheduling (e.g. nodes of a measured foreground
	// job). Both are also marked busy in the tracker.
	busyCount     int
	reservedCount int
	// scratch is the recycled destination for tracker allocations.
	scratch []topo.NodeID

	// exec, when attached, runs workload-driven jobs (JobSpec.App) as real
	// co-scheduled applications instead of synthetic generators.
	exec *mpi.Scheduler

	busyNodeCycles uint64
	lastAccounting sim.Time
}

// New builds a scheduler over the fabric's machine.
func New(f *network.Fabric, cfg Config) *Scheduler {
	return &Scheduler{
		fabric:  f,
		topo:    f.Topology(),
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		running: make(map[int]*JobRecord),
		nodes:   alloc.NewTracker(f.Topology()),
	}
}

// AttachExecutor hands the scheduler a cooperative rank executor. With one
// attached, jobs whose spec carries an App run their real application on the
// fabric — actual workload-driven traffic, completion when the workload
// completes — instead of being approximated by a traffic generator. Drive the
// run with Drive (or the executor's Drain) rather than Engine.Run, so the
// application ranks interleave with the scheduler's events.
func (s *Scheduler) AttachExecutor(x *mpi.Scheduler) { s.exec = x }

// Drive runs the simulation to completion: through the attached executor when
// one is present (so workload-driven jobs co-run with the event queue), with
// a plain engine run otherwise. The context, when non-nil, cancels the run.
func (s *Scheduler) Drive(ctx context.Context) error {
	if s.exec != nil {
		if err := s.exec.Drain(mpi.ContextCheck(ctx)); err != nil {
			// Release application ranks an aborted drain left parked, so a
			// cancelled batch run does not leak one goroutine per rank.
			s.exec.Shutdown()
			return err
		}
		return nil
	}
	eng := s.fabric.Engine()
	if ctx == nil {
		return eng.Run()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		stepped, err := eng.Step()
		if err != nil {
			return err
		}
		if !stepped {
			return nil
		}
	}
}

// Reserve excludes the given nodes from scheduling. It is used to protect the
// allocation of a measured foreground job from being handed to batch jobs.
func (s *Scheduler) Reserve(nodes []topo.NodeID) {
	for _, n := range nodes {
		if !s.nodes.Busy(n) {
			s.reservedCount++
		}
	}
	s.nodes.Reserve(nodes)
}

// Jobs returns all job records in submission order, as a fresh slice the
// caller may reorder or truncate freely. (The records themselves are shared;
// the scheduler keeps updating them as jobs progress.)
func (s *Scheduler) Jobs() []*JobRecord {
	return append([]*JobRecord(nil), s.jobs...)
}

// QueueLength returns the number of jobs currently waiting.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// RunningJobs returns the number of jobs currently holding nodes.
func (s *Scheduler) RunningJobs() int { return len(s.running) }

// FreeNodes returns the number of nodes that are neither busy nor reserved.
func (s *Scheduler) FreeNodes() int { return s.nodes.FreeNodes() }

// Fragmentation returns how shattered the free capacity currently is
// (1 − largest free run / free nodes; see alloc.Tracker.Fragmentation).
func (s *Scheduler) Fragmentation() float64 { return s.nodes.Fragmentation() }

// Submit registers a job. Jobs submitted before Start are scheduled at their
// arrival time; jobs submitted after Start are scheduled relative to the
// current time.
func (s *Scheduler) Submit(spec JobSpec) (*JobRecord, error) {
	if err := spec.Validate(s.topo.NumNodes() - s.reservedCount); err != nil {
		return nil, err
	}
	rec := &JobRecord{ID: len(s.jobs), Spec: spec, State: Queued}
	s.jobs = append(s.jobs, rec)
	if s.started {
		s.scheduleArrival(rec)
	}
	return rec, nil
}

// MustSubmit is like Submit but panics on error.
func (s *Scheduler) MustSubmit(spec JobSpec) *JobRecord {
	rec, err := s.Submit(spec)
	if err != nil {
		panic(err)
	}
	return rec
}

// Start schedules the arrival events of every submitted job. It must be called
// once, before or during the simulation run.
func (s *Scheduler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.lastAccounting = s.fabric.Engine().Now()
	for _, rec := range s.jobs {
		s.scheduleArrival(rec)
	}
}

// scheduleArrival schedules the enqueue event of one job.
func (s *Scheduler) scheduleArrival(rec *JobRecord) {
	eng := s.fabric.Engine()
	eng.Schedule(eng.Now()+rec.Spec.ArrivalCycles, func() {
		rec.SubmittedAt = eng.Now()
		s.queue = append(s.queue, rec)
		s.trySchedule()
	})
}

// accountUtilization integrates busy node-cycles up to the current time.
func (s *Scheduler) accountUtilization() {
	now := s.fabric.Engine().Now()
	if now > s.lastAccounting {
		s.busyNodeCycles += uint64(now-s.lastAccounting) * uint64(s.busyCount)
		s.lastAccounting = now
	}
}

// allocPolicyFor maps the scheduler placement policy to an alloc.Policy for
// one specific job.
func (s *Scheduler) allocPolicyFor(spec JobSpec) alloc.Policy {
	switch s.cfg.Placement {
	case PlaceRandom:
		return alloc.RandomScatter
	case PlaceGroupStriped:
		return alloc.GroupStriped
	case PlaceHybrid:
		if spec.CommIntensive {
			return alloc.RandomScatter
		}
		return alloc.Contiguous
	default:
		return alloc.Contiguous
	}
}

// earliestCompletion returns the earliest finish time among running jobs, or
// the current time when nothing is running.
func (s *Scheduler) earliestCompletion() sim.Time {
	now := s.fabric.Engine().Now()
	earliest := sim.Time(-1)
	for _, rec := range s.running {
		end := rec.StartedAt + rec.Spec.DurationCycles
		if earliest < 0 || end < earliest {
			earliest = end
		}
	}
	if earliest < 0 {
		return now
	}
	return earliest
}

// trySchedule starts as many queued jobs as the free nodes and the scheduling
// discipline allow.
func (s *Scheduler) trySchedule() {
	progressed := true
	for progressed {
		progressed = false
		if len(s.queue) == 0 {
			return
		}
		head := s.queue[0]
		if head.Spec.Nodes <= s.FreeNodes() {
			s.queue = s.queue[1:]
			s.startJob(head)
			progressed = true
			continue
		}
		if !s.cfg.Backfill {
			return
		}
		// Conservative backfill: a later job may start now if it fits and is
		// guaranteed to finish before the head job could possibly start (the
		// earliest completion of any running job).
		now := s.fabric.Engine().Now()
		shadow := s.earliestCompletion()
		for i := 1; i < len(s.queue); i++ {
			cand := s.queue[i]
			if cand.Spec.Nodes > s.FreeNodes() {
				continue
			}
			if now+cand.Spec.DurationCycles > shadow {
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.startJob(cand)
			progressed = true
			break
		}
	}
}

// startJob allocates nodes, starts the job's traffic generator and schedules
// its completion.
func (s *Scheduler) startJob(rec *JobRecord) {
	s.accountUtilization()
	eng := s.fabric.Engine()
	nodes, err := s.nodes.Allocate(s.allocPolicyFor(rec.Spec), rec.Spec.Nodes, s.rng, s.scratch[:0])
	s.scratch = nodes[:0]
	if err != nil {
		// Should not happen (FreeNodes was checked), but requeue defensively.
		s.queue = append([]*JobRecord{rec}, s.queue...)
		return
	}
	a := alloc.NewAllocation(s.topo, nodes)
	rec.Allocation = a
	rec.State = Running
	rec.StartedAt = eng.Now()
	rec.RoutersSpanned = a.NumRouters()
	rec.GroupsSpanned = a.NumGroups()
	s.busyCount += a.Size()
	s.running[rec.ID] = rec

	if rec.Spec.App != nil {
		if s.exec == nil {
			rec.AppErr = fmt.Errorf("sched: job %q requests workload %q but no executor is attached",
				rec.Spec.Name, rec.Spec.App.Workload)
		} else if err := s.startApp(rec); err != nil {
			rec.AppErr = err
		} else {
			// The application itself decides when the job finishes; no
			// duration event, no generator.
			return
		}
		// Fall through: represent the job with the traffic generator below.
	}
	if rec.Spec.Traffic.MessageBytes > 0 && rec.Spec.Nodes >= 2 {
		cfg := noise.GeneratorConfig{
			Pattern:             rec.Spec.Traffic.Pattern,
			MessageBytes:        rec.Spec.Traffic.MessageBytes,
			IntervalCycles:      rec.Spec.Traffic.IntervalCycles,
			JitterFraction:      0.5,
			Mode:                rec.Spec.Traffic.Mode,
			BurstLengthMessages: 32,
			BurstIdleCycles:     200_000,
			Seed:                s.cfg.Seed*1_000_003 + int64(rec.ID),
		}
		if g, err := noise.FromAllocation(s.fabric, a, cfg); err != nil {
			// The job still holds its nodes for its duration; record that it
			// injects nothing instead of dropping the error on the floor.
			rec.TrafficErr = err
		} else {
			rec.generator = g
			g.Start(eng.Now() + rec.Spec.DurationCycles)
		}
	}
	eng.After(rec.Spec.DurationCycles, func() { s.finishJob(rec) })
}

// jobPackets sums the request packets injected by the job's nodes so far.
func (s *Scheduler) jobPackets(a *alloc.Allocation) uint64 {
	var total uint64
	for _, n := range a.Nodes() {
		total += s.fabric.NodeCounters(n).RequestPackets
	}
	return total
}

// startApp builds the communicator and launches the job's real application on
// the executor. The job finishes — and releases its nodes — when the last
// rank completes, at the workload's own pace.
func (s *Scheduler) startApp(rec *JobRecord) error {
	app := rec.Spec.App
	w, err := workloads.New(app.Workload, rec.Allocation.Size(), app.MessageBytes)
	if err != nil {
		return err
	}
	provider := app.Routing
	if provider == nil {
		mode := rec.Spec.Traffic.Mode
		provider = func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: mode} }
	}
	comm, err := mpi.NewComm(s.fabric, rec.Allocation, mpi.Config{Routing: provider})
	if err != nil {
		return err
	}
	iters := app.Iterations
	if iters < 1 {
		iters = 1
	}
	rec.comm = comm
	rec.RanApp = true
	rec.appPackets = s.jobPackets(rec.Allocation)
	comm.OnFinished(func() {
		for r := 0; r < comm.Size(); r++ {
			if err := comm.Rank(r).Err(); err != nil {
				rec.AppErr = fmt.Errorf("sched: job %q rank %d: %w", rec.Spec.Name, r, err)
				break
			}
		}
		rec.AppCycles = s.fabric.Engine().Now() - rec.StartedAt
		rec.AppPackets = s.jobPackets(rec.Allocation) - rec.appPackets
		s.finishJob(rec)
	})
	return comm.Start(s.exec, func(r *mpi.Rank) {
		for i := 0; i < iters; i++ {
			w.Run(r)
		}
	})
}

// finishJob releases the job's nodes and re-runs the scheduling pass.
func (s *Scheduler) finishJob(rec *JobRecord) {
	s.accountUtilization()
	eng := s.fabric.Engine()
	rec.State = Finished
	rec.FinishedAt = eng.Now()
	if rec.generator != nil {
		rec.generator.Stop()
		rec.MessagesSent = rec.generator.MessagesSent()
	}
	s.nodes.Free(rec.Allocation.Nodes())
	s.busyCount -= rec.Allocation.Size()
	delete(s.running, rec.ID)
	s.trySchedule()
}

// Stats summarizes a scheduling run.
type Stats struct {
	// Submitted, Started and Finished count jobs per lifecycle state reached.
	Submitted int
	Started   int
	Finished  int
	// MeanWaitCycles and MaxWaitCycles summarize queue waiting times of
	// started jobs.
	MeanWaitCycles float64
	MaxWaitCycles  sim.Time
	// MeanGroupsSpanned is the average placement fragmentation of started jobs.
	MeanGroupsSpanned float64
	// Utilization is busy node-cycles divided by machine node-cycles over the
	// observation window (Start to the last accounting event).
	Utilization float64
	// MakespanCycles is the time between Start and the last job completion.
	MakespanCycles sim.Time
	// AppJobs counts jobs that ran as real workload-driven applications.
	AppJobs int
	// AppErrors and TrafficErrors count jobs whose application or traffic
	// generator could not run as specified (see JobRecord.AppErr/TrafficErr).
	AppErrors     int
	TrafficErrors int
}

// Stats computes the summary over all submitted jobs. It should be called
// after the simulation has drained (all job completions executed).
func (s *Scheduler) Stats() Stats {
	s.accountUtilization()
	var st Stats
	st.Submitted = len(s.jobs)
	var waitSum float64
	var groupSum float64
	var lastEnd sim.Time
	for _, rec := range s.jobs {
		if rec.RanApp {
			st.AppJobs++
		}
		if rec.AppErr != nil {
			st.AppErrors++
		}
		if rec.TrafficErr != nil {
			st.TrafficErrors++
		}
		if rec.State == Queued {
			continue
		}
		st.Started++
		w := rec.WaitCycles()
		waitSum += float64(w)
		if w > st.MaxWaitCycles {
			st.MaxWaitCycles = w
		}
		groupSum += float64(rec.GroupsSpanned)
		if rec.State == Finished {
			st.Finished++
			if rec.FinishedAt > lastEnd {
				lastEnd = rec.FinishedAt
			}
		}
	}
	if st.Started > 0 {
		st.MeanWaitCycles = waitSum / float64(st.Started)
		st.MeanGroupsSpanned = groupSum / float64(st.Started)
	}
	// Utilization is computed over the scheduling window: up to the last job
	// completion once everything finished (the fabric may keep draining queued
	// packets afterwards, which is not the scheduler's busy time), otherwise up
	// to the last accounting point.
	window := s.lastAccounting
	if st.Finished == st.Submitted && lastEnd > 0 {
		window = lastEnd
	}
	if window > 0 {
		usable := uint64(window) * uint64(s.topo.NumNodes()-s.reservedCount)
		if usable > 0 {
			st.Utilization = float64(s.busyNodeCycles) / float64(usable)
		}
	}
	st.MakespanCycles = lastEnd
	return st
}

// SortedByStart returns the started jobs ordered by their start time, useful
// for rendering schedules.
func (s *Scheduler) SortedByStart() []*JobRecord {
	out := make([]*JobRecord, 0, len(s.jobs))
	for _, rec := range s.jobs {
		if rec.State != Queued {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartedAt < out[j].StartedAt })
	return out
}
