// Package sched provides a batch-scheduler substrate for multi-job
// interference studies. The paper (§1, §6, §7) discusses job allocation as the
// main alternative to routing-based noise mitigation: contiguous allocations
// localize traffic but fragment the machine, random allocations balance load
// but expose every job to every other job's traffic, and hybrid policies
// (communication-intensive jobs scattered, others packed) try to combine both.
// On a Dragonfly none of them can fully isolate a job, because non-minimal
// adaptive routing sends packets through groups owned by other jobs.
//
// The scheduler places jobs on the simulated fabric, represents each running
// job's traffic with a background generator, and records per-job wait times,
// placement fragmentation and machine utilization, so experiments can compare
// allocation policies against (and combined with) the routing-based mitigation
// the paper proposes.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"dragonfly/internal/alloc"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// AllocationPolicy selects how the scheduler places the nodes of a job.
type AllocationPolicy uint8

const (
	// PlaceContiguous packs every job onto the lowest-numbered free nodes.
	PlaceContiguous AllocationPolicy = iota
	// PlaceRandom scatters every job uniformly over the free nodes.
	PlaceRandom
	// PlaceGroupStriped stripes every job round-robin over the groups.
	PlaceGroupStriped
	// PlaceHybrid scatters communication-intensive jobs and packs the rest,
	// the policy proposed by the interference literature the paper discusses.
	PlaceHybrid
)

// String returns the policy name.
func (p AllocationPolicy) String() string {
	switch p {
	case PlaceContiguous:
		return "contiguous"
	case PlaceRandom:
		return "random"
	case PlaceGroupStriped:
		return "group-striped"
	case PlaceHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("AllocationPolicy(%d)", uint8(p))
	}
}

// ParseAllocationPolicy converts a policy name to an AllocationPolicy.
func ParseAllocationPolicy(s string) (AllocationPolicy, error) {
	switch s {
	case "contiguous":
		return PlaceContiguous, nil
	case "random":
		return PlaceRandom, nil
	case "group-striped", "striped":
		return PlaceGroupStriped, nil
	case "hybrid":
		return PlaceHybrid, nil
	default:
		return PlaceContiguous, fmt.Errorf("sched: unknown allocation policy %q", s)
	}
}

// JobSpec describes one batch job submitted to the scheduler.
type JobSpec struct {
	// Name identifies the job in records and logs.
	Name string
	// Nodes is the number of nodes the job needs.
	Nodes int
	// ArrivalCycles is the submission time relative to Scheduler.Start.
	ArrivalCycles sim.Time
	// DurationCycles is the job's run time once started.
	DurationCycles sim.Time
	// CommIntensive marks the job as communication intensive; the hybrid
	// placement policy scatters such jobs and packs the others.
	CommIntensive bool
	// Traffic describes the background traffic the job generates while it
	// runs. MessageBytes == 0 disables traffic generation (a "compute only"
	// job that still occupies nodes).
	Traffic TrafficSpec
}

// TrafficSpec shapes the traffic a running job injects into the fabric.
type TrafficSpec struct {
	// Pattern is the communication pattern (uniform, hotspot, bully, burst).
	Pattern noise.Pattern
	// MessageBytes is the size of each message; 0 disables traffic.
	MessageBytes int64
	// IntervalCycles is the mean gap between messages per node.
	IntervalCycles int64
	// Mode is the routing mode the job's traffic uses.
	Mode routing.Mode
}

// Validate reports whether the job spec is usable on a machine of the given
// size.
func (j JobSpec) Validate(machineNodes int) error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("sched: job %q requests %d nodes", j.Name, j.Nodes)
	case j.Nodes > machineNodes:
		return fmt.Errorf("sched: job %q requests %d nodes but the machine has %d", j.Name, j.Nodes, machineNodes)
	case j.ArrivalCycles < 0:
		return fmt.Errorf("sched: job %q has negative arrival time", j.Name)
	case j.DurationCycles <= 0:
		return fmt.Errorf("sched: job %q has non-positive duration", j.Name)
	case j.Traffic.MessageBytes > 0 && j.Traffic.IntervalCycles <= 0:
		return fmt.Errorf("sched: job %q generates traffic but has no interval", j.Name)
	}
	return nil
}

// JobState tracks a job through its lifetime.
type JobState uint8

const (
	// Queued means the job has been submitted but not yet started.
	Queued JobState = iota
	// Running means the job currently holds nodes.
	Running
	// Finished means the job completed and released its nodes.
	Finished
)

// String returns the state name.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("JobState(%d)", uint8(s))
	}
}

// JobRecord is the scheduler's bookkeeping for one job.
type JobRecord struct {
	// ID is the submission order, starting at 0.
	ID int
	// Spec is the submitted job description.
	Spec JobSpec
	// State is the job's current lifecycle state.
	State JobState
	// SubmittedAt, StartedAt and FinishedAt are absolute simulated times;
	// StartedAt and FinishedAt are meaningful only after the respective
	// transitions.
	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time
	// Allocation is the node set assigned to the job (nil while queued).
	Allocation *alloc.Allocation
	// RoutersSpanned and GroupsSpanned record the placement fragmentation.
	RoutersSpanned int
	GroupsSpanned  int
	// MessagesSent is the traffic the job injected while running.
	MessagesSent uint64

	generator *noise.Generator
}

// WaitCycles returns how long the job waited in the queue (0 while queued).
func (r *JobRecord) WaitCycles() sim.Time {
	if r.State == Queued {
		return 0
	}
	return r.StartedAt - r.SubmittedAt
}

// Config configures the scheduler.
type Config struct {
	// Placement is the allocation policy applied to every job.
	Placement AllocationPolicy
	// Backfill lets a queued job start ahead of the queue head when it fits in
	// the currently free nodes and would finish before the head job could
	// start anyway (conservative EASY-style backfilling based on the known
	// durations of running jobs).
	Backfill bool
	// Seed seeds the placement random stream.
	Seed int64
}

// DefaultConfig returns a contiguous, non-backfilling scheduler.
func DefaultConfig() Config {
	return Config{Placement: PlaceContiguous, Seed: 1}
}

// Scheduler places jobs on the fabric's nodes and drives their lifecycle with
// simulation events. It is not safe for concurrent use; all methods must be
// called from the simulation goroutine.
type Scheduler struct {
	fabric *network.Fabric
	topo   *topo.Topology
	cfg    Config
	rng    *rand.Rand

	jobs    []*JobRecord
	queue   []*JobRecord
	running map[int]*JobRecord
	busy    map[topo.NodeID]bool
	started bool

	// reserved is the set of nodes excluded from scheduling (e.g. nodes used
	// by a measured foreground job).
	reserved map[topo.NodeID]bool

	busyNodeCycles uint64
	lastAccounting sim.Time
}

// New builds a scheduler over the fabric's machine.
func New(f *network.Fabric, cfg Config) *Scheduler {
	return &Scheduler{
		fabric:   f,
		topo:     f.Topology(),
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		running:  make(map[int]*JobRecord),
		busy:     make(map[topo.NodeID]bool),
		reserved: make(map[topo.NodeID]bool),
	}
}

// Reserve excludes the given nodes from scheduling. It is used to protect the
// allocation of a measured foreground job from being handed to batch jobs.
func (s *Scheduler) Reserve(nodes []topo.NodeID) {
	for _, n := range nodes {
		s.reserved[n] = true
	}
}

// Jobs returns all job records in submission order. The caller must not modify
// the slice.
func (s *Scheduler) Jobs() []*JobRecord { return s.jobs }

// QueueLength returns the number of jobs currently waiting.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// RunningJobs returns the number of jobs currently holding nodes.
func (s *Scheduler) RunningJobs() int { return len(s.running) }

// FreeNodes returns the number of nodes that are neither busy nor reserved.
func (s *Scheduler) FreeNodes() int {
	return s.topo.NumNodes() - len(s.busy) - s.countReservedFree()
}

// countReservedFree counts reserved nodes that are not also busy.
func (s *Scheduler) countReservedFree() int {
	n := 0
	for node := range s.reserved {
		if !s.busy[node] {
			n++
		}
	}
	return n
}

// Submit registers a job. Jobs submitted before Start are scheduled at their
// arrival time; jobs submitted after Start are scheduled relative to the
// current time.
func (s *Scheduler) Submit(spec JobSpec) (*JobRecord, error) {
	if err := spec.Validate(s.topo.NumNodes() - len(s.reserved)); err != nil {
		return nil, err
	}
	rec := &JobRecord{ID: len(s.jobs), Spec: spec, State: Queued}
	s.jobs = append(s.jobs, rec)
	if s.started {
		s.scheduleArrival(rec)
	}
	return rec, nil
}

// MustSubmit is like Submit but panics on error.
func (s *Scheduler) MustSubmit(spec JobSpec) *JobRecord {
	rec, err := s.Submit(spec)
	if err != nil {
		panic(err)
	}
	return rec
}

// Start schedules the arrival events of every submitted job. It must be called
// once, before or during the simulation run.
func (s *Scheduler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.lastAccounting = s.fabric.Engine().Now()
	for _, rec := range s.jobs {
		s.scheduleArrival(rec)
	}
}

// scheduleArrival schedules the enqueue event of one job.
func (s *Scheduler) scheduleArrival(rec *JobRecord) {
	eng := s.fabric.Engine()
	eng.Schedule(eng.Now()+rec.Spec.ArrivalCycles, func() {
		rec.SubmittedAt = eng.Now()
		s.queue = append(s.queue, rec)
		s.trySchedule()
	})
}

// accountUtilization integrates busy node-cycles up to the current time.
func (s *Scheduler) accountUtilization() {
	now := s.fabric.Engine().Now()
	if now > s.lastAccounting {
		s.busyNodeCycles += uint64(now-s.lastAccounting) * uint64(len(s.busy))
		s.lastAccounting = now
	}
}

// allocPolicyFor maps the scheduler placement policy to an alloc.Policy for
// one specific job.
func (s *Scheduler) allocPolicyFor(spec JobSpec) alloc.Policy {
	switch s.cfg.Placement {
	case PlaceRandom:
		return alloc.RandomScatter
	case PlaceGroupStriped:
		return alloc.GroupStriped
	case PlaceHybrid:
		if spec.CommIntensive {
			return alloc.RandomScatter
		}
		return alloc.Contiguous
	default:
		return alloc.Contiguous
	}
}

// exclusionSet returns the nodes a new job may not use.
func (s *Scheduler) exclusionSet() map[topo.NodeID]bool {
	out := make(map[topo.NodeID]bool, len(s.busy)+len(s.reserved))
	for n := range s.busy {
		out[n] = true
	}
	for n := range s.reserved {
		out[n] = true
	}
	return out
}

// earliestCompletion returns the earliest finish time among running jobs, or
// the current time when nothing is running.
func (s *Scheduler) earliestCompletion() sim.Time {
	now := s.fabric.Engine().Now()
	earliest := sim.Time(-1)
	for _, rec := range s.running {
		end := rec.StartedAt + rec.Spec.DurationCycles
		if earliest < 0 || end < earliest {
			earliest = end
		}
	}
	if earliest < 0 {
		return now
	}
	return earliest
}

// trySchedule starts as many queued jobs as the free nodes and the scheduling
// discipline allow.
func (s *Scheduler) trySchedule() {
	progressed := true
	for progressed {
		progressed = false
		if len(s.queue) == 0 {
			return
		}
		head := s.queue[0]
		if head.Spec.Nodes <= s.FreeNodes() {
			s.queue = s.queue[1:]
			s.startJob(head)
			progressed = true
			continue
		}
		if !s.cfg.Backfill {
			return
		}
		// Conservative backfill: a later job may start now if it fits and is
		// guaranteed to finish before the head job could possibly start (the
		// earliest completion of any running job).
		now := s.fabric.Engine().Now()
		shadow := s.earliestCompletion()
		for i := 1; i < len(s.queue); i++ {
			cand := s.queue[i]
			if cand.Spec.Nodes > s.FreeNodes() {
				continue
			}
			if now+cand.Spec.DurationCycles > shadow {
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.startJob(cand)
			progressed = true
			break
		}
	}
}

// startJob allocates nodes, starts the job's traffic generator and schedules
// its completion.
func (s *Scheduler) startJob(rec *JobRecord) {
	s.accountUtilization()
	eng := s.fabric.Engine()
	a, err := alloc.Allocate(s.topo, s.allocPolicyFor(rec.Spec), rec.Spec.Nodes, s.rng, s.exclusionSet())
	if err != nil {
		// Should not happen (FreeNodes was checked), but requeue defensively.
		s.queue = append([]*JobRecord{rec}, s.queue...)
		return
	}
	rec.Allocation = a
	rec.State = Running
	rec.StartedAt = eng.Now()
	rec.RoutersSpanned = a.NumRouters()
	rec.GroupsSpanned = a.NumGroups()
	for _, n := range a.Nodes() {
		s.busy[n] = true
	}
	s.running[rec.ID] = rec

	if rec.Spec.Traffic.MessageBytes > 0 && rec.Spec.Nodes >= 2 {
		cfg := noise.GeneratorConfig{
			Pattern:             rec.Spec.Traffic.Pattern,
			MessageBytes:        rec.Spec.Traffic.MessageBytes,
			IntervalCycles:      rec.Spec.Traffic.IntervalCycles,
			JitterFraction:      0.5,
			Mode:                rec.Spec.Traffic.Mode,
			BurstLengthMessages: 32,
			BurstIdleCycles:     200_000,
			Seed:                s.cfg.Seed*1_000_003 + int64(rec.ID),
		}
		if g, err := noise.FromAllocation(s.fabric, a, cfg); err == nil {
			rec.generator = g
			g.Start(eng.Now() + rec.Spec.DurationCycles)
		}
	}
	eng.After(rec.Spec.DurationCycles, func() { s.finishJob(rec) })
}

// finishJob releases the job's nodes and re-runs the scheduling pass.
func (s *Scheduler) finishJob(rec *JobRecord) {
	s.accountUtilization()
	eng := s.fabric.Engine()
	rec.State = Finished
	rec.FinishedAt = eng.Now()
	if rec.generator != nil {
		rec.generator.Stop()
		rec.MessagesSent = rec.generator.MessagesSent()
	}
	for _, n := range rec.Allocation.Nodes() {
		delete(s.busy, n)
	}
	delete(s.running, rec.ID)
	s.trySchedule()
}

// Stats summarizes a scheduling run.
type Stats struct {
	// Submitted, Started and Finished count jobs per lifecycle state reached.
	Submitted int
	Started   int
	Finished  int
	// MeanWaitCycles and MaxWaitCycles summarize queue waiting times of
	// started jobs.
	MeanWaitCycles float64
	MaxWaitCycles  sim.Time
	// MeanGroupsSpanned is the average placement fragmentation of started jobs.
	MeanGroupsSpanned float64
	// Utilization is busy node-cycles divided by machine node-cycles over the
	// observation window (Start to the last accounting event).
	Utilization float64
	// MakespanCycles is the time between Start and the last job completion.
	MakespanCycles sim.Time
}

// Stats computes the summary over all submitted jobs. It should be called
// after the simulation has drained (all job completions executed).
func (s *Scheduler) Stats() Stats {
	s.accountUtilization()
	var st Stats
	st.Submitted = len(s.jobs)
	var waitSum float64
	var groupSum float64
	var lastEnd sim.Time
	for _, rec := range s.jobs {
		if rec.State == Queued {
			continue
		}
		st.Started++
		w := rec.WaitCycles()
		waitSum += float64(w)
		if w > st.MaxWaitCycles {
			st.MaxWaitCycles = w
		}
		groupSum += float64(rec.GroupsSpanned)
		if rec.State == Finished {
			st.Finished++
			if rec.FinishedAt > lastEnd {
				lastEnd = rec.FinishedAt
			}
		}
	}
	if st.Started > 0 {
		st.MeanWaitCycles = waitSum / float64(st.Started)
		st.MeanGroupsSpanned = groupSum / float64(st.Started)
	}
	// Utilization is computed over the scheduling window: up to the last job
	// completion once everything finished (the fabric may keep draining queued
	// packets afterwards, which is not the scheduler's busy time), otherwise up
	// to the last accounting point.
	window := s.lastAccounting
	if st.Finished == st.Submitted && lastEnd > 0 {
		window = lastEnd
	}
	if window > 0 {
		usable := uint64(window) * uint64(s.topo.NumNodes()-len(s.reserved))
		if usable > 0 {
			st.Utilization = float64(s.busyNodeCycles) / float64(usable)
		}
	}
	st.MakespanCycles = lastEnd
	return st
}

// SortedByStart returns the started jobs ordered by their start time, useful
// for rendering schedules.
func (s *Scheduler) SortedByStart() []*JobRecord {
	out := make([]*JobRecord, 0, len(s.jobs))
	for _, rec := range s.jobs {
		if rec.State != Queued {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartedAt < out[j].StartedAt })
	return out
}
