package sched

import (
	"fmt"
	"math"
	"math/rand"

	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/workloads"
)

// MixConfig shapes a synthetic batch workload: a stream of jobs with
// log-uniform sizes, exponential inter-arrival times and a configurable share
// of communication-intensive jobs. It stands in for the production job mix the
// paper's measurements were exposed to on Piz Daint and Cori.
type MixConfig struct {
	// Jobs is the number of jobs generated.
	Jobs int
	// MinNodes and MaxNodes bound the per-job node counts (log-uniform).
	MinNodes int
	MaxNodes int
	// MeanInterarrivalCycles is the mean gap between consecutive submissions.
	MeanInterarrivalCycles sim.Time
	// MinDurationCycles and MaxDurationCycles bound job run times (log-uniform).
	MinDurationCycles sim.Time
	MaxDurationCycles sim.Time
	// CommIntensiveFraction is the probability that a job is communication
	// intensive (heavier traffic, marked for the hybrid placement policy).
	CommIntensiveFraction float64
	// MessageBytes and IntervalCycles shape the traffic of ordinary jobs;
	// communication-intensive jobs send twice as large messages with an
	// all-to-all "bully" pattern.
	MessageBytes   int64
	IntervalCycles int64
	// Mode is the routing mode batch jobs use for their traffic.
	Mode routing.Mode
	// AppFraction is the probability that a job runs a real workload-driven
	// application (JobSpec.App) instead of being represented by a synthetic
	// traffic generator. 0 reproduces the historical all-synthetic mix
	// byte-for-byte; it requires an executor attached to the scheduler to
	// take effect.
	AppFraction float64
	// AppWorkloads are the registered workload names app jobs cycle through
	// deterministically; empty means alltoall, halo3d, allreduce.
	AppWorkloads []string
	// AppIterations is how many times each app job repeats its workload body
	// (minimum 1).
	AppIterations int
	// Seed seeds the mix's private random stream.
	Seed int64
}

// DefaultMixConfig returns a small mix suitable for laptop-scale simulations.
func DefaultMixConfig() MixConfig {
	return MixConfig{
		Jobs:                   16,
		MinNodes:               2,
		MaxNodes:               16,
		MeanInterarrivalCycles: 200_000,
		MinDurationCycles:      500_000,
		MaxDurationCycles:      4_000_000,
		CommIntensiveFraction:  0.35,
		MessageBytes:           8 << 10,
		IntervalCycles:         25_000,
		Mode:                   routing.Adaptive,
		Seed:                   1,
	}
}

// Validate reports whether the mix configuration is usable.
func (c MixConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("sched: mix needs at least one job")
	case c.MinNodes <= 0 || c.MaxNodes < c.MinNodes:
		return fmt.Errorf("sched: mix node bounds [%d, %d] are invalid", c.MinNodes, c.MaxNodes)
	case c.MeanInterarrivalCycles <= 0:
		return fmt.Errorf("sched: mean interarrival must be positive")
	case c.MinDurationCycles <= 0 || c.MaxDurationCycles < c.MinDurationCycles:
		return fmt.Errorf("sched: mix duration bounds [%d, %d] are invalid", c.MinDurationCycles, c.MaxDurationCycles)
	case c.CommIntensiveFraction < 0 || c.CommIntensiveFraction > 1:
		return fmt.Errorf("sched: CommIntensiveFraction must be in [0, 1]")
	case c.AppFraction < 0 || c.AppFraction > 1:
		return fmt.Errorf("sched: AppFraction must be in [0, 1]")
	case c.MessageBytes <= 0 || c.IntervalCycles <= 0:
		return fmt.Errorf("sched: traffic parameters must be positive")
	}
	return nil
}

// logUniform samples an integer in [lo, hi] with log-uniform density.
func logUniform(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	v := float64(lo) * math.Pow(float64(hi)/float64(lo), rng.Float64())
	out := int64(v)
	if out < lo {
		out = lo
	}
	if out > hi {
		out = hi
	}
	return out
}

// GenerateMix builds the job list described by the configuration. Node counts
// are clamped to maxJobNodes (typically the machine size minus any reserved
// foreground allocation).
func GenerateMix(cfg MixConfig, maxJobNodes int) ([]JobSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxJobNodes < cfg.MinNodes {
		return nil, fmt.Errorf("sched: machine provides %d schedulable nodes, mix needs at least %d",
			maxJobNodes, cfg.MinNodes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	appWorkloads := cfg.AppWorkloads
	if len(appWorkloads) == 0 {
		appWorkloads = []string{"alltoall", "halo3d", "allreduce"}
	}
	specs := make([]JobSpec, 0, cfg.Jobs)
	var arrival sim.Time
	apps := 0
	for i := 0; i < cfg.Jobs; i++ {
		nodes := int(logUniform(rng, int64(cfg.MinNodes), int64(cfg.MaxNodes)))
		if nodes > maxJobNodes {
			nodes = maxJobNodes
		}
		duration := logUniform(rng, cfg.MinDurationCycles, cfg.MaxDurationCycles)
		commIntensive := rng.Float64() < cfg.CommIntensiveFraction
		traffic := TrafficSpec{
			Pattern:        noise.UniformRandom,
			MessageBytes:   cfg.MessageBytes,
			IntervalCycles: cfg.IntervalCycles,
			Mode:           cfg.Mode,
		}
		if commIntensive {
			traffic.Pattern = noise.AlltoallBully
			traffic.MessageBytes = cfg.MessageBytes * 2
		}
		// The app draw is guarded so an AppFraction of 0 consumes no random
		// numbers: the historical all-synthetic mixes stay byte-identical.
		var app *AppSpec
		if cfg.AppFraction > 0 && nodes >= 2 && rng.Float64() < cfg.AppFraction {
			name := appWorkloads[apps%len(appWorkloads)]
			app = &AppSpec{
				Workload:     name,
				MessageBytes: workloads.SizeFor(name, traffic.MessageBytes),
				Iterations:   max(cfg.AppIterations, 1),
			}
			apps++
		}
		specs = append(specs, JobSpec{
			Name:           fmt.Sprintf("job-%03d", i),
			Nodes:          nodes,
			ArrivalCycles:  arrival,
			DurationCycles: duration,
			CommIntensive:  commIntensive,
			Traffic:        traffic,
			App:            app,
		})
		gap := sim.Time(rng.ExpFloat64() * float64(cfg.MeanInterarrivalCycles))
		if gap < 1 {
			gap = 1
		}
		arrival += gap
	}
	return specs, nil
}

// MustGenerateMix is like GenerateMix but panics on error.
func MustGenerateMix(cfg MixConfig, maxJobNodes int) []JobSpec {
	specs, err := GenerateMix(cfg, maxJobNodes)
	if err != nil {
		panic(err)
	}
	return specs
}
