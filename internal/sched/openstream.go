package sched

import (
	"context"
	"fmt"
	"math/rand"

	"dragonfly/internal/alloc"
	"dragonfly/internal/arrival"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
)

// OpenConfig configures an open-arrival scheduling run.
type OpenConfig struct {
	// Placement is the allocation policy applied to every job.
	Placement AllocationPolicy
	// Seed seeds the placement random stream and, offset per client, the
	// arrival streams.
	Seed int64
	// MaxJobEvents stops admission after this many arrivals have been
	// admitted across all clients. HorizonCycles stops admission once a
	// client's next arrival falls past that simulated time. At least one of
	// the two must be set; jobs admitted before the cut always run to
	// completion, so the machine drains cleanly.
	MaxJobEvents  int
	HorizonCycles sim.Time
	// Traffic, when MessageBytes > 0, attaches a synthetic traffic generator
	// to every running job (same knob as JobSpec.Traffic). Zero keeps jobs
	// compute-only, which is what the million-event horizons use.
	Traffic TrafficSpec
	// FragSampleEvery samples the machine fragmentation into a digest every
	// N job starts (default 16; the scan is O(machine/64) words).
	FragSampleEvery int
}

// Event opcodes for the OpenStream handler (the a operand of HandleEvent).
const (
	opArrival int64 = iota // b = client/stream index
	opFinish               // b = job slot index
)

// openJob is one in-flight job in the slot arena. Slots are recycled through
// a free list and the nodes slice is reused across occupants, so the
// steady-state loop allocates nothing.
type openJob struct {
	client    int32
	nodesWant int32
	class     arrival.Class
	submitted sim.Time
	started   sim.Time
	duration  sim.Time
	nodes     []topo.NodeID
	gen       *noise.Generator
	alloc     *alloc.Allocation // only set when traffic generation is on
}

// OpenStream drives an always-on cluster simulation: jobs arrive from the
// spec's client streams indefinitely, are placed FCFS (no backfill — the
// queue discipline itself is a fairness baseline) against the live machine,
// and release their nodes when their drawn duration elapses. Unlike
// Scheduler, which keeps a record per job for post-hoc analysis, OpenStream
// folds every completed job into fixed-size streaming digests immediately:
// per-SLO-class slowdown and wait distributions, per-tenant means for the
// Jain fairness index, utilization and fragmentation. Live heap is O(machine
// + concurrent jobs), independent of how many million job events the horizon
// spans.
//
// OpenStream schedules only engine-level (serial-domain) events, so its
// output is byte-identical at every shard count.
type OpenStream struct {
	fabric *network.Fabric
	topo   *topo.Topology
	cfg    OpenConfig
	rng    *rand.Rand

	clients []arrival.Client
	streams []*arrival.Stream
	// pending holds each stream's drawn-but-not-yet-delivered arrival; the
	// opArrival event for stream i consumes pending[i] and draws the next.
	pending []arrival.Arrival
	closed  []bool // stream has passed the admission cut

	nodes   *alloc.Tracker
	jobs    []openJob
	free    []int32 // free job slots
	queue   []int32 // FCFS queue of waiting job slots
	scratch []topo.NodeID

	started   bool
	admitted  int
	startedN  int
	finishedN int
	running   int
	busyCount int
	maxQueue  int
	lastAt    sim.Time

	busyNodeCycles uint64
	lastAccounting sim.Time
	origin         sim.Time // engine time when Start ran; stream times are relative to it

	slowdown   [arrival.NumClasses]*stats.Digest
	wait       [arrival.NumClasses]*stats.Digest
	violations [arrival.NumClasses]int64
	classDone  [arrival.NumClasses]int64

	clientSlowSum []float64
	clientDone    []int64

	frag *stats.Digest
}

// NewOpenStream builds an open-arrival run over the fabric's machine.
func NewOpenStream(f *network.Fabric, spec arrival.Spec, cfg OpenConfig) (*OpenStream, error) {
	if cfg.MaxJobEvents <= 0 && cfg.HorizonCycles <= 0 {
		return nil, fmt.Errorf("sched: open stream needs MaxJobEvents or HorizonCycles (it never stops otherwise)")
	}
	if cfg.FragSampleEvery <= 0 {
		cfg.FragSampleEvery = 16
	}
	spec = spec.Normalize()
	streams, err := arrival.NewStreams(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := f.Topology()
	for _, c := range spec.Clients {
		if c.MaxNodes > t.NumNodes() {
			return nil, fmt.Errorf("sched: client %q draws jobs up to %d nodes but the machine has %d",
				c.Name, c.MaxNodes, t.NumNodes())
		}
	}
	o := &OpenStream{
		fabric:        f,
		topo:          t,
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		clients:       spec.Clients,
		streams:       streams,
		pending:       make([]arrival.Arrival, len(streams)),
		closed:        make([]bool, len(streams)),
		nodes:         alloc.NewTracker(t),
		clientSlowSum: make([]float64, len(streams)),
		clientDone:    make([]int64, len(streams)),
		frag:          stats.NewDigest(),
	}
	for c := range o.slowdown {
		o.slowdown[c] = stats.NewDigest()
		o.wait[c] = stats.NewDigest()
	}
	return o, nil
}

// Start draws the first arrival of every client stream and schedules it. It
// must be called once before the engine runs.
func (o *OpenStream) Start() {
	if o.started {
		return
	}
	o.started = true
	eng := o.fabric.Engine()
	o.origin = eng.Now()
	o.lastAccounting = o.origin
	for i := range o.streams {
		o.advanceStream(eng, i)
	}
}

// Drive runs the simulation to completion: every admitted job has finished
// and the event queue has drained. The context, when non-nil, cancels the run.
func (o *OpenStream) Drive(ctx context.Context) error {
	eng := o.fabric.Engine()
	if ctx == nil {
		return eng.Run()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		stepped, err := eng.Step()
		if err != nil {
			return err
		}
		if !stepped {
			return nil
		}
	}
}

// advanceStream draws stream i's next arrival and schedules its event, or
// closes the stream when the admission cut (job-event budget or horizon) is
// reached.
func (o *OpenStream) advanceStream(eng *sim.Engine, i int) {
	if o.closed[i] {
		return
	}
	if o.cfg.MaxJobEvents > 0 && o.admitted >= o.cfg.MaxJobEvents {
		o.closed[i] = true
		return
	}
	a := o.streams[i].Next()
	if o.cfg.HorizonCycles > 0 && a.At > o.cfg.HorizonCycles {
		o.closed[i] = true
		return
	}
	o.pending[i] = a
	o.admitted++
	eng.ScheduleCall(o.origin+a.At, o, opArrival, int64(i))
}

// HandleEvent dispatches the two event kinds: an arrival admits one job and
// re-arms its stream; a finish releases one job's nodes.
func (o *OpenStream) HandleEvent(e *sim.Engine, op, arg int64) {
	switch op {
	case opArrival:
		o.handleArrival(e, int(arg))
	case opFinish:
		o.finishJob(e, int32(arg))
	default:
		panic(fmt.Sprintf("sched: open stream got unknown opcode %d", op))
	}
}

// handleArrival turns stream i's pending arrival into a queued job, runs a
// scheduling pass and draws the stream's next arrival.
func (o *OpenStream) handleArrival(eng *sim.Engine, i int) {
	a := o.pending[i]
	slot := o.grabSlot()
	j := &o.jobs[slot]
	j.client = int32(a.Client)
	j.nodesWant = int32(a.Nodes)
	j.class = a.Class
	j.submitted = eng.Now()
	j.duration = a.DurationCycles
	o.queue = append(o.queue, slot)
	if len(o.queue) > o.maxQueue {
		o.maxQueue = len(o.queue)
	}
	o.trySchedule(eng)
	o.advanceStream(eng, i)
}

// grabSlot returns a free job slot, growing the arena only when every slot is
// occupied (arena size tracks peak concurrency, not total jobs).
func (o *OpenStream) grabSlot() int32 {
	if n := len(o.free); n > 0 {
		slot := o.free[n-1]
		o.free = o.free[:n-1]
		return slot
	}
	o.jobs = append(o.jobs, openJob{})
	return int32(len(o.jobs) - 1)
}

// trySchedule starts queued jobs FCFS while the head fits. No backfill: a
// blocked head blocks the queue, which is exactly the discipline whose
// per-class slowdowns the fairness accounting measures.
func (o *OpenStream) trySchedule(eng *sim.Engine) {
	for len(o.queue) > 0 {
		slot := o.queue[0]
		j := &o.jobs[slot]
		if int(j.nodesWant) > o.nodes.FreeNodes() {
			return
		}
		o.queue = o.queue[:copy(o.queue, o.queue[1:])]
		o.startJob(eng, slot)
	}
	// Reset the queue's backing array position when empty so it cannot crawl
	// forward forever under append/copy churn.
	o.queue = o.queue[:0]
}

// startJob places one job and schedules its completion.
func (o *OpenStream) startJob(eng *sim.Engine, slot int32) {
	j := &o.jobs[slot]
	o.accountUtilization(eng)
	nodes, err := o.nodes.Allocate(policyFor(o.cfg.Placement, false), int(j.nodesWant), o.rng, j.nodes[:0])
	if err != nil {
		// Cannot happen: trySchedule checked FreeNodes. Requeue at the head.
		o.queue = append(o.queue, 0)
		copy(o.queue[1:], o.queue)
		o.queue[0] = slot
		return
	}
	j.nodes = nodes
	j.started = eng.Now()
	o.busyCount += len(nodes)
	o.running++
	o.startedN++
	if o.startedN%o.cfg.FragSampleEvery == 0 {
		o.frag.Add(o.nodes.Fragmentation())
	}
	if o.cfg.Traffic.MessageBytes > 0 && len(nodes) >= 2 {
		a := alloc.NewAllocation(o.topo, nodes)
		cfg := noise.GeneratorConfig{
			Pattern:             o.cfg.Traffic.Pattern,
			MessageBytes:        o.cfg.Traffic.MessageBytes,
			IntervalCycles:      o.cfg.Traffic.IntervalCycles,
			JitterFraction:      0.5,
			Mode:                o.cfg.Traffic.Mode,
			BurstLengthMessages: 32,
			BurstIdleCycles:     200_000,
			Seed:                o.cfg.Seed*1_000_003 + int64(o.startedN),
		}
		if g, err := noise.FromAllocation(o.fabric, a, cfg); err == nil {
			j.alloc = a
			j.gen = g
			g.Start(eng.Now() + j.duration)
		}
	}
	eng.ScheduleCall(eng.Now()+j.duration, o, opFinish, int64(slot))
}

// finishJob releases the job's nodes, folds its wait and slowdown into the
// class and tenant accumulators, and recycles the slot.
func (o *OpenStream) finishJob(eng *sim.Engine, slot int32) {
	j := &o.jobs[slot]
	o.accountUtilization(eng)
	if j.gen != nil {
		j.gen.Stop()
		j.gen, j.alloc = nil, nil
	}
	o.nodes.Free(j.nodes)
	o.busyCount -= len(j.nodes)
	o.running--
	o.finishedN++
	if t := eng.Now(); t > o.lastAt {
		o.lastAt = t
	}

	wait := j.started - j.submitted
	run := eng.Now() - j.started
	if run <= 0 {
		run = 1
	}
	slow := float64(wait+run) / float64(run)
	c := j.class
	o.wait[c].Add(float64(wait))
	o.slowdown[c].Add(slow)
	o.classDone[c]++
	if slow > c.TargetSlowdown() {
		o.violations[c]++
	}
	o.clientSlowSum[j.client] += slow
	o.clientDone[j.client]++

	o.free = append(o.free, slot)
	o.trySchedule(eng)
}

// accountUtilization integrates busy node-cycles up to the current time.
func (o *OpenStream) accountUtilization(eng *sim.Engine) {
	now := eng.Now()
	if now > o.lastAccounting {
		o.busyNodeCycles += uint64(now-o.lastAccounting) * uint64(o.busyCount)
		o.lastAccounting = now
	}
}

// policyFor maps the scheduler placement policy to an alloc.Policy.
func policyFor(p AllocationPolicy, commIntensive bool) alloc.Policy {
	switch p {
	case PlaceRandom:
		return alloc.RandomScatter
	case PlaceGroupStriped:
		return alloc.GroupStriped
	case PlaceHybrid:
		if commIntensive {
			return alloc.RandomScatter
		}
		return alloc.Contiguous
	default:
		return alloc.Contiguous
	}
}

// ClassStats summarizes one SLO class over a run.
type ClassStats struct {
	// Finished counts completed jobs of the class.
	Finished int64
	// Slowdown and WaitCycles are the streaming distributions over completed
	// jobs ((wait+run)/run, and wait, respectively).
	Slowdown   stats.Summary
	WaitCycles stats.Summary
	// TargetSlowdown echoes the class SLO bound; ViolationFrac is the
	// fraction of completed jobs whose slowdown exceeded it (always 0 for
	// best-effort, whose bound is +Inf).
	TargetSlowdown float64
	ViolationFrac  float64
}

// OpenStats summarizes an open-arrival run.
type OpenStats struct {
	// Admitted, Started and Finished count job events through the pipeline;
	// after a drained run all three are equal.
	Admitted, Started, Finished int
	// MakespanCycles is the time from Start to the last job completion.
	MakespanCycles sim.Time
	// MaxQueueLength is the peak backlog observed.
	MaxQueueLength int
	// Utilization is busy node-cycles over machine node-cycles for the run.
	Utilization float64
	// Fragmentation is the distribution of the free-capacity fragmentation
	// metric sampled across job starts.
	Fragmentation stats.Summary
	// Classes holds the per-SLO-class distributions, indexed by arrival.Class.
	Classes [arrival.NumClasses]ClassStats
	// JainFairness is Jain's index over the per-tenant mean slowdowns of
	// every client that completed at least one job: 1 when all tenants see
	// the same mean slowdown, approaching 1/n when one tenant absorbs all
	// the queueing.
	JainFairness float64
}

// Stats computes the summary. Call after Drive has drained the run.
func (o *OpenStream) Stats() OpenStats {
	o.accountUtilization(o.fabric.Engine())
	st := OpenStats{
		Admitted:       o.admitted,
		Started:        o.startedN,
		Finished:       o.finishedN,
		MakespanCycles: o.lastAt - o.origin,
		MaxQueueLength: o.maxQueue,
		Fragmentation:  o.frag.Summary(),
	}
	for c := 0; c < arrival.NumClasses; c++ {
		cs := ClassStats{
			Finished:       o.classDone[c],
			Slowdown:       o.slowdown[c].Summary(),
			WaitCycles:     o.wait[c].Summary(),
			TargetSlowdown: arrival.Class(c).TargetSlowdown(),
		}
		if o.classDone[c] > 0 {
			cs.ViolationFrac = float64(o.violations[c]) / float64(o.classDone[c])
		}
		st.Classes[c] = cs
	}
	means := make([]float64, 0, len(o.clientDone))
	for i, n := range o.clientDone {
		if n > 0 {
			means = append(means, o.clientSlowSum[i]/float64(n))
		}
	}
	st.JainFairness = arrival.JainIndex(means)
	window := o.lastAt - o.origin
	if window > 0 {
		st.Utilization = float64(o.busyNodeCycles) / (float64(window) * float64(o.topo.NumNodes()))
	}
	return st
}
