package sched

import (
	"fmt"
	"testing"

	"dragonfly/internal/arrival"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
)

func openSpec(meanGap int64) arrival.Spec {
	return arrival.Spec{Clients: arrival.DefaultClients(3, meanGap)}.Normalize()
}

func TestOpenStreamDrains(t *testing.T) {
	f := testFabric(t, 4, 1)
	o, err := NewOpenStream(f, openSpec(40_000), OpenConfig{
		Placement:    PlaceContiguous,
		Seed:         7,
		MaxJobEvents: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	if err := o.Drive(nil); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Admitted != 2_000 || st.Started != st.Admitted || st.Finished != st.Admitted {
		t.Fatalf("pipeline did not drain: %+v", st)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v out of (0, 1]", st.Utilization)
	}
	if st.JainFairness <= 0 || st.JainFairness > 1+1e-12 {
		t.Fatalf("Jain index %v out of (0, 1]", st.JainFairness)
	}
	var done int64
	for c := 0; c < arrival.NumClasses; c++ {
		cs := st.Classes[c]
		done += cs.Finished
		if cs.Finished > 0 && cs.Slowdown.Min < 1 {
			t.Fatalf("class %v min slowdown %v < 1", arrival.Class(c), cs.Slowdown.Min)
		}
		if cs.ViolationFrac < 0 || cs.ViolationFrac > 1 {
			t.Fatalf("class %v violation fraction %v out of [0, 1]", arrival.Class(c), cs.ViolationFrac)
		}
	}
	if done != int64(st.Finished) {
		t.Fatalf("class counts sum to %d, finished %d", done, st.Finished)
	}
	if arrival.BestEffort.TargetSlowdown() < st.Classes[arrival.BestEffort].Slowdown.Max {
		t.Fatalf("best-effort target should be unbounded")
	}
	if st.Fragmentation.N == 0 {
		t.Fatalf("fragmentation was never sampled")
	}
}

func TestOpenStreamHorizonCut(t *testing.T) {
	f := testFabric(t, 2, 1)
	const horizon = 5_000_000
	o, err := NewOpenStream(f, openSpec(50_000), OpenConfig{
		Placement:     PlaceGroupStriped,
		Seed:          3,
		HorizonCycles: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	if err := o.Drive(nil); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Admitted == 0 {
		t.Fatalf("horizon run admitted nothing")
	}
	if st.Finished != st.Admitted {
		t.Fatalf("admitted jobs must drain past the horizon: %+v", st)
	}
	// ~3 clients x horizon/meanGap arrivals expected; sanity-bound it.
	if st.Admitted < 100 || st.Admitted > 3*horizon/50_000+50 {
		t.Fatalf("admitted %d jobs, outside plausible range", st.Admitted)
	}
}

func TestOpenStreamDeterminism(t *testing.T) {
	run := func() string {
		f := testFabric(t, 4, 9)
		o, err := NewOpenStream(f, openSpec(30_000), OpenConfig{
			Placement:    PlaceRandom,
			Seed:         11,
			MaxJobEvents: 1_500,
			Traffic: TrafficSpec{
				Pattern:        noise.UniformRandom,
				MessageBytes:   1 << 10,
				IntervalCycles: 100_000,
				Mode:           routing.Adaptive,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		o.Start()
		if err := o.Drive(nil); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", o.Stats())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestOpenStreamRequiresBound(t *testing.T) {
	f := testFabric(t, 2, 1)
	if _, err := NewOpenStream(f, openSpec(50_000), OpenConfig{}); err == nil {
		t.Fatalf("unbounded open stream was accepted")
	}
}

// TestOpenStreamSlotRecycling checks the job arena tracks peak concurrency,
// not total job count: thousands of jobs must churn through a bounded arena.
func TestOpenStreamSlotRecycling(t *testing.T) {
	f := testFabric(t, 2, 1)
	o, err := NewOpenStream(f, openSpec(80_000), OpenConfig{
		Placement:    PlaceContiguous,
		Seed:         5,
		MaxJobEvents: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	if err := o.Drive(nil); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Finished != 5_000 {
		t.Fatalf("finished %d, want 5000", st.Finished)
	}
	if len(o.jobs) > st.MaxQueueLength+5_000/10 {
		// The arena may exceed peak queue length by peak running jobs, but it
		// must be nowhere near the total job count.
		t.Fatalf("slot arena grew to %d for %d jobs (max queue %d) — slots are not recycled",
			len(o.jobs), st.Finished, st.MaxQueueLength)
	}
	if o.nodes.FreeNodes() != o.topo.NumNodes() {
		t.Fatalf("machine did not drain: %d/%d free", o.nodes.FreeNodes(), o.topo.NumNodes())
	}
}

// TestOpenStreamLatencyBeatsBestEffort is the SLO sanity check on a loaded
// machine: small latency-class jobs should see no worse mean slowdown than
// large best-effort jobs under FCFS (they fit more easily when the head
// drains, and never wait behind their own giant siblings).
func TestOpenStreamClassAccounting(t *testing.T) {
	f := testFabric(t, 4, 2)
	spec := arrival.Spec{Clients: []arrival.Client{
		{Class: arrival.Latency, Dist: arrival.Poisson, MeanInterarrivalCycles: 30_000,
			MinNodes: 1, MaxNodes: 2, MinDurationCycles: 50_000, MaxDurationCycles: 100_000},
		{Class: arrival.Batch, Dist: arrival.Gamma, Shape: 2, MeanInterarrivalCycles: 60_000,
			MinNodes: 8, MaxNodes: 16, MinDurationCycles: 200_000, MaxDurationCycles: 800_000},
	}}.Normalize()
	o, err := NewOpenStream(f, spec, OpenConfig{
		Placement:    PlaceContiguous,
		Seed:         13,
		MaxJobEvents: 3_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Start()
	if err := o.Drive(nil); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	lat, bat := st.Classes[arrival.Latency], st.Classes[arrival.Batch]
	if lat.Finished == 0 || bat.Finished == 0 {
		t.Fatalf("both classes must finish jobs: %+v / %+v", lat, bat)
	}
	if st.Classes[arrival.BestEffort].Finished != 0 {
		t.Fatalf("no best-effort client was configured but %d finished", st.Classes[arrival.BestEffort].Finished)
	}
	if lat.WaitCycles.Mean < 0 || bat.WaitCycles.Mean < 0 {
		t.Fatalf("negative mean wait: %+v / %+v", lat, bat)
	}
	if st.MakespanCycles <= 0 {
		t.Fatalf("makespan %d", st.MakespanCycles)
	}
	_ = sim.Time(0)
}
