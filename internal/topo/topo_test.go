package topo

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"aries-6", AriesConfig(6), false},
		{"aries-1-group", AriesConfig(1), false},
		{"small-3", SmallConfig(3), false},
		{"zero groups", Config{}, true},
		{"no chassis", Config{Groups: 2, BladesPerChassis: 4, NodesPerBlade: 1, GlobalLinksPerRouter: 1, IntraChassisLinkWidth: 1, IntraGroupLinkWidth: 1, GlobalLinkWidth: 1}, true},
		{"no global ports multi group", Config{Groups: 3, ChassisPerGroup: 2, BladesPerChassis: 2, NodesPerBlade: 1, GlobalLinksPerRouter: 0, IntraChassisLinkWidth: 1, IntraGroupLinkWidth: 1, GlobalLinkWidth: 1}, true},
		{"zero width", Config{Groups: 1, ChassisPerGroup: 2, BladesPerChassis: 2, NodesPerBlade: 1, GlobalLinksPerRouter: 1, IntraChassisLinkWidth: 0, IntraGroupLinkWidth: 1, GlobalLinkWidth: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestSizes(t *testing.T) {
	cfg := AriesConfig(6)
	if got := cfg.RoutersPerGroup(); got != 96 {
		t.Fatalf("RoutersPerGroup = %d, want 96", got)
	}
	if got := cfg.Routers(); got != 576 {
		t.Fatalf("Routers = %d, want 576", got)
	}
	if got := cfg.Nodes(); got != 2304 {
		t.Fatalf("Nodes = %d, want 2304", got)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	tt := MustNew(SmallConfig(3))
	for r := 0; r < tt.NumRouters(); r++ {
		c := tt.CoordOf(RouterID(r))
		if back := tt.RouterAt(c); back != RouterID(r) {
			t.Fatalf("round trip failed for router %d: coord %v -> %d", r, c, back)
		}
	}
}

func TestNodeRouterMapping(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	perBlade := tt.Config().NodesPerBlade
	for n := 0; n < tt.NumNodes(); n++ {
		r := tt.RouterOfNode(NodeID(n))
		if int(r) != n/perBlade {
			t.Fatalf("node %d mapped to router %d, want %d", n, r, n/perBlade)
		}
		nodes := tt.NodesOfRouter(r)
		found := false
		for _, nn := range nodes {
			if nn == NodeID(n) {
				found = true
			}
		}
		if !found {
			t.Fatalf("NodesOfRouter(%d) = %v does not contain node %d", r, nodes, n)
		}
	}
}

func TestIntraChassisFullyConnected(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	cfg := tt.Config()
	for c := 0; c < cfg.ChassisPerGroup; c++ {
		for b1 := 0; b1 < cfg.BladesPerChassis; b1++ {
			for b2 := 0; b2 < cfg.BladesPerChassis; b2++ {
				if b1 == b2 {
					continue
				}
				src := tt.RouterAt(Coord{0, c, b1})
				dst := tt.RouterAt(Coord{0, c, b2})
				id := tt.LinkBetween(src, dst)
				if id == InvalidLink {
					t.Fatalf("missing intra-chassis link %v -> %v", tt.CoordOf(src), tt.CoordOf(dst))
				}
				if tt.Link(id).Type != LinkIntraChassis {
					t.Fatalf("link %v->%v has type %v, want intra-chassis", src, dst, tt.Link(id).Type)
				}
			}
		}
	}
}

func TestIntraGroupRowConnected(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	cfg := tt.Config()
	for b := 0; b < cfg.BladesPerChassis; b++ {
		for c1 := 0; c1 < cfg.ChassisPerGroup; c1++ {
			for c2 := 0; c2 < cfg.ChassisPerGroup; c2++ {
				if c1 == c2 {
					continue
				}
				src := tt.RouterAt(Coord{1, c1, b})
				dst := tt.RouterAt(Coord{1, c2, b})
				id := tt.LinkBetween(src, dst)
				if id == InvalidLink {
					t.Fatalf("missing row link %v -> %v", tt.CoordOf(src), tt.CoordOf(dst))
				}
				if tt.Link(id).Type != LinkIntraGroup {
					t.Fatalf("link has type %v, want intra-group", tt.Link(id).Type)
				}
			}
		}
	}
}

func TestNoCrossChassisDiagonalLinks(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	// A router must not be directly connected to a router in another chassis
	// with a different blade index (that requires two hops).
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{0, 1, 1})
	if tt.LinkBetween(src, dst) != InvalidLink {
		t.Fatal("unexpected diagonal intra-group link")
	}
}

func TestGlobalLinksExistBetweenAllGroupPairs(t *testing.T) {
	for _, groups := range []int{2, 3, 5} {
		tt := MustNew(SmallConfig(groups))
		for g1 := 0; g1 < groups; g1++ {
			for g2 := 0; g2 < groups; g2++ {
				if g1 == g2 {
					continue
				}
				links := tt.GlobalLinks(GroupID(g1), GroupID(g2))
				if len(links) == 0 {
					t.Fatalf("groups=%d: no global links from group %d to %d", groups, g1, g2)
				}
				for _, id := range links {
					l := tt.Link(id)
					if tt.GroupOf(l.Src) != GroupID(g1) || tt.GroupOf(l.Dst) != GroupID(g2) {
						t.Fatalf("global link %d connects groups %d->%d, want %d->%d",
							id, tt.GroupOf(l.Src), tt.GroupOf(l.Dst), g1, g2)
					}
					if l.Type != LinkGlobal {
						t.Fatalf("global link %d has type %v", id, l.Type)
					}
				}
			}
		}
	}
}

func TestGlobalLinksExistAries(t *testing.T) {
	tt := MustNew(AriesConfig(6))
	for g1 := 0; g1 < 6; g1++ {
		for g2 := 0; g2 < 6; g2++ {
			if g1 == g2 {
				continue
			}
			if len(tt.GlobalLinks(GroupID(g1), GroupID(g2))) == 0 {
				t.Fatalf("no global links between Aries groups %d and %d", g1, g2)
			}
		}
	}
}

func TestLinksAreDirectedPairs(t *testing.T) {
	tt := MustNew(SmallConfig(3))
	for _, l := range tt.Links() {
		if l.Src == l.Dst {
			t.Fatalf("self link %d at router %d", l.ID, l.Src)
		}
		// The reverse direction must also exist (full-duplex cables).
		if tt.LinkBetween(l.Dst, l.Src) == InvalidLink {
			t.Fatalf("missing reverse link for %d -> %d", l.Src, l.Dst)
		}
		if l.Width < 1 {
			t.Fatalf("link %d has width %d", l.ID, l.Width)
		}
	}
}

func TestClassify(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	cfg := tt.Config()
	node := func(g, c, b, i int) NodeID {
		r := tt.RouterAt(Coord{g, c, b})
		return NodeID(int(r)*cfg.NodesPerBlade + i)
	}
	cases := []struct {
		name string
		a, b NodeID
		want AllocationClass
	}{
		{"same node", node(0, 0, 0, 0), node(0, 0, 0, 0), AllocSameNode},
		{"same blade", node(0, 0, 0, 0), node(0, 0, 0, 1), AllocInterNodes},
		{"same chassis", node(0, 0, 0, 0), node(0, 0, 1, 0), AllocInterBlades},
		{"same group", node(0, 0, 0, 0), node(0, 1, 1, 0), AllocInterChassis},
		{"different group", node(0, 0, 0, 0), node(1, 0, 0, 0), AllocInterGroups},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tt.Classify(tc.a, tc.b); got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestNeighborsCount(t *testing.T) {
	tt := MustNew(AriesConfig(2))
	cfg := tt.Config()
	r := tt.RouterAt(Coord{0, 0, 0})
	n := tt.Neighbors(r)
	// At least all intra-chassis and row neighbors must be present.
	minWant := (cfg.BladesPerChassis - 1) + (cfg.ChassisPerGroup - 1)
	if len(n) < minWant {
		t.Fatalf("router has %d neighbors, want at least %d", len(n), minWant)
	}
}

func TestLinkTypeString(t *testing.T) {
	if LinkIntraChassis.String() != "intra-chassis" ||
		LinkIntraGroup.String() != "intra-group" ||
		LinkGlobal.String() != "global" {
		t.Fatal("unexpected LinkType string values")
	}
	if LinkType(99).String() == "" {
		t.Fatal("unknown link type must still format")
	}
}

func TestAllocationClassString(t *testing.T) {
	want := map[AllocationClass]string{
		AllocSameNode:     "Same-Node",
		AllocInterNodes:   "Inter-Nodes",
		AllocInterBlades:  "Inter-Blades",
		AllocInterChassis: "Inter-Chassis",
		AllocInterGroups:  "Inter-Groups",
	}
	for k, v := range want {
		if k.String() != v {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), v)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestCoordString(t *testing.T) {
	c := Coord{Group: 1, Chassis: 2, Blade: 3}
	if c.String() != "g1c2b3" {
		t.Fatalf("Coord.String() = %q", c.String())
	}
}
