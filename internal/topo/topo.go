// Package topo models the Cray Aries Dragonfly topology used by the paper
// "Mitigating Network Noise on Dragonfly Networks through Application-Aware
// Routing" (De Sensi et al., SC'19).
//
// The Aries interconnect is organized in three connectivity tiers: groups,
// chassis and blades. Each group contains ChassisPerGroup chassis, each
// chassis contains BladesPerChassis blades, and each blade holds one Aries
// router plus NodesPerBlade compute nodes. Within a group a router is directly
// connected to every other router in the same chassis (intra-chassis links)
// and to the routers in the same blade position of every other chassis
// (intra-group, "row" links). Groups are connected by optical global links
// attached to individual routers.
//
// The package provides construction of the topology graph, node-to-router
// mapping, allocation-distance classification, and sampling of minimal and
// non-minimal (Valiant-style) paths used by the routing package.
package topo

import (
	"fmt"
)

// RouterID identifies an Aries router (one per blade).
type RouterID int32

// NodeID identifies a compute node.
type NodeID int32

// GroupID identifies a Dragonfly group.
type GroupID int32

// LinkID indexes a directed router-to-router link in Topology.Links.
type LinkID int32

// InvalidLink is returned by lookups when no link connects two routers.
const InvalidLink LinkID = -1

// LinkType classifies a link by its tier; the network model assigns different
// propagation latencies and widths per type.
type LinkType uint8

const (
	// LinkIntraChassis connects two routers in the same chassis (backplane).
	LinkIntraChassis LinkType = iota
	// LinkIntraGroup connects two routers in the same blade position of two
	// chassis of the same group (electrical cable).
	LinkIntraGroup
	// LinkGlobal connects routers in two different groups (optical cable).
	LinkGlobal
)

// String returns a human-readable link type name.
func (t LinkType) String() string {
	switch t {
	case LinkIntraChassis:
		return "intra-chassis"
	case LinkIntraGroup:
		return "intra-group"
	case LinkGlobal:
		return "global"
	default:
		return fmt.Sprintf("LinkType(%d)", uint8(t))
	}
}

// Coord locates a router inside the machine.
type Coord struct {
	Group   int
	Chassis int
	Blade   int
}

// String formats the coordinate as g<group>c<chassis>b<blade>.
func (c Coord) String() string {
	return fmt.Sprintf("g%dc%db%d", c.Group, c.Chassis, c.Blade)
}

// Link is a directed connection between two routers. Parallel physical tiles
// between the same pair of routers are collapsed into a single Link with a
// Width equal to the number of tiles; the network model scales bandwidth by
// Width.
type Link struct {
	ID    LinkID
	Src   RouterID
	Dst   RouterID
	Type  LinkType
	Width int
}

// Config describes the size and wiring of a Dragonfly system.
type Config struct {
	// Groups is the number of Dragonfly groups (>= 1).
	Groups int
	// ChassisPerGroup is the number of chassis in a group (6 on Aries).
	ChassisPerGroup int
	// BladesPerChassis is the number of blades (routers) per chassis (16 on Aries).
	BladesPerChassis int
	// NodesPerBlade is the number of compute nodes attached to each router (4 on Aries).
	NodesPerBlade int
	// GlobalLinksPerRouter is the number of optical ports per router used for
	// inter-group connections (up to 10 on Aries).
	GlobalLinksPerRouter int
	// IntraGroupLinkWidth is the number of tiles per intra-group (row) connection (3 on Aries).
	IntraGroupLinkWidth int
	// IntraChassisLinkWidth is the number of tiles per intra-chassis connection (1 on Aries).
	IntraChassisLinkWidth int
	// GlobalLinkWidth is the number of tiles aggregated per inter-group connection.
	GlobalLinkWidth int
}

// AriesConfig returns a full-size Aries group geometry (6 chassis x 16 blades
// x 4 nodes) with the requested number of groups.
func AriesConfig(groups int) Config {
	return Config{
		Groups:                groups,
		ChassisPerGroup:       6,
		BladesPerChassis:      16,
		NodesPerBlade:         4,
		GlobalLinksPerRouter:  10,
		IntraGroupLinkWidth:   3,
		IntraChassisLinkWidth: 1,
		GlobalLinkWidth:       2,
	}
}

// PizDaintLikeConfig returns a geometry sized like the Piz Daint allocation
// used in the paper's Figure 8 (six groups of full Aries geometry, enough for
// a 1024-node job spread over 257 routers).
func PizDaintLikeConfig() Config { return AriesConfig(6) }

// CoriLikeConfig returns a geometry sized like the Cori allocation used in the
// paper's Figure 9 (five groups, 64-node job over 33 routers).
func CoriLikeConfig() Config { return AriesConfig(5) }

// SmallConfig returns a reduced geometry convenient for unit tests: g groups,
// 2 chassis per group, 4 blades per chassis, 2 nodes per blade.
func SmallConfig(groups int) Config {
	return Config{
		Groups:                groups,
		ChassisPerGroup:       2,
		BladesPerChassis:      4,
		NodesPerBlade:         2,
		GlobalLinksPerRouter:  2,
		IntraGroupLinkWidth:   3,
		IntraChassisLinkWidth: 1,
		GlobalLinkWidth:       2,
	}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	switch {
	case c.Groups < 1:
		return fmt.Errorf("topo: Groups must be >= 1, got %d", c.Groups)
	case c.ChassisPerGroup < 1:
		return fmt.Errorf("topo: ChassisPerGroup must be >= 1, got %d", c.ChassisPerGroup)
	case c.BladesPerChassis < 1:
		return fmt.Errorf("topo: BladesPerChassis must be >= 1, got %d", c.BladesPerChassis)
	case c.NodesPerBlade < 1:
		return fmt.Errorf("topo: NodesPerBlade must be >= 1, got %d", c.NodesPerBlade)
	case c.Groups > 1 && c.GlobalLinksPerRouter < 1:
		return fmt.Errorf("topo: GlobalLinksPerRouter must be >= 1 when Groups > 1")
	case c.IntraChassisLinkWidth < 1 || c.IntraGroupLinkWidth < 1 || c.GlobalLinkWidth < 1:
		return fmt.Errorf("topo: link widths must be >= 1")
	}
	if c.Groups > 1 {
		ports := c.RoutersPerGroup() * c.GlobalLinksPerRouter
		if ports < c.Groups-1 {
			return fmt.Errorf("topo: %d global ports per group cannot reach %d other groups",
				ports, c.Groups-1)
		}
	}
	return nil
}

// RoutersPerGroup returns the number of routers in one group.
func (c Config) RoutersPerGroup() int { return c.ChassisPerGroup * c.BladesPerChassis }

// Routers returns the total number of routers in the system.
func (c Config) Routers() int { return c.Groups * c.RoutersPerGroup() }

// Nodes returns the total number of compute nodes in the system.
func (c Config) Nodes() int { return c.Routers() * c.NodesPerBlade }

// Topology is the constructed Dragonfly graph.
type Topology struct {
	cfg Config

	coords []Coord // router -> coordinate
	links  []Link

	// adjacency: adj[src][dst] -> LinkID (at most one collapsed link per pair)
	adj []map[RouterID]LinkID
	// adjDense is the flattened adjacency matrix (src*NumRouters+dst ->
	// LinkID, InvalidLink when unconnected). Path construction runs once per
	// simulated packet, so the per-hop link lookup must be an indexed load,
	// not a map probe.
	adjDense []LinkID

	// globalByPair[(g1,g2)] lists links from a router of g1 to a router of g2.
	globalByPair map[[2]GroupID][]LinkID

	// viaGroups[(gs*Groups)+gd] lists the intermediate groups usable for a
	// Valiant detour between gs and gd (connected to both, excluding the
	// endpoints). Precomputed so per-packet non-minimal sampling performs no
	// connectivity scan and no allocation.
	viaGroups [][]GroupID
}

// New builds the topology described by cfg.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		cfg:          cfg,
		coords:       make([]Coord, cfg.Routers()),
		adj:          make([]map[RouterID]LinkID, cfg.Routers()),
		globalByPair: make(map[[2]GroupID][]LinkID),
	}
	for r := 0; r < cfg.Routers(); r++ {
		t.coords[r] = t.coordOf(RouterID(r))
		t.adj[r] = make(map[RouterID]LinkID)
	}
	t.buildLocalLinks()
	t.buildGlobalLinks()
	t.buildPathCaches()
	return t, nil
}

// buildPathCaches derives the per-packet lookup structures (dense adjacency,
// Valiant intermediate-group candidates) from the link graph.
func (t *Topology) buildPathCaches() {
	n := t.cfg.Routers()
	t.adjDense = make([]LinkID, n*n)
	for i := range t.adjDense {
		t.adjDense[i] = InvalidLink
	}
	for r, m := range t.adj {
		for dst, id := range m {
			t.adjDense[r*n+int(dst)] = id
		}
	}
	t.viaGroups = make([][]GroupID, t.cfg.Groups*t.cfg.Groups)
	for gs := 0; gs < t.cfg.Groups; gs++ {
		for gd := 0; gd < t.cfg.Groups; gd++ {
			var candidates []GroupID
			for g := 0; g < t.cfg.Groups; g++ {
				gi := GroupID(g)
				if g == gs || g == gd {
					continue
				}
				if len(t.GlobalLinks(GroupID(gs), gi)) > 0 && len(t.GlobalLinks(gi, GroupID(gd))) > 0 {
					candidates = append(candidates, gi)
				}
			}
			t.viaGroups[gs*t.cfg.Groups+gd] = candidates
		}
	}
}

// MustNew is like New but panics on configuration errors. It is intended for
// tests and examples with known-good configurations.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// NumRouters returns the number of routers.
func (t *Topology) NumRouters() int { return len(t.coords) }

// NumNodes returns the number of compute nodes.
func (t *Topology) NumNodes() int { return t.cfg.Nodes() }

// NumLinks returns the number of directed router-to-router links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Links returns the slice of all links. The caller must not modify it.
func (t *Topology) Links() []Link { return t.links }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// coordOf converts a router index to its coordinate.
func (t *Topology) coordOf(r RouterID) Coord {
	perGroup := t.cfg.RoutersPerGroup()
	g := int(r) / perGroup
	rest := int(r) % perGroup
	return Coord{
		Group:   g,
		Chassis: rest / t.cfg.BladesPerChassis,
		Blade:   rest % t.cfg.BladesPerChassis,
	}
}

// RouterAt returns the router at the given coordinate.
func (t *Topology) RouterAt(c Coord) RouterID {
	return RouterID(c.Group*t.cfg.RoutersPerGroup() +
		c.Chassis*t.cfg.BladesPerChassis + c.Blade)
}

// CoordOf returns the coordinate of router r.
func (t *Topology) CoordOf(r RouterID) Coord { return t.coords[r] }

// GroupOf returns the group of router r.
func (t *Topology) GroupOf(r RouterID) GroupID { return GroupID(t.coords[r].Group) }

// RouterOfNode returns the router (blade) a node is attached to.
func (t *Topology) RouterOfNode(n NodeID) RouterID {
	return RouterID(int(n) / t.cfg.NodesPerBlade)
}

// NodesOfRouter returns the node ids attached to router r.
func (t *Topology) NodesOfRouter(r RouterID) []NodeID {
	out := make([]NodeID, t.cfg.NodesPerBlade)
	base := int(r) * t.cfg.NodesPerBlade
	for i := range out {
		out[i] = NodeID(base + i)
	}
	return out
}

// GroupOfNode returns the group a node belongs to.
func (t *Topology) GroupOfNode(n NodeID) GroupID { return t.GroupOf(t.RouterOfNode(n)) }

// LinkBetween returns the link from src to dst, or InvalidLink if the two
// routers are not directly connected.
func (t *Topology) LinkBetween(src, dst RouterID) LinkID {
	return t.adjDense[int(src)*len(t.coords)+int(dst)]
}

// Neighbors returns the routers directly connected to r.
func (t *Topology) Neighbors(r RouterID) []RouterID {
	out := make([]RouterID, 0, len(t.adj[r]))
	for dst := range t.adj[r] {
		out = append(out, dst)
	}
	return out
}

// GlobalLinks returns the links connecting group g1 directly to group g2.
func (t *Topology) GlobalLinks(g1, g2 GroupID) []LinkID {
	return t.globalByPair[[2]GroupID{g1, g2}]
}

// addLink inserts a directed link and its adjacency entry.
func (t *Topology) addLink(src, dst RouterID, typ LinkType, width int) LinkID {
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, Src: src, Dst: dst, Type: typ, Width: width})
	t.adj[src][dst] = id
	return id
}

// buildLocalLinks wires intra-chassis (all-to-all within a chassis) and
// intra-group "row" links (all-to-all among same blade position across the
// chassis of a group).
func (t *Topology) buildLocalLinks() {
	cfg := t.cfg
	for g := 0; g < cfg.Groups; g++ {
		for c := 0; c < cfg.ChassisPerGroup; c++ {
			for b := 0; b < cfg.BladesPerChassis; b++ {
				src := t.RouterAt(Coord{g, c, b})
				// Intra-chassis: connect to every other blade in the same chassis.
				for b2 := 0; b2 < cfg.BladesPerChassis; b2++ {
					if b2 == b {
						continue
					}
					dst := t.RouterAt(Coord{g, c, b2})
					t.addLink(src, dst, LinkIntraChassis, cfg.IntraChassisLinkWidth)
				}
				// Intra-group rows: connect to the same blade position in every
				// other chassis of the group.
				for c2 := 0; c2 < cfg.ChassisPerGroup; c2++ {
					if c2 == c {
						continue
					}
					dst := t.RouterAt(Coord{g, c2, b})
					t.addLink(src, dst, LinkIntraGroup, cfg.IntraGroupLinkWidth)
				}
			}
		}
	}
}

// buildGlobalLinks distributes the optical ports of each group's routers over
// the other groups, using the canonical consecutive-port assignment: the k-th
// link between groups g1 < g2 attaches to port index(g2 in g1's peer list)*q+k
// of g1 and port index(g1 in g2's peer list)*q+k of g2, where q is the number
// of links per group pair. Ports map to routers round-robin by port/h.
func (t *Topology) buildGlobalLinks() {
	cfg := t.cfg
	if cfg.Groups < 2 {
		return
	}
	portsPerGroup := cfg.RoutersPerGroup() * cfg.GlobalLinksPerRouter
	q := portsPerGroup / (cfg.Groups - 1)
	if q < 1 {
		q = 1
	}
	routerOfPort := func(g, port int) RouterID {
		r := (port / cfg.GlobalLinksPerRouter) % cfg.RoutersPerGroup()
		return RouterID(g*cfg.RoutersPerGroup() + r)
	}
	peerIndex := func(g, peer int) int {
		// index of peer in g's sorted list of other groups
		if peer < g {
			return peer
		}
		return peer - 1
	}
	for g1 := 0; g1 < cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < cfg.Groups; g2++ {
			for k := 0; k < q; k++ {
				p1 := peerIndex(g1, g2)*q + k
				p2 := peerIndex(g2, g1)*q + k
				if p1 >= portsPerGroup || p2 >= portsPerGroup {
					continue
				}
				r1 := routerOfPort(g1, p1)
				r2 := routerOfPort(g2, p2)
				// A pair of routers may already be connected by an earlier
				// port assignment; collapse into the existing link by leaving
				// the adjacency as is (widths already aggregate tiles). The
				// dense adjacency is not built yet, so probe the map.
				if _, ok := t.adj[r1][r2]; !ok {
					id := t.addLink(r1, r2, LinkGlobal, cfg.GlobalLinkWidth)
					t.globalByPair[[2]GroupID{GroupID(g1), GroupID(g2)}] =
						append(t.globalByPair[[2]GroupID{GroupID(g1), GroupID(g2)}], id)
				}
				if _, ok := t.adj[r2][r1]; !ok {
					id := t.addLink(r2, r1, LinkGlobal, cfg.GlobalLinkWidth)
					t.globalByPair[[2]GroupID{GroupID(g2), GroupID(g1)}] =
						append(t.globalByPair[[2]GroupID{GroupID(g2), GroupID(g1)}], id)
				}
			}
		}
	}
}

// AllocationClass describes the topological distance between two nodes, in the
// terms used by the paper's Figure 3.
type AllocationClass uint8

const (
	// AllocSameNode means both endpoints are the same node.
	AllocSameNode AllocationClass = iota
	// AllocInterNodes means the two nodes share a blade (same router).
	AllocInterNodes
	// AllocInterBlades means the nodes sit on different blades of the same chassis.
	AllocInterBlades
	// AllocInterChassis means the nodes sit on different chassis of the same group.
	AllocInterChassis
	// AllocInterGroups means the nodes sit in different groups.
	AllocInterGroups
)

// String returns the paper's name for the allocation class.
func (a AllocationClass) String() string {
	switch a {
	case AllocSameNode:
		return "Same-Node"
	case AllocInterNodes:
		return "Inter-Nodes"
	case AllocInterBlades:
		return "Inter-Blades"
	case AllocInterChassis:
		return "Inter-Chassis"
	case AllocInterGroups:
		return "Inter-Groups"
	default:
		return fmt.Sprintf("AllocationClass(%d)", uint8(a))
	}
}

// Classify returns the allocation class of the pair (a, b).
func (t *Topology) Classify(a, b NodeID) AllocationClass {
	if a == b {
		return AllocSameNode
	}
	ra, rb := t.RouterOfNode(a), t.RouterOfNode(b)
	if ra == rb {
		return AllocInterNodes
	}
	ca, cb := t.coords[ra], t.coords[rb]
	if ca.Group != cb.Group {
		return AllocInterGroups
	}
	if ca.Chassis != cb.Chassis {
		return AllocInterChassis
	}
	return AllocInterBlades
}
