// Package topo models the Cray Aries Dragonfly topology used by the paper
// "Mitigating Network Noise on Dragonfly Networks through Application-Aware
// Routing" (De Sensi et al., SC'19).
//
// The Aries interconnect is organized in three connectivity tiers: groups,
// chassis and blades. Each group contains ChassisPerGroup chassis, each
// chassis contains BladesPerChassis blades, and each blade holds one Aries
// router plus NodesPerBlade compute nodes. Within a group a router is directly
// connected to every other router in the same chassis (intra-chassis links)
// and to the routers in the same blade position of every other chassis
// (intra-group, "row" links). Groups are connected by optical global links
// attached to individual routers.
//
// The package provides construction of the topology graph, node-to-router
// mapping, allocation-distance classification, and sampling of minimal and
// non-minimal (Valiant-style) paths used by the routing package.
package topo

import (
	"fmt"
)

// RouterID identifies an Aries router (one per blade).
type RouterID int32

// NodeID identifies a compute node.
type NodeID int32

// GroupID identifies a Dragonfly group.
type GroupID int32

// LinkID indexes a directed router-to-router link in Topology.Links.
type LinkID int32

// InvalidLink is returned by lookups when no link connects two routers.
const InvalidLink LinkID = -1

// LinkType classifies a link by its tier; the network model assigns different
// propagation latencies and widths per type.
type LinkType uint8

const (
	// LinkIntraChassis connects two routers in the same chassis (backplane).
	LinkIntraChassis LinkType = iota
	// LinkIntraGroup connects two routers in the same blade position of two
	// chassis of the same group (electrical cable).
	LinkIntraGroup
	// LinkGlobal connects routers in two different groups (optical cable).
	LinkGlobal
)

// String returns a human-readable link type name.
func (t LinkType) String() string {
	switch t {
	case LinkIntraChassis:
		return "intra-chassis"
	case LinkIntraGroup:
		return "intra-group"
	case LinkGlobal:
		return "global"
	default:
		return fmt.Sprintf("LinkType(%d)", uint8(t))
	}
}

// Coord locates a router inside the machine.
type Coord struct {
	Group   int
	Chassis int
	Blade   int
}

// String formats the coordinate as g<group>c<chassis>b<blade>.
func (c Coord) String() string {
	return fmt.Sprintf("g%dc%db%d", c.Group, c.Chassis, c.Blade)
}

// Link is a directed connection between two routers. Parallel physical tiles
// between the same pair of routers are collapsed into a single Link with a
// Width equal to the number of tiles; the network model scales bandwidth by
// Width.
type Link struct {
	ID    LinkID
	Src   RouterID
	Dst   RouterID
	Type  LinkType
	Width int
}

// Config describes the size and wiring of a Dragonfly system.
type Config struct {
	// Groups is the number of Dragonfly groups (>= 1).
	Groups int
	// ChassisPerGroup is the number of chassis in a group (6 on Aries).
	ChassisPerGroup int
	// BladesPerChassis is the number of blades (routers) per chassis (16 on Aries).
	BladesPerChassis int
	// NodesPerBlade is the number of compute nodes attached to each router (4 on Aries).
	NodesPerBlade int
	// GlobalLinksPerRouter is the number of optical ports per router used for
	// inter-group connections (up to 10 on Aries).
	GlobalLinksPerRouter int
	// IntraGroupLinkWidth is the number of tiles per intra-group (row) connection (3 on Aries).
	IntraGroupLinkWidth int
	// IntraChassisLinkWidth is the number of tiles per intra-chassis connection (1 on Aries).
	IntraChassisLinkWidth int
	// GlobalLinkWidth is the number of tiles aggregated per inter-group connection.
	GlobalLinkWidth int
}

// AriesConfig returns a full-size Aries group geometry (6 chassis x 16 blades
// x 4 nodes) with the requested number of groups.
func AriesConfig(groups int) Config {
	return Config{
		Groups:                groups,
		ChassisPerGroup:       6,
		BladesPerChassis:      16,
		NodesPerBlade:         4,
		GlobalLinksPerRouter:  10,
		IntraGroupLinkWidth:   3,
		IntraChassisLinkWidth: 1,
		GlobalLinkWidth:       2,
	}
}

// PizDaintLikeConfig returns a geometry sized like the Piz Daint allocation
// used in the paper's Figure 8 (six groups of full Aries geometry, enough for
// a 1024-node job spread over 257 routers).
func PizDaintLikeConfig() Config { return AriesConfig(6) }

// CoriLikeConfig returns a geometry sized like the Cori allocation used in the
// paper's Figure 9 (five groups, 64-node job over 33 routers).
func CoriLikeConfig() Config { return AriesConfig(5) }

// SmallConfig returns a reduced geometry convenient for unit tests: g groups,
// 2 chassis per group, 4 blades per chassis, 2 nodes per blade.
func SmallConfig(groups int) Config {
	return Config{
		Groups:                groups,
		ChassisPerGroup:       2,
		BladesPerChassis:      4,
		NodesPerBlade:         2,
		GlobalLinksPerRouter:  2,
		IntraGroupLinkWidth:   3,
		IntraChassisLinkWidth: 1,
		GlobalLinkWidth:       2,
	}
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	switch {
	case c.Groups < 1:
		return fmt.Errorf("topo: Groups must be >= 1, got %d", c.Groups)
	case c.ChassisPerGroup < 1:
		return fmt.Errorf("topo: ChassisPerGroup must be >= 1, got %d", c.ChassisPerGroup)
	case c.BladesPerChassis < 1:
		return fmt.Errorf("topo: BladesPerChassis must be >= 1, got %d", c.BladesPerChassis)
	case c.NodesPerBlade < 1:
		return fmt.Errorf("topo: NodesPerBlade must be >= 1, got %d", c.NodesPerBlade)
	case c.Groups > 1 && c.GlobalLinksPerRouter < 1:
		return fmt.Errorf("topo: GlobalLinksPerRouter must be >= 1 when Groups > 1")
	case c.IntraChassisLinkWidth < 1 || c.IntraGroupLinkWidth < 1 || c.GlobalLinkWidth < 1:
		return fmt.Errorf("topo: link widths must be >= 1")
	}
	if c.Groups > 1 {
		ports := c.RoutersPerGroup() * c.GlobalLinksPerRouter
		if ports < c.Groups-1 {
			return fmt.Errorf("topo: %d global ports per group cannot reach %d other groups",
				ports, c.Groups-1)
		}
	}
	return nil
}

// RoutersPerGroup returns the number of routers in one group.
func (c Config) RoutersPerGroup() int { return c.ChassisPerGroup * c.BladesPerChassis }

// Routers returns the total number of routers in the system.
func (c Config) Routers() int { return c.Groups * c.RoutersPerGroup() }

// Nodes returns the total number of compute nodes in the system.
func (c Config) Nodes() int { return c.Routers() * c.NodesPerBlade }

// Topology is the constructed Dragonfly graph.
type Topology struct {
	cfg Config

	coords []Coord // router -> coordinate
	links  []Link

	// Adjacency in CSR (compressed sparse row) form: router r's outgoing
	// links occupy adjDst/adjLink[adjOff[r]:adjOff[r+1]], sorted by
	// destination router. Router degree on a Dragonfly is small and bounded
	// (blades-1 + chassis-1 + global ports), so the per-hop LinkBetween
	// lookup is a short binary search over one cache line or two, while the
	// memory cost is O(links) — a dense |R|×|R| matrix at machine scale
	// (thousands of routers) would dwarf the link state itself.
	adjOff  []int32
	adjDst  []RouterID
	adjLink []LinkID

	// adjDense is an optional accelerator over the CSR rows: the flattened
	// |R|×|R| matrix (src*NumRouters+dst -> LinkID). Path construction runs
	// several LinkBetween lookups per simulated packet, and on the small
	// experiment geometries the whole matrix fits in a few KiB of cache, so
	// the indexed load is measurably faster than the row search. It is built
	// only while it costs at most denseAdjMaxBytes; machine-scale topologies
	// leave it nil and answer from the CSR rows alone.
	adjDense []LinkID

	// revLink maps each link to the link in the opposite direction (or
	// InvalidLink). The fabric walks the reverse path once per packet chunk;
	// precomputing it removes every adjacency lookup from that loop.
	revLink []LinkID

	// buildAdj is construction-only: it detects already-connected router
	// pairs while links are being wired (global port assignments may collapse
	// onto one pair). It is released once the CSR arrays are built.
	buildAdj map[adjKey]LinkID

	// globalByPair[(g1,g2)] lists links from a router of g1 to a router of g2.
	globalByPair map[[2]GroupID][]LinkID

	// viaGroups[(gs*Groups)+gd] lists the intermediate groups usable for a
	// Valiant detour between gs and gd (connected to both, excluding the
	// endpoints). Precomputed so per-packet non-minimal sampling performs no
	// connectivity scan and no allocation.
	viaGroups [][]GroupID
}

// New builds the topology described by cfg.
func New(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		cfg:          cfg,
		coords:       make([]Coord, cfg.Routers()),
		buildAdj:     make(map[adjKey]LinkID),
		globalByPair: make(map[[2]GroupID][]LinkID),
	}
	for r := 0; r < cfg.Routers(); r++ {
		t.coords[r] = t.coordOf(RouterID(r))
	}
	t.buildLocalLinks()
	t.buildGlobalLinks()
	t.buildPathCaches()
	t.buildAdj = nil // construction scaffolding; the CSR arrays own adjacency now
	return t, nil
}

// adjKey identifies a directed router pair during construction.
type adjKey struct{ src, dst RouterID }

// denseAdjMaxBytes bounds the optional dense adjacency mirror: up to this
// size (512 routers) the matrix is cheap cache-resident speed for the
// per-packet path construction; past it — the Large and Daint ladder rungs —
// adjacency stays CSR-only and memory scales with links, not routers².
const denseAdjMaxBytes = 1 << 20

// buildPathCaches derives the per-packet lookup structures (CSR adjacency,
// Valiant intermediate-group candidates) from the link graph.
func (t *Topology) buildPathCaches() {
	n := t.cfg.Routers()
	// CSR: count degrees, prefix-sum into row offsets, fill, then sort each
	// row by destination so LinkBetween can binary-search it.
	t.adjOff = make([]int32, n+1)
	for _, l := range t.links {
		t.adjOff[int(l.Src)+1]++
	}
	for r := 0; r < n; r++ {
		t.adjOff[r+1] += t.adjOff[r]
	}
	t.adjDst = make([]RouterID, len(t.links))
	t.adjLink = make([]LinkID, len(t.links))
	fill := make([]int32, n)
	for _, l := range t.links {
		at := t.adjOff[l.Src] + fill[l.Src]
		fill[l.Src]++
		t.adjDst[at] = l.Dst
		t.adjLink[at] = l.ID
	}
	for r := 0; r < n; r++ {
		lo, hi := t.adjOff[r], t.adjOff[r+1]
		// Insertion sort: rows are short (bounded by the router degree) and
		// nearly sorted already, since local links are wired in dst order.
		for i := lo + 1; i < hi; i++ {
			d, id := t.adjDst[i], t.adjLink[i]
			j := i
			for j > lo && t.adjDst[j-1] > d {
				t.adjDst[j], t.adjLink[j] = t.adjDst[j-1], t.adjLink[j-1]
				j--
			}
			t.adjDst[j], t.adjLink[j] = d, id
		}
	}
	if n*n*4 <= denseAdjMaxBytes {
		t.adjDense = make([]LinkID, n*n)
		for i := range t.adjDense {
			t.adjDense[i] = InvalidLink
		}
		for _, l := range t.links {
			t.adjDense[int(l.Src)*n+int(l.Dst)] = l.ID
		}
	}
	t.revLink = make([]LinkID, len(t.links))
	for i, l := range t.links {
		t.revLink[i] = t.LinkBetween(l.Dst, l.Src)
	}
	t.viaGroups = make([][]GroupID, t.cfg.Groups*t.cfg.Groups)
	for gs := 0; gs < t.cfg.Groups; gs++ {
		for gd := 0; gd < t.cfg.Groups; gd++ {
			var candidates []GroupID
			for g := 0; g < t.cfg.Groups; g++ {
				gi := GroupID(g)
				if g == gs || g == gd {
					continue
				}
				if len(t.GlobalLinks(GroupID(gs), gi)) > 0 && len(t.GlobalLinks(gi, GroupID(gd))) > 0 {
					candidates = append(candidates, gi)
				}
			}
			t.viaGroups[gs*t.cfg.Groups+gd] = candidates
		}
	}
}

// MustNew is like New but panics on configuration errors. It is intended for
// tests and examples with known-good configurations.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// NumRouters returns the number of routers.
func (t *Topology) NumRouters() int { return len(t.coords) }

// NumNodes returns the number of compute nodes.
func (t *Topology) NumNodes() int { return t.cfg.Nodes() }

// NumLinks returns the number of directed router-to-router links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Links returns the slice of all links. The caller must not modify it.
func (t *Topology) Links() []Link { return t.links }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// coordOf converts a router index to its coordinate.
func (t *Topology) coordOf(r RouterID) Coord {
	perGroup := t.cfg.RoutersPerGroup()
	g := int(r) / perGroup
	rest := int(r) % perGroup
	return Coord{
		Group:   g,
		Chassis: rest / t.cfg.BladesPerChassis,
		Blade:   rest % t.cfg.BladesPerChassis,
	}
}

// RouterAt returns the router at the given coordinate.
func (t *Topology) RouterAt(c Coord) RouterID {
	return RouterID(c.Group*t.cfg.RoutersPerGroup() +
		c.Chassis*t.cfg.BladesPerChassis + c.Blade)
}

// CoordOf returns the coordinate of router r.
func (t *Topology) CoordOf(r RouterID) Coord { return t.coords[r] }

// GroupOf returns the group of router r.
func (t *Topology) GroupOf(r RouterID) GroupID { return GroupID(t.coords[r].Group) }

// RouterOfNode returns the router (blade) a node is attached to.
func (t *Topology) RouterOfNode(n NodeID) RouterID {
	return RouterID(int(n) / t.cfg.NodesPerBlade)
}

// NodesOfRouter returns the node ids attached to router r.
func (t *Topology) NodesOfRouter(r RouterID) []NodeID {
	out := make([]NodeID, t.cfg.NodesPerBlade)
	base := int(r) * t.cfg.NodesPerBlade
	for i := range out {
		out[i] = NodeID(base + i)
	}
	return out
}

// GroupOfNode returns the group a node belongs to.
func (t *Topology) GroupOfNode(n NodeID) GroupID { return t.GroupOf(t.RouterOfNode(n)) }

// LinkBetween returns the link from src to dst, or InvalidLink if the two
// routers are not directly connected. Small machines answer from the dense
// mirror (one indexed load); machine-scale topologies binary-search the
// router's CSR adjacency row — rows are degree-bounded, so that is a handful
// of compares.
func (t *Topology) LinkBetween(src, dst RouterID) LinkID {
	if t.adjDense != nil {
		return t.adjDense[int(src)*len(t.coords)+int(dst)]
	}
	lo, hi := t.adjOff[src], t.adjOff[src+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if t.adjDst[mid] < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < t.adjOff[src+1] && t.adjDst[lo] == dst {
		return t.adjLink[lo]
	}
	return InvalidLink
}

// Degree returns the number of outgoing links of router r.
func (t *Topology) Degree(r RouterID) int {
	return int(t.adjOff[r+1] - t.adjOff[r])
}

// ReverseLink returns the link running opposite to id (Dst -> Src), or
// InvalidLink when the reverse direction is not wired. It is a precomputed
// table: the fabric's response-path walk does one indexed load per hop
// instead of an adjacency lookup.
func (t *Topology) ReverseLink(id LinkID) LinkID { return t.revLink[id] }

// Neighbors returns the routers directly connected to r, in ascending router
// order (the CSR row order).
func (t *Topology) Neighbors(r RouterID) []RouterID {
	return append([]RouterID(nil), t.adjDst[t.adjOff[r]:t.adjOff[r+1]]...)
}

// AdjacencyBytes reports the memory held by the adjacency structures: the
// CSR arrays, the reverse-link table, and — on small machines only — the
// dense mirror. It is the observable the machine-scale tooling (cmd/topoinfo,
// EXPERIMENTS.md's memory-budget table) tracks: past the dense cutoff it is
// O(links), where a mandatory dense matrix would be O(routers²).
func (t *Topology) AdjacencyBytes() int {
	return len(t.adjOff)*4 + len(t.adjDst)*4 + len(t.adjLink)*4 +
		len(t.revLink)*4 + len(t.adjDense)*4
}

// GlobalLinks returns the links connecting group g1 directly to group g2.
func (t *Topology) GlobalLinks(g1, g2 GroupID) []LinkID {
	return t.globalByPair[[2]GroupID{g1, g2}]
}

// addLink inserts a directed link and its construction-time adjacency entry.
func (t *Topology) addLink(src, dst RouterID, typ LinkType, width int) LinkID {
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, Src: src, Dst: dst, Type: typ, Width: width})
	t.buildAdj[adjKey{src, dst}] = id
	return id
}

// buildLocalLinks wires intra-chassis (all-to-all within a chassis) and
// intra-group "row" links (all-to-all among same blade position across the
// chassis of a group).
func (t *Topology) buildLocalLinks() {
	cfg := t.cfg
	for g := 0; g < cfg.Groups; g++ {
		for c := 0; c < cfg.ChassisPerGroup; c++ {
			for b := 0; b < cfg.BladesPerChassis; b++ {
				src := t.RouterAt(Coord{g, c, b})
				// Intra-chassis: connect to every other blade in the same chassis.
				for b2 := 0; b2 < cfg.BladesPerChassis; b2++ {
					if b2 == b {
						continue
					}
					dst := t.RouterAt(Coord{g, c, b2})
					t.addLink(src, dst, LinkIntraChassis, cfg.IntraChassisLinkWidth)
				}
				// Intra-group rows: connect to the same blade position in every
				// other chassis of the group.
				for c2 := 0; c2 < cfg.ChassisPerGroup; c2++ {
					if c2 == c {
						continue
					}
					dst := t.RouterAt(Coord{g, c2, b})
					t.addLink(src, dst, LinkIntraGroup, cfg.IntraGroupLinkWidth)
				}
			}
		}
	}
}

// buildGlobalLinks distributes the optical ports of each group's routers over
// the other groups, using the canonical consecutive-port assignment: the k-th
// link between groups g1 < g2 attaches to port index(g2 in g1's peer list)*q+k
// of g1 and port index(g1 in g2's peer list)*q+k of g2, where q is the number
// of links per group pair. Ports map to routers round-robin by port/h.
func (t *Topology) buildGlobalLinks() {
	cfg := t.cfg
	if cfg.Groups < 2 {
		return
	}
	portsPerGroup := cfg.RoutersPerGroup() * cfg.GlobalLinksPerRouter
	q := portsPerGroup / (cfg.Groups - 1)
	if q < 1 {
		q = 1
	}
	routerOfPort := func(g, port int) RouterID {
		r := (port / cfg.GlobalLinksPerRouter) % cfg.RoutersPerGroup()
		return RouterID(g*cfg.RoutersPerGroup() + r)
	}
	peerIndex := func(g, peer int) int {
		// index of peer in g's sorted list of other groups
		if peer < g {
			return peer
		}
		return peer - 1
	}
	for g1 := 0; g1 < cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < cfg.Groups; g2++ {
			for k := 0; k < q; k++ {
				p1 := peerIndex(g1, g2)*q + k
				p2 := peerIndex(g2, g1)*q + k
				if p1 >= portsPerGroup || p2 >= portsPerGroup {
					continue
				}
				r1 := routerOfPort(g1, p1)
				r2 := routerOfPort(g2, p2)
				// A pair of routers may already be connected by an earlier
				// port assignment; collapse into the existing link by leaving
				// the adjacency as is (widths already aggregate tiles). The
				// CSR adjacency is not built yet, so probe the build map.
				if _, ok := t.buildAdj[adjKey{r1, r2}]; !ok {
					id := t.addLink(r1, r2, LinkGlobal, cfg.GlobalLinkWidth)
					t.globalByPair[[2]GroupID{GroupID(g1), GroupID(g2)}] =
						append(t.globalByPair[[2]GroupID{GroupID(g1), GroupID(g2)}], id)
				}
				if _, ok := t.buildAdj[adjKey{r2, r1}]; !ok {
					id := t.addLink(r2, r1, LinkGlobal, cfg.GlobalLinkWidth)
					t.globalByPair[[2]GroupID{GroupID(g2), GroupID(g1)}] =
						append(t.globalByPair[[2]GroupID{GroupID(g2), GroupID(g1)}], id)
				}
			}
		}
	}
}

// AllocationClass describes the topological distance between two nodes, in the
// terms used by the paper's Figure 3.
type AllocationClass uint8

const (
	// AllocSameNode means both endpoints are the same node.
	AllocSameNode AllocationClass = iota
	// AllocInterNodes means the two nodes share a blade (same router).
	AllocInterNodes
	// AllocInterBlades means the nodes sit on different blades of the same chassis.
	AllocInterBlades
	// AllocInterChassis means the nodes sit on different chassis of the same group.
	AllocInterChassis
	// AllocInterGroups means the nodes sit in different groups.
	AllocInterGroups
)

// String returns the paper's name for the allocation class.
func (a AllocationClass) String() string {
	switch a {
	case AllocSameNode:
		return "Same-Node"
	case AllocInterNodes:
		return "Inter-Nodes"
	case AllocInterBlades:
		return "Inter-Blades"
	case AllocInterChassis:
		return "Inter-Chassis"
	case AllocInterGroups:
		return "Inter-Groups"
	default:
		return fmt.Sprintf("AllocationClass(%d)", uint8(a))
	}
}

// Classify returns the allocation class of the pair (a, b).
func (t *Topology) Classify(a, b NodeID) AllocationClass {
	if a == b {
		return AllocSameNode
	}
	ra, rb := t.RouterOfNode(a), t.RouterOfNode(b)
	if ra == rb {
		return AllocInterNodes
	}
	ca, cb := t.coords[ra], t.coords[rb]
	if ca.Group != cb.Group {
		return AllocInterGroups
	}
	if ca.Chassis != cb.Chassis {
		return AllocInterChassis
	}
	return AllocInterBlades
}
