package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimalPathSameRouter(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	p := tt.MinimalPath(3, 3, nil)
	if len(p) != 0 {
		t.Fatalf("path to self has %d hops, want 0", len(p))
	}
}

func TestMinimalPathDirectNeighbors(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{0, 0, 1})
	p := tt.MinimalPath(src, dst, nil)
	if len(p) != 1 {
		t.Fatalf("intra-chassis minimal path has %d hops, want 1", len(p))
	}
	if err := tt.ValidatePath(src, dst, p); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalPathIntraGroupTwoHops(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{0, 1, 1}) // different chassis and blade
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := tt.MinimalPath(src, dst, rng)
		if len(p) != 2 {
			t.Fatalf("diagonal intra-group minimal path has %d hops, want 2", len(p))
		}
		if err := tt.ValidatePath(src, dst, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMinimalPathInterGroupBounds(t *testing.T) {
	tt := MustNew(AriesConfig(4))
	rng := rand.New(rand.NewSource(2))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{2, 5, 15})
	for i := 0; i < 50; i++ {
		p := tt.MinimalPath(src, dst, rng)
		if len(p) == 0 || len(p) > MaxMinimalHops {
			t.Fatalf("inter-group minimal path has %d hops, want 1..%d", len(p), MaxMinimalHops)
		}
		if err := tt.ValidatePath(src, dst, p); err != nil {
			t.Fatal(err)
		}
		globals := 0
		for _, id := range p {
			if tt.Link(id).Type == LinkGlobal {
				globals++
			}
		}
		if globals != 1 {
			t.Fatalf("minimal inter-group path crosses %d global links, want 1", globals)
		}
	}
}

func TestNonMinimalPathInterGroup(t *testing.T) {
	tt := MustNew(AriesConfig(4))
	rng := rand.New(rand.NewSource(3))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{1, 2, 3})
	sawIntermediate := false
	for i := 0; i < 50; i++ {
		p := tt.NonMinimalPath(src, dst, rng)
		if len(p) == 0 || len(p) > MaxNonMinimalHops {
			t.Fatalf("non-minimal path has %d hops, want 1..%d", len(p), MaxNonMinimalHops)
		}
		if err := tt.ValidatePath(src, dst, p); err != nil {
			t.Fatal(err)
		}
		globals := 0
		for _, id := range p {
			if tt.Link(id).Type == LinkGlobal {
				globals++
			}
		}
		if globals == 2 {
			sawIntermediate = true
		}
	}
	if !sawIntermediate {
		t.Fatal("non-minimal inter-group paths never traversed an intermediate group")
	}
}

func TestNonMinimalPathIntraGroupLongerOrEqual(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	rng := rand.New(rand.NewSource(4))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{0, 0, 1})
	for i := 0; i < 30; i++ {
		pm := tt.MinimalPath(src, dst, rng)
		pn := tt.NonMinimalPath(src, dst, rng)
		if err := tt.ValidatePath(src, dst, pn); err != nil {
			t.Fatal(err)
		}
		if len(pn) < len(pm) {
			t.Fatalf("non-minimal path (%d hops) shorter than minimal (%d hops)", len(pn), len(pm))
		}
	}
}

func TestSamplePathsCounts(t *testing.T) {
	tt := MustNew(SmallConfig(3))
	rng := rand.New(rand.NewSource(5))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{2, 1, 2})
	minimal, nonMinimal := tt.SamplePaths(src, dst, 2, 2, rng)
	if len(minimal) != 2 || len(nonMinimal) != 2 {
		t.Fatalf("SamplePaths returned %d minimal, %d non-minimal, want 2 and 2", len(minimal), len(nonMinimal))
	}
	for _, p := range minimal {
		if err := tt.ValidatePath(src, dst, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range nonMinimal {
		if err := tt.ValidatePath(src, dst, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMinimalHops(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	src := tt.RouterAt(Coord{0, 0, 0})
	if h := tt.MinimalHops(src, src); h != 0 {
		t.Fatalf("MinimalHops self = %d", h)
	}
	dst := tt.RouterAt(Coord{0, 0, 2})
	if h := tt.MinimalHops(src, dst); h != 1 {
		t.Fatalf("MinimalHops neighbor = %d, want 1", h)
	}
}

func TestValidatePathErrors(t *testing.T) {
	tt := MustNew(SmallConfig(2))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{0, 0, 1})
	if err := tt.ValidatePath(src, dst, Path{LinkID(len(tt.Links()) + 5)}); err == nil {
		t.Fatal("expected error for out-of-range link id")
	}
	if err := tt.ValidatePath(src, dst, Path{}); err == nil {
		t.Fatal("expected error for empty path between distinct routers")
	}
	// Disconnected chain: two copies of the same link.
	id := tt.LinkBetween(src, dst)
	if err := tt.ValidatePath(src, dst, Path{id, id}); err == nil {
		t.Fatal("expected error for disconnected chain")
	}
}

// Property: every sampled minimal and non-minimal path between random router
// pairs is a valid connected chain, minimal paths never exceed MaxMinimalHops
// and non-minimal paths never exceed MaxNonMinimalHops.
func TestPropertyPathsValid(t *testing.T) {
	tt := MustNew(SmallConfig(4))
	n := tt.NumRouters()
	rng := rand.New(rand.NewSource(99))
	f := func(a, b uint16, seed int64) bool {
		src := RouterID(int(a) % n)
		dst := RouterID(int(b) % n)
		r := rand.New(rand.NewSource(seed))
		pm := tt.MinimalPath(src, dst, r)
		pn := tt.NonMinimalPath(src, dst, r)
		if tt.ValidatePath(src, dst, pm) != nil || tt.ValidatePath(src, dst, pn) != nil {
			return false
		}
		if len(pm) > MaxMinimalHops || len(pn) > MaxNonMinimalHops {
			return false
		}
		if src == dst && (len(pm) != 0 || len(pn) != 0) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: minimal inter-group paths traverse exactly one global link when
// the two groups are directly connected.
func TestPropertyMinimalOneGlobalHop(t *testing.T) {
	tt := MustNew(AriesConfig(3))
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 200; i++ {
		src := RouterID(rng.Intn(tt.NumRouters()))
		dst := RouterID(rng.Intn(tt.NumRouters()))
		if tt.GroupOf(src) == tt.GroupOf(dst) {
			continue
		}
		if len(tt.GlobalLinks(tt.GroupOf(src), tt.GroupOf(dst))) == 0 {
			continue
		}
		p := tt.MinimalPath(src, dst, rng)
		globals := 0
		for _, id := range p {
			if tt.Link(id).Type == LinkGlobal {
				globals++
			}
		}
		if globals != 1 {
			t.Fatalf("minimal path %v crosses %d globals", p, globals)
		}
	}
}

func BenchmarkMinimalPathInterGroup(b *testing.B) {
	tt := MustNew(AriesConfig(6))
	rng := rand.New(rand.NewSource(7))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{5, 3, 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tt.MinimalPath(src, dst, rng)
	}
}

func BenchmarkNonMinimalPathInterGroup(b *testing.B) {
	tt := MustNew(AriesConfig(6))
	rng := rand.New(rand.NewSource(8))
	src := tt.RouterAt(Coord{0, 0, 0})
	dst := tt.RouterAt(Coord{5, 3, 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tt.NonMinimalPath(src, dst, rng)
	}
}
