package topo

import (
	"fmt"
	"math/rand"
)

// Path is an ordered sequence of links from a source router to a destination
// router. An empty path means source and destination are the same router.
type Path []LinkID

// Hops returns the number of router-to-router hops in the path.
func (p Path) Hops() int { return len(p) }

// MaxMinimalHops is the maximum length of a minimal path on a Dragonfly
// (local, global, local within source and destination group: up to 2+1+2).
const MaxMinimalHops = 5

// MaxNonMinimalHops is the maximum length of a Valiant-routed non-minimal path
// (two concatenated minimal segments via an intermediate group).
const MaxNonMinimalHops = 10

// The path constructors come in two flavours: the historical allocating form
// (MinimalPath, NonMinimalPath, SamplePaths) and an appending form
// (AppendMinimalPath, AppendNonMinimalPath, SamplePathsInto) that reuses
// caller-owned storage. Both draw from rng in exactly the same order and
// produce exactly the same links, so they are interchangeable without
// affecting simulation results; the appending form exists because path
// sampling runs once per simulated packet and used to dominate the
// simulator's allocation profile.

// appendIntraGroupPath appends one path between two routers of the same group
// to p, choosing randomly between the two 2-hop alternatives when they are not
// directly connected. It panics if the routers are in different groups.
func (t *Topology) appendIntraGroupPath(p Path, src, dst RouterID, rng *rand.Rand) Path {
	if src == dst {
		return p
	}
	cs, cd := t.coords[src], t.coords[dst]
	if cs.Group != cd.Group {
		panic(fmt.Sprintf("topo: intraGroupPath called across groups %d and %d", cs.Group, cd.Group))
	}
	if id := t.LinkBetween(src, dst); id != InvalidLink {
		return append(p, id)
	}
	// Not directly connected: two hops, either chassis-first or row-first.
	viaA := t.RouterAt(Coord{cs.Group, cs.Chassis, cd.Blade}) // intra-chassis then row
	viaB := t.RouterAt(Coord{cs.Group, cd.Chassis, cs.Blade}) // row then intra-chassis
	via := viaA
	if rng != nil && rng.Intn(2) == 1 {
		via = viaB
	}
	first := t.LinkBetween(src, via)
	second := t.LinkBetween(via, dst)
	if first == InvalidLink || second == InvalidLink {
		// Fall back to the other alternative; with full chassis/row wiring this
		// cannot happen, but degenerate test configs may omit one dimension.
		other := viaA
		if via == viaA {
			other = viaB
		}
		first = t.LinkBetween(src, other)
		second = t.LinkBetween(other, dst)
	}
	return append(p, first, second)
}

// MinimalPath samples one minimal path from src to dst. For inter-group pairs
// the global link is chosen uniformly at random among the links connecting the
// two groups; local segments choose randomly among equal-length alternatives.
// rng may be nil for a deterministic (first-alternative) choice.
func (t *Topology) MinimalPath(src, dst RouterID, rng *rand.Rand) Path {
	return t.AppendMinimalPath(nil, src, dst, rng)
}

// AppendMinimalPath is MinimalPath appending into p instead of allocating.
func (t *Topology) AppendMinimalPath(p Path, src, dst RouterID, rng *rand.Rand) Path {
	if src == dst {
		return p
	}
	gs, gd := t.GroupOf(src), t.GroupOf(dst)
	if gs == gd {
		return t.appendIntraGroupPath(p, src, dst, rng)
	}
	links := t.GlobalLinks(gs, gd)
	if len(links) == 0 {
		// No direct group-to-group connection: fall back to a Valiant path
		// through an intermediate group that connects to both.
		return t.appendThroughIntermediateGroup(p, src, dst, rng)
	}
	var gl LinkID
	if rng != nil {
		gl = links[rng.Intn(len(links))]
	} else {
		gl = links[0]
	}
	l := t.Link(gl)
	p = t.appendIntraGroupPath(p, src, l.Src, rng)
	p = append(p, gl)
	return t.appendIntraGroupPath(p, l.Dst, dst, rng)
}

// appendThroughIntermediateGroup appends a path src -> (router in group gi) ->
// dst where gi is a randomly chosen group different from both endpoints'
// groups and connected to both (the candidate set is precomputed per group
// pair at construction). It is used both for Valiant non-minimal routing and
// as a fallback when two groups have no direct link. When no usable
// intermediate group and no direct link exists, p is returned unchanged
// (the caller treats the pair as unreachable).
func (t *Topology) appendThroughIntermediateGroup(p Path, src, dst RouterID, rng *rand.Rand) Path {
	gs, gd := t.GroupOf(src), t.GroupOf(dst)
	candidates := t.viaGroups[int(gs)*t.cfg.Groups+int(gd)]
	if len(candidates) == 0 {
		// No usable intermediate group; as a last resort return a direct
		// minimal path if one exists.
		if links := t.GlobalLinks(gs, gd); len(links) > 0 {
			return t.AppendMinimalPath(p, src, dst, rng)
		}
		return p
	}
	var gi GroupID
	if rng != nil {
		gi = candidates[rng.Intn(len(candidates))]
	} else {
		gi = candidates[0]
	}
	// Enter the intermediate group through one of its inbound global links and
	// leave through one of its outbound links towards the destination group.
	in := t.GlobalLinks(gs, gi)
	out := t.GlobalLinks(gi, gd)
	var inL, outL LinkID
	if rng != nil {
		inL, outL = in[rng.Intn(len(in))], out[rng.Intn(len(out))]
	} else {
		inL, outL = in[0], out[0]
	}
	li, lo := t.Link(inL), t.Link(outL)
	p = t.appendIntraGroupPath(p, src, li.Src, rng)
	p = append(p, inL)
	p = t.appendIntraGroupPath(p, li.Dst, lo.Src, rng)
	p = append(p, outL)
	return t.appendIntraGroupPath(p, lo.Dst, dst, rng)
}

// NonMinimalPath samples one Valiant-style non-minimal path from src to dst.
// For inter-group pairs the path traverses a random intermediate group; for
// intra-group pairs it traverses a random intermediate router of the same
// group. rng may be nil for a deterministic choice.
func (t *Topology) NonMinimalPath(src, dst RouterID, rng *rand.Rand) Path {
	return t.AppendNonMinimalPath(nil, src, dst, rng)
}

// AppendNonMinimalPath is NonMinimalPath appending into p instead of
// allocating.
func (t *Topology) AppendNonMinimalPath(p Path, src, dst RouterID, rng *rand.Rand) Path {
	if src == dst {
		return p
	}
	gs, gd := t.GroupOf(src), t.GroupOf(dst)
	if gs != gd && t.cfg.Groups > 2 {
		if q := t.appendThroughIntermediateGroup(p, src, dst, rng); len(q) > len(p) {
			return q
		}
	}
	// Intra-group (or two-group systems): detour through an intermediate
	// router of the source group.
	perGroup := t.cfg.RoutersPerGroup()
	base := int(gs) * perGroup
	var via RouterID
	for attempt := 0; attempt < 8; attempt++ {
		idx := 0
		if rng != nil {
			idx = rng.Intn(perGroup)
		} else {
			idx = attempt
		}
		via = RouterID(base + idx%perGroup)
		if via != src && via != dst {
			break
		}
	}
	if via == src || via == dst {
		return t.AppendMinimalPath(p, src, dst, rng)
	}
	p = t.appendIntraGroupPath(p, src, via, rng)
	if gs == gd {
		return t.appendIntraGroupPath(p, via, dst, rng)
	}
	return t.AppendMinimalPath(p, via, dst, rng)
}

// PathBuffer holds reusable candidate-path storage for SamplePathsInto. The
// zero value is ready to use. A buffer must not be shared across goroutines;
// the routing policy owns one per simulated system.
type PathBuffer struct {
	minimal    []Path
	nonMinimal []Path
}

// growPaths extends ps to n entries, keeping the backing arrays of existing
// entries for reuse.
func growPaths(ps []Path, n int) []Path {
	if cap(ps) < n {
		ps = append(ps[:cap(ps)], make([]Path, n-cap(ps))...)
	}
	return ps[:n]
}

// SamplePaths returns nMin minimal and nNonMin non-minimal candidate paths,
// mirroring the Aries UGAL implementation which considers two of each per
// packet. Candidates may coincide when few distinct paths exist.
func (t *Topology) SamplePaths(src, dst RouterID, nMin, nNonMin int, rng *rand.Rand) (minimal, nonMinimal []Path) {
	var buf PathBuffer
	return t.SamplePathsInto(&buf, src, dst, nMin, nNonMin, rng)
}

// SamplePathsInto is SamplePaths sampling into buf: the returned slices (and
// the paths they hold) alias the buffer and are valid until the next call
// with the same buffer. It draws from rng exactly like SamplePaths, so the
// two are interchangeable without affecting results.
func (t *Topology) SamplePathsInto(buf *PathBuffer, src, dst RouterID, nMin, nNonMin int, rng *rand.Rand) (minimal, nonMinimal []Path) {
	buf.minimal = growPaths(buf.minimal, nMin)
	buf.nonMinimal = growPaths(buf.nonMinimal, nNonMin)
	for i := 0; i < nMin; i++ {
		buf.minimal[i] = t.AppendMinimalPath(buf.minimal[i][:0], src, dst, rng)
	}
	for i := 0; i < nNonMin; i++ {
		buf.nonMinimal[i] = t.AppendNonMinimalPath(buf.nonMinimal[i][:0], src, dst, rng)
	}
	return buf.minimal, buf.nonMinimal
}

// MinimalHops returns the number of hops of a minimal path between the two
// routers (deterministic, no sampling).
func (t *Topology) MinimalHops(src, dst RouterID) int {
	return len(t.MinimalPath(src, dst, nil))
}

// ValidatePath reports an error if the path is not a connected chain of links
// from src to dst.
func (t *Topology) ValidatePath(src, dst RouterID, p Path) error {
	cur := src
	for i, id := range p {
		if int(id) < 0 || int(id) >= len(t.links) {
			return fmt.Errorf("topo: hop %d: invalid link id %d", i, id)
		}
		l := t.Link(id)
		if l.Src != cur {
			return fmt.Errorf("topo: hop %d: link %d starts at %d, expected %d", i, id, l.Src, cur)
		}
		cur = l.Dst
	}
	if cur != dst {
		return fmt.Errorf("topo: path ends at router %d, expected %d", cur, dst)
	}
	return nil
}
