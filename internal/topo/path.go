package topo

import (
	"fmt"
	"math/rand"
)

// Path is an ordered sequence of links from a source router to a destination
// router. An empty path means source and destination are the same router.
type Path []LinkID

// Hops returns the number of router-to-router hops in the path.
func (p Path) Hops() int { return len(p) }

// MaxMinimalHops is the maximum length of a minimal path on a Dragonfly
// (local, global, local within source and destination group: up to 2+1+2).
const MaxMinimalHops = 5

// MaxNonMinimalHops is the maximum length of a Valiant-routed non-minimal path
// (two concatenated minimal segments via an intermediate group).
const MaxNonMinimalHops = 10

// intraGroupPath returns one path between two routers of the same group,
// choosing randomly between the two 2-hop alternatives when they are not
// directly connected. It panics if the routers are in different groups.
func (t *Topology) intraGroupPath(src, dst RouterID, rng *rand.Rand) Path {
	if src == dst {
		return nil
	}
	cs, cd := t.coords[src], t.coords[dst]
	if cs.Group != cd.Group {
		panic(fmt.Sprintf("topo: intraGroupPath called across groups %d and %d", cs.Group, cd.Group))
	}
	if id := t.LinkBetween(src, dst); id != InvalidLink {
		return Path{id}
	}
	// Not directly connected: two hops, either chassis-first or row-first.
	viaA := t.RouterAt(Coord{cs.Group, cs.Chassis, cd.Blade}) // intra-chassis then row
	viaB := t.RouterAt(Coord{cs.Group, cd.Chassis, cs.Blade}) // row then intra-chassis
	via := viaA
	if rng != nil && rng.Intn(2) == 1 {
		via = viaB
	}
	first := t.LinkBetween(src, via)
	second := t.LinkBetween(via, dst)
	if first == InvalidLink || second == InvalidLink {
		// Fall back to the other alternative; with full chassis/row wiring this
		// cannot happen, but degenerate test configs may omit one dimension.
		other := viaA
		if via == viaA {
			other = viaB
		}
		first = t.LinkBetween(src, other)
		second = t.LinkBetween(other, dst)
	}
	return Path{first, second}
}

// MinimalPath samples one minimal path from src to dst. For inter-group pairs
// the global link is chosen uniformly at random among the links connecting the
// two groups; local segments choose randomly among equal-length alternatives.
// rng may be nil for a deterministic (first-alternative) choice.
func (t *Topology) MinimalPath(src, dst RouterID, rng *rand.Rand) Path {
	if src == dst {
		return nil
	}
	gs, gd := t.GroupOf(src), t.GroupOf(dst)
	if gs == gd {
		return t.intraGroupPath(src, dst, rng)
	}
	links := t.GlobalLinks(gs, gd)
	if len(links) == 0 {
		// No direct group-to-group connection: fall back to a Valiant path
		// through an intermediate group that connects to both.
		return t.throughIntermediateGroup(src, dst, rng)
	}
	var gl LinkID
	if rng != nil {
		gl = links[rng.Intn(len(links))]
	} else {
		gl = links[0]
	}
	l := t.Link(gl)
	path := t.intraGroupPath(src, l.Src, rng)
	path = append(path, gl)
	path = append(path, t.intraGroupPath(l.Dst, dst, rng)...)
	return path
}

// throughIntermediateGroup builds a path src -> (router in group gi) -> dst
// where gi is a randomly chosen group different from both endpoints' groups
// and connected to both. It is used both for Valiant non-minimal routing and
// as a fallback when two groups have no direct link.
func (t *Topology) throughIntermediateGroup(src, dst RouterID, rng *rand.Rand) Path {
	gs, gd := t.GroupOf(src), t.GroupOf(dst)
	candidates := make([]GroupID, 0, t.cfg.Groups)
	for g := 0; g < t.cfg.Groups; g++ {
		gi := GroupID(g)
		if gi == gs || gi == gd {
			continue
		}
		if len(t.GlobalLinks(gs, gi)) > 0 && len(t.GlobalLinks(gi, gd)) > 0 {
			candidates = append(candidates, gi)
		}
	}
	if len(candidates) == 0 {
		// No usable intermediate group; as a last resort return a direct
		// minimal path if one exists, else an empty path (caller treats the
		// pair as unreachable).
		if links := t.GlobalLinks(gs, gd); len(links) > 0 {
			return t.MinimalPath(src, dst, rng)
		}
		return nil
	}
	var gi GroupID
	if rng != nil {
		gi = candidates[rng.Intn(len(candidates))]
	} else {
		gi = candidates[0]
	}
	// Enter the intermediate group through one of its inbound global links and
	// leave through one of its outbound links towards the destination group.
	in := t.GlobalLinks(gs, gi)
	out := t.GlobalLinks(gi, gd)
	var inL, outL LinkID
	if rng != nil {
		inL, outL = in[rng.Intn(len(in))], out[rng.Intn(len(out))]
	} else {
		inL, outL = in[0], out[0]
	}
	li, lo := t.Link(inL), t.Link(outL)
	path := t.intraGroupPath(src, li.Src, rng)
	path = append(path, inL)
	path = append(path, t.intraGroupPath(li.Dst, lo.Src, rng)...)
	path = append(path, outL)
	path = append(path, t.intraGroupPath(lo.Dst, dst, rng)...)
	return path
}

// NonMinimalPath samples one Valiant-style non-minimal path from src to dst.
// For inter-group pairs the path traverses a random intermediate group; for
// intra-group pairs it traverses a random intermediate router of the same
// group. rng may be nil for a deterministic choice.
func (t *Topology) NonMinimalPath(src, dst RouterID, rng *rand.Rand) Path {
	if src == dst {
		return nil
	}
	gs, gd := t.GroupOf(src), t.GroupOf(dst)
	if gs != gd && t.cfg.Groups > 2 {
		if p := t.throughIntermediateGroup(src, dst, rng); p != nil {
			return p
		}
	}
	// Intra-group (or two-group systems): detour through an intermediate
	// router of the source group.
	perGroup := t.cfg.RoutersPerGroup()
	base := int(gs) * perGroup
	var via RouterID
	for attempt := 0; attempt < 8; attempt++ {
		idx := 0
		if rng != nil {
			idx = rng.Intn(perGroup)
		} else {
			idx = attempt
		}
		via = RouterID(base + idx%perGroup)
		if via != src && via != dst {
			break
		}
	}
	if via == src || via == dst {
		return t.MinimalPath(src, dst, rng)
	}
	path := t.intraGroupPath(src, via, rng)
	if gs == gd {
		return append(path, t.intraGroupPath(via, dst, rng)...)
	}
	return append(path, t.MinimalPath(via, dst, rng)...)
}

// SamplePaths returns nMin minimal and nNonMin non-minimal candidate paths,
// mirroring the Aries UGAL implementation which considers two of each per
// packet. Candidates may coincide when few distinct paths exist.
func (t *Topology) SamplePaths(src, dst RouterID, nMin, nNonMin int, rng *rand.Rand) (minimal, nonMinimal []Path) {
	minimal = make([]Path, 0, nMin)
	nonMinimal = make([]Path, 0, nNonMin)
	for i := 0; i < nMin; i++ {
		minimal = append(minimal, t.MinimalPath(src, dst, rng))
	}
	for i := 0; i < nNonMin; i++ {
		nonMinimal = append(nonMinimal, t.NonMinimalPath(src, dst, rng))
	}
	return minimal, nonMinimal
}

// MinimalHops returns the number of hops of a minimal path between the two
// routers (deterministic, no sampling).
func (t *Topology) MinimalHops(src, dst RouterID) int {
	return len(t.MinimalPath(src, dst, nil))
}

// ValidatePath reports an error if the path is not a connected chain of links
// from src to dst.
func (t *Topology) ValidatePath(src, dst RouterID, p Path) error {
	cur := src
	for i, id := range p {
		if int(id) < 0 || int(id) >= len(t.links) {
			return fmt.Errorf("topo: hop %d: invalid link id %d", i, id)
		}
		l := t.Link(id)
		if l.Src != cur {
			return fmt.Errorf("topo: hop %d: link %d starts at %d, expected %d", i, id, l.Src, cur)
		}
		cur = l.Dst
	}
	if cur != dst {
		return fmt.Errorf("topo: path ends at router %d, expected %d", cur, dst)
	}
	return nil
}
