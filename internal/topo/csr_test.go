package topo

import (
	"sort"
	"testing"
)

// csrGeometries are the shapes the CSR adjacency is cross-checked on,
// including degenerate single-dimension layouts.
var csrGeometries = []Config{
	SmallConfig(1),
	SmallConfig(4),
	AriesConfig(2),
	{Groups: 3, ChassisPerGroup: 1, BladesPerChassis: 4, NodesPerBlade: 1,
		GlobalLinksPerRouter: 2, IntraGroupLinkWidth: 1, IntraChassisLinkWidth: 1, GlobalLinkWidth: 1},
	{Groups: 2, ChassisPerGroup: 3, BladesPerChassis: 1, NodesPerBlade: 2,
		GlobalLinksPerRouter: 2, IntraGroupLinkWidth: 2, IntraChassisLinkWidth: 1, GlobalLinkWidth: 1},
}

// TestCSRMatchesLinkList rebuilds the adjacency relation from the flat link
// list and checks LinkBetween against it for every router pair: the CSR
// binary search must agree exactly with the ground truth (including
// InvalidLink for unconnected pairs).
func TestCSRMatchesLinkList(t *testing.T) {
	for _, cfg := range csrGeometries {
		tp := MustNew(cfg)
		want := make(map[adjKey]LinkID, tp.NumLinks())
		for _, l := range tp.Links() {
			if prev, dup := want[adjKey{l.Src, l.Dst}]; dup {
				t.Fatalf("%+v: duplicate link %d and %d for pair (%d,%d)", cfg, prev, l.ID, l.Src, l.Dst)
			}
			want[adjKey{l.Src, l.Dst}] = l.ID
		}
		n := tp.NumRouters()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				wantID, ok := want[adjKey{RouterID(src), RouterID(dst)}]
				if !ok {
					wantID = InvalidLink
				}
				if got := tp.LinkBetween(RouterID(src), RouterID(dst)); got != wantID {
					t.Fatalf("%+v: LinkBetween(%d,%d) = %d, want %d", cfg, src, dst, got, wantID)
				}
			}
		}
	}
}

// TestCSRNeighborsSortedAndComplete pins the Neighbors contract of the CSR
// layout: ascending router order, no duplicates, degree matching the link
// list.
func TestCSRNeighborsSortedAndComplete(t *testing.T) {
	for _, cfg := range csrGeometries {
		tp := MustNew(cfg)
		degree := make(map[RouterID]int)
		for _, l := range tp.Links() {
			degree[l.Src]++
		}
		for r := 0; r < tp.NumRouters(); r++ {
			nb := tp.Neighbors(RouterID(r))
			if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
				t.Fatalf("%+v: Neighbors(%d) not sorted: %v", cfg, r, nb)
			}
			for i := 1; i < len(nb); i++ {
				if nb[i] == nb[i-1] {
					t.Fatalf("%+v: Neighbors(%d) has duplicate %d", cfg, r, nb[i])
				}
			}
			if len(nb) != degree[RouterID(r)] || len(nb) != tp.Degree(RouterID(r)) {
				t.Fatalf("%+v: router %d degree mismatch: Neighbors=%d Degree()=%d links=%d",
					cfg, r, len(nb), tp.Degree(RouterID(r)), degree[RouterID(r)])
			}
		}
	}
}

// TestCSRMemoryScalesWithLinks is the machine-scale motivation: past the
// dense-mirror cutoff the adjacency arrays grow with the link count, not
// quadratically with the router count. On a full Aries 14-group system (1344
// routers) a dense |R|²-entry matrix would hold ~1.8M entries; the CSR rows
// plus the reverse-link table stay within a small multiple of the ~29k
// directed links.
func TestCSRMemoryScalesWithLinks(t *testing.T) {
	tp := MustNew(AriesConfig(14))
	if tp.adjDense != nil {
		t.Fatal("machine-scale topology built the dense mirror despite the size cutoff")
	}
	got := tp.AdjacencyBytes()
	// offsets (n+1), dst, link and reverse-link arrays, 4 bytes each.
	want := (tp.NumRouters()+1)*4 + tp.NumLinks()*12
	if got != want {
		t.Fatalf("AdjacencyBytes = %d, want %d", got, want)
	}
	dense := tp.NumRouters() * tp.NumRouters() * 4
	if got*10 > dense {
		t.Fatalf("CSR adjacency (%d B) is not an order of magnitude under the dense matrix (%d B)", got, dense)
	}
	if tp.buildAdj != nil {
		t.Fatal("construction scaffolding (buildAdj) must be released after New")
	}
	// The CSR row search (the machine-scale LinkBetween path) must agree
	// with the ground-truth link list; sample pairs around each router.
	truth := make(map[adjKey]LinkID, tp.NumLinks())
	for _, l := range tp.Links() {
		truth[adjKey{l.Src, l.Dst}] = l.ID
	}
	for src := 0; src < tp.NumRouters(); src += 7 {
		for dst := 0; dst < tp.NumRouters(); dst += 11 {
			wantID, ok := truth[adjKey{RouterID(src), RouterID(dst)}]
			if !ok {
				wantID = InvalidLink
			}
			if gotID := tp.LinkBetween(RouterID(src), RouterID(dst)); gotID != wantID {
				t.Fatalf("CSR search LinkBetween(%d,%d) = %d, want %d", src, dst, gotID, wantID)
			}
		}
	}
}

// TestReverseLinkTable pins ReverseLink against LinkBetween on both the
// dense-mirrored and the CSR-only regimes.
func TestReverseLinkTable(t *testing.T) {
	for _, cfg := range []Config{SmallConfig(4), AriesConfig(14)} {
		tp := MustNew(cfg)
		for _, l := range tp.Links() {
			if got, want := tp.ReverseLink(l.ID), tp.LinkBetween(l.Dst, l.Src); got != want {
				t.Fatalf("%+v: ReverseLink(%d) = %d, want %d", cfg, l.ID, got, want)
			}
		}
	}
}
