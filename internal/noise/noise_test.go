package noise

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/alloc"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

func testFabric(t testing.TB, seed int64) (*network.Fabric, *topo.Topology, *sim.Engine) {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	return network.MustNew(eng, tt, pol, network.DefaultConfig()), tt, eng
}

func jobNodes(tt *topo.Topology, n int) []topo.NodeID {
	out := make([]topo.NodeID, n)
	for i := range out {
		out[i] = topo.NodeID(i)
	}
	return out
}

func TestPatternStringsAndParse(t *testing.T) {
	for _, p := range []Pattern{UniformRandom, Hotspot, AlltoallBully, Burst} {
		s := p.String()
		if s == "" {
			t.Fatal("empty pattern string")
		}
		back, err := ParsePattern(s)
		if err != nil || back != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParsePattern("nope"); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
	if Pattern(99).String() == "" {
		t.Fatal("unknown pattern must format")
	}
}

func TestGeneratorConfigValidate(t *testing.T) {
	if err := DefaultGeneratorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultGeneratorConfig()
	bad.MessageBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero message size must fail")
	}
	bad = DefaultGeneratorConfig()
	bad.IntervalCycles = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero interval must fail")
	}
	bad = DefaultGeneratorConfig()
	bad.JitterFraction = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("jitter > 1 must fail")
	}
	bad = DefaultGeneratorConfig()
	bad.Pattern = Burst
	bad.BurstLengthMessages = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("burst without length must fail")
	}
}

func TestGeneratorRejectsTinyJobs(t *testing.T) {
	f, tt, _ := testFabric(t, 1)
	if _, err := NewGenerator(f, jobNodes(tt, 1), DefaultGeneratorConfig()); err == nil {
		t.Fatal("single-node generator must be rejected")
	}
	if _, err := NewGenerator(f, jobNodes(tt, 4), GeneratorConfig{}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestGeneratorProducesTraffic(t *testing.T) {
	for _, p := range []Pattern{UniformRandom, Hotspot, AlltoallBully, Burst} {
		f, tt, eng := testFabric(t, 2)
		cfg := DefaultGeneratorConfig()
		cfg.Pattern = p
		cfg.IntervalCycles = 5000
		g := MustNewGenerator(f, jobNodes(tt, 6), cfg)
		g.Start(2_000_000)
		if err := eng.RunUntil(2_100_000); err != nil {
			t.Fatal(err)
		}
		if g.MessagesSent() == 0 {
			t.Fatalf("pattern %v generated no traffic", p)
		}
		if g.BytesSent() != g.MessagesSent()*uint64(cfg.MessageBytes) {
			t.Fatalf("pattern %v byte accounting mismatch", p)
		}
		if f.PacketsInjected() == 0 {
			t.Fatalf("pattern %v injected no packets into the fabric", p)
		}
	}
}

func TestGeneratorStops(t *testing.T) {
	f, tt, eng := testFabric(t, 3)
	cfg := DefaultGeneratorConfig()
	cfg.IntervalCycles = 1000
	g := MustNewGenerator(f, jobNodes(tt, 4), cfg)
	g.Start(50_000)
	if err := eng.RunUntil(40_000); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	sent := g.MessagesSent()
	if err := eng.RunUntil(500_000); err != nil {
		t.Fatal(err)
	}
	if g.MessagesSent() != sent {
		t.Fatalf("generator kept sending after Stop: %d -> %d", sent, g.MessagesSent())
	}
}

func TestGeneratorRespectsDeadline(t *testing.T) {
	f, tt, eng := testFabric(t, 4)
	cfg := DefaultGeneratorConfig()
	cfg.IntervalCycles = 1000
	g := MustNewGenerator(f, jobNodes(tt, 4), cfg)
	g.Start(30_000)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// All sends happened before the deadline (plus one interval of slack).
	if eng.Now() > 10_000_000 {
		t.Fatalf("generator ran far past its deadline: now=%d", eng.Now())
	}
	if g.MessagesSent() == 0 {
		t.Fatal("no messages before deadline")
	}
}

func TestFromAllocation(t *testing.T) {
	f, tt, _ := testFabric(t, 5)
	a := alloc.MustAllocate(tt, alloc.Contiguous, 4, nil, nil)
	g, err := FromAllocation(f, a, DefaultGeneratorConfig())
	if err != nil || g == nil {
		t.Fatal(err)
	}
}

func TestHotspotTargetsVictim(t *testing.T) {
	f, tt, eng := testFabric(t, 6)
	cfg := DefaultGeneratorConfig()
	cfg.Pattern = Hotspot
	cfg.IntervalCycles = 2000
	nodes := jobNodes(tt, 6)
	g := MustNewGenerator(f, nodes, cfg)
	g.Start(500_000)
	if err := eng.RunUntil(600_000); err != nil {
		t.Fatal(err)
	}
	// The victim's router must have received most of the traffic.
	victim := map[topo.RouterID]bool{tt.RouterOfNode(nodes[0]): true}
	flits, _ := f.IncomingFlits(victim)
	if flits == 0 {
		t.Fatal("victim router saw no flits under hotspot pattern")
	}
}

func TestMustNewGeneratorPanics(t *testing.T) {
	f, tt, _ := testFabric(t, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewGenerator did not panic")
		}
	}()
	MustNewGenerator(f, jobNodes(tt, 1), DefaultGeneratorConfig())
}

func TestHostNoiseConfigValidate(t *testing.T) {
	if err := DefaultHostNoiseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultHostNoiseConfig()
	bad.MeanCycles = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative mean must fail")
	}
	bad = DefaultHostNoiseConfig()
	bad.SpikeProbability = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("probability > 1 must fail")
	}
	if _, err := NewHostNoise(bad); err == nil {
		t.Fatal("NewHostNoise must reject bad config")
	}
}

func TestMustNewHostNoisePanics(t *testing.T) {
	bad := DefaultHostNoiseConfig()
	bad.SpikeCycles = -1
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewHostNoise did not panic")
		}
	}()
	MustNewHostNoise(bad)
}

func TestHostNoiseSamples(t *testing.T) {
	h := MustNewHostNoise(DefaultHostNoiseConfig())
	sampler := h.Sampler()
	sawSpike := false
	var sum int64
	const n = 10_000
	for i := 0; i < n; i++ {
		d := sampler(0)
		if d < 0 {
			t.Fatal("negative host-noise sample")
		}
		if d >= DefaultHostNoiseConfig().SpikeCycles {
			sawSpike = true
		}
		sum += d
	}
	if !sawSpike {
		t.Fatal("heavy tail never produced a spike in 10k samples")
	}
	mean := float64(sum) / n
	cfgMean := float64(DefaultHostNoiseConfig().MeanCycles) +
		DefaultHostNoiseConfig().SpikeProbability*float64(DefaultHostNoiseConfig().SpikeCycles)
	if mean < cfgMean*0.5 || mean > cfgMean*2 {
		t.Fatalf("empirical mean %.0f too far from configured %.0f", mean, cfgMean)
	}
}

// Property: host-noise samples are always non-negative for any configuration.
func TestPropertyHostNoiseNonNegative(t *testing.T) {
	f := func(mean uint16, spike uint16, probPct uint8, seed int64) bool {
		cfg := HostNoiseConfig{
			MeanCycles:       int64(mean),
			SpikeCycles:      int64(spike),
			SpikeProbability: float64(probPct%101) / 100,
			Seed:             seed,
		}
		h, err := NewHostNoise(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			if h.Sample(i) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
