package perfmodel

import (
	"math"
	"testing"
)

// synthSamples generates observations from known (L, s) over a spread of
// message sizes, optionally perturbed by a deterministic relative error.
func synthSamples(truth Params, noise float64) []Sample {
	sizes := []int64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	out := make([]Sample, 0, len(sizes))
	for i, sz := range sizes {
		g := GeometryForSize(sz)
		obs := EstimateCycles(g, truth)
		if noise > 0 {
			// Alternate the perturbation sign so the noise is zero-mean-ish.
			sign := 1.0
			if i%2 == 1 {
				sign = -1
			}
			obs *= 1 + sign*noise
		}
		out = append(out, Sample{Geometry: g, ObservedCycles: obs})
	}
	return out
}

func TestCalibrateRecoversExactParams(t *testing.T) {
	truth := Params{LatencyCycles: 700, StallRatio: 0.35}
	fit, err := Calibrate(synthSamples(truth, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Params.LatencyCycles-truth.LatencyCycles) > 1e-6 {
		t.Fatalf("fitted L = %f, want %f", fit.Params.LatencyCycles, truth.LatencyCycles)
	}
	if math.Abs(fit.Params.StallRatio-truth.StallRatio) > 1e-9 {
		t.Fatalf("fitted s = %f, want %f", fit.Params.StallRatio, truth.StallRatio)
	}
	if fit.MAPE > 1e-9 {
		t.Fatalf("noise-free fit has MAPE %f, want ~0", fit.MAPE)
	}
	if fit.PearsonR < 0.999999 {
		t.Fatalf("noise-free fit has Pearson r %f, want ~1", fit.PearsonR)
	}
	if fit.Samples != 8 {
		t.Fatalf("fit used %d samples, want 8", fit.Samples)
	}
}

func TestCalibrateToleratesNoise(t *testing.T) {
	truth := Params{LatencyCycles: 500, StallRatio: 0.2}
	fit, err := Calibrate(synthSamples(truth, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Params.LatencyCycles < 0 || fit.Params.StallRatio < 0 {
		t.Fatalf("fit produced unphysical params: %+v", fit.Params)
	}
	// 5% multiplicative noise bounds the achievable error near 5%.
	if fit.MAPE > 0.10 {
		t.Fatalf("MAPE %f too large for 5%% noise", fit.MAPE)
	}
	if fit.PearsonR < 0.99 {
		t.Fatalf("Pearson r %f too small for 5%% noise", fit.PearsonR)
	}
	if err := fit.Params.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateDegenerateGeometryFallsBack(t *testing.T) {
	// Every sample shares one single-packet geometry: w and f are collinear, so
	// the solver must fall back to fitting L alone rather than dividing by a
	// vanishing determinant.
	g := GeometryForSize(64)
	samples := []Sample{
		{Geometry: g, ObservedCycles: 400},
		{Geometry: g, ObservedCycles: 420},
		{Geometry: g, ObservedCycles: 410},
	}
	fit, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Params.StallRatio != 0 {
		t.Fatalf("degenerate fit should pin s=0, got %f", fit.Params.StallRatio)
	}
	if fit.Params.LatencyCycles <= 0 || math.IsNaN(fit.Params.LatencyCycles) {
		t.Fatalf("degenerate fit produced L=%f", fit.Params.LatencyCycles)
	}
}

func TestCalibrateClampsNegativeStall(t *testing.T) {
	// Observations far below the flit floor would push s negative; the fit
	// must clamp to the physical boundary instead.
	samples := []Sample{
		{Geometry: GeometryForSize(64), ObservedCycles: 10},
		{Geometry: GeometryForSize(65536), ObservedCycles: 20},
		{Geometry: GeometryForSize(1048576), ObservedCycles: 30},
	}
	fit, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Params.StallRatio < 0 || fit.Params.LatencyCycles < 0 {
		t.Fatalf("clamping failed: %+v", fit.Params)
	}
}

func TestCalibrateNeedsTwoSamples(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Fatal("expected error for empty sample set")
	}
	if _, err := Calibrate([]Sample{{Geometry: GeometryForSize(64), ObservedCycles: 5}}); err == nil {
		t.Fatal("expected error for a single sample")
	}
}
