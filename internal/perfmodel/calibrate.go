package perfmodel

import (
	"fmt"
	"math"
)

// Sample is one reference observation for calibration: a message geometry and
// the transmission time the network actually needed for it.
type Sample struct {
	// Geometry is the packet/flit layout of the observed message.
	Geometry Geometry
	// ObservedCycles is the measured transmission time in cycles.
	ObservedCycles float64
}

// Fit is the result of calibrating the Eq. 2 model against a trace.
type Fit struct {
	// Params holds the fitted (L, s).
	Params Params
	// MAPE is the mean absolute percentage error of the fitted model over the
	// samples with positive observed time, as a fraction (0.1 = 10%).
	MAPE float64
	// PearsonR is the linear correlation between the fitted estimates and the
	// observations (1 = the model ranks and scales the samples perfectly).
	PearsonR float64
	// Samples is the number of observations used.
	Samples int
}

// Calibrate fits the Eq. 2 parameters (L, s) to reference timings by linear
// least squares. Writing w = (p + 512)/1024 for the window term, the model is
//
//	T = w·L + f·(s+1)  ⇒  T − f = w·L + f·s,
//
// which is linear in (L, s) with predictors (w, f). Each equation is scaled
// by 1/T (relative least squares): w and f are nearly collinear for large
// messages, and without the scaling the absolute residuals of the largest
// samples dominate the fit and wreck the small-message estimates that MAPE
// scores. The normal equations are solved directly; a degenerate system
// (e.g. every sample has the same single-packet geometry, making w and f
// exactly collinear) falls back to fitting L alone with s = 0. Both
// parameters are clamped to be non-negative, since negative latency or stall
// ratios are not physically meaningful. The accumulation order is fixed, so
// the fit is deterministic for a given sample order.
func Calibrate(samples []Sample) (Fit, error) {
	if len(samples) < 2 {
		return Fit{}, fmt.Errorf("perfmodel: calibration needs at least 2 samples, got %d", len(samples))
	}
	var sww, swf, sff, swy, sfy float64
	for _, s := range samples {
		w := (float64(s.Geometry.Packets) + float64(WindowPackets)/2) / float64(WindowPackets)
		f := float64(s.Geometry.Flits)
		y := s.ObservedCycles - f // subtract the f·1 term of f·(s+1)
		if s.ObservedCycles > 0 {
			scale := 1 / s.ObservedCycles
			w *= scale
			f *= scale
			y *= scale
		}
		sww += w * w
		swf += w * f
		sff += f * f
		swy += w * y
		sfy += f * y
	}
	var l, st float64
	det := sww*sff - swf*swf
	if math.Abs(det) > 1e-9*sww*sff {
		l = (swy*sff - sfy*swf) / det
		st = (sfy*sww - swy*swf) / det
	} else if sww > 0 {
		l = swy / sww
	}
	if st < 0 {
		// Refit L alone: a negative stall ratio means the stall predictor is
		// absorbing variance it cannot physically explain.
		st = 0
		if sww > 0 {
			l = swy / sww
		}
	}
	if l < 0 {
		l = 0
	}
	fit := Fit{Params: Params{LatencyCycles: l, StallRatio: st}, Samples: len(samples)}

	// Score the fit: MAPE over positive observations, Pearson r between the
	// model estimates and the observations.
	var mape float64
	mapeN := 0
	var sx, sy, sxx, syy, sxy float64
	for _, s := range samples {
		est := EstimateCycles(s.Geometry, fit.Params)
		obs := s.ObservedCycles
		if obs > 0 {
			mape += math.Abs(est-obs) / obs
			mapeN++
		}
		sx += est
		sy += obs
		sxx += est * est
		syy += obs * obs
		sxy += est * obs
	}
	if mapeN > 0 {
		fit.MAPE = mape / float64(mapeN)
	}
	n := float64(len(samples))
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx > 0 && vy > 0 {
		fit.PearsonR = cov / math.Sqrt(vx*vy)
	}
	return fit, nil
}
