package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"dragonfly/internal/counters"
)

func TestGeometryForSize(t *testing.T) {
	cases := []struct {
		size    int64
		packets int64
		flits   int64
	}{
		{0, 1, 5},
		{1, 1, 5},
		{64, 1, 5},
		{65, 2, 10},
		{1024, 16, 80},
		{1 << 20, 16384, 81920},
	}
	for _, c := range cases {
		g := GeometryForSize(c.size)
		if g.Packets != c.packets || g.Flits != c.flits {
			t.Fatalf("GeometryForSize(%d) = %+v, want packets=%d flits=%d", c.size, g, c.packets, c.flits)
		}
	}
	gget := GeometryForSizeVerb(1024, false)
	if gget.Flits != 16 {
		t.Fatalf("GET flits = %d, want 16", gget.Flits)
	}
	if g := GeometryForSize(-5); g.Packets != 1 {
		t.Fatalf("negative size must clamp to one packet, got %+v", g)
	}
}

func TestParamsFromCounters(t *testing.T) {
	delta := counters.NIC{
		RequestFlits:              100,
		RequestFlitsStalledCycles: 200,
		RequestPackets:            20,
		RequestPacketsCumLatency:  30000,
	}
	p := ParamsFromCounters(delta)
	if p.StallRatio != 2 {
		t.Fatalf("StallRatio = %v, want 2", p.StallRatio)
	}
	if p.LatencyCycles != 1500 {
		t.Fatalf("LatencyCycles = %v, want 1500", p.LatencyCycles)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{LatencyCycles: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative latency")
	}
	if err := (Params{StallRatio: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative stall ratio")
	}
}

func TestEstimateSmallMessage(t *testing.T) {
	// A single-packet message: Eq. 2 gives (1+512)/1024*L + f*(s+1).
	g := GeometryForSize(64)
	p := Params{LatencyCycles: 2048, StallRatio: 1}
	got := EstimateCycles(g, p)
	want := (1.0+512.0)/1024.0*2048 + 5*2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EstimateCycles = %v, want %v", got, want)
	}
	simple := EstimateSimpleCycles(g, p)
	wantSimple := 2048.0/2 + 5*2
	if math.Abs(simple-wantSimple) > 1e-9 {
		t.Fatalf("EstimateSimpleCycles = %v, want %v", simple, wantSimple)
	}
}

func TestEstimateMatchesEquationForms(t *testing.T) {
	// For p = 512 packets, Eq. 2 equals L + f(s+1).
	g := Geometry{Packets: 512, Flits: 512 * 5}
	p := Params{LatencyCycles: 1000, StallRatio: 0.5}
	got := EstimateCycles(g, p)
	want := 1000 + float64(512*5)*1.5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EstimateCycles = %v, want %v", got, want)
	}
}

func TestEstimateForSizeMonotoneInSize(t *testing.T) {
	p := Params{LatencyCycles: 3000, StallRatio: 0.2}
	prev := -1.0
	for _, size := range []int64{64, 1024, 65536, 1 << 20, 16 << 20} {
		est := EstimateForSize(size, p)
		if est <= prev {
			t.Fatalf("estimate not monotone in size at %d: %v <= %v", size, est, prev)
		}
		prev = est
	}
}

func TestPreferB(t *testing.T) {
	// Mode b (high bias) has lower latency but more stalls. With these
	// parameters the crossover (Eq. 4) sits between a 256-byte and a 4 MiB
	// message, so b wins small transfers and a wins large ones.
	a := Params{LatencyCycles: 10000, StallRatio: 0.1}
	b := Params{LatencyCycles: 8000, StallRatio: 1.1}
	small := GeometryForSize(256)
	large := GeometryForSize(4 << 20)
	if !PreferB(small, a, b) {
		t.Fatal("small message should prefer the low-latency mode")
	}
	if PreferB(large, a, b) {
		t.Fatal("large message should prefer the low-stall mode")
	}
}

func TestCrossoverFlits(t *testing.T) {
	a := Params{LatencyCycles: 10000, StallRatio: 0.1}
	b := Params{LatencyCycles: 8000, StallRatio: 1.1}
	f, preferBForSmall, exists := CrossoverFlits(a, b, 1)
	if !exists || !preferBForSmall {
		t.Fatalf("expected a finite crossover with b preferred for small messages, got f=%v preferBForSmall=%v exists=%v", f, preferBForSmall, exists)
	}
	// Messages below the crossover must prefer b, above must prefer a.
	below := Geometry{Flits: int64(f * 0.5), Packets: 1}
	above := Geometry{Flits: int64(f*2) + 1, Packets: 1}
	if !PreferB(below, a, b) {
		t.Fatal("below crossover must prefer b")
	}
	if PreferB(above, a, b) {
		t.Fatal("above crossover must prefer a")
	}

	// b dominates: lower latency and lower stalls -> always preferred.
	_, preferBForSmall, exists = CrossoverFlits(a, Params{LatencyCycles: 5000, StallRatio: 0.05}, 1)
	if exists || !preferBForSmall {
		t.Fatal("dominating b must be always preferred")
	}
	// b dominated: higher latency and more stalls -> never preferred.
	_, preferBForSmall, exists = CrossoverFlits(a, Params{LatencyCycles: 20000, StallRatio: 0.5}, 1)
	if exists || preferBForSmall {
		t.Fatal("dominated b must never be preferred")
	}
	// b worse on latency, equal stalls -> never preferred.
	_, preferBForSmall, exists = CrossoverFlits(a, Params{LatencyCycles: 20000, StallRatio: 0.1}, 1)
	if exists || preferBForSmall {
		t.Fatal("b with equal stalls but worse latency must never be preferred")
	}
	// b better on latency, equal stalls -> always preferred.
	_, preferBForSmall, exists = CrossoverFlits(a, Params{LatencyCycles: 5000, StallRatio: 0.1}, 1)
	if exists || !preferBForSmall {
		t.Fatal("b with equal stalls but better latency must always be preferred")
	}
	// b with fewer stalls but higher latency -> preferred above the crossover.
	f, preferBForSmall, exists = CrossoverFlits(Params{LatencyCycles: 8000, StallRatio: 1.1}, Params{LatencyCycles: 10000, StallRatio: 0.1}, 1)
	if !exists || preferBForSmall {
		t.Fatal("low-stall high-latency b must be preferred above the crossover")
	}
	if f <= 0 {
		t.Fatalf("crossover must be positive, got %v", f)
	}
}

// Property: the estimate is non-negative and increases with the stall ratio
// and with the latency.
func TestPropertyEstimateMonotone(t *testing.T) {
	f := func(sizeKB uint16, lat uint32, stallMilli uint16) bool {
		size := int64(sizeKB) + 1
		p := Params{LatencyCycles: float64(lat), StallRatio: float64(stallMilli) / 1000}
		g := GeometryForSize(size)
		base := EstimateCycles(g, p)
		if base < 0 {
			return false
		}
		moreLat := EstimateCycles(g, Params{LatencyCycles: p.LatencyCycles + 100, StallRatio: p.StallRatio})
		moreStall := EstimateCycles(g, Params{LatencyCycles: p.LatencyCycles, StallRatio: p.StallRatio + 0.5})
		return moreLat > base && moreStall > base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PreferB is consistent with the crossover equation whenever a
// finite crossover exists, and with the always/never verdict otherwise.
func TestPropertyPreferBConsistentWithCrossover(t *testing.T) {
	f := func(la, lb uint16, sa, sb uint8, sizeKB uint16) bool {
		a := Params{LatencyCycles: float64(la) + 1, StallRatio: float64(sa) / 100}
		b := Params{LatencyCycles: float64(lb) + 1, StallRatio: float64(sb) / 100}
		g := GeometryForSize(int64(sizeKB)*64 + 1)
		cross, preferBForSmall, exists := CrossoverFlits(a, b, g.Packets)
		pref := PreferB(g, a, b)
		tie := math.Abs(EstimateCycles(g, a)-EstimateCycles(g, b)) < 1e-6
		if tie {
			return true
		}
		if !exists {
			return pref == preferBForSmall
		}
		if float64(g.Flits) < cross {
			return pref == preferBForSmall
		}
		return pref == !preferBForSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
