// Package perfmodel implements the LogP-inspired transmission-time model of
// §2.4 of the paper. Given the NIC counters (average packet latency L and
// average per-flit stall ratio s) and the message geometry (number of flits f
// and packets p, derived from the message size and RDMA verb), the model
// estimates the time the network needs to move the message:
//
//	T_msg ≈ (p + 512)/1024 · L + f · (s + 1)            (Eq. 2)
//
// which reduces to L/2 + f·(s+1) (Eq. 1) when the message fits in the NIC's
// 1024 outstanding-packet window. The application-aware routing algorithm
// compares this quantity under the two candidate routing modes to decide how
// to route the next message.
package perfmodel

import (
	"fmt"

	"dragonfly/internal/counters"
)

// Geometry describes how a message maps onto packets and flits.
type Geometry struct {
	// Flits is the number of request flits of the message (f in the paper).
	Flits int64
	// Packets is the number of request packets of the message (p in the paper).
	Packets int64
}

// PacketBytes is the payload carried by one Aries request packet.
const PacketBytes = 64

// PutFlitsPerPacket and GetFlitsPerPacket are the request flits per packet for
// the two RDMA verbs (1 header + 4 payload flits for PUT, header only for GET).
const (
	PutFlitsPerPacket = 5
	GetFlitsPerPacket = 1
)

// WindowPackets is the maximum number of outstanding packets an Aries NIC
// supports; beyond this, transmission serializes on response reception.
const WindowPackets = 1024

// GeometryForSize returns the packet/flit geometry of a message of the given
// size transferred with a PUT (the common case for MPI payloads).
func GeometryForSize(sizeBytes int64) Geometry {
	return GeometryForSizeVerb(sizeBytes, true)
}

// GeometryForSizeVerb returns the geometry for a message of the given size;
// put selects between PUT and GET request-flit counts.
func GeometryForSizeVerb(sizeBytes int64, put bool) Geometry {
	if sizeBytes < 0 {
		sizeBytes = 0
	}
	packets := (sizeBytes + PacketBytes - 1) / PacketBytes
	if packets == 0 {
		packets = 1
	}
	per := int64(PutFlitsPerPacket)
	if !put {
		per = GetFlitsPerPacket
	}
	return Geometry{Flits: packets * per, Packets: packets}
}

// Params are the network-state inputs of the model, normally obtained from NIC
// counter deltas.
type Params struct {
	// LatencyCycles is L, the average request-response packet latency.
	LatencyCycles float64
	// StallRatio is s, the average number of stall cycles per request flit.
	StallRatio float64
}

// ParamsFromCounters extracts L and s from a counter delta.
func ParamsFromCounters(delta counters.NIC) Params {
	return Params{
		LatencyCycles: delta.AvgPacketLatency(),
		StallRatio:    delta.StallRatio(),
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.LatencyCycles < 0 {
		return fmt.Errorf("perfmodel: negative latency %f", p.LatencyCycles)
	}
	if p.StallRatio < 0 {
		return fmt.Errorf("perfmodel: negative stall ratio %f", p.StallRatio)
	}
	return nil
}

// EstimateCycles returns the Eq. 2 estimate of the transmission time of a
// message with geometry g under network conditions p, in NIC cycles.
func EstimateCycles(g Geometry, p Params) float64 {
	window := (float64(g.Packets) + float64(WindowPackets)/2) / float64(WindowPackets)
	return window*p.LatencyCycles + float64(g.Flits)*(p.StallRatio+1)
}

// EstimateSimpleCycles returns the Eq. 1 estimate (no window term), valid when
// the message fits within the outstanding-packet window.
func EstimateSimpleCycles(g Geometry, p Params) float64 {
	return p.LatencyCycles/2 + float64(g.Flits)*(p.StallRatio+1)
}

// EstimateForSize is a convenience wrapper estimating the transfer time of a
// PUT message of the given size.
func EstimateForSize(sizeBytes int64, p Params) float64 {
	return EstimateCycles(GeometryForSize(sizeBytes), p)
}

// CrossoverFlits evaluates Eq. 4 of the paper,
//
//	f* = (L_a - L_b) / (s_b - s_a) · (p + 512)/1024,
//
// the flit count at which the preferred routing mode switches between "a"
// (typically Adaptive) and "b" (typically Adaptive with High Bias).
//
// When a finite crossover exists, exists is true and preferBForSmall reports
// which side of the crossover prefers mode b: true means b wins below f*
// (the usual case: b has lower latency but more stalls), false means b wins
// above f* (b has fewer stalls but higher latency). When no finite crossover
// exists, exists is false and preferBForSmall reports whether b is preferred
// at every message size.
func CrossoverFlits(a, b Params, packets int64) (flits float64, preferBForSmall bool, exists bool) {
	dL := a.LatencyCycles - b.LatencyCycles // > 0 when b has lower latency
	dS := b.StallRatio - a.StallRatio       // > 0 when b has more stalls
	window := (float64(packets) + float64(WindowPackets)/2) / float64(WindowPackets)
	switch {
	case dS == 0:
		return 0, dL > 0, false
	case dS > 0:
		f := dL / dS * window
		if f <= 0 {
			return 0, false, false // b never wins
		}
		return f, true, true
	default: // dS < 0: b has fewer stalls
		f := dL / dS * window
		if f <= 0 {
			return 0, true, false // b always wins
		}
		return f, false, true
	}
}

// PreferB reports whether the model predicts that sending a message of the
// given geometry with mode "b" parameters is faster than with mode "a"
// parameters. It is the comparison of Eq. 3.
func PreferB(g Geometry, a, b Params) bool {
	return EstimateCycles(g, b) < EstimateCycles(g, a)
}
