package experiments

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/counters"
	"dragonfly/internal/noise"
	"dragonfly/internal/perfmodel"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// Figure3Allocations reproduces Figure 3: the distribution of ping-pong times
// for a 16 KiB message between two nodes placed at increasing topological
// distance (same blade, different blades, different chassis, different
// groups), with background traffic sharing the machine. Both the median and
// the spread (IQR, outliers) must grow with distance.
func Figure3Allocations(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	msgSize := opts.scaleSize(16 << 10)
	table := trace.NewTable(
		fmt.Sprintf("Figure 3: ping-pong %d B across allocation classes (cycles)", msgSize),
		summaryColumns("allocation", "max")...)

	classes := []topo.AllocationClass{
		topo.AllocInterNodes, topo.AllocInterBlades, topo.AllocInterChassis, topo.AllocInterGroups,
	}
	for i, class := range classes {
		e, err := newEnv(opts, opts.pizDaintGeometry(), int64(i))
		if err != nil {
			return nil, err
		}
		a, b, err := alloc.PairForClass(e.topo, class)
		if err != nil {
			return nil, err
		}
		pair := alloc.NewAllocation(e.topo, []topo.NodeID{a, b})
		e.startBackgroundNoise(alloc.ExcludeSet(pair), noise.UniformRandom, noiseHorizon)
		w := &workloads.PingPong{MessageBytes: msgSize, Iterations: 1}
		m, err := e.measureSingle(pair, DefaultSetup(), nil, w, opts.iters())
		if err != nil {
			return nil, err
		}
		summaryRow(table, class.String(), m.Times, stats.Max(m.Times))
	}
	return []*trace.Table{table}, nil
}

// Table1IdleFlits reproduces Table 1: an application that only sleeps observes
// its routers' tile counters; doubling the sleep roughly doubles the observed
// incoming flits and stalled cycles even though the application sent nothing —
// correlation between execution time and router-counter traffic is not
// causation.
func Table1IdleFlits(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	e, err := newEnv(opts, opts.pizDaintGeometry(), 101)
	if err != nil {
		return nil, err
	}
	// The idle job: 16 nodes (or fewer on tiny systems), as in the paper.
	jobNodes := 16
	if jobNodes > e.topo.NumNodes()/2 {
		jobNodes = e.topo.NumNodes() / 2
	}
	job, err := alloc.Allocate(e.topo, alloc.Contiguous, jobNodes, nil, nil)
	if err != nil {
		return nil, err
	}
	e.startBackgroundNoise(alloc.ExcludeSet(job), noise.UniformRandom, noiseHorizon)

	baseIdle := int64(2_000_000) // "1 second" of simulated idling, scaled
	if opts.Quick {
		baseIdle = 400_000
	}
	table := trace.NewTable(
		"Table 1: idle time vs observed router-tile traffic",
		"idle (units)", "idle (cycles)", "incoming flits", "stalled cycles")
	routers := job.Routers()
	for _, mult := range []int64{1, 2} {
		beforeFlits, beforeStalls := e.fabric.IncomingFlits(routers)
		deadline := e.engine.Now() + baseIdle*mult
		if err := e.engine.RunUntil(deadline); err != nil {
			return nil, err
		}
		afterFlits, afterStalls := e.fabric.IncomingFlits(routers)
		table.AddRow(mult, baseIdle*mult, afterFlits-beforeFlits, afterStalls-beforeStalls)
	}
	return []*trace.Table{table}, nil
}

// Figure4OnNodeAlltoall reproduces Figure 4: an MPI_Alltoall between 8 ranks
// on the same node uses no network at all, yet its execution time still varies
// because of host-side noise — so communication-time variability alone must
// not be read as network noise.
func Figure4OnNodeAlltoall(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	e, err := newEnv(opts, opts.pizDaintGeometry(), 202)
	if err != nil {
		return nil, err
	}
	// Eight ranks pinned to the same node: every transfer is a loopback copy.
	nodes := make([]topo.NodeID, 8)
	for i := range nodes {
		nodes[i] = 0
	}
	a := alloc.NewAllocation(e.topo, nodes)
	host := noise.MustNewHostNoise(noise.DefaultHostNoiseConfig())

	table := trace.NewTable(
		"Figure 4: on-node alltoall (8 ranks, one node) execution time vs size (cycles)",
		summaryColumns("message size (B)", "nic packets")...)
	for _, size := range []int64{64, 1 << 10, 16 << 10, 128 << 10} {
		size = opts.scaleSize(size)
		w := &workloads.Alltoall{MessageBytes: size, Iterations: 1}
		m, err := e.measureSingle(a, DefaultSetup(), host.Sampler(), w, opts.iters())
		if err != nil {
			return nil, err
		}
		var packets uint64
		for _, d := range m.Deltas {
			packets += d.RequestPackets
		}
		summaryRow(table, fmt.Sprintf("%d", size), m.Times, packets)
	}
	return []*trace.Table{table}, nil
}

// Figure5QCD reproduces Figure 5: for an inter-group ping-pong, the quartile
// coefficient of dispersion of the end-to-end execution time overestimates the
// QCD of the network packet latency, especially for small messages, and the
// two converge as the message size grows.
func Figure5QCD(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	e, err := newEnv(opts, opts.pizDaintGeometry(), 303)
	if err != nil {
		return nil, err
	}
	src, dst, err := alloc.PairForClass(e.topo, topo.AllocInterGroups)
	if err != nil {
		return nil, err
	}
	pair := alloc.NewAllocation(e.topo, []topo.NodeID{src, dst})
	e.startBackgroundNoise(alloc.ExcludeSet(pair), noise.UniformRandom, noiseHorizon)
	host := noise.MustNewHostNoise(noise.DefaultHostNoiseConfig())

	table := trace.NewTable(
		"Figure 5: QCD of execution time vs QCD of packet latency (inter-group ping-pong)",
		"message size (B)", "qcd exec time", "qcd packet latency", "median exec (cycles)", "median latency (cycles)")

	sizes := []int64{128, 1 << 10, 16 << 10, 128 << 10, 1 << 20}
	if opts.Quick {
		sizes = sizes[:3]
	}
	for _, base := range sizes {
		size := opts.scaleSize(base)
		w := &workloads.PingPong{MessageBytes: size, Iterations: 1}
		m, err := e.measureSingle(pair, DefaultSetup(), host.Sampler(), w, opts.iters())
		if err != nil {
			return nil, err
		}
		latencies := make([]float64, 0, len(m.Deltas))
		for _, d := range m.Deltas {
			latencies = append(latencies, d.AvgPacketLatency())
		}
		table.AddRow(fmt.Sprintf("%d", size),
			stats.QCD(m.Times), stats.QCD(latencies),
			stats.Median(m.Times), stats.Median(latencies))
	}
	return []*trace.Table{table}, nil
}

// ModelValidation reproduces the §2.4 validation of the performance model:
// across allocations and message sizes, the Eq. 2 estimate computed from the
// observed counters must correlate strongly with the measured transmission
// time (the paper reports an average correlation of 79%).
func ModelValidation(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	table := trace.NewTable(
		"Performance model validation (Eq. 2 estimate vs measured ping-pong time)",
		"message size (B)", "pearson correlation", "samples")

	sizes := []int64{128, 4 << 10, 64 << 10, 512 << 10}
	if opts.Quick {
		sizes = sizes[:3]
	}
	allocsPerSize := 6
	if opts.Quick {
		allocsPerSize = 3
	}
	var all []float64
	for _, base := range sizes {
		size := opts.scaleSize(base)
		var measured, estimated []float64
		for run := 0; run < allocsPerSize; run++ {
			e, err := newEnv(opts, opts.pizDaintGeometry(), 400+int64(run))
			if err != nil {
				return nil, err
			}
			class := []topo.AllocationClass{
				topo.AllocInterBlades, topo.AllocInterChassis, topo.AllocInterGroups,
			}[run%3]
			src, dst, err := alloc.PairForClass(e.topo, class)
			if err != nil {
				return nil, err
			}
			pair := alloc.NewAllocation(e.topo, []topo.NodeID{src, dst})
			e.startBackgroundNoise(alloc.ExcludeSet(pair), noise.UniformRandom, noiseHorizon)
			w := &workloads.PingPong{MessageBytes: size, Iterations: 1}
			m, err := e.measureSingle(pair, DefaultSetup(), nil, w, opts.iters())
			if err != nil {
				return nil, err
			}
			for i, d := range m.Deltas {
				// The delta covers a full round trip (two messages); halve it
				// to approximate one transmission, matching T_msg.
				params := perfmodel.ParamsFromCounters(halveDelta(d))
				estimated = append(estimated, perfmodel.EstimateForSize(size, params))
				measured = append(measured, m.Times[i]/2)
			}
		}
		r, err := stats.PearsonCorrelation(measured, estimated)
		if err != nil {
			return nil, err
		}
		all = append(all, r)
		table.AddRow(fmt.Sprintf("%d", size), r, len(measured))
	}
	table.AddRow("average", stats.Mean(all), "")
	return []*trace.Table{table}, nil
}

// halveDelta divides a round-trip counter delta by two (both directions of a
// ping-pong contribute to the job-wide counters).
func halveDelta(d counters.NIC) counters.NIC {
	return counters.NIC{
		RequestFlits:              d.RequestFlits / 2,
		RequestFlitsStalledCycles: d.RequestFlitsStalledCycles / 2,
		RequestPackets:            d.RequestPackets / 2,
		RequestPacketsCumLatency:  d.RequestPacketsCumLatency / 2,
		MinimalPackets:            d.MinimalPackets / 2,
		NonMinimalPackets:         d.NonMinimalPackets / 2,
	}
}
