package experiments

import (
	"context"
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/counters"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/perfmodel"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// Figure3Allocations reproduces Figure 3: the distribution of ping-pong times
// for a 16 KiB message between two nodes placed at increasing topological
// distance (same blade, different blades, different chassis, different
// groups), with background traffic sharing the machine. Both the median and
// the spread (IQR, outliers) must grow with distance.
func Figure3Allocations(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	msgSize := opts.scaleSize(16 << 10)
	table := trace.NewTable(
		fmt.Sprintf("Figure 3: ping-pong %d B across allocation classes (cycles)", msgSize),
		summaryColumns("allocation", "max")...)

	classes := []topo.AllocationClass{
		topo.AllocInterNodes, topo.AllocInterBlades, topo.AllocInterChassis, topo.AllocInterGroups,
	}
	specs := make([]harness.TrialSpec, len(classes))
	for i, class := range classes {
		specs[i] = harness.TrialSpec{
			ID:        "fig3/" + class.String(),
			Geometry:  opts.pizDaintGeometry(),
			PairAlloc: true,
			PairClass: class,
			Noise:     opts.noiseSpec(noise.UniformRandom),
			Setups:    singleSetup(DefaultSetup),
			Workload: func(ranks int) workloads.Workload {
				return &workloads.PingPong{MessageBytes: msgSize, Iterations: 1}
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		m := res["Default"]
		summaryRow(table, classes[i].String(), m.Times, stats.Max(m.Times))
	}
	return []*trace.Table{table}, nil
}

// idleObservation is one row of the Table 1 trial: how much traffic the idle
// job's routers saw over one observation window.
type idleObservation struct {
	Mult, IdleCycles     int64
	Flits, StalledCycles uint64
}

// Table1IdleFlits reproduces Table 1: an application that only sleeps observes
// its routers' tile counters; doubling the sleep roughly doubles the observed
// incoming flits and stalled cycles even though the application sent nothing —
// correlation between execution time and router-counter traffic is not
// causation.
func Table1IdleFlits(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	baseIdle := int64(2_000_000) // "1 second" of simulated idling, scaled
	if opts.Quick {
		baseIdle = 400_000
	}
	spec := harness.TrialSpec{
		ID:       "tab1/idle",
		Geometry: opts.pizDaintGeometry(),
		Body: func(ctx context.Context, e *harness.Env) (any, error) {
			// The idle job: 16 nodes (or fewer on tiny systems), as in the
			// paper, placed contiguously and deterministically (nil RNG).
			jobNodes := 16
			if jobNodes > e.Topo.NumNodes()/2 {
				jobNodes = e.Topo.NumNodes() / 2
			}
			job, err := alloc.Allocate(e.Topo, alloc.Contiguous, jobNodes, nil, nil)
			if err != nil {
				return nil, err
			}
			e.StartNoise(*opts.noiseSpec(noise.UniformRandom), job)
			routers := job.Routers()
			var rows []idleObservation
			for _, mult := range []int64{1, 2} {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				beforeFlits, beforeStalls := e.Fabric.IncomingFlits(routers)
				deadline := e.Engine.Now() + baseIdle*mult
				if err := e.Engine.RunUntil(deadline); err != nil {
					return nil, err
				}
				afterFlits, afterStalls := e.Fabric.IncomingFlits(routers)
				rows = append(rows, idleObservation{
					Mult: mult, IdleCycles: baseIdle * mult,
					Flits: afterFlits - beforeFlits, StalledCycles: afterStalls - beforeStalls,
				})
			}
			return rows, nil
		},
	}
	results, err := opts.runTrials([]harness.TrialSpec{spec})
	if err != nil {
		return nil, err
	}
	rows, ok := results[0].Value.([]idleObservation)
	if !ok {
		return nil, fmt.Errorf("experiments: tab1 trial returned %T", results[0].Value)
	}
	table := trace.NewTable(
		"Table 1: idle time vs observed router-tile traffic",
		"idle (units)", "idle (cycles)", "incoming flits", "stalled cycles")
	for _, row := range rows {
		table.AddRow(row.Mult, row.IdleCycles, row.Flits, row.StalledCycles)
	}
	return []*trace.Table{table}, nil
}

// Figure4OnNodeAlltoall reproduces Figure 4: an MPI_Alltoall between 8 ranks
// on the same node uses no network at all, yet its execution time still varies
// because of host-side noise — so communication-time variability alone must
// not be read as network noise.
func Figure4OnNodeAlltoall(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	// Eight ranks pinned to the same node: every transfer is a loopback copy.
	onNode := make([]topo.NodeID, 8)
	sizes := []int64{64, 1 << 10, 16 << 10, 128 << 10}
	specs := make([]harness.TrialSpec, len(sizes))
	for i, base := range sizes {
		size := opts.scaleSize(base)
		specs[i] = harness.TrialSpec{
			ID:         fmt.Sprintf("fig4/size%d", base),
			Meta:       size,
			Geometry:   opts.pizDaintGeometry(),
			FixedNodes: onNode,
			Setups:     singleSetup(DefaultSetup),
			HostNoise: func() func(int) int64 {
				return noise.MustNewHostNoise(noise.DefaultHostNoiseConfig()).Sampler()
			},
			Workload: func(ranks int) workloads.Workload {
				return &workloads.Alltoall{MessageBytes: size, Iterations: 1}
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	table := trace.NewTable(
		"Figure 4: on-node alltoall (8 ranks, one node) execution time vs size (cycles)",
		summaryColumns("message size (B)", "nic packets")...)
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		m := res["Default"]
		var packets uint64
		for _, d := range m.Deltas {
			packets += d.RequestPackets
		}
		summaryRow(table, fmt.Sprintf("%d", r.Spec.Meta), m.Times, packets)
	}
	return []*trace.Table{table}, nil
}

// Figure5QCD reproduces Figure 5: for an inter-group ping-pong, the quartile
// coefficient of dispersion of the end-to-end execution time overestimates the
// QCD of the network packet latency, especially for small messages, and the
// two converge as the message size grows.
func Figure5QCD(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	sizes := []int64{128, 1 << 10, 16 << 10, 128 << 10, 1 << 20}
	if opts.Quick {
		sizes = sizes[:3]
	}
	specs := make([]harness.TrialSpec, len(sizes))
	for i, base := range sizes {
		size := opts.scaleSize(base)
		specs[i] = harness.TrialSpec{
			ID:        fmt.Sprintf("fig5/size%d", base),
			Meta:      size,
			Geometry:  opts.pizDaintGeometry(),
			PairAlloc: true,
			PairClass: topo.AllocInterGroups,
			Noise:     opts.noiseSpec(noise.UniformRandom),
			Setups:    singleSetup(DefaultSetup),
			HostNoise: func() func(int) int64 {
				return noise.MustNewHostNoise(noise.DefaultHostNoiseConfig()).Sampler()
			},
			Workload: func(ranks int) workloads.Workload {
				return &workloads.PingPong{MessageBytes: size, Iterations: 1}
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	table := trace.NewTable(
		"Figure 5: QCD of execution time vs QCD of packet latency (inter-group ping-pong)",
		"message size (B)", "qcd exec time", "qcd packet latency", "median exec (cycles)", "median latency (cycles)")
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		m := res["Default"]
		latencies := make([]float64, 0, len(m.Deltas))
		for _, d := range m.Deltas {
			latencies = append(latencies, d.AvgPacketLatency())
		}
		table.AddRow(fmt.Sprintf("%d", r.Spec.Meta),
			stats.QCD(m.Times), stats.QCD(latencies),
			stats.Median(m.Times), stats.Median(latencies))
	}
	return []*trace.Table{table}, nil
}

// ModelValidation reproduces the §2.4 validation of the performance model:
// across allocations and message sizes, the Eq. 2 estimate computed from the
// observed counters must correlate strongly with the measured transmission
// time (the paper reports an average correlation of 79%).
func ModelValidation(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	sizes := []int64{128, 4 << 10, 64 << 10, 512 << 10}
	if opts.Quick {
		sizes = sizes[:3]
	}
	allocsPerSize := 6
	if opts.Quick {
		allocsPerSize = 3
	}
	classes := []topo.AllocationClass{
		topo.AllocInterBlades, topo.AllocInterChassis, topo.AllocInterGroups,
	}

	var specs []harness.TrialSpec
	for _, base := range sizes {
		size := opts.scaleSize(base)
		for run := 0; run < allocsPerSize; run++ {
			specs = append(specs, harness.TrialSpec{
				ID:        fmt.Sprintf("model/size%d/run%d", base, run),
				Meta:      size,
				Geometry:  opts.pizDaintGeometry(),
				PairAlloc: true,
				PairClass: classes[run%len(classes)],
				Noise:     opts.noiseSpec(noise.UniformRandom),
				Setups:    singleSetup(DefaultSetup),
				Workload: func(ranks int) workloads.Workload {
					return &workloads.PingPong{MessageBytes: size, Iterations: 1}
				},
				Iterations: opts.iters(),
			})
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}

	table := trace.NewTable(
		"Performance model validation (Eq. 2 estimate vs measured ping-pong time)",
		"message size (B)", "pearson correlation", "samples")
	var all []float64
	next := 0
	for _, base := range sizes {
		size := opts.scaleSize(base)
		var measured, estimated []float64
		for run := 0; run < allocsPerSize; run++ {
			res, err := measurements(results[next])
			if err != nil {
				return nil, err
			}
			next++
			m := res["Default"]
			for i, d := range m.Deltas {
				// The delta covers a full round trip (two messages); halve it
				// to approximate one transmission, matching T_msg.
				params := perfmodel.ParamsFromCounters(halveDelta(d))
				estimated = append(estimated, perfmodel.EstimateForSize(size, params))
				measured = append(measured, m.Times[i]/2)
			}
		}
		r, err := stats.PearsonCorrelation(measured, estimated)
		if err != nil {
			return nil, err
		}
		all = append(all, r)
		table.AddRow(fmt.Sprintf("%d", size), r, len(measured))
	}
	table.AddRow("average", stats.Mean(all), "")
	return []*trace.Table{table}, nil
}

// halveDelta divides a round-trip counter delta by two (both directions of a
// ping-pong contribute to the job-wide counters).
func halveDelta(d counters.NIC) counters.NIC {
	return counters.NIC{
		RequestFlits:              d.RequestFlits / 2,
		RequestFlitsStalledCycles: d.RequestFlitsStalledCycles / 2,
		RequestPackets:            d.RequestPackets / 2,
		RequestPacketsCumLatency:  d.RequestPacketsCumLatency / 2,
		MinimalPackets:            d.MinimalPackets / 2,
		NonMinimalPackets:         d.NonMinimalPackets / 2,
	}
}
