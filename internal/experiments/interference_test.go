package experiments

import (
	"strings"
	"testing"

	"dragonfly/internal/patternaware"
)

func TestSchedulerInterferenceSmoke(t *testing.T) {
	opts := QuickOptions()
	opts.Iterations = 3
	tables, err := SchedulerInterference(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	out := tables[0].String()
	// Three placement policies x three routing setups.
	for _, placement := range []string{"contiguous", "random", "hybrid"} {
		if !strings.Contains(out, placement) {
			t.Fatalf("placement %q missing from table:\n%s", placement, out)
		}
	}
	for _, setup := range []string{"Default", "HighBias", "AppAware"} {
		if !strings.Contains(out, setup) {
			t.Fatalf("setup %q missing from table:\n%s", setup, out)
		}
	}
}

func TestBaselineComparisonSmoke(t *testing.T) {
	opts := QuickOptions()
	opts.Iterations = 3
	tables, err := BaselineComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "PatternAware") || !strings.Contains(out, "AppAware") {
		t.Fatalf("baseline table missing setups:\n%s", out)
	}
}

func TestCollectiveAlgorithmsSmoke(t *testing.T) {
	opts := QuickOptions()
	opts.Iterations = 3
	tables, err := CollectiveAlgorithms(opts)
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	for _, algo := range []string{"alltoall/pairwise", "alltoall/bruck", "allreduce/doubling", "allreduce/ring"} {
		if !strings.Contains(out, algo) {
			t.Fatalf("algorithm %q missing from table:\n%s", algo, out)
		}
	}
}

func TestTelemetryCongestionSmoke(t *testing.T) {
	opts := QuickOptions()
	opts.Iterations = 3
	tables, err := TelemetryCongestion(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 3 {
		t.Fatalf("got %d tables, want summary plus two group matrices", len(tables))
	}
	out := tables[0].String()
	if !strings.Contains(out, "Default") || !strings.Contains(out, "HighBias") {
		t.Fatalf("telemetry summary missing routing setups:\n%s", out)
	}
}

func TestPatternAwareSetupAggregatesStats(t *testing.T) {
	setup := PatternAwareSetup(patternaware.DefaultConfig())
	p1 := setup.Provider(0)
	p2 := setup.Provider(1)
	p1.SelectMode(1024, 0)
	p2.SelectMode(2048, 0)
	st := setup.Stats()
	if st.Messages != 2 || st.Bytes != 3072 {
		t.Fatalf("aggregated stats wrong: %+v", st)
	}
}

func TestNewExperimentsRegistered(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"sched", "baselines", "collalgos", "telemetry", "biassweep"} {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
}

func TestBiasSweepSmoke(t *testing.T) {
	opts := QuickOptions()
	opts.Iterations = 3
	tables, err := BiasSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "pingpong/16KiB inter-group") || !strings.Contains(out, "alltoall/16KiB") {
		t.Fatalf("bias sweep table missing benchmarks:\n%s", out)
	}
	// One row per (benchmark, bias) pair; quick mode sweeps 4 biases x 2 benchmarks.
	if len(tables[0].Rows) != 8 {
		t.Fatalf("bias sweep produced %d rows, want 8", len(tables[0].Rows))
	}
}
