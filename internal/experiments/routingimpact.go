package experiments

import (
	"fmt"

	"dragonfly/internal/harness"
	"dragonfly/internal/mpi"
	"dragonfly/internal/noise"
	"dragonfly/internal/perfmodel"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// Figure7RoutingPingPong reproduces Figure 7: a large ping-pong measured under
// Adaptive and Adaptive-with-High-Bias routing, once with the two nodes in the
// same group (Intra-Group) and once in different groups (Inter-Groups), with
// the two routing modes alternated on successive iterations. Four tables are
// produced, one per sub-figure: (a) execution time, (b) stall ratio s,
// (c) packet latency L, (d) the Eq. 2 time estimate.
//
// The shape to reproduce: intra-group, Adaptive wins (spreading over more
// paths lowers the stalls); inter-group, Adaptive with High Bias wins (lower
// latency, comparable stalls) and shows less variability.
func Figure7RoutingPingPong(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	msgSize := opts.scaleSize(512 << 10) // scaled stand-in for the paper's 4 MiB

	timeTbl := trace.NewTable(
		fmt.Sprintf("Figure 7a: ping-pong %d B execution time (cycles)", msgSize),
		summaryColumns("allocation/routing")...)
	stallTbl := trace.NewTable("Figure 7b: stall ratio s (cycles per flit)",
		summaryColumns("allocation/routing")...)
	latTbl := trace.NewTable("Figure 7c: packet latency L (cycles)",
		summaryColumns("allocation/routing")...)
	estTbl := trace.NewTable("Figure 7d: model time estimate (cycles)",
		summaryColumns("allocation/routing")...)

	cases := []struct {
		label string
		class topo.AllocationClass
	}{
		{"Intra-Group", topo.AllocInterChassis},
		{"Inter-Groups", topo.AllocInterGroups},
	}
	staticModes := func() []RoutingSetup {
		return []RoutingSetup{
			{Name: "Adaptive", Provider: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: routing.Adaptive} }},
			{Name: "HighBias", Provider: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: routing.AdaptiveHighBias} }},
		}
	}
	modeNames := []string{"Adaptive", "HighBias"}

	specs := make([]harness.TrialSpec, len(cases))
	for i, c := range cases {
		specs[i] = harness.TrialSpec{
			ID:        "fig7/" + c.label,
			Meta:      c.label,
			Geometry:  opts.pizDaintGeometry(),
			PairAlloc: true,
			PairClass: c.class,
			Noise:     opts.noiseSpec(noise.UniformRandom),
			Setups:    staticModes,
			Workload: func(ranks int) workloads.Workload {
				return &workloads.PingPong{MessageBytes: msgSize, Iterations: 1}
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		for _, name := range modeNames {
			meas := res[name]
			label := fmt.Sprintf("%s/%s", r.Spec.Meta, name)
			var stallsSeries, latSeries, estSeries []float64
			for _, d := range meas.Deltas {
				half := halveDelta(d)
				params := perfmodel.ParamsFromCounters(half)
				stallsSeries = append(stallsSeries, params.StallRatio)
				latSeries = append(latSeries, params.LatencyCycles)
				estSeries = append(estSeries, perfmodel.EstimateForSize(msgSize, params))
			}
			summaryRow(timeTbl, label, meas.Times)
			summaryRow(stallTbl, label, stallsSeries)
			summaryRow(latTbl, label, latSeries)
			summaryRow(estTbl, label, estSeries)
		}
	}
	return []*trace.Table{timeTbl, stallTbl, latTbl, estTbl}, nil
}

// WinnerSummary is a convenience used by tests and the CLI to extract which
// routing mode had the lower median in a Figure-7 style table.
func WinnerSummary(t *trace.Table, labelA, labelB string) (winner string, ratio float64, err error) {
	var medA, medB float64
	var okA, okB bool
	for _, row := range t.Rows {
		if len(row) < 2 {
			continue
		}
		switch row[0] {
		case labelA:
			if _, err := fmt.Sscanf(row[1], "%f", &medA); err == nil {
				okA = true
			}
		case labelB:
			if _, err := fmt.Sscanf(row[1], "%f", &medB); err == nil {
				okB = true
			}
		}
	}
	if !okA || !okB {
		return "", 0, fmt.Errorf("experiments: labels %q/%q not found in table %q", labelA, labelB, t.Title)
	}
	if medA == 0 || medB == 0 {
		return "", 0, fmt.Errorf("experiments: zero median in table %q", t.Title)
	}
	if medA <= medB {
		return labelA, medB / medA, nil
	}
	return labelB, medA / medB, nil
}

// medianOf extracts the median column of the row with the given label.
func medianOf(t *trace.Table, label string) (float64, bool) {
	for _, row := range t.Rows {
		if len(row) >= 2 && row[0] == label {
			var v float64
			if _, err := fmt.Sscanf(row[1], "%f", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// qcdOf extracts the QCD column (index 6 of summaryColumns) for a label.
func qcdOf(t *trace.Table, label string) (float64, bool) {
	for _, row := range t.Rows {
		if len(row) >= 7 && row[0] == label {
			var v float64
			if _, err := fmt.Sscanf(row[6], "%f", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
