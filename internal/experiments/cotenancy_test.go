package experiments

import (
	"strconv"
	"testing"
)

// TestCoTenancy checks the co-tenancy extension at quick scale: one row per
// (routing, neighbor) combination, "alone" rows normalized to exactly 1, and
// real-application neighbors reporting their own per-job time — the
// bidirectional measurement synthetic noise could not provide.
func TestCoTenancy(t *testing.T) {
	opts := QuickOptions()
	opts.Parallel = 0
	tables, err := CoTenancy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tb := tables[0]
	wantRows := 3 * 3 // three setups x (alone, noise, halo3d) at quick scale
	if len(tb.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(tb.Rows), wantRows)
	}
	for _, row := range tb.Rows {
		routing, neighbor := row[0], row[1]
		norm, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("row %s/%s: bad norm %q", routing, neighbor, row[3])
		}
		switch neighbor {
		case "alone":
			if norm != 1 {
				t.Fatalf("row %s/alone normalized to %v, want 1", routing, norm)
			}
			if row[7] != "-" {
				t.Fatalf("row %s/alone reports a neighbor time %q", routing, row[7])
			}
		case "noise":
			if row[7] != "-" {
				t.Fatalf("row %s/noise reports a neighbor time %q", routing, row[7])
			}
		default: // a real co-scheduled application
			if row[7] == "-" {
				t.Fatalf("row %s/%s has no neighbor time", routing, neighbor)
			}
			if nb, err := strconv.ParseFloat(row[7], 64); err != nil || nb <= 0 {
				t.Fatalf("row %s/%s neighbor time %q is not a positive number", routing, neighbor, row[7])
			}
		}
		if norm <= 0 {
			t.Fatalf("row %s/%s has non-positive normalized time %v", routing, neighbor, norm)
		}
		if pkts, err := strconv.ParseUint(row[5], 10, 64); err != nil || pkts == 0 {
			t.Fatalf("row %s/%s victim packets %q invalid or zero", routing, neighbor, row[5])
		}
	}
}
