package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// openstreamGolden pins the quick-scale openstream table, captured at PR 7.
// The open stream schedules only serial-domain engine events, so the same
// hash must come out of the serial harness, the parallel worker pool, and
// every shard count — that is the determinism contract of the open-arrival
// subsystem, checked here end to end.
const openstreamGolden = "61530aa83745d1789f227d080c12543238d235cb862755a66e483b82bd22a356"

func TestOpenStreamGoldenAcrossShards(t *testing.T) {
	cases := []struct {
		name     string
		parallel int
		shards   int
	}{
		{"serial", 1, 1},
		{"parallel", 0, 1},
		{"shards2", 1, 2},
		{"shards4", 0, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			opts := QuickOptions()
			opts.Parallel = tc.parallel
			opts.Shards = tc.shards
			tables, err := Run("openstream", opts)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256([]byte(renderAll(t, tables)))
			if got := hex.EncodeToString(sum[:]); got != openstreamGolden {
				t.Fatalf("openstream output drifted (%s):\n got %s\nwant %s\n"+
					"Serial, parallel and sharded runs must all reproduce the golden table "+
					"byte-for-byte. If the model change is intentional, update openstreamGolden.",
					tc.name, got, openstreamGolden)
			}
		})
	}
}
