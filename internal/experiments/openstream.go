package experiments

import (
	"context"
	"fmt"

	"dragonfly/internal/arrival"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sched"
	"dragonfly/internal/trace"
)

// openstreamResult is the payload of one open-arrival trial.
type openstreamResult struct {
	St      sched.OpenStats
	Packets uint64
}

// OpenStream is the always-on cluster scenario: instead of draining a fixed
// job mix, each trial runs an open arrival process — three tenant classes
// (latency, batch, best-effort) submitting Poisson/Gamma/Weibull streams with
// a diurnal best-effort tide — against the live machine until a fixed number
// of job events has been admitted and drained. The grid crosses the placement
// policies the paper discusses (§1, §6) with compute-only versus
// traffic-generating jobs, and reports what a capacity planner would ask of
// each: utilization, per-SLO-class slowdown distributions and violation
// rates, the Jain fairness index across tenants, and the fragmentation the
// placement policy leaves behind.
//
// Every metric is folded streaming (stats.Digest), so the same experiment
// scales from the CI-sized quick run to million-event horizons without
// growing memory; and because the open stream schedules only serial-domain
// events, its tables are byte-identical at every shard count.
func OpenStream(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	geometry := opts.pizDaintGeometry()

	events := 6_000
	if opts.Quick {
		events = 900
	}
	// Offered load targets ~3/4 utilization on any geometry: the default
	// three-client mix averages ~7.5M node-cycles of work per job, so scale
	// the per-client mean gap inversely with the machine size.
	meanGap := int64(150_000 * 192 / geometry.Nodes())
	if meanGap < 1_000 {
		meanGap = 1_000
	}

	placements := []sched.AllocationPolicy{
		sched.PlaceContiguous, sched.PlaceRandom, sched.PlaceGroupStriped,
	}
	trafficCases := []string{"compute", "traffic"}

	table := trace.NewTable(
		fmt.Sprintf("Open arrival streams: %d job events, 3 SLO classes, placement x traffic", events),
		"placement", "traffic", "jobs", "util %", "jain", "max queue", "frag (median)",
		"lat p50", "lat q3", "lat viol %", "batch p50", "batch q3", "batch viol %",
		"be p50", "be q3", "packets")

	var specs []harness.TrialSpec
	for _, placement := range placements {
		for _, trafficCase := range trafficCases {
			placement, trafficCase := placement, trafficCase
			specs = append(specs, harness.TrialSpec{
				ID:       fmt.Sprintf("openstream/%s/%s", placement, trafficCase),
				Meta:     [2]string{placement.String(), trafficCase},
				Geometry: geometry,
				Body: func(ctx context.Context, e *harness.Env) (any, error) {
					spec := arrival.Spec{Clients: arrival.DefaultClients(3, meanGap)}.Normalize()
					cfg := sched.OpenConfig{
						Placement:    placement,
						Seed:         e.Seed,
						MaxJobEvents: events,
					}
					if trafficCase == "traffic" {
						cfg.Traffic = sched.TrafficSpec{
							Pattern:        noise.UniformRandom,
							MessageBytes:   2 << 10,
							IntervalCycles: 200_000,
							Mode:           routing.Adaptive,
						}
					}
					o, err := sched.NewOpenStream(e.Fabric, spec, cfg)
					if err != nil {
						return nil, err
					}
					o.Start()
					if err := o.Drive(ctx); err != nil {
						return nil, err
					}
					return openstreamResult{
						St:      o.Stats(),
						Packets: e.Sys.MachineCounters().RequestPackets,
					}, nil
				},
			})
		}
	}

	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		or, ok := r.Value.(openstreamResult)
		if !ok {
			return nil, fmt.Errorf("experiments: openstream trial %q returned %T", r.Spec.ID, r.Value)
		}
		meta := r.Spec.Meta.([2]string)
		st := or.St
		lat := st.Classes[arrival.Latency]
		bat := st.Classes[arrival.Batch]
		be := st.Classes[arrival.BestEffort]
		table.AddRow(meta[0], meta[1], st.Finished,
			st.Utilization*100, st.JainFairness, st.MaxQueueLength, st.Fragmentation.Median,
			lat.Slowdown.Median, lat.Slowdown.Q3, lat.ViolationFrac*100,
			bat.Slowdown.Median, bat.Slowdown.Q3, bat.ViolationFrac*100,
			be.Slowdown.Median, be.Slowdown.Q3,
			or.Packets)
	}
	return []*trace.Table{table}, nil
}
