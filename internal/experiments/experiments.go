// Package experiments contains one runner per table and figure of the paper's
// evaluation, plus the model-validation experiment of §2.4 and ablation
// studies over the design choices of the application-aware selector. Each
// runner declares its simulated runs as harness.TrialSpecs — topology,
// allocation, routing setups, workload, background noise — and the shared
// worker-pool executor (internal/harness) builds a fresh private system per
// trial and fans the trials out across cores. Results are folded into
// trace.Tables in declaration order, so the tables are byte-identical
// regardless of Options.Parallel.
//
// The absolute sizes (node counts, message sizes, iteration counts) default to
// values that run on a laptop in seconds to minutes; the Options struct scales
// them up to paper-like sizes when desired. The claims being reproduced are
// the qualitative shapes (who wins, by what factor, where the crossovers are),
// not Piz Daint's absolute microseconds — see EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"dragonfly"
	"dragonfly/internal/core"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
)

// RoutingSetup names a routing configuration under test; it is the harness
// type re-exported for convenience.
type RoutingSetup = harness.RoutingSetup

// Measurement is the per-setup result of one trial; it is the harness type
// re-exported for convenience.
type Measurement = harness.Measurement

// Options control the scale of every experiment.
type Options struct {
	// Seed seeds all random streams.
	Seed int64
	// Iterations is the number of samples collected per configuration.
	Iterations int
	// Nodes is the measured job size for the Figure 8/9/10 experiments.
	Nodes int
	// SizeScale multiplies every message size (1.0 = the defaults below,
	// which are already scaled down from the paper's sizes).
	SizeScale float64
	// NoiseNodes is the size of the background (interfering) job.
	NoiseNodes int
	// NoiseIntervalCycles is the mean inter-message gap of the background job;
	// smaller means more interference.
	NoiseIntervalCycles int64
	// FullAries builds full-size Aries groups (96 routers per group) instead
	// of the reduced default geometry.
	FullAries bool
	// Quick further shrinks sizes and iteration counts so the whole suite runs
	// in CI/tests within seconds.
	Quick bool
	// Parallel is the number of worker goroutines the trial harness uses:
	// 0 means GOMAXPROCS, 1 runs serially. For a fixed Seed the resulting
	// tables are byte-identical at every setting.
	Parallel int
	// Shards is the per-trial intra-run shard count (dragonfly.WithShards):
	// 0 keeps the serial engine, n > 0 partitions each trial's machine by
	// dragonfly group. Like Parallel, it changes wall-clock time only — for
	// a fixed Seed the tables are byte-identical at every setting, and the
	// harness divides its worker budget by the shard count.
	Shards int
	// Variant selects the UGAL state-partitioning variant for every trial
	// (dragonfly.WithRoutingVariant). The zero value is the exact serial
	// model; ShardableUGAL swaps in the relaxed parallel model, which keeps
	// per-seed determinism but produces a different byte stream — the golden
	// hashes cover the default variant only. Experiments that sweep the
	// variant themselves (fidelity) ignore this field.
	Variant routing.Variant
	// Staleness is the per-trial ShardableUGAL replica-sync decimation factor
	// K (dragonfly.WithReplicaStaleness): 0 and 1 keep the per-lookahead
	// replica refresh, larger K refreshes the congestion replicas every K
	// lookahead windows. Only meaningful with Variant == ShardableUGAL.
	// Experiments that sweep the staleness themselves (fidelity) ignore it.
	Staleness int
	// DecisionTrace is the per-trial decision-recorder depth k
	// (dragonfly.WithDecisionTrace): 0 keeps tracing off, k > 0 records every
	// adaptive routing decision with its top-k candidate costs. Experiments
	// that trace decisions themselves (counterfactual) pin their own k.
	DecisionTrace int
	// Progress, if non-nil, receives one callback per finished trial.
	Progress func(harness.Progress)

	// ctx cancels in-flight trial suites; set it with WithContext.
	ctx context.Context
}

// DefaultOptions returns laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		Seed:                1,
		Iterations:          30,
		Nodes:               48,
		SizeScale:           1.0,
		NoiseNodes:          24,
		NoiseIntervalCycles: 12_000,
	}
}

// QuickOptions returns the reduced settings used by unit tests and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Iterations = 6
	o.Nodes = 16
	o.NoiseNodes = 8
	o.Quick = true
	return o
}

// WithContext returns a copy of the options whose experiment runs abort when
// ctx is cancelled (used by cmd/experiments -timeout).
func (o Options) WithContext(ctx context.Context) Options {
	o.ctx = ctx
	return o
}

// context returns the cancellation context of the run.
func (o Options) context() context.Context {
	if o.ctx != nil {
		return o.ctx
	}
	return context.Background()
}

// normalize fills in zero fields with defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Iterations <= 0 {
		o.Iterations = d.Iterations
	}
	if o.Nodes <= 0 {
		o.Nodes = d.Nodes
	}
	if o.SizeScale <= 0 {
		o.SizeScale = d.SizeScale
	}
	if o.NoiseNodes <= 0 {
		o.NoiseNodes = d.NoiseNodes
	}
	if o.NoiseIntervalCycles <= 0 {
		o.NoiseIntervalCycles = d.NoiseIntervalCycles
	}
	return o
}

// iters returns the effective iteration count.
func (o Options) iters() int {
	if o.Quick && o.Iterations > 6 {
		return 6
	}
	return o.Iterations
}

// scaleSize applies the global size scale (and the Quick reduction).
func (o Options) scaleSize(bytes int64) int64 {
	v := int64(float64(bytes) * o.SizeScale)
	if o.Quick {
		v /= 4
	}
	if v < 8 {
		v = 8
	}
	return v
}

// pizDaintGeometry returns the topology used by the Piz Daint style
// experiments (6 groups, like the allocation of Figure 8).
func (o Options) pizDaintGeometry() topo.Config {
	if o.FullAries {
		return topo.PizDaintLikeConfig()
	}
	return topo.Config{
		Groups:                6,
		ChassisPerGroup:       2,
		BladesPerChassis:      8,
		NodesPerBlade:         2,
		GlobalLinksPerRouter:  4,
		IntraGroupLinkWidth:   3,
		IntraChassisLinkWidth: 1,
		GlobalLinkWidth:       2,
	}
}

// coriGeometry returns the topology used by the Cori style experiment of
// Figure 9 (5 groups).
func (o Options) coriGeometry() topo.Config {
	if o.FullAries {
		return topo.CoriLikeConfig()
	}
	cfg := o.pizDaintGeometry()
	cfg.Groups = 5
	return cfg
}

// noiseSpec maps the option scale onto a concrete background-job declaration.
func (o Options) noiseSpec(pattern noise.Pattern) *harness.NoiseSpec {
	n := o.NoiseNodes
	if o.Quick && n > 8 {
		n = 8
	}
	return &harness.NoiseSpec{
		Pattern:        pattern,
		Nodes:          n,
		IntervalCycles: o.NoiseIntervalCycles,
		MessageBytes:   o.scaleSize(noise.DefaultGeneratorConfig().MessageBytes),
	}
}

// runTrials executes trial specs through the worker-pool harness configured
// by the options (seed, parallelism, progress callback, cancellation).
func (o Options) runTrials(specs []harness.TrialSpec) ([]harness.Result, error) {
	if o.Shards > 0 {
		for i := range specs {
			if specs[i].Shards == 0 {
				specs[i].Shards = o.Shards
			}
		}
	}
	if o.Variant != routing.ExactUGAL {
		for i := range specs {
			if specs[i].Variant == routing.ExactUGAL {
				specs[i].Variant = o.Variant
			}
		}
	}
	if o.Staleness > 1 {
		for i := range specs {
			if specs[i].Staleness == 0 {
				specs[i].Staleness = o.Staleness
			}
		}
	}
	if o.DecisionTrace > 0 {
		for i := range specs {
			if specs[i].DecisionTraceK == 0 {
				specs[i].DecisionTraceK = o.DecisionTrace
			}
		}
	}
	ex := &harness.Executor{Parallel: o.Parallel, Seed: o.Seed, OnProgress: o.Progress}
	return ex.Run(o.context(), specs)
}

// measurements extracts the default-body result of a trial.
func measurements(r harness.Result) (map[string]*Measurement, error) {
	m, ok := r.Value.(harness.Measurements)
	if !ok {
		return nil, fmt.Errorf("experiments: trial %q returned %T, want measurements", r.Spec.ID, r.Value)
	}
	return m, nil
}

// namesOf returns the setup names of a factory's output, in order, so table
// folds iterate the same setups the specs measured without restating names.
func namesOf(setups []RoutingSetup) []string {
	names := make([]string, len(setups))
	for i, s := range setups {
		names[i] = s.Name
	}
	return names
}

// singleSetup adapts one routing setup constructor to the harness setup
// factory signature.
func singleSetup(build func() RoutingSetup) func() []RoutingSetup {
	return func() []RoutingSetup { return []RoutingSetup{build()} }
}

// DefaultSetup is the paper's "Default" configuration: ADAPTIVE_0 for
// everything, ADAPTIVE_1 for alltoall.
func DefaultSetup() RoutingSetup { return dragonfly.DefaultRouting() }

// HighBiasSetup is the static Adaptive-with-High-Bias configuration, under
// the short name the paper's result tables use.
func HighBiasSetup() RoutingSetup {
	s := dragonfly.StaticRouting(routing.AdaptiveHighBias)
	s.Name = "HighBias"
	return s
}

// AppAwareSetup is the paper's application-aware routing library, one selector
// per rank.
func AppAwareSetup(cfg core.Config) RoutingSetup { return dragonfly.AppAwareWith(cfg) }

// StandardSetups returns the three configurations compared in Figures 8-10.
// It has the harness setup-factory signature, so specs can use it directly.
func StandardSetups() []RoutingSetup {
	return []RoutingSetup{DefaultSetup(), HighBiasSetup(), AppAwareSetup(core.DefaultConfig())}
}

// Runner is an experiment entry point.
type Runner func(Options) ([]*trace.Table, error)

// Registry maps experiment ids (as used by cmd/experiments -exp) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3":           Figure3Allocations,
		"tab1":           Table1IdleFlits,
		"fig4":           Figure4OnNodeAlltoall,
		"fig5":           Figure5QCD,
		"fig7":           Figure7RoutingPingPong,
		"model":          ModelValidation,
		"fig8":           Figure8Microbenchmarks,
		"fig9":           Figure9MicrobenchmarksCori,
		"fig10":          Figure10Applications,
		"ablations":      Ablations,
		"noisesweep":     NoiseSweep,
		"hysteresis":     HysteresisStudy,
		"sched":          SchedulerInterference,
		"cotenant":       CoTenancy,
		"baselines":      BaselineComparison,
		"collalgos":      CollectiveAlgorithms,
		"telemetry":      TelemetryCongestion,
		"biassweep":      BiasSweep,
		"fullmachine":    FullMachine,
		"openstream":     OpenStream,
		"fidelity":       ShardableFidelity,
		"counterfactual": CounterfactualRouting,
	}
}

// Names returns the sorted experiment ids.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) ([]*trace.Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Names())
	}
	return r(opts)
}

// summaryRow appends the usual distribution columns for a label and sample set.
func summaryRow(t *trace.Table, label string, xs []float64, extra ...any) {
	s := stats.Summarize(xs)
	cells := append([]any{label, s.Median, s.Mean, s.Q1, s.Q3, s.IQR, s.QCD, s.Outliers}, extra...)
	t.AddRow(cells...)
}

// summaryColumns returns the matching column headers for summaryRow.
func summaryColumns(first string, extra ...string) []string {
	cols := []string{first, "median", "mean", "q1", "q3", "iqr", "qcd", "outliers"}
	return append(cols, extra...)
}
