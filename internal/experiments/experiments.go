// Package experiments contains one runner per table and figure of the paper's
// evaluation, plus the model-validation experiment of §2.4 and ablation
// studies over the design choices of the application-aware selector. Each
// runner builds a fresh simulated system, generates the workload and the
// background interference, and returns trace.Tables holding the same rows or
// series the paper reports.
//
// The absolute sizes (node counts, message sizes, iteration counts) default to
// values that run on a laptop in seconds to minutes; the Options struct scales
// them up to paper-like sizes when desired. The claims being reproduced are
// the qualitative shapes (who wins, by what factor, where the crossovers are),
// not Piz Daint's absolute microseconds — see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// Options control the scale of every experiment.
type Options struct {
	// Seed seeds all random streams.
	Seed int64
	// Iterations is the number of samples collected per configuration.
	Iterations int
	// Nodes is the measured job size for the Figure 8/9/10 experiments.
	Nodes int
	// SizeScale multiplies every message size (1.0 = the defaults below,
	// which are already scaled down from the paper's sizes).
	SizeScale float64
	// NoiseNodes is the size of the background (interfering) job.
	NoiseNodes int
	// NoiseIntervalCycles is the mean inter-message gap of the background job;
	// smaller means more interference.
	NoiseIntervalCycles int64
	// FullAries builds full-size Aries groups (96 routers per group) instead
	// of the reduced default geometry.
	FullAries bool
	// Quick further shrinks sizes and iteration counts so the whole suite runs
	// in CI/tests within seconds.
	Quick bool
}

// DefaultOptions returns laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		Seed:                1,
		Iterations:          30,
		Nodes:               48,
		SizeScale:           1.0,
		NoiseNodes:          24,
		NoiseIntervalCycles: 12_000,
	}
}

// QuickOptions returns the reduced settings used by unit tests and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Iterations = 6
	o.Nodes = 16
	o.NoiseNodes = 8
	o.Quick = true
	return o
}

// normalize fills in zero fields with defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Iterations <= 0 {
		o.Iterations = d.Iterations
	}
	if o.Nodes <= 0 {
		o.Nodes = d.Nodes
	}
	if o.SizeScale <= 0 {
		o.SizeScale = d.SizeScale
	}
	if o.NoiseNodes <= 0 {
		o.NoiseNodes = d.NoiseNodes
	}
	if o.NoiseIntervalCycles <= 0 {
		o.NoiseIntervalCycles = d.NoiseIntervalCycles
	}
	return o
}

// iters returns the effective iteration count.
func (o Options) iters() int {
	if o.Quick && o.Iterations > 6 {
		return 6
	}
	return o.Iterations
}

// scaleSize applies the global size scale (and the Quick reduction).
func (o Options) scaleSize(bytes int64) int64 {
	v := int64(float64(bytes) * o.SizeScale)
	if o.Quick {
		v /= 4
	}
	if v < 8 {
		v = 8
	}
	return v
}

// pizDaintGeometry returns the topology used by the Piz Daint style
// experiments (6 groups, like the allocation of Figure 8).
func (o Options) pizDaintGeometry() topo.Config {
	if o.FullAries {
		return topo.PizDaintLikeConfig()
	}
	return topo.Config{
		Groups:                6,
		ChassisPerGroup:       2,
		BladesPerChassis:      8,
		NodesPerBlade:         2,
		GlobalLinksPerRouter:  4,
		IntraGroupLinkWidth:   3,
		IntraChassisLinkWidth: 1,
		GlobalLinkWidth:       2,
	}
}

// coriGeometry returns the topology used by the Cori style experiment of
// Figure 9 (5 groups).
func (o Options) coriGeometry() topo.Config {
	if o.FullAries {
		return topo.CoriLikeConfig()
	}
	cfg := o.pizDaintGeometry()
	cfg.Groups = 5
	return cfg
}

// env bundles the simulated system of one experiment.
type env struct {
	opts   Options
	topo   *topo.Topology
	engine *sim.Engine
	fabric *network.Fabric
	rng    *rand.Rand
}

// newEnv builds a fresh system with the given geometry.
func newEnv(opts Options, geometry topo.Config, seedOffset int64) (*env, error) {
	t, err := topo.New(geometry)
	if err != nil {
		return nil, err
	}
	pol, err := routing.NewPolicy(t, routing.DefaultParams())
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(opts.Seed + seedOffset)
	fab, err := network.New(engine, t, pol, network.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &env{
		opts:   opts,
		topo:   t,
		engine: engine,
		fabric: fab,
		rng:    rand.New(rand.NewSource(opts.Seed + seedOffset)),
	}, nil
}

// startBackgroundNoise places a background job on nodes disjoint from used and
// starts it. It returns nil when there is not enough room for a background job
// (small test topologies).
func (e *env) startBackgroundNoise(used map[topo.NodeID]bool, pattern noise.Pattern, until sim.Time) *noise.Generator {
	n := e.opts.NoiseNodes
	if e.opts.Quick && n > 8 {
		n = 8
	}
	free := e.topo.NumNodes() - len(used)
	if n > free {
		n = free
	}
	if n < 2 {
		return nil
	}
	a, err := alloc.Allocate(e.topo, alloc.RandomScatter, n, e.rng, used)
	if err != nil {
		return nil
	}
	cfg := noise.DefaultGeneratorConfig()
	cfg.Pattern = pattern
	cfg.IntervalCycles = e.opts.NoiseIntervalCycles
	cfg.MessageBytes = e.opts.scaleSize(cfg.MessageBytes)
	cfg.Seed = e.opts.Seed*7919 + int64(pattern)
	g, err := noise.FromAllocation(e.fabric, a, cfg)
	if err != nil {
		return nil
	}
	g.Start(until)
	return g
}

// noiseHorizon is the deadline handed to background generators; experiments
// complete far before it.
const noiseHorizon sim.Time = 1 << 50

// RoutingSetup names a routing configuration under test.
type RoutingSetup struct {
	// Name is the label used in result tables ("Default", "HighBias",
	// "AppAware").
	Name string
	// Provider builds the per-rank routing provider. Called once per rank per
	// allocation so that stateful selectors are rank-private.
	Provider func(rank int) mpi.RoutingProvider
	// Stats, if non-nil, returns the aggregated selector statistics after the
	// measurement (only meaningful for the application-aware setup).
	Stats func() core.Stats
}

// DefaultSetup is the paper's "Default" configuration: ADAPTIVE_0 for
// everything, ADAPTIVE_1 for alltoall.
func DefaultSetup() RoutingSetup {
	return RoutingSetup{
		Name:     "Default",
		Provider: func(int) mpi.RoutingProvider { return mpi.DefaultRouting() },
	}
}

// HighBiasSetup is the static Adaptive-with-High-Bias configuration.
func HighBiasSetup() RoutingSetup {
	return RoutingSetup{
		Name:     "HighBias",
		Provider: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: routing.AdaptiveHighBias} },
	}
}

// AppAwareSetup is the paper's application-aware routing library, one selector
// per rank.
func AppAwareSetup(cfg core.Config) RoutingSetup {
	var selectors []*core.Selector
	return RoutingSetup{
		Name: "AppAware",
		Provider: func(int) mpi.RoutingProvider {
			s := core.MustNew(cfg)
			selectors = append(selectors, s)
			return mpi.AppAwareRouting{Selector: s}
		},
		Stats: func() core.Stats {
			var agg core.Stats
			for _, s := range selectors {
				st := s.Stats()
				agg.Messages += st.Messages
				agg.Bytes += st.Bytes
				agg.DefaultMessages += st.DefaultMessages
				agg.DefaultBytes += st.DefaultBytes
				agg.BiasMessages += st.BiasMessages
				agg.BiasBytes += st.BiasBytes
				agg.Evaluations += st.Evaluations
				agg.CounterReads += st.CounterReads
				agg.Switches += st.Switches
			}
			return agg
		},
	}
}

// StandardSetups returns the three configurations compared in Figures 8-10.
func StandardSetups() []RoutingSetup {
	return []RoutingSetup{DefaultSetup(), HighBiasSetup(), AppAwareSetup(core.DefaultConfig())}
}

// Measurement is the result of measuring one routing setup on one workload.
type Measurement struct {
	// Times holds one execution time (cycles) per iteration.
	Times []float64
	// Deltas holds the per-iteration NIC counter deltas summed over the job.
	Deltas []counters.NIC
	// SelectorStats aggregates selector statistics (zero for static setups).
	SelectorStats core.Stats
}

// jobCounters sums the NIC counters of all nodes of an allocation.
func jobCounters(f *network.Fabric, a *alloc.Allocation) counters.NIC {
	var total counters.NIC
	for _, n := range a.Nodes() {
		total.Add(f.NodeCounters(n))
	}
	return total
}

// measureSetups runs the workload under every routing setup, alternating the
// setups on successive iterations (as the paper does, so that transient noise
// does not penalize a single configuration), and returns one Measurement per
// setup keyed by name.
func (e *env) measureSetups(a *alloc.Allocation, setups []RoutingSetup,
	hostNoise func(int) int64, w workloads.Workload, iterations int) (map[string]*Measurement, error) {

	comms := make([]*mpi.Comm, len(setups))
	for i, s := range setups {
		c, err := mpi.NewComm(e.fabric, a, mpi.Config{Routing: s.Provider, HostNoise: hostNoise})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	out := make(map[string]*Measurement, len(setups))
	for _, s := range setups {
		out[s.Name] = &Measurement{}
	}
	for iter := 0; iter < iterations; iter++ {
		for i, s := range setups {
			before := jobCounters(e.fabric, a)
			start := e.engine.Now()
			if err := comms[i].Run(w.Run); err != nil {
				return nil, fmt.Errorf("experiment iteration %d, setup %s: %w", iter, s.Name, err)
			}
			for r := 0; r < comms[i].Size(); r++ {
				if err := comms[i].Rank(r).Err(); err != nil {
					return nil, fmt.Errorf("setup %s rank %d: %w", s.Name, r, err)
				}
			}
			elapsed := float64(e.engine.Now() - start)
			m := out[s.Name]
			m.Times = append(m.Times, elapsed)
			m.Deltas = append(m.Deltas, jobCounters(e.fabric, a).Sub(before))
		}
	}
	for _, s := range setups {
		if s.Stats != nil {
			out[s.Name].SelectorStats = s.Stats()
		}
	}
	return out, nil
}

// measureSingle is a convenience wrapper measuring a single routing setup.
func (e *env) measureSingle(a *alloc.Allocation, setup RoutingSetup,
	hostNoise func(int) int64, w workloads.Workload, iterations int) (*Measurement, error) {
	res, err := e.measureSetups(a, []RoutingSetup{setup}, hostNoise, w, iterations)
	if err != nil {
		return nil, err
	}
	return res[setup.Name], nil
}

// Runner is an experiment entry point.
type Runner func(Options) ([]*trace.Table, error)

// Registry maps experiment ids (as used by cmd/experiments -exp) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3":       Figure3Allocations,
		"tab1":       Table1IdleFlits,
		"fig4":       Figure4OnNodeAlltoall,
		"fig5":       Figure5QCD,
		"fig7":       Figure7RoutingPingPong,
		"model":      ModelValidation,
		"fig8":       Figure8Microbenchmarks,
		"fig9":       Figure9MicrobenchmarksCori,
		"fig10":      Figure10Applications,
		"ablations":  Ablations,
		"noisesweep": NoiseSweep,
		"hysteresis": HysteresisStudy,
		"sched":      SchedulerInterference,
		"baselines":  BaselineComparison,
		"collalgos":  CollectiveAlgorithms,
		"telemetry":  TelemetryCongestion,
		"biassweep":  BiasSweep,
	}
}

// Names returns the sorted experiment ids.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, opts Options) ([]*trace.Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Names())
	}
	return r(opts)
}

// summaryRow appends the usual distribution columns for a label and sample set.
func summaryRow(t *trace.Table, label string, xs []float64, extra ...any) {
	s := stats.Summarize(xs)
	cells := append([]any{label, s.Median, s.Mean, s.Q1, s.Q3, s.IQR, s.QCD, s.Outliers}, extra...)
	t.AddRow(cells...)
}

// summaryColumns returns the matching column headers for summaryRow.
func summaryColumns(first string, extra ...string) []string {
	cols := []string{first, "median", "mean", "q1", "q3", "iqr", "qcd", "outliers"}
	return append(cols, extra...)
}
