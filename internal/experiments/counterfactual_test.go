package experiments

import (
	"testing"

	"dragonfly/internal/routing"
)

// TestCounterfactualInvariantUnderEngineOverrides is the acceptance criterion
// of the decision-trace data path: the counterfactual tables must be
// byte-identical across intra-run shard counts and under the global
// -routing-variant / -staleness overrides (which the experiment pins away),
// because the decision rings are per-group and group order is canonical.
func TestCounterfactualInvariantUnderEngineOverrides(t *testing.T) {
	render := func(t *testing.T, mutate func(*Options)) string {
		t.Helper()
		opts := QuickOptions()
		opts.Parallel = 1
		mutate(&opts)
		tables, err := Run("counterfactual", opts)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, tables)
	}
	base := render(t, func(*Options) {})
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"shards=2", func(o *Options) { o.Shards = 2 }},
		{"shards=4+variant+staleness", func(o *Options) {
			o.Shards = 4
			o.Variant = routing.ShardableUGAL
			o.Staleness = 4
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if got := render(t, c.mutate); got != base {
				t.Fatalf("counterfactual output changed under %s:\n--- base ---\n%s\n--- got ---\n%s",
					c.name, base, got)
			}
		})
	}
}
