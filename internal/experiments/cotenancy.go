package experiments

import (
	"context"
	"fmt"

	"dragonfly"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// cotenantResult is the payload of one co-tenancy trial: the victim's per-run
// measurement plus, when the neighbor was a real application, the neighbor's
// own per-job result.
type cotenantResult struct {
	Victim   dragonfly.Result
	Neighbor *dragonfly.Result
}

// cotenantNeighbors are the neighbor scenarios each routing configuration is
// measured against: the victim alone, next to the synthetic-noise stand-in
// the suite historically used, and next to two real co-scheduled
// applications driving actual workload traffic.
var cotenantNeighbors = []string{"alone", "noise", "halo3d", "allreduce"}

// CoTenancy is an extension experiment that retires the synthetic-noise
// approximation: an alltoall victim is measured under each routing
// configuration while sharing the machine with (a) nothing, (b) the
// fixed-rate background generator that previously stood in for neighbor
// jobs, and (c) real co-running applications (halo3d, allreduce) executed
// concurrently through System.RunConcurrent. Real neighbors exercise the
// fabric in correlated phases — bursts, barriers, quiet compute windows —
// that a constant-rate generator cannot produce, so the victim's slowdown
// and the routing configurations' ranking can both differ from the synthetic
// prediction. The per-job isolation of RunConcurrent also yields the
// *neighbor's* time, making the interference bidirectional for the first
// time.
func CoTenancy(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	size := opts.scaleSize(8 << 10)
	table := trace.NewTable(
		fmt.Sprintf("Extension: alltoall %d B victim next to synthetic vs. real neighbor jobs", size),
		"routing", "neighbor", "victim median (cycles)", "vs alone", "victim qcd",
		"victim packets", "victim minimal %", "neighbor median (cycles)")

	// Setups are built *inside* each trial body (one value per trial):
	// stateful configurations like AppAware carry per-run selector state and
	// must not be shared across parallel harness workers.
	setupNames := namesOf(StandardSetups())
	neighbors := cotenantNeighbors
	if opts.Quick {
		neighbors = []string{"alone", "noise", "halo3d"}
	}
	var specs []harness.TrialSpec
	for si, setupName := range setupNames {
		for _, neighbor := range neighbors {
			si, setupName, neighbor := si, setupName, neighbor
			specs = append(specs, harness.TrialSpec{
				ID:       fmt.Sprintf("cotenant/%s/%s", setupName, neighbor),
				Meta:     [2]string{setupName, neighbor},
				Geometry: opts.pizDaintGeometry(),
				Body: func(ctx context.Context, e *harness.Env) (any, error) {
					setup := StandardSetups()[si]
					n := opts.Nodes / 2
					if n < 8 {
						n = 8
					}
					// Leave room for an equally sized real neighbor plus some
					// free nodes for the synthetic generator scenario.
					if limit := e.Topo.NumNodes() / 3; n > limit {
						n = limit
					}
					victim, err := e.Sys.Allocate(dragonfly.GroupStriped, n)
					if err != nil {
						return nil, err
					}
					victimRun := dragonfly.JobRun{
						Job:      victim,
						Workload: &workloads.Alltoall{MessageBytes: size, Iterations: 1},
						Options: dragonfly.RunOptions{
							Routing:    setup,
							Iterations: opts.iters(),
							Context:    ctx,
						},
					}
					runs := []dragonfly.JobRun{victimRun}
					switch neighbor {
					case "alone":
					case "noise":
						if e.Sys.StartNoise(*opts.noiseSpec(noise.UniformRandom)) == nil {
							return nil, fmt.Errorf("no room for the background generator")
						}
					default:
						nb, err := e.Sys.Allocate(dragonfly.GroupStriped, n)
						if err != nil {
							return nil, err
						}
						w, err := dragonfly.NewWorkload(neighbor, nb.Size(), workloads.SizeFor(neighbor, size))
						if err != nil {
							return nil, err
						}
						runs = append(runs, dragonfly.JobRun{
							Job:      nb,
							Workload: w,
							Options: dragonfly.RunOptions{
								Routing:    DefaultSetup(),
								Iterations: opts.iters(),
								Context:    ctx,
							},
						})
					}
					rs, err := e.Sys.RunConcurrent(runs)
					if err != nil {
						return nil, err
					}
					out := cotenantResult{Victim: rs[0]}
					if len(rs) > 1 {
						out.Neighbor = &rs[1]
					}
					return out, nil
				},
			})
		}
	}

	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	aloneMedian := make(map[string]float64)
	for _, r := range results {
		tr, ok := r.Value.(cotenantResult)
		if !ok {
			return nil, fmt.Errorf("experiments: cotenant trial %q returned %T", r.Spec.ID, r.Value)
		}
		meta := r.Spec.Meta.([2]string)
		times := tr.Victim.TimesFloat()
		med := stats.Median(times)
		if meta[1] == "alone" {
			aloneMedian[meta[0]] = med
		}
		norm := 0.0
		if base := aloneMedian[meta[0]]; base > 0 {
			norm = med / base
		}
		minPct := 0.0
		if p := tr.Victim.Counters.RequestPackets; p > 0 {
			minPct = 100 * float64(tr.Victim.Counters.MinimalPackets) / float64(p)
		}
		neighborMed := "-"
		if tr.Neighbor != nil {
			neighborMed = fmt.Sprintf("%.0f", stats.Median(tr.Neighbor.TimesFloat()))
		}
		table.AddRow(meta[0], meta[1], med, norm, stats.QCD(times),
			tr.Victim.Counters.RequestPackets, minPct, neighborMed)
	}
	return []*trace.Table{table}, nil
}
