package experiments

import (
	"context"
	"fmt"

	"dragonfly"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// fullmachineResult is the payload of one machine-scale trial: the streaming
// measurement plus the machine shape it ran on.
type fullmachineResult struct {
	Res     dragonfly.Result
	Nodes   int
	Routers int
	Links   int
	AdjKiB  float64
}

// FullMachine is the machine-scale scenario family enabled by the compact
// topology/link-state arenas: it climbs the geometry ladder (Small → Medium →
// Large, plus Daint under -full-aries) and, on every rung, measures a
// group-striped job under each routing configuration, for each workload, with
// and without background interference. All runs use the streaming-stats path
// (RunOptions.StreamStats), so per-trial memory is independent of the
// iteration count — the same property that lets a Daint-class rung sweep
// millions of iterations without growing result slices.
//
// The point of the family is not one figure of the paper but the claim behind
// all of them: the routing effects measured on toy geometries persist (or
// don't) at real-machine scale, where minimal paths are longer, global links
// are scarcer per node pair, and the same job occupies a far smaller fraction
// of the machine.
func FullMachine(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	size := opts.scaleSize(8 << 10)

	rungs := dragonfly.GeometryLadder()
	if opts.Quick {
		rungs = rungs[:2] // small, medium: CI-speed
	} else if !opts.FullAries {
		rungs = rungs[:3] // stop below Daint unless explicitly asked
	}
	workloadNames := []string{"alltoall", "halo3d"}
	if opts.Quick {
		workloadNames = workloadNames[:1]
	}
	noiseCases := []string{"idle", "noise"}
	setupNames := namesOf(StandardSetups())

	iters := opts.iters()
	if iters > 4 {
		iters = 4 // ladder sweeps multiply fast; per-rung precision is not the point
	}

	table := trace.NewTable(
		fmt.Sprintf("Machine-scale ladder: %d B messages, geometry x routing x workload x noise", size),
		"geometry", "nodes", "routers", "adj KiB", "routing", "workload", "noise",
		"median (cycles)", "mean", "q1", "q3", "job packets", "non-minimal %")

	var specs []harness.TrialSpec
	for _, rung := range rungs {
		for si, setupName := range setupNames {
			for _, wname := range workloadNames {
				for _, noiseCase := range noiseCases {
					rung, si, wname, noiseCase := rung, si, wname, noiseCase
					specs = append(specs, harness.TrialSpec{
						ID:       fmt.Sprintf("fullmachine/%s/%s/%s/%s", rung.Name, setupName, wname, noiseCase),
						Meta:     [4]string{rung.Name, setupName, wname, noiseCase},
						Geometry: rung.Geometry,
						Body: func(ctx context.Context, e *harness.Env) (any, error) {
							n := opts.Nodes
							if limit := e.Topo.NumNodes() / 3; n > limit {
								n = limit
							}
							if n < 4 {
								n = 4
							}
							job, err := e.Sys.Allocate(dragonfly.GroupStriped, n)
							if err != nil {
								return nil, err
							}
							if noiseCase == "noise" {
								if e.Sys.StartNoise(*opts.noiseSpec(noise.UniformRandom)) == nil {
									return nil, fmt.Errorf("no room for the background generator")
								}
							}
							w, err := dragonfly.NewWorkload(wname, job.Size(), workloads.SizeFor(wname, size))
							if err != nil {
								return nil, err
							}
							res, err := job.Run(w, dragonfly.RunOptions{
								Routing:     StandardSetups()[si],
								Iterations:  iters,
								Context:     ctx,
								StreamStats: true,
							})
							if err != nil {
								return nil, err
							}
							return fullmachineResult{
								Res:     res,
								Nodes:   e.Topo.NumNodes(),
								Routers: e.Topo.NumRouters(),
								Links:   e.Topo.NumLinks(),
								AdjKiB:  float64(e.Topo.AdjacencyBytes()) / 1024,
							}, nil
						},
					})
				}
			}
		}
	}

	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		fr, ok := r.Value.(fullmachineResult)
		if !ok {
			return nil, fmt.Errorf("experiments: fullmachine trial %q returned %T", r.Spec.ID, r.Value)
		}
		meta := r.Spec.Meta.([4]string)
		s := fr.Res.TimeSummary()
		table.AddRow(meta[0], fr.Nodes, fr.Routers, fr.AdjKiB, meta[1], meta[2], meta[3],
			s.Median, s.Mean, s.Q1, s.Q3,
			fr.Res.Counters.RequestPackets, fr.Res.Counters.NonMinimalFraction()*100)
	}
	return []*trace.Table{table}, nil
}
