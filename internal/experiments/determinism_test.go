package experiments

import (
	"strings"
	"testing"

	"dragonfly/internal/trace"
)

// renderAll renders every table of an experiment to one string.
func renderAll(t *testing.T, tables []*trace.Table) string {
	t.Helper()
	var b strings.Builder
	for _, tbl := range tables {
		if err := tbl.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestParallelOutputMatchesSerial is the harness acceptance criterion: for a
// fixed seed, every experiment's tables must be byte-identical whether the
// trials run on one worker or on eight.
func TestParallelOutputMatchesSerial(t *testing.T) {
	ids := []string{"fig3", "fig4", "fig7", "noisesweep", "biassweep", "cotenant", "fullmachine", "counterfactual"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serialOpts := QuickOptions()
			serialOpts.Parallel = 1
			serial, err := Run(id, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parallelOpts := QuickOptions()
			parallelOpts.Parallel = 8
			parallel, err := Run(id, parallelOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(parallel) {
				t.Fatalf("table count differs: serial %d, parallel %d", len(serial), len(parallel))
			}
			s, p := renderAll(t, serial), renderAll(t, parallel)
			if s != p {
				t.Fatalf("parallel output differs from serial output for %s:\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
			}
		})
	}
}
