package experiments

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/harness"
	"dragonfly/internal/mpi"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// BiasSweep is an extension experiment over the one lever the whole paper
// turns: the additive bias the UGAL cost model applies to non-minimal
// candidate paths. Cray does not publish the bias values behind ADAPTIVE_2/3;
// this sweep varies the bias continuously and measures a latency-bound
// inter-group ping-pong and a bandwidth-bound alltoall under background
// traffic, reporting the execution time and the fraction of packets routed
// minimally. It shows where the "low bias" and "high bias" regimes the paper
// relies on sit on the curve, and that the two workloads prefer opposite ends
// of it — the reason a single static bias cannot be optimal.
func BiasSweep(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	biases := []int64{0, 100, 200, 400, 800, 1600, 3200}
	if opts.Quick {
		biases = []int64{0, 200, 800, 3200}
	}

	cases := []struct {
		label string
		build func(ranks int) workloads.Workload
	}{
		{"pingpong/16KiB inter-group", func(ranks int) workloads.Workload {
			return &workloads.PingPong{MessageBytes: opts.scaleSize(16 << 10), Iterations: 4}
		}},
		{"alltoall/16KiB", func(ranks int) workloads.Workload {
			return &workloads.Alltoall{MessageBytes: opts.scaleSize(16 << 10), Iterations: 1}
		}},
	}

	// The swept routing mode, measured alone on each system.
	biased := singleSetup(func() RoutingSetup {
		return RoutingSetup{
			Name: "HighBias",
			Provider: func(int) mpi.RoutingProvider {
				return mpi.StaticRouting{Mode: routing.AdaptiveHighBias}
			},
		}
	})

	var specs []harness.TrialSpec
	for _, c := range cases {
		for _, bias := range biases {
			p := routing.DefaultParams()
			p.HighBiasCycles = bias
			if bias < p.LowBiasCycles {
				p.LowBiasCycles = bias
			}
			params := p
			specs = append(specs, harness.TrialSpec{
				ID:            fmt.Sprintf("biassweep/%s/bias%d", c.label, bias),
				Meta:          bias,
				Geometry:      opts.pizDaintGeometry(),
				RoutingParams: &params,
				Placement:     alloc.GroupStriped,
				JobNodes:      opts.Nodes,
				Noise:         opts.noiseSpec(noise.UniformRandom),
				Setups:        biased,
				Workload:      c.build,
				Iterations:    opts.iters(),
			})
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}

	table := trace.NewTable(
		fmt.Sprintf("Non-minimal bias sweep, %d nodes (ADAPTIVE-style UGAL with variable bias)", opts.Nodes),
		"benchmark", "bias (cycles)", "median (cycles)", "norm vs bias=0", "qcd", "minimal packets %")

	next := 0
	for _, c := range cases {
		var zeroBiasMedian float64
		for bi := range biases {
			r := results[next]
			next++
			res, err := measurements(r)
			if err != nil {
				return nil, err
			}
			m := res["HighBias"]
			med := stats.Median(m.Times)
			if bi == 0 {
				zeroBiasMedian = med
			}
			norm := 0.0
			if zeroBiasMedian > 0 {
				norm = med / zeroBiasMedian
			}
			var delta = m.Deltas[0]
			for _, d := range m.Deltas[1:] {
				delta.Add(d)
			}
			minPct := 0.0
			if delta.RequestPackets > 0 {
				minPct = 100 * float64(delta.MinimalPackets) / float64(delta.RequestPackets)
			}
			table.AddRow(c.label, r.Spec.Meta, med, norm, stats.QCD(m.Times), minPct)
		}
	}
	return []*trace.Table{table}, nil
}
