package experiments

import (
	"fmt"
	"math/rand"

	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// BiasSweep is an extension experiment over the one lever the whole paper
// turns: the additive bias the UGAL cost model applies to non-minimal
// candidate paths. Cray does not publish the bias values behind ADAPTIVE_2/3;
// this sweep varies the bias continuously and measures a latency-bound
// inter-group ping-pong and a bandwidth-bound alltoall under background
// traffic, reporting the execution time and the fraction of packets routed
// minimally. It shows where the "low bias" and "high bias" regimes the paper
// relies on sit on the curve, and that the two workloads prefer opposite ends
// of it — the reason a single static bias cannot be optimal.
func BiasSweep(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	biases := []int64{0, 100, 200, 400, 800, 1600, 3200}
	if opts.Quick {
		biases = []int64{0, 200, 800, 3200}
	}

	cases := []struct {
		label string
		build func(ranks int) workloads.Workload
	}{
		{"pingpong/16KiB inter-group", func(ranks int) workloads.Workload {
			return &workloads.PingPong{MessageBytes: opts.scaleSize(16 << 10), Iterations: 4}
		}},
		{"alltoall/16KiB", func(ranks int) workloads.Workload {
			return &workloads.Alltoall{MessageBytes: opts.scaleSize(16 << 10), Iterations: 1}
		}},
	}

	table := trace.NewTable(
		fmt.Sprintf("Non-minimal bias sweep, %d nodes (ADAPTIVE-style UGAL with variable bias)", opts.Nodes),
		"benchmark", "bias (cycles)", "median (cycles)", "norm vs bias=0", "qcd", "minimal packets %")

	for ci, c := range cases {
		var zeroBiasMedian float64
		for bi, bias := range biases {
			params := routing.DefaultParams()
			params.HighBiasCycles = bias
			if bias < params.LowBiasCycles {
				params.LowBiasCycles = bias
			}
			med, qcd, minPct, err := measureWithBias(opts, params, c.build, int64(ci*100+bi))
			if err != nil {
				return nil, fmt.Errorf("%s bias=%d: %w", c.label, bias, err)
			}
			if bi == 0 {
				zeroBiasMedian = med
			}
			norm := 0.0
			if zeroBiasMedian > 0 {
				norm = med / zeroBiasMedian
			}
			table.AddRow(c.label, bias, med, norm, qcd, minPct)
		}
	}
	return []*trace.Table{table}, nil
}

// measureWithBias builds a fresh system whose AdaptiveHighBias mode uses the
// given bias, runs the workload under that mode with background noise, and
// returns the median execution time, its QCD and the percentage of packets
// routed minimally.
func measureWithBias(opts Options, params routing.Params,
	build func(ranks int) workloads.Workload, seedOffset int64) (median, qcd, minimalPct float64, err error) {

	t, err := topo.New(opts.pizDaintGeometry())
	if err != nil {
		return 0, 0, 0, err
	}
	pol, err := routing.NewPolicy(t, params)
	if err != nil {
		return 0, 0, 0, err
	}
	engine := sim.NewEngine(opts.Seed + 11_000 + seedOffset)
	fab, err := network.New(engine, t, pol, network.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + seedOffset))

	n := opts.Nodes
	if n > t.NumNodes() {
		n = t.NumNodes()
	}
	job, err := alloc.Allocate(t, alloc.GroupStriped, n, rng, nil)
	if err != nil {
		return 0, 0, 0, err
	}

	// Background noise, same shape as the standard experiments.
	noiseNodes := opts.NoiseNodes
	if free := t.NumNodes() - job.Size(); noiseNodes > free {
		noiseNodes = free
	}
	if noiseNodes >= 2 {
		na, aerr := alloc.Allocate(t, alloc.RandomScatter, noiseNodes, rng, alloc.ExcludeSet(job))
		if aerr == nil {
			cfg := noise.DefaultGeneratorConfig()
			cfg.IntervalCycles = opts.NoiseIntervalCycles
			cfg.MessageBytes = opts.scaleSize(cfg.MessageBytes)
			cfg.Seed = opts.Seed + seedOffset
			if g, gerr := noise.FromAllocation(fab, na, cfg); gerr == nil {
				g.Start(noiseHorizon)
			}
		}
	}

	comm, err := mpi.NewComm(fab, job, mpi.Config{
		Routing: func(int) mpi.RoutingProvider {
			return mpi.StaticRouting{Mode: routing.AdaptiveHighBias}
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	w := build(job.Size())

	var times []float64
	before := jobCounters(fab, job)
	for i := 0; i < opts.iters(); i++ {
		start := engine.Now()
		if err := comm.Run(w.Run); err != nil {
			return 0, 0, 0, err
		}
		for r := 0; r < comm.Size(); r++ {
			if err := comm.Rank(r).Err(); err != nil {
				return 0, 0, 0, err
			}
		}
		times = append(times, float64(engine.Now()-start))
	}
	delta := jobCounters(fab, job).Sub(before)
	minPct := 0.0
	if delta.RequestPackets > 0 {
		minPct = 100 * float64(delta.MinimalPackets) / float64(delta.RequestPackets)
	}
	return stats.Median(times), stats.QCD(times), minPct, nil
}
