package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// goldenHashes pins the rendered quick-scale output of two representative
// experiments, captured before the typed-event-engine refactor (PR 3). The
// simulation core — event ordering, fabric timing, RNG stream consumption —
// must reproduce these tables byte-for-byte: any engine or fabric change that
// alters them is a behavioural change of the simulator, not an optimization,
// and needs an explicit decision (and a new hash) in review.
//
// The hashes cover QuickOptions() with the default seed; the trials run
// through the worker-pool harness with system reuse enabled, so this also
// guards the Reset path end to end.
var goldenHashes = map[string]string{
	"fig3":       "bb1847397d1c7e32321c93690fd84668aec9e32697c89443d92a52bc1b53dee5",
	"noisesweep": "0e43040912c901179124acad65d6ce6dd8ceda90499f65416fe613be836111bd",
	// cotenant pins the concurrent multi-job path (System.RunConcurrent with
	// real neighbor applications) end to end through the compact-arena
	// fabric; captured at PR 5 after verifying fig3/noisesweep unchanged.
	"cotenant": "8af32d8100a5ce369d0933123945100842adaa97748aca26ab323436c3028795",
	// fidelity pins the ShardableUGAL variant next to ExactUGAL in one table
	// (PR 8): the hash covers both variants' byte streams and the slowdown
	// ratios between them, so it fails if either model — or the relaxation
	// gap between them — drifts. Re-pinned at PR 9: the experiment now sweeps
	// the replica-staleness factor K in {1, 2, 4} per rung, and the shardable
	// byte stream changed when rank wakeups and delivery completions were
	// promoted to conforming-parallel execution.
	"fidelity": "54b9da60f2ec152cef458e7f7aade29a59409dbf84ca8cf8d7c7bd902cefd188",
	// counterfactual pins the decision-trace data path (PR 10): the per-group
	// decision rings, the counterfactual re-biasing replay, and the Eq. 2
	// calibration fit, across both UGAL variants. The experiment pins its own
	// variants and staleness, so the hash holds at every -shards,
	// -routing-variant and -staleness override; the invariance test below
	// checks that directly.
	"counterfactual": "e9578e304f21a1c8007aaf3fba7870cf496d1414b230f89a8254afc2c7da9fb6",
}

func TestGoldenTables(t *testing.T) {
	for id, want := range goldenHashes {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opts := QuickOptions()
			opts.Parallel = 1
			tables, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256([]byte(renderAll(t, tables)))
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Fatalf("%s quick-scale output drifted from the golden hash:\n got %s\nwant %s\n"+
					"The simulation core no longer reproduces pre-refactor results byte-for-byte. "+
					"If the model change is intentional, update goldenHashes.", id, got, want)
			}
		})
	}
}
