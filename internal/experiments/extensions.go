package experiments

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// The experiments in this file go beyond the paper's figures: they probe the
// design space the paper only discusses qualitatively (§6 Limitations and the
// Discussion of oscillations in §5.1).

// NoiseSweep measures how the three routing configurations react as the
// intensity of the interfering background job grows, for a fixed alltoall
// workload. The paper argues that the benefit of biasing towards minimal paths
// depends on how much congestion-avoidance is actually needed; sweeping the
// interference intensity makes that trade-off visible on one axis.
func NoiseSweep(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	size := opts.scaleSize(8 << 10)
	table := trace.NewTable(
		fmt.Sprintf("Extension: alltoall %d B under increasing background interference", size),
		"noise interval (cycles)",
		"default median", "highbias median", "appaware median",
		"highbias vs default", "appaware vs default",
		"appaware % default traffic")

	intervals := []int64{0, 48_000, 12_000, 3_000}
	if opts.Quick {
		intervals = []int64{0, 12_000}
	}
	n := opts.Nodes / 2
	if n < 8 {
		n = 8
	}
	specs := make([]harness.TrialSpec, len(intervals))
	for i, interval := range intervals {
		var ns *harness.NoiseSpec
		if interval > 0 {
			runOpts := opts
			runOpts.NoiseIntervalCycles = interval
			ns = runOpts.noiseSpec(noise.UniformRandom)
		}
		specs[i] = harness.TrialSpec{
			ID:        fmt.Sprintf("noisesweep/interval%d", interval),
			Geometry:  opts.pizDaintGeometry(),
			Placement: alloc.GroupStriped,
			JobNodes:  n,
			Noise:     ns,
			Setups:    StandardSetups,
			Workload: func(ranks int) workloads.Workload {
				return &workloads.Alltoall{MessageBytes: size, Iterations: 1}
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		dm := stats.Median(res["Default"].Times)
		hm := stats.Median(res["HighBias"].Times)
		am := stats.Median(res["AppAware"].Times)
		label := "none"
		if intervals[i] > 0 {
			label = fmt.Sprintf("%d", intervals[i])
		}
		table.AddRow(label, dm, hm, am, hm/dm, am/dm,
			res["AppAware"].SelectorStats.DefaultTrafficFraction()*100)
	}
	return []*trace.Table{table}, nil
}

// HysteresisStudy evaluates the oscillation-damping extension (the
// SwitchConfirmations knob added to the selector) on the workloads where the
// paper observed the plain algorithm failing to converge: broadcast of large
// messages and sweep3d. It reports the median time, the number of mode
// switches and the fraction of default-routed traffic per confirmation level.
func HysteresisStudy(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	cases := []struct {
		label string
		build func(ranks int) workloads.Workload
	}{
		{"broadcast/1MiB", func(r int) workloads.Workload {
			return &workloads.Broadcast{MessageBytes: opts.scaleSize(1 << 20), Iterations: 1}
		}},
		{"sweep3d/256", func(r int) workloads.Workload {
			return workloads.NewSweep3D(r, opts.scaleSize(256), 1)
		}},
	}
	confirmations := []int{1, 2, 4, 8}
	if opts.Quick {
		confirmations = []int{1, 4}
	}
	n := opts.Nodes / 2
	if n < 8 {
		n = 8
	}

	// One trial per (workload, confirmation level), all fanned out together.
	var specs []harness.TrialSpec
	for _, c := range cases {
		for _, k := range confirmations {
			k := k
			build := c.build
			specs = append(specs, harness.TrialSpec{
				ID:        fmt.Sprintf("hysteresis/%s/k%d", c.label, k),
				Meta:      k,
				Geometry:  opts.pizDaintGeometry(),
				Placement: alloc.GroupStriped,
				JobNodes:  n,
				Noise:     opts.noiseSpec(noise.UniformRandom),
				Setups: singleSetup(func() RoutingSetup {
					cfg := core.DefaultConfig()
					cfg.SwitchConfirmations = k
					return AppAwareSetup(cfg)
				}),
				Workload:   build,
				Iterations: opts.iters(),
			})
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}

	var tables []*trace.Table
	next := 0
	for _, c := range cases {
		table := trace.NewTable(
			fmt.Sprintf("Extension: selector hysteresis on %s", c.label),
			"switch confirmations", "median time (cycles)", "qcd", "mode switches", "% default traffic")
		for range confirmations {
			r := results[next]
			next++
			res, err := measurements(r)
			if err != nil {
				return nil, err
			}
			m := res["AppAware"]
			st := m.SelectorStats
			table.AddRow(r.Spec.Meta, stats.Median(m.Times), stats.QCD(m.Times),
				st.Switches, st.DefaultTrafficFraction()*100)
		}
		tables = append(tables, table)
	}
	return tables, nil
}
