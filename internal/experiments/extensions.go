package experiments

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/noise"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// The experiments in this file go beyond the paper's figures: they probe the
// design space the paper only discusses qualitatively (§6 Limitations and the
// Discussion of oscillations in §5.1).

// NoiseSweep measures how the three routing configurations react as the
// intensity of the interfering background job grows, for a fixed alltoall
// workload. The paper argues that the benefit of biasing towards minimal paths
// depends on how much congestion-avoidance is actually needed; sweeping the
// interference intensity makes that trade-off visible on one axis.
func NoiseSweep(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	size := opts.scaleSize(8 << 10)
	table := trace.NewTable(
		fmt.Sprintf("Extension: alltoall %d B under increasing background interference", size),
		"noise interval (cycles)",
		"default median", "highbias median", "appaware median",
		"highbias vs default", "appaware vs default",
		"appaware % default traffic")

	intervals := []int64{0, 48_000, 12_000, 3_000}
	if opts.Quick {
		intervals = []int64{0, 12_000}
	}
	for i, interval := range intervals {
		runOpts := opts
		runOpts.NoiseIntervalCycles = interval
		e, err := newEnv(runOpts, runOpts.pizDaintGeometry(), 2000+int64(i))
		if err != nil {
			return nil, err
		}
		n := runOpts.Nodes / 2
		if n < 8 {
			n = 8
		}
		if n > e.topo.NumNodes() {
			n = e.topo.NumNodes()
		}
		job, err := alloc.Allocate(e.topo, alloc.GroupStriped, n, e.rng, nil)
		if err != nil {
			return nil, err
		}
		if interval > 0 {
			e.startBackgroundNoise(alloc.ExcludeSet(job), noise.UniformRandom, noiseHorizon)
		}
		setups := StandardSetups()
		w := &workloads.Alltoall{MessageBytes: size, Iterations: 1}
		res, err := e.measureSetups(job, setups, nil, w, runOpts.iters())
		if err != nil {
			return nil, err
		}
		dm := stats.Median(res["Default"].Times)
		hm := stats.Median(res["HighBias"].Times)
		am := stats.Median(res["AppAware"].Times)
		label := "none"
		if interval > 0 {
			label = fmt.Sprintf("%d", interval)
		}
		table.AddRow(label, dm, hm, am, hm/dm, am/dm,
			res["AppAware"].SelectorStats.DefaultTrafficFraction()*100)
	}
	return []*trace.Table{table}, nil
}

// HysteresisStudy evaluates the oscillation-damping extension (the
// SwitchConfirmations knob added to the selector) on the workloads where the
// paper observed the plain algorithm failing to converge: broadcast of large
// messages and sweep3d. It reports the median time, the number of mode
// switches and the fraction of default-routed traffic per confirmation level.
func HysteresisStudy(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	cases := []struct {
		label string
		build func(ranks int) workloads.Workload
	}{
		{"broadcast/1MiB", func(r int) workloads.Workload {
			return &workloads.Broadcast{MessageBytes: opts.scaleSize(1 << 20), Iterations: 1}
		}},
		{"sweep3d/256", func(r int) workloads.Workload {
			return workloads.NewSweep3D(r, opts.scaleSize(256), 1)
		}},
	}
	confirmations := []int{1, 2, 4, 8}
	if opts.Quick {
		confirmations = []int{1, 4}
	}

	var tables []*trace.Table
	for ci, c := range cases {
		table := trace.NewTable(
			fmt.Sprintf("Extension: selector hysteresis on %s", c.label),
			"switch confirmations", "median time (cycles)", "qcd", "mode switches", "% default traffic")
		for ki, k := range confirmations {
			e, err := newEnv(opts, opts.pizDaintGeometry(), 3000+int64(ci*100+ki))
			if err != nil {
				return nil, err
			}
			n := opts.Nodes / 2
			if n < 8 {
				n = 8
			}
			if n > e.topo.NumNodes() {
				n = e.topo.NumNodes()
			}
			job, err := alloc.Allocate(e.topo, alloc.GroupStriped, n, e.rng, nil)
			if err != nil {
				return nil, err
			}
			e.startBackgroundNoise(alloc.ExcludeSet(job), noise.UniformRandom, noiseHorizon)

			cfg := core.DefaultConfig()
			cfg.SwitchConfirmations = k
			setup := AppAwareSetup(cfg)
			m, err := e.measureSingle(job, setup, nil, c.build(job.Size()), opts.iters())
			if err != nil {
				return nil, err
			}
			st := setup.Stats()
			table.AddRow(k, stats.Median(m.Times), stats.QCD(m.Times),
				st.Switches, st.DefaultTrafficFraction()*100)
		}
		tables = append(tables, table)
	}
	return tables, nil
}
