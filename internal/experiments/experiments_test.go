package experiments

import (
	"strconv"
	"strings"
	"testing"

	"dragonfly/internal/trace"
)

// cell parses a float cell of a table row.
func cell(t *testing.T, tbl *trace.Table, row, col int) float64 {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tbl.Title, row, col)
	}
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %q is not numeric: %q", row, col, tbl.Title, tbl.Rows[row][col])
	}
	return v
}

func TestOptionsNormalizeAndScale(t *testing.T) {
	var zero Options
	n := zero.normalize()
	d := DefaultOptions()
	if n.Seed != d.Seed || n.Iterations != d.Iterations || n.Nodes != d.Nodes {
		t.Fatalf("normalize did not fill defaults: %+v", n)
	}
	q := QuickOptions()
	if !q.Quick || q.iters() > 6 {
		t.Fatalf("quick options wrong: %+v", q)
	}
	if q.scaleSize(4096) >= 4096 {
		t.Fatal("quick scaling must shrink sizes")
	}
	if d.scaleSize(4) < 8 {
		t.Fatal("scaleSize must clamp to a minimum")
	}
	if d.pizDaintGeometry().Groups != 6 || d.coriGeometry().Groups != 5 {
		t.Fatal("wrong geometry group counts")
	}
	full := DefaultOptions()
	full.FullAries = true
	if full.pizDaintGeometry().BladesPerChassis != 16 || full.coriGeometry().BladesPerChassis != 16 {
		t.Fatal("FullAries must use full Aries geometry")
	}
}

func TestRegistryAndRun(t *testing.T) {
	names := Names()
	if len(names) != 22 {
		t.Fatalf("expected 22 experiments, got %d: %v", len(names), names)
	}
	for _, want := range []string{"fig3", "tab1", "fig4", "fig5", "fig7", "model", "fig8", "fig9", "fig10",
		"ablations", "noisesweep", "hysteresis", "sched", "cotenant", "baselines", "collalgos", "telemetry", "biassweep",
		"fullmachine", "openstream", "fidelity", "counterfactual"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %q not registered", want)
		}
	}
	if _, err := Run("nope", QuickOptions()); err == nil {
		t.Fatal("unknown experiment id must fail")
	}
}

func TestFigure3Allocations(t *testing.T) {
	tables, err := Figure3Allocations(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 allocation classes, got %d rows", len(tbl.Rows))
	}
	labels := []string{"Inter-Nodes", "Inter-Blades", "Inter-Chassis", "Inter-Groups"}
	for i, want := range labels {
		if tbl.Rows[i][0] != want {
			t.Fatalf("row %d label = %q, want %q", i, tbl.Rows[i][0], want)
		}
		if cell(t, tbl, i, 1) <= 0 {
			t.Fatalf("row %q has non-positive median", want)
		}
	}
	// Shape: farther allocations have a higher median; inter-groups must be
	// the slowest and inter-nodes the fastest.
	interNodes := cell(t, tbl, 0, 1)
	interGroups := cell(t, tbl, 3, 1)
	if interGroups <= interNodes {
		t.Fatalf("inter-group median (%v) should exceed inter-node median (%v)", interGroups, interNodes)
	}
}

func TestTable1IdleFlits(t *testing.T) {
	tables, err := Table1IdleFlits(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	flits1 := cell(t, tbl, 0, 2)
	flits2 := cell(t, tbl, 1, 2)
	if flits1 <= 0 || flits2 <= 0 {
		t.Fatalf("idle job observed no flits: %v %v", flits1, flits2)
	}
	// The longer observation window must see more flits (roughly double; we
	// only assert strictly more to stay robust at tiny scales).
	if flits2 <= flits1 {
		t.Fatalf("doubling the idle time did not increase observed flits: %v vs %v", flits1, flits2)
	}
}

func TestFigure4OnNodeAlltoall(t *testing.T) {
	tables, err := Figure4OnNodeAlltoall(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 sizes, got %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, 1) <= 0 {
			t.Fatalf("row %d has non-positive median time", i)
		}
		// The whole point of Figure 4: variability exists (QCD > 0) although
		// no NIC packets were sent.
		if packets := cell(t, tbl, i, len(tbl.Columns)-1); packets != 0 {
			t.Fatalf("on-node alltoall sent %v NIC packets, want 0", packets)
		}
		if qcd := cell(t, tbl, i, 6); qcd <= 0 {
			t.Fatalf("row %d shows no execution-time variability (qcd=%v)", i, qcd)
		}
	}
}

func TestFigure5QCD(t *testing.T) {
	tables, err := Figure5QCD(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) < 3 {
		t.Fatalf("expected at least 3 sizes, got %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		qcdTime := cell(t, tbl, i, 1)
		qcdLat := cell(t, tbl, i, 2)
		if qcdTime < 0 || qcdLat < 0 {
			t.Fatalf("negative QCD in row %d", i)
		}
	}
	// Shape: for the smallest message the execution-time QCD must not
	// understate the latency QCD (it includes host-side delays on top).
	if cell(t, tbl, 0, 1) < cell(t, tbl, 0, 2)*0.5 {
		t.Fatalf("execution-time QCD (%v) unexpectedly far below latency QCD (%v) for small messages",
			cell(t, tbl, 0, 1), cell(t, tbl, 0, 2))
	}
}

func TestFigure7RoutingPingPong(t *testing.T) {
	tables, err := Figure7RoutingPingPong(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("expected 4 sub-figure tables, got %d", len(tables))
	}
	wantLabels := []string{
		"Intra-Group/Adaptive", "Intra-Group/HighBias",
		"Inter-Groups/Adaptive", "Inter-Groups/HighBias",
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 4 {
			t.Fatalf("table %q has %d rows, want 4", tbl.Title, len(tbl.Rows))
		}
		for i, want := range wantLabels {
			if tbl.Rows[i][0] != want {
				t.Fatalf("table %q row %d label %q, want %q", tbl.Title, i, tbl.Rows[i][0], want)
			}
		}
	}
	// Execution times must be positive everywhere.
	for i := range tables[0].Rows {
		if cell(t, tables[0], i, 1) <= 0 {
			t.Fatalf("non-positive execution time median in row %d", i)
		}
	}
	// The WinnerSummary helper must be able to compare the inter-group pair.
	winner, ratio, err := WinnerSummary(tables[0], "Inter-Groups/Adaptive", "Inter-Groups/HighBias")
	if err != nil {
		t.Fatal(err)
	}
	if winner == "" || ratio < 1 {
		t.Fatalf("bad winner summary: %q %v", winner, ratio)
	}
	if _, _, err := WinnerSummary(tables[0], "nope", "also-nope"); err == nil {
		t.Fatal("WinnerSummary must fail for unknown labels")
	}
}

func TestMedianAndQCDHelpers(t *testing.T) {
	tbl := trace.NewTable("t", summaryColumns("label")...)
	summaryRow(tbl, "x", []float64{1, 2, 3, 4, 100})
	if v, ok := medianOf(tbl, "x"); !ok || v != 3 {
		t.Fatalf("medianOf = %v, %v", v, ok)
	}
	if _, ok := medianOf(tbl, "missing"); ok {
		t.Fatal("medianOf must miss unknown labels")
	}
	if v, ok := qcdOf(tbl, "x"); !ok || v <= 0 {
		t.Fatalf("qcdOf = %v, %v", v, ok)
	}
	if _, ok := qcdOf(tbl, "missing"); ok {
		t.Fatal("qcdOf must miss unknown labels")
	}
}

func TestModelValidation(t *testing.T) {
	tables, err := ModelValidation(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) < 3 {
		t.Fatalf("expected at least 3 rows, got %d", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "average" {
		t.Fatalf("last row should be the average, got %q", last[0])
	}
	avg := cell(t, tbl, len(tbl.Rows)-1, 1)
	if avg <= 0.3 {
		t.Fatalf("average model correlation %v too low; the paper reports ~0.79", avg)
	}
}

func TestFigure8Microbenchmarks(t *testing.T) {
	tables, err := Figure8Microbenchmarks(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) < 5 {
		t.Fatalf("expected at least 5 benchmark rows, got %d", len(tbl.Rows))
	}
	checkComparisonTable(t, tbl)
}

func TestFigure9MicrobenchmarksCori(t *testing.T) {
	tables, err := Figure9MicrobenchmarksCori(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tables[0].Title, "Cori") {
		t.Fatalf("title should mention Cori: %q", tables[0].Title)
	}
	checkComparisonTable(t, tables[0])
}

func TestFigure10Applications(t *testing.T) {
	tables, err := Figure10Applications(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("expected application table plus small-FFT table, got %d", len(tables))
	}
	checkComparisonTable(t, tables[0])
	checkComparisonTable(t, tables[1])
	if len(tables[1].Rows) != 1 || !strings.Contains(tables[1].Rows[0][0], "fft-small") {
		t.Fatalf("second table should hold the small FFT run: %+v", tables[1].Rows)
	}
}

// checkComparisonTable validates the invariants of a Figure 8/9/10 style table.
func checkComparisonTable(t *testing.T, tbl *trace.Table) {
	t.Helper()
	for i, row := range tbl.Rows {
		if cell(t, tbl, i, 1) <= 0 {
			t.Fatalf("row %q has non-positive default median", row[0])
		}
		// Default normalized median is 1 by construction.
		if v := cell(t, tbl, i, 2); v < 0.999 || v > 1.001 {
			t.Fatalf("row %q default normalized median = %v, want 1.0", row[0], v)
		}
		for _, col := range []int{4, 6} { // highbias, appaware normalized medians
			if v := cell(t, tbl, i, col); v <= 0 {
				t.Fatalf("row %q column %d non-positive", row[0], col)
			}
		}
		frac := cell(t, tbl, i, 8)
		if frac < 0 || frac > 100 {
			t.Fatalf("row %q %% default traffic out of range: %v", row[0], frac)
		}
	}
}

func TestNoiseSweep(t *testing.T) {
	tables, err := NoiseSweep(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) < 2 {
		t.Fatalf("expected at least 2 interference levels, got %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "none" {
		t.Fatalf("first row should be the no-interference baseline, got %q", tbl.Rows[0][0])
	}
	for i := range tbl.Rows {
		for col := 1; col <= 3; col++ {
			if cell(t, tbl, i, col) <= 0 {
				t.Fatalf("row %d column %d non-positive", i, col)
			}
		}
		frac := cell(t, tbl, i, 6)
		if frac < 0 || frac > 100 {
			t.Fatalf("row %d %% default traffic out of range: %v", i, frac)
		}
	}
}

func TestHysteresisStudy(t *testing.T) {
	tables, err := HysteresisStudy(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("expected 2 workload tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) < 2 {
			t.Fatalf("table %q has too few rows", tbl.Title)
		}
		for i := range tbl.Rows {
			if cell(t, tbl, i, 1) <= 0 {
				t.Fatalf("table %q row %d non-positive median", tbl.Title, i)
			}
			if sw := cell(t, tbl, i, 3); sw < 0 {
				t.Fatalf("negative switch count in %q", tbl.Title)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	tables, err := Ablations(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("expected 4 ablation tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) < 4 {
			t.Fatalf("ablation table %q has too few rows: %d", tbl.Title, len(tbl.Rows))
		}
		for i := range tbl.Rows {
			if cell(t, tbl, i, 1) <= 0 {
				t.Fatalf("ablation %q row %d non-positive median", tbl.Title, i)
			}
		}
	}
}
