package experiments

import (
	"context"
	"fmt"

	"dragonfly"
	"dragonfly/internal/core"
	"dragonfly/internal/counterfactual"
	"dragonfly/internal/harness"
	"dragonfly/internal/msglog"
	"dragonfly/internal/noise"
	"dragonfly/internal/perfmodel"
	"dragonfly/internal/routing"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// cfKey identifies one (variant, setup) cell of the counterfactual sweep; it
// is the trial Meta and the aggregation map key.
type cfKey struct {
	Variant string
	Setup   string
}

// cfTrial is the value a counterfactual trial body returns: the per-mode
// replay outcomes, the trace bookkeeping, and the calibration fit.
type cfTrial struct {
	Outcomes []counterfactual.ModeOutcome
	Recorded uint64
	Dropped  uint64
	Fit      perfmodel.Fit
}

// cfModes are the bias modes every recorded decision is re-scored under.
func cfModes() []routing.Mode {
	return []routing.Mode{
		routing.Adaptive,
		routing.IncreasinglyMinimalBias,
		routing.AdaptiveLowBias,
		routing.AdaptiveHighBias,
	}
}

// CounterfactualRouting quantifies the paper's central claim per decision
// rather than per run. Each trial runs a noisy alltoall under one routing
// setup (the paper's Default, then the application-aware library) with the
// decision recorder on, then (1) replays every recorded adaptive decision
// under each bias mode and reports how much raw congestion cost the live
// policy avoided relative to that mode's counterfactual pick, and (2) fits
// the Eq. 2 performance model (L, s) against the captured message log and
// reports MAPE and Pearson-r — the trace → replay → calibrate loop. The sweep
// runs under both UGAL variants; within a variant the output is byte-identical
// across shard counts (decision rings are per-group and group order is
// canonical), which the golden hash and the determinism suite pin.
func CounterfactualRouting(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	// The sweep pins its own variants per trial; a global -routing-variant
	// override would silently collapse the exact/shardable comparison.
	opts.Variant = routing.ExactUGAL
	size := opts.scaleSize(4 << 10)
	jobNodes := opts.Nodes
	// The small rung has 64 nodes; leave room for the noise generator.
	if jobNodes > 16 {
		jobNodes = 16
	}
	iters := opts.iters()
	if iters > 6 {
		iters = 6
	}

	variants := []routing.Variant{routing.ExactUGAL, routing.ShardableUGAL}
	setups := []struct {
		name  string
		build func() RoutingSetup
	}{
		{"Default", DefaultSetup},
		{"AppAware", func() RoutingSetup { return AppAwareSetup(core.DefaultConfig()) }},
	}

	var specs []harness.TrialSpec
	for _, variant := range variants {
		for _, setup := range setups {
			key := cfKey{Variant: variant.String(), Setup: setup.name}
			build := setup.build
			specs = append(specs, harness.TrialSpec{
				ID:             fmt.Sprintf("counterfactual/%s/%s", key.Variant, key.Setup),
				Meta:           key,
				Geometry:       dragonfly.Small,
				Variant:        variant,
				Staleness:      1, // pin: a global -staleness override is not part of this comparison
				DecisionTraceK: routing.DefaultDecisionCandidates,
				Setups:         singleSetup(build),
				Body: func(ctx context.Context, e *harness.Env) (any, error) {
					return runCounterfactualTrial(ctx, e, build(), size, jobNodes, iters,
						opts.noiseSpec(noise.UniformRandom))
				},
			})
		}
	}

	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	byKey := make(map[cfKey]cfTrial, len(results))
	for _, r := range results {
		v, ok := r.Value.(cfTrial)
		if !ok {
			return nil, fmt.Errorf("experiments: trial %q returned %T, want cfTrial", r.Spec.ID, r.Value)
		}
		byKey[r.Spec.Meta.(cfKey)] = v
	}

	decisions := trace.NewTable(
		fmt.Sprintf("Counterfactual decision scoring: noisy alltoall %d B, top-%d candidates",
			size, routing.DefaultDecisionCandidates),
		"variant", "setup", "scored mode", "decisions", "switched %", "cf minimal %",
		"avoided/decision", "avoided total")
	calibration := trace.NewTable(
		"Eq. 2 calibration against the captured message log",
		"variant", "setup", "samples", "fitted L", "fitted s", "MAPE %", "Pearson r",
		"decisions kept", "decisions dropped")
	for _, variant := range variants {
		for _, setup := range setups {
			key := cfKey{Variant: variant.String(), Setup: setup.name}
			t, ok := byKey[key]
			if !ok {
				return nil, fmt.Errorf("experiments: missing counterfactual cell %+v", key)
			}
			for _, o := range t.Outcomes {
				decisions.AddRow(key.Variant, key.Setup, o.Mode.Name(), o.Decisions,
					o.SwitchedFraction()*100, o.MinimalFraction()*100,
					o.MeanAvoided(), o.AvoidedCycles())
			}
			calibration.AddRow(key.Variant, key.Setup, t.Fit.Samples,
				t.Fit.Params.LatencyCycles, t.Fit.Params.StallRatio,
				t.Fit.MAPE*100, t.Fit.PearsonR, t.Recorded-t.Dropped, t.Dropped)
		}
	}
	return []*trace.Table{decisions, calibration}, nil
}

// runCounterfactualTrial is the trial body. It runs two phases on the same
// allocated job: first a quiet multi-size sweep with a message log attached —
// the calibration data, since Eq. 2 models uncongested transmission and needs
// size variation to separate L from s — then, after resetting the decision
// rings, the noisy measured alltoall whose recorded decisions get scored.
func runCounterfactualTrial(ctx context.Context, e *harness.Env, setup RoutingSetup,
	size int64, jobNodes, iters int, noiseSpec *harness.NoiseSpec) (any, error) {

	tr := e.Sys.DecisionTrace()
	if tr == nil {
		return nil, fmt.Errorf("counterfactual trial needs DecisionTraceK > 0 in its spec")
	}
	job, err := e.AllocateJob(dragonfly.GroupStriped, jobNodes)
	if err != nil {
		return nil, err
	}

	log := msglog.NewLog()
	log.Attach(e.Fabric)
	for _, s := range []int64{size / 4, size / 2, size, 2 * size, 4 * size} {
		// Ping-pong serializes the transfers, so each logged record observes
		// an uncongested network — the regime Eq. 2 actually models.
		w := &workloads.PingPong{MessageBytes: s, Iterations: 2}
		if _, err := e.MeasureSingle(ctx, job, setup, nil, w, 1); err != nil {
			log.Detach(e.Fabric)
			return nil, err
		}
	}
	log.Detach(e.Fabric)
	samples := counterfactual.CalibrationSamples(log.Records())

	// The quiet phase's decisions are calibration traffic, not the subject of
	// the counterfactual question; score only the noisy measured phase.
	tr.Reset()
	if noiseSpec != nil {
		e.StartNoise(*noiseSpec, job)
	}
	w := &workloads.Alltoall{MessageBytes: size, Iterations: 1}
	if _, err := e.MeasureSingle(ctx, job, setup, nil, w, iters); err != nil {
		return nil, err
	}

	outcomes, err := counterfactual.Score(tr, routing.DefaultParams(), cfModes())
	if err != nil {
		return nil, err
	}
	out := cfTrial{Outcomes: outcomes, Recorded: tr.Recorded(), Dropped: tr.Dropped()}
	if len(samples) >= 2 {
		fit, err := perfmodel.Calibrate(samples)
		if err != nil {
			return nil, err
		}
		out.Fit = fit
	}
	return out, nil
}
