package experiments

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/noise"
	"dragonfly/internal/patternaware"
	"dragonfly/internal/sched"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// PatternAwareSetup wraps the traffic-pattern-based classifier (the
// related-work baseline) as a routing setup comparable to the paper's
// application-aware selector.
func PatternAwareSetup(cfg patternaware.Config) RoutingSetup {
	var classifiers []*patternaware.Classifier
	return RoutingSetup{
		Name: "PatternAware",
		Provider: func(int) mpi.RoutingProvider {
			c := patternaware.MustNew(cfg)
			classifiers = append(classifiers, c)
			return c
		},
		Stats: func() core.Stats {
			var agg core.Stats
			for _, c := range classifiers {
				st := c.Stats()
				agg.Messages += st.Messages
				agg.Bytes += st.Bytes
				agg.DefaultBytes += st.DefaultBytes
				agg.BiasBytes += st.BiasBytes
				agg.Evaluations += st.Classifications
			}
			return agg
		},
	}
}

// SchedulerInterference is an extension experiment: a measured halo3d job runs
// while a batch scheduler churns a synthetic production mix around it, and the
// measurement is repeated for every combination of scheduler placement policy
// (contiguous, random, hybrid) and routing setup (Default, High Bias,
// Application-Aware). It connects the paper's routing-based mitigation to the
// allocation-based mitigation of the related work: placement changes how much
// interference exists, the routing mode changes how much of it the job absorbs.
func SchedulerInterference(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	table := trace.NewTable(
		fmt.Sprintf("Scheduler interference: halo3d on %d nodes under a batch mix, by placement policy and routing", opts.Nodes/2),
		"placement", "routing", "median (cycles)", "norm median", "qcd",
		"appaware % default traffic", "mix jobs finished", "mean groups spanned")

	placements := []sched.AllocationPolicy{sched.PlaceContiguous, sched.PlaceRandom, sched.PlaceHybrid}
	jobNodes := opts.Nodes / 2
	if jobNodes < 8 {
		jobNodes = 8
	}
	for pi, placement := range placements {
		e, err := newEnv(opts, opts.pizDaintGeometry(), 5_000+int64(pi))
		if err != nil {
			return nil, err
		}
		n := jobNodes
		if n > e.topo.NumNodes()/2 {
			n = e.topo.NumNodes() / 2
		}
		job, err := alloc.Allocate(e.topo, alloc.GroupStriped, n, e.rng, nil)
		if err != nil {
			return nil, err
		}

		// The batch mix occupies the rest of the machine for the whole run.
		s := sched.New(e.fabric, sched.Config{Placement: placement, Backfill: true, Seed: opts.Seed + int64(pi)})
		s.Reserve(job.Nodes())
		mixCfg := sched.DefaultMixConfig()
		mixCfg.Seed = opts.Seed + 17
		mixCfg.Jobs = 24
		if opts.Quick {
			mixCfg.Jobs = 8
			mixCfg.IntervalCycles *= 3
		}
		mixCfg.MaxNodes = e.topo.NumNodes() / 4
		mixCfg.MinDurationCycles = 2_000_000
		mixCfg.MaxDurationCycles = 20_000_000
		specs, err := sched.GenerateMix(mixCfg, e.topo.NumNodes()-job.Size())
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			if _, err := s.Submit(spec); err != nil {
				return nil, err
			}
		}
		s.Start()

		w := workloads.NewHalo3D(job.Size(), opts.scaleSize(256), 2)
		setups := StandardSetups()
		res, err := e.measureSetups(job, setups, nil, w, opts.iters())
		if err != nil {
			return nil, fmt.Errorf("placement %s: %w", placement, err)
		}
		defMedian := stats.Median(res["Default"].Times)
		schedStats := s.Stats()
		for _, setup := range setups {
			m := res[setup.Name]
			med := stats.Median(m.Times)
			norm := 0.0
			if defMedian > 0 {
				norm = med / defMedian
			}
			pct := 0.0
			if setup.Name == "AppAware" {
				pct = m.SelectorStats.DefaultTrafficFraction() * 100
			}
			table.AddRow(placement.String(), setup.Name, med, norm, stats.QCD(m.Times),
				pct, schedStats.Finished, schedStats.MeanGroupsSpanned)
		}
	}
	return []*trace.Table{table}, nil
}

// BaselineComparison is an extension experiment comparing the paper's
// counter-model-driven selector against the traffic-pattern-based baseline
// (and the two static modes) on workloads where the two disagree: a
// latency-bound ping-pong, a bandwidth-bound alltoall and the halo3d stencil.
func BaselineComparison(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	cases := []microCase{
		{"pingpong", "pingpong/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.PingPong{MessageBytes: o.scaleSize(16 << 10), Iterations: 4}
		}},
		{"alltoall", "alltoall/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.Alltoall{MessageBytes: o.scaleSize(16 << 10), Iterations: 1}
		}},
		{"halo3d", "halo3d/512", func(r int, o Options) workloads.Workload {
			return workloads.NewHalo3D(r, o.scaleSize(512), 2)
		}},
	}
	if opts.Quick {
		cases = cases[:2]
	}
	table := trace.NewTable(
		fmt.Sprintf("Selector baselines: AppAware (paper) vs PatternAware (related work) vs static, %d nodes", opts.Nodes),
		"benchmark", "setup", "median (cycles)", "norm median", "qcd", "% default traffic")

	for i, c := range cases {
		e, err := newEnv(opts, opts.pizDaintGeometry(), 6_000+int64(i))
		if err != nil {
			return nil, err
		}
		n := opts.Nodes
		if n > e.topo.NumNodes() {
			n = e.topo.NumNodes()
		}
		job, err := alloc.Allocate(e.topo, alloc.GroupStriped, n, e.rng, nil)
		if err != nil {
			return nil, err
		}
		e.startBackgroundNoise(alloc.ExcludeSet(job), noise.UniformRandom, noiseHorizon)

		setups := []RoutingSetup{
			DefaultSetup(),
			HighBiasSetup(),
			AppAwareSetup(core.DefaultConfig()),
			PatternAwareSetup(patternaware.DefaultConfig()),
		}
		w := c.build(job.Size(), opts)
		res, err := e.measureSetups(job, setups, nil, w, opts.iters())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.label, err)
		}
		defMedian := stats.Median(res["Default"].Times)
		for _, setup := range setups {
			m := res[setup.Name]
			med := stats.Median(m.Times)
			norm := 0.0
			if defMedian > 0 {
				norm = med / defMedian
			}
			pct := m.SelectorStats.DefaultTrafficFraction() * 100
			if setup.Name == "Default" {
				pct = 100
			}
			if setup.Name == "HighBias" {
				pct = 0
			}
			table.AddRow(c.label, setup.Name, med, norm, stats.QCD(m.Times), pct)
		}
	}
	return []*trace.Table{table}, nil
}

// CollectiveAlgorithms is an ablation over the interaction between the
// collective algorithm and the routing mode: the same logical alltoall or
// allreduce generates very different traffic depending on the algorithm
// (pairwise vs Bruck vs spread; recursive doubling vs ring vs Rabenseifner),
// and with it the best routing mode can change.
func CollectiveAlgorithms(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	size := opts.scaleSize(16 << 10)
	algos := []struct {
		label string
		body  func(r *mpi.Rank)
	}{
		{"alltoall/pairwise", func(r *mpi.Rank) { r.Alltoall(size) }},
		{"alltoall/bruck", func(r *mpi.Rank) { r.AlltoallBruck(size) }},
		{"alltoall/spread", func(r *mpi.Rank) { r.AlltoallSpread(size) }},
		{"allreduce/doubling", func(r *mpi.Rank) { r.Allreduce(size) }},
		{"allreduce/ring", func(r *mpi.Rank) { r.AllreduceRing(size) }},
		{"allreduce/rabenseifner", func(r *mpi.Rank) { r.AllreduceRabenseifner(size) }},
	}
	if opts.Quick {
		algos = []struct {
			label string
			body  func(r *mpi.Rank)
		}{algos[0], algos[1], algos[3], algos[4]}
	}
	table := trace.NewTable(
		fmt.Sprintf("Collective algorithm ablation, %d nodes, %d-byte blocks", opts.Nodes, size),
		"algorithm", "default median", "highbias norm median", "appaware norm median",
		"appaware % default traffic", "best static")

	for i, a := range algos {
		e, err := newEnv(opts, opts.pizDaintGeometry(), 7_000+int64(i))
		if err != nil {
			return nil, err
		}
		n := opts.Nodes
		if n > e.topo.NumNodes() {
			n = e.topo.NumNodes()
		}
		job, err := alloc.Allocate(e.topo, alloc.GroupStriped, n, e.rng, nil)
		if err != nil {
			return nil, err
		}
		e.startBackgroundNoise(alloc.ExcludeSet(job), noise.UniformRandom, noiseHorizon)

		setups := StandardSetups()
		w := workloads.Func{WorkloadName: a.label, Body: a.body}
		res, err := e.measureSetups(job, setups, nil, w, opts.iters())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.label, err)
		}
		defMedian := stats.Median(res["Default"].Times)
		hbMedian := stats.Median(res["HighBias"].Times)
		aaMedian := stats.Median(res["AppAware"].Times)
		norm := func(v float64) float64 {
			if defMedian > 0 {
				return v / defMedian
			}
			return 0
		}
		best := "Default"
		if hbMedian < defMedian {
			best = "HighBias"
		}
		table.AddRow(a.label, defMedian, norm(hbMedian), norm(aaMedian),
			res["AppAware"].SelectorStats.DefaultTrafficFraction()*100, best)
	}
	return []*trace.Table{table}, nil
}

// TelemetryCongestion is an extension experiment: it runs an alltoall under an
// interfering bully job while a fabric-wide telemetry collector samples every
// tier, and reports the congestion time series and the group-to-group traffic
// concentration for the Adaptive and High-Bias modes. It quantifies the
// mechanism of §4.1: non-minimal routing spreads flits over more global links
// (flatter matrix, more total global flits), at the price of occupying
// resources of groups the job does not even use.
func TelemetryCongestion(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	summary := trace.NewTable(
		fmt.Sprintf("Telemetry: alltoall/16KiB with a bully job, %d nodes", opts.Nodes/2),
		"routing", "samples", "mean max-util", "peak max-util",
		"hotspot intervals (>=80%)", "global flits", "intra-group flits",
		"mean stall ratio", "mean packet latency")

	var matrices []*trace.Table
	for si, setup := range []RoutingSetup{DefaultSetup(), HighBiasSetup()} {
		e, err := newEnv(opts, opts.pizDaintGeometry(), 8_000+int64(si))
		if err != nil {
			return nil, err
		}
		n := opts.Nodes / 2
		if n < 8 {
			n = 8
		}
		if n > e.topo.NumNodes()/2 {
			n = e.topo.NumNodes() / 2
		}
		job, err := alloc.Allocate(e.topo, alloc.GroupStriped, n, e.rng, nil)
		if err != nil {
			return nil, err
		}
		e.startBackgroundNoise(alloc.ExcludeSet(job), noise.AlltoallBully, noiseHorizon)

		col := telemetry.MustNewCollector(e.fabric, telemetry.Config{
			IntervalCycles:   50_000,
			TopLinks:         3,
			TrackGroupMatrix: true,
		})
		col.Start(noiseHorizon)

		w := &workloads.Alltoall{MessageBytes: opts.scaleSize(16 << 10), Iterations: 1}
		iters := opts.iters()
		if iters > 10 {
			iters = 10
		}
		if _, err := e.measureSingle(job, setup, nil, w, iters); err != nil {
			return nil, fmt.Errorf("telemetry under %s: %w", setup.Name, err)
		}
		col.Stop()
		col.Flush()

		maxUtil, _ := col.Series("max-util")
		stall, _ := col.Series("stall-ratio")
		lat, _ := col.Series("packet-latency")
		var globalFlits, intraGroupFlits uint64
		for _, s := range col.Samples() {
			globalFlits += s.Tiers[topo.LinkGlobal].Flits
			intraGroupFlits += s.Tiers[topo.LinkIntraGroup].Flits
		}
		summary.AddRow(setup.Name, len(col.Samples()),
			stats.Mean(maxUtil), stats.Max(maxUtil),
			len(col.HotspotIntervals(0.8)), globalFlits, intraGroupFlits,
			stats.Mean(stall), stats.Mean(lat))

		m := col.AggregateGroupMatrix()
		mt := trace.NewTable(fmt.Sprintf("Group-to-group flits under %s routing", setup.Name), "src\\dst", "row")
		for i, row := range m {
			mt.AddRow(fmt.Sprintf("g%d", i), fmt.Sprint(row))
		}
		matrices = append(matrices, mt)
	}
	return append([]*trace.Table{summary}, matrices...), nil
}
