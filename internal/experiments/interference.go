package experiments

import (
	"context"
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/harness"
	"dragonfly/internal/mpi"
	"dragonfly/internal/noise"
	"dragonfly/internal/patternaware"
	"dragonfly/internal/sched"
	"dragonfly/internal/stats"
	"dragonfly/internal/telemetry"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// PatternAwareSetup wraps the traffic-pattern-based classifier (the
// related-work baseline) as a routing setup comparable to the paper's
// application-aware selector.
func PatternAwareSetup(cfg patternaware.Config) RoutingSetup {
	var classifiers []*patternaware.Classifier
	return RoutingSetup{
		Name: "PatternAware",
		Provider: func(int) mpi.RoutingProvider {
			c := patternaware.MustNew(cfg)
			classifiers = append(classifiers, c)
			return c
		},
		Stats: func() core.Stats {
			var agg core.Stats
			for _, c := range classifiers {
				st := c.Stats()
				agg.Messages += st.Messages
				agg.Bytes += st.Bytes
				agg.DefaultBytes += st.DefaultBytes
				agg.BiasBytes += st.BiasBytes
				agg.Evaluations += st.Classifications
			}
			return agg
		},
	}
}

// baselineSetups builds the four configurations of the baseline comparison.
func baselineSetups() []RoutingSetup {
	return []RoutingSetup{
		DefaultSetup(),
		HighBiasSetup(),
		AppAwareSetup(core.DefaultConfig()),
		PatternAwareSetup(patternaware.DefaultConfig()),
	}
}

// schedTrialResult is the payload of one scheduler-interference trial.
type schedTrialResult struct {
	Res        map[string]*Measurement
	SchedStats sched.Stats
}

// SchedulerInterference is an extension experiment: a measured halo3d job runs
// while a batch scheduler churns a synthetic production mix around it, and the
// measurement is repeated for every combination of scheduler placement policy
// (contiguous, random, hybrid) and routing setup (Default, High Bias,
// Application-Aware). It connects the paper's routing-based mitigation to the
// allocation-based mitigation of the related work: placement changes how much
// interference exists, the routing mode changes how much of it the job absorbs.
func SchedulerInterference(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	table := trace.NewTable(
		fmt.Sprintf("Scheduler interference: halo3d on %d nodes under a batch mix, by placement policy and routing", opts.Nodes/2),
		"placement", "routing", "median (cycles)", "norm median", "qcd",
		"appaware % default traffic", "mix jobs finished", "mean groups spanned")

	placements := []sched.AllocationPolicy{sched.PlaceContiguous, sched.PlaceRandom, sched.PlaceHybrid}
	jobNodes := opts.Nodes / 2
	if jobNodes < 8 {
		jobNodes = 8
	}
	specs := make([]harness.TrialSpec, len(placements))
	for pi, placement := range placements {
		placement := placement
		specs[pi] = harness.TrialSpec{
			ID:       "sched/" + placement.String(),
			Meta:     placement.String(),
			Geometry: opts.pizDaintGeometry(),
			Body: func(ctx context.Context, e *harness.Env) (any, error) {
				n := jobNodes
				if n > e.Topo.NumNodes()/2 {
					n = e.Topo.NumNodes() / 2
				}
				job, err := e.AllocateJob(alloc.GroupStriped, n)
				if err != nil {
					return nil, err
				}

				// The batch mix occupies the rest of the machine for the whole
				// run. Its spec is seeded from the suite seed — NOT the trial
				// seed — so every placement policy faces the same job mix and
				// the rows differ only by placement.
				s := sched.New(e.Fabric, sched.Config{Placement: placement, Backfill: true, Seed: e.Seed})
				s.Reserve(job.Nodes())
				mixCfg := sched.DefaultMixConfig()
				mixCfg.Seed = opts.Seed + 17
				mixCfg.Jobs = 24
				if opts.Quick {
					mixCfg.Jobs = 8
					mixCfg.IntervalCycles *= 3
				}
				mixCfg.MaxNodes = e.Topo.NumNodes() / 4
				mixCfg.MinDurationCycles = 2_000_000
				mixCfg.MaxDurationCycles = 20_000_000
				mixSpecs, err := sched.GenerateMix(mixCfg, e.Topo.NumNodes()-job.Size())
				if err != nil {
					return nil, err
				}
				for _, spec := range mixSpecs {
					if _, err := s.Submit(spec); err != nil {
						return nil, err
					}
				}
				s.Start()

				w := workloads.NewHalo3D(job.Size(), opts.scaleSize(256), 2)
				res, err := e.MeasureSetups(ctx, job, StandardSetups(), nil, w, opts.iters())
				if err != nil {
					return nil, err
				}
				return schedTrialResult{Res: res, SchedStats: s.Stats()}, nil
			},
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	setupNames := namesOf(StandardSetups())
	for _, r := range results {
		tr, ok := r.Value.(schedTrialResult)
		if !ok {
			return nil, fmt.Errorf("experiments: sched trial %q returned %T", r.Spec.ID, r.Value)
		}
		defMedian := stats.Median(tr.Res["Default"].Times)
		for _, name := range setupNames {
			m := tr.Res[name]
			med := stats.Median(m.Times)
			norm := 0.0
			if defMedian > 0 {
				norm = med / defMedian
			}
			pct := 0.0
			if name == "AppAware" {
				pct = m.SelectorStats.DefaultTrafficFraction() * 100
			}
			table.AddRow(r.Spec.Meta, name, med, norm, stats.QCD(m.Times),
				pct, tr.SchedStats.Finished, tr.SchedStats.MeanGroupsSpanned)
		}
	}
	return []*trace.Table{table}, nil
}

// BaselineComparison is an extension experiment comparing the paper's
// counter-model-driven selector against the traffic-pattern-based baseline
// (and the two static modes) on workloads where the two disagree: a
// latency-bound ping-pong, a bandwidth-bound alltoall and the halo3d stencil.
func BaselineComparison(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	cases := []microCase{
		{"pingpong", "pingpong/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.PingPong{MessageBytes: o.scaleSize(16 << 10), Iterations: 4}
		}},
		{"alltoall", "alltoall/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.Alltoall{MessageBytes: o.scaleSize(16 << 10), Iterations: 1}
		}},
		{"halo3d", "halo3d/512", func(r int, o Options) workloads.Workload {
			return workloads.NewHalo3D(r, o.scaleSize(512), 2)
		}},
	}
	if opts.Quick {
		cases = cases[:2]
	}
	specs := make([]harness.TrialSpec, len(cases))
	for i, c := range cases {
		build := c.build
		specs[i] = harness.TrialSpec{
			ID:        "baselines/" + c.label,
			Meta:      c.label,
			Geometry:  opts.pizDaintGeometry(),
			Placement: alloc.GroupStriped,
			JobNodes:  opts.Nodes,
			Noise:     opts.noiseSpec(noise.UniformRandom),
			Setups:    baselineSetups,
			Workload: func(ranks int) workloads.Workload {
				return build(ranks, opts)
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	table := trace.NewTable(
		fmt.Sprintf("Selector baselines: AppAware (paper) vs PatternAware (related work) vs static, %d nodes", opts.Nodes),
		"benchmark", "setup", "median (cycles)", "norm median", "qcd", "% default traffic")
	setupNames := namesOf(baselineSetups())
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		defMedian := stats.Median(res["Default"].Times)
		for _, name := range setupNames {
			m := res[name]
			med := stats.Median(m.Times)
			norm := 0.0
			if defMedian > 0 {
				norm = med / defMedian
			}
			pct := m.SelectorStats.DefaultTrafficFraction() * 100
			if name == "Default" {
				pct = 100
			}
			if name == "HighBias" {
				pct = 0
			}
			table.AddRow(r.Spec.Meta, name, med, norm, stats.QCD(m.Times), pct)
		}
	}
	return []*trace.Table{table}, nil
}

// CollectiveAlgorithms is an ablation over the interaction between the
// collective algorithm and the routing mode: the same logical alltoall or
// allreduce generates very different traffic depending on the algorithm
// (pairwise vs Bruck vs spread; recursive doubling vs ring vs Rabenseifner),
// and with it the best routing mode can change.
func CollectiveAlgorithms(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	size := opts.scaleSize(16 << 10)
	algos := []struct {
		label string
		body  func(r *mpi.Rank)
	}{
		{"alltoall/pairwise", func(r *mpi.Rank) { r.Alltoall(size) }},
		{"alltoall/bruck", func(r *mpi.Rank) { r.AlltoallBruck(size) }},
		{"alltoall/spread", func(r *mpi.Rank) { r.AlltoallSpread(size) }},
		{"allreduce/doubling", func(r *mpi.Rank) { r.Allreduce(size) }},
		{"allreduce/ring", func(r *mpi.Rank) { r.AllreduceRing(size) }},
		{"allreduce/rabenseifner", func(r *mpi.Rank) { r.AllreduceRabenseifner(size) }},
	}
	if opts.Quick {
		algos = []struct {
			label string
			body  func(r *mpi.Rank)
		}{algos[0], algos[1], algos[3], algos[4]}
	}
	specs := make([]harness.TrialSpec, len(algos))
	for i, a := range algos {
		a := a
		specs[i] = harness.TrialSpec{
			ID:        "collalgos/" + a.label,
			Meta:      a.label,
			Geometry:  opts.pizDaintGeometry(),
			Placement: alloc.GroupStriped,
			JobNodes:  opts.Nodes,
			Noise:     opts.noiseSpec(noise.UniformRandom),
			Setups:    StandardSetups,
			Workload: func(ranks int) workloads.Workload {
				return workloads.Func{WorkloadName: a.label, Body: a.body}
			},
			Iterations: opts.iters(),
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	table := trace.NewTable(
		fmt.Sprintf("Collective algorithm ablation, %d nodes, %d-byte blocks", opts.Nodes, size),
		"algorithm", "default median", "highbias norm median", "appaware norm median",
		"appaware % default traffic", "best static")
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		defMedian := stats.Median(res["Default"].Times)
		hbMedian := stats.Median(res["HighBias"].Times)
		aaMedian := stats.Median(res["AppAware"].Times)
		norm := func(v float64) float64 {
			if defMedian > 0 {
				return v / defMedian
			}
			return 0
		}
		best := "Default"
		if hbMedian < defMedian {
			best = "HighBias"
		}
		table.AddRow(r.Spec.Meta, defMedian, norm(hbMedian), norm(aaMedian),
			res["AppAware"].SelectorStats.DefaultTrafficFraction()*100, best)
	}
	return []*trace.Table{table}, nil
}

// telemetryTrialResult is the payload of one telemetry-congestion trial.
type telemetryTrialResult struct {
	Samples          int
	MeanMaxUtil      float64
	PeakMaxUtil      float64
	HotspotIntervals int
	GlobalFlits      uint64
	IntraGroupFlits  uint64
	MeanStall        float64
	MeanLatency      float64
	GroupMatrix      [][]uint64
}

// TelemetryCongestion is an extension experiment: it runs an alltoall under an
// interfering bully job while a fabric-wide telemetry collector samples every
// tier, and reports the congestion time series and the group-to-group traffic
// concentration for the Adaptive and High-Bias modes. It quantifies the
// mechanism of §4.1: non-minimal routing spreads flits over more global links
// (flatter matrix, more total global flits), at the price of occupying
// resources of groups the job does not even use.
func TelemetryCongestion(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	setups := []struct {
		name  string
		build func() RoutingSetup
	}{
		{"Default", DefaultSetup},
		{"HighBias", HighBiasSetup},
	}
	specs := make([]harness.TrialSpec, len(setups))
	for si, s := range setups {
		build := s.build
		specs[si] = harness.TrialSpec{
			ID:       "telemetry/" + s.name,
			Meta:     s.name,
			Geometry: opts.pizDaintGeometry(),
			Body: func(ctx context.Context, e *harness.Env) (any, error) {
				n := opts.Nodes / 2
				if n < 8 {
					n = 8
				}
				if n > e.Topo.NumNodes()/2 {
					n = e.Topo.NumNodes() / 2
				}
				job, err := e.AllocateJob(alloc.GroupStriped, n)
				if err != nil {
					return nil, err
				}
				e.StartNoise(*opts.noiseSpec(noise.AlltoallBully), job)

				col := telemetry.MustNewCollector(e.Fabric, telemetry.Config{
					IntervalCycles:   50_000,
					TopLinks:         3,
					TrackGroupMatrix: true,
				})
				col.Start(harness.DefaultHorizon)

				w := &workloads.Alltoall{MessageBytes: opts.scaleSize(16 << 10), Iterations: 1}
				iters := opts.iters()
				if iters > 10 {
					iters = 10
				}
				if _, err := e.MeasureSingle(ctx, job, build(), nil, w, iters); err != nil {
					return nil, err
				}
				col.Stop()
				col.Flush()

				maxUtil, _ := col.Series("max-util")
				stall, _ := col.Series("stall-ratio")
				lat, _ := col.Series("packet-latency")
				var globalFlits, intraGroupFlits uint64
				for _, s := range col.Samples() {
					globalFlits += s.Tiers[topo.LinkGlobal].Flits
					intraGroupFlits += s.Tiers[topo.LinkIntraGroup].Flits
				}
				return telemetryTrialResult{
					Samples:          len(col.Samples()),
					MeanMaxUtil:      stats.Mean(maxUtil),
					PeakMaxUtil:      stats.Max(maxUtil),
					HotspotIntervals: len(col.HotspotIntervals(0.8)),
					GlobalFlits:      globalFlits,
					IntraGroupFlits:  intraGroupFlits,
					MeanStall:        stats.Mean(stall),
					MeanLatency:      stats.Mean(lat),
					GroupMatrix:      col.AggregateGroupMatrix(),
				}, nil
			},
		}
	}
	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}

	summary := trace.NewTable(
		fmt.Sprintf("Telemetry: alltoall/16KiB with a bully job, %d nodes", opts.Nodes/2),
		"routing", "samples", "mean max-util", "peak max-util",
		"hotspot intervals (>=80%)", "global flits", "intra-group flits",
		"mean stall ratio", "mean packet latency")
	var matrices []*trace.Table
	for _, r := range results {
		tr, ok := r.Value.(telemetryTrialResult)
		if !ok {
			return nil, fmt.Errorf("experiments: telemetry trial %q returned %T", r.Spec.ID, r.Value)
		}
		summary.AddRow(r.Spec.Meta, tr.Samples,
			tr.MeanMaxUtil, tr.PeakMaxUtil,
			tr.HotspotIntervals, tr.GlobalFlits, tr.IntraGroupFlits,
			tr.MeanStall, tr.MeanLatency)

		mt := trace.NewTable(fmt.Sprintf("Group-to-group flits under %s routing", r.Spec.Meta), "src\\dst", "row")
		for i, row := range tr.GroupMatrix {
			mt.AddRow(fmt.Sprintf("g%d", i), fmt.Sprint(row))
		}
		matrices = append(matrices, mt)
	}
	return append([]*trace.Table{summary}, matrices...), nil
}
