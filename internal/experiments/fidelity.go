package experiments

import (
	"fmt"

	"dragonfly"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// fidelityKey identifies one (rung, variant, staleness, scenario) cell of the
// fidelity sweep; it is the trial Meta and the aggregation map key.
type fidelityKey struct {
	Rung      string
	Variant   string
	Staleness int
	Scenario  string
}

// fidelitySetups are the two static routing modes the fidelity sweep compares
// across variants. The adaptive selector is deliberately excluded: its
// decisions feed back on observed congestion, so under the shardable
// variant's stale replicas it measures the selector's robustness rather than
// the congestion model's fidelity — a separate question.
func fidelitySetups() []RoutingSetup {
	return []RoutingSetup{DefaultSetup(), HighBiasSetup()}
}

// ShardableFidelity quantifies how faithfully the ShardableUGAL variant
// (per-group RNG streams, bounded-staleness congestion replicas) reproduces
// the paper-relevant observable of the exact serial model: the victim's
// interference slowdown. Absolute cycle counts are NOT expected to match —
// stale remote replicas under-observe congestion within the K-lookahead
// staleness bound, so shardable runs report fewer stall cycles and shorter
// absolute times by construction. What must survive the relaxation is the
// ratio structure: how much a noisy neighborhood slows the victim down, and
// how the routing modes rank. Each rung of the geometry ladder is measured
// quiet and noisy under the exact model and under the shardable model at
// replica-sync decimation K ∈ {1, 2, 4} (WithReplicaStaleness), and the
// table reports the slowdown factors side by side with their ratio
// (shardable slowdown / exact slowdown; 1.0 = perfect fidelity), one row per
// (rung, routing mode, K). Growing K widens the staleness bound, so the K=4
// rows bound how fast fidelity decays as sync events are decimated away.
func ShardableFidelity(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	// The sweep pins its own variants per trial; a global -routing-variant
	// override would silently turn the exact baseline into a self-comparison.
	opts.Variant = routing.ExactUGAL
	size := opts.scaleSize(8 << 10)
	rungs := []struct {
		name string
		geom dragonfly.Geometry
	}{
		{"small", dragonfly.Small},
		{"medium", dragonfly.Medium},
	}
	if opts.Quick {
		rungs = rungs[:1]
	}
	// One exact baseline plus the shardable model at each decimation factor.
	configs := []struct {
		variant   routing.Variant
		staleness int
	}{
		{routing.ExactUGAL, 1},
		{routing.ShardableUGAL, 1},
		{routing.ShardableUGAL, 2},
		{routing.ShardableUGAL, 4},
	}
	scenarios := []string{"quiet", "noisy"}
	iters := opts.iters()
	if iters > 10 {
		iters = 10
	}

	var specs []harness.TrialSpec
	for _, rung := range rungs {
		jobNodes := opts.Nodes
		// The small rung has 64 nodes; leave room for the noise generator.
		if rung.name == "small" && jobNodes > 16 {
			jobNodes = 16
		}
		for _, cfg := range configs {
			for _, scenario := range scenarios {
				key := fidelityKey{Rung: rung.name, Variant: cfg.variant.String(),
					Staleness: cfg.staleness, Scenario: scenario}
				spec := harness.TrialSpec{
					ID: fmt.Sprintf("fidelity/%s/%s/k%d/%s",
						key.Rung, key.Variant, key.Staleness, key.Scenario),
					Meta:       key,
					Geometry:   rung.geom,
					Variant:    cfg.variant,
					Staleness:  cfg.staleness,
					Placement:  dragonfly.GroupStriped,
					JobNodes:   jobNodes,
					Setups:     fidelitySetups,
					Iterations: iters,
					Workload: func(ranks int) workloads.Workload {
						return &workloads.Alltoall{MessageBytes: size, Iterations: 1}
					},
				}
				if scenario == "noisy" {
					spec.Noise = opts.noiseSpec(noise.UniformRandom)
				}
				specs = append(specs, spec)
			}
		}
	}

	results, err := opts.runTrials(specs)
	if err != nil {
		return nil, err
	}
	medians := make(map[fidelityKey]map[string]float64, len(results))
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		key := r.Spec.Meta.(fidelityKey)
		bySetup := make(map[string]float64, len(res))
		for name, m := range res {
			bySetup[name] = stats.Median(m.Times)
		}
		medians[key] = bySetup
	}

	table := trace.NewTable(
		fmt.Sprintf("Fidelity: victim slowdown under ExactUGAL vs ShardableUGAL, alltoall %d B", size),
		"rung", "routing", "staleness K", "exact quiet (cycles)", "exact slowdown",
		"shardable quiet (cycles)", "shardable slowdown", "slowdown ratio", "deviation %")
	slowdown := func(rung, variant string, staleness int, setup string) (quiet, factor float64) {
		q := medians[fidelityKey{rung, variant, staleness, "quiet"}][setup]
		n := medians[fidelityKey{rung, variant, staleness, "noisy"}][setup]
		if q > 0 {
			return q, n / q
		}
		return q, 0
	}
	for _, rung := range rungs {
		for _, setup := range namesOf(fidelitySetups()) {
			exactQuiet, exactSlow := slowdown(rung.name, routing.ExactUGAL.String(), 1, setup)
			for _, cfg := range configs {
				if cfg.variant != routing.ShardableUGAL {
					continue
				}
				shardQuiet, shardSlow := slowdown(
					rung.name, routing.ShardableUGAL.String(), cfg.staleness, setup)
				ratio := 0.0
				if exactSlow > 0 {
					ratio = shardSlow / exactSlow
				}
				table.AddRow(rung.name, setup, cfg.staleness, exactQuiet, exactSlow,
					shardQuiet, shardSlow, ratio, (ratio-1)*100)
			}
		}
	}
	return []*trace.Table{table}, nil
}
