package experiments

import (
	"fmt"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/harness"
	"dragonfly/internal/noise"
	"dragonfly/internal/stats"
	"dragonfly/internal/topo"
	"dragonfly/internal/trace"
	"dragonfly/internal/workloads"
)

// microCase is one (benchmark, input size) cell of Figures 8/9.
type microCase struct {
	name  string
	label string
	build func(ranks int, opts Options) workloads.Workload
}

// microCases returns the benchmark/input-size grid of Figures 8 and 9, with
// sizes scaled down from the paper (flags scale them back up).
func microCases(opts Options) []microCase {
	size := func(b int64) int64 { return opts.scaleSize(b) }
	cases := []microCase{
		{"pingpong", "pingpong/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.PingPong{MessageBytes: size(16 << 10), Iterations: 4}
		}},
		{"pingpong", "pingpong/512KiB", func(r int, o Options) workloads.Workload {
			return &workloads.PingPong{MessageBytes: size(512 << 10), Iterations: 2}
		}},
		{"barrier", "barrier", func(r int, o Options) workloads.Workload {
			return &workloads.Barrier{Iterations: 4}
		}},
		{"allreduce", "allreduce/1Ki elems", func(r int, o Options) workloads.Workload {
			return &workloads.Allreduce{Elements: size(1 << 10), Iterations: 2}
		}},
		{"allreduce", "allreduce/64Ki elems", func(r int, o Options) workloads.Workload {
			return &workloads.Allreduce{Elements: size(64 << 10), Iterations: 1}
		}},
		{"alltoall", "alltoall/1KiB", func(r int, o Options) workloads.Workload {
			return &workloads.Alltoall{MessageBytes: size(1 << 10), Iterations: 1}
		}},
		{"alltoall", "alltoall/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.Alltoall{MessageBytes: size(16 << 10), Iterations: 1}
		}},
		{"broadcast", "broadcast/16KiB", func(r int, o Options) workloads.Workload {
			return &workloads.Broadcast{MessageBytes: size(16 << 10), Iterations: 2}
		}},
		{"broadcast", "broadcast/1MiB", func(r int, o Options) workloads.Workload {
			return &workloads.Broadcast{MessageBytes: size(1 << 20), Iterations: 1}
		}},
		{"halo3d", "halo3d/256", func(r int, o Options) workloads.Workload {
			return workloads.NewHalo3D(r, size(256), 2)
		}},
		{"halo3d", "halo3d/1024", func(r int, o Options) workloads.Workload {
			return workloads.NewHalo3D(r, size(1024), 1)
		}},
		{"sweep3d", "sweep3d/256", func(r int, o Options) workloads.Workload {
			return workloads.NewSweep3D(r, size(256), 1)
		}},
	}
	if opts.Quick {
		// A representative subset keeps the CI run short while still touching
		// every benchmark family at least once.
		return []microCase{cases[0], cases[2], cases[5], cases[7], cases[9], cases[11]}
	}
	return cases
}

// comparisonSpecs declares one trial per case: a GroupStriped job with
// background noise, measured under the three standard setups.
func comparisonSpecs(opts Options, geometry topo.Config, idPrefix string, jobNodes int,
	cases []microCase) []harness.TrialSpec {

	specs := make([]harness.TrialSpec, len(cases))
	for i, c := range cases {
		build := c.build
		specs[i] = harness.TrialSpec{
			ID:         idPrefix + "/" + c.label,
			Meta:       c.label,
			Geometry:   geometry,
			Placement:  alloc.GroupStriped,
			JobNodes:   jobNodes,
			Noise:      opts.noiseSpec(noise.UniformRandom),
			Setups:     StandardSetups,
			Workload:   func(ranks int) workloads.Workload { return build(ranks, opts) },
			Iterations: opts.iters(),
		}
	}
	return specs
}

// runComparison measures all routing setups for a list of cases on one system
// geometry and emits a normalized table in the style of Figures 8-10: every
// execution time is divided by the median of the Default configuration.
func runComparison(opts Options, geometry topo.Config, idPrefix, title string, jobNodes int,
	cases []microCase) (*trace.Table, error) {

	table := trace.NewTable(title,
		"benchmark", "default median (cycles)",
		"default norm median", "default norm iqr",
		"highbias norm median", "highbias norm iqr",
		"appaware norm median", "appaware norm iqr",
		"appaware % default traffic", "appaware wins vs worst")

	results, err := opts.runTrials(comparisonSpecs(opts, geometry, idPrefix, jobNodes, cases))
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		res, err := measurements(r)
		if err != nil {
			return nil, err
		}
		defMedian := stats.Median(res["Default"].Times)
		norm := func(name string) (median, iqr float64) {
			xs := stats.Normalize(res[name].Times, defMedian)
			return stats.Median(xs), stats.IQR(xs)
		}
		dm, di := norm("Default")
		hm, hi := norm("HighBias")
		am, ai := norm("AppAware")
		worst := dm
		if hm > worst {
			worst = hm
		}
		table.AddRow(r.Spec.Meta, defMedian,
			dm, di, hm, hi, am, ai,
			res["AppAware"].SelectorStats.DefaultTrafficFraction()*100,
			boolLabel(am <= worst*1.05))
	}
	return table, nil
}

// boolLabel renders a yes/no cell.
func boolLabel(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Figure8Microbenchmarks reproduces Figure 8: the microbenchmark grid on the
// Piz Daint style system (6 groups), comparing Default, Adaptive with High
// Bias and Application-Aware routing, normalized to the Default median. The
// paper runs 1024 nodes over 257 routers; the default here is Options.Nodes
// (48) on a reduced geometry — pass Nodes/FullAries to scale up.
func Figure8Microbenchmarks(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	title := fmt.Sprintf("Figure 8: microbenchmarks, %d nodes, Piz Daint style (6 groups), normalized to Default median", opts.Nodes)
	t, err := runComparison(opts, opts.pizDaintGeometry(), "fig8", title, opts.Nodes, microCases(opts))
	if err != nil {
		return nil, err
	}
	return []*trace.Table{t}, nil
}

// Figure9MicrobenchmarksCori reproduces Figure 9: the same grid on the Cori
// style system (5 groups) with a 64-node (default: Nodes/2) job.
func Figure9MicrobenchmarksCori(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	nodes := opts.Nodes / 2
	if nodes < 8 {
		nodes = 8
	}
	title := fmt.Sprintf("Figure 9: microbenchmarks, %d nodes, Cori style (5 groups), normalized to Default median", nodes)
	t, err := runComparison(opts, opts.coriGeometry(), "fig9", title, nodes, microCases(opts))
	if err != nil {
		return nil, err
	}
	return []*trace.Table{t}, nil
}

// appCases returns the application-proxy grid of Figure 10.
func appCases(opts Options) []microCase {
	mk := func(name string, build func(ranks int) workloads.Workload) microCase {
		return microCase{name: name, label: name, build: func(r int, _ Options) workloads.Workload { return build(r) }}
	}
	cases := []microCase{
		mk("cp2k", func(r int) workloads.Workload { return workloads.NewCP2K(r, 32) }),
		mk("wrf-b", func(r int) workloads.Workload { return workloads.NewWRF(r, 64, false) }),
		mk("wrf-t", func(r int) workloads.Workload { return workloads.NewWRF(r, 64, true) }),
		mk("lammps", func(r int) workloads.Workload { return workloads.NewLAMMPS(r, 16) }),
		mk("qe", func(r int) workloads.Workload { return workloads.NewQuantumEspresso(r, 48) }),
		mk("nekbone", func(r int) workloads.Workload { return workloads.NewNekbone(r, 256) }),
		mk("vpfft", func(r int) workloads.Workload { return workloads.NewVPFFT(r, 48) }),
		mk("amber", func(r int) workloads.Workload { return workloads.NewAmber(r, 8) }),
		mk("milc", func(r int) workloads.Workload { return workloads.NewMILC(r, 12) }),
		mk("hpcg", func(r int) workloads.Workload { return workloads.NewHPCG(r, 24) }),
		mk("bfs", func(r int) workloads.Workload { return workloads.NewBFS(r, 18) }),
		mk("sssp", func(r int) workloads.Workload { return workloads.NewSSSP(r, 18) }),
		mk("fft-large", func(r int) workloads.Workload { return workloads.NewFFT(r, 96) }),
	}
	if opts.Quick {
		// Small problem scales keep the CI run short while still exercising a
		// halo-based, an FFT-based and a graph-based proxy.
		return []microCase{
			mk("lammps", func(r int) workloads.Workload { return workloads.NewLAMMPS(r, 2) }),
			mk("milc", func(r int) workloads.Workload { return workloads.NewMILC(r, 6) }),
			mk("bfs", func(r int) workloads.Workload { return workloads.NewBFS(r, 12) }),
			mk("fft-large", func(r int) workloads.Workload { return workloads.NewFFT(r, 24) }),
		}
	}
	return cases
}

// Figure10Applications reproduces Figure 10: the application proxies under the
// three routing configurations (normalized to the Default median), plus the
// FFT run on a second, smaller allocation showing that the best static routing
// flips with the allocation while the application-aware selector tracks it.
func Figure10Applications(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()
	title := fmt.Sprintf("Figure 10: applications, %d nodes, normalized to Default median", opts.Nodes)
	apps, err := runComparison(opts, opts.pizDaintGeometry(), "fig10", title, opts.Nodes, appCases(opts))
	if err != nil {
		return nil, err
	}
	// FFT on the smaller allocation (the paper's 64-node FFT column).
	smallNodes := opts.Nodes / 4
	if smallNodes < 4 {
		smallNodes = 4
	}
	fftScale := int64(96)
	if opts.Quick {
		fftScale = 24
	}
	fftSmall := []microCase{{
		name:  "fft",
		label: fmt.Sprintf("fft-small/%d nodes", smallNodes),
		build: func(r int, _ Options) workloads.Workload { return workloads.NewFFT(r, fftScale) },
	}}
	smallTitle := fmt.Sprintf("Figure 10 (right): FFT on a %d-node allocation, normalized to Default median", smallNodes)
	small, err := runComparison(opts, opts.pizDaintGeometry(), "fig10-small", smallTitle, smallNodes, fftSmall)
	if err != nil {
		return nil, err
	}
	return []*trace.Table{apps, small}, nil
}

// ablationPoint is one swept configuration of the selector ablations.
type ablationPoint struct {
	id  string
	cfg core.Config
}

// ablationSpecs declares the alltoall-under-noise trial every ablation point
// is measured with.
func ablationSpecs(opts Options, points []ablationPoint) []harness.TrialSpec {
	size := opts.scaleSize(16 << 10)
	n := opts.Nodes / 2
	if n < 8 {
		n = 8
	}
	specs := make([]harness.TrialSpec, len(points))
	for i, p := range points {
		cfg := p.cfg
		specs[i] = harness.TrialSpec{
			ID:        "ablations/" + p.id,
			Geometry:  opts.pizDaintGeometry(),
			Placement: alloc.GroupStriped,
			JobNodes:  n,
			Noise:     opts.noiseSpec(noise.UniformRandom),
			Setups:    singleSetup(func() RoutingSetup { return AppAwareSetup(cfg) }),
			Workload: func(ranks int) workloads.Workload {
				return &workloads.Alltoall{MessageBytes: size, Iterations: 1}
			},
			Iterations: opts.iters(),
		}
	}
	return specs
}

// Ablations sweeps the design parameters of the application-aware selector
// that §6 of the paper discusses qualitatively: the cumulative-size threshold,
// the staleness window, the scaling factors and the counter-read overhead.
// Each sweep reports the median alltoall time and the fraction of traffic the
// selector sends with the Default routing. All points of all four sweeps run
// as one trial suite, so the whole ablation parallelizes across cores.
func Ablations(opts Options) ([]*trace.Table, error) {
	opts = opts.normalize()

	thresholds := []int64{0, 1 << 10, 4 << 10, 64 << 10, 1 << 20}
	stalenesses := []int{4, 16, 64, 256}
	scalings := [][2]float64{{0.6, 1.2}, {0.8, 1.6}, {0.9, 2.5}, {1.0, 1.0}}
	overheads := []int64{0, 300, 3_000, 30_000}

	var points []ablationPoint
	for _, th := range thresholds {
		cfg := core.DefaultConfig()
		cfg.ThresholdBytes = th
		points = append(points, ablationPoint{fmt.Sprintf("threshold/%d", th), cfg})
	}
	for _, st := range stalenesses {
		cfg := core.DefaultConfig()
		cfg.StalenessDecisions = st
		points = append(points, ablationPoint{fmt.Sprintf("staleness/%d", st), cfg})
	}
	for _, pair := range scalings {
		cfg := core.DefaultConfig()
		cfg.LambdaAdaptiveToBias = pair[0]
		cfg.SigmaAdaptiveToBias = pair[1]
		cfg.LambdaBiasToAdaptive = 1 / pair[0]
		cfg.SigmaBiasToAdaptive = 1 / pair[1]
		points = append(points, ablationPoint{fmt.Sprintf("scaling/%g-%g", pair[0], pair[1]), cfg})
	}
	for _, ov := range overheads {
		cfg := core.DefaultConfig()
		cfg.CounterReadOverheadCycles = ov
		points = append(points, ablationPoint{fmt.Sprintf("overhead/%d", ov), cfg})
	}

	results, err := opts.runTrials(ablationSpecs(opts, points))
	if err != nil {
		return nil, err
	}
	row := func(i int) (median, frac float64, switches uint64, err error) {
		res, err := measurements(results[i])
		if err != nil {
			return 0, 0, 0, err
		}
		m := res["AppAware"]
		return stats.Median(m.Times), m.SelectorStats.DefaultTrafficFraction(), m.SelectorStats.Switches, nil
	}

	next := 0
	threshold := trace.NewTable("Ablation: selector cumulative-size threshold (alltoall)",
		"threshold (bytes)", "median time (cycles)", "% default traffic", "switches")
	for _, th := range thresholds {
		med, frac, sw, err := row(next)
		if err != nil {
			return nil, err
		}
		next++
		threshold.AddRow(th, med, frac*100, sw)
	}

	staleness := trace.NewTable("Ablation: selector staleness window (alltoall)",
		"staleness (decisions)", "median time (cycles)", "% default traffic", "switches")
	for _, st := range stalenesses {
		med, frac, sw, err := row(next)
		if err != nil {
			return nil, err
		}
		next++
		staleness.AddRow(st, med, frac*100, sw)
	}

	scaling := trace.NewTable("Ablation: scaling factors lambda/sigma (alltoall)",
		"lambda_ad", "sigma_ad", "median time (cycles)", "% default traffic")
	for _, pair := range scalings {
		med, frac, _, err := row(next)
		if err != nil {
			return nil, err
		}
		next++
		scaling.AddRow(pair[0], pair[1], med, frac*100)
	}

	overhead := trace.NewTable("Ablation: counter read overhead (alltoall)",
		"overhead (cycles)", "median time (cycles)", "% default traffic")
	for _, ov := range overheads {
		med, frac, _, err := row(next)
		if err != nil {
			return nil, err
		}
		next++
		overhead.AddRow(ov, med, frac*100)
	}

	return []*trace.Table{threshold, staleness, scaling, overhead}, nil
}
