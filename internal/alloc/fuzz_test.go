package alloc

import "testing"

// FuzzParsePolicy fuzzes the allocation-policy parser: no panics, and every
// accepted input must round-trip through Policy.String back to the same
// policy.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"contiguous", "random", "random-scatter", "group-striped", "striped",
		"", "Contiguous", "RANDOM", "group_striped", "scatter", "x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		name := p.String()
		if name == "" {
			t.Fatalf("ParsePolicy(%q) accepted a policy with no name", s)
		}
		back, err := ParsePolicy(name)
		if err != nil || back != p {
			t.Fatalf("policy %v does not round-trip through %q: %v %v", p, name, back, err)
		}
	})
}
