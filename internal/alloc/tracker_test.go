package alloc

import (
	"math/rand"
	"testing"

	"dragonfly/internal/topo"
)

func trackerTopo(t *testing.T, groups int) *topo.Topology {
	t.Helper()
	return topo.MustNew(topo.SmallConfig(groups))
}

// TestTrackerMatchesAllocateSemantics checks the incremental allocator hands
// out the same node sets as the one-shot Allocate on an identical machine
// state, for the deterministic policies.
func TestTrackerMatchesAllocateSemantics(t *testing.T) {
	tp := trackerTopo(t, 4)
	for _, policy := range []Policy{Contiguous, GroupStriped} {
		k := NewTracker(tp)
		var got []topo.NodeID
		var exclude map[topo.NodeID]bool
		for round := 0; round < 3; round++ {
			got, _ = k.Allocate(policy, 10, nil, got[:0])
			want, err := Allocate(tp, policy, 10, nil, exclude)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want.Nodes()) {
				t.Fatalf("%v round %d: %d nodes, want %d", policy, round, len(got), len(want.Nodes()))
			}
			for i := range got {
				if got[i] != want.Nodes()[i] {
					t.Fatalf("%v round %d: tracker chose %v, Allocate chose %v",
						policy, round, got, want.Nodes())
				}
			}
			if exclude == nil {
				exclude = make(map[topo.NodeID]bool)
			}
			for _, n := range got {
				exclude[n] = true
			}
		}
	}
}

// TestTrackerFragmentationBoundary pins the metric's boundary convention:
// 0 on an empty machine and 0 on a full machine.
func TestTrackerFragmentationBoundary(t *testing.T) {
	tp := trackerTopo(t, 4)
	k := NewTracker(tp)
	if f := k.Fragmentation(); f != 0 {
		t.Fatalf("empty machine: fragmentation %v, want 0", f)
	}
	nodes, err := k.Allocate(Contiguous, tp.NumNodes(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := k.Fragmentation(); f != 0 {
		t.Fatalf("full machine: fragmentation %v, want 0", f)
	}
	// One contiguous free block is also unfragmented.
	k.Free(nodes[:16])
	if f := k.Fragmentation(); f != 0 {
		t.Fatalf("single free run: fragmentation %v, want 0", f)
	}
	k.Free(nodes[16:])
	if f := k.Fragmentation(); f != 0 {
		t.Fatalf("emptied machine: fragmentation %v, want 0", f)
	}
}

// TestTrackerFragmentationMonotone drives an adversarial interleaving: from a
// full machine, free isolated single nodes one by one (stride 2, so no two
// free nodes are ever adjacent). Every free node is its own run, so the
// metric must rise monotonically toward 1.
func TestTrackerFragmentationMonotone(t *testing.T) {
	tp := trackerTopo(t, 4)
	k := NewTracker(tp)
	if _, err := k.Allocate(Contiguous, tp.NumNodes(), nil, nil); err != nil {
		t.Fatal(err)
	}
	prev := k.Fragmentation()
	for n := 1; n < tp.NumNodes(); n += 2 {
		k.Free([]topo.NodeID{topo.NodeID(n)})
		f := k.Fragmentation()
		if f < prev {
			t.Fatalf("fragmentation dropped from %v to %v after freeing isolated node %d", prev, f, n)
		}
		if f < 0 || f > 1 {
			t.Fatalf("fragmentation %v out of [0, 1]", f)
		}
		prev = f
	}
	// total/2 single-node holes: largest run 1.
	want := 1 - 1/float64(tp.NumNodes()/2)
	if prev != want {
		t.Fatalf("checkerboard fragmentation %v, want %v", prev, want)
	}
}

// TestTrackerFreeThenReallocate checks Free returns nodes an immediate
// re-Allocate can use: drain the machine completely, free everything, and the
// next contiguous allocation gets the same first nodes again.
func TestTrackerFreeThenReallocate(t *testing.T) {
	tp := trackerTopo(t, 2)
	k := NewTracker(tp)
	rng := rand.New(rand.NewSource(9))
	first, err := k.Allocate(Contiguous, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := k.Allocate(RandomScatter, k.FreeNodes(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k.FreeNodes() != 0 {
		t.Fatalf("machine should be full, %d free", k.FreeNodes())
	}
	if _, err := k.Allocate(Contiguous, 1, nil, nil); err == nil {
		t.Fatalf("allocation on a full machine unexpectedly succeeded")
	}
	k.Free(first)
	if k.FreeNodes() != 8 {
		t.Fatalf("freed 8 nodes but %d are free", k.FreeNodes())
	}
	again, err := k.Allocate(Contiguous, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != first[i] {
			t.Fatalf("re-allocation diverged: %v vs %v", again, first)
		}
	}
	k.Free(again)
	k.Free(rest)
	if k.FreeNodes() != tp.NumNodes() {
		t.Fatalf("machine should be empty, %d/%d free", k.FreeNodes(), tp.NumNodes())
	}
}

// TestTrackerDoubleFreePanics pins the double-free guard.
func TestTrackerDoubleFreePanics(t *testing.T) {
	k := NewTracker(trackerTopo(t, 2))
	nodes, err := k.Allocate(Contiguous, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Free(nodes[:1])
	defer func() {
		if recover() == nil {
			t.Fatalf("double free did not panic")
		}
	}()
	k.Free(nodes[:1])
}

// TestTrackerMillionCycleNoLeak is the open-stream leak test, in the style of
// TestSchedulerNeverOversubscribes: a million random alloc/free cycles across
// every policy, with the free count re-derived from scratch periodically.
// Any lost or duplicated node shows up as a free-count drift.
func TestTrackerMillionCycleNoLeak(t *testing.T) {
	tp := trackerTopo(t, 4)
	k := NewTracker(tp)
	rng := rand.New(rand.NewSource(4242))
	policies := []Policy{Contiguous, RandomScatter, GroupStriped}

	type held struct{ nodes []topo.NodeID }
	var live []held
	var buf []topo.NodeID
	heldNodes := 0
	const cycles = 1_000_000
	for i := 0; i < cycles; i++ {
		if free := k.FreeNodes(); free != tp.NumNodes()-heldNodes {
			t.Fatalf("cycle %d: tracker reports %d free, bookkeeping says %d",
				i, free, tp.NumNodes()-heldNodes)
		}
		doAlloc := k.FreeNodes() > 8 && (len(live) == 0 || rng.Intn(2) == 0)
		if doAlloc {
			n := 1 + rng.Intn(8)
			buf = buf[:0]
			nodes, err := k.Allocate(policies[i%len(policies)], n, rng, buf)
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			cp := make([]topo.NodeID, len(nodes))
			copy(cp, nodes)
			live = append(live, held{nodes: cp})
			heldNodes += n
		} else {
			j := rng.Intn(len(live))
			k.Free(live[j].nodes)
			heldNodes -= len(live[j].nodes)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%100_000 == 0 {
			// Re-derive the free count from the bitset: any drift is a leak.
			busy := 0
			for n := 0; n < tp.NumNodes(); n++ {
				if k.Busy(topo.NodeID(n)) {
					busy++
				}
			}
			if busy != heldNodes {
				t.Fatalf("cycle %d: bitset holds %d busy nodes, jobs hold %d", i, busy, heldNodes)
			}
		}
	}
	for _, h := range live {
		k.Free(h.nodes)
	}
	if k.FreeNodes() != tp.NumNodes() {
		t.Fatalf("after %d cycles: %d/%d nodes free — leak", cycles, k.FreeNodes(), tp.NumNodes())
	}
	if f := k.Fragmentation(); f != 0 {
		t.Fatalf("empty machine after churn reports fragmentation %v", f)
	}
}
