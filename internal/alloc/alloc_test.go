package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dragonfly/internal/topo"
)

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range []Policy{Contiguous, RandomScatter, GroupStriped} {
		s := p.String()
		if s == "" {
			t.Fatalf("empty string for policy %d", p)
		}
		back, err := ParsePolicy(s)
		if err != nil || back != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy must still format")
	}
}

func TestAllocateContiguous(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	a, err := Allocate(tt, Contiguous, 6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 6 {
		t.Fatalf("size = %d", a.Size())
	}
	for i, n := range a.Nodes() {
		if n != topo.NodeID(i) {
			t.Fatalf("contiguous allocation not in node order: %v", a.Nodes())
		}
	}
	// 6 nodes with 2 nodes per blade -> 3 routers, 1 group.
	if a.NumRouters() != 3 || a.NumGroups() != 1 {
		t.Fatalf("routers=%d groups=%d, want 3 and 1", a.NumRouters(), a.NumGroups())
	}
	if !a.Contains(0) || a.Contains(topo.NodeID(tt.NumNodes()-1)) {
		t.Fatal("Contains wrong")
	}
	if a.Node(2) != 2 {
		t.Fatalf("Node(2) = %d", a.Node(2))
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAllocateRandomScatter(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(3))
	rng := rand.New(rand.NewSource(1))
	a, err := Allocate(tt, RandomScatter, 12, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 12 {
		t.Fatalf("size = %d", a.Size())
	}
	seen := map[topo.NodeID]bool{}
	for _, n := range a.Nodes() {
		if seen[n] {
			t.Fatal("duplicate node in allocation")
		}
		seen[n] = true
	}
	if _, err := Allocate(tt, RandomScatter, 4, nil, nil); err == nil {
		t.Fatal("RandomScatter without rng must fail")
	}
}

func TestAllocateGroupStriped(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(3))
	a, err := Allocate(tt, GroupStriped, 9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGroups() != 3 {
		t.Fatalf("striped allocation spans %d groups, want 3", a.NumGroups())
	}
	// Each group should receive 3 of the 9 nodes.
	count := map[topo.GroupID]int{}
	for _, n := range a.Nodes() {
		count[tt.GroupOfNode(n)]++
	}
	for g, c := range count {
		if c != 3 {
			t.Fatalf("group %d received %d nodes, want 3", g, c)
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	if _, err := Allocate(tt, Contiguous, 0, nil, nil); err == nil {
		t.Fatal("zero-size job must fail")
	}
	if _, err := Allocate(tt, Contiguous, tt.NumNodes()+1, nil, nil); err == nil {
		t.Fatal("oversubscription must fail")
	}
	if _, err := Allocate(tt, Policy(42), 2, nil, nil); err == nil {
		t.Fatal("unknown policy must fail")
	}
}

func TestAllocateWithExclusion(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	first, err := Allocate(tt, Contiguous, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Allocate(tt, Contiguous, 4, nil, ExcludeSet(first))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range second.Nodes() {
		if first.Contains(n) {
			t.Fatalf("node %d allocated twice", n)
		}
	}
	if len(ExcludeSet(nil, first)) != 4 {
		t.Fatal("ExcludeSet must skip nil allocations and keep others")
	}
}

func TestMustAllocatePanics(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("MustAllocate did not panic")
		}
	}()
	MustAllocate(tt, Contiguous, 0, nil, nil)
}

func TestPairForClass(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	classes := []topo.AllocationClass{
		topo.AllocSameNode, topo.AllocInterNodes, topo.AllocInterBlades,
		topo.AllocInterChassis, topo.AllocInterGroups,
	}
	for _, c := range classes {
		a, b, err := PairForClass(tt, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got := tt.Classify(a, b); got != c {
			t.Fatalf("PairForClass(%v) produced pair of class %v", c, got)
		}
	}
	// Single-group topology cannot provide inter-group pairs.
	single := topo.MustNew(topo.SmallConfig(1))
	if _, _, err := PairForClass(single, topo.AllocInterGroups); err == nil {
		t.Fatal("expected error for inter-group pair on single-group system")
	}
	if _, _, err := PairForClass(tt, topo.AllocationClass(77)); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

// Property: allocations never contain duplicates, never contain excluded
// nodes, and always have exactly the requested size.
func TestPropertyAllocationWellFormed(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(3))
	f := func(nRaw uint8, policyRaw uint8, seed int64, excludeFirst bool) bool {
		n := int(nRaw)%16 + 1
		policy := []Policy{Contiguous, RandomScatter, GroupStriped}[int(policyRaw)%3]
		rng := rand.New(rand.NewSource(seed))
		exclude := map[topo.NodeID]bool{}
		if excludeFirst {
			exclude[0] = true
			exclude[1] = true
		}
		a, err := Allocate(tt, policy, n, rng, exclude)
		if err != nil {
			return false
		}
		if a.Size() != n {
			return false
		}
		seen := map[topo.NodeID]bool{}
		for _, node := range a.Nodes() {
			if seen[node] || exclude[node] {
				return false
			}
			if int(node) < 0 || int(node) >= tt.NumNodes() {
				return false
			}
			seen[node] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
