package alloc

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dragonfly/internal/topo"
)

// Tracker is an incremental free-node allocator for long-horizon scheduling.
// Allocate (above) rebuilds the whole free list on every call — O(machine)
// work and a fresh slice per job, fine for a fixed mix of tens of jobs but
// not for an open stream of millions. A Tracker keeps the machine state
// resident instead:
//
//   - a busy bitset (one word per 64 nodes; 84 words on Daint) answers
//     membership and drives the contiguous scan,
//   - a swap-remove free list with a position index gives O(1) uniform
//     free-node draws for random scatter (no O(free) Perm),
//   - node IDs are group-contiguous by construction, so group striping walks
//     per-group ID ranges directly.
//
// Alloc and free are O(job size) plus a word-scan, and steady-state operation
// allocates nothing: callers pass the destination slice in. The Tracker also
// exposes a fragmentation metric — 1 − (largest free run)/(free nodes) — that
// is 0 on an empty or full machine and approaches 1 as the free capacity
// shatters into single-node holes.
//
// A Tracker is not safe for concurrent use; like the scheduler it backs, all
// calls must come from the simulation goroutine.
type Tracker struct {
	total         int
	nodesPerGroup int
	groups        int

	words []uint64 // busy bitset, bit n%64 of word n/64
	free  int

	// freeList holds every free node exactly once, in arbitrary order;
	// pos[n] is node n's index in it, -1 while busy. Swap-remove keeps
	// both O(1) per transition.
	freeList []topo.NodeID
	pos      []int32
}

// NewTracker builds a tracker over the machine with every node free.
func NewTracker(t *topo.Topology) *Tracker {
	total := t.NumNodes()
	cfg := t.Config()
	k := &Tracker{
		total:         total,
		nodesPerGroup: cfg.RoutersPerGroup() * cfg.NodesPerBlade,
		groups:        cfg.Groups,
		words:         make([]uint64, (total+63)/64),
		free:          total,
		freeList:      make([]topo.NodeID, total),
		pos:           make([]int32, total),
	}
	for i := 0; i < total; i++ {
		k.freeList[i] = topo.NodeID(i)
		k.pos[i] = int32(i)
	}
	return k
}

// NumNodes returns the machine size.
func (k *Tracker) NumNodes() int { return k.total }

// FreeNodes returns the number of currently free nodes.
func (k *Tracker) FreeNodes() int { return k.free }

// Busy reports whether node n is currently allocated.
func (k *Tracker) Busy(n topo.NodeID) bool {
	return k.words[uint(n)/64]&(1<<(uint(n)%64)) != 0
}

// markBusy transitions one free node to busy.
func (k *Tracker) markBusy(n topo.NodeID) {
	k.words[uint(n)/64] |= 1 << (uint(n) % 64)
	// Swap-remove from the free list.
	i := k.pos[n]
	last := k.freeList[k.free-1]
	k.freeList[i] = last
	k.pos[last] = i
	k.pos[n] = -1
	k.free--
}

// markFree transitions one busy node back to free.
func (k *Tracker) markFree(n topo.NodeID) {
	k.words[uint(n)/64] &^= 1 << (uint(n) % 64)
	k.freeList[k.free] = n
	k.pos[n] = int32(k.free)
	k.free++
}

// Reserve marks the given nodes busy without tying them to an allocation
// (e.g. nodes held by a measured foreground job). Already-busy nodes are
// ignored. Reserved nodes come back only through Free.
func (k *Tracker) Reserve(nodes []topo.NodeID) {
	for _, n := range nodes {
		if !k.Busy(n) {
			k.markBusy(n)
		}
	}
}

// Allocate chooses n free nodes under the given policy, marks them busy and
// appends them to out (pass a recycled slice with out[:0] for an
// allocation-free steady state). rng is required by RandomScatter. The chosen
// node order matches Allocate's: ascending for Contiguous, draw order for
// RandomScatter, round-robin passes for GroupStriped.
func (k *Tracker) Allocate(policy Policy, n int, rng *rand.Rand, out []topo.NodeID) ([]topo.NodeID, error) {
	if n <= 0 {
		return out, fmt.Errorf("alloc: job size must be positive, got %d", n)
	}
	if n > k.free {
		return out, fmt.Errorf("alloc: requested %d nodes but only %d are free", n, k.free)
	}
	base := len(out)
	switch policy {
	case Contiguous:
		// First n free nodes in ID order: scan busy words for zero bits.
		remaining := n
		for w := 0; remaining > 0; w++ {
			word := ^k.words[w]
			if hi := (w + 1) * 64; hi > k.total {
				word &= (1 << (uint(k.total) % 64)) - 1
			}
			for word != 0 && remaining > 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				out = append(out, topo.NodeID(w*64+b))
				remaining--
			}
		}
	case RandomScatter:
		if rng == nil {
			return out, fmt.Errorf("alloc: RandomScatter requires a random source")
		}
		for i := 0; i < n; i++ {
			out = append(out, k.freeList[rng.Intn(k.free)])
			// Mark immediately so the next draw excludes it; the remaining
			// free prefix stays uniform (swap-remove is order-agnostic).
			k.markBusy(out[len(out)-1])
		}
		return out, nil
	case GroupStriped:
		// Round-robin over groups, taking each group's lowest free node per
		// pass (the incremental equivalent of striping over per-group free
		// lists).
		remaining := n
		for remaining > 0 {
			progressed := false
			for g := 0; g < k.groups && remaining > 0; g++ {
				node, ok := k.lowestFreeInRange(g*k.nodesPerGroup, min((g+1)*k.nodesPerGroup, k.total))
				if !ok {
					continue
				}
				out = append(out, node)
				k.markBusy(node)
				remaining--
				progressed = true
			}
			if !progressed {
				// Cannot happen while free >= remaining, but guard like
				// Allocate does.
				k.Free(out[base:])
				return out[:base], fmt.Errorf("alloc: ran out of nodes while striping")
			}
		}
		return out, nil
	default:
		return out, fmt.Errorf("alloc: unknown policy %d", policy)
	}
	for _, node := range out[base:] {
		k.markBusy(node)
	}
	return out, nil
}

// lowestFreeInRange returns the lowest free node ID in [lo, hi), if any.
func (k *Tracker) lowestFreeInRange(lo, hi int) (topo.NodeID, bool) {
	for w := lo / 64; w*64 < hi; w++ {
		word := ^k.words[w]
		if first := w * 64; first < lo {
			word &^= (1 << (uint(lo) % 64)) - 1
		}
		if last := (w + 1) * 64; last > hi {
			word &= (1 << (uint(hi) % 64)) - 1
		}
		if word != 0 {
			return topo.NodeID(w*64 + bits.TrailingZeros64(word)), true
		}
	}
	return 0, false
}

// Free returns the given nodes to the free pool. Freeing an already-free node
// panics: that is a double-free in the scheduler above, and silently ignoring
// it would corrupt the utilization accounting.
func (k *Tracker) Free(nodes []topo.NodeID) {
	for _, n := range nodes {
		if !k.Busy(n) {
			panic(fmt.Sprintf("alloc: double free of node %d", n))
		}
		k.markFree(n)
	}
}

// Fragmentation measures how shattered the free capacity is:
// 1 − (largest contiguous free ID run)/(free nodes). It is 0 on an empty
// machine (one run covers everything), 0 on a full machine (nothing free, by
// convention), and approaches 1 when the free nodes are scattered single
// holes no contiguous job can use. The scan is O(words), ~84 on Daint.
func (k *Tracker) Fragmentation() float64 {
	if k.free == 0 || k.free == k.total {
		return 0
	}
	largest, run := 0, 0
	for w := 0; w*64 < k.total; w++ {
		word := k.words[w]
		n := 64
		if hi := (w + 1) * 64; hi > k.total {
			n = k.total - w*64
			word |= ^uint64(0) << uint(n) // pad beyond the machine as busy
		}
		if word == 0 {
			run += n
			continue
		}
		// Walk the busy bits; zeros between them extend the current run.
		prev := 0
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			run += b - prev
			if run > largest {
				largest = run
			}
			run = 0
			prev = b + 1
		}
		run = n - prev
	}
	if run > largest {
		largest = run
	}
	return 1 - float64(largest)/float64(k.free)
}
