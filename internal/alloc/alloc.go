// Package alloc builds node allocations for simulated jobs. The paper shows
// (§3.1, Figure 3) that the process-to-node allocation dominates both the
// median and the variance of communication performance, so experiments must
// fix the allocation; this package provides the allocation policies used by
// the experiments (contiguous, random scatter, group-striped) and helpers to
// construct node pairs of a specific topological distance class.
package alloc

import (
	"fmt"
	"math/rand"

	"dragonfly/internal/topo"
)

// Policy selects how nodes are assigned to a job.
type Policy uint8

const (
	// Contiguous allocates the first free nodes in node-id order, filling
	// blades, chassis and groups one after the other (the "localized"
	// allocation of the related-work discussion).
	Contiguous Policy = iota
	// RandomScatter allocates nodes uniformly at random over the whole
	// machine, the typical outcome on a busy production system.
	RandomScatter
	// GroupStriped distributes nodes round-robin over the groups, giving each
	// group a roughly equal share of the job.
	GroupStriped
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Contiguous:
		return "contiguous"
	case RandomScatter:
		return "random"
	case GroupStriped:
		return "group-striped"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy converts a policy name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "contiguous":
		return Contiguous, nil
	case "random":
		return RandomScatter, nil
	case "group-striped", "striped":
		return GroupStriped, nil
	default:
		return Contiguous, fmt.Errorf("alloc: unknown policy %q", s)
	}
}

// Allocation is a set of nodes assigned to one job.
type Allocation struct {
	topo  *topo.Topology
	nodes []topo.NodeID
}

// NewAllocation wraps an explicit node list.
func NewAllocation(t *topo.Topology, nodes []topo.NodeID) *Allocation {
	cp := append([]topo.NodeID(nil), nodes...)
	return &Allocation{topo: t, nodes: cp}
}

// Nodes returns the allocated nodes in rank order. The caller must not modify
// the returned slice.
func (a *Allocation) Nodes() []topo.NodeID { return a.nodes }

// Size returns the number of allocated nodes.
func (a *Allocation) Size() int { return len(a.nodes) }

// Node returns the node assigned to the given rank.
func (a *Allocation) Node(rank int) topo.NodeID { return a.nodes[rank] }

// Routers returns the set of routers (blades) touched by the allocation.
func (a *Allocation) Routers() map[topo.RouterID]bool {
	out := make(map[topo.RouterID]bool)
	for _, n := range a.nodes {
		out[a.topo.RouterOfNode(n)] = true
	}
	return out
}

// Groups returns the set of groups touched by the allocation.
func (a *Allocation) Groups() map[topo.GroupID]bool {
	out := make(map[topo.GroupID]bool)
	for _, n := range a.nodes {
		out[a.topo.GroupOfNode(n)] = true
	}
	return out
}

// NumRouters returns the number of distinct routers used by the allocation
// (the paper reports e.g. "257 Aries routers spanning over 6 groups").
func (a *Allocation) NumRouters() int { return len(a.Routers()) }

// NumGroups returns the number of distinct groups used by the allocation.
func (a *Allocation) NumGroups() int { return len(a.Groups()) }

// Contains reports whether the allocation includes the node.
func (a *Allocation) Contains(n topo.NodeID) bool {
	for _, x := range a.nodes {
		if x == n {
			return true
		}
	}
	return false
}

// String summarizes the allocation.
func (a *Allocation) String() string {
	return fmt.Sprintf("%d nodes over %d routers in %d groups",
		a.Size(), a.NumRouters(), a.NumGroups())
}

// Allocate builds an allocation of n nodes using the given policy. Nodes in
// exclude are skipped (they belong to other jobs). rng is required by
// RandomScatter and ignored otherwise.
func Allocate(t *topo.Topology, policy Policy, n int, rng *rand.Rand, exclude map[topo.NodeID]bool) (*Allocation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: job size must be positive, got %d", n)
	}
	total := t.NumNodes()
	free := make([]topo.NodeID, 0, total)
	for i := 0; i < total; i++ {
		id := topo.NodeID(i)
		if exclude != nil && exclude[id] {
			continue
		}
		free = append(free, id)
	}
	if len(free) < n {
		return nil, fmt.Errorf("alloc: requested %d nodes but only %d are free", n, len(free))
	}

	var chosen []topo.NodeID
	switch policy {
	case Contiguous:
		chosen = append(chosen, free[:n]...)
	case RandomScatter:
		if rng == nil {
			return nil, fmt.Errorf("alloc: RandomScatter requires a random source")
		}
		perm := rng.Perm(len(free))
		chosen = make([]topo.NodeID, n)
		for i := 0; i < n; i++ {
			chosen[i] = free[perm[i]]
		}
	case GroupStriped:
		byGroup := make(map[topo.GroupID][]topo.NodeID)
		var groups []topo.GroupID
		for _, id := range free {
			g := t.GroupOfNode(id)
			if _, ok := byGroup[g]; !ok {
				groups = append(groups, g)
			}
			byGroup[g] = append(byGroup[g], id)
		}
		chosen = make([]topo.NodeID, 0, n)
		for i := 0; len(chosen) < n; i++ {
			progressed := false
			for _, g := range groups {
				if len(chosen) >= n {
					break
				}
				if i < len(byGroup[g]) {
					chosen = append(chosen, byGroup[g][i])
					progressed = true
				}
			}
			if !progressed {
				return nil, fmt.Errorf("alloc: ran out of nodes while striping")
			}
		}
	default:
		return nil, fmt.Errorf("alloc: unknown policy %d", policy)
	}
	return NewAllocation(t, chosen), nil
}

// MustAllocate is like Allocate but panics on error. Intended for examples and
// tests with known-good parameters.
func MustAllocate(t *topo.Topology, policy Policy, n int, rng *rand.Rand, exclude map[topo.NodeID]bool) *Allocation {
	a, err := Allocate(t, policy, n, rng, exclude)
	if err != nil {
		panic(err)
	}
	return a
}

// ExcludeSet builds an exclusion set from a list of allocations, so a new job
// can be placed on the remaining nodes.
func ExcludeSet(allocs ...*Allocation) map[topo.NodeID]bool {
	out := make(map[topo.NodeID]bool)
	for _, a := range allocs {
		if a == nil {
			continue
		}
		for _, n := range a.Nodes() {
			out[n] = true
		}
	}
	return out
}

// PairForClass returns two distinct nodes whose topological distance matches
// the requested allocation class (used by the Figure 3/5/7 experiments). It
// returns an error when the topology cannot provide such a pair (for example
// AllocInterGroups on a single-group system).
func PairForClass(t *topo.Topology, class topo.AllocationClass) (a, b topo.NodeID, err error) {
	cfg := t.Config()
	first := topo.NodeID(0)
	switch class {
	case topo.AllocSameNode:
		return first, first, nil
	case topo.AllocInterNodes:
		if cfg.NodesPerBlade < 2 {
			return 0, 0, fmt.Errorf("alloc: topology has fewer than 2 nodes per blade")
		}
		return first, first + 1, nil
	case topo.AllocInterBlades:
		if cfg.BladesPerChassis < 2 {
			return 0, 0, fmt.Errorf("alloc: topology has fewer than 2 blades per chassis")
		}
		other := t.NodesOfRouter(t.RouterAt(topo.Coord{Group: 0, Chassis: 0, Blade: 1}))[0]
		return first, other, nil
	case topo.AllocInterChassis:
		if cfg.ChassisPerGroup < 2 {
			return 0, 0, fmt.Errorf("alloc: topology has fewer than 2 chassis per group")
		}
		other := t.NodesOfRouter(t.RouterAt(topo.Coord{Group: 0, Chassis: 1, Blade: 0}))[0]
		return first, other, nil
	case topo.AllocInterGroups:
		if cfg.Groups < 2 {
			return 0, 0, fmt.Errorf("alloc: topology has fewer than 2 groups")
		}
		other := t.NodesOfRouter(t.RouterAt(topo.Coord{Group: 1, Chassis: 0, Blade: 0}))[0]
		return first, other, nil
	default:
		return 0, 0, fmt.Errorf("alloc: unknown allocation class %v", class)
	}
}
