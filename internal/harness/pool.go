package harness

import (
	"dragonfly"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
)

// envKey is the system-construction configuration of a TrialSpec: two specs
// with equal keys hand dragonfly.New identical options and therefore build
// byte-identical machines (up to the seed). The nil-ness of the optional
// overrides is part of the key — the harness deliberately does not resolve
// defaults itself, so it can never drift from the facade's own resolution.
// All fields are comparable value types, so key equality is plain ==.
type envKey struct {
	geometry      topo.Config
	shards        int
	variant       routing.Variant
	staleness     int
	decisionTrace int
	hasRouting    bool
	routing       routing.Params
	hasNetwork    bool
	network       network.Config
}

// specKey extracts the construction-affecting fields of a spec.
func specKey(spec TrialSpec) envKey {
	k := envKey{geometry: spec.Geometry, shards: spec.Shards, variant: spec.Variant,
		staleness: spec.Staleness, decisionTrace: spec.DecisionTraceK}
	if spec.RoutingParams != nil {
		k.hasRouting, k.routing = true, *spec.RoutingParams
	}
	if spec.Network != nil {
		k.hasNetwork, k.network = true, *spec.Network
	}
	return k
}

// systemPool is a single-slot, single-goroutine cache of the most recently
// built System. Experiment sweeps run many trials over the same geometry and
// fabric configuration, differing only in seed and measurement; reusing the
// System through dragonfly.System.Reset skips topology construction and
// routing-table derivation entirely, which used to dominate trial setup.
// Reset is byte-identical to a fresh build (the facade guarantees it, and the
// serial-vs-parallel determinism tests exercise both reuse patterns), so
// pooling never changes results. Each executor worker owns one pool; pools
// are never shared across goroutines.
type systemPool struct {
	key   envKey
	sys   *dragonfly.System
	valid bool
}

// acquire returns a System for the spec, reusing the cached one when the
// construction key matches. A nil pool always builds fresh.
func (p *systemPool) acquire(spec TrialSpec, seed int64) (*dragonfly.System, error) {
	var key envKey
	if p != nil {
		key = specKey(spec)
		if p.valid && p.key == key {
			if err := p.sys.Reset(seed); err == nil {
				return p.sys, nil
			}
			p.valid = false
		}
	}
	opts := []dragonfly.Option{
		dragonfly.WithGeometry(spec.Geometry),
		dragonfly.WithSeed(seed),
	}
	if spec.Shards > 0 {
		opts = append(opts, dragonfly.WithShards(spec.Shards))
	}
	if spec.Variant != routing.ExactUGAL {
		opts = append(opts, dragonfly.WithRoutingVariant(spec.Variant))
	}
	if spec.Staleness > 1 {
		opts = append(opts, dragonfly.WithReplicaStaleness(spec.Staleness))
	}
	if spec.DecisionTraceK > 0 {
		opts = append(opts, dragonfly.WithDecisionTrace(spec.DecisionTraceK))
	}
	if spec.RoutingParams != nil {
		opts = append(opts, dragonfly.WithRouting(*spec.RoutingParams))
	}
	if spec.Network != nil {
		opts = append(opts, dragonfly.WithNetworkConfig(*spec.Network))
	}
	sys, err := dragonfly.New(opts...)
	if err != nil {
		return nil, err
	}
	if p != nil {
		p.key, p.sys, p.valid = key, sys, true
	}
	return sys, nil
}

// invalidate drops the cached system, e.g. after a trial panicked and may
// have left it in an undefined state.
func (p *systemPool) invalidate() {
	if p != nil {
		p.sys, p.valid = nil, false
	}
}
