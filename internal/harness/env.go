package harness

import (
	"context"
	"fmt"
	"math/rand"

	"dragonfly"
	"dragonfly/internal/alloc"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// Env is the private simulated system of one trial. It is a thin adapter over
// the public dragonfly.System facade: the trial harness contributes only the
// seed derivation and the measurement loop, while the system wiring
// (topology, engine, fabric, allocation RNG) comes from dragonfly.New. An Env
// is built fresh per trial and never shared, so everything on it may be used
// without synchronization inside the trial body.
type Env struct {
	// Spec is the declaration this environment was built from.
	Spec TrialSpec
	// Seed is the derived trial seed (see TrialSeed).
	Seed int64
	// Sys is the public-facade system the trial runs on. Trial bodies may use
	// it directly (System.JobFromNodes + Job.Run cover most measurements).
	Sys *dragonfly.System
	// Topo is the constructed topology (same as Sys.Topology()).
	Topo *topo.Topology
	// Engine is the trial's discrete-event engine (same as Sys.Engine()).
	Engine *sim.Engine
	// Fabric is the simulated network (same as Sys.Fabric()).
	Fabric *network.Fabric
	// Rng drives allocation placement and other trial-local choices (same
	// stream as Sys.Rand()).
	Rng *rand.Rand
}

// NewEnv builds the simulated system a trial runs on.
func NewEnv(spec TrialSpec, seed int64) (*Env, error) {
	return newEnv(spec, seed, nil)
}

// newEnv builds an Env, drawing the System from the worker's pool when one is
// provided (reusing a same-configuration System via Reset) and building a
// fresh one otherwise.
func newEnv(spec TrialSpec, seed int64, pool *systemPool) (*Env, error) {
	sys, err := pool.acquire(spec, seed)
	if err != nil {
		return nil, err
	}
	return &Env{
		Spec:   spec,
		Seed:   seed,
		Sys:    sys,
		Topo:   sys.Topology(),
		Engine: sys.Engine(),
		Fabric: sys.Fabric(),
		Rng:    sys.Rand(),
	}, nil
}

// AllocateJob places an n-node job with the given policy.
//
// Unlike dragonfly.System.Allocate (which fails with ErrJobTooLarge), the
// request is clamped to the free nodes of the machine. This clamp is
// load-bearing for the experiment runners: suite-level flags like -nodes
// apply one job size to several geometries, and trials on the smaller
// geometries are expected to run machine-filling jobs rather than fail.
// TestAllocateJobClampsToMachine pins the behaviour.
func (e *Env) AllocateJob(policy alloc.Policy, n int) (*alloc.Allocation, error) {
	if free := e.Sys.FreeNodes(); n > free {
		n = free
	}
	j, err := e.Sys.Allocate(policy, n)
	if err != nil {
		return nil, err
	}
	return j.Allocation(), nil
}

// AllocatePair returns a two-node allocation of the given topological class.
func (e *Env) AllocatePair(class topo.AllocationClass) (*alloc.Allocation, error) {
	j, err := e.Sys.AllocatePair(class)
	if err != nil {
		return nil, err
	}
	return j.Allocation(), nil
}

// StartNoise places a background job on nodes disjoint from the excluded
// allocations and starts it until DefaultHorizon. It returns nil when there
// is not enough room for a background job (small test topologies).
//
// Allocations built outside the system (alloc.Allocate / alloc.NewAllocation,
// as some trial bodies do) are registered with it here — via JobFromNodes —
// so their nodes stay excluded from the noise placement and from any later
// allocation on this Env.
func (e *Env) StartNoise(spec NoiseSpec, exclude ...*alloc.Allocation) *noise.Generator {
	for _, a := range exclude {
		if a == nil {
			continue
		}
		e.Sys.JobFromNodes(a.Nodes())
	}
	return e.Sys.StartNoise(spec)
}

// JobCounters sums the NIC counters of all nodes of an allocation.
func JobCounters(f *network.Fabric, a *alloc.Allocation) counters.NIC {
	var total counters.NIC
	for _, n := range a.Nodes() {
		total.Add(f.NodeCounters(n))
	}
	return total
}

// MeasureSetups runs the workload under every routing setup, alternating the
// setups on successive iterations (as the paper does, so that transient noise
// does not penalize a single configuration), and returns one Measurement per
// setup keyed by name. The context is checked before the first iteration,
// between iterations, and periodically while an iteration's simulation
// advances, so a cancelled suite stops mid-measurement.
//
// This is the harness-only measurement shape; single-setup runs should go
// through the facade's Job.Run, which Measure mirrors.
func (e *Env) MeasureSetups(ctx context.Context, a *alloc.Allocation, setups []RoutingSetup,
	hostNoise func(int) int64, w workloads.Workload, iterations int) (Measurements, error) {

	comms := make([]*mpi.Comm, len(setups))
	for i, s := range setups {
		c, err := mpi.NewComm(e.Fabric, a, mpi.Config{Routing: s.Provider, HostNoise: hostNoise})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	out := make(Measurements, len(setups))
	for _, s := range setups {
		out[s.Name] = &Measurement{}
	}
	for iter := 0; iter < iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cancelled at iteration %d: %w", iter, err)
		}
		for i, s := range setups {
			before := JobCounters(e.Fabric, a)
			start := e.Engine.Now()
			// RunContext (not Run) so cancellation also interrupts a
			// long-running iteration, not just the gaps between iterations.
			if err := comms[i].RunContext(ctx, w.Run); err != nil {
				return nil, fmt.Errorf("iteration %d, setup %s: %w", iter, s.Name, err)
			}
			for r := 0; r < comms[i].Size(); r++ {
				if err := comms[i].Rank(r).Err(); err != nil {
					return nil, fmt.Errorf("setup %s rank %d: %w", s.Name, r, err)
				}
			}
			elapsed := float64(e.Engine.Now() - start)
			m := out[s.Name]
			m.Times = append(m.Times, elapsed)
			m.Deltas = append(m.Deltas, JobCounters(e.Fabric, a).Sub(before))
		}
	}
	for _, s := range setups {
		if s.Stats != nil {
			out[s.Name].SelectorStats = s.Stats()
		}
	}
	return out, nil
}

// MeasureSingle is a convenience wrapper measuring a single routing setup.
func (e *Env) MeasureSingle(ctx context.Context, a *alloc.Allocation, setup RoutingSetup,
	hostNoise func(int) int64, w workloads.Workload, iterations int) (*Measurement, error) {
	res, err := e.MeasureSetups(ctx, a, []RoutingSetup{setup}, hostNoise, w, iterations)
	if err != nil {
		return nil, err
	}
	return res[setup.Name], nil
}

// runDeclarative is the default trial body: allocate the job as declared,
// start the background noise, and measure every setup on the workload.
func runDeclarative(ctx context.Context, e *Env) (any, error) {
	spec := e.Spec
	if spec.Workload == nil || spec.Setups == nil {
		return nil, fmt.Errorf("declarative spec incomplete: need Workload and Setups (or a Body)")
	}
	var job *alloc.Allocation
	var err error
	switch {
	case len(spec.FixedNodes) > 0:
		job = alloc.NewAllocation(e.Topo, spec.FixedNodes)
	case spec.PairAlloc:
		job, err = e.AllocatePair(spec.PairClass)
	default:
		job, err = e.AllocateJob(spec.Placement, spec.JobNodes)
	}
	if err != nil {
		return nil, err
	}
	if spec.Noise != nil {
		e.StartNoise(*spec.Noise, job)
	}
	var hostNoise func(int) int64
	if spec.HostNoise != nil {
		hostNoise = spec.HostNoise()
	}
	iters := spec.Iterations
	if iters < 1 {
		iters = 1
	}
	return e.MeasureSetups(ctx, job, spec.Setups(), hostNoise, spec.Workload(job.Size()), iters)
}
