package harness

import (
	"context"
	"fmt"
	"math/rand"

	"dragonfly/internal/alloc"
	"dragonfly/internal/counters"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// Env is the private simulated system of one trial: topology, event engine,
// fabric and allocation RNG, all seeded from the trial seed. An Env is built
// fresh per trial and never shared, so everything on it may be used without
// synchronization inside the trial body.
type Env struct {
	// Spec is the declaration this environment was built from.
	Spec TrialSpec
	// Seed is the derived trial seed (see TrialSeed).
	Seed int64
	// Topo is the constructed topology.
	Topo *topo.Topology
	// Engine is the trial's discrete-event engine.
	Engine *sim.Engine
	// Fabric is the simulated network.
	Fabric *network.Fabric
	// Rng drives allocation placement and other trial-local choices.
	Rng *rand.Rand
}

// NewEnv builds the simulated system a trial runs on.
func NewEnv(spec TrialSpec, seed int64) (*Env, error) {
	t, err := topo.New(spec.Geometry)
	if err != nil {
		return nil, err
	}
	params := routing.DefaultParams()
	if spec.RoutingParams != nil {
		params = *spec.RoutingParams
	}
	pol, err := routing.NewPolicy(t, params)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(seed)
	ncfg := network.DefaultConfig()
	if spec.Network != nil {
		ncfg = *spec.Network
	}
	fab, err := network.New(engine, t, pol, ncfg)
	if err != nil {
		return nil, err
	}
	return &Env{
		Spec:   spec,
		Seed:   seed,
		Topo:   t,
		Engine: engine,
		Fabric: fab,
		Rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// AllocateJob places an n-node job with the given policy, capping n at the
// machine size.
func (e *Env) AllocateJob(policy alloc.Policy, n int) (*alloc.Allocation, error) {
	if n > e.Topo.NumNodes() {
		n = e.Topo.NumNodes()
	}
	return alloc.Allocate(e.Topo, policy, n, e.Rng, nil)
}

// AllocatePair returns a two-node allocation of the given topological class.
func (e *Env) AllocatePair(class topo.AllocationClass) (*alloc.Allocation, error) {
	a, b, err := alloc.PairForClass(e.Topo, class)
	if err != nil {
		return nil, err
	}
	return alloc.NewAllocation(e.Topo, []topo.NodeID{a, b}), nil
}

// StartNoise places a background job on nodes disjoint from the excluded
// allocations and starts it until DefaultHorizon. It returns nil when there
// is not enough room for a background job (small test topologies).
func (e *Env) StartNoise(spec NoiseSpec, exclude ...*alloc.Allocation) *noise.Generator {
	used := alloc.ExcludeSet(exclude...)
	n := spec.Nodes
	if free := e.Topo.NumNodes() - len(used); n > free {
		n = free
	}
	if n < 2 {
		return nil
	}
	a, err := alloc.Allocate(e.Topo, alloc.RandomScatter, n, e.Rng, used)
	if err != nil {
		return nil
	}
	cfg := noise.DefaultGeneratorConfig()
	cfg.Pattern = spec.Pattern
	if spec.IntervalCycles > 0 {
		cfg.IntervalCycles = spec.IntervalCycles
	}
	if spec.MessageBytes > 0 {
		cfg.MessageBytes = spec.MessageBytes
	}
	cfg.Seed = int64(mix64(uint64(e.Seed)) ^ uint64(spec.Pattern))
	g, err := noise.FromAllocation(e.Fabric, a, cfg)
	if err != nil {
		return nil
	}
	g.Start(DefaultHorizon)
	return g
}

// JobCounters sums the NIC counters of all nodes of an allocation.
func JobCounters(f *network.Fabric, a *alloc.Allocation) counters.NIC {
	var total counters.NIC
	for _, n := range a.Nodes() {
		total.Add(f.NodeCounters(n))
	}
	return total
}

// MeasureSetups runs the workload under every routing setup, alternating the
// setups on successive iterations (as the paper does, so that transient noise
// does not penalize a single configuration), and returns one Measurement per
// setup keyed by name. The context is checked between iterations so a
// cancelled suite stops mid-measurement.
func (e *Env) MeasureSetups(ctx context.Context, a *alloc.Allocation, setups []RoutingSetup,
	hostNoise func(int) int64, w workloads.Workload, iterations int) (Measurements, error) {

	comms := make([]*mpi.Comm, len(setups))
	for i, s := range setups {
		c, err := mpi.NewComm(e.Fabric, a, mpi.Config{Routing: s.Provider, HostNoise: hostNoise})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	out := make(Measurements, len(setups))
	for _, s := range setups {
		out[s.Name] = &Measurement{}
	}
	for iter := 0; iter < iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cancelled at iteration %d: %w", iter, err)
		}
		for i, s := range setups {
			before := JobCounters(e.Fabric, a)
			start := e.Engine.Now()
			if err := comms[i].Run(w.Run); err != nil {
				return nil, fmt.Errorf("iteration %d, setup %s: %w", iter, s.Name, err)
			}
			for r := 0; r < comms[i].Size(); r++ {
				if err := comms[i].Rank(r).Err(); err != nil {
					return nil, fmt.Errorf("setup %s rank %d: %w", s.Name, r, err)
				}
			}
			elapsed := float64(e.Engine.Now() - start)
			m := out[s.Name]
			m.Times = append(m.Times, elapsed)
			m.Deltas = append(m.Deltas, JobCounters(e.Fabric, a).Sub(before))
		}
	}
	for _, s := range setups {
		if s.Stats != nil {
			out[s.Name].SelectorStats = s.Stats()
		}
	}
	return out, nil
}

// MeasureSingle is a convenience wrapper measuring a single routing setup.
func (e *Env) MeasureSingle(ctx context.Context, a *alloc.Allocation, setup RoutingSetup,
	hostNoise func(int) int64, w workloads.Workload, iterations int) (*Measurement, error) {
	res, err := e.MeasureSetups(ctx, a, []RoutingSetup{setup}, hostNoise, w, iterations)
	if err != nil {
		return nil, err
	}
	return res[setup.Name], nil
}

// runDeclarative is the default trial body: allocate the job as declared,
// start the background noise, and measure every setup on the workload.
func runDeclarative(ctx context.Context, e *Env) (any, error) {
	spec := e.Spec
	if spec.Workload == nil || spec.Setups == nil {
		return nil, fmt.Errorf("declarative spec incomplete: need Workload and Setups (or a Body)")
	}
	var job *alloc.Allocation
	var err error
	switch {
	case len(spec.FixedNodes) > 0:
		job = alloc.NewAllocation(e.Topo, spec.FixedNodes)
	case spec.PairAlloc:
		job, err = e.AllocatePair(spec.PairClass)
	default:
		job, err = e.AllocateJob(spec.Placement, spec.JobNodes)
	}
	if err != nil {
		return nil, err
	}
	if spec.Noise != nil {
		e.StartNoise(*spec.Noise, job)
	}
	var hostNoise func(int) int64
	if spec.HostNoise != nil {
		hostNoise = spec.HostNoise()
	}
	iters := spec.Iterations
	if iters < 1 {
		iters = 1
	}
	return e.MeasureSetups(ctx, job, spec.Setups(), hostNoise, spec.Workload(job.Size()), iters)
}
