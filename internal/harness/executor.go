package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Progress reports one finished trial. Callbacks arrive in completion order
// (not spec order) and are serialized — no two callbacks run concurrently.
type Progress struct {
	// Completed counts trials finished so far, Total the suite size.
	Completed, Total int
	// Index is the spec index of the finished trial.
	Index int
	// ID is the trial id.
	ID string
	// Err is the trial error, if any.
	Err error
	// Elapsed is the wall-clock time the trial took.
	Elapsed time.Duration
}

// Result is the outcome of one trial.
type Result struct {
	// Index is the position of the trial in the spec slice.
	Index int
	// Spec is the declaration the trial ran from.
	Spec TrialSpec
	// Seed is the derived seed the trial used.
	Seed int64
	// Value is what the trial body returned (Measurements for the default
	// declarative body).
	Value any
	// Err is the trial error: a build/measure failure, a captured panic, or
	// the context error for trials skipped after cancellation.
	Err error
	// Elapsed is the wall-clock time the trial took.
	Elapsed time.Duration
}

// Executor fans trials out across a pool of worker goroutines. Trials are
// independent by construction (each builds a private Env from a seed derived
// only from Seed and the trial id), so the worker count changes wall-clock
// time but never results.
type Executor struct {
	// Parallel is the worker count: 0 means GOMAXPROCS, 1 runs serially.
	Parallel int
	// Seed is the suite seed every trial seed is derived from.
	Seed int64
	// OnProgress, if non-nil, receives one serialized callback per finished
	// trial, in completion order.
	OnProgress func(Progress)
	// OnResult, if non-nil, receives every result in spec order as soon as
	// the trial and all its predecessors have finished — a reorder buffer, so
	// streaming aggregation sees the same order a serial run would produce.
	OnResult func(Result)
}

// Run executes the trials and returns their results indexed like specs. The
// first trial failure cancels the rest of the suite: queued trials are
// skipped and in-flight measurements abort at their next iteration check.
// The returned error is the first real (non-cancellation) trial error in
// spec order, or the first cancellation error when the caller's context was
// the cause.
func (x *Executor) Run(ctx context.Context, specs []TrialSpec) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateIDs(specs); err != nil {
		return nil, err
	}
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	workers := x.Parallel
	if workers <= 0 {
		// The default budget is trials × shards ≤ GOMAXPROCS: a suite of
		// sharded trials divides the machine between inter-trial and
		// intra-trial parallelism instead of oversubscribing it.
		workers = runtime.GOMAXPROCS(0) / maxShards(specs)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, len(specs))
	var (
		mu        sync.Mutex // guards done, completed, next and the callbacks
		done      int
		completed = make([]bool, len(specs))
		next      int
	)
	finish := func(i int, res Result) {
		if res.Err != nil {
			cancelRun()
		}
		mu.Lock()
		defer mu.Unlock()
		results[i] = res
		completed[i] = true
		done++
		if x.OnProgress != nil {
			x.OnProgress(Progress{
				Completed: done, Total: len(specs),
				Index: i, ID: res.Spec.ID, Err: res.Err, Elapsed: res.Elapsed,
			})
		}
		if x.OnResult != nil {
			for next < len(specs) && completed[next] {
				x.OnResult(results[next])
				next++
			}
		}
	}

	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a single-slot system pool: consecutive trials
			// with the same geometry/routing/fabric configuration reuse one
			// constructed System through Reset instead of rebuilding topology
			// and routing tables from scratch.
			pool := &systemPool{}
			for i := range indexes {
				finish(i, x.runOne(runCtx, i, specs[i], pool))
			}
		}()
	}
	for i := range specs {
		indexes <- i
	}
	close(indexes)
	wg.Wait()

	// Report the first real failure in spec order; trials that merely saw the
	// suite's own abort (context.Canceled) only matter when nothing else
	// failed, i.e. the caller cancelled.
	var firstErr error
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		wrapped := fmt.Errorf("harness: trial %q: %w", r.Spec.ID, r.Err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if !errors.Is(r.Err, context.Canceled) {
			return results, wrapped
		}
	}
	return results, firstErr
}

// runOne executes a single trial, converting panics into errors so one broken
// trial cannot take down the whole suite. The worker's system pool is
// invalidated when the trial panics, since a panic mid-simulation can leave
// the cached system in an undefined state.
func (x *Executor) runOne(ctx context.Context, i int, spec TrialSpec, pool *systemPool) (res Result) {
	start := time.Now()
	res = Result{Index: i, Spec: spec, Seed: TrialSeed(x.Seed, spec.ID)}
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			pool.invalidate()
			res.Err = fmt.Errorf("panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	env, err := newEnv(spec, res.Seed, pool)
	if err != nil {
		res.Err = err
		return res
	}
	body := spec.Body
	if body == nil {
		body = runDeclarative
	}
	res.Value, res.Err = body(ctx, env)
	return res
}

// maxShards returns the largest per-trial shard request in the suite
// (minimum 1), the divisor of the default worker budget.
func maxShards(specs []TrialSpec) int {
	m := 1
	for _, s := range specs {
		if s.Shards > m {
			m = s.Shards
		}
	}
	return m
}

// validateIDs rejects suites with duplicate (or empty) trial ids, which would
// silently collapse two trials onto one random stream.
func validateIDs(specs []TrialSpec) error {
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.ID == "" {
			return fmt.Errorf("harness: trial %d has an empty ID", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("harness: duplicate trial ID %q", s.ID)
		}
		seen[s.ID] = true
	}
	return nil
}

// Run is a convenience for one-off suites without an explicit Executor.
func Run(ctx context.Context, seed int64, parallel int, specs []TrialSpec) ([]Result, error) {
	return (&Executor{Parallel: parallel, Seed: seed}).Run(ctx, specs)
}
