package harness

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"dragonfly/internal/testutil"
)

// leakSpec is the shared measurement spec with an explicit iteration count:
// a real allocate → measure trial whose rank goroutines the leak tests track.
func leakSpec(id string, iterations int) TrialSpec {
	spec := measureSpec(id)
	spec.Iterations = iterations
	return spec
}

// TestExecutorNoGoroutineLeak pins the executor's goroutine accounting: after
// a parallel suite completes, the worker goroutines and every rank goroutine
// of every trial are gone.
func TestExecutorNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	var specs []TrialSpec
	for _, id := range []string{"a", "b", "c", "d"} {
		specs = append(specs, leakSpec("leak/"+id, 2))
	}
	if _, err := (&Executor{Parallel: 4, Seed: 9}).Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestExecutorCancelNoGoroutineLeak is the ctx-cancellation half: a suite
// cancelled while trials are mid-simulation must release the in-flight rank
// goroutines (Comm.RunContext shuts its scheduler down), not leave them
// parked for the life of the process.
func TestExecutorCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var specs []TrialSpec
	for _, id := range []string{"a", "b", "c", "d", "e", "f"} {
		spec := leakSpec("leak-cancel/"+id, 200)
		// Cancel from inside the first trial body, so later trials are
		// skipped and in-flight measurements abort mid-iteration.
		inner := spec
		spec.Body = func(c context.Context, e *Env) (any, error) {
			cancel()
			job, err := e.AllocateJob(inner.Placement, inner.JobNodes)
			if err != nil {
				return nil, err
			}
			return e.MeasureSetups(c, job, inner.Setups(), nil,
				inner.Workload(job.Size()), inner.Iterations)
		}
		specs = append(specs, spec)
	}
	_, err := (&Executor{Parallel: 3, Seed: 9}).Run(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite returned %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
}
