package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dragonfly/internal/topo"
)

// testGeometry is a tiny topology that builds fast.
func testGeometry() topo.Config {
	return topo.SmallConfig(2)
}

// valueSpec declares a trivial trial whose body returns a pure function of
// the derived seed, so executions are comparable across worker counts.
func valueSpec(id string) TrialSpec {
	return TrialSpec{
		ID:       id,
		Geometry: testGeometry(),
		Body: func(ctx context.Context, e *Env) (any, error) {
			return fmt.Sprintf("%s:%d", e.Spec.ID, e.Seed), nil
		},
	}
}

func TestTrialSeedDeterministicAndDistinct(t *testing.T) {
	if TrialSeed(1, "a") != TrialSeed(1, "a") {
		t.Fatal("TrialSeed is not deterministic")
	}
	seen := map[int64]string{}
	for _, base := range []int64{0, 1, 2, 1 << 40} {
		for _, id := range []string{"a", "b", "a/b", "b/a", "trial-0", "trial-1"} {
			s := TrialSeed(base, id)
			key := fmt.Sprintf("%d/%s", base, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %q and %q both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if TrialSeed(1, "a") == TrialSeed(2, "a") {
		t.Fatal("different base seeds must give different trial seeds")
	}
}

func TestExecutorResultsInSpecOrder(t *testing.T) {
	var specs []TrialSpec
	for i := 0; i < 20; i++ {
		specs = append(specs, valueSpec(fmt.Sprintf("trial-%d", i)))
	}
	ex := &Executor{Parallel: 8, Seed: 42}
	results, err := ex.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	for i, r := range results {
		if r.Index != i || r.Spec.ID != specs[i].ID {
			t.Fatalf("result %d out of order: index=%d id=%q", i, r.Index, r.Spec.ID)
		}
		if r.Err != nil {
			t.Fatalf("trial %q failed: %v", r.Spec.ID, r.Err)
		}
	}
}

func TestExecutorParallelMatchesSerial(t *testing.T) {
	var specs []TrialSpec
	for i := 0; i < 12; i++ {
		specs = append(specs, valueSpec(fmt.Sprintf("trial-%d", i)))
	}
	extract := func(parallel int) []any {
		results, err := (&Executor{Parallel: parallel, Seed: 7}).Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]any, len(results))
		for i, r := range results {
			out[i] = r.Value
		}
		return out
	}
	serial := extract(1)
	parallel := extract(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel results differ from serial:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

func TestExecutorOnResultStreamsInOrder(t *testing.T) {
	var specs []TrialSpec
	for i := 0; i < 16; i++ {
		specs = append(specs, valueSpec(fmt.Sprintf("trial-%d", i)))
	}
	var mu sync.Mutex
	var order []int
	ex := &Executor{
		Parallel: 8,
		Seed:     1,
		OnResult: func(r Result) {
			mu.Lock()
			order = append(order, r.Index)
			mu.Unlock()
		},
	}
	if _, err := ex.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(specs) {
		t.Fatalf("OnResult called %d times, want %d", len(order), len(specs))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("OnResult delivered index %d at position %d; want spec order", idx, i)
		}
	}
}

func TestExecutorProgressCounts(t *testing.T) {
	var specs []TrialSpec
	for i := 0; i < 10; i++ {
		specs = append(specs, valueSpec(fmt.Sprintf("trial-%d", i)))
	}
	var mu sync.Mutex
	var completions []int
	ex := &Executor{
		Parallel: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			completions = append(completions, p.Completed)
			if p.Total != len(specs) {
				t.Errorf("Progress.Total = %d, want %d", p.Total, len(specs))
			}
			mu.Unlock()
		},
	}
	if _, err := ex.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(completions) != len(specs) {
		t.Fatalf("got %d progress callbacks, want %d", len(completions), len(specs))
	}
	for i, c := range completions {
		if c != i+1 {
			t.Fatalf("completion counter out of order: %v", completions)
		}
	}
}

func TestExecutorPanicCapture(t *testing.T) {
	specs := []TrialSpec{
		valueSpec("ok-0"),
		{
			ID:       "boom",
			Geometry: testGeometry(),
			Body: func(ctx context.Context, e *Env) (any, error) {
				panic("kaboom")
			},
		},
		valueSpec("ok-1"),
	}
	results, err := (&Executor{Parallel: 2}).Run(context.Background(), specs)
	if err == nil {
		t.Fatal("expected the suite to report the panicked trial")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error does not identify the panic: %v", err)
	}
	// The other trials either completed or were skipped by the fail-fast
	// cancellation — never poisoned by the panic itself.
	for _, i := range []int{0, 2} {
		if results[i].Err != nil && !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("healthy trial %d poisoned: %v", i, results[i].Err)
		}
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not captured in result: %v", results[1].Err)
	}
}

// TestExecutorFailFastCancelsRemaining asserts that the first trial failure
// aborts the rest of the suite while still reporting the real error.
func TestExecutorFailFastCancelsRemaining(t *testing.T) {
	wantErr := errors.New("first trial failed")
	specs := []TrialSpec{
		{
			ID:       "fails-first",
			Geometry: testGeometry(),
			Body: func(ctx context.Context, e *Env) (any, error) {
				return nil, wantErr
			},
		},
		valueSpec("queued-0"),
		valueSpec("queued-1"),
	}
	// One worker: the failing trial completes before the others are fed, so
	// the cancellation outcome is deterministic.
	results, err := (&Executor{Parallel: 1}).Run(context.Background(), specs)
	if !errors.Is(err, wantErr) {
		t.Fatalf("suite error should be the real failure, got %v", err)
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Fatalf("trial %d should have been cancelled after the failure, got %v", i, results[i].Err)
		}
	}
}

func TestExecutorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the suite starts
	var specs []TrialSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, valueSpec(fmt.Sprintf("trial-%d", i)))
	}
	results, err := (&Executor{Parallel: 2}).Run(ctx, specs)
	if err == nil {
		t.Fatal("expected a context error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled: %v", err)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("trial %q ran despite cancellation", r.Spec.ID)
		}
	}
}

func TestExecutorRejectsDuplicateAndEmptyIDs(t *testing.T) {
	if _, err := (&Executor{}).Run(context.Background(), []TrialSpec{valueSpec("x"), valueSpec("x")}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
	if _, err := (&Executor{}).Run(context.Background(), []TrialSpec{{Geometry: testGeometry()}}); err == nil {
		t.Fatal("empty IDs must be rejected")
	}
}

func TestExecutorTrialErrorPropagates(t *testing.T) {
	wantErr := errors.New("trial failed")
	specs := []TrialSpec{
		valueSpec("ok"),
		{
			ID:       "fails",
			Geometry: testGeometry(),
			Body: func(ctx context.Context, e *Env) (any, error) {
				return nil, wantErr
			},
		},
	}
	_, err := (&Executor{Parallel: 2}).Run(context.Background(), specs)
	if !errors.Is(err, wantErr) {
		t.Fatalf("suite error should wrap the trial error, got %v", err)
	}
}

func TestDeclarativeSpecRequiresWorkloadAndSetups(t *testing.T) {
	_, err := (&Executor{}).Run(context.Background(), []TrialSpec{{ID: "incomplete", Geometry: testGeometry()}})
	if err == nil || !strings.Contains(err.Error(), "declarative") {
		t.Fatalf("incomplete declarative spec must be rejected, got %v", err)
	}
}
