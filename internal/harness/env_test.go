package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dragonfly"
	"dragonfly/internal/alloc"
	"dragonfly/internal/mpi"
	"dragonfly/internal/noise"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// measureSpec declares a small real measurement: a 4-node pingpong job with
// background noise under two static routing modes.
func measureSpec(id string) TrialSpec {
	return TrialSpec{
		ID:        id,
		Geometry:  testGeometry(),
		Placement: alloc.GroupStriped,
		JobNodes:  4,
		Noise:     &NoiseSpec{Pattern: noise.UniformRandom, Nodes: 4, IntervalCycles: 20_000},
		Setups: func() []RoutingSetup {
			return []RoutingSetup{
				{Name: "Adaptive", Provider: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: routing.Adaptive} }},
				{Name: "HighBias", Provider: func(int) mpi.RoutingProvider { return mpi.StaticRouting{Mode: routing.AdaptiveHighBias} }},
			}
		},
		Workload: func(ranks int) workloads.Workload {
			return &workloads.PingPong{MessageBytes: 4 << 10, Iterations: 1}
		},
		Iterations: 3,
	}
}

func TestDeclarativeMeasurement(t *testing.T) {
	results, err := (&Executor{Parallel: 1, Seed: 5}).Run(context.Background(), []TrialSpec{measureSpec("m0")})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := results[0].Value.(Measurements)
	if !ok {
		t.Fatalf("declarative trial returned %T, want Measurements", results[0].Value)
	}
	for _, name := range []string{"Adaptive", "HighBias"} {
		m := res[name]
		if m == nil {
			t.Fatalf("setup %q missing from measurements", name)
		}
		if len(m.Times) != 3 || len(m.Deltas) != 3 {
			t.Fatalf("setup %q has %d times / %d deltas, want 3", name, len(m.Times), len(m.Deltas))
		}
		for i, v := range m.Times {
			if v <= 0 {
				t.Fatalf("setup %q iteration %d has non-positive time %v", name, i, v)
			}
		}
	}
}

// TestMeasurementDeterministicAcrossWorkers is the core harness guarantee:
// running the same suite of real simulations with 1 worker and with 8 workers
// yields identical samples, because every trial's randomness derives only
// from (suite seed, trial id).
func TestMeasurementDeterministicAcrossWorkers(t *testing.T) {
	var specs []TrialSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, measureSpec(fmt.Sprintf("m%d", i)))
	}
	collect := func(parallel int) []Measurements {
		results, err := (&Executor{Parallel: parallel, Seed: 11}).Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Measurements, len(results))
		for i, r := range results {
			out[i] = r.Value.(Measurements)
		}
		return out
	}
	serial := collect(1)
	parallel := collect(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel measurement differs from serial measurement for the same seed")
	}
	// And the derived seeds must differ across trials (fresh systems).
	s0, s1 := TrialSeed(11, "m0"), TrialSeed(11, "m1")
	if s0 == s1 {
		t.Fatal("distinct trials share a seed")
	}
}

func TestPairAndFixedAllocations(t *testing.T) {
	pair := measureSpec("pair")
	pair.PairAlloc = true
	pair.PairClass = topo.AllocInterGroups

	// Eight ranks pinned onto node 0 (the Figure-4 style allocation).
	fixed := measureSpec("fixed")
	fixed.FixedNodes = make([]topo.NodeID, 8)
	fixed.Noise = nil

	results, err := (&Executor{Parallel: 2, Seed: 3}).Run(context.Background(), []TrialSpec{pair, fixed})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		res, ok := r.Value.(Measurements)
		if !ok {
			t.Fatalf("trial %d returned %T", i, r.Value)
		}
		if len(res["Adaptive"].Times) != 3 {
			t.Fatalf("trial %d measured %d iterations, want 3", i, len(res["Adaptive"].Times))
		}
	}
	// The fixed allocation is all on one node, so no NIC packets moved.
	fixedRes := results[1].Value.(Measurements)
	for _, d := range fixedRes["Adaptive"].Deltas {
		if d.RequestPackets != 0 {
			t.Fatalf("on-node job sent %d NIC packets, want 0", d.RequestPackets)
		}
	}
}

// TestAllocateJobClampsToMachine pins the documented clamp semantics of
// Env.AllocateJob: a request larger than the machine silently becomes a
// machine-filling job (suite-level -nodes flags apply one size to several
// geometries), in deliberate contrast to dragonfly.System.Allocate, which
// fails such requests with ErrJobTooLarge.
func TestAllocateJobClampsToMachine(t *testing.T) {
	env, err := NewEnv(TrialSpec{ID: "clamp", Geometry: testGeometry()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	machine := env.Topo.NumNodes()
	job, err := env.AllocateJob(alloc.GroupStriped, machine*10)
	if err != nil {
		t.Fatalf("AllocateJob(%d) on a %d-node machine: %v", machine*10, machine, err)
	}
	if job.Size() != machine {
		t.Fatalf("clamped job has %d nodes, want the full machine (%d)", job.Size(), machine)
	}

	// The facade underneath refuses the same request instead of clamping.
	if _, err := env.Sys.Allocate(alloc.GroupStriped, machine*10); !errors.Is(err, dragonfly.ErrJobTooLarge) {
		t.Fatalf("System.Allocate past machine size: err = %v, want ErrJobTooLarge", err)
	}

	// The clamp must track occupancy: with a background job already placed,
	// an oversized request fills the remaining free nodes instead of failing.
	env2, err := NewEnv(TrialSpec{ID: "clamp2", Geometry: testGeometry()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := env2.StartNoise(NoiseSpec{Pattern: noise.UniformRandom, Nodes: 4}); g == nil {
		t.Fatal("no room for the background job on a fresh machine")
	}
	free := env2.Sys.FreeNodes()
	job2, err := env2.AllocateJob(alloc.GroupStriped, machine*10)
	if err != nil {
		t.Fatalf("AllocateJob with %d free nodes: %v", free, err)
	}
	if job2.Size() != free {
		t.Fatalf("clamped job has %d nodes, want the free count (%d)", job2.Size(), free)
	}
}
