package harness

import "hash/fnv"

// TrialSeed derives the seed of a trial's private random streams from the
// suite seed and the trial id: the id is hashed with FNV-1a, mixed with the
// finalized suite seed, and passed through a splitmix64 finalizer. The result
// depends only on (base, id) — never on the position of the trial in the
// suite or on which worker runs it — which is what makes parallel execution
// bit-reproducible.
func TrialSeed(base int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(mix64(mix64(uint64(base)) ^ h.Sum64()))
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche so that
// structured inputs (small seeds, similar ids) land far apart.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
