// Package harness is the parallel trial-execution subsystem behind the
// experiments layer. A TrialSpec declaratively describes one simulated run
// (topology geometry, job allocation, routing setups under test, workload,
// background noise); a deterministic seed-derivation scheme gives every trial
// its own private random streams; and a worker-pool Executor fans trials out
// across GOMAXPROCS goroutines with context cancellation, panic capture and
// progress callbacks, delivering results in spec order so that a parallel run
// produces byte-identical tables to a serial run for the same seed.
//
// Each trial builds a complete private system (engine, fabric, RNGs) seeded
// only from (Executor.Seed, TrialSpec.ID), so trials share no mutable state
// and their results cannot depend on scheduling order or worker count.
package harness

import (
	"context"

	"dragonfly"
	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/counters"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// DefaultHorizon is the deadline handed to background noise generators;
// trials complete far before it.
const DefaultHorizon = dragonfly.DefaultHorizon

// RoutingSetup names a routing configuration under test. It is the facade's
// Routing type: the standard configurations come from dragonfly.DefaultRouting,
// dragonfly.StaticRouting and dragonfly.AppAware.
type RoutingSetup = dragonfly.Routing

// Measurement is the result of measuring one routing setup on one workload.
type Measurement struct {
	// Times holds one execution time (cycles) per iteration.
	Times []float64
	// Deltas holds the per-iteration NIC counter deltas summed over the job.
	Deltas []counters.NIC
	// SelectorStats aggregates selector statistics (zero for static setups).
	SelectorStats core.Stats
}

// Measurements maps setup names to their measurement; it is the value the
// default (declarative) trial body returns.
type Measurements = map[string]*Measurement

// NoiseSpec declares the background (interfering) job of a trial. All values
// are concrete — callers apply their own scaling before declaring the spec —
// and the generator seed is derived from the trial seed. It is the facade's
// NoiseConfig type.
type NoiseSpec = dragonfly.NoiseConfig

// TrialSpec declares one simulated run: how to build the system and what to
// measure on it. The zero values of the system fields select the library
// defaults.
//
// The common case is fully declarative: set the geometry, an allocation
// (JobNodes+Placement, PairClass, or FixedNodes), optional Noise and
// HostNoise, the Setups under test, a Workload factory and the iteration
// count, and the executor runs the standard allocate/noise/measure sequence.
// Experiments that need bespoke instrumentation (telemetry collectors, batch
// schedulers, raw engine control) set Body instead, which replaces the
// declarative path entirely and receives the constructed Env.
type TrialSpec struct {
	// ID uniquely names the trial within one Executor.Run call. The trial's
	// random streams are derived from (Executor.Seed, ID), so renaming a
	// trial reseeds it while reordering or parallelizing the suite does not.
	ID string

	// Meta is an opaque payload carried through to the Result, for use by the
	// caller's aggregation code (e.g. the table row label).
	Meta any

	// Geometry is the Dragonfly topology to build.
	Geometry topo.Config
	// Shards enables the intra-run parallel event engine for the trial's
	// system (dragonfly.WithShards): 0 leaves the engine serial, n > 0
	// requests n group shards (clamped by the facade). Output is
	// byte-identical either way; the executor folds the per-trial shard
	// count into its worker budget so trials × shards stays within
	// GOMAXPROCS.
	Shards int
	// Variant selects the UGAL state-partitioning variant for the trial's
	// system (dragonfly.WithRoutingVariant). The zero value is ExactUGAL;
	// ShardableUGAL runs the relaxed parallel model, whose output differs
	// from exact by construction but stays deterministic per seed.
	Variant routing.Variant
	// Staleness is the ShardableUGAL replica-sync decimation factor K
	// (dragonfly.WithReplicaStaleness). Zero and one both select the default
	// per-lookahead refresh; values above one require Variant ==
	// ShardableUGAL and are their own deterministic models, pinned per K.
	Staleness int
	// DecisionTraceK enables the routing decision recorder for the trial's
	// system (dragonfly.WithDecisionTrace): 0 leaves tracing off, k > 0
	// records each adaptive decision with its top-k candidate costs. The
	// trace is part of the construction key, so traced and untraced trials
	// never share a pooled system.
	DecisionTraceK int
	// RoutingParams overrides routing.DefaultParams() when non-nil.
	RoutingParams *routing.Params
	// Network overrides network.DefaultConfig() when non-nil.
	Network *network.Config

	// FixedNodes pins the job to explicit nodes (repeats allowed: several
	// ranks on one node). Takes precedence over PairAlloc and JobNodes.
	FixedNodes []topo.NodeID
	// PairAlloc allocates a two-node job of PairClass instead of JobNodes.
	PairAlloc bool
	// PairClass is the topological distance of the pair when PairAlloc is set.
	PairClass topo.AllocationClass
	// JobNodes is the requested job size (capped at the machine size).
	JobNodes int
	// Placement is the allocation policy for JobNodes-style jobs.
	Placement alloc.Policy
	// Noise, if non-nil, starts a background job before the measurement.
	Noise *NoiseSpec
	// Setups builds the routing configurations under test. It is a factory —
	// called once inside the trial — because selector-backed setups carry
	// per-trial mutable state that must not be shared across trials.
	Setups func() []RoutingSetup
	// HostNoise, if non-nil, builds the host-side delay sampler for the trial.
	HostNoise func() func(rank int) int64
	// Workload builds the measured workload for the allocated rank count.
	Workload func(ranks int) workloads.Workload
	// Iterations is the number of measured repetitions (minimum 1).
	Iterations int

	// Body replaces the declarative measurement when non-nil. It runs on the
	// trial's private Env and returns the trial's result value.
	Body func(ctx context.Context, env *Env) (any, error)
}
