package msglog

import (
	"bytes"
	"path/filepath"
	"sort"
	"testing"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// capture runs a workload on n ranks with a log attached and returns the log
// and the fabric it was captured on.
func capture(t *testing.T, w workloads.Workload, n int, seed int64) (*Log, *network.Fabric) {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	a := alloc.MustAllocate(tt, alloc.GroupStriped, n, nil, nil)
	c := mpi.MustNewComm(fab, a, mpi.Config{})
	log := NewLog()
	log.Attach(fab)
	if err := c.Run(w.Run); err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	for i := 0; i < n; i++ {
		if err := c.Rank(i).Err(); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return log, fab
}

func TestLogCapturesAlltoall(t *testing.T) {
	const n = 6
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 1024, Iterations: 1}, n, 1)
	// Pairwise alltoall: every ordered pair exchanges exactly one message.
	want := n * (n - 1)
	if log.Len() != want {
		t.Fatalf("captured %d records, want %d", log.Len(), want)
	}
	if log.TotalBytes() != int64(want)*1024 {
		t.Fatalf("captured %d bytes, want %d", log.TotalBytes(), int64(want)*1024)
	}
	for _, r := range log.Records() {
		if r.Src == r.Dst {
			t.Fatalf("self-message recorded: %+v", r)
		}
		if r.TransmissionCycles() <= 0 {
			t.Fatalf("non-positive transmission time: %+v", r)
		}
		if r.MinimalFraction < 0 || r.MinimalFraction > 1 {
			t.Fatalf("minimal fraction out of range: %+v", r)
		}
	}
}

func TestTrafficMatrixAndHistogram(t *testing.T) {
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 2048, Iterations: 1}, 4, 2)
	matrix := log.TrafficMatrix()
	if len(matrix) != 4 {
		t.Fatalf("traffic matrix has %d source rows, want 4", len(matrix))
	}
	for src, row := range matrix {
		if len(row) != 3 {
			t.Fatalf("source %d exchanged with %d peers, want 3", src, len(row))
		}
		for dst, bytes := range row {
			if bytes != 2048 {
				t.Fatalf("pair %d->%d carried %d bytes, want 2048", src, dst, bytes)
			}
		}
	}
	bounds, counts := log.SizeHistogram(64)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != log.Len() {
		t.Fatalf("histogram counts sum to %d, want %d", total, log.Len())
	}
	if len(bounds) != len(counts) {
		t.Fatalf("bounds/counts length mismatch: %d vs %d", len(bounds), len(counts))
	}
	if lats := log.Latencies(); len(lats) == 0 {
		t.Fatal("no latencies recorded")
	}
}

// TestSizeHistogramBucketing pins the bucketing fix: bucket idx covers
// [bounds[idx], bounds[idx+1]), so a size strictly between two bounds lands in
// the LOWER bucket and an exact bound starts its own bucket. The old scan
// compared against the current (lower) bound and pushed in-between sizes one
// bucket too high.
func TestSizeHistogramBucketing(t *testing.T) {
	cases := []struct {
		name    string
		minSize int64
		sizes   []int64
		bounds  []int64
		counts  []int
	}{
		{
			name:    "between-bounds stays in lower bucket",
			minSize: 1,
			sizes:   []int64{3}, // bounds [1,2,4]: 3 ∈ [2,4) → bucket 1, not 2
			bounds:  []int64{1, 2, 4},
			counts:  []int{0, 1, 0},
		},
		{
			name:    "exact bound opens its bucket",
			minSize: 1,
			sizes:   []int64{1, 2, 4},
			bounds:  []int64{1, 2, 4},
			counts:  []int{1, 1, 1},
		},
		{
			name:    "mixed exact and between",
			minSize: 2,
			sizes:   []int64{2, 3, 4, 5, 7, 8},
			bounds:  []int64{2, 4, 8},
			counts:  []int{2, 3, 1},
		},
		{
			name:    "below minSize clamps into first bucket",
			minSize: 4,
			sizes:   []int64{1, 4, 6, 9},
			bounds:  []int64{4, 8, 16},
			counts:  []int{3, 1, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := NewLog()
			for _, s := range tc.sizes {
				log.records = append(log.records, Record{Size: s})
			}
			bounds, counts := log.SizeHistogram(tc.minSize)
			if len(bounds) != len(tc.bounds) || len(counts) != len(tc.counts) {
				t.Fatalf("got bounds %v counts %v, want bounds %v counts %v",
					bounds, counts, tc.bounds, tc.counts)
			}
			for i := range bounds {
				if bounds[i] != tc.bounds[i] || counts[i] != tc.counts[i] {
					t.Fatalf("bucket %d: got (%d, %d), want (%d, %d)",
						i, bounds[i], counts[i], tc.bounds[i], tc.counts[i])
				}
			}
		})
	}
}

func TestMaxRecordsBound(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(3)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	log := &Log{MaxRecords: 5}
	log.Attach(fab)
	for i := 0; i < 20; i++ {
		if err := fab.Send(0, 4, 256, network.SendOptions{Mode: routing.Adaptive}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 5 {
		t.Fatalf("stored %d records, want 5", log.Len())
	}
	if log.Dropped() != 15 {
		t.Fatalf("dropped %d records, want 15", log.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	log, _ := capture(t, &workloads.PingPong{MessageBytes: 4096, Iterations: 3}, 2, 4)
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != log.Len() {
		t.Fatalf("round trip produced %d records, want %d", len(records), log.Len())
	}
	for i, r := range records {
		if r != log.Records()[i] {
			t.Fatalf("record %d changed in round trip: %+v vs %+v", i, r, log.Records()[i])
		}
	}
}

func TestSaveLoadJSONLFile(t *testing.T) {
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 512, Iterations: 1}, 4, 5)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := log.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	records, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != log.Len() {
		t.Fatalf("loaded %d records, want %d", len(records), log.Len())
	}
	if _, err := LoadJSONL(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{not json}\n")); err == nil {
		t.Fatal("expected error for malformed line")
	}
}

func TestReplayReproducesTraffic(t *testing.T) {
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 1024, Iterations: 1}, 6, 6)

	// Replay the captured trace onto a fresh fabric under a different routing
	// mode and capture it again.
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(7)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	replayLog := NewLog()
	replayLog.Attach(fab)
	scheduled, err := Replay(fab, log.Records(), ReplayOptions{Mode: routing.AdaptiveHighBias})
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != log.Len() {
		t.Fatalf("scheduled %d messages, want %d", scheduled, log.Len())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if replayLog.Len() != log.Len() {
		t.Fatalf("replay delivered %d messages, want %d", replayLog.Len(), log.Len())
	}
	if replayLog.TotalBytes() != log.TotalBytes() {
		t.Fatalf("replay moved %d bytes, original %d", replayLog.TotalBytes(), log.TotalBytes())
	}
}

func TestReplayWithNodeMapAndScale(t *testing.T) {
	log, _ := capture(t, &workloads.PingPong{MessageBytes: 2048, Iterations: 2}, 2, 8)
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(9)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())

	// Map the original endpoints onto two specific nodes of the new machine.
	nodeMap := make(map[topo.NodeID]topo.NodeID)
	for _, r := range log.Records() {
		nodeMap[r.Src] = topo.NodeID(int(r.Src) % tt.NumNodes())
		nodeMap[r.Dst] = topo.NodeID(int(r.Dst) % tt.NumNodes())
	}
	replayLog := NewLog()
	replayLog.Attach(fab)
	if _, err := Replay(fab, log.Records(), ReplayOptions{Mode: routing.MinHash, TimeScale: 0.5, NodeMap: nodeMap}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if replayLog.Len() != log.Len() {
		t.Fatalf("replay delivered %d messages, want %d", replayLog.Len(), log.Len())
	}
}

func TestReplayRejectsOutOfRangeEndpoints(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(10)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	records := []Record{{Src: 0, Dst: topo.NodeID(tt.NumNodes() + 5), Size: 64}}
	if _, err := Replay(fab, records, ReplayOptions{}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
}

func TestReplayPartialNodeMapMixesMappedAndUnmapped(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(13)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())

	// Only node 0 is remapped; 1 and 2 pass through unchanged.
	records := []Record{
		{Src: 0, Dst: 1, Size: 256, SendStart: 0},
		{Src: 2, Dst: 0, Size: 512, SendStart: 10},
	}
	mapped := topo.NodeID(tt.NumNodes() - 1)
	replayLog := NewLog()
	replayLog.Attach(fab)
	n, err := Replay(fab, records, ReplayOptions{NodeMap: map[topo.NodeID]topo.NodeID{0: mapped}})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) {
		t.Fatalf("scheduled %d messages, want %d", n, len(records))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	matrix := replayLog.TrafficMatrix()
	if matrix[mapped][1] != 256 {
		t.Fatalf("mapped source should deliver %d->1: %v", mapped, matrix)
	}
	if matrix[2][mapped] != 512 {
		t.Fatalf("unmapped source should deliver 2->%d: %v", mapped, matrix)
	}
}

func TestReplayOutOfRangeReportsScheduledPrefix(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(14)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	bad := topo.NodeID(tt.NumNodes())
	records := []Record{
		{Src: 0, Dst: 1, Size: 64},
		{Src: 0, Dst: bad, Size: 64}, // first invalid record
		{Src: 1, Dst: 0, Size: 64},
	}
	n, err := Replay(fab, records, ReplayOptions{})
	if err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if n != 1 {
		t.Fatalf("scheduled count is %d, want 1 (records before the invalid one)", n)
	}
	// A NodeMap that rescues the bad endpoint makes the same trace valid.
	n, err = Replay(fab, records, ReplayOptions{NodeMap: map[topo.NodeID]topo.NodeID{bad: 1}})
	if err != nil || n != len(records) {
		t.Fatalf("remapped replay returned (%d, %v), want (%d, nil)", n, err, len(records))
	}
}

func TestReplayTimeScaleCompressionPreservesSendOrder(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(15)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())

	// Distinct sizes identify the messages; send times are far apart so the
	// 0.1x compression still leaves distinct post times.
	records := []Record{
		{Src: 0, Dst: 1, Size: 64, SendStart: 1000},
		{Src: 0, Dst: 1, Size: 128, SendStart: 2000},
		{Src: 0, Dst: 1, Size: 256, SendStart: 9000},
	}
	replayLog := NewLog()
	replayLog.Attach(fab)
	if _, err := Replay(fab, records, ReplayOptions{TimeScale: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if replayLog.Len() != len(records) {
		t.Fatalf("replay delivered %d messages, want %d", replayLog.Len(), len(records))
	}
	got := append([]Record(nil), replayLog.Records()...)
	sort.Slice(got, func(i, j int) bool { return got[i].SendStart < got[j].SendStart })
	for i, want := range []int64{64, 128, 256} {
		if got[i].Size != want {
			t.Fatalf("send order not preserved under compression: position %d is %d bytes, want %d (%v)",
				i, got[i].Size, want, got)
		}
	}
	// Compression by 0.1 shrinks the 8000-cycle span to 800.
	span := got[2].SendStart - got[0].SendStart
	if span != 800 {
		t.Fatalf("compressed send span is %d cycles, want 800", span)
	}
}

func TestReplayEmptyTraceIsNoop(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(11)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	n, err := Replay(fab, nil, ReplayOptions{})
	if err != nil || n != 0 {
		t.Fatalf("empty replay returned (%d, %v)", n, err)
	}
}

func TestObserverSeesAppAwareTraffic(t *testing.T) {
	// The observer must also see traffic routed through the application-aware
	// selector (the per-message hook and the observer are independent).
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(12)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	a := alloc.MustAllocate(tt, alloc.GroupStriped, 4, nil, nil)
	c := mpi.MustNewComm(fab, a, mpi.Config{
		Routing: func(int) mpi.RoutingProvider {
			return mpi.AppAwareRouting{Selector: core.MustNew(core.DefaultConfig())}
		},
	})
	log := NewLog()
	log.Attach(fab)
	if err := c.Run(func(r *mpi.Rank) { r.Alltoall(8192) }); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("observer saw no traffic from the application-aware communicator")
	}
	log.Detach(fab)
}
