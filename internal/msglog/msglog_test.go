package msglog

import (
	"bytes"
	"path/filepath"
	"testing"

	"dragonfly/internal/alloc"
	"dragonfly/internal/core"
	"dragonfly/internal/mpi"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
	"dragonfly/internal/workloads"
)

// capture runs a workload on n ranks with a log attached and returns the log
// and the fabric it was captured on.
func capture(t *testing.T, w workloads.Workload, n int, seed int64) (*Log, *network.Fabric) {
	t.Helper()
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(seed)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	a := alloc.MustAllocate(tt, alloc.GroupStriped, n, nil, nil)
	c := mpi.MustNewComm(fab, a, mpi.Config{})
	log := NewLog()
	log.Attach(fab)
	if err := c.Run(w.Run); err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	for i := 0; i < n; i++ {
		if err := c.Rank(i).Err(); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return log, fab
}

func TestLogCapturesAlltoall(t *testing.T) {
	const n = 6
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 1024, Iterations: 1}, n, 1)
	// Pairwise alltoall: every ordered pair exchanges exactly one message.
	want := n * (n - 1)
	if log.Len() != want {
		t.Fatalf("captured %d records, want %d", log.Len(), want)
	}
	if log.TotalBytes() != int64(want)*1024 {
		t.Fatalf("captured %d bytes, want %d", log.TotalBytes(), int64(want)*1024)
	}
	for _, r := range log.Records() {
		if r.Src == r.Dst {
			t.Fatalf("self-message recorded: %+v", r)
		}
		if r.TransmissionCycles() <= 0 {
			t.Fatalf("non-positive transmission time: %+v", r)
		}
		if r.MinimalFraction < 0 || r.MinimalFraction > 1 {
			t.Fatalf("minimal fraction out of range: %+v", r)
		}
	}
}

func TestTrafficMatrixAndHistogram(t *testing.T) {
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 2048, Iterations: 1}, 4, 2)
	matrix := log.TrafficMatrix()
	if len(matrix) != 4 {
		t.Fatalf("traffic matrix has %d source rows, want 4", len(matrix))
	}
	for src, row := range matrix {
		if len(row) != 3 {
			t.Fatalf("source %d exchanged with %d peers, want 3", src, len(row))
		}
		for dst, bytes := range row {
			if bytes != 2048 {
				t.Fatalf("pair %d->%d carried %d bytes, want 2048", src, dst, bytes)
			}
		}
	}
	bounds, counts := log.SizeHistogram(64)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != log.Len() {
		t.Fatalf("histogram counts sum to %d, want %d", total, log.Len())
	}
	if len(bounds) != len(counts) {
		t.Fatalf("bounds/counts length mismatch: %d vs %d", len(bounds), len(counts))
	}
	if lats := log.Latencies(); len(lats) == 0 {
		t.Fatal("no latencies recorded")
	}
}

func TestMaxRecordsBound(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(3)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	log := &Log{MaxRecords: 5}
	log.Attach(fab)
	for i := 0; i < 20; i++ {
		if err := fab.Send(0, 4, 256, network.SendOptions{Mode: routing.Adaptive}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 5 {
		t.Fatalf("stored %d records, want 5", log.Len())
	}
	if log.Dropped() != 15 {
		t.Fatalf("dropped %d records, want 15", log.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	log, _ := capture(t, &workloads.PingPong{MessageBytes: 4096, Iterations: 3}, 2, 4)
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != log.Len() {
		t.Fatalf("round trip produced %d records, want %d", len(records), log.Len())
	}
	for i, r := range records {
		if r != log.Records()[i] {
			t.Fatalf("record %d changed in round trip: %+v vs %+v", i, r, log.Records()[i])
		}
	}
}

func TestSaveLoadJSONLFile(t *testing.T) {
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 512, Iterations: 1}, 4, 5)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := log.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	records, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != log.Len() {
		t.Fatalf("loaded %d records, want %d", len(records), log.Len())
	}
	if _, err := LoadJSONL(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{not json}\n")); err == nil {
		t.Fatal("expected error for malformed line")
	}
}

func TestReplayReproducesTraffic(t *testing.T) {
	log, _ := capture(t, &workloads.Alltoall{MessageBytes: 1024, Iterations: 1}, 6, 6)

	// Replay the captured trace onto a fresh fabric under a different routing
	// mode and capture it again.
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(7)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	replayLog := NewLog()
	replayLog.Attach(fab)
	scheduled, err := Replay(fab, log.Records(), ReplayOptions{Mode: routing.AdaptiveHighBias})
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != log.Len() {
		t.Fatalf("scheduled %d messages, want %d", scheduled, log.Len())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if replayLog.Len() != log.Len() {
		t.Fatalf("replay delivered %d messages, want %d", replayLog.Len(), log.Len())
	}
	if replayLog.TotalBytes() != log.TotalBytes() {
		t.Fatalf("replay moved %d bytes, original %d", replayLog.TotalBytes(), log.TotalBytes())
	}
}

func TestReplayWithNodeMapAndScale(t *testing.T) {
	log, _ := capture(t, &workloads.PingPong{MessageBytes: 2048, Iterations: 2}, 2, 8)
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(9)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())

	// Map the original endpoints onto two specific nodes of the new machine.
	nodeMap := make(map[topo.NodeID]topo.NodeID)
	for _, r := range log.Records() {
		nodeMap[r.Src] = topo.NodeID(int(r.Src) % tt.NumNodes())
		nodeMap[r.Dst] = topo.NodeID(int(r.Dst) % tt.NumNodes())
	}
	replayLog := NewLog()
	replayLog.Attach(fab)
	if _, err := Replay(fab, log.Records(), ReplayOptions{Mode: routing.MinHash, TimeScale: 0.5, NodeMap: nodeMap}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if replayLog.Len() != log.Len() {
		t.Fatalf("replay delivered %d messages, want %d", replayLog.Len(), log.Len())
	}
}

func TestReplayRejectsOutOfRangeEndpoints(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(10)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	records := []Record{{Src: 0, Dst: topo.NodeID(tt.NumNodes() + 5), Size: 64}}
	if _, err := Replay(fab, records, ReplayOptions{}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
}

func TestReplayEmptyTraceIsNoop(t *testing.T) {
	tt := topo.MustNew(topo.SmallConfig(2))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(11)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	n, err := Replay(fab, nil, ReplayOptions{})
	if err != nil || n != 0 {
		t.Fatalf("empty replay returned (%d, %v)", n, err)
	}
}

func TestObserverSeesAppAwareTraffic(t *testing.T) {
	// The observer must also see traffic routed through the application-aware
	// selector (the per-message hook and the observer are independent).
	tt := topo.MustNew(topo.SmallConfig(3))
	pol := routing.MustNewPolicy(tt, routing.DefaultParams())
	eng := sim.NewEngine(12)
	fab := network.MustNew(eng, tt, pol, network.DefaultConfig())
	a := alloc.MustAllocate(tt, alloc.GroupStriped, 4, nil, nil)
	c := mpi.MustNewComm(fab, a, mpi.Config{
		Routing: func(int) mpi.RoutingProvider {
			return mpi.AppAwareRouting{Selector: core.MustNew(core.DefaultConfig())}
		},
	})
	log := NewLog()
	log.Attach(fab)
	if err := c.Run(func(r *mpi.Rank) { r.Alltoall(8192) }); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("observer saw no traffic from the application-aware communicator")
	}
	log.Detach(fab)
}
