// Package msglog provides fabric-wide communication tracing and trace-driven
// replay. A Log attaches to the fabric's delivery observer and records every
// completed message transfer (endpoints, size, timing, per-message NIC counter
// deltas); the trace can be summarized (traffic matrix, size histogram,
// latency distribution), saved and loaded as JSON Lines, and replayed onto a
// fresh fabric as an open-loop traffic source. Trace-driven replay is the
// standard methodology of the interconnect-simulation literature the paper
// positions itself against, and it lets a communication pattern captured once
// be re-examined under different routing modes or topologies.
package msglog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/sim"
	"dragonfly/internal/topo"
)

// Record is one captured message transfer.
type Record struct {
	// Src and Dst are the endpoint nodes.
	Src topo.NodeID `json:"src"`
	Dst topo.NodeID `json:"dst"`
	// Size is the payload size in bytes.
	Size int64 `json:"size"`
	// SendStart and DeliveredAt are the posting and delivery times in cycles.
	SendStart   sim.Time `json:"send_start"`
	DeliveredAt sim.Time `json:"delivered_at"`
	// LatencyCycles is the average request-response packet latency of the
	// message and StallRatio its per-flit stall ratio (0 for loopback).
	LatencyCycles float64 `json:"latency_cycles"`
	StallRatio    float64 `json:"stall_ratio"`
	// MinimalFraction is the share of the message's packets routed minimally.
	MinimalFraction float64 `json:"minimal_fraction"`
}

// TransmissionCycles returns the delivery time minus the posting time.
func (r Record) TransmissionCycles() int64 { return r.DeliveredAt - r.SendStart }

// Log captures delivery records from a fabric.
type Log struct {
	records []Record
	// MaxRecords bounds the log size; 0 means unbounded. Once reached, further
	// deliveries are counted but not stored.
	MaxRecords int
	dropped    uint64

	obsID network.ObserverID
}

// NewLog returns an empty log. Attach it with Attach.
func NewLog() *Log { return &Log{} }

// Attach registers the log as one of the fabric's delivery observers. It
// coexists with other observers (per-job delivery capture during a concurrent
// run, telemetry), so a fabric-wide trace can be taken while jobs record
// their own deliveries.
func (l *Log) Attach(f *network.Fabric) { l.obsID = f.AddDeliveryObserver(l.observe) }

// Detach removes the log's delivery observer from the fabric.
func (l *Log) Detach(f *network.Fabric) {
	f.RemoveDeliveryObserver(l.obsID)
	l.obsID = 0
}

// observe converts a delivery into a record.
func (l *Log) observe(d network.Delivery) {
	if l.MaxRecords > 0 && len(l.records) >= l.MaxRecords {
		l.dropped++
		return
	}
	minFrac := 0.0
	if d.Counters.RequestPackets > 0 {
		minFrac = float64(d.Counters.MinimalPackets) / float64(d.Counters.RequestPackets)
	}
	l.records = append(l.records, Record{
		Src:             d.Src,
		Dst:             d.Dst,
		Size:            d.Size,
		SendStart:       d.SendStart,
		DeliveredAt:     d.DeliveredAt,
		LatencyCycles:   d.Counters.AvgPacketLatency(),
		StallRatio:      d.Counters.StallRatio(),
		MinimalFraction: minFrac,
	})
}

// Records returns the captured records in delivery order. The caller must not
// modify the returned slice.
func (l *Log) Records() []Record { return l.records }

// Len returns the number of stored records.
func (l *Log) Len() int { return len(l.records) }

// Dropped returns the number of deliveries discarded because MaxRecords was
// reached.
func (l *Log) Dropped() uint64 { return l.dropped }

// TotalBytes sums the payload bytes of every stored record.
func (l *Log) TotalBytes() int64 {
	var total int64
	for _, r := range l.records {
		total += r.Size
	}
	return total
}

// TrafficMatrix builds the node-to-node byte matrix of the trace, keyed by
// source node then destination node. Only node pairs that exchanged data
// appear.
func (l *Log) TrafficMatrix() map[topo.NodeID]map[topo.NodeID]int64 {
	out := make(map[topo.NodeID]map[topo.NodeID]int64)
	for _, r := range l.records {
		row, ok := out[r.Src]
		if !ok {
			row = make(map[topo.NodeID]int64)
			out[r.Src] = row
		}
		row[r.Dst] += r.Size
	}
	return out
}

// SizeHistogram buckets message sizes by powers of two starting at minSize and
// returns the bucket lower bounds and counts.
func (l *Log) SizeHistogram(minSize int64) (bounds []int64, counts []int) {
	if minSize < 1 {
		minSize = 1
	}
	var maxSize int64
	for _, r := range l.records {
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	for b := minSize; ; b *= 2 {
		bounds = append(bounds, b)
		if b >= maxSize {
			break
		}
	}
	counts = make([]int, len(bounds))
	for _, r := range l.records {
		// Advance while the size reaches the NEXT bucket's lower bound: a size
		// strictly between two bounds stays in the lower bucket (bucket idx
		// covers [bounds[idx], bounds[idx+1])). Scanning against the current
		// bound instead used to push in-between sizes one bucket too high.
		idx := 0
		for idx < len(bounds)-1 && r.Size >= bounds[idx+1] {
			idx++
		}
		counts[idx]++
	}
	return bounds, counts
}

// Latencies returns the per-message average packet latency series, sorted
// ascending, for distribution analysis.
func (l *Log) Latencies() []float64 {
	out := make([]float64, 0, len(l.records))
	for _, r := range l.records {
		if r.LatencyCycles > 0 {
			out = append(out, r.LatencyCycles)
		}
	}
	sort.Float64s(out)
	return out
}

// WriteJSONL writes the trace as one JSON object per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range l.records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveJSONL writes the trace to a file, syncing it to stable storage before
// returning so a crash right after a successful save cannot lose the capture.
func (l *Log) SaveJSONL(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.WriteJSONL(f); err != nil {
		return err
	}
	return f.Sync()
}

// ReadJSONL parses a trace previously written with WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("msglog: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadJSONL reads a trace from a file.
func LoadJSONL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// ReplayOptions configure a trace replay.
type ReplayOptions struct {
	// Mode is the routing mode replayed messages use.
	Mode routing.Mode
	// TimeScale stretches (>1) or compresses (<1) the original inter-send
	// gaps; 0 means 1.0 (original pacing).
	TimeScale float64
	// NodeMap remaps trace nodes onto the target fabric's nodes; nil replays
	// onto the original node ids (which must exist on the target topology).
	NodeMap map[topo.NodeID]topo.NodeID
}

// Replay schedules every record of the trace onto the fabric as an open-loop
// source: each message is posted at its original SendStart (relative to the
// first record, scaled by TimeScale) regardless of when earlier messages
// complete. It returns the number of messages scheduled and an error if any
// endpoint falls outside the target topology.
func Replay(f *network.Fabric, records []Record, opts ReplayOptions) (int, error) {
	if len(records) == 0 {
		return 0, nil
	}
	scale := opts.TimeScale
	if scale <= 0 {
		scale = 1
	}
	mapNode := func(n topo.NodeID) topo.NodeID {
		if opts.NodeMap != nil {
			if m, ok := opts.NodeMap[n]; ok {
				return m
			}
		}
		return n
	}
	base := records[0].SendStart
	total := f.Topology().NumNodes()
	now := f.Engine().Now()
	scheduled := 0
	for _, r := range records {
		src, dst := mapNode(r.Src), mapNode(r.Dst)
		if int(src) < 0 || int(src) >= total || int(dst) < 0 || int(dst) >= total {
			return scheduled, fmt.Errorf("msglog: record endpoint %d->%d outside the target topology (%d nodes)",
				src, dst, total)
		}
		offset := sim.Time(float64(r.SendStart-base) * scale)
		size := r.Size
		f.Engine().Schedule(now+offset, func() {
			// Errors are impossible here: endpoints were validated above and
			// sizes come from previously delivered messages.
			_ = f.Send(src, dst, size, network.SendOptions{Mode: opts.Mode}, nil)
		})
		scheduled++
	}
	return scheduled, nil
}
