// Package sim provides a small deterministic discrete-event simulation engine
// used by the Dragonfly network model. Time is measured in NIC clock cycles
// (int64). All randomness is derived from explicitly seeded streams so that
// every experiment is reproducible given a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in NIC clock cycles.
type Time = int64

// Event is a unit of work scheduled at a point in simulated time.
type Event struct {
	// At is the simulated time at which the event fires.
	At Time
	// Fn is the action executed when the event fires.
	Fn func()

	seq   uint64 // tie-breaker for deterministic ordering
	index int    // heap index
}

// eventQueue is a min-heap of events ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	seed   int64
	nexec  uint64
	limit  uint64 // safety limit on executed events; 0 means unlimited
	halted bool
}

// NewEngine returns an engine whose clock starts at 0 and whose random stream
// is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// ExecutedEvents reports how many events have been executed so far.
func (e *Engine) ExecutedEvents() uint64 { return e.nexec }

// SetEventLimit installs a safety cap on the number of executed events.
// Run returns an error when the cap is exceeded. A limit of 0 disables the cap.
func (e *Engine) SetEventLimit(limit uint64) { e.limit = limit }

// Schedule schedules fn to run at absolute time at. Scheduling in the past is
// clamped to the current time. It returns the scheduled event, which may be
// passed to Cancel.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{At: at, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay cycles from the current time.
func (e *Engine) After(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Cancel removes a previously scheduled event from the queue. Cancelling an
// already executed or already cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue is empty, Halt is called,
// or the configured event limit is exceeded (in which case an error is
// returned).
func (e *Engine) Run() error {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.At > e.now {
			e.now = ev.At
		}
		e.nexec++
		if e.limit > 0 && e.nexec > e.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
		}
		ev.Fn()
	}
	return nil
}

// Step executes exactly one event (the earliest pending one). It returns false
// when the queue is empty. The error mirrors Run's event-limit behaviour.
func (e *Engine) Step() (bool, error) {
	if len(e.queue) == 0 {
		return false, nil
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.At > e.now {
		e.now = ev.At
	}
	e.nexec++
	if e.limit > 0 && e.nexec > e.limit {
		return false, fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
	}
	ev.Fn()
	return true, nil
}

// RunUntil executes events in time order until the queue is empty or the next
// event would fire after deadline. The clock is advanced to deadline if the
// queue empties earlier.
func (e *Engine) RunUntil(deadline Time) error {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := e.queue[0]
		if ev.At > deadline {
			break
		}
		heap.Pop(&e.queue)
		if ev.At > e.now {
			e.now = ev.At
		}
		e.nexec++
		if e.limit > 0 && e.nexec > e.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
		}
		ev.Fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
