// Package sim provides a small deterministic discrete-event simulation engine
// used by the Dragonfly network model. Time is measured in NIC clock cycles
// (int64). All randomness is derived from explicitly seeded streams so that
// every experiment is reproducible given a seed.
//
// The engine is built for allocation-free steady state: events are value
// types stored in a slot array recycled through a free-list, ordered by an
// indexed 4-ary min-heap of slot ids. Hot paths (the network fabric, the
// background-noise generators, rank compute delays) schedule typed events —
// a Handler plus two integer arguments — so that a simulated packet hop costs
// no heap allocation at all; closure-based scheduling remains available for
// cold paths. Events fire in strict (At, seq) order, where seq is the
// schedule order, so execution order is a total order independent of the heap
// shape: the engine is byte-compatible with the historical container/heap
// implementation.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in NIC clock cycles.
type Time = int64

// Handler receives typed events. Implementations are pointer-shaped (the
// scheduling site converts a pointer into the interface), so scheduling a
// typed event performs no allocation. The two integer arguments are opaque to
// the engine; callers use them as an opcode and operand, or as two operands.
type Handler interface {
	HandleEvent(e *Engine, a, b int64)
}

// EventID is a cancellation handle for a scheduled event. The zero EventID is
// invalid (Cancel ignores it). Handles are generation-counted: once the event
// has fired or been cancelled, the handle goes stale and cancelling it is a
// guaranteed no-op even if the underlying slot has been recycled for a newer
// event.
type EventID uint64

// event is one scheduled unit of work. Events live in Engine.slots and are
// recycled through the free-list; they are never individually heap-allocated.
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order, unique per engine epoch

	// Exactly one of fn and h is set. Typed events carry (h, a, b); closure
	// events carry fn.
	fn   func()
	h    Handler
	a, b int64

	gen     uint32 // bumped on every release; stale EventIDs never match
	heapIdx int32  // position in Engine.heap, -1 when not queued
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now   Time
	slots []event
	heap  []int32 // 4-ary min-heap of slot indices, ordered by (at, seq)
	free  []int32 // stack of released slot indices

	seq    uint64
	rng    *rand.Rand
	seed   int64
	nexec  uint64
	limit  uint64 // safety limit on executed events; 0 means unlimited
	halted bool

	// owner is the sharded driver attached by NewSharded, nil for a plain
	// serial engine. When set, Run/Step/RunUntil/Pending delegate to it so
	// every existing drive path observes the events parked in shard heaps.
	owner *Sharded
}

// NewEngine returns an engine whose clock starts at 0 and whose random stream
// is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Reset rewinds the engine to the state NewEngine(seed) would produce while
// keeping the slot array, heap and free-list storage for reuse. Every pending
// event is dropped and every outstanding EventID goes permanently stale. It
// is the engine half of cross-trial system reuse: a Reset engine behaves
// byte-identically to a freshly constructed one.
func (e *Engine) Reset(seed int64) {
	for i := range e.slots {
		s := &e.slots[i]
		s.fn, s.h = nil, nil
		s.heapIdx = -1
		s.gen++
	}
	// Refill the free stack so slots are handed out in the same (ascending)
	// order a fresh engine would allocate them.
	e.free = e.free[:0]
	for i := len(e.slots) - 1; i >= 0; i-- {
		e.free = append(e.free, int32(i))
	}
	e.heap = e.heap[:0]
	e.now, e.seq, e.nexec, e.halted = 0, 0, 0, false
	e.limit = 0
	e.seed = seed
	e.rng.Seed(seed)
	if e.owner != nil {
		e.owner.reset()
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created (or last Reset) with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// ExecutedEvents reports how many events have been executed so far.
func (e *Engine) ExecutedEvents() uint64 { return e.nexec }

// SetEventLimit installs a safety cap on the number of executed events.
// Run returns an error when the cap is exceeded. A limit of 0 disables the cap.
func (e *Engine) SetEventLimit(limit uint64) { e.limit = limit }

// Schedule schedules fn to run at absolute time at. Scheduling in the past is
// clamped to the current time. The returned handle may be passed to Cancel.
func (e *Engine) Schedule(at Time, fn func()) EventID {
	return e.schedule(at, fn, nil, 0, 0)
}

// After schedules fn to run delay cycles from the current time.
func (e *Engine) After(delay Time, fn func()) EventID {
	return e.Schedule(e.now+max(delay, 0), fn)
}

// ScheduleCall schedules a typed event: at time at, h.HandleEvent(e, a, b) is
// invoked. Unlike Schedule it allocates nothing when h is a pointer, which is
// what the fabric and noise hot paths rely on. Scheduling in the past is
// clamped to the current time.
func (e *Engine) ScheduleCall(at Time, h Handler, a, b int64) EventID {
	return e.schedule(at, nil, h, a, b)
}

// AfterCall schedules a typed event delay cycles from the current time.
func (e *Engine) AfterCall(delay Time, h Handler, a, b int64) EventID {
	return e.ScheduleCall(e.now+max(delay, 0), h, a, b)
}

// schedule places one event (closure or typed) into a recycled slot and the
// heap, and returns its generation-counted handle.
func (e *Engine) schedule(at Time, fn func(), h Handler, a, b int64) EventID {
	if e.owner != nil && e.owner.windowActive.Load() {
		panic("sim: Engine scheduling API called from a conforming-parallel handler; use ShardContext.Schedule")
	}
	at = max(at, e.now)
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, event{})
		slot = int32(len(e.slots) - 1)
	}
	ev := &e.slots[slot]
	ev.at, ev.seq = at, e.seq
	ev.fn, ev.h, ev.a, ev.b = fn, h, a, b
	e.seq++
	ev.heapIdx = int32(len(e.heap))
	e.heap = append(e.heap, slot)
	e.siftUp(len(e.heap) - 1)
	return makeEventID(slot, ev.gen)
}

// makeEventID packs (slot, gen); slot is stored +1 so the zero EventID stays
// invalid.
func makeEventID(slot int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(uint32(slot+1)))
}

// Cancel removes a previously scheduled event from the queue and reports
// whether it removed anything. Cancelling the zero EventID, an already-fired
// or an already-cancelled event is a guaranteed no-op (the handle's
// generation no longer matches the slot), so stale handles can never corrupt
// the queue or cancel an unrelated recycled event.
func (e *Engine) Cancel(id EventID) bool {
	slot := int32(uint32(id)) - 1
	if slot < 0 || int(slot) >= len(e.slots) {
		return false
	}
	ev := &e.slots[slot]
	if ev.gen != uint32(id>>32) || ev.heapIdx < 0 {
		return false
	}
	e.removeAt(int(ev.heapIdx))
	e.release(slot)
	return true
}

// Pending reports the number of events waiting in the queue, including any
// parked in an attached sharded driver's shard heaps.
func (e *Engine) Pending() int {
	if e.owner != nil {
		return len(e.heap) + e.owner.pending()
	}
	return len(e.heap)
}

// Sharded returns the sharded driver attached to this engine, or nil.
func (e *Engine) Sharded() *Sharded { return e.owner }

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in time order until the queue is empty, Halt is called,
// or the configured event limit is exceeded (in which case an error is
// returned). On an engine with a sharded driver attached, Run drives the
// sharded loop (same canonical order, horizon windows for conforming
// events).
func (e *Engine) Run() error {
	if e.owner != nil {
		return e.owner.run()
	}
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		if err := e.dispatch(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes exactly one event (the earliest pending one). It returns false
// when the queue is empty. The error mirrors Run's event-limit behaviour.
func (e *Engine) Step() (bool, error) {
	if e.owner != nil {
		return e.owner.step()
	}
	if len(e.heap) == 0 {
		return false, nil
	}
	if err := e.dispatch(); err != nil {
		return false, err
	}
	return true, nil
}

// RunUntil executes events in time order until the queue is empty or the next
// event would fire after deadline. The clock is advanced to deadline if the
// queue empties earlier.
func (e *Engine) RunUntil(deadline Time) error {
	if e.owner != nil {
		return e.owner.runUntil(deadline)
	}
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		if e.slots[e.heap[0]].at > deadline {
			break
		}
		if err := e.dispatch(); err != nil {
			return err
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// dispatch pops the earliest event, advances the clock and executes it. The
// slot is released before the event body runs, so the body may immediately
// reuse it for a new event (self-rescheduling costs no queue growth).
func (e *Engine) dispatch() error {
	slot := e.heap[0]
	ev := &e.slots[slot]
	at, fn, h, a, b := ev.at, ev.fn, ev.h, ev.a, ev.b
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		e.slots[last].heapIdx = 0
		e.siftDown(0)
	}
	e.release(slot)

	if at > e.now {
		e.now = at
	}
	e.nexec++
	if e.limit > 0 && e.nexec > e.limit {
		return fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
	}
	if h != nil {
		h.HandleEvent(e, a, b)
	} else {
		fn()
	}
	return nil
}

// release returns a slot to the free-list and invalidates its handles.
func (e *Engine) release(slot int32) {
	ev := &e.slots[slot]
	ev.fn, ev.h = nil, nil
	ev.heapIdx = -1
	ev.gen++
	e.free = append(e.free, slot)
}

// --- indexed 4-ary min-heap over slot ids --------------------------------

// less orders slots by (at, seq); seq is unique, so the order is total.
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) siftUp(i int) {
	slot := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(slot, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slots[e.heap[i]].heapIdx = int32(i)
		i = p
	}
	e.heap[i] = slot
	e.slots[slot].heapIdx = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	slot := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		for c := first + 1; c < min(first+4, n); c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], slot) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slots[e.heap[i]].heapIdx = int32(i)
		i = best
	}
	e.heap[i] = slot
	e.slots[slot].heapIdx = int32(i)
}

// removeAt deletes the heap entry at position i (used by Cancel).
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if i < n {
		e.heap[i] = last
		e.slots[last].heapIdx = int32(i)
		e.siftDown(i)
		if e.heap[i] == last {
			e.siftUp(i)
		}
	}
}
