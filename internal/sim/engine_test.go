package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at same time not FIFO: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var sawAt Time
	e.After(100, func() {
		sawAt = e.Now()
		e.After(50, func() { sawAt = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAt != 150 {
		t.Fatalf("nested After fired at %d, want 150", sawAt)
	}
}

func TestSchedulePastClamped(t *testing.T) {
	e := NewEngine(1)
	var fired Time = -1
	e.Schedule(100, func() {
		e.Schedule(10, func() { fired = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1, func() { count++; e.Halt() })
	e.Schedule(2, func() { count++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 after Halt", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	if err := e.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 after Run", fired)
	}
}

func TestRunUntilAdvancesClockWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	if err := e.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %d, want 500", e.Now())
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetEventLimit(5)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	if err := e.Run(); err == nil {
		t.Fatal("expected event limit error")
	}
}

func TestExecutedEvents(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.ExecutedEvents() != 7 {
		t.Fatalf("executed = %d, want 7", e.ExecutedEvents())
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
	if a.Seed() != 42 {
		t.Fatalf("Seed() = %d, want 42", a.Seed())
	}
}

// Property: events always execute in non-decreasing time order, regardless of
// the insertion order.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []Time
		for _, at := range times {
			at := Time(at)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never runs backwards.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine(3)
		last := Time(0)
		ok := true
		for _, d := range delays {
			d := Time(d)
			e.After(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
