package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at same time not FIFO: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var sawAt Time
	e.After(100, func() {
		sawAt = e.Now()
		e.After(50, func() { sawAt = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAt != 150 {
		t.Fatalf("nested After fired at %d, want 150", sawAt)
	}
}

func TestSchedulePastClamped(t *testing.T) {
	e := NewEngine(1)
	var fired Time = -1
	e.Schedule(100, func() {
		e.Schedule(10, func() { fired = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("first Cancel returned false")
	}
	if e.Cancel(ev) {
		t.Fatal("double cancel removed something")
	}
	if e.Cancel(0) {
		t.Fatal("zero EventID cancelled something")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// TestCancelAfterFired pins the stale-handle semantics: cancelling an event
// that has already executed is a no-op even when its slot has been recycled
// for a newer event. (The historical container/heap implementation trusted a
// possibly-stale index here; the generation counter makes staleness explicit.)
func TestCancelAfterFired(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	old := e.Schedule(10, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The next event recycles the fired event's slot.
	replacement := e.Schedule(20, func() { fired++ })
	if e.Cancel(old) {
		t.Fatal("cancelling a fired event reported success")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatal("stale Cancel removed the recycled slot's new event")
	}
	if e.Cancel(replacement) {
		t.Fatal("cancelling the second fired event reported success")
	}
}

// TestCancelDoesNotCorruptQueue interleaves schedules, cancels, double
// cancels and stale cancels and checks the surviving events still fire in
// exact (At, seq) order.
func TestCancelDoesNotCorruptQueue(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	var ids []EventID
	for i := 0; i < 50; i++ {
		i := i
		ids = append(ids, e.Schedule(Time(100-i), func() { fired = append(fired, i) }))
	}
	// Cancel every third event, some of them twice.
	for i := 0; i < 50; i += 3 {
		if !e.Cancel(ids[i]) {
			t.Fatalf("cancel %d failed", i)
		}
		e.Cancel(ids[i]) // double cancel: must be a no-op
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 50; i += 3 {
		want++ // cancelled
	}
	if len(fired) != 50-want {
		t.Fatalf("fired %d events, want %d", len(fired), 50-want)
	}
	// Scheduled at Time(100-i): later i fires earlier. Check ordering.
	for k := 1; k < len(fired); k++ {
		if fired[k-1] < fired[k] {
			t.Fatalf("events fired out of time order: %v", fired)
		}
	}
	// Stale cancels after the run must all be no-ops.
	for i, id := range ids {
		if e.Cancel(id) {
			t.Fatalf("stale cancel of event %d succeeded after run", i)
		}
	}
}

type recordingHandler struct {
	calls [][2]int64
}

func (h *recordingHandler) HandleEvent(e *Engine, a, b int64) {
	h.calls = append(h.calls, [2]int64{a, b})
}

func TestTypedEvents(t *testing.T) {
	e := NewEngine(1)
	h := &recordingHandler{}
	e.ScheduleCall(20, h, 2, 20)
	e.ScheduleCall(10, h, 1, 10)
	e.AfterCall(15, h, 3, 15)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 10}, {3, 15}, {2, 20}}
	if len(h.calls) != len(want) {
		t.Fatalf("calls = %v, want %v", h.calls, want)
	}
	for i := range want {
		if h.calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", h.calls, want)
		}
	}
}

// TestTypedAndClosureInterleave checks typed and closure events share one
// (At, seq) order.
func TestTypedAndClosureInterleave(t *testing.T) {
	e := NewEngine(1)
	var order []int64
	h := &recordingHandler{}
	e.Schedule(5, func() { order = append(order, -1) })
	e.ScheduleCall(5, h, 1, 0)
	e.Schedule(5, func() { order = append(order, -2) })
	e.ScheduleCall(5, h, 2, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != -1 || order[1] != -2 {
		t.Fatalf("closure order: %v", order)
	}
	if len(h.calls) != 2 || h.calls[0][0] != 1 || h.calls[1][0] != 2 {
		t.Fatalf("typed order: %v", h.calls)
	}
}

func TestCancelTyped(t *testing.T) {
	e := NewEngine(1)
	h := &recordingHandler{}
	id := e.ScheduleCall(10, h, 1, 0)
	if !e.Cancel(id) {
		t.Fatal("cancel of typed event failed")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.calls) != 0 {
		t.Fatal("cancelled typed event fired")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1, func() { count++; e.Halt() })
	e.Schedule(2, func() { count++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 after Halt", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	if err := e.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 after Run", fired)
	}
}

func TestRunUntilAdvancesClockWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	if err := e.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %d, want 500", e.Now())
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetEventLimit(5)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	if err := e.Run(); err == nil {
		t.Fatal("expected event limit error")
	}
}

func TestExecutedEvents(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.ExecutedEvents() != 7 {
		t.Fatalf("executed = %d, want 7", e.ExecutedEvents())
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
	if a.Seed() != 42 {
		t.Fatalf("Seed() = %d, want 42", a.Seed())
	}
}

// TestResetMatchesFresh is the engine half of cross-trial reuse: after Reset,
// the engine must behave byte-identically to a freshly constructed engine —
// clock, event order, executed counts and random stream.
func TestResetMatchesFresh(t *testing.T) {
	run := func(e *Engine) ([]Time, []int64) {
		var fired []Time
		var draws []int64
		for _, at := range []Time{30, 10, 20, 10} {
			at := at
			e.Schedule(at, func() {
				fired = append(fired, e.Now())
				draws = append(draws, e.Rand().Int63())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fired, draws
	}
	used := NewEngine(7)
	run(used)             // dirty the engine with a first epoch
	used.SetEventLimit(2) // must not survive the Reset (fresh engines are unlimited)
	used.Reset(99)

	fresh := NewEngine(99)
	fa, da := run(fresh)
	fb, db := run(used)
	if len(fa) != len(fb) || len(da) != len(db) {
		t.Fatal("reset engine ran a different number of events")
	}
	for i := range fa {
		if fa[i] != fb[i] || da[i] != db[i] {
			t.Fatalf("reset engine diverged at event %d: fresh (%d, %d) vs reset (%d, %d)",
				i, fa[i], da[i], fb[i], db[i])
		}
	}
	if used.Now() != fresh.Now() || used.ExecutedEvents() != fresh.ExecutedEvents() {
		t.Fatal("reset engine clock/exec count differs from fresh engine")
	}
	if used.Seed() != 99 {
		t.Fatalf("Seed() after Reset = %d, want 99", used.Seed())
	}
}

// TestResetInvalidatesHandles: EventIDs from before a Reset must never cancel
// events scheduled after it.
func TestResetInvalidatesHandles(t *testing.T) {
	e := NewEngine(1)
	old := e.Schedule(10, func() {})
	e.Reset(1)
	fired := false
	e.Schedule(10, func() { fired = true })
	if e.Cancel(old) {
		t.Fatal("pre-Reset handle cancelled a post-Reset event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("post-Reset event did not fire")
	}
}

// Property: events always execute in non-decreasing time order, regardless of
// the insertion order.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []Time
		for _, at := range times {
			at := Time(at)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never disturbs the order of the rest.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(times []uint16, mask []bool) bool {
		e := NewEngine(7)
		var fired []Time
		ids := make([]EventID, len(times))
		for i, at := range times {
			at := Time(at)
			ids[i] = e.Schedule(at, func() { fired = append(fired, at) })
		}
		cancelled := 0
		for i := range ids {
			if i < len(mask) && mask[i] {
				if !e.Cancel(ids[i]) {
					return false
				}
				cancelled++
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(times)-cancelled {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never runs backwards.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine(3)
		last := Time(0)
		ok := true
		for _, d := range delays {
			d := Time(d)
			e.After(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScheduleRun measures the steady-state cost of the schedule/fire
// cycle with closure events.
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

type benchHandler struct {
	e *Engine
	n int64
	N int64
}

func (h *benchHandler) HandleEvent(e *Engine, a, b int64) {
	h.n++
	if h.n < h.N {
		e.AfterCall(1, h, 0, 0)
	}
}

// BenchmarkScheduleRunTyped measures the same cycle with typed events; it
// must report zero allocs/op.
func BenchmarkScheduleRunTyped(b *testing.B) {
	e := NewEngine(1)
	h := &benchHandler{e: e, N: int64(b.N)}
	b.ReportAllocs()
	b.ResetTimer()
	e.AfterCall(1, h, 0, 0)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
