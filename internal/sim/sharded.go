package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded partitions an Engine's event stream across per-group shard heaps
// and advances them with a conservative parallel discrete-event loop. The
// partition domains are dragonfly groups: every router, NIC and rank belongs
// to exactly one group, groups are mapped contiguously onto shards, and
// groups are connected only by global links whose fixed latency supplies the
// guaranteed lookahead a conservative engine needs.
//
// Two event classes flow through the shard heaps, with one hard rule each:
//
//   - Resident events (ScheduleResident) are serial-domain events that
//     merely *live* on the shard that owns their group — the fabric files
//     packet hops under the group of the router or NIC they touch. They keep
//     the engine's global (at, seq) key, so their execution order — and the
//     bytes every golden table hashes — is identical to the unsharded engine
//     at any shard count, by construction. They are executed one at a time
//     (the paper's globally-adaptive UGAL consumes one shared random stream
//     and a global congestion view, which makes packet-level execution
//     order-serial if output must stay byte-identical).
//
//   - Local events (ScheduleLocal / ShardContext.Schedule) are the
//     conforming-parallel class: a local handler may only touch state of its
//     own group, schedule into its own group at any future time, or schedule
//     into another group at least Lookahead() cycles ahead. Under Run, all
//     shards execute their local events concurrently inside bounded horizon
//     windows, exchanging cross-group events through per-pair SPSC
//     mailboxes that are drained at the window barrier.
//
// Determinism is the contract, not an aspiration: local events are keyed by
// (at, class, dstGroup, srcGroup, srcSeq) where srcSeq is a per-source-group
// schedule counter assigned at scheduling time. The key never depends on
// shard count, window boundaries or drain order, so a same-seed run with
// Shards=N is byte-identical to serial whether it is driven by Run, Step or
// RunUntil.
//
// A Sharded attaches to its Engine at construction: Engine.Run, Step,
// RunUntil and Pending transparently delegate to it, so every existing drive
// path (the cooperative MPI scheduler, the batch scheduler, Engine().Run()
// through the facade escape hatch) observes the complete event stream.
type Sharded struct {
	engine    *Engine
	groups    int
	shards    int
	lookahead Time

	// shardOf maps group -> shard; groups are assigned contiguously so a
	// shard owns a dense run of groups (matching the topology's
	// group-contiguous router/NIC ID ranges).
	shardOf []int32

	resident []shardHeap // per shard: serial-domain events, global (at, seq) keys
	local    []shardHeap // per shard: conforming-parallel events
	nlocal   int         // total local events pending across shards

	// deferred holds serial-domain events produced inside parallel windows
	// (ShardContext.ScheduleSerial): the shardable fabric's delivery
	// completions. They are keyed like local events — (at, class, dst, src,
	// per-src-group seq) — so their order never depends on shard count or
	// window boundaries, and they execute in the serial domain at the first
	// barrier at or after their timestamp.
	deferred shardHeap

	// srcSeq is the per-group schedule counter local event keys embed. Each
	// counter is written only by the shard that owns the group (or by the
	// single-threaded serial context), so windows never race on it.
	srcSeq []uint64

	// mailboxes[src*shards+dst] buffers cross-shard events: resident
	// handoffs while a resident event executes, local cross-group posts
	// while a window runs. Each cell has exactly one writer (the source
	// shard) and one reader (the coordinator at the barrier), the SPSC
	// discipline that keeps the hot path lock-free.
	mailboxes [][]shardEvent

	// execShard is the shard whose resident event is currently executing
	// (-1 otherwise); ScheduleResident uses it to route cross-shard handoffs
	// through the mailboxes.
	execShard int32

	// windowActive guards the serial-domain APIs against misuse from inside
	// a parallel window, turning a silent data race into a panic.
	windowActive atomic.Bool

	// ctx holds one reusable ShardContext per shard.
	ctx []ShardContext

	// Per-shard window tallies, written by each worker in its own slot and
	// folded in at the barrier; the barrier re-raises the lowest-shard panic
	// so failure order is deterministic.
	workerPanic  []any
	workerMaxAt  []Time
	workerNexec  []uint64
	workerPushed []uint64

	// windows and parallelWindows count horizon windows executed and how
	// many of them had two or more shards active (scaling diagnostics).
	// localExec counts conforming-parallel events executed inside windows —
	// the numerator of the "conforming event fraction" diagnostics report.
	windows         uint64
	parallelWindows uint64
	crossPosts      uint64
	localExec       uint64

	// Barrier observability: batchedWindows counts windows that opened
	// immediately after another window with no serial dispatch in between
	// (back-to-back windows are the payoff of a near-empty serial domain);
	// occupancySum accumulates the number of active shards per window, so
	// occupancySum/windows is the mean window occupancy; barrierWait is the
	// cumulative wall-clock time the coordinator spent parked at window
	// barriers. barrierWait is a wall-clock diagnostic only — it never feeds
	// back into simulated time or event order.
	batchedWindows uint64
	occupancySum   uint64
	barrierWait    time.Duration
	prevWasWindow  bool

	// Persistent worker pool. Workers are spawned lazily at the first
	// multi-shard window, parked on their per-shard wake channel between
	// windows, and torn down by Shutdown (run completion, Engine.Reset, or
	// the MPI scheduler's shutdown paths). poolWake carries the window end;
	// closing it is the quit signal. poolDone is the barrier: every woken
	// worker sends exactly one token per window, panics included.
	poolWake []chan Time
	poolDone chan int
	poolWG   sync.WaitGroup
	poolUp   bool

	// actCursor is the reusable per-shard cursor array for the barrier-action
	// k-way merge (runBarrierActions).
	actCursor []int
}

// event classes, ordered: at equal timestamps serial-domain events execute
// before conforming-parallel ones (a fixed, shard-count-independent rule).
// Deferred-serial events (ShardContext.ScheduleSerial) sit between the two:
// they are serial-domain work produced inside windows — the shardable
// fabric's delivery completions — that executes at the first barrier at or
// after its timestamp.
const (
	classResident   = 0
	classSerialPost = 1
	classLocal      = 2
)

// shardEvent is one event parked in a shard heap or mailbox. Resident events
// use seq = global engine sequence (src is unused); local events use
// (dst group, src group, per-src-group seq).
type shardEvent struct {
	at    Time
	seq   uint64
	dst   int32 // owning (destination) group
	src   int32 // scheduling (source) group, local events only
	class int8
	h     Handler
	lh    LocalHandler
	a, b  int64
}

// LocalHandler receives conforming-parallel events. Implementations must
// only touch state owned by the executing event's group; the ShardContext
// is the sole legal scheduling interface (the *Engine is off-limits inside a
// window).
type LocalHandler interface {
	HandleLocalEvent(sc *ShardContext, a, b int64)
}

// NewSharded builds a sharded driver over engine with the given number of
// partition domains (groups), worker shards and lookahead, and attaches it:
// from here on the engine's Run/Step/RunUntil/Pending delegate to the
// sharded loop. Shards is clamped to [1, groups]; lookahead must be
// positive — it is the minimum cross-group event latency (for the fabric,
// the minimum global-link traversal time) that bounds each horizon window.
func NewSharded(engine *Engine, groups, shards int, lookahead Time) (*Sharded, error) {
	if engine == nil {
		return nil, fmt.Errorf("sim: NewSharded needs an engine")
	}
	if engine.owner != nil {
		return nil, fmt.Errorf("sim: engine already has a sharded driver attached")
	}
	if groups < 1 {
		return nil, fmt.Errorf("sim: NewSharded needs at least one group, got %d", groups)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: NewSharded needs a positive lookahead, got %d", lookahead)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > groups {
		shards = groups
	}
	s := &Sharded{
		engine:       engine,
		groups:       groups,
		shards:       shards,
		lookahead:    lookahead,
		shardOf:      make([]int32, groups),
		resident:     make([]shardHeap, shards),
		local:        make([]shardHeap, shards),
		srcSeq:       make([]uint64, groups),
		mailboxes:    make([][]shardEvent, shards*shards),
		execShard:    -1,
		ctx:          make([]ShardContext, shards),
		workerPanic:  make([]any, shards),
		workerMaxAt:  make([]Time, shards),
		workerNexec:  make([]uint64, shards),
		workerPushed: make([]uint64, shards),
		actCursor:    make([]int, shards),
	}
	// Contiguous block partition: shard i owns groups [i*q+min(i,r), ...),
	// the same arithmetic at every shard count so ownership is predictable.
	q, r := groups/shards, groups%shards
	g := 0
	for i := 0; i < shards; i++ {
		n := q
		if i < r {
			n++
		}
		for j := 0; j < n; j++ {
			s.shardOf[g] = int32(i)
			g++
		}
	}
	for i := range s.ctx {
		s.ctx[i] = ShardContext{s: s, shard: int32(i)}
	}
	engine.owner = s
	return s, nil
}

// Engine returns the engine this driver is attached to.
func (s *Sharded) Engine() *Engine { return s.engine }

// Shards returns the number of worker shards.
func (s *Sharded) Shards() int { return s.shards }

// Groups returns the number of partition domains.
func (s *Sharded) Groups() int { return s.groups }

// Lookahead returns the horizon-window bound in cycles.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// ShardOf returns the shard that owns group g.
func (s *Sharded) ShardOf(g int) int { return int(s.shardOf[g]) }

// Windows returns how many horizon windows the driver has executed and how
// many of them ran two or more shards concurrently.
func (s *Sharded) Windows() (total, parallel uint64) { return s.windows, s.parallelWindows }

// CrossPosts returns how many cross-shard events have passed through the
// mailboxes.
func (s *Sharded) CrossPosts() uint64 { return s.crossPosts }

// ConformingExecuted returns how many conforming-parallel events have been
// executed inside horizon windows. Together with Engine.ExecutedEvents it
// yields the conforming event fraction — the share of the event stream that
// is eligible for multicore execution.
func (s *Sharded) ConformingExecuted() uint64 { return s.localExec }

// WindowStats is the per-run barrier/window diagnostic bundle exposed through
// System.Sharded(): how many horizon windows ran, how many of them ran with
// two or more shards active, how many opened back-to-back with no serial
// dispatch in between (micro-batching), the mean number of active shards per
// window, and the cumulative wall-clock time the coordinator spent parked at
// window barriers.
type WindowStats struct {
	Windows         uint64
	ParallelWindows uint64
	BatchedWindows  uint64
	MeanOccupancy   float64
	BarrierWait     time.Duration
}

// WindowStats returns the driver's window/barrier counters for the current
// run (Engine.Reset rewinds them).
func (s *Sharded) WindowStats() WindowStats {
	ws := WindowStats{
		Windows:         s.windows,
		ParallelWindows: s.parallelWindows,
		BatchedWindows:  s.batchedWindows,
		BarrierWait:     s.barrierWait,
	}
	if s.windows > 0 {
		ws.MeanOccupancy = float64(s.occupancySum) / float64(s.windows)
	}
	return ws
}

// pending returns the number of events parked in shard heaps (the engine's
// own heap is counted by the caller).
func (s *Sharded) pending() int {
	n := s.nlocal + len(s.deferred.ev)
	for i := range s.resident {
		n += len(s.resident[i].ev)
	}
	return n
}

// reset drops every shard-parked event and rewinds the local sequence
// counters; Engine.Reset calls it so a reset sharded system behaves
// byte-identically to a freshly built one.
func (s *Sharded) reset() {
	s.Shutdown()
	for i := range s.resident {
		s.resident[i].ev = s.resident[i].ev[:0]
		s.local[i].ev = s.local[i].ev[:0]
	}
	for i := range s.mailboxes {
		s.mailboxes[i] = s.mailboxes[i][:0]
	}
	for i := range s.srcSeq {
		s.srcSeq[i] = 0
	}
	for i := range s.ctx {
		sc := &s.ctx[i]
		sc.posts = sc.posts[:0]
		sc.sposts = sc.sposts[:0]
		sc.dposts = sc.dposts[:0]
	}
	s.deferred.ev = s.deferred.ev[:0]
	s.nlocal = 0
	s.execShard = -1
	s.windows, s.parallelWindows, s.crossPosts, s.localExec = 0, 0, 0, 0
	s.batchedWindows, s.occupancySum = 0, 0
	s.barrierWait = 0
	s.prevWasWindow = false
}

// ScheduleResident schedules a serial-domain event owned by group g: it is
// parked on g's shard heap but keyed by the engine's global (at, seq)
// counter, so it executes exactly where the unsharded engine would have
// executed it. The fabric files packet inject/deliver events here. Calling
// it from inside a parallel window panics — resident events belong to the
// serial domain by definition.
func (s *Sharded) ScheduleResident(g int32, at Time, h Handler, a, b int64) {
	if s.windowActive.Load() {
		panic("sim: ScheduleResident called from inside a parallel window")
	}
	e := s.engine
	at = max(at, e.now)
	ev := shardEvent{at: at, seq: e.seq, dst: g, class: classResident, h: h, a: a, b: b}
	e.seq++
	dst := s.shardOf[g]
	if cur := s.execShard; cur >= 0 && cur != dst {
		// Cross-group handoff while another shard's resident event executes:
		// park it in the SPSC mailbox; the dispatcher drains it (in canonical
		// key order — the key is already assigned) when the event returns.
		s.mailboxes[int(cur)*s.shards+int(dst)] = append(s.mailboxes[int(cur)*s.shards+int(dst)], ev)
		s.crossPosts++
		return
	}
	s.resident[dst].push(ev)
}

// ScheduleLocal schedules a conforming-parallel event into group g from
// outside any window (setup code, serial-domain handlers). Inside a window,
// local handlers use ShardContext.Schedule instead.
func (s *Sharded) ScheduleLocal(g int32, at Time, h LocalHandler, a, b int64) {
	if s.windowActive.Load() {
		panic("sim: ScheduleLocal called from inside a parallel window; use ShardContext.Schedule")
	}
	at = max(at, s.engine.now)
	ev := shardEvent{at: at, seq: s.srcSeq[g], dst: g, src: g, class: classLocal, lh: h, a: a, b: b}
	s.srcSeq[g]++
	s.local[s.shardOf[g]].push(ev)
	s.nlocal++
}

// ShardContext is the execution context handed to LocalHandlers: the
// executing event's group and simulated time, and the only legal scheduling
// interface inside a parallel window.
type ShardContext struct {
	s     *Sharded
	shard int32
	group int32
	now   Time
	// src and seq are the executing event's source group and per-src-group
	// sequence number: together with (now, group) they form the canonical key
	// Defer stamps onto barrier actions.
	src    int32
	seq    uint64
	posts  []shardEvent // same-shard pushes deferred until the pop loop ends
	sposts []shardEvent // deferred-serial posts, settled at the barrier
	dposts []shardEvent // barrier actions (Defer), merged and run at the barrier
}

// Now returns the executing event's simulated time. During a parallel
// window, shards sit at different local times; this is the executing
// shard's, not the global clock's.
func (sc *ShardContext) Now() Time { return sc.now }

// Group returns the group the executing event belongs to.
func (sc *ShardContext) Group() int32 { return sc.group }

// Shard returns the executing shard.
func (sc *ShardContext) Shard() int { return int(sc.shard) }

// Lookahead returns the minimum latency a cross-group Schedule must respect.
func (sc *ShardContext) Lookahead() Time { return sc.s.lookahead }

// Schedule schedules a conforming-parallel event into group g. Same-group
// events may fire at any at >= Now(); cross-group events must respect the
// lookahead (at >= Now() + Lookahead()) — that bound is what lets other
// shards execute the current window without seeing them, so violating it
// panics deterministically instead of corrupting the run.
func (sc *ShardContext) Schedule(g int32, at Time, h LocalHandler, a, b int64) {
	s := sc.s
	if at < sc.now {
		at = sc.now
	}
	ev := shardEvent{at: at, seq: s.srcSeq[sc.group], dst: g, src: sc.group, class: classLocal, lh: h, a: a, b: b}
	s.srcSeq[sc.group]++
	if g == sc.group {
		sc.posts = append(sc.posts, ev)
		return
	}
	if at < sc.now+s.lookahead {
		panic(fmt.Sprintf("sim: cross-group event from group %d to %d at t=%d violates lookahead %d (now %d)",
			sc.group, g, at, s.lookahead, sc.now))
	}
	dst := s.shardOf[g]
	if dst == sc.shard {
		sc.posts = append(sc.posts, ev)
		return
	}
	sc.mail(dst, ev)
}

// After schedules a same-group event delay cycles from Now().
func (sc *ShardContext) After(delay Time, h LocalHandler, a, b int64) {
	sc.Schedule(sc.group, sc.now+max(delay, 0), h, a, b)
}

// ScheduleSerial schedules a serial-domain event from inside a parallel
// window. The event is parked at the barrier and executes on the coordinator
// goroutine at the first barrier at or after at, ordered by the same
// shard-count-independent key as local events (at, class, group, src, seq) —
// it can never preempt the window that scheduled it, so an event whose time
// falls inside the current window executes "late" with the engine clock
// already advanced, exactly like an engine event scheduled in the past. The
// shardable fabric uses this for delivery completions, whose callbacks (rank
// wakeups, observers) need the full serial-domain API.
func (sc *ShardContext) ScheduleSerial(at Time, h Handler, a, b int64) {
	s := sc.s
	if at < sc.now {
		at = sc.now
	}
	ev := shardEvent{at: at, seq: s.srcSeq[sc.group], dst: sc.group, src: sc.group, class: classSerialPost, h: h, a: a, b: b}
	s.srcSeq[sc.group]++
	sc.sposts = append(sc.sposts, ev)
}

// Defer registers h.HandleEvent(engine, a, b) to run serially on the
// coordinator goroutine at this window's barrier. It is the promotion
// mechanism for serial-domain side effects of conforming-parallel events:
// the event itself (rank-compute wakeup bookkeeping, delivery-lane
// accounting) executes inside the window as group-owned work, and only the
// callback that needs the full serial-domain API — marking a rank runnable,
// firing delivery observers — waits for the barrier.
//
// Actions carry the executing event's canonical (time, class, dstGroup,
// srcGroup, seq) key and run in that order, merged across shards, so the
// barrier-action sequence — and everything downstream of it, like the MPI
// scheduler's FIFO runnable queue — is byte-identical at every shard count
// and in both drive modes. Actions from the same event run in registration
// order. The engine clock has already been folded forward to the window
// maximum when an action runs, exactly like a deferred-serial event.
func (sc *ShardContext) Defer(h Handler, a, b int64) {
	sc.dposts = append(sc.dposts, shardEvent{
		at: sc.now, seq: sc.seq, dst: sc.group, src: sc.src, class: classLocal, h: h, a: a, b: b,
	})
}

// mail appends to the (sc.shard, dst) SPSC mailbox.
func (sc *ShardContext) mail(dst int32, ev shardEvent) {
	i := int(sc.shard)*sc.s.shards + int(dst)
	sc.s.mailboxes[i] = append(sc.s.mailboxes[i], ev)
}

// --- drive loop -----------------------------------------------------------

// nextKey summarizes the earliest pending event of one source.
type nextKey struct {
	at  Time
	seq uint64
	ok  bool
}

// nextSerial returns the earliest serial-domain event across the engine heap,
// every resident shard heap and the deferred heap, and where it lives (-1 =
// engine heap, -2 = deferred heap, otherwise the shard index). At equal
// timestamps the class-0 stream (engine + resident, globally sequenced) wins
// over deferred-serial events, matching the class order.
//
// clip is the earliest class-0 event alone (engine + resident, without the
// deferred heap): horizon windows are clipped only at class-0 events.
// Deferred-serial events execute at the first barrier at or after their
// timestamp by definition, so a window may legally run past one — that is
// precisely what keeps windows near the full lookahead when delivery
// completions are dense in simulated time. Both keys derive from global heap
// state only, so window boundaries stay shard-count independent.
func (s *Sharded) nextSerial() (key, clip nextKey, shard int) {
	e := s.engine
	shard = -1
	if len(e.heap) > 0 {
		ev := &e.slots[e.heap[0]]
		key = nextKey{at: ev.at, seq: ev.seq, ok: true}
	}
	for i := range s.resident {
		h := &s.resident[i]
		if len(h.ev) == 0 {
			continue
		}
		head := &h.ev[0]
		if !key.ok || head.at < key.at || (head.at == key.at && head.seq < key.seq) {
			key = nextKey{at: head.at, seq: head.seq, ok: true}
			shard = i
		}
	}
	clip = key
	if len(s.deferred.ev) > 0 {
		head := &s.deferred.ev[0]
		if !key.ok || head.at < key.at {
			key = nextKey{at: head.at, seq: head.seq, ok: true}
			shard = -2
		}
	}
	return key, clip, shard
}

// nextLocal returns the earliest conforming-parallel event across the local
// shard heaps (by the canonical key) and which shard holds it; shard is -1
// when no local event is pending.
func (s *Sharded) nextLocal() (at Time, shard int) {
	shard = -1
	var best *shardEvent
	for i := range s.local {
		h := &s.local[i]
		if len(h.ev) == 0 {
			continue
		}
		head := &h.ev[0]
		if best == nil || eventLess(head, best) {
			best, shard = head, i
		}
	}
	if best != nil {
		at = best.at
	}
	return at, shard
}

// run is Engine.Run's sharded body: execute events in canonical order until
// every heap is empty or Halt is called, batching runs of conforming-
// parallel events into concurrent horizon windows.
func (s *Sharded) run() error {
	e := s.engine
	e.halted = false
	return s.drive(maxTime)
}

// runUntil is Engine.RunUntil's sharded body.
func (s *Sharded) runUntil(deadline Time) error {
	e := s.engine
	e.halted = false
	if err := s.drive(deadline); err != nil {
		return err
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

const maxTime = Time(1)<<62 - 1

// drive executes events whose time is <= deadline in canonical order.
func (s *Sharded) drive(deadline Time) error {
	e := s.engine
	for !e.halted {
		serial, clip, serialShard := s.nextSerial()
		localAt, localShard := s.nextLocal()
		switch {
		case !serial.ok && localShard < 0:
			// Natural completion: every heap is empty, the run is over. Park
			// nothing — tear the worker pool down so a finished run leaves no
			// goroutines behind.
			s.Shutdown()
			return nil
		case localShard >= 0 && (!serial.ok || localAt < serial.at):
			// A conforming-parallel event is strictly earliest (ties go to
			// the serial domain). Open a horizon window up to the lookahead
			// bound, clipped so no class-0 serial event or the deadline falls
			// inside it (deferred-serial events wait for the barrier instead
			// of clipping — see nextSerial).
			if localAt > deadline {
				return nil
			}
			windowEnd := localAt + s.lookahead
			if clip.ok && clip.at < windowEnd {
				windowEnd = clip.at
			}
			if deadline < maxTime && deadline+1 < windowEnd {
				windowEnd = deadline + 1
			}
			if err := s.runWindow(windowEnd); err != nil {
				return err
			}
		default:
			if serial.at > deadline {
				return nil
			}
			if err := s.dispatchSerial(serialShard); err != nil {
				return err
			}
		}
	}
	return nil
}

// step advances the sharded loop by one unit of work: one serial-domain
// event, or — when a conforming-parallel event is strictly earliest — one
// full horizon window. It is Engine.Step's sharded body: the cooperative MPI
// scheduler interleaves rank turns with engine progress, and because ranks
// only become runnable from serial-domain callbacks, batching a window of
// conforming events into one Step keeps the scheduler contract while letting
// the window workers run concurrently. The window boundaries are computed
// from global heap state exactly as under Run, so a Step-driven run is
// byte-identical to a Run-driven one.
func (s *Sharded) step() (bool, error) {
	serial, clip, serialShard := s.nextSerial()
	localAt, localShard := s.nextLocal()
	switch {
	case !serial.ok && localShard < 0:
		s.Shutdown()
		return false, nil
	case localShard >= 0 && (!serial.ok || localAt < serial.at):
		windowEnd := localAt + s.lookahead
		if clip.ok && clip.at < windowEnd {
			windowEnd = clip.at
		}
		if err := s.runWindow(windowEnd); err != nil {
			return false, err
		}
	default:
		if err := s.dispatchSerial(serialShard); err != nil {
			return false, err
		}
	}
	return true, nil
}

// dispatchSerial executes the earliest serial-domain event: the engine-heap
// head (shard == -1), a deferred-serial event (shard == -2) or a resident
// shard-heap head.
func (s *Sharded) dispatchSerial(shard int) error {
	s.prevWasWindow = false
	e := s.engine
	if shard == -1 {
		return e.dispatch()
	}
	if shard == -2 {
		ev := s.deferred.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.nexec++
		if e.limit > 0 && e.nexec > e.limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
		}
		ev.h.HandleEvent(e, ev.a, ev.b)
		return nil
	}
	ev := s.resident[shard].pop()
	if ev.at > e.now {
		e.now = ev.at
	}
	e.nexec++
	if e.limit > 0 && e.nexec > e.limit {
		return fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
	}
	s.execShard = int32(shard)
	ev.h.HandleEvent(e, ev.a, ev.b)
	s.execShard = -1
	// Drain the cross-shard handoffs the event produced; their keys were
	// assigned at scheduling time, so drain order is irrelevant.
	base := shard * s.shards
	for dst := 0; dst < s.shards; dst++ {
		box := s.mailboxes[base+dst]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			s.resident[dst].push(box[i])
		}
		s.mailboxes[base+dst] = box[:0]
	}
	return nil
}

// settleContext moves a context's deferred same-shard posts, its
// deferred-serial posts and every populated mailbox row of its shard into
// the destination heaps. Serial-only (window barrier).
func (s *Sharded) settleContext(sc *ShardContext) {
	for i := range sc.posts {
		ev := sc.posts[i]
		s.local[s.shardOf[ev.dst]].push(ev)
		s.nlocal++
	}
	sc.posts = sc.posts[:0]
	for i := range sc.sposts {
		s.deferred.push(sc.sposts[i])
	}
	sc.sposts = sc.sposts[:0]
	base := int(sc.shard) * s.shards
	for dst := 0; dst < s.shards; dst++ {
		box := s.mailboxes[base+dst]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			s.local[dst].push(box[i])
			s.nlocal++
		}
		s.crossPosts += uint64(len(box))
		s.mailboxes[base+dst] = box[:0]
	}
}

// runWindow executes every conforming-parallel event with at < windowEnd,
// all shards concurrently, then drains the mailboxes at the barrier and runs
// the window's deferred barrier actions in canonical merge order. The workers
// are a persistent pool of pinned goroutines parked on per-shard wake
// channels between windows — spawned lazily at the first multi-shard window,
// woken with the window end, and counted back in through the done channel
// before the barrier proceeds, so a window costs zero goroutine churn and
// zero allocations in steady state. The pool is torn down by Shutdown (run
// completion, Engine.Reset, the MPI scheduler's shutdown paths); a cancelled
// run simply stops opening windows and the next Shutdown reaps the parked
// workers. A worker panic is captured in the worker's slot and re-raised
// here, lowest shard first, after every woken worker has parked again (the
// same deterministic failure order as the historical per-window goroutines);
// the pool is torn down before the panic unwinds so a crashed run leaks no
// goroutines either.
func (s *Sharded) runWindow(windowEnd Time) error {
	e := s.engine
	active := 0
	last := -1
	for i := range s.local {
		if h := &s.local[i]; len(h.ev) > 0 && h.ev[0].at < windowEnd {
			active++
			last = i
		}
	}
	s.windows++
	s.occupancySum += uint64(active)
	if s.prevWasWindow {
		s.batchedWindows++
	}
	s.prevWasWindow = true
	if active == 1 {
		// One busy shard: run inline, skip the wake/park round-trip.
		s.windowActive.Store(true)
		s.windowWorker(last, windowEnd)
		s.windowActive.Store(false)
		if p := s.workerPanic[last]; p != nil {
			s.workerPanic[last] = nil
			s.Shutdown()
			panic(p)
		}
		s.settleContext(&s.ctx[last])
		if err := s.closeWindow(e); err != nil {
			return err
		}
		return s.runBarrierActions(e)
	}
	s.parallelWindows++
	if !s.poolUp {
		s.startWorkers()
	}
	s.windowActive.Store(true)
	woken := 0
	for i := range s.local {
		h := &s.local[i]
		if len(h.ev) == 0 || h.ev[0].at >= windowEnd {
			continue
		}
		s.poolWake[i] <- windowEnd
		woken++
	}
	start := time.Now()
	for ; woken > 0; woken-- {
		<-s.poolDone
	}
	s.barrierWait += time.Since(start)
	s.windowActive.Store(false)
	for i := range s.workerPanic {
		if p := s.workerPanic[i]; p != nil {
			s.workerPanic[i] = nil
			// Every woken worker has parked again (the done loop above
			// collected them all), so the pool can be reaped before the panic
			// unwinds — a panicked run must not strand parked goroutines.
			s.Shutdown()
			panic(p)
		}
	}
	for i := range s.ctx {
		s.settleContext(&s.ctx[i])
	}
	if err := s.closeWindow(e); err != nil {
		return err
	}
	return s.runBarrierActions(e)
}

// startWorkers spawns the persistent worker pool: one goroutine per shard,
// parked on its wake channel. The wake channels are buffered (capacity 1) so
// the coordinator's wake loop never blocks; the channel send/receive pairs
// provide the happens-before edges between the coordinator's heap writes and
// the worker's reads (and back), which is the pool's entire memory-ordering
// story.
func (s *Sharded) startWorkers() {
	if s.poolWake == nil {
		s.poolWake = make([]chan Time, s.shards)
	}
	s.poolDone = make(chan int, s.shards)
	for i := 0; i < s.shards; i++ {
		wake := make(chan Time, 1)
		s.poolWake[i] = wake
		s.poolWG.Add(1)
		go func(shard int, wake <-chan Time) {
			defer s.poolWG.Done()
			for end := range wake {
				s.windowWorker(shard, end)
				s.poolDone <- shard
			}
		}(i, wake)
	}
	s.poolUp = true
}

// Shutdown tears down the persistent worker pool and waits for the workers
// to exit. It is idempotent and safe on a driver that never spawned workers.
// The drive loop calls it on natural run completion; Engine.Reset and the
// MPI scheduler's shutdown paths call it so an abandoned or reset run leaves
// no parked goroutines behind. Workers are only ever parked when Shutdown
// runs (the barrier collects every woken worker before runWindow returns,
// panics included), so closing the wake channels is race-free.
func (s *Sharded) Shutdown() {
	if !s.poolUp {
		return
	}
	s.poolUp = false
	for i := range s.poolWake {
		close(s.poolWake[i])
		s.poolWake[i] = nil
	}
	s.poolWG.Wait()
}

// runBarrierActions executes the window's deferred barrier actions (Defer)
// serially on the coordinator, k-way merged across shards by the canonical
// event key. Each shard's list is already key-sorted (its worker pops events
// in canonical order), and keys cannot collide across shards (the key embeds
// the destination group, and groups do not span shards), so the merge is a
// total order independent of shard count. Actions run with the engine clock
// already at the window maximum and the full serial-domain API available.
func (s *Sharded) runBarrierActions(e *Engine) error {
	n := 0
	for i := range s.ctx {
		s.actCursor[i] = 0
		n += len(s.ctx[i].dposts)
	}
	if n == 0 {
		return nil
	}
	for ; n > 0; n-- {
		best := -1
		var bestEv *shardEvent
		for i := range s.ctx {
			c := s.actCursor[i]
			if c >= len(s.ctx[i].dposts) {
				continue
			}
			head := &s.ctx[i].dposts[c]
			if bestEv == nil || eventLess(head, bestEv) {
				best, bestEv = i, head
			}
		}
		s.actCursor[best]++
		bestEv.h.HandleEvent(e, bestEv.a, bestEv.b)
	}
	for i := range s.ctx {
		s.ctx[i].dposts = s.ctx[i].dposts[:0]
	}
	return nil
}

// closeWindow folds the workers' execution tallies into the engine clock,
// the event counter and the pending-event count, and applies the event limit
// at the barrier.
func (s *Sharded) closeWindow(e *Engine) error {
	for i := range s.workerNexec {
		n := s.workerNexec[i]
		if n == 0 && s.workerPushed[i] == 0 {
			continue
		}
		e.nexec += n
		s.localExec += n
		if at := s.workerMaxAt[i]; at > e.now {
			e.now = at
		}
		s.nlocal += int(s.workerPushed[i]) - int(n)
		s.workerNexec[i], s.workerPushed[i] = 0, 0
	}
	if e.limit > 0 && e.nexec > e.limit {
		return fmt.Errorf("sim: event limit %d exceeded at t=%d", e.limit, e.now)
	}
	return nil
}

// windowWorker drains one shard's local heap up to windowEnd. It runs on the
// shard's pinned pool worker (or inline when the window has one active
// shard) and touches only shard-owned state: the shard's heap, its groups'
// sequence counters, its context, its mailbox row and its tally slots.
func (s *Sharded) windowWorker(shard int, windowEnd Time) {
	defer func() {
		if p := recover(); p != nil {
			s.workerPanic[shard] = p
		}
	}()
	h := &s.local[shard]
	sc := &s.ctx[shard]
	var maxAt Time
	var executed, pushed uint64
	for len(h.ev) > 0 && h.ev[0].at < windowEnd {
		ev := h.pop()
		sc.group, sc.now = ev.dst, ev.at
		sc.src, sc.seq = ev.src, ev.seq
		maxAt = ev.at
		executed++
		ev.lh.HandleLocalEvent(sc, ev.a, ev.b)
		// Same-shard posts feed straight back into the heap so the pop loop
		// sees ones that land inside this window; cross-shard posts sit in
		// the mailbox row until the barrier.
		pushed += uint64(len(sc.posts))
		for i := range sc.posts {
			h.push(sc.posts[i])
		}
		sc.posts = sc.posts[:0]
	}
	s.workerMaxAt[shard] = maxAt
	s.workerNexec[shard] = executed
	s.workerPushed[shard] = pushed
}

// --- per-shard 4-ary min-heap of shardEvents ------------------------------

type shardHeap struct {
	ev []shardEvent
}

// eventLess orders events by the canonical key: (at, class, seq) for the
// resident serial domain, (at, class, dst, src, seq) for local and
// deferred-serial events. The key never depends on shard count or window
// boundaries, which is what makes every drive mode and every Shards=N
// byte-identical.
func eventLess(a, b *shardEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.class != b.class {
		return a.class < b.class
	}
	if a.class != classResident {
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.src != b.src {
			return a.src < b.src
		}
	}
	return a.seq < b.seq
}

func (h *shardHeap) less(a, b *shardEvent) bool { return eventLess(a, b) }

func (h *shardHeap) push(ev shardEvent) {
	h.ev = append(h.ev, ev)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.less(&h.ev[i], &h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (h *shardHeap) pop() shardEvent {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = shardEvent{}
	h.ev = h.ev[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		for c := first + 1; c < min(first+4, n); c++ {
			if h.less(&h.ev[c], &h.ev[best]) {
				best = c
			}
		}
		if !h.less(&h.ev[best], &h.ev[i]) {
			break
		}
		h.ev[i], h.ev[best] = h.ev[best], h.ev[i]
		i = best
	}
	return top
}
